// Capgrant demonstrates that capabilities are first-class and travel
// with object references between processes (paper §1: "capabilities can
// be exchanged between processes").
//
// A server process mints a reference whose glue protocol carries a
// 5-request quota and an encryption capability, and publishes it in the
// registry. A broker process resolves it and — without talking to the
// server — hands it on to a worker process, which spends the budget.
// The quota is enforced server-side, so the grant is shared: requests
// made by the broker count against the worker's budget too.
//
//	go run ./examples/capgrant
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"openhpcxx/internal/bench"
	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/registry"
	"openhpcxx/internal/wire"
)

func main() {
	net := netsim.New()
	net.AddLAN("lan", "campus", netsim.ProfileEthernet.Scaled(16))
	net.MustAddMachine("srv", "lan")
	net.MustAddMachine("broker", "lan")
	net.MustAddMachine("worker", "lan")

	// Three runtimes = three OS processes sharing only the network.
	newProc := func(name string) *core.Runtime {
		rt := core.NewRuntime(net, name)
		capability.Install(rt.DefaultPool())
		return rt
	}
	serverProc := newProc("server-proc")
	defer serverProc.Close()
	brokerProc := newProc("broker-proc")
	defer brokerProc.Close()
	workerProc := newProc("worker-proc")
	defer workerProc.Close()

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Server process: service + registry.
	server, err := serverProc.NewContext("server", "srv")
	must(err)
	must(server.BindSim(8000))
	regCtx, err := serverProc.NewContext("names", "srv")
	must(err)
	must(regCtx.BindSim(8001))
	_, _, err = registry.Serve(regCtx)
	must(err)

	impl, methods := bench.ExchangeActivator()
	servant, err := server.Export(bench.ExchangeIface, impl, methods)
	must(err)
	streamE, err := server.EntryStream()
	must(err)
	grant, err := capability.GlueEntry(server, "grant-42", streamE,
		capability.NewQuota(5, time.Time{}),
		capability.NewRandomEncrypt(capability.ScopeAlways))
	must(err)
	grantRef := server.NewRef(servant, grant)

	sReg := registry.NewClient(server, registry.RefAt("sim://srv:8001"))
	must(sReg.Bind("grants/worker-42", grantRef))
	fmt.Println("server: minted a 5-request encrypted grant and published it as grants/worker-42")

	// Broker process: resolves the grant, uses a bit of it, passes it on.
	broker, err := brokerProc.NewContext("broker", "broker")
	must(err)
	bReg := registry.NewClient(broker, registry.RefAt("sim://srv:8001"))
	ref, err := bReg.Lookup("grants/worker-42")
	must(err)

	bGP := broker.NewGlobalPtr(ref)
	spend(bGP, "broker", 2)

	// "Passing the capability": just hand over the serialized reference.
	blob, err := core.EncodeRef(ref)
	must(err)
	fmt.Printf("broker: forwarding the grant to the worker (%d-byte reference, capabilities inside)\n", len(blob))

	// Worker process: receives the bytes, reconstructs the reference,
	// and spends the rest of the shared budget.
	workerRef, err := core.DecodeRef(blob)
	must(err)
	worker, err := workerProc.NewContext("worker", "worker")
	must(err)
	wGP := worker.NewGlobalPtr(workerRef)
	spend(wGP, "worker", 4)
}

// spend makes n exchange calls, reporting quota exhaustion.
func spend(gp *core.GlobalPtr, who string, n int) {
	arr := &core.Int32Slice{V: make([]int32, 64)}
	for i := 1; i <= n; i++ {
		_, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr)
		if err != nil {
			var f *wire.Fault
			if errors.As(err, &f) && f.Code == wire.FaultQuota {
				fmt.Printf("%s: request %d refused — %s\n", who, i, f.Message)
				return
			}
			log.Fatal(err)
		}
		fmt.Printf("%s: request %d served under the grant\n", who, i)
	}
}
