package openhpcxx_test

import (
	"errors"
	"testing"
	"time"

	"openhpcxx/internal/bench"
	"openhpcxx/internal/capability"
	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/loadbal"
	"openhpcxx/internal/migrate"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/proto/udprel"
	"openhpcxx/internal/registry"
	"openhpcxx/internal/wire"
)

// TestFullStackScenario drives every subsystem in one deployment: a
// capability-protected service is published through the registry,
// accessed by clients on different LANs (different protocols selected),
// migrated by the load balancer, re-resolved, and metered — the paper's
// whole story in one test.
func TestFullStackScenario(t *testing.T) {
	n := netsim.New()
	n.AddLAN("lab", "campus", netsim.ProfileUnshaped)
	n.AddLAN("office", "campus", netsim.ProfileUnshaped)
	n.CampusLink = netsim.ProfileUnshaped
	n.MustAddMachine("lab-1", "lab")
	n.MustAddMachine("lab-2", "lab")
	n.MustAddMachine("desk", "office")

	rt := core.NewRuntime(n, "itest")
	capability.Install(rt.DefaultPool())
	rt.RegisterIface(bench.ExchangeIface, bench.ExchangeActivator)
	defer rt.Close()

	// Name service.
	regCtx, err := rt.NewContext("registry", "lab-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := regCtx.BindSim(7100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := registry.Serve(regCtx); err != nil {
		t.Fatal(err)
	}
	regRef := registry.RefAt("sim://lab-1:7100")

	// Hosts.
	mkHost := func(name, machine string) *core.Context {
		ctx, err := rt.NewContext(name, netsim.MachineID(machine))
		if err != nil {
			t.Fatal(err)
		}
		for _, bind := range []func() error{ctx.BindSHM, func() error { return ctx.BindSim(0) }, func() error { return ctx.BindNexusSim(0) }} {
			if err := bind(); err != nil {
				t.Fatal(err)
			}
		}
		return ctx
	}
	host1 := mkHost("host1", "lab-1")
	host2 := mkHost("host2", "lab-2")

	// Service: auth for off-LAN clients, quota 100, nexus fallback.
	impl, methods := bench.ExchangeActivator()
	servant, err := host1.Export(bench.ExchangeIface, impl, methods)
	if err != nil {
		t.Fatal(err)
	}
	streamE, _ := host1.EntryStream()
	nexusE, _ := host1.EntryNexus()
	glueE, err := capability.GlueEntry(host1, "itest-auth", streamE,
		capability.MustNewAuth("desk", []byte("secret"), capability.ScopeCrossLAN),
		capability.NewQuota(100, time.Time{}))
	if err != nil {
		t.Fatal(err)
	}
	ref := host1.NewRef(servant, glueE, nexusE)

	pub := registry.NewClient(host1, regRef)
	if err := pub.Bind("itest/svc", ref); err != nil {
		t.Fatal(err)
	}

	// Clients resolve by name.
	labClient, _ := rt.NewContext("lab-client", "lab-2")
	deskClient, _ := rt.NewContext("desk-client", "desk")
	resolve := func(ctx *core.Context) *core.GlobalPtr {
		r, err := registry.NewClient(ctx, regRef).Lookup("itest/svc")
		if err != nil {
			t.Fatal(err)
		}
		return ctx.NewGlobalPtr(r)
	}
	gpLab := resolve(labClient)
	gpDesk := resolve(deskClient)

	callOK := func(gp *core.GlobalPtr) {
		t.Helper()
		arr := &core.Int32Slice{V: []int32{1, 2, 3}}
		out, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.V) != 3 {
			t.Fatalf("exchange %v", out.V)
		}
	}
	callOK(gpLab)
	callOK(gpDesk)
	if id, _ := gpLab.SelectedProtocol(); id != core.ProtoNexus {
		t.Fatalf("lab client selected %s", id)
	}
	if id, _ := gpDesk.SelectedProtocol(); id != core.ProtoGlue {
		t.Fatalf("desk client selected %s", id)
	}

	// Load balancer migrates the hot object to host2.
	var l1, l2 loadbal.SyntheticLoad
	l1.Set(100)
	l2.Set(5)
	bal := loadbal.New(loadbal.Policy{HighWater: 50, Margin: 10}, pub)
	bal.AddHost(host1, l1.Source())
	bal.AddHost(host2, l2.Source())
	bal.Manage("itest/svc", ref, host1)
	moves, err := bal.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].To != "host2" {
		t.Fatalf("moves %+v", moves)
	}

	// Existing GPs keep working (tombstone chase), selection unchanged
	// in kind because host2 is on the same LAN topology position.
	callOK(gpLab)
	callOK(gpDesk)
	if gpLab.Ref().Server.Machine != "lab-2" {
		t.Fatalf("lab gp follows to %v", gpLab.Ref().Server)
	}

	// Fresh resolution sees the updated binding.
	r2, err := registry.NewClient(deskClient, regRef).Lookup("itest/svc")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Server.Machine != "lab-2" || r2.Epoch != ref.Epoch+1 {
		t.Fatalf("registry ref %+v", r2)
	}
}

// TestCustomProtocolMigration proves the migration path extends to
// user-written protocols via migrate.RegisterReanchor: a reference whose
// only table entry is the udprel custom protocol survives an object
// move.
func TestCustomProtocolMigration(t *testing.T) {
	n := netsim.New()
	n.AddLAN("lan", "c", netsim.ProfileUnshaped)
	n.MustAddMachine("a", "lan")
	n.MustAddMachine("b", "lan")
	n.MustAddMachine("c", "lan")

	rt := core.NewRuntime(n, "p")
	rt.DefaultPool().Register(udprel.NewFactory(udprel.Config{}))
	rt.RegisterIface(bench.ExchangeIface, bench.ExchangeActivator)
	defer rt.Close()

	migrate.RegisterReanchor(udprel.ID, func(dst *core.Context, old core.ProtoEntry) (core.ProtoEntry, bool, error) {
		ne, err := udprel.Entry(dst)
		if err != nil {
			return core.ProtoEntry{}, false, nil // destination not bound
		}
		return ne, true, nil
	})

	src, _ := rt.NewContext("src", "a")
	if err := udprel.Bind(src, 0, udprel.Config{}); err != nil {
		t.Fatal(err)
	}
	dst, _ := rt.NewContext("dst", "b")
	if err := udprel.Bind(dst, 0, udprel.Config{}); err != nil {
		t.Fatal(err)
	}
	// Migration also needs a control/stream path for FaultMoved? No —
	// the tombstone replies travel over udprel itself.
	impl, methods := bench.ExchangeActivator()
	s, err := src.Export(bench.ExchangeIface, impl, methods)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := udprel.Entry(src)
	if err != nil {
		t.Fatal(err)
	}
	ref := src.NewRef(s, entry)

	client, _ := rt.NewContext("client", "c")
	gp := client.NewGlobalPtr(ref)
	arr := &core.Int32Slice{V: []int32{7}}
	if _, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr); err != nil {
		t.Fatal(err)
	}

	newRef, err := migrate.MoveLocal(src, ref, dst)
	if err != nil {
		t.Fatal(err)
	}
	if newRef.Protocols[0].ID != udprel.ID {
		t.Fatalf("table %v", newRef.ProtoIDs())
	}
	out, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.V) != 1 || out.V[0] != 7 {
		t.Fatalf("post-move %v", out.V)
	}
}

// TestQuotaDeadlineEndToEnd runs the paper's "access for the time they
// have paid for" policy through the full stack with a fake clock.
func TestQuotaDeadlineEndToEnd(t *testing.T) {
	n := netsim.New()
	n.AddLAN("lan", "c", netsim.ProfileUnshaped)
	n.MustAddMachine("a", "lan")
	n.MustAddMachine("b", "lan")
	rt := core.NewRuntime(n, "p")
	capability.Install(rt.DefaultPool())
	defer rt.Close()

	fc := clockAt(t, rt)

	server, _ := rt.NewContext("server", "a")
	if err := server.BindSim(0); err != nil {
		t.Fatal(err)
	}
	impl, methods := bench.ExchangeActivator()
	s, _ := server.Export(bench.ExchangeIface, impl, methods)
	base, _ := server.EntryStream()
	paidUntil := fc.Now().Add(time.Hour)
	glueE, err := capability.GlueEntry(server, "paid", base, capability.NewQuota(0, paidUntil))
	if err != nil {
		t.Fatal(err)
	}
	ref := server.NewRef(s, glueE)

	client, _ := rt.NewContext("client", "b")
	gp := client.NewGlobalPtr(ref)
	arr := &core.Int32Slice{V: []int32{1}}
	if _, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr); err != nil {
		t.Fatal(err)
	}
	fc.Advance(2 * time.Hour)
	_, err = core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr)
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultQuota {
		t.Fatalf("after expiry: %v", err)
	}
}

// clockAt installs a fake clock on the runtime and returns it.
func clockAt(t *testing.T, rt *core.Runtime) *clock.Fake {
	t.Helper()
	fc := clock.NewFake(time.Unix(1_000_000, 0))
	rt.SetClock(fc)
	return fc
}

// TestRealTCPFullStack runs the registry, a glue-protected service, and
// a client over genuine TCP loopback sockets (no simulated links) —
// the deployment shape ohpc-registry supports in production.
func TestRealTCPFullStack(t *testing.T) {
	n := netsim.New()
	n.AddLAN("lanA", "campus", netsim.ProfileLoopback)
	n.AddLAN("lanB", "campus", netsim.ProfileLoopback)
	n.MustAddMachine("hostA", "lanA")
	n.MustAddMachine("hostB", "lanB")

	rtServer := core.NewRuntime(n, "procServer")
	capability.Install(rtServer.DefaultPool())
	defer rtServer.Close()
	rtClient := core.NewRuntime(n, "procClient")
	capability.Install(rtClient.DefaultPool())
	defer rtClient.Close()

	// Registry over real TCP.
	regCtx, err := rtServer.NewContext("registry", "hostA")
	if err != nil {
		t.Fatal(err)
	}
	if err := regCtx.BindTCP("127.0.0.1:0"); err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	if _, _, err := registry.Serve(regCtx); err != nil {
		t.Fatal(err)
	}
	regAddr, _ := regCtx.Binding(core.ProtoStream)

	// Service over real TCP, auth+quota protected (client is on
	// another simulated LAN, so the cross-LAN auth applies even though
	// the bytes ride real sockets).
	svcCtx, err := rtServer.NewContext("svc", "hostA")
	if err != nil {
		t.Fatal(err)
	}
	if err := svcCtx.BindTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	impl, methods := bench.ExchangeActivator()
	s, err := svcCtx.Export(bench.ExchangeIface, impl, methods)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := svcCtx.EntryStream()
	glueE, err := capability.GlueEntry(svcCtx, "tcp-auth", base,
		capability.MustNewAuth("tcp-client", []byte("k"), capability.ScopeCrossLAN),
		capability.NewQuota(10, time.Time{}))
	if err != nil {
		t.Fatal(err)
	}
	ref := svcCtx.NewRef(s, glueE, base)
	pub := registry.NewClient(svcCtx, registry.RefAt(regAddr))
	if err := pub.Bind("tcp/svc", ref); err != nil {
		t.Fatal(err)
	}

	// Client process resolves and calls over real sockets.
	cliCtx, err := rtClient.NewContext("client", "hostB")
	if err != nil {
		t.Fatal(err)
	}
	got, err := registry.NewClient(cliCtx, registry.RefAt(regAddr)).Lookup("tcp/svc")
	if err != nil {
		t.Fatal(err)
	}
	gp := cliCtx.NewGlobalPtr(got)
	if id, err := gp.SelectedProtocol(); err != nil || id != core.ProtoGlue {
		t.Fatalf("selected %s, %v", id, err)
	}
	arr := &core.Int32Slice{V: make([]int32, 512)}
	out, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.V) != 512 {
		t.Fatalf("exchange %d ints", len(out.V))
	}
}
