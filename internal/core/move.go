package core

import (
	"openhpcxx/internal/errs"
)

// BeginMove freezes a servant and snapshots its implementation state.
// New invocations block until the move commits or aborts; in-flight
// invocations have already drained when BeginMove returns. On success
// the servant is left frozen — the caller must CommitMove or AbortMove.
func (c *Context) BeginMove(id ObjectID) (*Servant, []byte, error) {
	s, ok := c.Servant(id)
	if !ok {
		return nil, nil, errs.Newf(errs.NoObject, "core: no object %s to move", id)
	}
	s.Freeze()
	state, err := s.SnapshotLocked()
	if err != nil {
		s.Unfreeze()
		return nil, nil, err
	}
	return s, state, nil
}

// CommitMove finishes a BeginMove: the frozen servant starts answering
// FaultMoved with the new reference, is removed from the context's
// table, and a tombstone forwards latecomers.
func (c *Context) CommitMove(s *Servant, newRef *ObjectRef) {
	s.movedTo = newRef // safe: caller holds the freeze (write lock)
	s.Unfreeze()
	c.Unexport(s.id, newRef)
	c.rt.recordEvent("move-out", s.id, "left context %s for %s (epoch %d)", c.name, newRef.Server, newRef.Epoch)
}

// AbortMove releases a BeginMove without relocating the object.
func (c *Context) AbortMove(s *Servant) {
	s.Unfreeze()
}
