// Package udprel is a user-written Open HPC++ protocol: reliable
// request/reply messaging over unreliable datagrams, with
// fragmentation, per-fragment acknowledgement, retransmission, and
// duplicate suppression.
//
// It exists to exercise the paper's custom-protocol claim (§3.2:
// "custom protocols are supported by having users write their own
// proto-classes that satisfy a standard interface"): the package lives
// entirely outside internal/core, registers itself into protocol pools
// through the public ProtoFactory interface, binds contexts through
// Context.RegisterBinding, and delivers requests through
// Context.Dispatch. Nothing in the ORB knows it exists.
package udprel

import (
	"errors"
	"sync"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/xdr"
)

// Wire format of one datagram:
//
//	magic   u32  'UREL'
//	type    u32  1=DATA 2=ACK
//	msgID   u64  sender-local message id
//	fragIdx u32
//	(DATA only)
//	fragCount u32
//	payload   opaque
const magic uint32 = 0x5552454c

const (
	ptData uint32 = 1
	ptAck  uint32 = 2
)

// Config tunes the ARQ machinery.
type Config struct {
	// RTO is the per-fragment retransmission timeout.
	RTO time.Duration
	// MaxTries bounds transmissions per fragment before giving up.
	MaxTries int
	// FragSize is the payload carried per datagram.
	FragSize int
	// Window is the number of unacknowledged fragments in flight.
	Window int
	// Clock drives the RTO and reply-deadline timers (default the real
	// clock). Tests inject a fake to exercise retransmission without
	// wall-clock waits.
	Clock clock.Clock
}

// DefaultConfig returns production-ish defaults.
func DefaultConfig() Config {
	return Config{RTO: 40 * time.Millisecond, MaxTries: 10, FragSize: 8192, Window: 32}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.RTO <= 0 {
		c.RTO = d.RTO
	}
	if c.MaxTries <= 0 {
		c.MaxTries = d.MaxTries
	}
	if c.FragSize <= 0 {
		c.FragSize = d.FragSize
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	return c
}

// Handler serves one complete inbound request message and returns the
// reply message.
type Handler func(from netsim.Addr, req []byte) []byte

// Message kinds inside the reliable layer.
const (
	mkRequest uint32 = 1
	mkReply   uint32 = 2
)

// Node is one endpoint: it can issue requests and, with a handler,
// serve them.
type Node struct {
	pc      *netsim.PacketConn
	cfg     Config
	handler Handler

	mu        sync.Mutex
	nextMsgID uint64
	nextReqID uint64
	pending   map[uint64]chan []byte // reqID -> reply payload
	acks      map[ackKey]chan struct{}
	rx        map[rxKey]*rxState
	done      map[rxKey]time.Time // completed messages, for dedup
	closed    bool
	wg        sync.WaitGroup
}

type ackKey struct {
	to    netsim.Addr
	msgID uint64
	frag  uint32
}

type rxKey struct {
	from  netsim.Addr
	msgID uint64
}

type rxState struct {
	frags   [][]byte
	missing int
}

// NewNode wraps a datagram socket. handler may be nil for pure clients.
func NewNode(pc *netsim.PacketConn, cfg Config, handler Handler) *Node {
	n := &Node{
		pc:      pc,
		cfg:     cfg.withDefaults(),
		handler: handler,
		pending: make(map[uint64]chan []byte),
		acks:    make(map[ackKey]chan struct{}),
		rx:      make(map[rxKey]*rxState),
		done:    make(map[rxKey]time.Time),
	}
	n.wg.Add(1)
	go n.readLoop()
	return n
}

// Close shuts the node down.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for id, ch := range n.pending {
		delete(n.pending, id)
		close(ch)
	}
	n.mu.Unlock()
	err := n.pc.Close()
	n.wg.Wait()
	return err
}

// ErrClosed is returned by requests on a closed node.
var ErrClosed = errors.New("udprel: node closed")

// ErrTimeout is returned when retransmissions are exhausted.
var ErrTimeout = errors.New("udprel: retransmissions exhausted")

// LocalAddr returns the underlying socket address.
func (n *Node) LocalAddr() netsim.Addr { return n.pc.LocalAddr() }

// Request sends req to the peer and waits for the correlated reply.
func (n *Node) Request(peer netsim.Addr, req []byte) ([]byte, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	n.nextReqID++
	reqID := n.nextReqID
	ch := make(chan []byte, 1)
	n.pending[reqID] = ch
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.pending, reqID)
		n.mu.Unlock()
	}()

	if err := n.sendMessage(peer, encodeMessage(mkRequest, reqID, req)); err != nil {
		return nil, err
	}
	// The reply is itself reliably transferred; once it completes the
	// read loop hands it to us. Bound the wait by the worst-case
	// transfer the peer could still be making. The bound assumes the
	// reply fits in a few windows; replies vastly larger than
	// Window*FragSize on very slow links may need a larger RTO.
	deadline := time.Duration(n.cfg.MaxTries+2) * n.cfg.RTO * 4
	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		return reply, nil
	case <-clock.After(n.cfg.Clock, deadline):
		return nil, errs.Wrapf(errs.Transport, ErrTimeout, "udprel: no reply within %v", deadline)
	}
}

// sendMessage reliably transfers one message: fragment, window, ack,
// retransmit.
func (n *Node) sendMessage(peer netsim.Addr, msg []byte) error {
	n.mu.Lock()
	n.nextMsgID++
	msgID := n.nextMsgID
	n.mu.Unlock()

	frags := fragment(msg, n.cfg.FragSize)
	count := uint32(len(frags))

	sem := make(chan struct{}, n.cfg.Window)
	errs := make(chan error, len(frags))
	var wg sync.WaitGroup
	for i, f := range frags {
		wg.Add(1)
		sem <- struct{}{}
		go func(idx uint32, payload []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			errs <- n.sendFragment(peer, msgID, idx, count, payload)
		}(uint32(i), f)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sendFragment transmits one fragment until acked or exhausted.
func (n *Node) sendFragment(peer netsim.Addr, msgID uint64, idx, count uint32, payload []byte) error {
	key := ackKey{to: peer, msgID: msgID, frag: idx}
	ackCh := make(chan struct{}, 1)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.acks[key] = ackCh
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.acks, key)
		n.mu.Unlock()
	}()

	pkt := encodeData(msgID, idx, count, payload)
	for try := 0; try < n.cfg.MaxTries; try++ {
		if _, err := n.pc.WriteTo(pkt, peer); err != nil {
			return err
		}
		select {
		case <-ackCh:
			return nil
		case <-clock.After(n.cfg.Clock, n.cfg.RTO):
		}
	}
	return errs.Wrapf(errs.Transport, ErrTimeout, "udprel: fragment %d/%d of message %d to %v", idx+1, count, msgID, peer)
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, n.cfg.FragSize+64)
	for {
		nr, from, err := n.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		n.handleDatagram(from, buf[:nr])
	}
}

func (n *Node) handleDatagram(from netsim.Addr, pkt []byte) {
	d := xdr.NewDecoder(pkt)
	m, err := d.Uint32()
	if err != nil || m != magic {
		return
	}
	pt, err := d.Uint32()
	if err != nil {
		return
	}
	msgID, err := d.Uint64()
	if err != nil {
		return
	}
	frag, err := d.Uint32()
	if err != nil {
		return
	}
	switch pt {
	case ptAck:
		n.mu.Lock()
		ch, ok := n.acks[ackKey{to: from, msgID: msgID, frag: frag}]
		n.mu.Unlock()
		if ok {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	case ptData:
		count, err := d.Uint32()
		if err != nil || count == 0 || frag >= count || count > 1<<16 {
			return
		}
		payload, err := d.Opaque()
		if err != nil {
			return
		}
		// Always ack — even duplicates (the original ack may be lost).
		n.pc.WriteTo(encodeAck(msgID, frag), from)
		if msg, complete := n.assemble(from, msgID, frag, count, payload); complete {
			n.dispatch(from, msg)
		}
	}
}

// assemble stores a fragment; it returns the whole message exactly once.
func (n *Node) assemble(from netsim.Addr, msgID uint64, frag, count uint32, payload []byte) ([]byte, bool) {
	key := rxKey{from: from, msgID: msgID}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.done[key]; dup {
		return nil, false
	}
	st, ok := n.rx[key]
	if !ok {
		st = &rxState{frags: make([][]byte, count), missing: int(count)}
		n.rx[key] = st
	}
	if int(count) != len(st.frags) || st.frags[frag] != nil {
		return nil, false // inconsistent or duplicate fragment
	}
	st.frags[frag] = payload
	st.missing--
	if st.missing > 0 {
		return nil, false
	}
	delete(n.rx, key)
	n.markDone(key)
	var msg []byte
	for _, f := range st.frags {
		msg = append(msg, f...)
	}
	return msg, true
}

// markDone records a completed message for duplicate suppression,
// pruning old entries. Caller holds n.mu.
func (n *Node) markDone(key rxKey) {
	n.done[key] = time.Now()
	if len(n.done) > 8192 {
		cutoff := time.Now().Add(-time.Minute)
		for k, t := range n.done {
			if t.Before(cutoff) {
				delete(n.done, k)
			}
		}
	}
}

// dispatch routes a complete message: replies to waiting requesters,
// requests to the handler.
func (n *Node) dispatch(from netsim.Addr, msg []byte) {
	kind, reqID, body, err := decodeMessage(msg)
	if err != nil {
		return
	}
	switch kind {
	case mkReply:
		n.mu.Lock()
		ch, ok := n.pending[reqID]
		n.mu.Unlock()
		if ok {
			select {
			case ch <- body:
			default:
			}
		}
	case mkRequest:
		h := n.handler
		if h == nil {
			return
		}
		go func() {
			reply := h(from, body)
			// Reply delivery failures surface as the peer's timeout.
			_ = n.sendMessage(from, encodeMessage(mkReply, reqID, reply))
		}()
	}
}

// --- encoding helpers ---------------------------------------------------

func fragment(msg []byte, size int) [][]byte {
	if len(msg) == 0 {
		return [][]byte{{}}
	}
	var out [][]byte
	for off := 0; off < len(msg); off += size {
		end := off + size
		if end > len(msg) {
			end = len(msg)
		}
		out = append(out, msg[off:end])
	}
	return out
}

func encodeData(msgID uint64, frag, count uint32, payload []byte) []byte {
	e := xdr.NewEncoder(28 + len(payload))
	e.PutUint32(magic)
	e.PutUint32(ptData)
	e.PutUint64(msgID)
	e.PutUint32(frag)
	e.PutUint32(count)
	e.PutOpaque(payload)
	return e.Bytes()
}

func encodeAck(msgID uint64, frag uint32) []byte {
	e := xdr.NewEncoder(20)
	e.PutUint32(magic)
	e.PutUint32(ptAck)
	e.PutUint64(msgID)
	e.PutUint32(frag)
	return e.Bytes()
}

func encodeMessage(kind uint32, reqID uint64, body []byte) []byte {
	e := xdr.NewEncoder(16 + len(body))
	e.PutUint32(kind)
	e.PutUint64(reqID)
	e.PutOpaque(body)
	return e.Bytes()
}

func decodeMessage(msg []byte) (kind uint32, reqID uint64, body []byte, err error) {
	d := xdr.NewDecoder(msg)
	if kind, err = d.Uint32(); err != nil {
		return
	}
	if reqID, err = d.Uint64(); err != nil {
		return
	}
	body, err = d.Opaque()
	return
}
