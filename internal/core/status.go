// Runtime.Status: the one-call structured snapshot of the ORB's live
// state, serialized by the introspection plane as /statusz. It is the
// operational face of the paper's Open Implementation principle — the
// ORB's "critical internal decisions" (which protocol-table entry each
// GP is bound to, which endpoints the breakers have demoted, what is
// draining) exposed as data rather than buried in logs.
//
// Everything here is a point-in-time copy assembled under short
// per-structure locks; nothing retains references into live state, so
// a scrape never blocks traffic for longer than one map copy.
package core

import (
	"time"

	"openhpcxx/internal/future"
	"openhpcxx/internal/health"
	"openhpcxx/internal/stats"
)

// GPEntryStatus is one row of a GP's ordered protocol table as /statusz
// renders it: the entry, its endpoint's breaker state, and whether it
// is the currently bound choice.
type GPEntryStatus struct {
	Index    int    `json:"index"`
	Proto    string `json:"proto"`
	Endpoint string `json:"endpoint"` // health-tracker key: "proto|addr"
	Health   string `json:"health"`   // breaker state: closed/open/half-open
	Selected bool   `json:"selected"`
}

// GPBatchStatus reports a GP's adaptive micro-batching state: the
// policy watermarks and the coalescer's current residency.
type GPBatchStatus struct {
	MaxMessages int   `json:"max_messages"`
	MaxBytes    int   `json:"max_bytes"`
	MaxDelayUS  int64 `json:"max_delay_us"`
	Queued      int   `json:"queued"`
	QueuedBytes int   `json:"queued_bytes"`
}

// GPRetryStatus reports a GP's retry-budget state: the live token
// count against its configuration, and how many retries a dry bucket
// has denied (each denial surfaced to the caller as a typed
// errs.BudgetExhausted).
type GPRetryStatus struct {
	Enabled   bool    `json:"enabled"`
	Tokens    float64 `json:"tokens"`
	MaxTokens float64 `json:"max_tokens"`
	Ratio     float64 `json:"ratio"`
	Exhausted uint64  `json:"exhausted"`
}

// GPStatus is the public view of one live GlobalPtr: its target, its
// protocol table annotated with health, and its current binding.
type GPStatus struct {
	Object string `json:"object"`
	Iface  string `json:"iface,omitempty"`
	Epoch  uint64 `json:"epoch"`
	Server string `json:"server"`
	// Bound reports whether a protocol is currently selected;
	// SelectedEntry is the table index (-1 while unbound) and
	// SelectedProto its protocol id. Status never forces a selection —
	// an idle GP shows unbound rather than having a scrape dial out.
	Bound         bool            `json:"bound"`
	SelectedEntry int             `json:"selected_entry"`
	SelectedProto string          `json:"selected_proto,omitempty"`
	Batching      *GPBatchStatus  `json:"batching,omitempty"`
	Retry         GPRetryStatus   `json:"retry"`
	Entries       []GPEntryStatus `json:"entries"`
}

// ContextStatus is the public view of one context: bindings, exported
// objects, connection-pool occupancy, drain state, and live GPs.
type ContextStatus struct {
	Name     string            `json:"name"`
	Machine  string            `json:"machine"`
	Draining bool              `json:"draining"`
	Bindings map[string]string `json:"bindings"`
	Objects  []string          `json:"objects"`
	Muxes    int               `json:"muxes"` // client connection pool occupancy
	GPs      []GPStatus        `json:"gps"`
}

// RuntimeStatus is the whole-runtime snapshot behind /statusz.
type RuntimeStatus struct {
	Process  string    `json:"process"`
	Time     time.Time `json:"time"`
	Failover bool      `json:"failover"`
	// OutstandingFutures counts process-wide unresolved futures (the
	// async invocation depth).
	OutstandingFutures int64                   `json:"outstanding_futures"`
	Contexts           []ContextStatus         `json:"contexts"`
	Endpoints          []health.EndpointStatus `json:"endpoints"`
	// RecentEvents is the tail of the adaptivity event log, newest last.
	RecentEvents []string `json:"recent_events"`
	// Meters is the per-endpoint EWMA view (smoothed latency level in
	// µs plus payload bytes/s, rates decayed to Time), keyed by the
	// registry meter key — the scoring input for adaptive selection.
	Meters map[string]stats.MeterSnapshot `json:"meters,omitempty"`
	// Sections carries subsystem-contributed status (RegisterStatusSection)
	// — e.g. the directory plane's shard/cache tables — keyed by section
	// name. Absent when no subsystem registered one.
	Sections map[string]any `json:"sections,omitempty"`
}

// statusRecentEvents bounds how much of the event log Status carries.
const statusRecentEvents = 32

// RegisterStatusSection lets a subsystem contribute a named section to
// Status()/statusz without core importing it (Open Implementation cuts
// both ways: planes plug their state into the scrape rather than core
// knowing every plane). fn runs on every Status call and must return
// JSON-serializable data; nil fn removes the section.
func (rt *Runtime) RegisterStatusSection(name string, fn func() any) {
	rt.mu.Lock()
	if rt.sections == nil {
		rt.sections = make(map[string]func() any)
	}
	if fn == nil {
		delete(rt.sections, name)
	} else {
		rt.sections[name] = fn
	}
	rt.mu.Unlock()
}

// Status assembles a point-in-time snapshot of the runtime: every
// context with its bindings, pools, and live GPs (protocol tables
// annotated with breaker state), the health tracker's endpoint view,
// the async depth, and the tail of the event log.
func (rt *Runtime) Status() RuntimeStatus {
	rt.mu.RLock()
	ctxs := make([]*Context, 0, len(rt.contexts))
	for _, c := range rt.contexts {
		ctxs = append(ctxs, c)
	}
	failover := rt.failover
	ht := rt.htracker
	sections := make(map[string]func() any, len(rt.sections))
	for n, fn := range rt.sections {
		sections[n] = fn
	}
	rt.mu.RUnlock()

	st := RuntimeStatus{
		Process:            rt.process,
		Time:               rt.clock.Now(),
		Failover:           failover,
		OutstandingFutures: future.Outstanding(),
	}
	if ht != nil {
		st.Endpoints = ht.Snapshot()
	}
	for _, c := range ctxs {
		st.Contexts = append(st.Contexts, c.status(ht))
	}
	// Contexts arrive in map order; sort for a stable rendering.
	sortContexts(st.Contexts)
	events := rt.Events()
	if len(events) > statusRecentEvents {
		events = events[len(events)-statusRecentEvents:]
	}
	for _, e := range events {
		st.RecentEvents = append(st.RecentEvents, e.String())
	}
	if meters := rt.metrics.SnapshotAt(st.Time).Meters; len(meters) > 0 {
		st.Meters = meters
	}
	if len(sections) > 0 {
		st.Sections = make(map[string]any, len(sections))
		for n, fn := range sections {
			st.Sections[n] = fn()
		}
	}
	return st
}

func sortContexts(cs []ContextStatus) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Name < cs[j-1].Name; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// status snapshots one context. The GP set is copied under the context
// lock and each GP is then snapshotted under its own lock, so a slow GP
// (mid-bind) never blocks the context's request path.
func (c *Context) status(ht *health.Tracker) ContextStatus {
	c.mu.RLock()
	cs := ContextStatus{
		Name:     c.name,
		Machine:  string(c.loc.Machine),
		Draining: c.draining,
		Bindings: make(map[string]string, len(c.bindings)),
	}
	for id, addr := range c.bindings {
		cs.Bindings[string(id)] = addr
	}
	gps := make([]*GlobalPtr, 0, len(c.gps))
	for g := range c.gps {
		gps = append(gps, g)
	}
	c.mu.RUnlock()
	for _, id := range c.Objects() {
		cs.Objects = append(cs.Objects, string(id))
	}
	cs.Muxes = c.muxes.Size()
	for _, g := range gps {
		cs.GPs = append(cs.GPs, g.status(ht))
	}
	sortGPs(cs.GPs)
	return cs
}

func sortGPs(gs []GPStatus) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j].Object < gs[j-1].Object; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

// status snapshots one GP without forcing a protocol selection.
func (g *GlobalPtr) status(ht *health.Tracker) GPStatus {
	g.mu.Lock()
	st := GPStatus{
		Object:        string(g.ref.Object),
		Iface:         g.ref.Iface,
		Epoch:         g.ref.Epoch,
		Server:        string(g.ref.Server.Machine),
		Bound:         g.proto != nil,
		SelectedEntry: g.entry,
	}
	if tokens, cfg, exhausted := g.budget.snapshot(); !cfg.Disabled {
		st.Retry = GPRetryStatus{
			Enabled:   true,
			Tokens:    tokens,
			MaxTokens: cfg.MaxTokens,
			Ratio:     cfg.Ratio,
			Exhausted: exhausted,
		}
	}
	if g.proto != nil {
		st.SelectedProto = string(g.proto.ID())
		if bp, ok := g.proto.(interface {
			BatchStats() (int, int, bool)
		}); ok && g.policy != nil {
			if q, b, on := bp.BatchStats(); on {
				st.Batching = &GPBatchStatus{
					MaxMessages: g.policy.MaxMessages,
					MaxBytes:    g.policy.MaxBytes,
					MaxDelayUS:  g.policy.MaxDelay.Microseconds(),
					Queued:      q,
					QueuedBytes: b,
				}
			}
		}
	}
	for i, e := range g.ref.Protocols {
		key := entryHealthKey(e)
		es := GPEntryStatus{
			Index:    i,
			Proto:    string(e.ID),
			Endpoint: key,
			Health:   health.Closed.String(),
			Selected: i == g.entry && g.proto != nil,
		}
		if ht != nil {
			es.Health = ht.State(key).String()
		}
		st.Entries = append(st.Entries, es)
	}
	g.mu.Unlock()
	return st
}
