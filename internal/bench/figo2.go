// Figure O2: what tail-based retention actually retains. A deterministic
// burst-then-calm trace schedule — the S1 overload shape: a calm stream
// of ~1ms invocations with sparse 60–100ms stragglers during the
// overload window, then a long calm tail — is teed into two span stores
// with the SAME span budget:
//
//   - "fifo": a plain obs.Ring. By the time anyone looks, the calm tail
//     has flushed the ring; the slow traces the overload produced are
//     exactly the ones evicted.
//   - "tail": an obs.TailKeeper. Decisions are made when each trace's
//     root ends, so the slow traces are exactly the ones retained (plus
//     a small baseline reservoir), and the calm bulk is dropped with
//     per-policy accounting.
//
// The figure reports each store's retention of the >p99 traces (ground
// truth: the schedule's generated stragglers, all far above the calm
// p99) and, separately, the live overhead of running with a tail keeper
// installed versus the untraced baseline on the exchange workload.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/obs"
)

// O2 figure mode names.
const (
	ModeFIFO      = "fifo"
	ModeTail      = "tail"
	O2FigureTitle = "Figure O2: tail-based trace retention vs FIFO at equal span memory"
)

// O2Config parameterizes the retention experiment.
type O2Config struct {
	// Traces is the schedule length (default 2048).
	Traces int
	// SpansPerTrace is the tree size per trace: one root plus children
	// (default 3, the sync invoke shape: invoke/select/send).
	SpansPerTrace int
	// StoreSpans is the span budget both stores get (default 256 — a
	// keeper at MaxSpans=N occupies the same span memory as a ring of
	// size N).
	StoreSpans int
	// SlowEvery spaces the overload stragglers: within the overload
	// window every SlowEvery-th trace runs 60–100ms (default 150 —
	// under 1% of traffic, the tail the keeper's moving p99 targets).
	SlowEvery int
	// OverloadFrac is the fraction of the schedule covered by the
	// overload window, measured from the start; the rest is the calm
	// tail that flushes a FIFO ring (default 0.6).
	OverloadFrac float64
	// Seed drives the duration jitter (0 uses 1).
	Seed int64
	// MinReps / MinDuration bound the overhead measurement cells
	// (defaults 2000 reps, 250ms); Ints is the exchange payload
	// (default 16).
	MinReps     int
	MinDuration time.Duration
	Ints        int
}

func (c *O2Config) fill() {
	if c.Traces <= 0 {
		c.Traces = 2048
	}
	if c.SpansPerTrace <= 0 {
		c.SpansPerTrace = 3
	}
	if c.StoreSpans <= 0 {
		c.StoreSpans = 256
	}
	if c.SlowEvery <= 0 {
		c.SlowEvery = 150
	}
	if c.OverloadFrac <= 0 || c.OverloadFrac > 1 {
		c.OverloadFrac = 0.6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinReps <= 0 {
		c.MinReps = 2000
	}
	if c.MinDuration <= 0 {
		c.MinDuration = 250 * time.Millisecond
	}
	if c.Ints <= 0 {
		c.Ints = 16
	}
}

// O2Point is one store's retention outcome.
type O2Point struct {
	Mode string `json:"mode"`
	// SlowRetained / SlowTotal is the store's coverage of the schedule's
	// >p99 traces at the end of the run; RetentionPct is the ratio.
	SlowTotal     int     `json:"slow_total"`
	SlowRetained  int     `json:"slow_retained"`
	RetentionPct  float64 `json:"retention_pct"`
	SpansRetained int     `json:"spans_retained"`
	// KeptTraces / DroppedTraces is the keeper's per-policy accounting
	// (absent for the FIFO ring, which cannot say why it evicted).
	KeptTraces    map[string]uint64 `json:"kept_traces,omitempty"`
	DroppedTraces map[string]uint64 `json:"dropped_traces,omitempty"`
}

// O2Overhead is one mode of the live overhead measurement.
type O2Overhead struct {
	Mode   string        `json:"mode"`
	Reps   int           `json:"reps"`
	AvgRTT time.Duration `json:"avg_rtt_ns"`
	// OverheadPct is relative to the untraced mode (0 for that row).
	OverheadPct float64 `json:"overhead_pct"`
}

// O2Result is the whole figure.
type O2Result struct {
	Traces        int           `json:"traces"`
	SpansPerTrace int           `json:"spans_per_trace"`
	SpanBudget    int           `json:"span_budget"`
	SlowTraces    int           `json:"slow_traces"`
	CalmP99       time.Duration `json:"calm_p99_ns"`
	Points        []O2Point     `json:"points"`
	Overhead      []O2Overhead  `json:"overhead"`
}

// RunFigureO2 runs the retention comparison and the live overhead
// measurement.
func RunFigureO2(cfg O2Config) (*O2Result, error) {
	cfg.fill()
	res := &O2Result{
		Traces:        cfg.Traces,
		SpansPerTrace: cfg.SpansPerTrace,
		SpanBudget:    cfg.StoreSpans,
	}

	ring := obs.NewRing(cfg.StoreSpans)
	tail := obs.NewTailKeeper(obs.TailKeeperOptions{MaxSpans: cfg.StoreSpans, Seed: cfg.Seed})

	// Deterministic schedule generation: every span goes to both stores.
	rng := rand.New(rand.NewSource(cfg.Seed))
	overloadEnd := int(float64(cfg.Traces) * cfg.OverloadFrac)
	slow := make(map[obs.TraceID]bool)
	var calm []time.Duration
	var seq, nextID uint64
	record := func(s obs.Span) {
		seq++
		s.Seq = seq
		s.Hint = true
		ring.Record(s)
		tail.Record(s)
	}
	for i := 0; i < cfg.Traces; i++ {
		nextID++
		trace := obs.TraceID(nextID)
		rootID := obs.SpanID(nextID)
		// Calm traffic sits tightly under 1ms; overload stragglers run
		// 60–100ms — far past any plausible p99 of the calm stream.
		dur := time.Duration(600+rng.Intn(400)) * time.Microsecond
		if i < overloadEnd && i%cfg.SlowEvery == cfg.SlowEvery-1 {
			dur = time.Duration(60+rng.Intn(40)) * time.Millisecond
			slow[trace] = true
		} else {
			calm = append(calm, dur)
		}
		// Children end before the root, as live spans do.
		for c := 1; c < cfg.SpansPerTrace; c++ {
			nextID++
			record(obs.Span{
				Trace: trace, ID: obs.SpanID(nextID), Parent: rootID,
				Kind: obs.KindClient, Name: "send",
				Dur: dur / time.Duration(cfg.SpansPerTrace),
			})
		}
		record(obs.Span{
			Trace: trace, ID: rootID,
			Kind: obs.KindClient, Name: "invoke", Dur: dur,
		})
	}
	res.SlowTraces = len(slow)
	sort.Slice(calm, func(i, j int) bool { return calm[i] < calm[j] })
	res.CalmP99 = calm[(len(calm)*99)/100]

	point := func(mode string, spans []obs.Span) O2Point {
		p := O2Point{Mode: mode, SlowTotal: len(slow), SpansRetained: len(spans)}
		// A trace counts as retained only if its root survived: without
		// the root there is no duration, no attribution, no tree.
		for _, s := range spans {
			if s.Parent == 0 && slow[s.Trace] {
				p.SlowRetained++
			}
		}
		if p.SlowTotal > 0 {
			p.RetentionPct = 100 * float64(p.SlowRetained) / float64(p.SlowTotal)
		}
		return p
	}
	res.Points = append(res.Points, point(ModeFIFO, ring.Spans()))
	tp := point(ModeTail, tail.Spans())
	st := tail.Stats()
	tp.KeptTraces, tp.DroppedTraces = st.KeptTraces, st.DroppedTraces
	res.Points = append(res.Points, tp)

	over, err := runO2Overhead(cfg)
	if err != nil {
		return nil, err
	}
	res.Overhead = over
	return res, nil
}

// runO2Overhead measures the exchange workload untraced and with a tail
// keeper installed, on one deployment (the O1 shape).
func runO2Overhead(cfg O2Config) ([]O2Overhead, error) {
	n := netsim.New()
	n.AddLAN("lan", "campus", netsim.ProfileUnshaped)
	n.MustAddMachine("client-m", "lan")
	n.MustAddMachine("server-m", "lan")
	rt := newRuntime(n, "bench-o2")
	defer rt.Close()

	clientCtx, err := rt.NewContext("client", "client-m")
	if err != nil {
		return nil, err
	}
	srvCtx, err := rt.NewContext("server", "server-m")
	if err != nil {
		return nil, err
	}
	if err := srvCtx.BindSim(0); err != nil {
		return nil, err
	}
	s, err := exportExchange(srvCtx)
	if err != nil {
		return nil, err
	}
	entry, err := srvCtx.EntryStream()
	if err != nil {
		return nil, err
	}
	gp := clientCtx.NewGlobalPtr(srvCtx.NewRef(s, entry))

	measure := func(mode string) (O2Overhead, error) {
		m, err := MeasureExchange(gp, cfg.Ints, cfg.MinReps, cfg.MinDuration)
		if err != nil {
			return O2Overhead{}, errs.Wrapf(errs.CodeOf(err), err, "bench: o2 %s", mode)
		}
		return O2Overhead{Mode: mode, Reps: m.Reps, AvgRTT: m.AvgRTT}, nil
	}

	base, err := measure(ModeUntraced)
	if err != nil {
		return nil, err
	}
	tk := obs.NewTailKeeper(obs.TailKeeperOptions{Clock: rt.Clock()})
	tk.Start()
	defer tk.Close()
	rt.Tracer().SetRecorder(tk)
	defer rt.Tracer().SetRecorder(nil)
	traced, err := measure(ModeTail)
	if err != nil {
		return nil, err
	}
	if base.AvgRTT > 0 {
		traced.OverheadPct = 100 * (float64(traced.AvgRTT)/float64(base.AvgRTT) - 1)
	}
	return []O2Overhead{base, traced}, nil
}

// FormatFigureO2 renders the figure as a text table.
func FormatFigureO2(r *O2Result) string {
	out := fmt.Sprintf("%s\n  %d traces x %d spans, %d-span budget per store, calm p99 %v, %d overload stragglers\n\n  %-6s %14s %12s %12s\n",
		O2FigureTitle, r.Traces, r.SpansPerTrace, r.SpanBudget, r.CalmP99.Round(time.Microsecond),
		r.SlowTraces, "store", ">p99 retained", "retention", "spans held")
	for _, p := range r.Points {
		out += fmt.Sprintf("  %-6s %8d/%-5d %11.1f%% %12d\n",
			p.Mode, p.SlowRetained, p.SlowTotal, p.RetentionPct, p.SpansRetained)
		if len(p.DroppedTraces) > 0 {
			out += fmt.Sprintf("         dropped by policy: %v; kept by policy: %v\n", p.DroppedTraces, p.KeptTraces)
		}
	}
	out += "\n  live overhead (exchange workload):\n"
	for _, o := range r.Overhead {
		out += fmt.Sprintf("  %-10s %8d reps %12v %9.2f%%\n",
			o.Mode, o.Reps, o.AvgRTT.Round(10*time.Nanosecond), o.OverheadPct)
	}
	out += "\n  the FIFO ring's calm tail evicts exactly the overload's slow traces;\n  the tail keeper decides at trace end and keeps them all.\n"
	return out
}
