// Asynchronous invocation: GlobalPtr.InvokeAsync returns a future while
// the request is pipelined on the wire. The first attempt is issued in
// the caller's goroutine through PipelinedProtocol.Begin when the bound
// protocol supports it, so a loop of InvokeAsync calls genuinely keeps
// many requests in flight per connection; the adaptation machinery
// (migration chase, protocol re-selection, retry backoff) runs on the
// completion goroutine and is shared verbatim with the synchronous path
// via prepare/settle.
package core

import (
	"sync"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/future"
	"openhpcxx/internal/wire"
)

// InvokeAsync calls a method on the remote object without waiting for
// the reply. It returns a future that resolves with the reply body or
// error; the same transparent adaptation as Invoke (FaultMoved chase,
// FaultNotApplicable re-selection, transport-error invalidation with
// backoff) happens on the completion path before the future resolves.
//
// Admission is bounded by the per-GP in-flight limiter (default
// DefaultMaxInFlight, steerable with SetMaxInFlight): when the limit is
// reached, InvokeAsync blocks the caller until a slot frees — natural
// backpressure rather than unbounded queueing. Canceling the returned
// future releases its slot immediately; the request already on the wire
// runs to completion on the server and its reply is discarded.
func (g *GlobalPtr) InvokeAsync(method string, args []byte) *future.Future {
	fut := future.New()

	g.mu.Lock()
	sem := g.inflight
	g.mu.Unlock()
	sem <- struct{}{} // admission: backpressure at the in-flight bound
	var relOnce sync.Once
	release := func() { relOnce.Do(func() { <-sem }) }
	fut.OnCancel(release)

	p, err := g.prepare(wire.TRequest, method, args)
	if err != nil {
		release()
		fut.Fail(err)
		return fut
	}
	p.pm.calls.Inc()
	p.pm.reqBytes.Add(uint64(len(args)))
	start := time.Now()

	if pp, ok := p.proto.(PipelinedProtocol); ok {
		pending, berr := pp.Begin(p.req)
		if berr == nil {
			go func() {
				defer release()
				reply, rerr := pending.Reply()
				p.pm.latency.ObserveDuration(time.Since(start))
				g.settleAsync(fut, p, reply, rerr, method, args)
			}()
			return fut
		}
		go func() {
			defer release()
			g.settleAsync(fut, p, nil, berr, method, args)
		}()
		return fut
	}

	// Protocol without Begin: run Call in the completion goroutine — the
	// futures surface is preserved, per-connection pipelining is not.
	go func() {
		defer release()
		reply, cerr := p.proto.Call(p.req)
		p.pm.latency.ObserveDuration(time.Since(start))
		g.settleAsync(fut, p, reply, cerr, method, args)
	}()
	return fut
}

// settleAsync classifies the first attempt's outcome and, when the
// adaptation machinery asks for a retry, runs the remaining attempts
// synchronously in the completion goroutine before resolving the
// future. A canceled future abandons the chase between attempts.
func (g *GlobalPtr) settleAsync(fut *future.Future, p prepared, reply *wire.Message, err error, method string, args []byte) {
	body, done, backoff, serr := g.settle(p, reply, err)
	if done {
		finishFuture(fut, body, serr)
		return
	}
	lastErr, needBackoff := serr, backoff
	for attempt := 1; attempt < maxInvokeAttempts; attempt++ {
		if _, _, resolved := fut.TryResult(); resolved {
			return // canceled (or raced): nobody is waiting, stop retrying
		}
		if needBackoff {
			clock.Sleep(g.host.rt.Clock(), retryBackoff(attempt))
		}
		rp, perr := g.prepare(wire.TRequest, method, args)
		if perr != nil {
			fut.Fail(perr)
			return
		}
		rp.pm.calls.Inc()
		rp.pm.reqBytes.Add(uint64(len(args)))
		start := time.Now()
		r, cerr := rp.proto.Call(rp.req)
		rp.pm.latency.ObserveDuration(time.Since(start))
		body, done, backoff, serr := g.settle(rp, r, cerr)
		if done {
			finishFuture(fut, body, serr)
			return
		}
		lastErr, needBackoff = serr, backoff
	}
	fut.Fail(g.giveUp(method, lastErr))
}

func finishFuture(f *future.Future, body []byte, err error) {
	if err != nil {
		f.Fail(err)
		return
	}
	f.Complete(body)
}
