package core

import (
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/obs"
)

// TestInvokeFeedsEndpointMeters pins the meter plumbing: every finished
// exchange moves the endpoint's latency level and byte rate, and the
// meters surface through MetricsSnapshot and Status.
func TestInvokeFeedsEndpointMeters(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	_, ref := exportEcho(t, srv)
	gp := client.NewGlobalPtr(ref)

	for i := 0; i < 3; i++ {
		if _, err := gp.Invoke("echo", []byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}

	snap := rt.MetricsSnapshot()
	var latKey, bpsKey string
	for k := range snap.Meters {
		if strings.HasPrefix(k, "rpc.endpoint.latency_us{") {
			latKey = k
		}
		if strings.HasPrefix(k, "rpc.endpoint.bytes_ps{") {
			bpsKey = k
		}
	}
	if latKey == "" || bpsKey == "" {
		t.Fatalf("endpoint meters missing from snapshot: %v", snap.MeterNames())
	}
	if !strings.Contains(latKey, `proto="hpcx-tcp"`) || !strings.Contains(latKey, `endpoint="`) {
		t.Fatalf("latency meter key %q lacks proto/endpoint labels", latKey)
	}
	lat := snap.Meters[latKey]
	if lat.Count != 3 || lat.Level <= 0 {
		t.Fatalf("latency meter %+v after 3 invokes", lat)
	}
	bps := snap.Meters[bpsKey]
	if bps.Count != 3 || bps.Rate <= 0 {
		t.Fatalf("bytes meter %+v after 3 invokes", bps)
	}

	st := rt.Status()
	if _, ok := st.Meters[latKey]; !ok {
		t.Fatalf("Status() lacks meter %q: %v", latKey, st.Meters)
	}
}

// TestEndpointMeterDeterministicUnderFakeClock pins the fake-clock
// contract: meter rates decay against the runtime clock, so a simulated
// schedule produces exactly reproducible readings.
func TestEndpointMeterDeterministicUnderFakeClock(t *testing.T) {
	run := func() (float64, float64) {
		rt := NewRuntime(nil, "p")
		defer rt.Close()
		fc := clock.NewFake(time.Unix(1000, 0))
		rt.SetClock(fc)
		em := rt.endpointMeter("hpcx-tcp|sim://mA:1")
		for i := 0; i < 10; i++ {
			em.observe(2*time.Millisecond, 512, fc.Now())
			fc.Advance(time.Second)
		}
		ms := rt.MetricsSnapshot().Meters[`rpc.endpoint.latency_us{endpoint="sim://mA:1",proto="hpcx-tcp"}`]
		bs := rt.MetricsSnapshot().Meters[`rpc.endpoint.bytes_ps{endpoint="sim://mA:1",proto="hpcx-tcp"}`]
		return ms.Level, bs.Rate
	}
	l1, r1 := run()
	l2, r2 := run()
	if l1 != l2 || r1 != r2 {
		t.Fatalf("fake-clock meters diverged: level %g vs %g, rate %g vs %g", l1, l2, r1, r2)
	}
	if l1 != 2000 {
		t.Fatalf("latency level %g, want 2000µs (constant samples)", l1)
	}
	if r1 <= 0 || r1 > 512 {
		t.Fatalf("byte rate %g for 512 B/s offered load", r1)
	}
}

// TestEndpointMeterCacheSharesHandles pins the cache contract: one
// meter pair per endpoint key, shared across prepares.
func TestEndpointMeterCacheSharesHandles(t *testing.T) {
	rt := NewRuntime(nil, "p")
	defer rt.Close()
	a := rt.endpointMeter("shm|local")
	b := rt.endpointMeter("shm|local")
	if a != b {
		t.Fatal("same key produced distinct meter pairs")
	}
	if c := rt.endpointMeter("shm|other"); c == a {
		t.Fatal("distinct keys share a meter pair")
	}
}

// meterLabel truncation must cut on a rune boundary: a multi-byte rune
// straddling the limit would otherwise be split into invalid UTF-8 in
// a Prometheus label value.
func TestMeterLabelTruncatesOnRuneBoundary(t *testing.T) {
	long := strings.Repeat("x", 95) + "日本語テスト"
	got := meterLabel(long)
	if !utf8.ValidString(got) {
		t.Fatalf("truncated label is invalid UTF-8: %q", got)
	}
	if !strings.Contains(got, "…") {
		t.Fatalf("overlong label not elided: %q", got)
	}
	// Distinct overlong addresses must stay distinguishable.
	if meterLabel(long+"a") == meterLabel(long+"b") {
		t.Fatal("hash suffix failed to distinguish elided labels")
	}
	// Short labels pass through untouched.
	if meterLabel("tcp:1234") != "tcp:1234" {
		t.Fatal("short label modified")
	}
}

// TestTailKeeperEndToEndRetention drives real invocations through a
// runtime whose recorder is a TailKeeper: the errored invocation's
// whole trace (client and server halves) is retained, the healthy
// invocation against a high slow bar is dropped — the tail-based
// policy applied to live wire traffic, not synthetic spans.
func TestTailKeeperEndToEndRetention(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	_, ref := exportEcho(t, srv)
	gp := client.NewGlobalPtr(ref)

	tk := obs.NewTailKeeper(obs.TailKeeperOptions{
		MaxSpans: 512,
		MinSlow:  time.Hour, // nothing is slow; only errors survive
		Baseline: -1,        // no baseline reservoir
		Clock:    rt.Clock(),
	})
	rt.Tracer().SetRecorder(tk)
	defer rt.Tracer().SetRecorder(nil)

	if _, err := gp.Invoke("echo", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if _, err := gp.Invoke("fail", []byte("x")); err == nil {
		t.Fatal("fail method did not fail")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if tr := findKeptRoot(tk, "invoke"); tr != 0 {
			if got := tk.Policy(tr); got != obs.PolicyError {
				t.Fatalf("kept policy %q, want %q", got, obs.PolicyError)
			}
			spans := tk.Trace(tr)
			names := make(map[string]bool, len(spans))
			for _, s := range spans {
				names[s.Name] = true
			}
			if !names["invoke"] || !names["dispatch"] {
				t.Fatalf("retained trace missing client or server half: %v", names)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("errored trace never retained; stats %+v", tk.Stats())
		}
		clock.Sleep(clock.Real{}, time.Millisecond)
	}

	// The healthy echo must NOT be retained: every kept root is the
	// errored invocation's.
	for _, s := range tk.Spans() {
		if s.Parent == 0 && s.Err == "" {
			t.Fatalf("healthy trace retained: %+v", s)
		}
	}
}

// findKeptRoot returns the trace ID of a kept root span with the given
// name and a recorded error, or 0.
func findKeptRoot(tk *obs.TailKeeper, name string) obs.TraceID {
	for _, s := range tk.Spans() {
		if s.Parent == 0 && s.Name == name && s.Err != "" {
			return s.Trace
		}
	}
	return 0
}
