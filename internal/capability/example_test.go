package capability_test

import (
	"errors"
	"fmt"
	"time"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
)

// ExampleGlueEntry builds the paper's Figure 2 configuration: a glue
// protocol holding an encryption capability and a two-request quota, and
// shows the quota denying the third call.
func ExampleGlueEntry() {
	net := netsim.New()
	net.AddLAN("lan", "campus", netsim.ProfileUnshaped)
	net.MustAddMachine("srv", "lan")
	net.MustAddMachine("cli", "lan")

	rt := core.NewRuntime(net, "example")
	capability.Install(rt.DefaultPool())
	defer rt.Close()

	server, _ := rt.NewContext("server", "srv")
	_ = server.BindSim(0)
	servant, _ := server.Export("Echo", nil, map[string]core.Method{
		"echo": func(args []byte) ([]byte, error) { return args, nil },
	})
	base, _ := server.EntryStream()
	glue, _ := capability.GlueEntry(server, "figure-2", base,
		capability.NewRandomEncrypt(capability.ScopeAlways), // C1
		capability.NewQuota(2, time.Time{}),                 // C2
	)
	ref := server.NewRef(servant, glue)

	client, _ := rt.NewContext("client", "cli")
	gp := client.NewGlobalPtr(ref)
	for i := 1; i <= 3; i++ {
		_, err := gp.Invoke("echo", []byte("data"))
		var f *wire.Fault
		switch {
		case err == nil:
			fmt.Printf("request %d served\n", i)
		case errors.As(err, &f) && f.Code == wire.FaultQuota:
			fmt.Printf("request %d denied: quota\n", i)
		default:
			fmt.Println("unexpected:", err)
		}
	}
	// Output:
	// request 1 served
	// request 2 served
	// request 3 denied: quota
}
