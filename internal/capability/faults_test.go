package capability

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
)

// failingProto is a base protocol whose transport always dies.
type failingProto struct{ calls int }

func (p *failingProto) ID() core.ProtoID { return "dead" }
func (p *failingProto) Call(m *wire.Message) (*wire.Message, error) {
	p.calls++
	return nil, errors.New("transport down")
}
func (p *failingProto) Close() error { return nil }

// TestRefundOnTransportError pins the Refunder contract: when the base
// transport fails, the client-mirror quota and rate-limit charges of
// that attempt are handed back (in reverse chain order), so failover
// retries do not double-charge.
func TestRefundOnTransportError(t *testing.T) {
	q := NewQuota(3, time.Time{})
	r := MustNewRateLimit(1000, 4)
	g := NewGlue("t", &failingProto{}, clock.Real{}, q, r)

	for i := 0; i < 5; i++ {
		if _, err := g.Call(&wire.Message{Type: wire.TRequest, Object: "o", Method: "m"}); err == nil {
			t.Fatalf("call %d over a dead transport succeeded", i)
		}
	}
	if got := q.Used(); got != 0 {
		t.Fatalf("quota used = %d after failed attempts, want 0 (refunded)", got)
	}
	if got := r.Tokens(); got < 3.999 {
		t.Fatalf("rate tokens = %g after failed attempts, want the full burst back", got)
	}
}

// TestRefundOnBeginError covers the pipelined path's two failure points:
// the non-pipelined fallback goroutine and the pending's Reply.
func TestRefundOnBeginError(t *testing.T) {
	q := NewQuota(3, time.Time{})
	g := NewGlue("t", &failingProto{}, clock.Real{}, q)
	p, err := g.Begin(&wire.Message{Type: wire.TRequest, Object: "o", Method: "m"})
	if err != nil {
		t.Fatalf("Begin over a non-pipelined base must defer the failure, got %v", err)
	}
	if _, err := p.Reply(); err == nil {
		t.Fatal("pending over a dead transport succeeded")
	}
	if got := q.Used(); got != 0 {
		t.Fatalf("quota used = %d after failed Begin, want 0 (refunded)", got)
	}
}

// TestNoRefundOnServerFault: a fault produced by the server means the
// request reached it — the authoritative side charged, so the mirror
// charge must stand.
func TestNoRefundOnServerFault(t *testing.T) {
	q := NewQuota(3, time.Time{})
	faulting := &localProto{handle: func(m *wire.Message) *wire.Message {
		f, _ := wire.FaultMessage(m, wire.Faultf(wire.FaultNoMethod, "nope"))
		return f
	}}
	g := NewGlue("t", faulting, clock.Real{}, q)
	reply, err := g.Call(&wire.Message{Type: wire.TRequest, Object: "o", Method: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TFault {
		t.Fatalf("reply type %v, want TFault", reply.Type)
	}
	if got := q.Used(); got != 1 {
		t.Fatalf("quota used = %d after a server fault, want 1 (the request executed server-side logic)", got)
	}
}

// glueFaultWorld is the end-to-end fixture: a server on a crashable
// machine with a glue (audit+quota) entry, and a client elsewhere.
func glueFaultWorld(t *testing.T) (n *netsim.Network, rt *core.Runtime, server *core.Context, s *core.Servant, client *core.Context) {
	t.Helper()
	n = netsim.New()
	n.AddLAN("lan1", "campus1", netsim.ProfileUnshaped)
	n.AddLAN("lan2", "campus1", netsim.ProfileUnshaped)
	n.CampusLink = netsim.ProfileUnshaped
	n.WANLink = netsim.ProfileUnshaped
	n.MustAddMachine("srv-m", "lan1")
	n.MustAddMachine("cli-m", "lan2")
	rt = core.NewRuntime(n, "proc1")
	Install(rt.DefaultPool())
	t.Cleanup(rt.Close)
	server, s = echoServer(t, rt, "server", "srv-m")
	var err error
	client, err = rt.NewContext("client", "cli-m")
	if err != nil {
		t.Fatal(err)
	}
	return n, rt, server, s, client
}

// TestQuotaNotDoubleChargedAcrossCrash: a quota-metered glue reference
// through a server crash. The failed attempts (client-side charges
// refunded, server never reached) must not eat into the budget: after
// the restart the full remainder is still spendable.
func TestQuotaNotDoubleChargedAcrossCrash(t *testing.T) {
	n, _, server, s, client := glueFaultWorld(t)
	const port = 7301
	// Re-bind the stream endpoint on a fixed port so the address in the
	// glue entry survives the crash/restart cycle.
	if err := server.BindSim(port); err != nil {
		t.Fatal(err)
	}
	base, err := server.EntryStream()
	if err != nil {
		t.Fatal(err)
	}
	glueE, err := GlueEntry(server, "metered", base, NewQuota(3, time.Time{}))
	if err != nil {
		t.Fatal(err)
	}
	gp := client.NewGlobalPtr(server.NewRef(s, glueE))

	if _, err := gp.Invoke("echo", []byte("one")); err != nil {
		t.Fatal(err)
	}

	n.Crash("srv-m")
	if _, err := gp.Invoke("echo", []byte("lost")); err == nil {
		t.Fatal("call through the outage succeeded with no backup entry")
	}
	n.Restart("srv-m")
	if err := server.BindSim(port); err != nil {
		t.Fatalf("re-bind after restart: %v", err)
	}

	// The failed attempts must not have consumed quota anywhere: the two
	// remaining units are still spendable...
	for i := 0; i < 2; i++ {
		if _, err := gp.Invoke("echo", []byte("post")); err != nil {
			t.Fatalf("post-restart call %d failed — budget leaked to dead attempts: %v", i, err)
		}
	}
	// ...and the fourth executed request trips the authoritative quota.
	_, err = gp.Invoke("echo", []byte("over"))
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultQuota {
		t.Fatalf("call past the budget: %v, want FaultQuota", err)
	}
	if got := s.Calls(); got != 3 {
		t.Fatalf("servant executed %d calls, want exactly the 3 budgeted", got)
	}
}

// TestExpiredRequestStillAudited: the server sheds a deadline-expired
// request after capability un-processing, so the audit capability logs
// it even though the servant never runs — billing and accounting see
// every request that arrived.
func TestExpiredRequestStillAudited(t *testing.T) {
	_, rt, server, s, client := glueFaultWorld(t)
	base, err := server.EntryStream()
	if err != nil {
		t.Fatal(err)
	}
	// Register our own glue server so the test holds the server-side
	// audit instance (GlueEntry rebuilds its own copies).
	var sink bytes.Buffer
	audit := NewAudit("bill", &sink)
	glueE, err := GlueEntry(server, "audited", base, NewAudit("bill", nil))
	if err != nil {
		t.Fatal(err)
	}
	server.RegisterGlue("audited", NewGlueServer("audited", []Capability{audit}, rt.Clock()))

	gp := client.NewGlobalPtr(server.NewRef(s, glueE))
	if _, err := gp.Invoke("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	warmRecords := audit.Seq()
	if warmRecords == 0 {
		t.Fatal("warm-up call not audited")
	}
	calls := s.Calls()

	// An already-expired deadline: the server sheds the request.
	gp.SetDefaultDeadline(time.Nanosecond)
	_, err = gp.Invoke("echo", []byte("late"))
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultExpired {
		t.Fatalf("expired call: %v, want FaultExpired", err)
	}
	if s.Calls() != calls {
		t.Fatal("servant executed an expired request")
	}
	if audit.Seq() <= warmRecords {
		t.Fatal("expired request left no audit record")
	}
	if !strings.Contains(sink.String(), "method=echo") {
		t.Fatalf("audit log missing the request record:\n%s", sink.String())
	}
}
