package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/stats"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/wire"
)

// GlobalPtr (the paper's GP) is a client-side handle on a remote server
// object. It holds an object reference and lazily binds a protocol
// object chosen by automatic run-time protocol selection; the binding is
// re-evaluated whenever the reference changes (migration) or the
// selected protocol fails.
type GlobalPtr struct {
	host *Context

	mu      sync.Mutex
	ref     *ObjectRef
	proto   Protocol
	entry   int           // index into ref.Protocols of the selected entry
	metrics *protoMetrics // cached handles for the bound protocol
	policy  *transport.BatchPolicy

	inflight chan struct{} // per-GP async in-flight limiter
}

// protoMetrics caches the metric handles for one bound protocol, so the
// invocation hot path increments atomics instead of rebuilding metric
// names and taking the registry lock on every call.
type protoMetrics struct {
	calls, oneway, reqBytes, respBytes *stats.Counter
	transportErrors, faults            *stats.Counter
	latency                            *stats.Histogram
}

func newProtoMetrics(r *stats.Registry, pid string) *protoMetrics {
	return &protoMetrics{
		calls:           r.Counter("rpc." + pid + ".calls"),
		oneway:          r.Counter("rpc." + pid + ".oneway"),
		reqBytes:        r.Counter("rpc." + pid + ".req_bytes"),
		respBytes:       r.Counter("rpc." + pid + ".resp_bytes"),
		transportErrors: r.Counter("rpc." + pid + ".transport_errors"),
		faults:          r.Counter("rpc." + pid + ".faults"),
		latency:         r.Histogram("rpc." + pid + ".latency_us"),
	}
}

// DefaultMaxInFlight is the default per-GP bound on outstanding
// asynchronous invocations.
const DefaultMaxInFlight = 32

// NewGlobalPtr binds a reference to a client context. The reference is
// cloned, so callers may keep mutating their copy.
func (c *Context) NewGlobalPtr(ref *ObjectRef) *GlobalPtr {
	return &GlobalPtr{
		host:     c,
		ref:      ref.Clone(),
		entry:    -1,
		inflight: make(chan struct{}, DefaultMaxInFlight),
	}
}

// Ref returns a copy of the current object reference.
func (g *GlobalPtr) Ref() *ObjectRef {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ref.Clone()
}

// SetRef replaces the reference (e.g. with a re-ordered protocol table)
// and invalidates the protocol binding.
func (g *GlobalPtr) SetRef(ref *ObjectRef) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ref = ref.Clone()
	g.invalidateLocked()
}

// Invalidate drops the protocol binding; the next call re-selects.
func (g *GlobalPtr) Invalidate() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.invalidateLocked()
}

func (g *GlobalPtr) invalidateLocked() {
	if g.proto != nil {
		g.proto.Close()
		g.proto = nil
	}
	g.entry = -1
	g.metrics = nil
}

// SetMaxInFlight resizes the per-GP bound on outstanding asynchronous
// invocations (n <= 0 restores the default). Resizing affects future
// InvokeAsync calls; invocations already in flight drain against the
// limiter they were admitted under.
func (g *GlobalPtr) SetMaxInFlight(n int) {
	if n <= 0 {
		n = DefaultMaxInFlight
	}
	g.mu.Lock()
	g.inflight = make(chan struct{}, n)
	g.mu.Unlock()
}

// SetBatchPolicy steers adaptive micro-batching for this GP: requests
// are coalesced into wire.TBatch frames under the given watermarks when
// the bound protocol supports it (the stream family and glue chains over
// it do; Nexus embeds frames per-RSR and ignores the knob). A nil policy
// disables batching. The policy survives rebinds — it is re-applied
// after every protocol selection.
func (g *GlobalPtr) SetBatchPolicy(p *transport.BatchPolicy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p == nil {
		g.policy = nil
	} else {
		cp := *p
		g.policy = &cp
	}
	if g.proto != nil {
		g.applyBatchingLocked()
	}
}

// BatchPolicy reports the configured batching policy (nil when off).
func (g *GlobalPtr) BatchPolicy() *transport.BatchPolicy {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.policy == nil {
		return nil
	}
	cp := *g.policy
	return &cp
}

// applyBatchingLocked pushes the GP's policy into the bound protocol, if
// it listens. Caller holds g.mu.
func (g *GlobalPtr) applyBatchingLocked() {
	bp, ok := g.proto.(BatchingProtocol)
	if !ok {
		return
	}
	if g.policy == nil {
		bp.SetBatching(transport.BatchPolicy{})
	} else {
		bp.SetBatching(*g.policy)
	}
}

// SelectedProtocol reports which protocol the GP is currently bound to,
// selecting one if necessary. The experiments use this to observe
// adaptation (Figure 4's step table).
func (g *GlobalPtr) SelectedProtocol() (ProtoID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.bindLocked(); err != nil {
		return "", err
	}
	return g.ref.Protocols[g.entry].ID, nil
}

// SelectedEntry reports the index into the reference's protocol table of
// the bound entry, plus its protocol id, selecting first if necessary.
// Experiments use it to tell apart multiple glue entries (Figure 4-B has
// two).
func (g *GlobalPtr) SelectedEntry() (int, ProtoID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.bindLocked(); err != nil {
		return -1, "", err
	}
	return g.entry, g.ref.Protocols[g.entry].ID, nil
}

// bindLocked runs protocol selection if no protocol is bound.
func (g *GlobalPtr) bindLocked() error {
	if g.proto != nil {
		return nil
	}
	f, idx, err := g.host.pool.Select(g.ref, g.host.loc)
	if err != nil {
		return err
	}
	p, err := f.New(g.ref.Protocols[idx], g.ref, g.host)
	if err != nil {
		return fmt.Errorf("core: instantiating %s: %w", f.ID(), err)
	}
	g.proto = p
	g.entry = idx
	// Satellite of the async work: metric handles are resolved once per
	// bind, not once per call.
	g.metrics = newProtoMetrics(g.host.rt.Metrics(), string(p.ID()))
	g.applyBatchingLocked()
	g.host.rt.recordEvent("select", g.ref.Object,
		"context %s picked table[%d] %s (server at %s)", g.host.name, idx, p.ID(), g.ref.Server)
	return nil
}

// maxInvokeAttempts bounds migration chases: an object hopping contexts
// mid-call yields FaultMoved chains; each hop refreshes the reference.
const maxInvokeAttempts = 4

// Retry backoff: attempts after a transport error or a stale protocol
// choice wait base<<n capped at retryBackoffCap, with ±50% jitter so a
// herd of GPs re-selecting against one recovering server de-correlates.
// Migration chases (FaultMoved) skip the backoff — the tombstone hands
// over a fresh, authoritative reference, so retrying immediately is
// right. Sleeps go through the runtime clock: tests with clock.Fake pay
// simulated time only.
const (
	retryBackoffBase = 2 * time.Millisecond
	retryBackoffCap  = 50 * time.Millisecond
)

// retryBackoff computes the jittered delay before retry attempt n (n>=1).
func retryBackoff(attempt int) time.Duration {
	d := retryBackoffBase << (attempt - 1)
	if d > retryBackoffCap || d <= 0 {
		d = retryBackoffCap
	}
	// Jitter in [0.5d, 1.5d).
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// prepared is one ready-to-send attempt: the bound protocol, the frame,
// and the metric handles that account for it.
type prepared struct {
	proto Protocol
	req   *wire.Message
	pm    *protoMetrics
}

// prepare binds (selecting a protocol if needed) and builds the request
// frame for one attempt.
func (g *GlobalPtr) prepare(typ wire.MsgType, method string, args []byte) (prepared, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.bindLocked(); err != nil {
		return prepared{}, err
	}
	return prepared{
		proto: g.proto,
		req: &wire.Message{
			Type:   typ,
			Object: string(g.ref.Object),
			Method: method,
			Epoch:  g.ref.Epoch,
			Body:   args,
		},
		pm: g.metrics,
	}, nil
}

// settle classifies the outcome of one attempt and performs the
// adaptation side effects (invalidation, reference refresh, metrics).
// done=false means the caller should retry; backoff reports whether the
// retry deserves a delay (transport errors and stale selections do,
// migration chases do not).
func (g *GlobalPtr) settle(p prepared, reply *wire.Message, err error) (body []byte, done bool, backoff bool, outErr error) {
	if err != nil {
		p.pm.transportErrors.Inc()
		// Transport-level failure: drop the binding and retry through a
		// fresh selection.
		g.Invalidate()
		return nil, false, true, err
	}
	switch reply.Type {
	case wire.TReply:
		p.pm.respBytes.Add(uint64(len(reply.Body)))
		return reply.Body, true, false, nil
	case wire.TFault:
		p.pm.faults.Inc()
		ferr := wire.DecodeFault(reply.Body)
		var f *wire.Fault
		if !errors.As(ferr, &f) {
			return nil, true, false, ferr
		}
		switch f.Code {
		case wire.FaultMoved:
			newRef, derr := DecodeRef(f.Data)
			if derr != nil {
				return nil, true, false, fmt.Errorf("core: moved but reference undecodable: %w", derr)
			}
			g.host.rt.recordEvent("refresh", newRef.Object,
				"context %s chased tombstone to %s (epoch %d)", g.host.name, newRef.Server, newRef.Epoch)
			g.SetRef(newRef)
			return nil, false, false, f
		case wire.FaultNotApplicable:
			g.Invalidate()
			return nil, false, true, f
		default:
			return nil, true, false, f
		}
	default:
		return nil, true, false, fmt.Errorf("core: unexpected reply type %v", reply.Type)
	}
}

// giveUp builds the terminal error after maxInvokeAttempts retries.
func (g *GlobalPtr) giveUp(method string, lastErr error) error {
	return fmt.Errorf("core: invoke %s.%s gave up after %d attempts: %w",
		g.Object(), method, maxInvokeAttempts, lastErr)
}

// Invoke calls a method on the remote object: it selects a protocol,
// sends the request, and transparently adapts to migration (FaultMoved
// refreshes the reference and re-selects) and to stale protocol choices
// (FaultNotApplicable re-selects).
func (g *GlobalPtr) Invoke(method string, args []byte) ([]byte, error) {
	var lastErr error
	needBackoff := false
	for attempt := 0; attempt < maxInvokeAttempts; attempt++ {
		if attempt > 0 && needBackoff {
			clock.Sleep(g.host.rt.Clock(), retryBackoff(attempt))
		}
		p, err := g.prepare(wire.TRequest, method, args)
		if err != nil {
			return nil, err
		}
		p.pm.calls.Inc()
		p.pm.reqBytes.Add(uint64(len(args)))
		start := time.Now()
		reply, err := p.proto.Call(p.req)
		p.pm.latency.ObserveDuration(time.Since(start))

		body, done, backoff, serr := g.settle(p, reply, err)
		if done {
			return body, serr
		}
		lastErr, needBackoff = serr, backoff
	}
	return nil, g.giveUp(method, lastErr)
}

// Object returns the target object id.
func (g *GlobalPtr) Object() ObjectID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ref.Object
}
