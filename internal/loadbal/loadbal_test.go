package loadbal

import (
	"sync"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/migrate"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/registry"
	"openhpcxx/internal/xdr"
)

// ticker is a trivially migratable servant counting its own invocations.
type ticker struct {
	mu sync.Mutex
	n  int64
}

func (c *ticker) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := xdr.NewEncoder(8)
	e.PutInt64(c.n)
	return e.Bytes(), nil
}

func (c *ticker) Restore(state []byte) error {
	v, err := xdr.NewDecoder(state).Int64()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.n = v
	c.mu.Unlock()
	return nil
}

const tickerIface = "test.Ticker"

func tickerActivator() (any, map[string]core.Method) {
	c := &ticker{}
	return c, map[string]core.Method{
		"tick": func(args []byte) ([]byte, error) {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.n++
			return nil, nil
		},
	}
}

func world(t *testing.T) *core.Runtime {
	t.Helper()
	n := netsim.New()
	n.AddLAN("lan", "c", netsim.ProfileUnshaped)
	for _, m := range []string{"m0", "m1", "m2"} {
		n.MustAddMachine(netsim.MachineID(m), "lan")
	}
	rt := core.NewRuntime(n, "p")
	rt.RegisterIface(tickerIface, tickerActivator)
	t.Cleanup(rt.Close)
	return rt
}

func host(t *testing.T, rt *core.Runtime, name, machine string) *core.Context {
	t.Helper()
	ctx, err := rt.NewContext(name, netsim.MachineID(machine))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.BindSim(0); err != nil {
		t.Fatal(err)
	}
	return ctx
}

func exportTicker(t *testing.T, ctx *core.Context) *core.ObjectRef {
	t.Helper()
	impl, methods := tickerActivator()
	s, err := ctx.Export(tickerIface, impl, methods)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ctx.EntryStream()
	if err != nil {
		t.Fatal(err)
	}
	return ctx.NewRef(s, e)
}

func TestSyntheticLoad(t *testing.T) {
	var s SyntheticLoad
	src := s.Source()
	if src() != 0 {
		t.Fatal("initial load")
	}
	s.Set(5)
	s.Add(2)
	if src() != 7 {
		t.Fatal("set/add")
	}
}

func TestCallLoadDeltas(t *testing.T) {
	var calls uint64
	cl := NewCallLoad(func() uint64 { return calls })
	src := cl.Source()
	if src() != 0 {
		t.Fatal("initial delta")
	}
	calls = 10
	if src() != 10 {
		t.Fatal("first delta")
	}
	calls = 15
	if src() != 5 {
		t.Fatal("second delta")
	}
}

func TestRebalanceMovesHotObject(t *testing.T) {
	rt := world(t)
	hot := host(t, rt, "hot", "m1")
	cold := host(t, rt, "cold", "m2")

	var hotLoad, coldLoad SyntheticLoad
	hotLoad.Set(10)
	coldLoad.Set(1)

	ref := exportTicker(t, hot)
	b := New(Policy{HighWater: 5, Margin: 2}, nil)
	b.AddHost(hot, hotLoad.Source())
	b.AddHost(cold, coldLoad.Source())
	b.Manage("", ref, hot)

	moves, err := b.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].From != "hot" || moves[0].To != "cold" {
		t.Fatalf("moves %+v", moves)
	}
	if _, ok := hot.Servant(ref.Object); ok {
		t.Fatal("object still on hot host")
	}
	if _, ok := cold.Servant(ref.Object); !ok {
		t.Fatal("object not on cold host")
	}
	got, ok := b.Ref(ref.Object)
	if !ok || got.Server.Machine != "m2" {
		t.Fatalf("tracked ref %+v", got)
	}
}

func TestRebalanceRespectsHighWater(t *testing.T) {
	rt := world(t)
	a := host(t, rt, "a", "m1")
	bCtx := host(t, rt, "b", "m2")
	var la, lb SyntheticLoad
	la.Set(4) // below high water
	lb.Set(1)
	ref := exportTicker(t, a)
	b := New(Policy{HighWater: 5, Margin: 1}, nil)
	b.AddHost(a, la.Source())
	b.AddHost(bCtx, lb.Source())
	b.Manage("", ref, a)
	moves, err := b.Rebalance()
	if err != nil || len(moves) != 0 {
		t.Fatalf("moves %v err %v", moves, err)
	}
}

func TestRebalanceRespectsMargin(t *testing.T) {
	rt := world(t)
	a := host(t, rt, "a", "m1")
	bCtx := host(t, rt, "b", "m2")
	var la, lb SyntheticLoad
	la.Set(10)
	lb.Set(9.5) // gap under margin: moving would just oscillate
	ref := exportTicker(t, a)
	b := New(Policy{HighWater: 5, Margin: 2}, nil)
	b.AddHost(a, la.Source())
	b.AddHost(bCtx, lb.Source())
	b.Manage("", ref, a)
	moves, err := b.Rebalance()
	if err != nil || len(moves) != 0 {
		t.Fatalf("moves %v err %v", moves, err)
	}
}

func TestRebalanceSingleHostNoop(t *testing.T) {
	rt := world(t)
	a := host(t, rt, "a", "m1")
	var la SyntheticLoad
	la.Set(100)
	b := New(Policy{HighWater: 5}, nil)
	b.AddHost(a, la.Source())
	if moves, err := b.Rebalance(); err != nil || moves != nil {
		t.Fatalf("%v %v", moves, err)
	}
}

func TestPickVictimBusiest(t *testing.T) {
	rt := world(t)
	hot := host(t, rt, "hot", "m1")
	cold := host(t, rt, "cold", "m2")
	client := host(t, rt, "client", "m0")

	refIdle := exportTicker(t, hot)
	refBusy := exportTicker(t, hot)
	// Drive traffic to the busy object.
	gp := client.NewGlobalPtr(refBusy)
	for i := 0; i < 5; i++ {
		if _, err := gp.Invoke("tick", nil); err != nil {
			t.Fatal(err)
		}
	}

	var hotLoad, coldLoad SyntheticLoad
	hotLoad.Set(10)
	b := New(Policy{HighWater: 5, Margin: 1}, nil)
	b.AddHost(hot, hotLoad.Source())
	b.AddHost(cold, coldLoad.Source())
	b.Manage("", refIdle, hot)
	b.Manage("", refBusy, hot)

	moves, err := b.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].Object != refBusy.Object {
		t.Fatalf("moves %+v, want busy object %s", moves, refBusy.Object)
	}
}

func TestRebalanceUpdatesRegistry(t *testing.T) {
	rt := world(t)
	regCtx := host(t, rt, "reg", "m0")
	if _, _, err := registry.Serve(regCtx); err != nil {
		t.Fatal(err)
	}
	regAddr, _ := regCtx.Binding(core.ProtoStream)

	hot := host(t, rt, "hot", "m1")
	cold := host(t, rt, "cold", "m2")
	ref := exportTicker(t, hot)

	regCli := registry.NewClient(hot, registry.RefAt(regAddr))
	if err := regCli.Bind("svc/t", ref); err != nil {
		t.Fatal(err)
	}

	var hotLoad, coldLoad SyntheticLoad
	hotLoad.Set(10)
	b := New(Policy{HighWater: 5, Margin: 1}, regCli)
	b.AddHost(hot, hotLoad.Source())
	b.AddHost(cold, coldLoad.Source())
	b.Manage("svc/t", ref, hot)
	if _, err := b.Rebalance(); err != nil {
		t.Fatal(err)
	}
	got, err := regCli.Lookup("svc/t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Server.Machine != "m2" {
		t.Fatalf("registry ref at %v", got.Server)
	}
}

func TestLoadsSnapshot(t *testing.T) {
	rt := world(t)
	a := host(t, rt, "a", "m1")
	c := host(t, rt, "b", "m2")
	var la, lb SyntheticLoad
	la.Set(3)
	lb.Set(4)
	b := New(Policy{HighWater: 5}, nil)
	b.AddHost(a, la.Source())
	b.AddHost(c, lb.Source())
	loads := b.Loads()
	if len(loads) != 2 || loads[0] != 3 || loads[1] != 4 {
		t.Fatalf("loads %v", loads)
	}
}

// Regression: balancer must also work with objects that keep state
// across the move (migrate integration).
func TestMovePreservesTicks(t *testing.T) {
	rt := world(t)
	hot := host(t, rt, "hot", "m1")
	cold := host(t, rt, "cold", "m2")
	client := host(t, rt, "client", "m0")

	ref := exportTicker(t, hot)
	gp := client.NewGlobalPtr(ref)
	for i := 0; i < 3; i++ {
		if _, err := gp.Invoke("tick", nil); err != nil {
			t.Fatal(err)
		}
	}
	newRef, err := migrate.MoveLocal(hot, ref, cold)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := cold.Servant(newRef.Object)
	if !ok {
		t.Fatal("not adopted")
	}
	impl := s.Impl().(*ticker)
	impl.mu.Lock()
	n := impl.n
	impl.mu.Unlock()
	if n != 3 {
		t.Fatalf("ticks %d", n)
	}
}

func TestDaemonRebalances(t *testing.T) {
	rt := world(t)
	hot := host(t, rt, "hot", "m1")
	cold := host(t, rt, "cold", "m2")
	var hotLoad, coldLoad SyntheticLoad
	hotLoad.Set(10)
	ref := exportTicker(t, hot)
	b := New(Policy{HighWater: 5, Margin: 1}, nil)
	b.AddHost(hot, hotLoad.Source())
	b.AddHost(cold, coldLoad.Source())
	b.Manage("", ref, hot)

	d := NewDaemon(b, 5*time.Millisecond)
	d.Start()
	d.Start() // idempotent
	deadline := time.Now().Add(3 * time.Second)
	for len(d.History()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never moved the object")
		}
		clock.Sleep(clock.Real{}, time.Millisecond)
	}
	d.Stop()
	d.Stop() // idempotent
	passes := d.Passes()
	if passes == 0 {
		t.Fatal("no passes recorded")
	}
	// After Stop, no further passes run.
	clock.Sleep(clock.Real{}, 20*time.Millisecond)
	if d.Passes() != passes {
		t.Fatal("daemon still running after Stop")
	}
	if len(d.Errs()) != 0 {
		t.Fatalf("daemon errors: %v", d.Errs())
	}
	mv := d.History()[0]
	if mv.From != "hot" || mv.To != "cold" {
		t.Fatalf("move %+v", mv)
	}
}

func TestRebalanceMultipleMovesPerPass(t *testing.T) {
	rt := world(t)
	hot := host(t, rt, "hot", "m1")
	cold := host(t, rt, "cold", "m2")
	var hotLoad, coldLoad SyntheticLoad
	hotLoad.Set(50)
	refA := exportTicker(t, hot)
	refB := exportTicker(t, hot)
	b := New(Policy{HighWater: 5, Margin: 1, MaxMovesPerPass: 2}, nil)
	b.AddHost(hot, hotLoad.Source())
	b.AddHost(cold, coldLoad.Source())
	b.Manage("", refA, hot)
	b.Manage("", refB, hot)

	// One pass moves one object (the pass re-sorts hosts only once, and
	// the hot host remains the only one over the mark, so the loop may
	// move up to MaxMovesPerPass objects off it).
	moves, err := b.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no moves")
	}
	// A second pass drains the rest.
	moves2, err := b.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	total := len(moves) + len(moves2)
	if total < 2 {
		t.Fatalf("moved %d objects across passes", total)
	}
	if _, ok := cold.Servant(refA.Object); !ok {
		t.Fatal("refA not drained")
	}
	if _, ok := cold.Servant(refB.Object); !ok {
		t.Fatal("refB not drained")
	}
}
