package directory

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
)

// fixture is one directory deployment on a simulated network: three
// machines hosting the plane, one server machine publishing objects,
// one client machine resolving them.
type fixture struct {
	t      *testing.T
	n      *netsim.Network
	rt     *core.Runtime
	clk    clock.Clock
	dirs   []*core.Context
	srvCtx *core.Context
	cliCtx *core.Context
	plane  *Plane
	bs     *Bootstrap
}

// dirPort is the fixed base port of the plane's contexts, so a test
// restarting a crashed machine can re-bind the same address.
const dirPort = 7100

func newFixture(t *testing.T, topo Topology, clk clock.Clock) *fixture {
	t.Helper()
	n := netsim.New()
	n.AddLAN("lan", "campus", netsim.ProfileUnshaped)
	for i := 0; i < 3; i++ {
		n.MustAddMachine(netsim.MachineID(fmt.Sprintf("md%d", i)), "lan")
	}
	n.MustAddMachine("msrv", "lan")
	n.MustAddMachine("mcli", "lan")
	rt := core.NewRuntime(n, "proc")
	if clk != nil {
		rt.SetClock(clk)
	} else {
		clk = clock.Real{}
	}
	t.Cleanup(rt.Close)

	f := &fixture{t: t, n: n, rt: rt, clk: clk}
	for i := 0; i < 3; i++ {
		ctx, err := rt.NewContext(fmt.Sprintf("dir%d", i), netsim.MachineID(fmt.Sprintf("md%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.BindSim(dirPort + i); err != nil {
			t.Fatal(err)
		}
		f.dirs = append(f.dirs, ctx)
	}
	plane, err := ServePlane(f.dirs, topo)
	if err != nil {
		t.Fatal(err)
	}
	f.plane = plane
	if f.bs, err = plane.Bootstrap(); err != nil {
		t.Fatal(err)
	}

	if f.srvCtx, err = rt.NewContext("server", "msrv"); err != nil {
		t.Fatal(err)
	}
	if err := f.srvCtx.BindSim(7200); err != nil {
		t.Fatal(err)
	}
	if f.cliCtx, err = rt.NewContext("client", "mcli"); err != nil {
		t.Fatal(err)
	}
	if err := f.cliCtx.BindSim(7300); err != nil {
		t.Fatal(err)
	}
	return f
}

// exportEcho exports an echo servant on ctx and returns its reference.
func exportEcho(t *testing.T, ctx *core.Context, reply string) (*core.Servant, *core.ObjectRef) {
	t.Helper()
	sv, err := ctx.Export("test.Echo", nil, map[string]core.Method{
		"echo": core.Handler(func(a *core.StringValue) (*core.StringValue, error) {
			return &core.StringValue{V: reply + ":" + a.V}, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ctx.EntryStream()
	if err != nil {
		t.Fatal(err)
	}
	return sv, ctx.NewRef(sv, e)
}

// waitFor polls cond on the real clock until it holds or the deadline
// passes — async watch delivery needs a grace window even on an
// unshaped network.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		clock.Sleep(clock.Real{}, time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestResolveInvokeAndCacheHit(t *testing.T) {
	f := newFixture(t, Topology{Shards: 3}, nil)
	_, ref := exportEcho(t, f.srvCtx, "srv")
	pub, err := NewPublisher(f.srvCtx, f.bs, PublisherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("svc/echo", ref); err != nil {
		t.Fatal(err)
	}

	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	got, err := res.Resolve("svc/echo")
	if err != nil {
		t.Fatal(err)
	}
	if got.Object != ref.Object {
		t.Fatalf("resolved %s, want %s", got.Object, ref.Object)
	}
	gp, err := res.GP("svc/echo")
	if err != nil {
		t.Fatal(err)
	}
	defer gp.Release()
	out, err := core.Call[*core.StringValue, core.StringValue](gp, "echo", &core.StringValue{V: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if out.V != "srv:hi" {
		t.Fatalf("echo = %q", out.V)
	}

	hitsBefore := f.rt.Metrics().Counter("dir.cache.hits").Value()
	if _, err := res.Resolve("svc/echo"); err != nil {
		t.Fatal(err)
	}
	if hits := f.rt.Metrics().Counter("dir.cache.hits").Value(); hits != hitsBefore+1 {
		t.Fatalf("second resolve not served from cache: hits %d -> %d", hitsBefore, hits)
	}
	if f.rt.Metrics().Gauge("dir.shards").Value() != 3 {
		t.Fatalf("dir.shards gauge = %d", f.rt.Metrics().Gauge("dir.shards").Value())
	}
}

func TestWatchInvalidationOnRebind(t *testing.T) {
	f := newFixture(t, Topology{Shards: 3}, nil)
	_, refA := exportEcho(t, f.srvCtx, "a")
	_, refB := exportEcho(t, f.srvCtx, "b")
	pub, err := NewPublisher(f.srvCtx, f.bs, PublisherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("svc/moving", refA); err != nil {
		t.Fatal(err)
	}

	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	got, err := res.Resolve("svc/moving")
	if err != nil || got.Object != refA.Object {
		t.Fatalf("initial resolve: %v %v", got, err)
	}

	// Rebinding to a different reference must push a tombstone that
	// evicts the cached entry; the next resolve sees the new target.
	if err := pub.Publish("svc/moving", refB); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		r, err := res.Resolve("svc/moving")
		return err == nil && r.Object == refB.Object
	}, "cache invalidation after rebind")
	if f.rt.Metrics().Counter("dir.cache.invalidations").Value() == 0 {
		t.Fatal("no invalidation counted")
	}
}

func TestWatchStreamUnderChurn(t *testing.T) {
	f := newFixture(t, Topology{Shards: 2}, nil)
	_, refA := exportEcho(t, f.srvCtx, "a")
	_, refB := exportEcho(t, f.srvCtx, "b")
	pub, err := NewPublisher(f.srvCtx, f.bs, PublisherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	// Migration churn: the name flips between two targets while the
	// resolver keeps resolving. After the churn quiesces the resolver
	// must converge on the final binding — no stale cache survives.
	refs := []*core.ObjectRef{refA, refB}
	for i := 0; i < 20; i++ {
		if err := pub.Publish("svc/churn", refs[i%2]); err != nil {
			t.Fatal(err)
		}
		if _, err := res.Resolve("svc/churn"); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Publish("svc/churn", refB); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		r, err := res.Resolve("svc/churn")
		return err == nil && r.Object == refB.Object
	}, "convergence after churn")
}

func TestLeaseExpiryEvictsAndTombstones(t *testing.T) {
	fc := clock.NewFake(time.Unix(10_000, 0))
	f := newFixture(t, Topology{Shards: 2}, fc)
	_, ref := exportEcho(t, f.srvCtx, "x")
	pub, err := NewPublisher(f.srvCtx, f.bs, PublisherOptions{TTL: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("svc/leased", ref); err != nil {
		t.Fatal(err)
	}
	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if _, err := res.Resolve("svc/leased"); err != nil {
		t.Fatal(err)
	}

	// The publisher dies: heartbeats stop, and within one TTL the
	// sweeper must evict the binding and fan the expiry tombstone out.
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	go func() {
		// Drive simulated time past the lease in sweeper-interval steps;
		// each step lets the re-armed sweeper timer fire.
		for i := 0; i < 40; i++ {
			fc.Advance(250 * time.Millisecond)
			clock.Sleep(clock.Real{}, time.Millisecond)
		}
	}()
	waitFor(t, 5*time.Second, func() bool { return res.CacheLen() == 0 }, "expiry tombstone to evict the cache")

	_, err = res.Resolve("svc/leased")
	var wf *wire.Fault
	if !errors.As(err, &wf) || wf.Code != wire.FaultNoObject {
		t.Fatalf("resolve after expiry: %v, want FaultNoObject", err)
	}
}

func TestShardCrashFailoverWithReplication(t *testing.T) {
	f := newFixture(t, Topology{Shards: 3, Replicas: 2}, nil)
	_, ref := exportEcho(t, f.srvCtx, "r")
	pub, err := NewPublisher(f.srvCtx, f.bs, PublisherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	// Publish a handful of names so at least one lands on each shard.
	names := make([]string, 6)
	for i := range names {
		names[i] = fmt.Sprintf("svc/ha-%d", i)
		if err := pub.Publish(names[i], ref); err != nil {
			t.Fatal(err)
		}
	}
	name := names[0]
	shard := f.plane.Ring().Shard(name)
	primary := netsim.MachineID(fmt.Sprintf("md%d", shard%3))

	// Crash the primary replica's machine on a fault schedule, then
	// resolve with a cold cache: the lookup must fail over to the
	// second entry of the shard's replica table.
	plan := new(netsim.FaultPlan).CrashAt(0, primary)
	plan.Run(f.n).Wait()

	coldRes, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coldRes.Close()
	got, err := coldRes.Resolve(name)
	if err != nil {
		t.Fatalf("resolve with primary down: %v", err)
	}
	if got.Object != ref.Object {
		t.Fatalf("resolved %s, want %s", got.Object, ref.Object)
	}
}

func TestCacheServesDuringPartitionAndTombstoneAfterHeal(t *testing.T) {
	f := newFixture(t, Topology{Shards: 1}, nil)
	_, refA := exportEcho(t, f.srvCtx, "a")
	_, refB := exportEcho(t, f.srvCtx, "b")
	_, refC := exportEcho(t, f.srvCtx, "c")
	pub, err := NewPublisher(f.srvCtx, f.bs, PublisherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("svc/part", refA); err != nil {
		t.Fatal(err)
	}
	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if _, err := res.Resolve("svc/part"); err != nil {
		t.Fatal(err)
	}

	// Partition the client from the whole plane: cached resolution must
	// keep working without touching the network.
	for i := 0; i < 3; i++ {
		f.n.SetPartition("mcli", netsim.MachineID(fmt.Sprintf("md%d", i)), true)
	}
	got, err := res.Resolve("svc/part")
	if err != nil || got.Object != refA.Object {
		t.Fatalf("cached resolve during partition: %v %v", got, err)
	}

	// Rebind while partitioned: the tombstone may never reach the client
	// (the shard's one-way post cannot cross the partition), so the
	// client keeps serving refA from cache.
	if err := pub.Publish("svc/part", refB); err != nil {
		t.Fatal(err)
	}
	// Heal; the next ref-changing rebind re-fires the event and the
	// client converges. (A tombstone lost for good is the GP refresh
	// hook's job — see TestGPRefreshChasesSilentRebind.)
	for i := 0; i < 3; i++ {
		f.n.SetPartition("mcli", netsim.MachineID(fmt.Sprintf("md%d", i)), false)
	}
	if err := pub.Publish("svc/part", refC); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		r, err := res.Resolve("svc/part")
		return err == nil && r.Object == refC.Object
	}, "tombstone after heal")
}

func TestGPRefreshChasesSilentRebind(t *testing.T) {
	f := newFixture(t, Topology{Shards: 2}, nil)
	svA, refA := exportEcho(t, f.srvCtx, "a")
	_, refB := exportEcho(t, f.srvCtx, "b")
	blobA, err := core.EncodeRef(refA)
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := core.EncodeRef(refB)
	if err != nil {
		t.Fatal(err)
	}
	// Preload writes server-side without firing watch events — the
	// "lost tombstone" scenario the GP refresh hook exists for.
	f.plane.Preload("svc/silent", blobA, 0)

	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	gp, err := res.GP("svc/silent")
	if err != nil {
		t.Fatal(err)
	}
	defer gp.Release()
	if _, err := core.Call[*core.StringValue, core.StringValue](gp, "echo", &core.StringValue{V: "1"}); err != nil {
		t.Fatal(err)
	}

	// The object moves and the directory is updated silently: the old
	// servant answers FaultNoObject, the refresh hook re-resolves, and
	// the invocation lands on the new target.
	f.srvCtx.Unexport(svA.ID(), nil)
	f.plane.Preload("svc/silent", blobB, 0)
	out, err := core.Call[*core.StringValue, core.StringValue](gp, "echo", &core.StringValue{V: "2"})
	if err != nil {
		t.Fatalf("invoke after silent rebind: %v", err)
	}
	if out.V != "b:2" {
		t.Fatalf("echo = %q, want routed to new target", out.V)
	}
}

func TestStatusSectionAndWatchGauges(t *testing.T) {
	f := newFixture(t, Topology{Shards: 2, Replicas: 2}, nil)
	_, ref := exportEcho(t, f.srvCtx, "s")
	pub, err := NewPublisher(f.srvCtx, f.bs, PublisherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("svc/status", ref); err != nil {
		t.Fatal(err)
	}
	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if _, err := res.Resolve("svc/status"); err != nil {
		t.Fatal(err)
	}

	st := f.rt.Status()
	sec, ok := st.Sections["directory"]
	if !ok {
		t.Fatal("no directory section in runtime status")
	}
	ps, ok := sec.(planeStatus)
	if !ok {
		t.Fatalf("directory section has type %T", sec)
	}
	if ps.Shards != 2 || ps.Replicas != 2 || len(ps.Table) != 4 {
		t.Fatalf("section = %+v", ps)
	}
	var entries, watchers int
	for _, row := range ps.Table {
		entries += row.Entries
		watchers += row.Watchers
	}
	if entries < 2 {
		t.Fatalf("published binding not visible in section: %+v", ps.Table)
	}
	if watchers == 0 {
		t.Fatal("resolver subscription not visible in section")
	}
	if f.rt.Metrics().Gauge("dir.watch.streams").Value() == 0 {
		t.Fatal("dir.watch.streams gauge not set")
	}
}

func TestResolverUncachedMode(t *testing.T) {
	f := newFixture(t, Topology{Shards: 2}, nil)
	_, ref := exportEcho(t, f.srvCtx, "u")
	pub, err := NewPublisher(f.srvCtx, f.bs, PublisherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("svc/uncached", ref); err != nil {
		t.Fatal(err)
	}
	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	for i := 0; i < 3; i++ {
		if _, err := res.Resolve("svc/uncached"); err != nil {
			t.Fatal(err)
		}
	}
	if res.CacheLen() != 0 {
		t.Fatalf("uncached resolver cached %d entries", res.CacheLen())
	}
	if f.rt.Metrics().Counter("dir.cache.hits").Value() != 0 {
		t.Fatal("uncached resolver recorded cache hits")
	}
}
