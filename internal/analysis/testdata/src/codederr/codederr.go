// Golden corpus for the codederr analyzer: fmt.Errorf outside
// internal/errs is flagged — errors must carry a taxonomy code — while
// the errs constructors, other fmt verbs, and suppressed lines pass.
package codederr

import (
	"errors"
	"fmt"

	"openhpcxx/internal/errs"
)

func naked(id string) error {
	return fmt.Errorf("object %s not found", id) // want "naked fmt.Errorf"
}

func nakedWrap(err error) error {
	if err != nil {
		err = fmt.Errorf("lookup: %w", err) // want "naked fmt.Errorf"
	}
	return err
}

func nestedInLiteral() func() error {
	return func() error {
		return fmt.Errorf("deferred failure") // want "naked fmt.Errorf"
	}
}

func coded(id string, err error) error {
	if err != nil {
		return errs.Wrapf(errs.Transport, err, "dialing %s", id)
	}
	return errs.Newf(errs.NoObject, "object %s not found", id)
}

func otherFmtVerbsPass(id string) string {
	fmt.Println("resolving", id)
	return fmt.Sprintf("object %s", id)
}

func plainErrorsPass() error {
	// errors.New sentinels are fine: they become causes inside coded
	// wrappers, and the analyzer only polices the formatting entry point.
	return errors.New("sentinel")
}

func suppressed() error {
	//lint:ignore codederr corpus example: foreign error fabricated on purpose
	return fmt.Errorf("deliberately uncoded")
}
