package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("value %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value %d", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 110 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Mean != 22 {
		t.Fatalf("mean %f", s.Mean)
	}
	// P50 falls in the bucket holding 3 (values 2,3 share bucket [2,3]).
	if s.P50 < 3 || s.P50 > 7 {
		t.Fatalf("p50 %d", s.P50)
	}
	// P99 lands in 100's bucket: [64,127].
	if s.P99 < 100 || s.P99 > 127 {
		t.Fatalf("p99 %d", s.P99)
	}
	if s.Max < 100 || s.Max > 127 {
		t.Fatalf("max %d", s.Max)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != -5 {
		t.Fatalf("%+v", s)
	}
	if s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("zero bucket quantiles %+v", s)
	}
}

func TestHistogramDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Sum != 3000 {
		t.Fatalf("sum %d", s.Sum)
	}
}

// Property: quantile upper bounds always cover the observed values and
// are within 2x (power-of-two buckets).
func TestQuickHistogramBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		var max int64
		for _, u := range raw {
			v := int64(u)
			h.Observe(v)
			if v > max {
				max = v
			}
		}
		s := h.Snapshot()
		if s.Count != uint64(len(raw)) {
			return false
		}
		// Every quantile bound must be >= some actual value at that
		// rank and <= the max bucket bound.
		if s.Max < max {
			return false
		}
		if max > 0 && s.Max > 2*max {
			return false
		}
		return s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketUpper(t *testing.T) {
	if bucketUpper(0) != 0 || bucketUpper(1) != 1 || bucketUpper(2) != 3 || bucketUpper(3) != 7 {
		t.Fatal("small buckets")
	}
	if bucketUpper(64) != math.MaxInt64 {
		t.Fatal("top bucket")
	}
}

func TestRegistry(t *testing.T) {
	r := New()
	c1 := r.Counter("a.calls")
	c2 := r.Counter("a.calls")
	if c1 != c2 {
		t.Fatal("counter identity")
	}
	c1.Inc()
	r.Counter("b.calls").Add(2)
	r.Histogram("a.latency").Observe(7)
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a.calls" || names[1] != "b.calls" {
		t.Fatalf("names %v", names)
	}
	dump := r.Dump()
	for _, want := range []string{"a.calls 1", "b.calls 2", "a.latency count=1"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("x").Inc()
				r.Histogram("y").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if r.Counter("x").Value() != 1600 {
		t.Fatalf("x = %d", r.Counter("x").Value())
	}
	if r.Histogram("y").Snapshot().Count != 1600 {
		t.Fatal("y count")
	}
}
