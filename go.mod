module openhpcxx

go 1.22
