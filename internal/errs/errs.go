// Package errs is the project's coded-error taxonomy: every error the
// runtime mints carries a machine-readable Code and a reaction Class
// (retryable / permanent / hedgeable / resource), so SLO accounting,
// retry budgets, and the introspection plane can react to *kinds* of
// failure instead of grepping message strings.
//
// The code space is shared with the wire fault codes (internal/wire's
// FaultCode values 1..11 are the same numbers here), so a fault decoded
// off the wire and an error minted in-process carry the same code and
// class — the capability model's structured denials (quota, auth,
// capability) classify identically whether they were refused locally or
// by the remote glue chain. Codes at or above CodeLocalBase never
// travel as faults; the wire layer downgrades them to Internal when a
// server must answer with one.
//
// errs deliberately imports nothing but the standard library (and no
// other project package): xdr, netsim, and wire — the bottom of the
// dependency tower — all mint coded errors through it. The wire
// package, which does know both vocabularies, owns the Fault<->errs
// bridge; it participates here only through the Coder interface.
//
// Construction:
//
//	errs.New(errs.Config, "stream: empty address")
//	errs.Newf(errs.NoObject, "registry: no binding for %q", name)
//	errs.Wrapf(errs.Codec, err, "xdr: field %s", f.Name)
//	errs.New(errs.Unavailable, "draining").With("ctx", c.Name())
//
// Classification (works through any errors.Is/As chain, including
// *wire.Fault and context errors):
//
//	errs.CodeOf(err)  -> errs.Code
//	errs.ClassOf(err) -> errs.Class
//	errs.HasCode(err, errs.Quota)
package errs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Code identifies one failure kind. Values 1..11 are numerically
// identical to the wire fault codes (internal/wire.FaultCode); values
// >= CodeLocalBase are in-process-only kinds that never travel as
// faults.
type Code uint32

// Wire-shared codes (numeric twins of wire.FaultCode).
const (
	Unknown       Code = 0  // unclassified; treat as permanent
	Internal      Code = 1  // unclassified server-side failure
	NoObject      Code = 2  // unknown object id / name
	NoMethod      Code = 3  // object has no such method
	Moved         Code = 4  // object migrated; chase the new reference
	Auth          Code = 5  // authentication failed
	Quota         Code = 6  // quota capability exhausted
	Capability    Code = 7  // capability processing failed
	NotApplicable Code = 8  // protocol not applicable for this pair
	BadRequest    Code = 9  // malformed arguments / bad input
	Expired       Code = 10 // request deadline already passed
	Unavailable   Code = 11 // endpoint draining/overloaded; retry elsewhere
)

// CodeLocalBase is the first in-process-only code. Local codes never
// travel as wire faults; wire.AsFault downgrades them to Internal.
const CodeLocalBase Code = 100

// In-process-only codes.
const (
	Transport Code = 100 // connection/dial/mux/link failure beneath the protocol
	Codec     Code = 101 // XDR or frame encode/decode failure
	Config    Code = 102 // invalid configuration, address, or API misuse
	Canceled  Code = 103 // caller canceled the work
	Exhausted Code = 104 // a client-side budget (retry tokens) ran dry
	Conflict  Code = 105 // duplicate registration / concurrent-update clash
)

// Class is the reaction a caller should have to a failure kind; it is
// what the retry-budget machinery keys on.
type Class uint8

const (
	// ClassPermanent failures will fail identically if re-issued
	// unchanged: never retry, never hedge.
	ClassPermanent Class = iota
	// ClassRetryable failures are safe to re-issue (the request never
	// executed: refused, undeliverable, or stale routing) but each retry
	// must draw from the retry budget so storms stay bounded.
	ClassRetryable
	// ClassHedgeable failures indicate the request was shed without
	// executing — safe not just to retry but to race a duplicate
	// against a slow first attempt (ROADMAP item 4's hedged requests).
	ClassHedgeable
	// ClassResource failures are budget/quota denials: retrying without
	// new budget is pointless, backing off or surfacing upward is right.
	ClassResource
)

func (c Class) String() string {
	switch c {
	case ClassPermanent:
		return "permanent"
	case ClassRetryable:
		return "retryable"
	case ClassHedgeable:
		return "hedgeable"
	case ClassResource:
		return "resource"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// codeInfo is the taxonomy table: name and class per code.
var codeInfo = map[Code]struct {
	name  string
	class Class
}{
	Internal:      {"internal", ClassPermanent},
	NoObject:      {"no-object", ClassPermanent},
	NoMethod:      {"no-method", ClassPermanent},
	Moved:         {"moved", ClassRetryable},
	Auth:          {"auth", ClassPermanent},
	Quota:         {"quota", ClassResource},
	Capability:    {"capability", ClassPermanent},
	NotApplicable: {"not-applicable", ClassRetryable},
	BadRequest:    {"bad-request", ClassPermanent},
	Expired:       {"expired", ClassHedgeable},
	Unavailable:   {"unavailable", ClassRetryable},
	Transport:     {"transport", ClassRetryable},
	Codec:         {"codec", ClassPermanent},
	Config:        {"config", ClassPermanent},
	Canceled:      {"canceled", ClassPermanent},
	Exhausted:     {"retry-budget-exhausted", ClassResource},
	Conflict:      {"conflict", ClassPermanent},
}

// String returns the stable name used in metric labels and /varz keys.
// Unknown codes render as "code(N)" so forward-compat faults from newer
// peers stay printable and countable.
func (c Code) String() string {
	if i, ok := codeInfo[c]; ok {
		return i.name
	}
	if c == Unknown {
		return "unknown"
	}
	return fmt.Sprintf("code(%d)", uint32(c))
}

// Class returns the reaction class for this code. Codes this build does
// not know (a newer peer's fault) classify permanent: never amplify
// load on a failure kind we cannot reason about.
func (c Code) Class() Class {
	if i, ok := codeInfo[c]; ok {
		return i.class
	}
	return ClassPermanent
}

// KnownCodes lists every code in the taxonomy in ascending numeric
// order; the runtime pre-resolves one error counter per entry.
func KnownCodes() []Code {
	out := make([]Code, 0, len(codeInfo))
	for c := range codeInfo {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coder is implemented by errors that carry a taxonomy code without
// depending on this package's E type — notably *wire.Fault, whose
// FaultCode values share this numeric space.
type Coder interface {
	ErrCode() uint32
}

// KV is one key-value context pair attached to an error.
type KV struct {
	K string
	V any
}

// E is a coded error: code, message, optional cause, optional key-value
// context. It is errors.Is/As-compatible: Unwrap exposes the cause, so
// sentinel checks (context.Canceled, io.EOF, *wire.Fault) keep working
// through any wrap depth.
type E struct {
	Code  Code
	Msg   string
	Cause error
	kv    []KV
}

// New builds a coded error.
func New(code Code, msg string) *E {
	return &E{Code: code, Msg: msg}
}

// Newf builds a coded error with a formatted message. %w verbs are not
// interpreted — use Wrap/Wrapf to attach a cause.
func Newf(code Code, format string, args ...any) *E {
	return &E{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Wrap builds a coded error wrapping a cause. A nil cause is allowed
// (it degenerates to New).
func Wrap(code Code, cause error, msg string) *E {
	return &E{Code: code, Msg: msg, Cause: cause}
}

// Wrapf is Wrap with a formatted message.
func Wrapf(code Code, cause error, format string, args ...any) *E {
	return &E{Code: code, Msg: fmt.Sprintf(format, args...), Cause: cause}
}

// With attaches one key-value context pair and returns the error for
// chaining: errs.New(...).With("object", id).With("epoch", ep).
func (e *E) With(key string, value any) *E {
	e.kv = append(e.kv, KV{K: key, V: value})
	return e
}

// Context returns the attached key-value pairs in attachment order.
func (e *E) Context() []KV { return e.kv }

// Error renders "msg: cause {k=v, ...} [code]". The code rides at the
// end so callers' message prefixes survive intact.
func (e *E) Error() string {
	var b strings.Builder
	b.WriteString(e.Msg)
	if e.Cause != nil {
		if e.Msg != "" {
			b.WriteString(": ")
		}
		b.WriteString(e.Cause.Error())
	}
	if len(e.kv) > 0 {
		b.WriteString(" {")
		for i, kv := range e.kv {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%v", kv.K, kv.V)
		}
		b.WriteString("}")
	}
	fmt.Fprintf(&b, " [%s]", e.Code)
	return b.String()
}

// Unwrap exposes the cause for errors.Is/As chains.
func (e *E) Unwrap() error { return e.Cause }

// ErrCode implements Coder.
func (e *E) ErrCode() uint32 { return uint32(e.Code) }

// Class returns the error's reaction class.
func (e *E) Class() Class { return e.Code.Class() }

// BudgetExhausted is the typed error surfaced when a retryable failure
// wanted another attempt but the GP's retry budget was dry: the caller
// sees both that the budget stopped the retry (code Exhausted, class
// resource) and what the last attempt actually hit (Code + Err).
type BudgetExhausted struct {
	// Code is the taxonomy code of the failure that asked for the
	// retry; /varz exhaustion counters are keyed on it.
	Code Code
	// Err is the last attempt's error.
	Err error
}

// Error renders the exhaustion with the denied failure's code.
func (b *BudgetExhausted) Error() string {
	return fmt.Sprintf("retry budget exhausted (would have retried %s): %v [%s]", b.Code, b.Err, Exhausted)
}

// Unwrap exposes the last attempt's error.
func (b *BudgetExhausted) Unwrap() error { return b.Err }

// ErrCode implements Coder: the exhaustion itself classifies as
// Exhausted/resource, not as the underlying failure.
func (b *BudgetExhausted) ErrCode() uint32 { return uint32(Exhausted) }

// CodeOf extracts the taxonomy code from an error chain: the first *E
// or Coder (so *wire.Fault classifies directly), with context
// cancellation/deadline mapped to Canceled/Expired. Unrecognized errors
// report Unknown.
func CodeOf(err error) Code {
	if err == nil {
		return Unknown
	}
	var c Coder
	if errors.As(err, &c) {
		return Code(c.ErrCode())
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Expired
	}
	if errors.Is(err, context.Canceled) {
		return Canceled
	}
	return Unknown
}

// ClassOf is CodeOf's class: the reaction the retry machinery should
// have. Unrecognized errors classify permanent — an error we cannot
// name is not one we should amplify.
func ClassOf(err error) Class {
	return CodeOf(err).Class()
}

// HasCode reports whether the chain carries the given code.
func HasCode(err error, code Code) bool {
	return err != nil && CodeOf(err) == code
}
