package transport

import (
	"errors"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/obs/obstest"
	"openhpcxx/internal/wire"
)

// faultCodeOf extracts the wire fault code from a TFault frame.
func faultCodeOf(t *testing.T, m *wire.Message) wire.FaultCode {
	t.Helper()
	if m.Type != wire.TFault {
		t.Fatalf("reply type %v, want TFault", m.Type)
	}
	err := wire.DecodeFault(m.Body)
	var f *wire.Fault
	if !errors.As(err, &f) {
		t.Fatalf("undecodable fault: %v", err)
	}
	return f.Code
}

func TestServerDrainRejectsNewFinishesInFlight(t *testing.T) {
	shm := NewSHM()
	l, err := shm.Listen("drain")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var handled atomic.Int32
	srv := Serve(l, func(m *wire.Message) *wire.Message {
		if string(m.Body) == "slow" {
			close(entered)
			<-release
		}
		handled.Add(1)
		return echoHandler(m)
	})
	defer srv.Close()
	// Trace the server so the test can observe frames arriving instead
	// of guessing with wall-clock sleeps.
	tr := obs.NewTracer(nil)
	col := obstest.Attach(t, tr)
	srv.SetTracer(tr)

	c, err := shm.Dial("drain")
	if err != nil {
		t.Fatal(err)
	}
	mx := NewMux(c)
	defer mx.Close()

	// One request in flight when the drain begins.
	slow, err := mx.Begin(&wire.Message{Type: wire.TRequest, Method: "m", Body: []byte("slow"), TraceID: 1, SpanID: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	// Wait for the drain to take effect; Drain returning here would mean
	// it abandoned the in-flight handler.
	for !srv.Draining() {
		select {
		case <-drained:
			t.Fatal("Drain returned with a handler in flight")
		default:
			runtime.Gosched()
		}
	}

	// A new request on the existing connection is rejected, not dropped
	// and not executed.
	reply, err := mx.Call(&wire.Message{Type: wire.TRequest, Method: "m", Body: []byte("new"), TraceID: 2, SpanID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if code := faultCodeOf(t, reply); code != wire.FaultUnavailable {
		t.Fatalf("drained request got fault %v, want FaultUnavailable", code)
	}
	// The server demonstrably read both frames (their decode spans carry
	// the wire trace IDs) yet Drain is still blocked on the slow handler
	// — a deterministic replacement for the old "sleep 20ms and hope"
	// negative check.
	decodes := col.WaitForSpans(t, "decode", 2, 2*time.Second)
	if decodes[0].Trace != 1 || decodes[1].Trace != 2 {
		t.Fatalf("decode spans carry traces %x,%x, want 1,2", uint64(decodes[0].Trace), uint64(decodes[1].Trace))
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while the slow handler was still running")
	default:
	}

	// The in-flight request still completes.
	close(release)
	r, err := slow.Reply()
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Body) != "slow" {
		t.Fatalf("slow reply %q", r.Body)
	}
	<-drained
	if got := handled.Load(); got != 1 {
		t.Fatalf("handled %d requests, want 1 (the in-flight one)", got)
	}

	// New connections are refused: the listener is closed.
	if _, err := shm.Dial("drain"); err == nil {
		t.Fatal("dial to draining server succeeded")
	}
}

func TestServerDrainIgnoresOneWay(t *testing.T) {
	shm := NewSHM()
	l, _ := shm.Listen("drain-ow")
	srv := Serve(l, echoHandler)
	defer srv.Close()
	c, err := shm.Dial("drain-ow")
	if err != nil {
		t.Fatal(err)
	}
	mx := NewMux(c)
	defer mx.Close()
	srv.Drain()
	// One-way control frames get no fault back; the write itself succeeds.
	if err := mx.Post(&wire.Message{Type: wire.TControl, Method: "tick"}); err != nil {
		t.Fatal(err)
	}
	// And the connection is still healthy for the rejection round trip.
	reply, err := mx.Call(&wire.Message{Type: wire.TRequest, Method: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if code := faultCodeOf(t, reply); code != wire.FaultUnavailable {
		t.Fatalf("fault %v, want FaultUnavailable", code)
	}
}

// TestPoolReplacesUnhealthyMux pins the leak fix: a superseded unhealthy
// mux is closed when the pool re-dials, so its stragglers fail promptly
// instead of dangling on a dead read loop.
func TestPoolReplacesUnhealthyMux(t *testing.T) {
	shm := NewSHM()
	l, _ := shm.Listen("pool-leak")
	srv := Serve(l, echoHandler)
	defer srv.Close()

	var dials atomic.Int32
	p := NewPool(func(string) (net.Conn, error) {
		dials.Add(1)
		return shm.Dial("pool-leak")
	})
	defer p.Close()

	m1, err := p.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Call(&wire.Message{Type: wire.TRequest, Method: "m"}); err != nil {
		t.Fatal(err)
	}

	// Kill the connection behind the pool's back and park a pending call
	// on the dying mux.
	pend, err := m1.Begin(&wire.Message{Type: wire.TRequest, Method: "m"})
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()
	if m1.Healthy() {
		t.Fatal("closed mux reports healthy")
	}

	m2, err := p.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if m2 == m1 {
		t.Fatal("pool returned the unhealthy mux")
	}
	if dials.Load() != 2 {
		t.Fatalf("dialed %d times, want 2", dials.Load())
	}
	// The straggler resolved with an error instead of hanging.
	select {
	case <-pend.Done():
		if _, err := pend.Reply(); err == nil {
			t.Fatal("straggler on closed mux succeeded")
		}
	case <-clock.After(clock.Real{}, time.Second):
		t.Fatal("straggler still pending after the mux was superseded")
	}
	if _, err := m2.Call(&wire.Message{Type: wire.TRequest, Method: "m"}); err != nil {
		t.Fatalf("replacement mux broken: %v", err)
	}
}

// TestMuxRecordsWriteError pins the satellite fix: the first underlying
// write error is retained and surfaces through Healthy/Begin.
func TestMuxRecordsWriteError(t *testing.T) {
	shm := NewSHM()
	l, _ := shm.Listen("rec-err")
	srv := Serve(l, echoHandler)
	defer srv.Close()
	c, err := shm.Dial("rec-err")
	if err != nil {
		t.Fatal(err)
	}
	mx := NewMux(c)
	defer mx.Close()
	c.Close() // break the conn under the mux

	if err := mx.Post(&wire.Message{Type: wire.TControl, Method: "x"}); err == nil {
		t.Fatal("post on broken conn succeeded")
	}
	if mx.Healthy() {
		t.Fatal("mux healthy after write error")
	}
	if _, err := mx.Begin(&wire.Message{Type: wire.TRequest, Method: "m"}); err == nil {
		t.Fatal("begin on broken mux succeeded")
	}
}

// TestPendingAbandonStopsTimer pins the satellite fix: abandoning a
// pending call disarms its timeout watchdog (no goroutine fires later to
// resolve a forgotten call).
func TestPendingAbandonStopsTimer(t *testing.T) {
	shm := NewSHM()
	l, _ := shm.Listen("abandon-timer")
	block := make(chan struct{})
	srv := Serve(l, func(m *wire.Message) *wire.Message {
		<-block
		return echoHandler(m)
	})
	defer srv.Close()
	defer close(block)
	c, err := shm.Dial("abandon-timer")
	if err != nil {
		t.Fatal(err)
	}
	mx := NewMux(c)
	defer mx.Close()
	mx.SetTimeout(30 * time.Millisecond)
	pend, err := mx.Begin(&wire.Message{Type: wire.TRequest, Method: "m"})
	if err != nil {
		t.Fatal(err)
	}
	pend.Abandon()
	// After the timeout would have fired, the pending is resolved by the
	// abandonment (not by the watchdog), and the mux is still healthy.
	clock.Sleep(clock.Real{}, 60*time.Millisecond)
	if _, err := pend.Reply(); err == nil {
		t.Fatal("abandoned call returned a reply")
	}
	if !mx.Healthy() {
		t.Fatal("mux unhealthy after abandoned call")
	}
}
