package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"openhpcxx/internal/clock"
)

// ErrClosed is returned by operations on a closed simulated connection.
var ErrClosed = errors.New("netsim: connection closed")

// ErrDeadline is returned when a read deadline expires.
var ErrDeadline = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string   { return "netsim: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// Addr is the net.Addr implementation for simulated endpoints, with the
// scheme sim://machine:port.
type Addr struct {
	Machine MachineID
	Port    int
}

// Network implements net.Addr.
func (a Addr) Network() string { return "sim" }

func (a Addr) String() string {
	return "sim://" + string(a.Machine) + ":" + itoa(a.Port)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// packet is one shaped write: its bytes become readable at deliverAt.
type packet struct {
	data      []byte
	deliverAt time.Time
}

// halfPipe carries data in one direction with latency/bandwidth shaping.
type halfPipe struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []packet
	queued   int // bytes in queue, for the flow-control window
	window   int // max queued bytes before writers block
	nextFree time.Time
	profile  LinkProfile
	closed   bool
	failErr  error // non-nil: the pipe died abnormally (crash injection)
	rdDead   time.Time
	pending  []byte // remainder of a delivered packet
	// dir, when non-nil, is the live fault state of this direction of
	// the link (injected delay, blackhole); shared with the Network so
	// faults apply to established connections, not just new dials.
	dir *DirFault
	// shaper, when non-nil, is the sender-side LAN's shared-capacity
	// serializer: a packet clears when both its own link and the shared
	// medium have transmitted it. O(1) per write.
	shaper *lanShaper
	// ops, when non-nil, meters per-packet shaping decisions for the
	// owning Network's ShapingOps bound.
	ops *atomic.Uint64
	// clk paces the in-flight waits (shaping delays, blackhole polls).
	// Real by default; tests inject a fake via Conn.SetClock so shaped
	// reads advance simulated time instead of wall-clock time.
	clk clock.Clock
}

func newHalfPipe(p LinkProfile) *halfPipe {
	h := &halfPipe{profile: p, window: 1 << 20, clk: clock.Real{}}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// write shapes and enqueues p, blocking while the flow-control window is
// full.
func (h *halfPipe) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.queued >= h.window && !h.closed {
		h.cond.Wait()
	}
	if h.closed {
		if h.failErr != nil {
			return 0, h.failErr
		}
		return 0, ErrClosed
	}
	now := time.Now()
	start := h.nextFree
	if start.Before(now) {
		start = now
	}
	tx := h.profile.TxTime(len(p))
	h.nextFree = start.Add(tx)
	clear := h.nextFree
	if h.ops != nil {
		h.ops.Add(1)
	}
	if h.shaper != nil {
		// The shared medium must also carry the bytes; the packet is in
		// flight once the slower of the two serializers clears it.
		if h.ops != nil {
			h.ops.Add(1)
		}
		if shared := h.shaper.reserve(now, len(p)); shared.After(clear) {
			clear = shared
		}
	}
	data := make([]byte, len(p))
	copy(data, p)
	h.queue = append(h.queue, packet{data: data, deliverAt: clear.Add(h.profile.Latency)})
	h.queued += len(p)
	h.cond.Broadcast()
	return len(p), nil
}

// read blocks until data is deliverable (per shaping) or the pipe closes.
func (h *halfPipe) read(p []byte) (int, error) {
	h.mu.Lock()
	for {
		if len(h.pending) > 0 {
			n := copy(p, h.pending)
			h.pending = h.pending[n:]
			h.mu.Unlock()
			return n, nil
		}
		if !h.rdDead.IsZero() && !time.Now().Before(h.rdDead) {
			h.mu.Unlock()
			return 0, ErrDeadline
		}
		if h.closed && h.failErr != nil {
			// Abnormal death (crash injection) trumps queued data: the
			// peer's kernel would have torn the window down, not
			// delivered the tail.
			err := h.failErr
			h.mu.Unlock()
			return 0, err
		}
		if len(h.queue) > 0 {
			if h.dir != nil && h.dir.blackholed() {
				// Data is in flight but the path is eating it for now;
				// poll until the hole heals or the deadline fires.
				h.mu.Unlock()
				if !h.sleepOrDeadline(time.Millisecond) {
					return 0, ErrDeadline
				}
				h.mu.Lock()
				continue
			}
			pkt := h.queue[0]
			deliverAt := pkt.deliverAt
			if h.dir != nil {
				deliverAt = deliverAt.Add(h.dir.extra())
			}
			now := time.Now()
			if wait := deliverAt.Sub(now); wait > 0 {
				// Release the lock while the packet is "on the wire" so
				// writers can continue to enqueue behind it.
				h.mu.Unlock()
				if !h.sleepOrDeadline(wait) {
					return 0, ErrDeadline
				}
				h.mu.Lock()
				continue
			}
			h.queue = h.queue[1:]
			h.queued -= len(pkt.data)
			h.pending = pkt.data
			h.cond.Broadcast()
			continue
		}
		if h.closed {
			h.mu.Unlock()
			return 0, io.EOF
		}
		h.waitWithDeadline()
	}
}

// sleepOrDeadline sleeps for d on the pipe's clock unless the read
// deadline fires first; it reports false when the deadline fired.
func (h *halfPipe) sleepOrDeadline(d time.Duration) bool {
	h.mu.Lock()
	dead := h.rdDead
	clk := h.clk
	h.mu.Unlock()
	if !dead.IsZero() {
		if until := time.Until(dead); until < d {
			clock.Sleep(clk, maxDuration(until, 0))
			return false
		}
	}
	clock.Sleep(clk, d)
	return true
}

// waitWithDeadline waits on the condition, waking at the read deadline if
// one is set. Called with h.mu held; returns with h.mu held.
func (h *halfPipe) waitWithDeadline() {
	if h.rdDead.IsZero() {
		h.cond.Wait()
		return
	}
	// Arm a timer to break the wait at the deadline.
	dead := h.rdDead
	t := time.AfterFunc(time.Until(dead), func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	h.cond.Wait()
	t.Stop()
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func (h *halfPipe) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// fail closes the pipe abnormally: readers and writers observe err
// (e.g. ErrConnReset after a machine crash) instead of a clean EOF.
func (h *halfPipe) fail(err error) {
	h.mu.Lock()
	h.closed = true
	if h.failErr == nil {
		h.failErr = err
	}
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *halfPipe) setReadDeadline(t time.Time) {
	h.mu.Lock()
	h.rdDead = t
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Conn is a simulated net.Conn between two machines. Writes are shaped by
// the link profile; reads observe data only after its modeled arrival
// time.
type Conn struct {
	recv   *halfPipe
	send   *halfPipe
	local  Addr
	remote Addr
	once   sync.Once
	// onClose, when set (Network-dialed connections), unregisters the
	// connection from the network's live-connection table.
	onClose func()
}

var _ net.Conn = (*Conn)(nil)

// Pipe returns a shaped duplex connection pair with the given profile and
// addresses. It is the building block Network uses, exposed for tests and
// for transports that want a point-to-point shaped link without topology.
func Pipe(profile LinkProfile, a, b Addr) (*Conn, *Conn) {
	ab := newHalfPipe(profile)
	ba := newHalfPipe(profile)
	ca := &Conn{recv: ba, send: ab, local: a, remote: b}
	cb := &Conn{recv: ab, send: ba, local: b, remote: a}
	return ca, cb
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.recv.read(p) }

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) { return c.send.write(p) }

// Close implements net.Conn. Both directions observe the close: pending
// data drains, then readers see io.EOF.
func (c *Conn) Close() error {
	c.once.Do(func() {
		c.send.close()
		c.recv.close()
		if c.onClose != nil {
			c.onClose()
		}
	})
	return nil
}

// Fail tears the connection down abnormally: both ends observe err from
// every subsequent Read and Write — the simulated equivalent of a peer
// crash resetting the connection (ECONNRESET), as opposed to the clean
// FIN that Close models.
func (c *Conn) Fail(err error) {
	c.once.Do(func() {
		c.send.fail(err)
		c.recv.fail(err)
		if c.onClose != nil {
			c.onClose()
		}
	})
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn (read side only; writes in this
// simulation block only on flow control, which closes promptly).
func (c *Conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.recv.setReadDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op; see SetDeadline.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

// SetClock injects the clock pacing this connection's shaped waits
// (both directions). The default is the real clock; tests inject a
// fake so latency simulation costs simulated time only.
func (c *Conn) SetClock(clk clock.Clock) {
	for _, h := range []*halfPipe{c.recv, c.send} {
		h.mu.Lock()
		h.clk = clk
		h.mu.Unlock()
	}
}

// Profile returns the link profile shaping this connection.
func (c *Conn) Profile() LinkProfile { return c.send.profile }
