package capability

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/future"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/obs/obstest"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/wire"
)

// TestGlueBatchedThroughChain is the acceptance check for batching +
// capabilities: requests coalesced into TBatch frames still traverse an
// encrypt+auth chain individually and round-trip correctly. Instead of
// diffing the aggregate srv.batches counter, it asserts on a coalesced
// invocation's own trace: the rider's batch span, its capability
// processing, and the server half all under one trace ID.
func TestGlueBatchedThroughChain(t *testing.T) {
	rt := world(t)
	server, s := echoServer(t, rt, "server", "m1")
	clientCtx, err := rt.NewContext("client", "m3")
	if err != nil {
		t.Fatal(err)
	}

	base, err := server.EntryStream()
	if err != nil {
		t.Fatal(err)
	}
	glueE, err := GlueEntry(server, "sec-batch", base,
		MustNewEncrypt(key32(), ScopeAlways),
		MustNewAuth("client", []byte("k"), ScopeAlways),
	)
	if err != nil {
		t.Fatal(err)
	}
	gp := clientCtx.NewGlobalPtr(server.NewRef(s, glueE))
	if id, err := gp.SelectedProtocol(); err != nil || id != core.ProtoGlue {
		t.Fatalf("selected %s, %v", id, err)
	}
	gp.SetBatchPolicy(&transport.BatchPolicy{MaxMessages: 8, MaxDelay: 2 * time.Millisecond})
	col := obstest.Attach(t, rt.Tracer())

	const n = 48
	fs := make([]*future.Future, n)
	for i := range fs {
		fs[i] = gp.InvokeAsync("upper", []byte(fmt.Sprintf("sec-%d", i)))
	}
	for i, f := range fs {
		body, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if want := fmt.Sprintf("SEC-%d", i); string(body) != want {
			t.Fatalf("future %d: got %q want %q", i, body, want)
		}
	}
	// Wait for every root to end (the settle goroutines), then pull one
	// coalesced rider's trace — no sleeps, the collector wakes us.
	col.WaitForSpans(t, "invoke", n, 5*time.Second)
	spans := col.WaitFor(t, 5*time.Second, "a batch span of >= 2 riders", func(spans []obs.Span) bool {
		for _, s := range spans {
			if s.Name == "batch" && s.Batch >= 2 {
				return true
			}
		}
		return false
	})
	var rider obs.Span
	for _, s := range spans {
		if s.Name == "batch" && s.Batch >= 2 {
			rider = s
			break
		}
	}
	tr := obstest.Trace(spans, rider.Trace)
	obstest.AssertBatched(t, tr, 2)
	obstest.AssertConnected(t, tr)
	// The rider still traversed the capability chain individually: glue
	// processing on the way out, glue unprocessing on the server.
	obstest.AssertPath(t, tr, "invoke→glue.process→dispatch→glue.unprocess→servant")
	if got := rt.Metrics().Counter("srv.batches").Value(); got == 0 {
		t.Fatal("no TBatch frame flowed beneath the glue chain")
	}
}

// TestGlueAsyncQuotaAccounting pins capability accounting on the async
// path: a quota of N admits exactly N invocations whether they are
// issued synchronously or through futures.
func TestGlueAsyncQuotaAccounting(t *testing.T) {
	rt := world(t)
	server, s := echoServer(t, rt, "server", "m1")
	clientCtx, _ := rt.NewContext("client", "m2")

	base, _ := server.EntryStream()
	glueE, err := GlueEntry(server, "metered-async", base, NewQuota(3, time.Time{}))
	if err != nil {
		t.Fatal(err)
	}
	gp := clientCtx.NewGlobalPtr(server.NewRef(s, glueE))

	fs := make([]*future.Future, 3)
	for i := range fs {
		fs[i] = gp.InvokeAsync("echo", []byte("x"))
	}
	if err := future.WaitAll(fs...); err != nil {
		t.Fatalf("within quota: %v", err)
	}
	err = gp.InvokeAsync("echo", []byte("x")).Err()
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultQuota {
		t.Fatalf("over quota: %v", err)
	}
}

// TestGlueAsyncPipelined checks the glue Begin path without batching:
// futures over a capability chain resolve with un-processed bodies.
func TestGlueAsyncPipelined(t *testing.T) {
	rt := world(t)
	server, s := echoServer(t, rt, "server", "m1")
	clientCtx, _ := rt.NewContext("client", "m2")

	base, _ := server.EntryStream()
	glueE, err := GlueEntry(server, "pipe", base, MustNewEncrypt(key32(), ScopeAlways))
	if err != nil {
		t.Fatal(err)
	}
	gp := clientCtx.NewGlobalPtr(server.NewRef(s, glueE))

	fs := make([]*future.Future, 8)
	for i := range fs {
		fs[i] = gp.InvokeAsync("echo", []byte{byte(i)})
	}
	for i, f := range fs {
		body, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if len(body) != 1 || body[0] != byte(i) {
			t.Fatalf("future %d: got %v", i, body)
		}
	}
}

// TestGlueBeginNonPipelinedBase covers the fallback: a base protocol
// with only Call still supports Begin through the glue (the call runs in
// its own goroutine).
func TestGlueBeginNonPipelinedBase(t *testing.T) {
	j := &journal{}
	c1 := &recordingCap{kind: "c1", journal: j}
	sc1 := &recordingCap{kind: "c1", journal: j}
	gs := NewGlueServer("np", []Capability{sc1}, clock.Real{})
	base := &localProto{handle: func(m *wire.Message) *wire.Message {
		body, err := gs.UnwrapRequest(m)
		if err != nil {
			t.Errorf("unwrap: %v", err)
			return nil
		}
		reply, err := gs.WrapReply(m, append([]byte("re:"), body...))
		if err != nil {
			t.Errorf("wrap: %v", err)
			return nil
		}
		return reply
	}}
	g := NewGlue("np", base, clock.Real{}, c1)

	p, err := g.Begin(&wire.Message{Type: wire.TRequest, Object: "o", Method: "m", Body: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := p.Reply()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Body) != "re:hi" {
		t.Fatalf("got %q", reply.Body)
	}
	// Reply is idempotent.
	again, err := p.Reply()
	if err != nil || string(again.Body) != "re:hi" {
		t.Fatalf("second Reply: %q %v", again.Body, err)
	}
}
