package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// exactPercentile returns the p-th percentile of values by sorting —
// the ground truth the bucketed histogram approximates.
func exactPercentile(values []int64, p float64) int64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]int64, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func TestMergeBasics(t *testing.T) {
	var a, b Histogram
	for _, v := range []int64{1, 2, 3} {
		a.Observe(v)
	}
	for _, v := range []int64{100, 200} {
		b.Observe(v)
	}
	a.Merge(&b)
	s := a.Snapshot()
	if s.Count != 5 || s.Sum != 306 {
		t.Fatalf("merged snapshot %+v", s)
	}
	if s.Max < 200 || s.Max > 399 {
		t.Fatalf("merged max %d", s.Max)
	}
	// Merging nil is a no-op.
	a.Merge(nil)
	if a.Snapshot().Count != 5 {
		t.Fatal("nil merge changed the histogram")
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Observe(7)
	a.Merge(&b)
	if got := a.Snapshot(); got.Count != 1 || got.Sum != 7 {
		t.Fatalf("merge into empty: %+v", got)
	}
	// The source is untouched.
	if got := b.Snapshot(); got.Count != 1 || got.Sum != 7 {
		t.Fatalf("merge mutated the source: %+v", got)
	}
}

// Property: splitting a stream of observations across per-worker
// histograms and merging them must keep every percentile inside the
// documented 2x bucket bound relative to the exact (sorted) percentile
// of the full stream — and identical to observing everything into one
// histogram directly. High counts included: each value repeats up to
// 64 times so merged buckets hold thousands of observations.
func TestQuickMergePercentileBound(t *testing.T) {
	f := func(raw []uint32, workers uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		w := int(workers%8) + 1
		rng := rand.New(rand.NewSource(seed))
		parts := make([]*Histogram, w)
		for i := range parts {
			parts[i] = &Histogram{}
		}
		var direct Histogram
		var all []int64
		for _, u := range raw {
			v := int64(u % 1_000_000)
			reps := int(u%64) + 1
			for r := 0; r < reps; r++ {
				parts[rng.Intn(w)].Observe(v)
				direct.Observe(v)
				all = append(all, v)
			}
		}
		var merged Histogram
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.Snapshot().Count != uint64(len(all)) {
			return false
		}
		for _, p := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
			got := merged.Percentile(p)
			if got != direct.Percentile(p) {
				return false // merge must be equivalent to direct observation
			}
			exact := exactPercentile(all, p)
			if exact == 0 {
				if got != 0 {
					return false
				}
				continue
			}
			// Documented bound: exact <= bound < 2*exact.
			if got < exact || got >= 2*exact {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeConcurrent(t *testing.T) {
	// Merge reads the source atomically: merging while a writer observes
	// must be race-clean (totals land either side of the snapshot).
	var src, dst Histogram
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			src.Observe(int64(i))
		}
	}()
	for i := 0; i < 100; i++ {
		var scratch Histogram
		scratch.Merge(&src)
	}
	<-done
	dst.Merge(&src)
	if got := dst.Snapshot().Count; got != 5000 {
		t.Fatalf("count %d after quiescent merge, want 5000", got)
	}
}
