package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
)

// stormWorld is a one-server/one-client world on a fake clock: retry
// backoffs cost simulated time only, so the storm scenarios below are
// deterministic and instant.
func stormWorld(t *testing.T) (*netsim.Network, *Runtime, *clock.Fake, *Context, *GlobalPtr) {
	t.Helper()
	n, rt := testWorld(t)
	fake := clock.NewFake(time.Unix(1000, 0))
	rt.SetClock(fake)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	if err := srv.BindSim(stormPort); err != nil {
		t.Fatal(err)
	}
	s, err := srv.Export("Echo", nil, echoMethods())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := srv.EntryStream()
	gp := client.NewGlobalPtr(srv.NewRef(s, e))
	return n, rt, fake, srv, gp
}

const stormPort = 7301

// attemptCalls sums every per-protocol rpc.*.calls counter — the number
// of wire attempts actually sent, retries included.
func attemptCalls(rt *Runtime) uint64 {
	var total uint64
	for name, v := range rt.Metrics().Snapshot().Counters {
		if strings.HasPrefix(name, "rpc.") && strings.HasSuffix(name, ".calls") {
			total += v
		}
	}
	return total
}

// TestRetryBudgetBoundsStorm is the retry-storm acceptance scenario:
// with the server crashed, N doomed invocations may amplify into at
// most N + MaxTokens wire attempts — the bucket bounds the burst — and
// once the bucket is dry each invocation fails fast with a typed
// *errs.BudgetExhausted instead of hammering the dead endpoint.
func TestRetryBudgetBoundsStorm(t *testing.T) {
	n, rt, _, _, gp := stormWorld(t)
	const maxTokens = 8
	gp.SetRetryBudget(RetryBudgetConfig{MaxTokens: maxTokens, Ratio: 0.1})

	for i := 0; i < 5; i++ {
		if _, err := gp.Invoke("echo", []byte("warm")); err != nil {
			t.Fatalf("warm-up call %d: %v", i, err)
		}
	}
	n.Crash("mA")

	const doomed = 40
	before := attemptCalls(rt)
	var exhausted int
	for i := 0; i < doomed; i++ {
		_, err := gp.Invoke("echo", []byte("doomed"))
		if err == nil {
			t.Fatalf("call %d against the crashed server succeeded", i)
		}
		var be *errs.BudgetExhausted
		if errors.As(err, &be) {
			exhausted++
			if be.Code != errs.Transport {
				t.Fatalf("exhaustion carries code %v, want transport", be.Code)
			}
			if errs.CodeOf(err) != errs.Exhausted {
				t.Fatalf("CodeOf(BudgetExhausted) = %v, want exhausted", errs.CodeOf(err))
			}
		}
	}
	attempts := attemptCalls(rt) - before

	// The bucket bounds amplification: every attempt beyond one per
	// invocation drew a token, and only maxTokens were in the bucket.
	if attempts > doomed+maxTokens {
		t.Fatalf("%d attempts for %d invocations (amplification %.2f); budget of %d should bound it at %d",
			attempts, doomed, float64(attempts)/doomed, maxTokens, doomed+maxTokens)
	}
	if attempts < doomed {
		t.Fatalf("%d attempts for %d invocations — every invocation sends at least once", attempts, doomed)
	}
	if exhausted == 0 {
		t.Fatal("no invocation surfaced BudgetExhausted though the bucket must have drained")
	}

	// The exhaustion is observable: the per-code counter moved and the
	// GP's /statusz row shows a dry bucket.
	ex := rt.Metrics().Snapshot().Counters[`rpc.retry.budget_exhausted{code="transport"}`]
	if ex != uint64(exhausted) {
		t.Fatalf("budget_exhausted counter = %d, want %d", ex, exhausted)
	}
	st := gpRetryStatus(t, rt, "client")
	if !st.Enabled || st.Tokens >= 1 || st.Exhausted == 0 {
		t.Fatalf("statusz retry row %+v, want enabled with a dry bucket and exhaustions", st)
	}
}

// TestRetryStormWithoutBudgets pins the storm the budgets exist to
// prevent: with budgeting disabled every doomed invocation burns the
// full attempt allowance, so amplification sits exactly at
// maxInvokeAttempts — the pre-PR-7 behavior Figure E1 uses as its
// baseline. If this balloons past the pin, the retry loop grew a new
// amplification source; if budgets-on ever approaches it, the brake
// broke.
func TestRetryStormWithoutBudgets(t *testing.T) {
	n, rt, _, _, gp := stormWorld(t)
	gp.SetRetryBudget(RetryBudgetConfig{Disabled: true})

	if _, err := gp.Invoke("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	n.Crash("mA")

	const doomed = 20
	before := attemptCalls(rt)
	for i := 0; i < doomed; i++ {
		_, err := gp.Invoke("echo", []byte("doomed"))
		if err == nil {
			t.Fatalf("call %d against the crashed server succeeded", i)
		}
		if !errs.HasCode(err, errs.Transport) {
			t.Fatalf("call %d: err %v, want a transport-coded failure", i, err)
		}
		var be *errs.BudgetExhausted
		if errors.As(err, &be) {
			t.Fatalf("call %d hit a budget with budgeting disabled: %v", i, err)
		}
	}
	attempts := attemptCalls(rt) - before
	if attempts != doomed*maxInvokeAttempts {
		t.Fatalf("%d attempts for %d unbudgeted invocations, want exactly %d (amplification pinned at %d)",
			attempts, doomed, doomed*maxInvokeAttempts, maxInvokeAttempts)
	}
}

// TestRetryBudgetRefillsFromGoodput: successes re-earn retry allowance
// at Ratio per reply, so a recovered service climbs back to a usable
// burst instead of staying locked out — and the climb is visible in the
// GP's status row.
func TestRetryBudgetRefillsFromGoodput(t *testing.T) {
	n, rt, _, srv, gp := stormWorld(t)
	const ratio = 0.1
	gp.SetRetryBudget(RetryBudgetConfig{MaxTokens: 4, Ratio: ratio})

	if _, err := gp.Invoke("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	n.Crash("mA")
	// Drain the bucket dry.
	for i := 0; i < 10; i++ {
		if _, err := gp.Invoke("echo", []byte("doomed")); err == nil {
			t.Fatal("call against the crashed server succeeded")
		}
	}
	if st := gpRetryStatus(t, rt, "client"); st.Tokens >= 1 {
		t.Fatalf("bucket holds %.2f tokens after the drain, want < 1", st.Tokens)
	}

	n.Restart("mA")
	if err := srv.BindSim(stormPort); err != nil {
		t.Fatal(err)
	}
	rt.Health().ProbeNow()
	const successes = 30
	for i := 0; i < successes; i++ {
		if _, err := gp.Invoke("echo", []byte("post")); err != nil {
			t.Fatalf("post-restart call %d: %v", i, err)
		}
	}
	st := gpRetryStatus(t, rt, "client")
	want := successes * ratio
	if st.Tokens < want-0.5 || st.Tokens > want+0.5 {
		t.Fatalf("bucket holds %.2f tokens after %d successes, want about %.1f (ratio %.2f)",
			st.Tokens, successes, want, ratio)
	}
}

// gpRetryStatus digs the (single) GP retry row for a context out of the
// runtime status snapshot.
func gpRetryStatus(t *testing.T, rt *Runtime, ctxName string) GPRetryStatus {
	t.Helper()
	for _, c := range rt.Status().Contexts {
		if c.Name != ctxName {
			continue
		}
		if len(c.GPs) != 1 {
			t.Fatalf("context %s has %d GPs in /statusz, want 1", ctxName, len(c.GPs))
		}
		return c.GPs[0].Retry
	}
	t.Fatalf("context %s not in /statusz", ctxName)
	return GPRetryStatus{}
}
