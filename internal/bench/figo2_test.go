package bench

import (
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/obs"
)

// TestFigureO2Shapes pins the figure's claim: at equal span memory under
// the burst-then-calm schedule, the tail keeper retains (essentially)
// all >p99 traces and the FIFO ring (essentially) none. The schedule is
// seeded, so the retention fractions are deterministic; the live
// overhead cells are timing-dependent and only sanity-checked.
func TestFigureO2Shapes(t *testing.T) {
	r, err := RunFigureO2(O2Config{MinReps: 50, MinDuration: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 || r.Points[0].Mode != ModeFIFO || r.Points[1].Mode != ModeTail {
		t.Fatalf("points = %+v, want [fifo tail]", r.Points)
	}
	fifo, tail := r.Points[0], r.Points[1]

	if r.SlowTraces == 0 || fifo.SlowTotal != r.SlowTraces || tail.SlowTotal != r.SlowTraces {
		t.Fatalf("slow accounting inconsistent: figure %d, fifo %d, tail %d",
			r.SlowTraces, fifo.SlowTotal, tail.SlowTotal)
	}
	// The stragglers run 60–100ms; the calm stream's p99 must sit far
	// below them for ">p99" to mean anything.
	if r.CalmP99 <= 0 || r.CalmP99 >= 60*time.Millisecond {
		t.Fatalf("calm p99 = %v, want well under the 60ms stragglers", r.CalmP99)
	}

	if tail.RetentionPct < 95 {
		t.Fatalf("tail keeper retained %.1f%% of >p99 traces, want >= 95%%\nkept=%v dropped=%v",
			tail.RetentionPct, tail.KeptTraces, tail.DroppedTraces)
	}
	if fifo.RetentionPct >= 5 {
		t.Fatalf("FIFO ring retained %.1f%% of >p99 traces, want < 5%% (calm tail should flush it)",
			fifo.RetentionPct)
	}
	// Equal memory: neither store may exceed the shared span budget.
	if fifo.SpansRetained > r.SpanBudget || tail.SpansRetained > r.SpanBudget {
		t.Fatalf("span budget %d exceeded: fifo %d, tail %d",
			r.SpanBudget, fifo.SpansRetained, tail.SpansRetained)
	}
	// The keeper must account for the calm bulk it dropped.
	if tail.DroppedTraces[obs.DropNormal] == 0 {
		t.Fatalf("keeper drop accounting empty: %v", tail.DroppedTraces)
	}
	if tail.KeptTraces[obs.PolicySlow] == 0 {
		t.Fatalf("keeper kept no traces under the slow policy: %v", tail.KeptTraces)
	}

	if len(r.Overhead) != 2 || r.Overhead[0].Mode != ModeUntraced || r.Overhead[1].Mode != ModeTail {
		t.Fatalf("overhead = %+v, want [untraced tail]", r.Overhead)
	}
	for _, o := range r.Overhead {
		if o.Reps < 50 || o.AvgRTT <= 0 {
			t.Fatalf("overhead cell %+v not measured", o)
		}
	}
}

func TestFormatFigureO2(t *testing.T) {
	r := &O2Result{
		Traces: 2048, SpansPerTrace: 3, SpanBudget: 256, SlowTraces: 8,
		CalmP99: 999 * time.Microsecond,
		Points: []O2Point{
			{Mode: ModeFIFO, SlowTotal: 8, SlowRetained: 0, RetentionPct: 0, SpansRetained: 256},
			{Mode: ModeTail, SlowTotal: 8, SlowRetained: 8, RetentionPct: 100, SpansRetained: 39,
				KeptTraces:    map[string]uint64{obs.PolicySlow: 8},
				DroppedTraces: map[string]uint64{obs.DropNormal: 2036}},
		},
		Overhead: []O2Overhead{
			{Mode: ModeUntraced, Reps: 2000, AvgRTT: 10 * time.Microsecond},
			{Mode: ModeTail, Reps: 2000, AvgRTT: 11 * time.Microsecond, OverheadPct: 10},
		},
	}
	out := FormatFigureO2(r)
	for _, want := range []string{O2FigureTitle, ModeFIFO, ModeTail, "100.0%", "overhead", obs.PolicySlow} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatFigureO2 missing %q:\n%s", want, out)
		}
	}
}
