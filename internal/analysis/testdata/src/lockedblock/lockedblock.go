// Golden corpus for the lockedblock analyzer: between an explicit
// Lock() and its sibling Unlock() there may be no channel op, Invoke*
// call, net.Conn I/O, or clock wait. Function literals run later;
// selects with a default are non-blocking; defer-unlock regions are
// left to review by design.
package lockedblock

import (
	"net"
	"sync"
	"time"

	"openhpcxx/internal/clock"
)

// InvokeEcho stands in for the ORB's Invoke* entry points.
func InvokeEcho() {}

func bad(mu *sync.Mutex, ch chan int, clk clock.Clock, c net.Conn) {
	mu.Lock()
	ch <- 1                            // want "channel send while mu is locked"
	<-ch                               // want "channel receive while mu is locked"
	InvokeEcho()                       // want "InvokeEcho call while mu is locked"
	clock.Sleep(clk, time.Millisecond) // want "clock wait .Sleep. while mu is locked"
	c.Write(nil)                       // want "net.Conn Write while mu is locked"
	mu.Unlock()
}

func badRead(mu *sync.RWMutex, ch chan int) {
	mu.RLock()
	<-ch // want "channel receive while mu is locked"
	mu.RUnlock()
}

func okNonBlocking(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	select {
	case ch <- 1: // non-blocking: the select has a default
	default:
	}
	mu.Unlock()
}

func okFuncLit(mu *sync.Mutex, ch chan int) func() {
	mu.Lock()
	f := func() { ch <- 1 } // runs after the unlock
	mu.Unlock()
	return f
}

func okDeferred(mu *sync.Mutex, ch chan int) {
	// Deferred-unlock regions span the whole function and routinely
	// hold condition waits; they are out of scope by design.
	mu.Lock()
	defer mu.Unlock()
	ch <- 1
}

func suppressed(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	//lint:ignore lockedblock corpus example: buffered channel with reserved capacity
	ch <- 1
	mu.Unlock()
}
