package transport

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/wire"
)

// TestMuxAbandonedCallDoesNotStallReader is the regression test for the
// reader-stall audit: a caller abandons a request (times out) while the
// server's reply is still in flight; the late reply must be dropped and
// the read loop must keep serving subsequent calls. With a
// channel-send-based delivery path an abandoned request could leave the
// reader blocked on the send; the resolve/close design cannot.
func TestMuxAbandonedCallDoesNotStallReader(t *testing.T) {
	shm := NewSHM()
	l, _ := shm.Listen("stall")
	release := make(chan struct{})
	srv := Serve(l, func(m *wire.Message) *wire.Message {
		if m.Method == "slow" {
			<-release
		}
		return echoHandler(m)
	})
	defer srv.Close()

	c, err := shm.Dial("stall")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMux(c)
	defer m.Close()
	m.SetTimeout(20 * time.Millisecond)

	if _, err := m.Call(&wire.Message{Type: wire.TRequest, Method: "slow"}); err == nil {
		t.Fatal("slow call did not time out")
	} else if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("unexpected error: %v", err)
	}
	if n := m.InFlight(); n != 0 {
		t.Fatalf("%d pending after timeout, want 0", n)
	}

	// Release the late reply; it must be dropped, not delivered and not
	// stall the reader.
	close(release)

	m.SetTimeout(2 * time.Second)
	for i := 0; i < 5; i++ {
		reply, err := m.Call(&wire.Message{Type: wire.TRequest, Method: "fast", Body: []byte{byte(i)}})
		if err != nil {
			t.Fatalf("reader stalled after abandoned call: call %d: %v", i, err)
		}
		if !bytes.Equal(reply.Body, []byte{byte(i)}) {
			t.Fatalf("call %d got %v", i, reply.Body)
		}
	}
}

// TestMuxAbandonRace hammers the abandon-vs-delivery race: many calls
// with a timeout comparable to the service time, then verify the mux
// still works. Run under -race this also proves the resolution path is
// data-race free.
func TestMuxAbandonRace(t *testing.T) {
	shm := NewSHM()
	l, _ := shm.Listen("race")
	srv := Serve(l, func(m *wire.Message) *wire.Message {
		clock.Sleep(clock.Real{}, time.Millisecond)
		return echoHandler(m)
	})
	defer srv.Close()

	c, err := shm.Dial("race")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMux(c)
	defer m.Close()
	m.SetTimeout(time.Millisecond) // ~50/50 race with the 1ms server

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Call(&wire.Message{Type: wire.TRequest, Method: "x"}) // outcome irrelevant
		}()
	}
	wg.Wait()

	m.SetTimeout(2 * time.Second)
	if _, err := m.Call(&wire.Message{Type: wire.TRequest, Method: "final"}); err != nil {
		t.Fatalf("mux broken after abandon storm: %v", err)
	}
}

func TestMuxBeginPipelines(t *testing.T) {
	shm := NewSHM()
	l, _ := shm.Listen("pipe")
	var maxInFlight, cur int32
	var mu sync.Mutex
	srv := Serve(l, func(m *wire.Message) *wire.Message {
		mu.Lock()
		cur++
		if cur > maxInFlight {
			maxInFlight = cur
		}
		mu.Unlock()
		clock.Sleep(clock.Real{}, 2*time.Millisecond)
		mu.Lock()
		cur--
		mu.Unlock()
		return echoHandler(m)
	})
	defer srv.Close()

	c, err := shm.Dial("pipe")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMux(c)
	defer m.Close()

	const n = 16
	pendings := make([]*PendingCall, n)
	for i := 0; i < n; i++ {
		p, err := m.Begin(&wire.Message{Type: wire.TRequest, Method: "p", Body: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		pendings[i] = p
	}
	for i, p := range pendings {
		reply, err := p.Reply()
		if err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
		if !bytes.Equal(reply.Body, []byte{byte(i)}) {
			t.Fatalf("pending %d got %v", i, reply.Body)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if maxInFlight < 2 {
		t.Fatalf("max in-flight %d; requests were not pipelined", maxInFlight)
	}
}

func TestPendingAbandonThenLateReply(t *testing.T) {
	shm := NewSHM()
	l, _ := shm.Listen("late")
	srv := Serve(l, echoHandler)
	defer srv.Close()
	c, _ := shm.Dial("late")
	m := NewMux(c)
	defer m.Close()

	p, err := m.Begin(&wire.Message{Type: wire.TRequest, Method: "m"})
	if err != nil {
		t.Fatal(err)
	}
	p.Abandon()
	if _, err := p.Reply(); err == nil {
		t.Fatal("abandoned pending resolved successfully")
	}
	// Mux still serves.
	if _, err := m.Call(&wire.Message{Type: wire.TRequest, Method: "m2"}); err != nil {
		t.Fatal(err)
	}
}

// batchEchoHandler dispatches TBatch frames sub-message by sub-message,
// echoing each — a stand-in for the ORB's server-side batch dispatch.
func batchEchoHandler(m *wire.Message) *wire.Message {
	if m.Type != wire.TBatch {
		return echoHandler(m)
	}
	subs, err := wire.DecodeBatch(m)
	if err != nil {
		return nil
	}
	replies := make([]*wire.Message, 0, len(subs))
	for _, sub := range subs {
		if sub.Type == wire.TRequest {
			replies = append(replies, echoHandler(sub))
		}
	}
	out, err := wire.EncodeBatch(replies)
	if err != nil {
		return nil
	}
	out.RequestID = m.RequestID
	return out
}

func newBatchFabric(t *testing.T, name string) *Mux {
	t.Helper()
	shm := NewSHM()
	l, _ := shm.Listen(name)
	srv := Serve(l, batchEchoHandler)
	t.Cleanup(func() { srv.Close() })
	c, err := shm.Dial(name)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMux(c)
	t.Cleanup(func() { m.Close() })
	return m
}

func muxSender(m *Mux) func(*wire.Message) (Pending, error) {
	return func(msg *wire.Message) (Pending, error) { return m.Begin(msg) }
}

func TestCoalescerCountWatermark(t *testing.T) {
	m := newBatchFabric(t, "co-count")
	co := NewCoalescer(muxSender(m), BatchPolicy{MaxMessages: 4, MaxDelay: time.Hour})
	defer co.Close()

	var pendings []Pending
	for i := 0; i < 8; i++ {
		p, err := co.Begin(&wire.Message{Type: wire.TRequest, Method: "m", Body: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	for i, p := range pendings {
		reply, err := p.Reply()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if reply.Type != wire.TReply || !bytes.Equal(reply.Body, []byte{byte(i)}) {
			t.Fatalf("item %d: %v %v", i, reply.Type, reply.Body)
		}
	}
}

func TestCoalescerDelayWatermark(t *testing.T) {
	m := newBatchFabric(t, "co-delay")
	co := NewCoalescer(muxSender(m), BatchPolicy{MaxMessages: 1000, MaxDelay: 2 * time.Millisecond})
	defer co.Close()

	// A lone request must ship after MaxDelay without reinforcements.
	start := time.Now()
	reply, err := co.Call(&wire.Message{Type: wire.TRequest, Method: "solo", Body: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply.Body, []byte("x")) {
		t.Fatalf("body %q", reply.Body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("lone request took %v; delay watermark did not fire", elapsed)
	}
}

func TestCoalescerByteWatermark(t *testing.T) {
	m := newBatchFabric(t, "co-bytes")
	co := NewCoalescer(muxSender(m), BatchPolicy{MaxMessages: 1000, MaxBytes: 512, MaxDelay: time.Hour})
	defer co.Close()

	big := bytes.Repeat([]byte("z"), 600) // alone exceeds MaxBytes
	reply, err := co.Call(&wire.Message{Type: wire.TRequest, Method: "big", Body: big})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply.Body, big) {
		t.Fatal("oversized lone request mangled")
	}
}

func TestCoalescerRejectsNonRequest(t *testing.T) {
	m := newBatchFabric(t, "co-reject")
	co := NewCoalescer(muxSender(m), BatchPolicy{})
	defer co.Close()
	if _, err := co.Begin(&wire.Message{Type: wire.TControl, Method: "oneway"}); err == nil {
		t.Fatal("coalescer accepted one-way frame")
	}
}

func TestCoalescerCloseFlushes(t *testing.T) {
	m := newBatchFabric(t, "co-close")
	co := NewCoalescer(muxSender(m), BatchPolicy{MaxMessages: 1000, MaxDelay: time.Hour})
	p1, err := co.Begin(&wire.Message{Type: wire.TRequest, Method: "a", Body: []byte("1")})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := co.Begin(&wire.Message{Type: wire.TRequest, Method: "b", Body: []byte("2")})
	if err != nil {
		t.Fatal(err)
	}
	co.Close()
	for i, p := range []Pending{p1, p2} {
		if _, err := p.Reply(); err != nil {
			t.Fatalf("queued item %d lost on close: %v", i, err)
		}
	}
	if _, err := co.Begin(&wire.Message{Type: wire.TRequest, Method: "c"}); err == nil {
		t.Fatal("closed coalescer accepted request")
	}
}

func TestCoalescerConcurrent(t *testing.T) {
	m := newBatchFabric(t, "co-conc")
	co := NewCoalescer(muxSender(m), BatchPolicy{MaxMessages: 8, MaxDelay: time.Millisecond})
	defer co.Close()

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				body := []byte(fmt.Sprintf("%d-%d", i, j))
				reply, err := co.Call(&wire.Message{Type: wire.TRequest, Method: "m", Body: body})
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(reply.Body, body) {
					errs[i] = fmt.Errorf("got %q want %q", reply.Body, body)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
}
