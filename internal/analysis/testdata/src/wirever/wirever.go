// Golden corpus for the wirever analyzer: comparing or branching on a
// wire version constant outside internal/wire leaks back-compat logic
// out of the codec. Referencing the constant (stamping, printing) is
// fine.
package wirever

import (
	"fmt"

	"openhpcxx/internal/wire"
)

func bad(v uint32) string {
	if v < wire.Version { // want "wire version constant Version"
		return "old"
	}
	switch v {
	case wire.Version: // want "wire version constant Version"
		return "current"
	}
	switch wire.Version { // want "wire version constant Version"
	default:
		return "?"
	}
}

func good() string {
	// Plain references: stamping a header or printing the version does
	// not branch on it.
	hdr := struct{ Ver uint32 }{Ver: wire.Version}
	return fmt.Sprint(hdr.Ver, wire.Version)
}
