package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"openhpcxx/internal/wire"
)

// ErrMuxClosed is returned by calls on a closed multiplexer.
var ErrMuxClosed = errors.New("transport: mux closed")

// DefaultCallTimeout bounds a single remote call when the Mux has no
// explicit timeout configured.
const DefaultCallTimeout = 30 * time.Second

// Mux multiplexes concurrent request/reply exchanges over a single
// connection. It assigns request ids, serializes frame writes, and
// demultiplexes replies to the waiting callers. A Mux is safe for
// concurrent use.
type Mux struct {
	conn    net.Conn
	timeout time.Duration

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Message
	err     error
	closed  bool
}

// NewMux wraps conn and starts its reply-reading loop.
func NewMux(conn net.Conn) *Mux {
	m := &Mux{
		conn:    conn,
		timeout: DefaultCallTimeout,
		nextID:  1,
		pending: make(map[uint64]chan *wire.Message),
	}
	go m.readLoop()
	return m
}

// SetTimeout changes the per-call timeout. Zero disables it.
func (m *Mux) SetTimeout(d time.Duration) {
	m.mu.Lock()
	m.timeout = d
	m.mu.Unlock()
}

func (m *Mux) readLoop() {
	for {
		msg, err := wire.Read(m.conn)
		if err != nil {
			m.fail(err)
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[msg.RequestID]
		if ok {
			delete(m.pending, msg.RequestID)
		}
		m.mu.Unlock()
		if ok {
			ch <- msg
		}
		// Replies for abandoned requests are dropped.
	}
}

func (m *Mux) fail(err error) {
	if err == io.EOF {
		err = ErrMuxClosed
	}
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	for id, ch := range m.pending {
		delete(m.pending, id)
		close(ch)
	}
	m.mu.Unlock()
}

// Call sends msg (assigning its RequestID) and waits for the matching
// reply. The returned message may be a TFault frame; decoding the fault
// is the caller's concern so that capability layers can inspect replies.
func (m *Mux) Call(msg *wire.Message) (*wire.Message, error) {
	ch := make(chan *wire.Message, 1)
	m.mu.Lock()
	if m.closed || m.err != nil {
		err := m.err
		m.mu.Unlock()
		if err == nil {
			err = ErrMuxClosed
		}
		return nil, err
	}
	id := m.nextID
	m.nextID++
	msg.RequestID = id
	m.pending[id] = ch
	timeout := m.timeout
	m.mu.Unlock()

	m.wmu.Lock()
	err := wire.Write(m.conn, msg)
	m.wmu.Unlock()
	if err != nil {
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		return nil, fmt.Errorf("transport: write: %w", err)
	}

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			m.mu.Lock()
			err := m.err
			m.mu.Unlock()
			if err == nil {
				err = ErrMuxClosed
			}
			return nil, err
		}
		return reply, nil
	case <-timer:
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		return nil, fmt.Errorf("transport: call %q timed out after %v", msg.Method, timeout)
	}
}

// Post sends msg without awaiting any reply (one-way traffic). The
// message keeps whatever RequestID it carries; replies to that id, if a
// peer sends one anyway, are dropped by the read loop.
func (m *Mux) Post(msg *wire.Message) error {
	m.mu.Lock()
	if m.closed || m.err != nil {
		err := m.err
		m.mu.Unlock()
		if err == nil {
			err = ErrMuxClosed
		}
		return err
	}
	m.mu.Unlock()
	m.wmu.Lock()
	defer m.wmu.Unlock()
	return wire.Write(m.conn, msg)
}

// Close tears down the connection; outstanding calls fail.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	err := m.conn.Close()
	m.fail(ErrMuxClosed)
	return err
}

// Healthy reports whether the mux can still issue calls.
func (m *Mux) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.closed && m.err == nil
}
