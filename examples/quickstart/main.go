// Quickstart: one server object, one client, one remote call.
//
// It shows the minimal Open HPC++ vocabulary: a simulated network, a
// runtime, contexts (virtual address spaces), an exported servant, an
// object reference with a protocol table, and a global pointer that
// selects a protocol automatically.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"openhpcxx/internal/core"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/xdr"
)

// greetReq / greetReply are the call's XDR-typed messages.
type greetReq struct{ Name string }

func (r *greetReq) MarshalXDR(e *xdr.Encoder) error { e.PutString(r.Name); return nil }
func (r *greetReq) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	r.Name, err = d.String()
	return err
}

type greetReply struct{ Text string }

func (r *greetReply) MarshalXDR(e *xdr.Encoder) error { e.PutString(r.Text); return nil }
func (r *greetReply) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	r.Text, err = d.String()
	return err
}

func main() {
	// 1. A tiny testbed: two machines on one LAN.
	net := netsim.New()
	net.AddLAN("lan", "campus", netsim.ProfileEthernet)
	net.MustAddMachine("server-box", "lan")
	net.MustAddMachine("client-box", "lan")

	// 2. One runtime per OS process; contexts are virtual address
	// spaces placed on machines.
	rt := core.NewRuntime(net, "quickstart")
	defer rt.Close()

	server, err := rt.NewContext("server", "server-box")
	check(err)
	check(server.BindSim(0)) // reachable over the (simulated) network

	// 3. Export a servant: a method table over any implementation.
	servant, err := server.Export("demo.Greeter", nil, map[string]core.Method{
		"greet": core.Handler(func(req *greetReq) (*greetReply, error) {
			return &greetReply{Text: "hello, " + req.Name + "!"}, nil
		}),
	})
	check(err)

	// 4. Build an object reference: the server decides which protocols
	// it is willing to support, in preference order.
	entry, err := server.EntryStream()
	check(err)
	ref := server.NewRef(servant, entry)

	// 5. A client anywhere on the network binds a global pointer to the
	// reference; protocol selection is automatic.
	client, err := rt.NewContext("client", "client-box")
	check(err)
	gp := client.NewGlobalPtr(ref)

	reply, err := core.Call[*greetReq, greetReply](gp, "greet", &greetReq{Name: "Open HPC++"})
	check(err)
	proto, err := gp.SelectedProtocol()
	check(err)

	fmt.Printf("reply over %s: %s\n", proto, reply.Text)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
