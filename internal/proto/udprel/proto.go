package udprel

import (
	"fmt"
	"strconv"
	"strings"

	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// ID is the protocol identifier applications register this custom
// protocol under.
const ID core.ProtoID = "udprel"

// Bind makes ctx reachable over the udprel protocol on the given
// datagram port (0 allocates one). The node delivers inbound requests
// through the context's public Dispatch hook.
func Bind(ctx *core.Context, port int, cfg Config) error {
	pc, err := ctx.Runtime().Network().ListenPacket(ctx.Locality().Machine, port)
	if err != nil {
		return err
	}
	node := NewNode(pc, cfg, func(from netsim.Addr, req []byte) []byte {
		msg := new(wire.Message)
		if err := xdr.Unmarshal(req, msg); err != nil {
			f, ferr := wire.FaultMessage(&wire.Message{}, wire.Faultf(wire.FaultBadRequest, "udprel: %v", err))
			if ferr != nil {
				return nil
			}
			return mustEncode(f)
		}
		reply := ctx.Dispatch(msg)
		if reply == nil {
			reply = &wire.Message{Type: wire.TReply, Object: msg.Object, Method: msg.Method}
		}
		return mustEncode(reply)
	})
	addr := pc.LocalAddr()
	ctx.RegisterBinding(ID, fmt.Sprintf("udp://%s:%d", addr.Machine, addr.Port), node)
	return nil
}

func mustEncode(m *wire.Message) []byte {
	e := xdr.NewEncoder(64 + len(m.Body))
	if err := m.MarshalXDR(e); err != nil {
		return nil
	}
	return e.Bytes()
}

// Entry builds a protocol table entry for a context bound with Bind.
func Entry(ctx *core.Context) (core.ProtoEntry, error) {
	addr, ok := ctx.Binding(ID)
	if !ok {
		return core.ProtoEntry{}, errs.Newf(errs.Config, "udprel: context %s has no udprel binding", ctx.Name())
	}
	e := xdr.NewEncoder(32)
	e.PutString(addr)
	return core.ProtoEntry{ID: ID, Data: e.Bytes()}, nil
}

func parseEntry(entry core.ProtoEntry) (netsim.Addr, error) {
	d := xdr.NewDecoder(entry.Data)
	s, err := d.String()
	if err != nil {
		return netsim.Addr{}, errs.Wrap(errs.Codec, err, "udprel: bad proto-data")
	}
	rest, ok := strings.CutPrefix(s, "udp://")
	if !ok {
		return netsim.Addr{}, errs.Newf(errs.BadRequest, "udprel: bad address %q", s)
	}
	host, portStr, ok := strings.Cut(rest, ":")
	if !ok {
		return netsim.Addr{}, errs.Newf(errs.BadRequest, "udprel: bad address %q", s)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return netsim.Addr{}, errs.Newf(errs.BadRequest, "udprel: bad port %q", portStr)
	}
	return netsim.Addr{Machine: netsim.MachineID(host), Port: port}, nil
}

// Factory is the udprel proto-class, registered into protocol pools by
// applications: capability.Install-style, `pool.Register(udprel.NewFactory(cfg))`.
type Factory struct {
	cfg Config
}

// NewFactory builds a factory with the given ARQ tuning.
func NewFactory(cfg Config) *Factory { return &Factory{cfg: cfg.withDefaults()} }

// ID implements core.ProtoFactory.
func (*Factory) ID() core.ProtoID { return ID }

// Applicable implements core.ProtoFactory: anywhere the entry parses.
func (*Factory) Applicable(entry core.ProtoEntry, client, server netsim.Locality) bool {
	_, err := parseEntry(entry)
	return err == nil
}

// New implements core.ProtoFactory: each protocol object owns an
// ephemeral datagram socket on the client's machine.
func (f *Factory) New(entry core.ProtoEntry, ref *core.ObjectRef, host *core.Context) (core.Protocol, error) {
	peer, err := parseEntry(entry)
	if err != nil {
		return nil, err
	}
	pc, err := host.Runtime().Network().ListenPacket(host.Locality().Machine, 0)
	if err != nil {
		return nil, err
	}
	return &proto{node: NewNode(pc, f.cfg, nil), peer: peer}, nil
}

// proto is the client-side protocol object.
type proto struct {
	node *Node
	peer netsim.Addr
}

// ID implements core.Protocol.
func (*proto) ID() core.ProtoID { return ID }

// Call implements core.Protocol.
func (p *proto) Call(m *wire.Message) (*wire.Message, error) {
	e := xdr.NewEncoder(64 + len(m.Body))
	if err := m.MarshalXDR(e); err != nil {
		return nil, err
	}
	out, err := p.node.Request(p.peer, e.Bytes())
	if err != nil {
		return nil, err
	}
	reply := new(wire.Message)
	if err := xdr.Unmarshal(out, reply); err != nil {
		return nil, errs.Wrap(errs.Codec, err, "udprel: reply frame")
	}
	return reply, nil
}

// Close implements core.Protocol.
func (p *proto) Close() error { return p.node.Close() }
