package directory

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossInstances(t *testing.T) {
	a := NewRing(5, 32)
	b := NewRing(5, 32)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("svc/obj-%d", i)
		if a.Shard(name) != b.Shard(name) {
			t.Fatalf("ring not deterministic for %q: %d vs %d", name, a.Shard(name), b.Shard(name))
		}
	}
}

func TestRingCoversAllShards(t *testing.T) {
	r := NewRing(8, 64)
	counts := make([]int, 8)
	const names = 20000
	for i := 0; i < names; i++ {
		counts[r.Shard(fmt.Sprintf("svc/obj-%d", i))]++
	}
	for s, c := range counts {
		// With 64 vnodes the partition is rough but no shard should be
		// starved or hog the ring.
		if c < names/80 {
			t.Fatalf("shard %d starved: %d of %d names", s, c, names)
		}
		if c > names/2 {
			t.Fatalf("shard %d hogs the ring: %d of %d names", s, c, names)
		}
	}
}

// TestRingRebalanceProperty is the consistent-hashing contract: growing
// N shards to N+1 may move a name only TO the new shard — no name
// shuffles between surviving shards.
func TestRingRebalanceProperty(t *testing.T) {
	const names = 20000
	for _, n := range []int{1, 3, 7} {
		before := NewRing(n, 64)
		after := NewRing(n+1, 64)
		moved := 0
		for i := 0; i < names; i++ {
			name := fmt.Sprintf("svc/obj-%d", i)
			b, a := before.Shard(name), after.Shard(name)
			if b == a {
				continue
			}
			moved++
			if a != n {
				t.Fatalf("grow %d->%d: %q moved %d->%d, not to the new shard", n, n+1, name, b, a)
			}
		}
		if moved == 0 {
			t.Fatalf("grow %d->%d moved nothing — the new shard owns no names", n, n+1)
		}
		// The new shard should capture roughly 1/(n+1) of the namespace;
		// allow a generous band.
		if moved > names*3/(n+1) {
			t.Fatalf("grow %d->%d moved %d of %d names — far more than its share", n, n+1, moved, names)
		}
	}
}

func TestRingClampsDegenerateInputs(t *testing.T) {
	r := NewRing(0, -1)
	if r.Shards() != 1 {
		t.Fatalf("shards = %d, want 1", r.Shards())
	}
	if s := r.Shard("anything"); s != 0 {
		t.Fatalf("single-shard ring mapped to %d", s)
	}
}
