// Figure E1: goodput and retry amplification through an overload-plus-
// crash schedule with class-keyed retry budgets on versus off.
//
// The deployment models the classic retry-storm casualty: a shared
// client worker pool serving a mixed workload against two dependencies
// — a steady one that stays up, and a flaky, capacity-limited one that
// crashes mid-run and restarts later. Every other task needs the flaky
// dependency; the rest only need the steady one.
//
// Without budgets, each task against the crashed dependency burns the
// full retry allowance — attempts plus exponential backoffs, ~14ms of
// worker time per doomed call — so the pool spends the outage waiting
// out backoffs instead of serving the steady traffic that could have
// completed. With budgets, the outage drains each GP's bucket after a
// handful of doomed calls and everything after that fails fast with a
// typed errs.BudgetExhausted, so the workers keep the steady path near
// full speed through the same outage. The flaky dependency's concurrency
// cap adds the overload half of the schedule: the post-restart herd
// draws FaultUnavailable refusals, which budgeted mode sheds cheaply
// and unbudgeted mode retries at full amplification.
//
// Failover stays off: there is deliberately no backup replica, because
// the figure isolates what retries cost the retrying client; Figure R1
// covers the failover chain.
package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
)

// E1 figure mode names.
const (
	ModeBudgeted   = "budgeted"
	ModeUnbudgeted = "unbudgeted"
	E1FigureTitle  = "Figure E1: goodput and retry amplification under overload + crash, retry budgets on vs off"
)

// Fixed stream ports for the two servers, so the restart hook can
// re-bind the address the flaky reference advertises.
const (
	e1SteadyPort = 7401
	e1FlakyPort  = 7402
)

// E1Config parameterizes the retry-budget experiment.
type E1Config struct {
	// Profile shapes the LAN (default ProfileEthernet). The netsim
	// shapes traffic in real time, so the schedule runs on the wall
	// clock.
	Profile netsim.LinkProfile
	// Duration is the total run length (default 1.2s); the flaky
	// dependency crashes at 1/6 and restarts at 1/2 of it.
	Duration time.Duration
	// Deadline bounds each call (default 50ms).
	Deadline time.Duration
	// Pace is each worker's gap between tasks (default 200µs).
	Pace time.Duration
	// Workers is the closed-loop client pool size (default 4).
	Workers int
	// Mix routes every Mix-th task to the flaky dependency (default 2).
	Mix int
	// Cap is the flaky servant's concurrency cap (default 2): attempts
	// beyond it are refused with FaultUnavailable.
	Cap int
	// Hold is the servant-side service time per call (default 500µs).
	Hold time.Duration
	// MaxTokens and Ratio configure the budgeted mode's buckets
	// (defaults core.DefaultRetryBudget).
	MaxTokens float64
	Ratio     float64
	// Ints is the array length exchanged per call (default 16).
	Ints int
	// Clock paces the workers (default the real clock, matching the
	// real-time netsim shaping and fault schedule).
	Clock clock.Clock
	// OnRuntime, when set, is invoked with each mode's runtime right
	// after its deployment is built (ohpc-bench attaches -introspect
	// through it); the returned cleanup (may be nil) runs before that
	// mode's runtime shuts down.
	OnRuntime func(mode string, rt *core.Runtime) func()
}

func (c *E1Config) fill() {
	if c.Profile.Name == "" {
		c.Profile = netsim.ProfileEthernet
	}
	if c.Duration <= 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 50 * time.Millisecond
	}
	if c.Pace <= 0 {
		c.Pace = 200 * time.Microsecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Mix <= 0 {
		c.Mix = 2
	}
	if c.Cap <= 0 {
		c.Cap = 2
	}
	if c.Hold <= 0 {
		c.Hold = 500 * time.Microsecond
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = core.DefaultRetryBudget.MaxTokens
	}
	if c.Ratio <= 0 {
		c.Ratio = core.DefaultRetryBudget.Ratio
	}
	if c.Ints <= 0 {
		c.Ints = 16
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
}

// E1Point is one row of the figure: one budget mode through the same
// overload + crash schedule.
type E1Point struct {
	Mode string `json:"mode"`
	// Total tasks issued by the worker pool; OK completed (split into
	// the steady and flaky paths); Exhausted failed with a typed
	// errs.BudgetExhausted; Failed errored any other way (transport
	// errors, refusals, expiries).
	Total     int `json:"total"`
	OK        int `json:"ok"`
	SteadyOK  int `json:"steady_ok"`
	FlakyOK   int `json:"flaky_ok"`
	Exhausted int `json:"exhausted"`
	Failed    int `json:"failed"`
	// Attempts is the number of wire attempts actually sent (the sum of
	// the per-protocol rpc.*.calls counters — retries included), and
	// Amplification the attempts-per-task ratio the budgets bound.
	Attempts      uint64  `json:"attempts"`
	Amplification float64 `json:"amplification"`
	// Goodput is completed calls per second of run time.
	Goodput float64 `json:"goodput_per_sec"`
	// P50/P99 are time-to-answer percentiles over every task, success
	// or failure — a doomed call stuck in retry backoffs shows up here.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// ErrorsByCode tallies the per-code error counters the settle path
	// keeps (the same rpc.errors{code=...} family /varz rates).
	ErrorsByCode map[string]uint64 `json:"errors_by_code,omitempty"`
}

// E1Result is the whole figure.
type E1Result struct {
	Profile  string        `json:"profile"`
	Duration time.Duration `json:"duration_ns"`
	Deadline time.Duration `json:"deadline_ns"`
	Workers  int           `json:"workers"`
	Mix      int           `json:"mix"`
	Cap      int           `json:"cap"`
	Schedule []string      `json:"schedule"`
	Points   []E1Point     `json:"points"`
}

const (
	e1SteadyObject = core.ObjectID("e1/steady")
	e1FlakyObject  = core.ObjectID("e1/flaky")
)

// e1Servant is the exchange servant: every call costs Hold of service
// time; calls beyond Cap concurrent are refused with FaultUnavailable
// after paying it — admission (decode, dispatch, queueing) is work a
// real server has already done by the time it decides to shed.
type e1Servant struct {
	clk      clock.Clock
	hold     time.Duration
	capacity int

	mu       sync.Mutex
	inflight int
}

func (s *e1Servant) methods() map[string]core.Method {
	return map[string]core.Method{
		"exchange": func(args []byte) ([]byte, error) {
			s.mu.Lock()
			s.inflight++
			over := s.inflight > s.capacity
			s.mu.Unlock()
			clock.Sleep(s.clk, s.hold)
			s.mu.Lock()
			s.inflight--
			s.mu.Unlock()
			if over {
				return nil, wire.Faultf(wire.FaultUnavailable, "e1: over capacity (%d slots)", s.capacity)
			}
			return args, nil
		},
	}
}

// e1Deployment is one mode's testbed: one client machine, one steady
// server, one flaky capacity-limited server, no backups.
type e1Deployment struct {
	Deployment
	flakyCtx  *core.Context
	steadyRef *core.ObjectRef
	flakyRef  *core.ObjectRef
}

func newE1Deployment(cfg E1Config, budgeted bool) (*e1Deployment, error) {
	n := netsim.New()
	n.AddLAN("lan", "campus", cfg.Profile)
	n.MustAddMachine("client-m", "lan")
	n.MustAddMachine("steady-m", "lan")
	n.MustAddMachine("flaky-m", "lan")
	rt := newRuntime(n, "bench-e1")
	rt.SetFailover(false)
	if budgeted {
		rt.SetRetryBudget(core.RetryBudgetConfig{MaxTokens: cfg.MaxTokens, Ratio: cfg.Ratio})
	} else {
		rt.SetRetryBudget(core.RetryBudgetConfig{Disabled: true})
	}
	fail := func(err error) (*e1Deployment, error) {
		rt.Close()
		return nil, err
	}
	clientCtx, err := rt.NewContext("client", "client-m")
	if err != nil {
		return fail(err)
	}
	export := func(ctxName string, machine netsim.MachineID, port int, object core.ObjectID, capacity int) (*core.Context, *core.ObjectRef, error) {
		sctx, err := rt.NewContext(ctxName, machine)
		if err != nil {
			return nil, nil, err
		}
		if err := sctx.BindSim(port); err != nil {
			return nil, nil, err
		}
		sv := &e1Servant{clk: rt.Clock(), hold: cfg.Hold, capacity: capacity}
		s, err := sctx.ExportAs(object, ExchangeIface, nil, sv.methods(), 0)
		if err != nil {
			return nil, nil, err
		}
		e, err := sctx.EntryStream()
		if err != nil {
			return nil, nil, err
		}
		return sctx, sctx.NewRef(s, e), nil
	}
	_, steadyRef, err := export("steady", "steady-m", e1SteadyPort, e1SteadyObject, 1<<20)
	if err != nil {
		return fail(err)
	}
	flakyCtx, flakyRef, err := export("flaky", "flaky-m", e1FlakyPort, e1FlakyObject, cfg.Cap)
	if err != nil {
		return fail(err)
	}
	return &e1Deployment{
		Deployment: Deployment{Net: n, Runtime: rt, Client: clientCtx},
		flakyCtx:   flakyCtx,
		steadyRef:  steadyRef,
		flakyRef:   flakyRef,
	}, nil
}

// e1Plan builds the fault schedule: the flaky dependency crashes at 1/4
// and restarts at 1/2 of the run.
func e1Plan(cfg E1Config, d *e1Deployment) (*netsim.FaultPlan, []string) {
	crashAt := cfg.Duration / 6
	restartAt := cfg.Duration / 2
	plan := new(netsim.FaultPlan)
	plan.CrashAt(crashAt, "flaky-m")
	plan.RestartAt(restartAt, "flaky-m", func() {
		_ = d.flakyCtx.BindSim(e1FlakyPort)
	})
	return plan, []string{
		fmt.Sprintf("%6v  crash flaky-m", crashAt.Round(time.Millisecond)),
		fmt.Sprintf("%6v  restart flaky-m (re-bind sim port %d)", restartAt.Round(time.Millisecond), e1FlakyPort),
	}
}

// e1Attempts sums the per-protocol rpc.*.calls counters: wire attempts
// actually sent, retries included.
func e1Attempts(rt *core.Runtime) uint64 {
	var total uint64
	for name, v := range rt.Metrics().Snapshot().Counters {
		if strings.HasPrefix(name, "rpc.") && strings.HasSuffix(name, ".calls") {
			total += v
		}
	}
	return total
}

// e1ErrorsByCode reads the per-code error counters.
func e1ErrorsByCode(rt *core.Runtime) map[string]uint64 {
	out := map[string]uint64{}
	const prefix = `rpc.errors{code="`
	for name, v := range rt.Metrics().Snapshot().Counters {
		if v == 0 || !strings.HasPrefix(name, prefix) {
			continue
		}
		if code, ok := strings.CutSuffix(strings.TrimPrefix(name, prefix), `"}`); ok {
			out[code] = v
		}
	}
	return out
}

// runE1Mode drives the worker pool through the schedule under one
// budget setting.
func runE1Mode(cfg E1Config, budgeted bool) (E1Point, []string, error) {
	d, err := newE1Deployment(cfg, budgeted)
	if err != nil {
		return E1Point{}, nil, err
	}
	defer d.Close()

	mode := ModeUnbudgeted
	if budgeted {
		mode = ModeBudgeted
	}
	if cfg.OnRuntime != nil {
		if done := cfg.OnRuntime(mode, d.Runtime); done != nil {
			defer done()
		}
	}
	arr := &core.Int32Slice{V: make([]int32, cfg.Ints)}
	for i := range arr.V {
		arr.V[i] = int32(i)
	}
	// Warm-up outside the measured window: selection + connection setup
	// against both dependencies on dedicated GPs (a failed warm-up is a
	// config error, not a data point).
	for _, ref := range []*core.ObjectRef{d.steadyRef, d.flakyRef} {
		warm := d.Client.NewGlobalPtr(ref)
		if _, err := core.Call[*core.Int32Slice, core.Int32Slice](warm, "exchange", arr); err != nil {
			warm.Release()
			return E1Point{}, nil, errs.Wrapf(errs.CodeOf(err), err, "bench: e1 %s warm-up of %s", mode, ref.Object)
		}
		warm.Release()
	}

	plan, schedule := e1Plan(cfg, d)
	run := plan.Run(d.Net)
	defer run.Stop()

	type tally struct {
		total, steadyOK, flakyOK, exhausted, failed int
		latencies                                   []time.Duration
	}
	attemptsBefore := e1Attempts(d.Runtime)
	tallies := make([]tally, cfg.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One GP — and so one retry bucket — per worker per target,
			// the way a real client process holds one handle per
			// dependency.
			steady := d.Client.NewGlobalPtr(d.steadyRef)
			defer steady.Release()
			flaky := d.Client.NewGlobalPtr(d.flakyRef)
			defer flaky.Release()
			tl := &tallies[w]
			for task := 0; time.Since(start) < cfg.Duration; task++ {
				gp, onFlaky := steady, false
				if task%cfg.Mix == cfg.Mix-1 {
					gp, onFlaky = flaky, true
				}
				callCtx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
				t0 := time.Now()
				_, err := core.CallCtx[*core.Int32Slice, core.Int32Slice](callCtx, gp, "exchange", arr)
				lat := time.Since(t0)
				cancel()
				tl.total++
				tl.latencies = append(tl.latencies, lat)
				var be *errs.BudgetExhausted
				switch {
				case err == nil && onFlaky:
					tl.flakyOK++
				case err == nil:
					tl.steadyOK++
				case errors.As(err, &be):
					tl.exhausted++
				default:
					tl.failed++
				}
				clock.Sleep(cfg.Clock, cfg.Pace)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	run.Wait()

	pt := E1Point{Mode: mode}
	var latencies []time.Duration
	for i := range tallies {
		pt.Total += tallies[i].total
		pt.SteadyOK += tallies[i].steadyOK
		pt.FlakyOK += tallies[i].flakyOK
		pt.Exhausted += tallies[i].exhausted
		pt.Failed += tallies[i].failed
		latencies = append(latencies, tallies[i].latencies...)
	}
	pt.OK = pt.SteadyOK + pt.FlakyOK
	pt.Attempts = e1Attempts(d.Runtime) - attemptsBefore
	if pt.Total > 0 {
		pt.Amplification = float64(pt.Attempts) / float64(pt.Total)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		pt.Goodput = float64(pt.OK) / secs
	}
	pt.P50, pt.P99 = percentiles(latencies)
	pt.ErrorsByCode = e1ErrorsByCode(d.Runtime)
	return pt, schedule, nil
}

// RunFigureE1 produces the retry-budget figure: the same overload +
// crash schedule with budgets on and off.
func RunFigureE1(cfg E1Config) (*E1Result, error) {
	cfg.fill()
	res := &E1Result{
		Profile:  cfg.Profile.Name,
		Duration: cfg.Duration,
		Deadline: cfg.Deadline,
		Workers:  cfg.Workers,
		Mix:      cfg.Mix,
		Cap:      cfg.Cap,
	}
	for _, budgeted := range []bool{true, false} {
		pt, schedule, err := runE1Mode(cfg, budgeted)
		if err != nil {
			return nil, err
		}
		if res.Schedule == nil {
			res.Schedule = schedule
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// FormatFigureE1 renders the figure as a text table.
func FormatFigureE1(r *E1Result) string {
	out := fmt.Sprintf("%s\n  profile %s, run %v, deadline %v, %d workers, every %dth task on the flaky dependency (cap %d)\n  fault schedule:\n",
		E1FigureTitle, r.Profile, r.Duration.Round(time.Millisecond), r.Deadline.Round(time.Millisecond),
		r.Workers, r.Mix, r.Cap)
	for _, ev := range r.Schedule {
		out += "    " + ev + "\n"
	}
	out += fmt.Sprintf("\n  %-12s %7s %6s %10s %9s %10s %7s %9s %7s %9s %10s %10s\n",
		"mode", "total", "ok", "steady_ok", "flaky_ok", "exhausted", "failed", "attempts", "amp", "goodput", "p50", "p99")
	for _, p := range r.Points {
		out += fmt.Sprintf("  %-12s %7d %6d %10d %9d %10d %7d %9d %6.2fx %7.0f/s %10v %10v\n",
			p.Mode, p.Total, p.OK, p.SteadyOK, p.FlakyOK, p.Exhausted, p.Failed, p.Attempts, p.Amplification,
			p.Goodput, p.P50.Round(10*time.Microsecond), p.P99.Round(10*time.Microsecond))
	}
	var on, off E1Point
	for _, p := range r.Points {
		if p.Mode == ModeBudgeted {
			on = p
		} else {
			off = p
		}
	}
	out += fmt.Sprintf("\n  budgets bound amplification at %.2fx (vs %.2fx without) and sustain %.0f calls/s of goodput (vs %.0f) through the same outage\n",
		on.Amplification, off.Amplification, on.Goodput, off.Goodput)
	return out
}
