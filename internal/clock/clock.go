// Package clock abstracts time so quota capabilities and load statistics
// are deterministic under test.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real reads the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Fake is a manually advanced clock for tests.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a Fake set to start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// Set jumps the clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	f.now = t
	f.mu.Unlock()
}
