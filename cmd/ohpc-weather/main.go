// Command ohpc-weather is a two-process deployment of the paper's
// motivating application over real TCP sockets: run a server in one
// terminal and any number of clients in others.
//
//	ohpc-registry -listen 127.0.0.1:7777          # terminal 1
//	ohpc-weather -mode serve -registry tcp://127.0.0.1:7777
//	ohpc-weather -mode client -registry tcp://127.0.0.1:7777 -grant collab
//	ohpc-weather -mode client -registry tcp://127.0.0.1:7777 -grant paid
//
// The server publishes two references for the same simulation: an
// authenticated+encrypted "collab" grant and a 5-request "paid" grant —
// and clients in other OS processes resolve them by name, capabilities
// included.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"sync"
	"time"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/introspect"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/registry"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// sharedSecret would be provisioned out of band in a real deployment.
var sharedSecret = []byte("ohpc-weather-demo-secret-32bytes")

type regionReq struct{ Lo, Hi int32 }

func (r *regionReq) MarshalXDR(e *xdr.Encoder) error {
	e.PutInt32(r.Lo)
	e.PutInt32(r.Hi)
	return nil
}

func (r *regionReq) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if r.Lo, err = d.Int32(); err != nil {
		return err
	}
	r.Hi, err = d.Int32()
	return err
}

type sim struct {
	mu   sync.Mutex
	grid []float64
}

func newSim(n int) *sim {
	g := make([]float64, n)
	for i := range g {
		g[i] = 15 + 10*math.Sin(float64(i)/float64(n)*2*math.Pi)
	}
	return &sim{grid: g}
}

func (w *sim) forecast(r *regionReq) (*core.Float64Slice, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if r.Lo < 0 || int(r.Hi) > len(w.grid) || r.Lo >= r.Hi {
		return nil, wire.Faultf(wire.FaultBadRequest, "bad region [%d,%d)", r.Lo, r.Hi)
	}
	out := make([]float64, r.Hi-r.Lo)
	copy(out, w.grid[r.Lo:r.Hi])
	return &core.Float64Slice{V: out}, nil
}

// localRuntime models this OS process as one machine.
func localRuntime(process string) *core.Runtime {
	n := netsim.New()
	n.AddLAN("local", "local", netsim.ProfileLoopback)
	n.MustAddMachine("host", "local")
	rt := core.NewRuntime(n, process)
	capability.Install(rt.DefaultPool())
	return rt
}

func serve(regAddr, introspectAddr string) error {
	rt := localRuntime("ohpc-weather-server")
	defer rt.Close()
	if introspectAddr != "" {
		insp, err := introspect.Attach(rt, introspect.Options{Addr: introspectAddr})
		if err != nil {
			return err
		}
		defer insp.Close()
		fmt.Printf("ohpc-weather: introspection plane on http://%s\n", insp.Addr())
	}
	ctx, err := rt.NewContext("weather", "host")
	if err != nil {
		return err
	}
	if err := ctx.BindTCP("127.0.0.1:0"); err != nil {
		return err
	}
	w := newSim(256)
	servant, err := ctx.Export("weather.Forecasts", w, map[string]core.Method{
		"forecast": core.Handler(w.forecast),
	})
	if err != nil {
		return err
	}
	base, err := ctx.EntryStream()
	if err != nil {
		return err
	}
	collab, err := capability.GlueEntry(ctx, "weather-collab", base,
		capability.MustNewAuth("collab", sharedSecret, capability.ScopeAlways),
		capability.MustNewEncrypt(sharedSecret, capability.ScopeAlways))
	if err != nil {
		return err
	}
	paid, err := capability.GlueEntry(ctx, "weather-paid", base,
		capability.NewQuota(5, time.Time{}))
	if err != nil {
		return err
	}

	reg := registry.NewClient(ctx, registry.RefAt(regAddr))
	if err := reg.Rebind("weather/collab", ctx.NewRef(servant, collab)); err != nil {
		return err
	}
	if err := reg.Rebind("weather/paid", ctx.NewRef(servant, paid)); err != nil {
		return err
	}
	addr, _ := ctx.Binding(core.ProtoStream)
	fmt.Printf("ohpc-weather: serving on %s; published weather/collab and weather/paid\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return nil
}

func client(regAddr, grant string, calls int) error {
	rt := localRuntime(fmt.Sprintf("ohpc-weather-client-%d", os.Getpid()))
	defer rt.Close()
	ctx, err := rt.NewContext("client", "host")
	if err != nil {
		return err
	}
	reg := registry.NewClient(ctx, registry.RefAt(regAddr))
	ref, err := reg.Lookup("weather/" + grant)
	if err != nil {
		return err
	}
	gp := ctx.NewGlobalPtr(ref)
	for i := 1; i <= calls; i++ {
		f, err := core.Call[*regionReq, core.Float64Slice](gp, "forecast", &regionReq{Lo: 0, Hi: 8})
		if err != nil {
			var fault *wire.Fault
			if errors.As(err, &fault) {
				fmt.Printf("request %d rejected: %s\n", i, fault.Message)
				return nil
			}
			return err
		}
		proto, _ := gp.SelectedProtocol()
		fmt.Printf("request %d over %s: forecast[0]=%.2f°C\n", i, proto, f.V[0])
	}
	return nil
}

func main() {
	mode := flag.String("mode", "client", "serve or client")
	regAddr := flag.String("registry", "tcp://127.0.0.1:7777", "registry address")
	grant := flag.String("grant", "collab", "grant to use in client mode: collab or paid")
	calls := flag.Int("calls", 7, "requests to make in client mode")
	introspectAddr := flag.String("introspect", "", "serve mode: expose the introspection plane (/metrics /statusz /tracez /varz) on this address")
	flag.Parse()

	var err error
	switch *mode {
	case "serve":
		err = serve(*regAddr, *introspectAddr)
	case "client":
		err = client(*regAddr, *grant, *calls)
	default:
		err = errs.Newf(errs.Config, "unknown mode %q", *mode)
	}
	if err != nil {
		log.Fatalf("ohpc-weather: %v", err)
	}
}
