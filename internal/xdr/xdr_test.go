package xdr

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestPutUint32Wire(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(0x01020304)
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("got % x want % x", e.Bytes(), want)
	}
}

func TestPutInt32Negative(t *testing.T) {
	e := NewEncoder(8)
	e.PutInt32(-1)
	want := []byte{0xff, 0xff, 0xff, 0xff}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("got % x want % x", e.Bytes(), want)
	}
	d := NewDecoder(e.Bytes())
	v, err := d.Int32()
	if err != nil || v != -1 {
		t.Fatalf("decode: %v %v", v, err)
	}
}

func TestPutUint64Wire(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint64(0x0102030405060708)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("got % x want % x", e.Bytes(), want)
	}
}

func TestStringPadding(t *testing.T) {
	e := NewEncoder(16)
	e.PutString("abcde") // length 5 -> 3 pad bytes
	if e.Len() != 4+8 {
		t.Fatalf("encoded length %d, want 12", e.Len())
	}
	want := []byte{0, 0, 0, 5, 'a', 'b', 'c', 'd', 'e', 0, 0, 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("got % x want % x", e.Bytes(), want)
	}
	d := NewDecoder(e.Bytes())
	s, err := d.String()
	if err != nil || s != "abcde" {
		t.Fatalf("decode: %q %v", s, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining %d", d.Remaining())
	}
}

func TestStringAlignedNoPad(t *testing.T) {
	e := NewEncoder(16)
	e.PutString("abcd")
	if e.Len() != 8 {
		t.Fatalf("encoded length %d, want 8", e.Len())
	}
}

func TestNonzeroPaddingRejected(t *testing.T) {
	buf := []byte{0, 0, 0, 1, 'x', 0, 0, 7}
	d := NewDecoder(buf)
	if _, err := d.String(); err != ErrPadding {
		t.Fatalf("err = %v, want ErrPadding", err)
	}
}

func TestBoolStrict(t *testing.T) {
	for _, v := range []uint32{0, 1} {
		e := NewEncoder(4)
		e.PutUint32(v)
		got, err := NewDecoder(e.Bytes()).Bool()
		if err != nil || got != (v == 1) {
			t.Fatalf("bool(%d) = %v, %v", v, got, err)
		}
	}
	e := NewEncoder(4)
	e.PutUint32(2)
	if _, err := NewDecoder(e.Bytes()).Bool(); err != ErrBool {
		t.Fatalf("want ErrBool, got %v", err)
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 9, 'a'})
	if _, err := d.Opaque(); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
}

func TestLengthSanity(t *testing.T) {
	e := NewEncoder(4)
	e.PutUint32(maxDecodeLen + 1)
	if _, err := NewDecoder(e.Bytes()).Opaque(); err != ErrLength {
		t.Fatalf("want ErrLength, got %v", err)
	}
}

func TestFloats(t *testing.T) {
	vals := []float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64, math.MaxFloat64}
	for _, v := range vals {
		e := NewEncoder(8)
		e.PutFloat64(v)
		got, err := NewDecoder(e.Bytes()).Float64()
		if err != nil || got != v {
			t.Fatalf("float64 %v -> %v, %v", v, got, err)
		}
	}
	e := NewEncoder(8)
	e.PutFloat64(math.NaN())
	got, err := NewDecoder(e.Bytes()).Float64()
	if err != nil || !math.IsNaN(got) {
		t.Fatalf("NaN roundtrip: %v %v", got, err)
	}
	e.Reset()
	e.PutFloat32(float32(math.Pi))
	g32, err := NewDecoder(e.Bytes()).Float32()
	if err != nil || g32 != float32(math.Pi) {
		t.Fatalf("float32: %v %v", g32, err)
	}
}

func TestOpaqueView(t *testing.T) {
	e := NewEncoder(16)
	e.PutOpaque([]byte{1, 2, 3})
	d := NewDecoder(e.Bytes())
	v, err := d.OpaqueView()
	if err != nil {
		t.Fatal(err)
	}
	if &v[0] != &e.Bytes()[4] {
		t.Fatal("OpaqueView must alias input")
	}
}

func TestOptional(t *testing.T) {
	e := NewEncoder(16)
	e.PutOptional(true, func(e *Encoder) { e.PutUint32(42) })
	e.PutOptional(false, nil)
	d := NewDecoder(e.Bytes())
	var got uint32
	present, err := d.Optional(func(d *Decoder) error {
		v, err := d.Uint32()
		got = v
		return err
	})
	if err != nil || !present || got != 42 {
		t.Fatalf("optional present: %v %v %d", present, err, got)
	}
	present, err = d.Optional(nil)
	if err != nil || present {
		t.Fatalf("optional absent: %v %v", present, err)
	}
}

func TestEncoderReuse(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(7)
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	e.PutUint32(9)
	v, err := NewDecoder(e.Bytes()).Uint32()
	if err != nil || v != 9 {
		t.Fatalf("after reuse: %d %v", v, err)
	}
}

type pair struct {
	A int32
	B string
}

func (p *pair) MarshalXDR(e *Encoder) error {
	e.PutInt32(p.A)
	e.PutString(p.B)
	return nil
}

func (p *pair) UnmarshalXDR(d *Decoder) error {
	var err error
	if p.A, err = d.Int32(); err != nil {
		return err
	}
	p.B, err = d.String()
	return err
}

func TestMarshalUnmarshal(t *testing.T) {
	in := &pair{A: -5, B: "hello"}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out pair
	if err := Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != *in {
		t.Fatalf("got %+v want %+v", out, *in)
	}
	// Trailing garbage must be rejected.
	if err := Unmarshal(append(b, 0, 0, 0, 0), &out); err == nil {
		t.Fatal("want ErrTrailing")
	}
}

// Property: every scalar round-trips.
func TestQuickScalars(t *testing.T) {
	f := func(a uint32, b int32, c uint64, d int64, e32 float32, e64 float64, ok bool) bool {
		enc := NewEncoder(64)
		enc.PutUint32(a)
		enc.PutInt32(b)
		enc.PutUint64(c)
		enc.PutInt64(d)
		enc.PutFloat32(e32)
		enc.PutFloat64(e64)
		enc.PutBool(ok)
		dec := NewDecoder(enc.Bytes())
		ga, _ := dec.Uint32()
		gb, _ := dec.Int32()
		gc, _ := dec.Uint64()
		gd, _ := dec.Int64()
		ge32, _ := dec.Float32()
		ge64, _ := dec.Float64()
		gok, err := dec.Bool()
		if err != nil || dec.Remaining() != 0 {
			return false
		}
		f32ok := ge32 == e32 || (math.IsNaN(float64(e32)) && math.IsNaN(float64(ge32)))
		f64ok := ge64 == e64 || (math.IsNaN(e64) && math.IsNaN(ge64))
		return ga == a && gb == b && gc == c && gd == d && f32ok && f64ok && gok == ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: strings and opaque blobs round-trip with 4-byte alignment.
func TestQuickStringsOpaque(t *testing.T) {
	f := func(s string, p []byte) bool {
		enc := NewEncoder(64)
		enc.PutString(s)
		enc.PutOpaque(p)
		if enc.Len()%4 != 0 {
			return false
		}
		dec := NewDecoder(enc.Bytes())
		gs, err := dec.String()
		if err != nil {
			return false
		}
		gp, err := dec.Opaque()
		if err != nil {
			return false
		}
		return gs == s && bytes.Equal(gp, p) && dec.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: integer and float arrays round-trip.
func TestQuickArrays(t *testing.T) {
	f := func(is []int32, fs []float64, ss []string) bool {
		enc := NewEncoder(64)
		enc.PutInt32s(is)
		enc.PutFloat64s(fs)
		enc.PutStrings(ss)
		dec := NewDecoder(enc.Bytes())
		gis, err := dec.Int32s()
		if err != nil {
			return false
		}
		gfs, err := dec.Float64s()
		if err != nil {
			return false
		}
		gss, err := dec.Strings()
		if err != nil {
			return false
		}
		if len(gis) != len(is) || len(gfs) != len(fs) || len(gss) != len(ss) {
			return false
		}
		for i := range is {
			if gis[i] != is[i] {
				return false
			}
		}
		for i := range fs {
			if gfs[i] != fs[i] && !(math.IsNaN(fs[i]) && math.IsNaN(gfs[i])) {
				return false
			}
		}
		for i := range ss {
			if gss[i] != ss[i] {
				return false
			}
		}
		return dec.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FixedOpaque round-trips and is self-aligned.
func TestQuickFixedOpaque(t *testing.T) {
	f := func(p []byte) bool {
		enc := NewEncoder(64)
		enc.PutFixedOpaque(p)
		if enc.Len() != len(p)+pad(len(p)) {
			return false
		}
		got, err := NewDecoder(enc.Bytes()).FixedOpaque(len(p))
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary input.
func TestQuickDecoderRobust(t *testing.T) {
	f := func(p []byte) bool {
		d := NewDecoder(p)
		d.Uint32()
		d.String()
		d.Opaque()
		d.Int32s()
		d.Float64s()
		d.Strings()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntHyper(t *testing.T) {
	e := NewEncoder(8)
	e.PutInt(-42)
	v, err := NewDecoder(e.Bytes()).Int()
	if err != nil || v != -42 {
		t.Fatalf("int: %d %v", v, err)
	}
}

func BenchmarkEncodeInt32s(b *testing.B) {
	v := make([]int32, 1<<16)
	e := NewEncoder(4 * len(v))
	b.SetBytes(int64(4 * len(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutInt32s(v)
	}
}

func BenchmarkDecodeInt32s(b *testing.B) {
	v := make([]int32, 1<<16)
	e := NewEncoder(4 * len(v))
	e.PutInt32s(v)
	b.SetBytes(int64(4 * len(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDecoder(e.Bytes()).Int32s(); err != nil {
			b.Fatal(err)
		}
	}
}

// Golden vectors: fixed byte encodings that must never change (the wire
// compatibility contract; values cross-checked against RFC 4506 rules).
func TestGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		enc  func(*Encoder)
		want string
	}{
		{"int32 -2", func(e *Encoder) { e.PutInt32(-2) }, "fffffffe"},
		{"uint32 259", func(e *Encoder) { e.PutUint32(259) }, "00000103"},
		{"hyper -1", func(e *Encoder) { e.PutInt64(-1) }, "ffffffffffffffff"},
		{"bool true", func(e *Encoder) { e.PutBool(true) }, "00000001"},
		{"float32 1.0", func(e *Encoder) { e.PutFloat32(1.0) }, "3f800000"},
		{"float64 -0.5", func(e *Encoder) { e.PutFloat64(-0.5) }, "bfe0000000000000"},
		{"string 'Hi'", func(e *Encoder) { e.PutString("Hi") }, "0000000248690000"},
		{"opaque 0xde,0xad", func(e *Encoder) { e.PutOpaque([]byte{0xde, 0xad}) }, "00000002dead0000"},
		{"fixed 3 bytes", func(e *Encoder) { e.PutFixedOpaque([]byte{1, 2, 3}) }, "01020300"},
		{"int32s [1,-1]", func(e *Encoder) { e.PutInt32s([]int32{1, -1}) }, "0000000200000001ffffffff"},
	}
	for _, c := range cases {
		e := NewEncoder(16)
		c.enc(e)
		got := fmt.Sprintf("%x", e.Bytes())
		if got != c.want {
			t.Errorf("%s: %s, want %s", c.name, got, c.want)
		}
	}
}
