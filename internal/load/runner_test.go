package load

import (
	"context"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/errs"
)

// TestSmokeOpenLoopFakeClock is the make load-smoke scenario: the full
// harness — grid topology, servers, mixed workload, open-loop arrival —
// on a fake clock, so the run costs simulated time only and the numbers
// are reproducible.
func TestSmokeOpenLoopFakeClock(t *testing.T) {
	sc, err := ParseFile("testdata/scenarios/valid/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	fake := clock.NewFake(time.Unix(9000, 0))
	res, err := RunScenario(context.Background(), sc, fake)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := int(sc.Duration() / (time.Duration(float64(time.Second) / sc.Arrival.RatePerSec)))
	if res.Issued != wantOps {
		t.Fatalf("open-loop generator issued %d ops, want the full %d-op schedule", res.Issued, wantOps)
	}
	if res.Completed+res.Failed != res.Issued {
		t.Fatalf("ops leaked: %d completed + %d failed != %d issued", res.Completed, res.Failed, res.Issued)
	}
	if res.Failed != 0 {
		t.Fatalf("%d ops failed on a fault-free unshaped grid", res.Failed)
	}
	if res.Latency.Count < uint64(res.Issued) {
		t.Fatalf("recorder holds %d samples for %d ops", res.Latency.Count, res.Issued)
	}
	if res.Mode != ArrivalOpen || res.OfferedPerSec != sc.Arrival.RatePerSec {
		t.Fatalf("result mislabeled: %+v", res)
	}
}

// TestSmokeClosedLoopMaxOps bounds a closed-loop run by op count — the
// fake-clock-safe termination path — and checks the completion-paced
// accounting.
func TestSmokeClosedLoopMaxOps(t *testing.T) {
	sc, err := ParseFile("testdata/scenarios/valid/minimal.json")
	if err != nil {
		t.Fatal(err)
	}
	fake := clock.NewFake(time.Unix(9000, 0))
	res, err := RunScenario(context.Background(), sc, fake)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != sc.MaxOps {
		t.Fatalf("closed loop issued %d ops, want max_ops=%d", res.Issued, sc.MaxOps)
	}
	if res.Completed != res.Issued || res.Failed != 0 {
		t.Fatalf("closed-loop accounting off: %+v", res)
	}
}

// TestRunnerFaultsAndChurn runs the harness through a crash/restart
// schedule with migration churn on the real clock (shaped profiles and
// fault timers are wall-clock), scaled down for test time. The workload
// must make progress through both.
func TestRunnerFaultsAndChurn(t *testing.T) {
	sc := &Scenario{
		Name:     "churny",
		Topology: Topology{LANs: 2, MachinesPerLAN: 3, Profile: "unshaped"},
		Servers:  3,
		Workers:  4,
		Workload: []WorkloadSpec{
			{Kind: KindSync, Weight: 2},
			{Kind: KindAsync, Weight: 1},
		},
		Arrival:    Arrival{Mode: ArrivalOpen, RatePerSec: 2000},
		DurationMS: 300,
		DeadlineMS: 100,
		Failover:   true,
		Faults: []FaultSpec{
			{AtMS: 80, Kind: FaultCrash, Machine: "lan1-m0"},
			{AtMS: 180, Kind: FaultRestart, Machine: "lan1-m0"},
		},
		Churn: Churn{MigrateEveryMS: 40},
	}
	res, err := RunScenario(context.Background(), sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no ops completed through the fault schedule")
	}
	// The crash window dooms some share of the traffic; the run must
	// still push most of it through (failover + the two healthy servers).
	if res.Completed < res.Issued/2 {
		t.Fatalf("only %d of %d ops completed", res.Completed, res.Issued)
	}
	if res.Migrations == 0 {
		t.Fatal("churn loop never migrated an object")
	}
	if len(res.Schedule) != 2 {
		t.Fatalf("schedule %v, want the crash and restart", res.Schedule)
	}
}

// TestRunnerRejectsBadRestart keeps fault-plan construction coded: a
// restart aimed at a machine hosting no server is a config error, not a
// silent no-op at run time.
func TestRunnerRejectsBadRestart(t *testing.T) {
	sc := &Scenario{
		Name:       "misaimed",
		Topology:   Topology{LANs: 2, MachinesPerLAN: 2, Profile: "unshaped"},
		Servers:    1,
		Workers:    1,
		Workload:   []WorkloadSpec{{Kind: KindSync, Weight: 1}},
		Arrival:    Arrival{Mode: ArrivalClosed},
		DurationMS: 100,
		MaxOps:     10,
		Faults:     []FaultSpec{{AtMS: 10, Kind: FaultRestart, Machine: "lan1-m1"}},
	}
	_, err := NewRunner(sc, clock.NewFake(time.Unix(1, 0)))
	if err == nil {
		t.Fatal("restart of a serverless machine accepted")
	}
	if got := errs.CodeOf(err); got != errs.Config {
		t.Fatalf("rejected with %v, want config", got)
	}
}

// TestRunnerValidatesScenario keeps NewRunner honest about validation.
func TestRunnerValidatesScenario(t *testing.T) {
	if _, err := NewRunner(&Scenario{}, nil); errs.CodeOf(err) != errs.Config {
		t.Fatalf("empty scenario: %v", err)
	}
}
