package wire

import (
	"errors"
	"strings"
	"testing"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/xdr"
)

// allFaultCodes is the complete wire fault vocabulary. Adding a code
// there without extending this list (and the errs taxonomy) fails
// TestFaultErrsBijective's exhaustiveness check.
var allFaultCodes = []FaultCode{
	FaultInternal, FaultNoObject, FaultNoMethod, FaultMoved, FaultAuth,
	FaultQuota, FaultCapability, FaultNotApplicable, FaultBadRequest,
	FaultExpired, FaultUnavailable,
}

// TestFaultErrsBijective pins the wire fault codes and the wire-shared
// subset of the errs taxonomy to each other: same numeric values, same
// names, every mapping distinct in both directions, and no wire code
// hiding in the errs local-only range.
func TestFaultErrsBijective(t *testing.T) {
	if len(allFaultCodes) != int(FaultUnavailable) {
		t.Fatalf("allFaultCodes lists %d codes but the vocabulary runs 1..%d — keep the list exhaustive",
			len(allFaultCodes), uint32(FaultUnavailable))
	}
	seenErr := map[errs.Code]FaultCode{}
	seenName := map[string]FaultCode{}
	for _, fc := range allFaultCodes {
		ec := fc.Err()
		if uint32(ec) != uint32(fc) {
			t.Errorf("%v maps to errs code %d, want the same numeric value %d", fc, uint32(ec), uint32(fc))
		}
		if ec >= errs.CodeLocalBase {
			t.Errorf("%v maps into the errs local-only range (%d)", fc, uint32(ec))
		}
		if fc.String() != ec.String() {
			t.Errorf("name drift: wire %q vs errs %q", fc.String(), ec.String())
		}
		if strings.HasPrefix(ec.String(), "code(") {
			t.Errorf("%v has no name in the errs taxonomy", fc)
		}
		if prev, dup := seenErr[ec]; dup {
			t.Errorf("wire codes %v and %v both map to errs %v", prev, fc, ec)
		}
		seenErr[ec] = fc
		if prev, dup := seenName[fc.String()]; dup {
			t.Errorf("wire codes %v and %v share the name %q", prev, fc, fc.String())
		}
		seenName[fc.String()] = fc
	}
	// Inverse direction: every wire-shared errs code is one of the
	// fault codes above.
	for _, ec := range errs.KnownCodes() {
		if ec >= errs.CodeLocalBase {
			continue
		}
		if _, ok := seenErr[ec]; !ok {
			t.Errorf("errs code %v sits in the wire-shared range but no FaultCode maps to it", ec)
		}
	}
}

// TestFaultRoundTripKeepsCodeAndClass encodes a fault with every code,
// decodes it, and checks that errs classification of the decoded error
// matches what an in-process error with the same code would get.
func TestFaultRoundTripKeepsCodeAndClass(t *testing.T) {
	for _, fc := range allFaultCodes {
		f := Faultf(fc, "probe %s", fc)
		body, err := xdr.Marshal(f)
		if err != nil {
			t.Fatalf("%v: marshal: %v", fc, err)
		}
		decoded := DecodeFault(body)
		var df *Fault
		if !errors.As(decoded, &df) {
			t.Fatalf("%v: decoded fault is %T, want *Fault", fc, decoded)
		}
		if df.Code != fc {
			t.Fatalf("%v: round-tripped code = %v", fc, df.Code)
		}
		if got, want := errs.CodeOf(decoded), errs.Code(fc); got != want {
			t.Errorf("%v: CodeOf(decoded) = %v, want %v", fc, got, want)
		}
		if got, want := errs.ClassOf(decoded), errs.Code(fc).Class(); got != want {
			t.Errorf("%v: ClassOf(decoded) = %v, want %v", fc, got, want)
		}
	}
}

// TestFaultUnknownCodeForwardCompat: a fault minted by a newer peer
// with a code this build does not know must survive encode/decode with
// the code intact, stay printable, and classify permanent (never
// amplify load on an unknown failure kind).
func TestFaultUnknownCodeForwardCompat(t *testing.T) {
	for _, unknown := range []FaultCode{12, 42, 99, 4096} {
		f := &Fault{Code: unknown, Message: "from the future"}
		body, err := xdr.Marshal(f)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		decoded := DecodeFault(body)
		var df *Fault
		if !errors.As(decoded, &df) || df.Code != unknown {
			t.Fatalf("unknown code %d did not survive the round trip: %v", unknown, decoded)
		}
		if got := errs.CodeOf(decoded); got != errs.Code(unknown) {
			t.Errorf("CodeOf = %v, want the raw %d", got, unknown)
		}
		if got := errs.ClassOf(decoded); got != errs.ClassPermanent {
			t.Errorf("unknown code %d classifies %v, want permanent", unknown, got)
		}
		if s := df.Error(); !strings.Contains(s, "fault(") {
			t.Errorf("unknown code renders %q, want a fault(N) placeholder", s)
		}
	}
}

// TestAsFaultCarriesWireSharedCodes: a coded in-process error crossing
// the wire keeps its code when it is wire-shared and downgrades to
// internal when it is local-only.
func TestAsFaultCarriesWireSharedCodes(t *testing.T) {
	if f := AsFault(errs.New(errs.Quota, "budget dry")); f.Code != FaultQuota {
		t.Fatalf("quota errs crossed as %v, want FaultQuota", f.Code)
	}
	if f := AsFault(errs.Wrap(errs.Unavailable, nil, "draining")); f.Code != FaultUnavailable {
		t.Fatalf("unavailable errs crossed as %v, want FaultUnavailable", f.Code)
	}
	for _, local := range []errs.Code{errs.Transport, errs.Codec, errs.Config, errs.Exhausted} {
		if f := AsFault(errs.New(local, "local detail")); f.Code != FaultInternal {
			t.Fatalf("local-only code %v crossed as %v, want FaultInternal", local, f.Code)
		}
	}
	// An explicit *Fault anywhere in the chain wins over re-mapping:
	// it is already well-formed and may carry a Data payload (a
	// FaultMoved's new reference) that a re-mapped code would lose.
	wrapped := errs.Wrap(errs.Internal, Faultf(FaultAuth, "bad token"), "server: dispatch")
	if f := AsFault(wrapped); f.Code != FaultAuth {
		t.Fatalf("wrapped fault crossed as %v, want the chain's FaultAuth", f.Code)
	}
	if f := AsFault(Faultf(FaultAuth, "bad token")); f.Code != FaultAuth {
		t.Fatalf("bare fault re-crossed as %v", f.Code)
	}
	if f := AsFault(errors.New("anonymous")); f.Code != FaultInternal {
		t.Fatalf("anonymous error crossed as %v, want FaultInternal", f.Code)
	}
}
