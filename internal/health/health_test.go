package health

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/stats"
)

func TestUnknownEndpointsAreClosed(t *testing.T) {
	tr := NewTracker(Options{})
	defer tr.Close()
	if !tr.Allow("never-seen") {
		t.Fatal("unknown endpoint not allowed")
	}
	if tr.State("never-seen") != Closed {
		t.Fatal("unknown endpoint not Closed")
	}
	if tr.Generation() != 0 {
		t.Fatal("generation moved without a transition")
	}
}

func TestThresholdTripsBreaker(t *testing.T) {
	tr := NewTracker(Options{FailureThreshold: 2})
	defer tr.Close()
	tr.ReportFailure("ep")
	if !tr.Allow("ep") {
		t.Fatal("one failure below threshold tripped the breaker")
	}
	g := tr.Generation()
	tr.ReportFailure("ep")
	if tr.Allow("ep") || tr.State("ep") != Open {
		t.Fatal("threshold failures did not trip the breaker")
	}
	if tr.Generation() == g {
		t.Fatal("trip did not bump the generation")
	}
}

func TestSuccessResetsStreakAndRecloses(t *testing.T) {
	tr := NewTracker(Options{FailureThreshold: 2})
	defer tr.Close()
	tr.ReportFailure("ep")
	tr.ReportSuccess("ep")
	tr.ReportFailure("ep")
	if !tr.Allow("ep") {
		t.Fatal("success did not reset the failure streak")
	}
	tr.Trip("ep")
	if tr.Allow("ep") {
		t.Fatal("Trip did not open the breaker")
	}
	g := tr.Generation()
	tr.ReportSuccess("ep")
	if tr.State("ep") != Closed {
		t.Fatal("live success did not re-close the breaker")
	}
	if tr.Generation() == g {
		t.Fatal("re-close did not bump the generation")
	}
}

func TestProbeNowReclosesOnSuccess(t *testing.T) {
	tr := NewTracker(Options{})
	defer tr.Close()
	var mu sync.Mutex
	probeErr := errors.New("still dead")
	tr.SetProbe("ep", func() error {
		mu.Lock()
		defer mu.Unlock()
		return probeErr
	})
	tr.Trip("ep")

	tr.ProbeNow()
	if tr.State("ep") != Open {
		t.Fatal("failed probe did not re-open the breaker")
	}
	mu.Lock()
	probeErr = nil
	mu.Unlock()
	g := tr.Generation()
	tr.ProbeNow()
	if tr.State("ep") != Closed || !tr.Allow("ep") {
		t.Fatal("successful probe did not re-close the breaker")
	}
	if tr.Generation() == g {
		t.Fatal("probe re-close did not bump the generation")
	}
}

func TestProbeNowSkipsClosedEndpoints(t *testing.T) {
	tr := NewTracker(Options{})
	defer tr.Close()
	called := false
	tr.SetProbe("ep", func() error { called = true; return nil })
	tr.ProbeNow()
	if called {
		t.Fatal("probe ran against a Closed endpoint")
	}
}

func TestHalfOpenStillVetoed(t *testing.T) {
	tr := NewTracker(Options{})
	defer tr.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	tr.SetProbe("ep", func() error {
		close(started)
		<-release
		return nil
	})
	tr.Trip("ep")
	go tr.ProbeNow()
	<-started
	if tr.Allow("ep") {
		t.Fatal("HalfOpen endpoint allowed while the probe is in flight")
	}
	if tr.State("ep") != HalfOpen {
		t.Fatalf("state %v, want HalfOpen", tr.State("ep"))
	}
	close(release)
}

func TestLiveSuccessBeatsInFlightProbe(t *testing.T) {
	tr := NewTracker(Options{})
	defer tr.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	tr.SetProbe("ep", func() error {
		close(started)
		<-release
		return errors.New("probe says dead")
	})
	tr.Trip("ep")
	done := make(chan struct{})
	go func() { tr.ProbeNow(); close(done) }()
	<-started
	// Live traffic proves the endpoint while the probe is in flight; the
	// probe's stale verdict must not re-open it.
	tr.ReportSuccess("ep")
	close(release)
	<-done
	if tr.State("ep") != Closed {
		t.Fatalf("state %v after live success, want Closed (probe verdict was stale)", tr.State("ep"))
	}
}

func TestProbeTimeoutCountsAsFailure(t *testing.T) {
	// The probe timeout runs on the injected clock: a hung probe is
	// driven to its deadline by advancing a fake clock, so the test
	// never sleeps and never depends on wall-clock scheduling.
	fc := clock.NewFake(time.Unix(1000, 0))
	tr := NewTracker(Options{ProbeTimeout: 10 * time.Millisecond, Clock: fc})
	defer tr.Close()
	release := make(chan struct{})
	defer close(release)
	tr.SetProbe("ep", func() error { <-release; return nil })
	tr.Trip("ep")

	done := make(chan struct{})
	go func() {
		tr.ProbeNow()
		close(done)
	}()
	// Advance only once ProbeNow has armed its timeout.
	for fc.Waiters() == 0 {
		select {
		case <-done:
			t.Fatal("ProbeNow returned before the hung probe timed out")
		default:
			runtime.Gosched()
		}
	}
	fc.Advance(10 * time.Millisecond)
	<-done
	if tr.State("ep") != Open {
		t.Fatal("hung probe did not leave the breaker Open")
	}
}

func TestBackgroundProberRecloses(t *testing.T) {
	tr := NewTracker(Options{ProbeInterval: 5 * time.Millisecond})
	defer tr.Close()
	tr.SetProbe("ep", func() error { return nil })
	tr.Trip("ep")
	deadline := time.Now().Add(2 * time.Second)
	for tr.State("ep") != Closed {
		if time.Now().After(deadline) {
			t.Fatal("background prober never re-closed the breaker")
		}
		clock.Sleep(clock.Real{}, 2*time.Millisecond)
	}
}

func TestStatesAreIndependent(t *testing.T) {
	tr := NewTracker(Options{})
	defer tr.Close()
	tr.Trip("a")
	if tr.Allow("a") || !tr.Allow("b") {
		t.Fatal("breakers are not independent per endpoint")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open", State(42): "unknown"} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	tr := NewTracker(Options{})
	tr.SetProbe("ep", func() error { return nil })
	tr.Close()
	tr.Close()
	// SetProbe after Close must not start a prober.
	tr.SetProbe("late", func() error { return nil })
}

func TestSnapshotExportsBreakerState(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	tr := NewTracker(Options{FailureThreshold: 1, ProbeInterval: 40 * time.Millisecond, Clock: fc})
	defer tr.Close()
	tr.ReportSuccess("b|ok")
	tr.Trip("a|bad")
	tr.ReportFailure("c|shaky") // threshold 1: trips

	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d endpoints, want 3", len(snap))
	}
	// Sorted by key.
	if snap[0].Key != "a|bad" || snap[1].Key != "b|ok" || snap[2].Key != "c|shaky" {
		t.Fatalf("snapshot not sorted by key: %+v", snap)
	}
	if snap[0].State != "open" || snap[1].State != "closed" || snap[2].State != "open" {
		t.Fatalf("states wrong: %+v", snap)
	}
	if snap[2].ConsecutiveFailures != 1 {
		t.Fatalf("consecutive failures = %d, want 1", snap[2].ConsecutiveFailures)
	}
	if !snap[0].LastTransition.Equal(fc.Now()) {
		t.Fatalf("last transition = %v, want fake now %v", snap[0].LastTransition, fc.Now())
	}
	// No probe registered: no NextProbe even while open.
	if !snap[0].NextProbe.IsZero() {
		t.Fatalf("NextProbe set without a registered probe: %+v", snap[0])
	}
}

func TestSnapshotNextProbeEstimate(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	tr := NewTracker(Options{FailureThreshold: 1, ProbeInterval: 40 * time.Millisecond, Clock: fc})
	defer tr.Close()
	tr.Trip("a|bad")
	tr.SetProbe("a|bad", func() error { return errors.New("still down") })

	// Before the first pass: one interval from now.
	want := fc.Now().Add(40 * time.Millisecond)
	snap := tr.Snapshot()
	if !snap[0].NextProbe.Equal(want) {
		t.Fatalf("NextProbe before first pass = %v, want %v", snap[0].NextProbe, want)
	}

	fc.Advance(time.Second)
	tr.ProbeNow() // pass runs (and fails); lastProbe = now
	want = fc.Now().Add(40 * time.Millisecond)
	snap = tr.Snapshot()
	if !snap[0].NextProbe.Equal(want) {
		t.Fatalf("NextProbe after a pass = %v, want lastProbe+interval %v", snap[0].NextProbe, want)
	}
	if snap[0].State != "open" {
		t.Fatalf("failed probe should leave the breaker open, got %s", snap[0].State)
	}
}

func TestMetricsGauges(t *testing.T) {
	reg := stats.New()
	tr := NewTracker(Options{FailureThreshold: 1, Metrics: reg})
	defer tr.Close()
	tr.Trip("a")
	tr.Trip("b")
	tr.ReportSuccess("a")

	s := reg.Snapshot()
	if got := s.Gauges["health.open_endpoints"]; got != 1 {
		t.Fatalf("open_endpoints = %d, want 1", got)
	}
	if got := s.Gauges[`health.breaker_state{endpoint="a"}`]; got != int64(Closed) {
		t.Fatalf("breaker_state{a} = %d, want closed(0)", got)
	}
	if got := s.Gauges[`health.breaker_state{endpoint="b"}`]; got != int64(Open) {
		t.Fatalf("breaker_state{b} = %d, want open(1)", got)
	}
	// a: closed->open->closed, b: closed->open = 3 transitions.
	if got := s.Counters["health.transitions"]; got != 3 {
		t.Fatalf("transitions = %d, want 3", got)
	}
}
