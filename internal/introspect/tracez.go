// /tracez: the trace ring rendered as trees. Spans arrive flat (the
// ring records them in end order, client and server sides interleaved);
// the handler groups them by trace ID, wires children to parents by
// span ID, and emits the newest traces first — the live counterpart of
// the obstest assertions PR 3 introduced.
package introspect

import (
	"net/http"
	"sort"
	"strconv"

	"openhpcxx/internal/obs"
)

// TraceNode is one span with its children nested, in start (Seq) order.
type TraceNode struct {
	obs.Span
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceTree is one reconstructed trace: its roots (normally one —
// the client "invoke" span), plus rollups the list view sorts and
// filters on.
type TraceTree struct {
	Trace obs.TraceID `json:"trace"`
	// Spans counts every retained span of the trace; DurNS is the root
	// span's duration (the longest root's, if several); Err is the
	// first error recorded anywhere in the trace.
	Spans int          `json:"spans"`
	DurNS int64        `json:"dur_ns"`
	Err   string       `json:"err,omitempty"`
	Roots []*TraceNode `json:"roots"`
}

// TracezPayload is the /tracez response body.
type TracezPayload struct {
	// Total and Dropped mirror the ring's lifetime accounting; Cursor
	// is what the next poll passes as ?cursor= to see only new spans
	// (and how many the ring evicted in between).
	Total   uint64      `json:"total"`
	Dropped uint64      `json:"dropped"`
	Cursor  uint64      `json:"cursor"`
	Traces  []TraceTree `json:"traces"`
}

// tracezDefaultLimit bounds how many traces one response carries unless
// ?limit= asks otherwise.
const tracezDefaultLimit = 64

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		http.Error(w, "tracez unavailable: a non-ring span recorder is installed", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	cursor, _ := strconv.ParseUint(q.Get("cursor"), 10, 64)
	spans, dropped, next := s.ring.SnapshotSince(cursor)

	// Span-level filter: kind restricts which spans appear at all.
	if kind := q.Get("kind"); kind != "" {
		spans = filterSpans(spans, func(sp obs.Span) bool { return sp.Kind.String() == kind })
	}

	trees := buildTraceTrees(spans)

	// Trace-level filters: error and minimum latency.
	if q.Get("error") == "1" {
		trees = filterTrees(trees, func(t TraceTree) bool { return t.Err != "" })
	}
	if minUS, err := strconv.ParseInt(q.Get("min_us"), 10, 64); err == nil && minUS > 0 {
		trees = filterTrees(trees, func(t TraceTree) bool { return t.DurNS >= minUS*1000 })
	}

	limit := tracezDefaultLimit
	if n, err := strconv.Atoi(q.Get("limit")); err == nil && n > 0 {
		limit = n
	}
	if len(trees) > limit {
		trees = trees[:limit]
	}
	writeJSON(w, TracezPayload{Total: s.ring.Total(), Dropped: dropped, Cursor: next, Traces: trees})
}

func filterSpans(spans []obs.Span, keep func(obs.Span) bool) []obs.Span {
	out := spans[:0:0]
	for _, sp := range spans {
		if keep(sp) {
			out = append(out, sp)
		}
	}
	return out
}

func filterTrees(trees []TraceTree, keep func(TraceTree) bool) []TraceTree {
	out := trees[:0:0]
	for _, t := range trees {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}

// buildTraceTrees groups spans by trace, nests children under parents,
// and returns the traces newest first (by the highest Seq each trace
// retains). A span whose parent was evicted from the ring is promoted
// to a root — a truncated trace still renders.
func buildTraceTrees(spans []obs.Span) []TraceTree {
	byTrace := make(map[obs.TraceID][]obs.Span)
	var order []obs.TraceID
	for _, sp := range spans {
		if _, seen := byTrace[sp.Trace]; !seen {
			order = append(order, sp.Trace)
		}
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	trees := make([]TraceTree, 0, len(order))
	for _, id := range order {
		trees = append(trees, buildTree(id, byTrace[id]))
	}
	// Newest first: sort by the trace's highest Seq, descending.
	sort.Slice(trees, func(i, j int) bool {
		return maxSeq(trees[i].Roots) > maxSeq(trees[j].Roots)
	})
	return trees
}

func buildTree(id obs.TraceID, spans []obs.Span) TraceTree {
	nodes := make(map[obs.SpanID]*TraceNode, len(spans))
	ordered := make([]*TraceNode, 0, len(spans))
	for _, sp := range spans {
		n := &TraceNode{Span: sp}
		nodes[sp.ID] = n
		ordered = append(ordered, n)
	}
	t := TraceTree{Trace: id, Spans: len(spans)}
	for _, n := range ordered {
		if t.Err == "" && n.Err != "" {
			t.Err = n.Err
		}
		if parent, ok := nodes[n.Parent]; ok && n.Parent != 0 && parent != n {
			parent.Children = append(parent.Children, n)
			continue
		}
		t.Roots = append(t.Roots, n)
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Seq < n.Children[j].Seq })
	}
	sort.Slice(t.Roots, func(i, j int) bool { return t.Roots[i].Seq < t.Roots[j].Seq })
	for _, root := range t.Roots {
		if d := int64(root.Dur); d > t.DurNS {
			t.DurNS = d
		}
	}
	return t
}

func maxSeq(roots []*TraceNode) uint64 {
	var m uint64
	for _, r := range roots {
		if r.Seq > m {
			m = r.Seq
		}
		if c := maxSeq(r.Children); c > m {
			m = c
		}
	}
	return m
}
