// Package obs is the runtime's end-to-end invocation tracing and
// metrics-export subsystem.
//
// Every Invoke/InvokeAsync/Post mints a trace ID and a span ID at the
// global pointer; the IDs travel in the wire header (wire version 3),
// so the server-side spans — decode, glue un-processing, dispatch,
// servant — join the client-side spans (protocol selection, glue
// processing, in-flight wait, failover retries, batch coalescing) in a
// single causally connected trace. The paper's evaluation (§5) rests on
// knowing exactly which path each invocation took; a trace answers
// that question per invocation instead of per aggregate counter.
//
// The subsystem is built to cost nothing when off: a Tracer with no
// recorder installed answers Enabled() with one atomic load and every
// span constructor returns nil, whose methods are no-ops. Figure O1
// (ohpc-bench -fig=o1) measures the residual overhead.
//
// Durations come from an injected clock (internal/clock), so traces
// recorded under a fake clock carry simulated time.
package obs

import (
	"math/rand"
	"sync/atomic"
	"time"

	"openhpcxx/internal/clock"
)

// TraceID identifies one end-to-end invocation; all spans of one
// invocation — client and server side — share it. Zero means "not
// traced" and is never minted.
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// Kind says which side of the wire recorded a span.
type Kind uint8

// Span kinds.
const (
	// KindClient marks spans recorded by the invoking side (GP, glue
	// processing, transport send, retries).
	KindClient Kind = iota
	// KindServer marks spans recorded by the serving side (decode,
	// glue un-processing, dispatch, servant).
	KindServer
)

func (k Kind) String() string {
	if k == KindServer {
		return "server"
	}
	return "client"
}

// Span is one completed, immutable unit of work inside a trace. Spans
// are recorded by value on End, so a Recorder may retain them freely.
type Span struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	// Seq orders spans by start within one process (clock reads may
	// tie under a fake clock; Seq never does).
	Seq  uint64 `json:"seq"`
	Name string `json:"name"`
	Kind Kind   `json:"kind"`

	Object string `json:"object,omitempty"`
	Method string `json:"method,omitempty"`
	// Proto and Endpoint identify the protocol-table entry that
	// carried (or was selected for) the work.
	Proto    string `json:"proto,omitempty"`
	Endpoint string `json:"endpoint,omitempty"`
	// Caps lists the capability kinds a glue chain applied,
	// comma-joined in processing order.
	Caps string `json:"caps,omitempty"`
	// Cause carries the fault or retry cause ("transport", a wire
	// fault code name, ...).
	Cause string `json:"cause,omitempty"`
	// Batch is the number of requests coalesced into the TBatch frame
	// this invocation rode in (0 = not batched).
	Batch int `json:"batch,omitempty"`
	// Bytes is the payload size the span handled.
	Bytes int `json:"bytes,omitempty"`
	// Err is the error that ended the span, if any.
	Err string `json:"err,omitempty"`
	// Hint marks the span's trace as a retention candidate. Locally
	// minted spans are always candidates (the local keeper decides by
	// policy); spans continued from a wire header carry the peer's
	// keep-hint bit, so a tail keeper can discard non-candidate
	// continuations without buffering them to trace end.
	Hint bool `json:"hint,omitempty"`

	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// Recorder consumes completed spans. Implementations must be safe for
// concurrent use; Record is called on invocation hot paths and should
// return quickly.
type Recorder interface {
	Record(Span)
}

// Hinter is implemented by recorders that can say, per trace, whether
// the trace is still a retention candidate. The answer rides the wire
// (keep-hint bit) so downstream keepers buffer only candidate traces.
// A recorder that is not a Hinter hints every trace.
type Hinter interface {
	KeepHint(TraceID) bool
}

// recBox wraps the Recorder interface so it fits an atomic.Pointer.
// The Hinter assertion is done once at install time, not per span.
type recBox struct {
	r Recorder
	h Hinter // nil when r is not a Hinter
}

// clkBox wraps the clock interface for the same reason.
type clkBox struct{ c clock.Clock }

// idCtr mints process-unique span/trace IDs. Seeded randomly so traces
// from separately started processes are unlikely to collide.
var idCtr atomic.Uint64

func init() {
	idCtr.Store(rand.Uint64())
}

func nextID() uint64 {
	for {
		if id := idCtr.Add(1); id != 0 {
			return id
		}
	}
}

// Tracer is the per-runtime tracing facade. The zero state (no
// recorder) is fully operational and nearly free: Enabled is one
// atomic pointer load, and Start* return nil, whose span methods are
// no-ops. A nil *Tracer behaves like a disabled one.
type Tracer struct {
	rec atomic.Pointer[recBox]
	clk atomic.Pointer[clkBox]
	seq atomic.Uint64
}

// NewTracer returns a tracer with no recorder, reading time from clk
// (nil defaults to the real clock).
func NewTracer(clk clock.Clock) *Tracer {
	t := &Tracer{}
	t.SetClock(clk)
	return t
}

// SetClock replaces the tracer's time source (nil = real clock).
func (t *Tracer) SetClock(clk clock.Clock) {
	if clk == nil {
		clk = clock.Real{}
	}
	t.clk.Store(&clkBox{c: clk})
}

// SetRecorder installs (or, with nil, removes) the span recorder.
func (t *Tracer) SetRecorder(r Recorder) {
	if r == nil {
		t.rec.Store(nil)
		return
	}
	b := &recBox{r: r}
	b.h, _ = r.(Hinter)
	t.rec.Store(b)
}

// KeepHintFor reports whether the installed recorder still wants the
// trace: false when disabled, the Hinter's answer when the recorder
// implements one, true otherwise. This is the value stamped into the
// wire header's keep-hint bit.
func (t *Tracer) KeepHintFor(trace TraceID) bool {
	if t == nil || trace == 0 {
		return false
	}
	b := t.rec.Load()
	if b == nil {
		return false
	}
	if b.h != nil {
		return b.h.KeepHint(trace)
	}
	return true
}

// Recorder returns the installed recorder, or nil.
func (t *Tracer) Recorder() Recorder {
	if t == nil {
		return nil
	}
	if b := t.rec.Load(); b != nil {
		return b.r
	}
	return nil
}

// Enabled reports whether spans are being recorded. This is the
// hot-path gate: one nil check plus one atomic load.
func (t *Tracer) Enabled() bool {
	return t != nil && t.rec.Load() != nil
}

func (t *Tracer) now() time.Time {
	if b := t.clk.Load(); b != nil {
		return b.c.Now()
	}
	return time.Now()
}

// StartRoot mints a fresh trace and opens its root span. Returns nil
// when no recorder is installed.
func (t *Tracer) StartRoot(kind Kind, name string) *Active {
	if !t.Enabled() {
		return nil
	}
	return &Active{t: t, s: Span{
		Trace: TraceID(nextID()),
		ID:    SpanID(nextID()),
		Seq:   t.seq.Add(1),
		Name:  name,
		Kind:  kind,
		Hint:  true,
		Start: t.now(),
	}}
}

// StartChild opens a span inside an existing trace — typically one
// whose IDs arrived in a wire header. Returns nil when no recorder is
// installed or the trace ID is zero (untraced peer).
func (t *Tracer) StartChild(trace TraceID, parent SpanID, kind Kind, name string) *Active {
	if trace == 0 || !t.Enabled() {
		return nil
	}
	return &Active{t: t, s: Span{
		Trace:  trace,
		ID:     SpanID(nextID()),
		Parent: parent,
		Seq:    t.seq.Add(1),
		Name:   name,
		Kind:   kind,
		Hint:   true,
		Start:  t.now(),
	}}
}

// Active is an open span. All methods are nil-safe, so call sites need
// no enabled-checks beyond the Start* call that produced it.
type Active struct {
	t *Tracer
	s Span
}

// TraceID returns the span's trace id (0 for a nil span).
func (a *Active) TraceID() TraceID {
	if a == nil {
		return 0
	}
	return a.s.Trace
}

// SpanID returns the span's id (0 for a nil span) — the value to put
// in the wire header so downstream spans parent to this one.
func (a *Active) SpanID() SpanID {
	if a == nil {
		return 0
	}
	return a.s.ID
}

// Child opens a sub-span of a, same kind and trace. The parent's
// retention hint is inherited, so an unhinted continuation's sub-spans
// stay unhinted.
func (a *Active) Child(name string) *Active {
	if a == nil {
		return nil
	}
	c := a.t.StartChild(a.s.Trace, a.s.ID, a.s.Kind, name)
	c.SetHint(a.s.Hint)
	return c
}

// SetHint marks (or unmarks) the span's trace as a retention
// candidate. Wire-continuation sites set this from the frame's
// keep-hint bit.
func (a *Active) SetHint(on bool) {
	if a != nil {
		a.s.Hint = on
	}
}

// SetRPC records the invocation target.
func (a *Active) SetRPC(object, method string) {
	if a != nil {
		a.s.Object, a.s.Method = object, method
	}
}

// SetProto records the protocol entry that carried the span.
func (a *Active) SetProto(proto, endpoint string) {
	if a != nil {
		a.s.Proto, a.s.Endpoint = proto, endpoint
	}
}

// SetCaps records a glue chain's capability kinds (comma-joined).
func (a *Active) SetCaps(caps string) {
	if a != nil {
		a.s.Caps = caps
	}
}

// SetCause records a fault or retry cause.
func (a *Active) SetCause(cause string) {
	if a != nil {
		a.s.Cause = cause
	}
}

// SetBatch records the size of the TBatch the request rode in.
func (a *Active) SetBatch(n int) {
	if a != nil {
		a.s.Batch = n
	}
}

// SetBytes records the payload size the span handled.
func (a *Active) SetBytes(n int) {
	if a != nil {
		a.s.Bytes = n
	}
}

// SetErr records the error that ended the span (nil clears nothing and
// costs nothing).
func (a *Active) SetErr(err error) {
	if a != nil && err != nil {
		a.s.Err = err.Error()
	}
}

// End closes the span and hands it to the recorder. Safe to call once;
// later mutations are lost. A span started while a recorder was
// installed is still recorded if the recorder was swapped meanwhile —
// whatever recorder is installed at End receives it.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.s.Dur = a.t.now().Sub(a.s.Start)
	if b := a.t.rec.Load(); b != nil {
		b.r.Record(a.s)
	}
}
