// Golden corpus for the ctxflow analyzer: an exported *Ctx function
// exists to thread its caller's deadline. Minting context.Background()
// inside one, or calling the non-Ctx sibling of a callee that has one,
// silently severs the chain.
package ctxflow

import "context"

// Store offers both plain and context-threading accessors.
type Store struct{}

func (s *Store) Get(key string) error                         { return nil }
func (s *Store) GetCtx(ctx context.Context, key string) error { return nil }
func (s *Store) Drop(key string) error                        { return nil }

// FetchCtx is the shape under test: exported, Ctx-suffixed, takes a
// context.
func FetchCtx(ctx context.Context, s *Store, key string) error {
	bg := context.Background() // want "FetchCtx drops the caller's context"
	_ = bg
	if err := s.Get(key); err != nil { // want "FetchCtx calls Get without the context: use Store.GetCtx"
		return err
	}
	if err := s.Drop(key); err != nil { // no Ctx sibling exists: fine
		return err
	}
	return s.GetCtx(ctx, key)
}

// GoodCtx threads properly: derived contexts and Ctx siblings only.
func GoodCtx(ctx context.Context, s *Store, key string) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return s.GetCtx(ctx, key)
}

// Fetch is not Ctx-suffixed, so a root context inside it is its own
// business (it is the documented non-Ctx delegator shape).
func Fetch(s *Store, key string) error {
	return s.GetCtx(context.Background(), key)
}

// Dir is the directory-resolver shape: lookup comes in plain and
// context-threading flavors.
type Dir struct{}

func (d *Dir) Lookup(name string) error                         { return nil }
func (d *Dir) LookupCtx(ctx context.Context, name string) error { return nil }

// ResolveCtx is the resolver's deadline-threading entry point: falling
// back to the plain Lookup mid-chain severs the caller's deadline right
// where a slow shard needs it most.
func ResolveCtx(ctx context.Context, d *Dir, name string) error {
	if err := d.Lookup(name); err != nil { // want "ResolveCtx calls Lookup without the context: use Dir.LookupCtx"
		return err
	}
	return d.LookupCtx(ctx, name)
}

// Ptr is the call-target shape the load harness drives: invocation comes
// in fire-and-check and context-threading flavors.
type Ptr struct{}

func (p *Ptr) Invoke(args []byte) error                         { return nil }
func (p *Ptr) InvokeCtx(ctx context.Context, args []byte) error { return nil }

// PaceCtx is the open-loop pacing worker shape (internal/load): the run
// context bounds the whole arrival schedule, so every issued call must
// carry it. Dropping to the plain Invoke leaves the op un-cancellable —
// a canceled run would drain its full backlog anyway.
func PaceCtx(ctx context.Context, p *Ptr, schedule [][]byte) error {
	for _, args := range schedule {
		if err := p.Invoke(args); err != nil { // want "PaceCtx calls Invoke without the context: use Ptr.InvokeCtx"
			return err
		}
	}
	return p.InvokeCtx(ctx, nil)
}

// GoodPaceCtx threads the run context into every issued op.
func GoodPaceCtx(ctx context.Context, p *Ptr, schedule [][]byte) error {
	for _, args := range schedule {
		if err := p.InvokeCtx(ctx, args); err != nil {
			return err
		}
	}
	return nil
}
