package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func recordN(r *Ring, trace TraceID, n int) {
	for i := 0; i < n; i++ {
		r.Record(Span{Trace: trace, ID: SpanID(i + 1), Seq: uint64(i + 1), Name: "s"})
	}
}

func TestRingRetainsNewestSpans(t *testing.T) {
	r := NewRing(4)
	recordN(r, 1, 6) // spans seq 1..6; ring keeps 3..6
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d, want 4", len(spans))
	}
	if spans[0].Seq != 3 || spans[3].Seq != 6 {
		t.Fatalf("retained window [%d..%d], want [3..6]", spans[0].Seq, spans[3].Seq)
	}
	if r.Total() != 6 {
		t.Fatalf("total %d, want 6", r.Total())
	}
}

func TestRingUnwrappedAndReset(t *testing.T) {
	r := NewRing(8)
	recordN(r, 1, 3)
	if got := r.Spans(); len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	r.Reset()
	if len(r.Spans()) != 0 || r.Total() != 0 {
		t.Fatal("reset did not clear the ring")
	}
}

func TestRingTraceFiltersAndSorts(t *testing.T) {
	r := NewRing(16)
	// Interleave two traces, out of start order.
	r.Record(Span{Trace: 7, ID: 1, Seq: 5})
	r.Record(Span{Trace: 9, ID: 2, Seq: 1})
	r.Record(Span{Trace: 7, ID: 3, Seq: 2})
	tr := r.Trace(7)
	if len(tr) != 2 || tr[0].Seq != 2 || tr[1].Seq != 5 {
		t.Fatalf("trace filter/sort wrong: %+v", tr)
	}
}

func TestRingDefaultSize(t *testing.T) {
	r := NewRing(0)
	if len(r.buf) != DefaultRingSize {
		t.Fatalf("default capacity %d, want %d", len(r.buf), DefaultRingSize)
	}
}

func TestRingWriteJSON(t *testing.T) {
	r := NewRing(4)
	recordN(r, 3, 6)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var exp Export
	if err := json.Unmarshal(buf.Bytes(), &exp); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if exp.Total != 6 || exp.Retained != 4 || len(exp.Spans) != 4 {
		t.Fatalf("export total=%d retained=%d spans=%d", exp.Total, exp.Retained, len(exp.Spans))
	}
}
