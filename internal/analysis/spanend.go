package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd enforces the span begin/end pairing that keeps traces
// connected: every obs span opened in a function (any call returning
// *obs.Active — StartRoot, StartChild, Child, helpers wrapping them)
// must be ended on every return path, either explicitly, or by a
// deferred End, or by handing ownership away (returning the span,
// passing it to a callee, capturing it in a closure).
//
// The check runs on the shared lifecycle engine (lifecycle.go): a path
// walk that follows if/switch/select/for statements, understands early
// returns, and treats `if sp != nil { ... }` (and nil-guards on the
// span's origin — `if root != nil` for sp := root.Child(...)) as
// path-refining, because Active methods are nil-safe and a nil span
// needs no End. Spans whose ownership escapes are skipped: the pairing
// is then the new owner's obligation, checked where that owner lives.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans must be ended on all return paths (or deferred, or ownership handed off)",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	runLifecycle(pass, &lifeSpec{
		acquire:    spanAcquire,
		isRelease:  spanRelease,
		useIsLocal: spanUseIsLocal,
		nilGuards:  true,
		report:     spanReport,
	})
}

// isActivePtr reports whether t is *obs.Active.
func isActivePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Active" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/obs")
}

// spanAcquire recognizes a span start: any call whose static type is
// *obs.Active. An unbound start (expression statement) is a discard;
// only the simple single-binding form is tracked — everything else
// (multi-assign, field targets, argument position) counts as an
// ownership handoff.
func spanAcquire(pass *Pass, call *ast.CallExpr, parent ast.Node) *lifeAcquire {
	info := pass.Info()
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil || !isActivePtr(tv.Type) {
		return nil
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		return &lifeAcquire{discard: true}
	case *ast.AssignStmt:
		if len(p.Rhs) != 1 || len(p.Lhs) != 1 {
			return nil
		}
		id, ok := p.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return nil
		}
		return &lifeAcquire{obj: obj, origin: receiverObj(info, call)}
	}
	return nil
}

// spanRelease reports whether call is v.obj.End().
func spanRelease(info *types.Info, call *ast.CallExpr, v *lifeVar) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == v.obj
}

// receiverObj resolves the identifier object a start call hangs off
// (root in root.Child(...)); nil when the receiver is not a plain
// identifier.
func receiverObj(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// spanUseIsLocal classifies one identifier occurrence of a span var:
// receiver of a method call, nil comparison, or assignment target keep
// the span local; anything else (argument, return value, closure
// capture, struct field, channel send) hands ownership away.
func spanUseIsLocal(id *ast.Ident, stack []ast.Node) bool {
	for _, anc := range stack {
		if _, ok := anc.(*ast.FuncLit); ok {
			return false // captured by a closure
		}
	}
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// sp.Method(...) — receiver position under a call.
		if parent.X == id && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == parent {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return isNilComparison(parent)
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == id {
				return true // binding target (the start assignment itself)
			}
		}
		return false
	default:
		return false
	}
}

func spanReport(p *Pass, v *lifeVar, pos token.Pos, kind lifeKind) {
	switch kind {
	case lifeDiscarded:
		p.Reportf(pos, "span started and discarded: bind it and End() it (Active methods are nil-safe)")
	case lifeReturn:
		p.Reportf(pos, "span %s is still open on this return path: End() it before returning (or defer it)", v.obj.Name())
	case lifeFallOff:
		p.Reportf(pos, "span %s is still open when %s falls off the end: call %s.End() on this path", v.obj.Name(), v.scope.name, v.obj.Name())
	case lifeLoopEnd:
		p.Reportf(pos, "span %s started inside the loop body is still open at the end of the iteration", v.obj.Name())
	}
}
