package nexus

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/wire"
)

// twoNodes builds a pair of nodes joined through a shared-memory fabric.
func twoNodes(t *testing.T) (client, server *Node, addr string) {
	t.Helper()
	shm := transport.NewSHM()
	dial := func(a string) (net.Conn, error) { return shm.Dial(a) }
	server = NewNode(dial)
	l, err := shm.Listen("nexus-server")
	if err != nil {
		t.Fatal(err)
	}
	server.Attach(l)
	client = NewNode(dial)
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server, "nexus-server"
}

func TestRSRRoundTrip(t *testing.T) {
	client, server, addr := twoNodes(t)
	ep, err := server.CreateEndpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	ep.Bind(7, func(buf []byte) ([]byte, error) {
		return bytes.ToUpper(buf), nil
	})
	out, err := client.RSR(Startpoint{Addr: addr, Endpoint: "svc"}, 7, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "HELLO" {
		t.Fatalf("got %q", out)
	}
}

func TestRSRHandlerError(t *testing.T) {
	client, server, addr := twoNodes(t)
	ep, _ := server.CreateEndpoint("svc")
	ep.Bind(1, func(buf []byte) ([]byte, error) {
		return nil, wire.Faultf(wire.FaultBadRequest, "bad input")
	})
	_, err := client.RSR(Startpoint{Addr: addr, Endpoint: "svc"}, 1, nil)
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultBadRequest {
		t.Fatalf("err = %v", err)
	}
}

func TestRSRUnknownEndpointAndHandler(t *testing.T) {
	client, server, addr := twoNodes(t)
	_, err := client.RSR(Startpoint{Addr: addr, Endpoint: "ghost"}, 1, nil)
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultNoObject {
		t.Fatalf("unknown endpoint: %v", err)
	}
	server.CreateEndpoint("svc")
	_, err = client.RSR(Startpoint{Addr: addr, Endpoint: "svc"}, 99, nil)
	if !errors.As(err, &f) || f.Code != wire.FaultNoMethod {
		t.Fatalf("unknown handler: %v", err)
	}
}

func TestPostOneWay(t *testing.T) {
	client, server, addr := twoNodes(t)
	ep, _ := server.CreateEndpoint("svc")
	var hits atomic.Int32
	ep.Bind(3, func(buf []byte) ([]byte, error) {
		hits.Add(1)
		return nil, nil
	})
	for i := 0; i < 5; i++ {
		if err := client.Post(Startpoint{Addr: addr, Endpoint: "svc"}, 3, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for hits.Load() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("posts handled: %d", hits.Load())
		}
		clock.Sleep(clock.Real{}, time.Millisecond)
	}
	// Posts to unknown endpoints are silently dropped, not faulted.
	if err := client.Post(Startpoint{Addr: addr, Endpoint: "ghost"}, 3, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointRebindUnbind(t *testing.T) {
	client, server, addr := twoNodes(t)
	ep, _ := server.CreateEndpoint("svc")
	ep.Bind(1, func(buf []byte) ([]byte, error) { return []byte("v1"), nil })
	ep.Bind(1, func(buf []byte) ([]byte, error) { return []byte("v2"), nil })
	out, err := client.RSR(Startpoint{Addr: addr, Endpoint: "svc"}, 1, nil)
	if err != nil || string(out) != "v2" {
		t.Fatalf("rebind: %q %v", out, err)
	}
	ep.Unbind(1)
	_, err = client.RSR(Startpoint{Addr: addr, Endpoint: "svc"}, 1, nil)
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultNoMethod {
		t.Fatalf("after unbind: %v", err)
	}
}

func TestDuplicateEndpoint(t *testing.T) {
	_, server, _ := twoNodes(t)
	if _, err := server.CreateEndpoint("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := server.CreateEndpoint("dup"); err == nil {
		t.Fatal("want duplicate-endpoint error")
	}
	server.DestroyEndpoint("dup")
	if _, err := server.CreateEndpoint("dup"); err != nil {
		t.Fatalf("after destroy: %v", err)
	}
}

func TestStartpointParse(t *testing.T) {
	sp := Startpoint{Addr: "sim://m1:4000", Endpoint: "ctx/ep"}
	got, err := ParseStartpoint(sp.String())
	if err != nil || got != sp {
		t.Fatalf("%v %v", got, err)
	}
	if _, err := ParseStartpoint("no-bang"); err == nil {
		t.Fatal("want parse error")
	}
}

// Property: startpoint round-trips through its string form whenever the
// endpoint name has no '!' later than any '!' in addr... keep it simple:
// endpoint names without '!' always round-trip.
func TestQuickStartpoint(t *testing.T) {
	f := func(addr, ep string) bool {
		if bytes.ContainsRune([]byte(ep), '!') {
			return true
		}
		sp := Startpoint{Addr: addr, Endpoint: ep}
		got, err := ParseStartpoint(sp.String())
		return err == nil && got == sp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentRSRs(t *testing.T) {
	client, server, addr := twoNodes(t)
	ep, _ := server.CreateEndpoint("svc")
	ep.Bind(1, func(buf []byte) ([]byte, error) { return buf, nil })
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("msg-%d", i))
			out, err := client.RSR(Startpoint{Addr: addr, Endpoint: "svc"}, 1, body)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(out, body) {
				t.Errorf("cross-talk: %q vs %q", out, body)
			}
		}(i)
	}
	wg.Wait()
}

func TestNodeClose(t *testing.T) {
	client, server, addr := twoNodes(t)
	ep, _ := server.CreateEndpoint("svc")
	ep.Bind(1, func(buf []byte) ([]byte, error) { return buf, nil })
	client.Close()
	if _, err := client.RSR(Startpoint{Addr: addr, Endpoint: "svc"}, 1, nil); err != ErrNodeClosed {
		t.Fatalf("after close: %v", err)
	}
	if err := client.Post(Startpoint{Addr: addr, Endpoint: "svc"}, 1, nil); err != ErrNodeClosed {
		t.Fatalf("post after close: %v", err)
	}
}

func TestMultiMethodAttach(t *testing.T) {
	// One node serving both a shared-memory listener and a simulated
	// network listener — Nexus's multi-method communication.
	shm := transport.NewSHM()
	net1 := netsim.New()
	net1.AddLAN("lan", "c", netsim.ProfileUnshaped)
	net1.MustAddMachine("m1", "lan")
	net1.MustAddMachine("m2", "lan")

	server := NewNode(func(a string) (net.Conn, error) { return nil, errors.New("server does not dial") })
	defer server.Close()
	shmL, _ := shm.Listen("multi")
	simL, err := net1.Listen("m1", 5000)
	if err != nil {
		t.Fatal(err)
	}
	server.Attach(shmL)
	server.Attach(simL)
	ep, _ := server.CreateEndpoint("svc")
	ep.Bind(1, func(buf []byte) ([]byte, error) { return append(buf, '!'), nil })

	// Client A over shm.
	ca := NewNode(func(a string) (net.Conn, error) { return shm.Dial(a) })
	defer ca.Close()
	out, err := ca.RSR(Startpoint{Addr: "multi", Endpoint: "svc"}, 1, []byte("shm"))
	if err != nil || string(out) != "shm!" {
		t.Fatalf("shm path: %q %v", out, err)
	}

	// Client B over the simulated network.
	cb := NewNode(func(a string) (net.Conn, error) {
		return net1.Dial("m2", netsim.Addr{Machine: "m1", Port: 5000})
	})
	defer cb.Close()
	out, err = cb.RSR(Startpoint{Addr: "sim", Endpoint: "svc"}, 1, []byte("sim"))
	if err != nil || string(out) != "sim!" {
		t.Fatalf("sim path: %q %v", out, err)
	}
}

func BenchmarkRSR(b *testing.B) {
	shm := transport.NewSHM()
	dial := func(a string) (net.Conn, error) { return shm.Dial(a) }
	server := NewNode(dial)
	defer server.Close()
	l, _ := shm.Listen("bench")
	server.Attach(l)
	ep, _ := server.CreateEndpoint("svc")
	ep.Bind(1, func(buf []byte) ([]byte, error) { return buf, nil })
	client := NewNode(dial)
	defer client.Close()
	sp := Startpoint{Addr: "bench", Endpoint: "svc"}
	body := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.RSR(sp, 1, body); err != nil {
			b.Fatal(err)
		}
	}
}
