package hpcxx

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/migrate"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

type rankReq struct{ Scale int64 }

func (r *rankReq) MarshalXDR(e *xdr.Encoder) error { e.PutInt64(r.Scale); return nil }
func (r *rankReq) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	r.Scale, err = d.Int64()
	return err
}

type rankReply struct{ Value int64 }

func (r *rankReply) MarshalXDR(e *xdr.Encoder) error { e.PutInt64(r.Value); return nil }
func (r *rankReply) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	r.Value, err = d.Int64()
	return err
}

// world builds n member servants across n contexts, each knowing its
// rank, plus one client context; returns the group and the client.
func world(t *testing.T, n int) (*Group, *core.Context, *core.Runtime) {
	t.Helper()
	net := netsim.New()
	net.AddLAN("lan", "c", netsim.ProfileUnshaped)
	for i := 0; i <= n; i++ {
		net.MustAddMachine(netsim.MachineID(fmt.Sprintf("m%d", i)), "lan")
	}
	rt := core.NewRuntime(net, "p")
	t.Cleanup(rt.Close)

	client, err := rt.NewContext("client", "m0")
	if err != nil {
		t.Fatal(err)
	}
	var gps []*core.GlobalPtr
	for i := 0; i < n; i++ {
		rank := int64(i)
		ctx, err := rt.NewContext(fmt.Sprintf("member%d", i), netsim.MachineID(fmt.Sprintf("m%d", i+1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.BindSim(0); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		posts := 0
		s, err := ctx.Export("Member", nil, map[string]core.Method{
			"rank": core.Handler(func(r *rankReq) (*rankReply, error) {
				return &rankReply{Value: rank * r.Scale}, nil
			}),
			"fail": func(args []byte) ([]byte, error) {
				if rank == 1 {
					return nil, wire.Faultf(wire.FaultInternal, "member 1 exploded")
				}
				return nil, nil
			},
			"note": func(args []byte) ([]byte, error) {
				mu.Lock()
				posts++
				mu.Unlock()
				return nil, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		entry, err := ctx.EntryStream()
		if err != nil {
			t.Fatal(err)
		}
		gps = append(gps, client.NewGlobalPtr(ctx.NewRef(s, entry)))
	}
	return NewGroup(gps...), client, rt
}

func TestGatherRankOrder(t *testing.T) {
	g, _, _ := world(t, 4)
	if g.Size() != 4 {
		t.Fatalf("size %d", g.Size())
	}
	replies, err := Gather[*rankReq, rankReply](g, "rank", &rankReq{Scale: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range replies {
		if r.Value != int64(i*10) {
			t.Fatalf("rank %d replied %d", i, r.Value)
		}
	}
}

func TestReduceSum(t *testing.T) {
	g, _, _ := world(t, 5)
	sum, err := Reduce[*rankReq, rankReply](g, "rank", &rankReq{Scale: 1}, int64(0),
		func(acc int64, r *rankReply) int64 { return acc + r.Value })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 0+1+2+3+4 {
		t.Fatalf("sum %d", sum)
	}
}

func TestInvokePerMemberArgs(t *testing.T) {
	g, _, _ := world(t, 3)
	args := make([][]byte, 3)
	for i := range args {
		req := &rankReq{Scale: int64(100 * (i + 1))}
		b, _ := xdr.Marshal(req)
		args[i] = b
	}
	raw, err := g.Invoke("rank", args)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range raw {
		var r rankReply
		if err := xdr.Unmarshal(b, &r); err != nil {
			t.Fatal(err)
		}
		if r.Value != int64(i*100*(i+1)) {
			t.Fatalf("member %d: %d", i, r.Value)
		}
	}
	// Argument count mismatch is rejected.
	if _, err := g.Invoke("rank", make([][]byte, 2)); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestMemberErrorRank(t *testing.T) {
	g, _, _ := world(t, 3)
	err := g.Broadcast("fail", nil)
	var me *MemberError
	if !errors.As(err, &me) || me.Rank != 1 {
		t.Fatalf("err %v", err)
	}
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultInternal {
		t.Fatalf("unwrap %v", err)
	}
}

func TestGroupPost(t *testing.T) {
	g, _, rt := world(t, 3)
	if err := g.Post("note", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for rt.Metrics().Counter("srv.oneway").Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("posts handled: %d", rt.Metrics().Counter("srv.oneway").Value())
		}
		clock.Sleep(clock.Real{}, time.Millisecond)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	net := netsim.New()
	net.AddLAN("lan", "c", netsim.ProfileUnshaped)
	net.MustAddMachine("srv", "lan")
	net.MustAddMachine("cli", "lan")
	rt := core.NewRuntime(net, "p")
	defer rt.Close()

	host, err := rt.NewContext("host", "srv")
	if err != nil {
		t.Fatal(err)
	}
	if err := host.BindSim(0); err != nil {
		t.Fatal(err)
	}
	const parties = 4
	ref, err := ServeBarrier(host, parties)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	gens := make([]uint64, parties)
	for p := 0; p < parties; p++ {
		ctx, err := rt.NewContext(fmt.Sprintf("party%d", p), "cli")
		if err != nil {
			t.Fatal(err)
		}
		b := NewBarrier(ctx, ref)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				gen, err := b.Await()
				if err != nil {
					t.Errorf("party %d round %d: %v", p, round, err)
					return
				}
				if gen != uint64(round) {
					t.Errorf("party %d saw generation %d in round %d", p, gen, round)
					return
				}
			}
			gens[p] = 3
		}(p)
	}
	wg.Wait()
	for p, g := range gens {
		if g != 3 {
			t.Fatalf("party %d finished %d rounds", p, g)
		}
	}
}

func TestBarrierBlocksUntilFull(t *testing.T) {
	net := netsim.New()
	net.AddLAN("lan", "c", netsim.ProfileUnshaped)
	net.MustAddMachine("srv", "lan")
	net.MustAddMachine("cli", "lan")
	rt := core.NewRuntime(net, "p")
	defer rt.Close()
	host, _ := rt.NewContext("host", "srv")
	if err := host.BindSim(0); err != nil {
		t.Fatal(err)
	}
	ref, err := ServeBarrier(host, 2)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := rt.NewContext("c1", "cli")
	c2, _ := rt.NewContext("c2", "cli")

	released := make(chan struct{})
	go func() {
		NewBarrier(c1, ref).Await()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("barrier released with one party")
	case <-clock.After(clock.Real{}, 50*time.Millisecond):
	}
	if _, err := NewBarrier(c2, ref).Await(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-released:
	case <-clock.After(clock.Real{}, 2*time.Second):
		t.Fatal("first party never released")
	}
}

func TestServeBarrierValidation(t *testing.T) {
	net := netsim.New()
	net.AddLAN("lan", "c", netsim.ProfileUnshaped)
	net.MustAddMachine("srv", "lan")
	rt := core.NewRuntime(net, "p")
	defer rt.Close()
	host, _ := rt.NewContext("host", "srv")
	if _, err := ServeBarrier(host, 0); err == nil {
		t.Fatal("0 parties accepted")
	}
	// No bindings -> error.
	if err := host.BindSim(0); err != nil {
		t.Fatal(err)
	}
	bare, _ := rt.NewContext("bare", "srv")
	if _, err := ServeBarrier(bare, 2); err == nil {
		t.Fatal("barrier on unbound context accepted")
	}
}

func TestBarrierStateSnapshotRestore(t *testing.T) {
	st := newBarrierState(3)
	st.generation = 7
	blob, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st2 := newBarrierState(1)
	if err := st2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if st2.generation != 7 || st2.parties != 3 {
		t.Fatalf("restored %+v", st2)
	}
	if err := st2.Restore([]byte{1}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestScatterGatherPerRank(t *testing.T) {
	g, _, _ := world(t, 3)
	reqs := []*rankReq{{Scale: 10}, {Scale: 100}, {Scale: 1000}}
	replies, err := ScatterGather[*rankReq, rankReply](g, "rank", reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 100, 2000}
	for i, r := range replies {
		if r.Value != want[i] {
			t.Fatalf("rank %d: %d want %d", i, r.Value, want[i])
		}
	}
	if _, err := ScatterGather[*rankReq, rankReply](g, "rank", reqs[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestBarrierMigratesBetweenGenerations(t *testing.T) {
	net := netsim.New()
	net.AddLAN("lan", "c", netsim.ProfileUnshaped)
	net.MustAddMachine("srv1", "lan")
	net.MustAddMachine("srv2", "lan")
	net.MustAddMachine("cli", "lan")
	rt := core.NewRuntime(net, "p")
	rt.RegisterIface(BarrierIface, func() (any, map[string]core.Method) {
		st := newBarrierState(2)
		return st, map[string]core.Method{
			"arrive": core.Handler(func(*core.Empty) (*barrierReply, error) {
				return &barrierReply{Generation: st.await()}, nil
			}),
		}
	})
	defer rt.Close()

	h1, _ := rt.NewContext("h1", "srv1")
	if err := h1.BindSim(0); err != nil {
		t.Fatal(err)
	}
	h2, _ := rt.NewContext("h2", "srv2")
	if err := h2.BindSim(0); err != nil {
		t.Fatal(err)
	}
	ref, err := ServeBarrier(h1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := rt.NewContext("c1", "cli")
	c2, _ := rt.NewContext("c2", "cli")
	b1 := NewBarrier(c1, ref)
	b2 := NewBarrier(c2, ref)

	// Complete generation 0 at h1.
	done := make(chan error, 1)
	go func() { _, err := b1.Await(); done <- err }()
	if _, err := b2.Await(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Migrate between generations; the generation counter survives.
	newRef, err := migrate.MoveLocal(h1, ref, h2)
	if err != nil {
		t.Fatal(err)
	}
	_ = newRef
	go func() { _, err := b1.Await(); done <- err }()
	gen, err := b2.Await()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation %d after migration, want 1", gen)
	}
}
