package bench

import (
	"time"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/migrate"
	"openhpcxx/internal/netsim"
)

// Fig4Step is one stage of the Figure 4 experiment: where the server
// object currently lives, which protocol the client's GP selects there,
// and a bandwidth sample through that protocol.
type Fig4Step struct {
	Step     int
	Context  string
	Machine  netsim.MachineID
	Selected core.ProtoID
	// Detail distinguishes the two glue entries ("quota+encrypt",
	// "quota") when Selected is the glue protocol.
	Detail string
	Sample Measurement
}

// Fig4Config parameterizes the migration scenario.
type Fig4Config struct {
	// SampleInts is the array size measured at each step.
	SampleInts  int
	MinReps     int
	MinDuration time.Duration
	// Profile shapes every LAN (the experiment's qualitative result —
	// which protocol is selected at each step — does not depend on it).
	Profile netsim.LinkProfile
}

// RunFigure4 reproduces the paper's experimental scenario (§5,
// Figure 4): the client runs on machine M0; the server object starts on
// M1 and migrates to M2, M3, and finally M0. The GP's protocol table is
// Figure 4-B's: glue(timeout+security) > glue(timeout) > shared memory >
// Nexus TCP. At each station the client re-runs selection and exchanges
// arrays through whatever protocol is applicable.
//
// Topology (localities chosen so the paper's applicability story holds):
//   - M0 (client), M3: lan0, campus1 — so at M3 the cross-LAN timeout
//     capability no longer applies and selection falls to Nexus TCP.
//   - M1: lan1, campus2 — both capabilities apply.
//   - M2: lan2, campus1 — same campus: security (cross-campus) does not
//     apply, timeout still does.
func RunFigure4(cfg Fig4Config) ([]Fig4Step, error) {
	if cfg.SampleInts == 0 {
		cfg.SampleInts = 16 * 1024
	}
	if cfg.MinReps == 0 {
		cfg.MinReps = 3
	}
	if cfg.MinDuration == 0 {
		cfg.MinDuration = 100 * time.Millisecond
	}
	profile := cfg.Profile
	if profile.Name == "" {
		profile = netsim.ProfileATM155
	}

	n := netsim.New()
	n.AddLAN("lan0", "campus1", profile)
	n.AddLAN("lan1", "campus2", profile)
	n.AddLAN("lan2", "campus1", profile)
	n.CampusLink = profile
	n.WANLink = profile
	n.MustAddMachine("M0", "lan0")
	n.MustAddMachine("M1", "lan1")
	n.MustAddMachine("M2", "lan2")
	n.MustAddMachine("M3", "lan0")

	rt := newRuntime(n, "fig4")
	defer rt.Close()

	client, err := rt.NewContext("client", "M0")
	if err != nil {
		return nil, err
	}
	ctx1, err := serverContext(rt, "S1", "M1")
	if err != nil {
		return nil, err
	}
	ctx2, err := serverContext(rt, "S2", "M2")
	if err != nil {
		return nil, err
	}
	ctx3, err := serverContext(rt, "S3", "M3")
	if err != nil {
		return nil, err
	}
	ctx0, err := serverContext(rt, "S4", "M0")
	if err != nil {
		return nil, err
	}

	// The server object starts on M1 with Figure 4-B's protocol table.
	servant, err := exportExchange(ctx1)
	if err != nil {
		return nil, err
	}
	streamE, err := ctx1.EntryStream()
	if err != nil {
		return nil, err
	}
	shmE, err := ctx1.EntrySHM()
	if err != nil {
		return nil, err
	}
	nexusE, err := ctx1.EntryNexus()
	if err != nil {
		return nil, err
	}
	glueTS, err := capability.GlueEntry(ctx1, "fig4-ts", streamE,
		capability.NewScopedQuota(0, time.Time{}, capability.ScopeCrossLAN),
		capability.NewRandomEncrypt(capability.ScopeCrossCampus))
	if err != nil {
		return nil, err
	}
	glueT, err := capability.GlueEntry(ctx1, "fig4-t", streamE,
		capability.NewScopedQuota(0, time.Time{}, capability.ScopeCrossLAN))
	if err != nil {
		return nil, err
	}
	ref := ctx1.NewRef(servant, glueTS, glueT, shmE, nexusE)

	gp := client.NewGlobalPtr(ref)
	hops := []*core.Context{ctx1, ctx2, ctx3, ctx0}
	// Figure 4-B table indexes; preserved across migrations because
	// ReanchorTable keeps order and every hop supports every protocol.
	entryDetail := []string{"quota+encrypt", "quota", "", ""}

	var steps []Fig4Step
	cur := ref
	curCtx := ctx1
	for i, hop := range hops {
		if hop != curCtx {
			cur, err = migrate.MoveLocal(curCtx, cur, hop)
			if err != nil {
				return nil, errs.Wrapf(errs.CodeOf(err), err, "bench: migrating to %s", hop.Name())
			}
			curCtx = hop
		}
		// One exchange first: if the GP still holds the pre-migration
		// reference, this chases the tombstone so selection reflects
		// the object's new locality.
		if _, err := MeasureExchange(gp, 1, 1, 0); err != nil {
			return nil, errs.Wrapf(errs.CodeOf(err), err, "bench: step %d warm-up", i)
		}
		m, err := MeasureExchange(gp, cfg.SampleInts, cfg.MinReps, cfg.MinDuration)
		if err != nil {
			return nil, errs.Wrapf(errs.CodeOf(err), err, "bench: step %d measurement", i)
		}
		idx, selected, err := gp.SelectedEntry()
		if err != nil {
			return nil, err
		}
		steps = append(steps, Fig4Step{
			Step:     1 + 2*i, // the paper numbers request phases 1,3,5,7
			Context:  hop.Name(),
			Machine:  hop.Locality().Machine,
			Selected: selected,
			Detail:   entryDetail[idx],
			Sample:   m,
		})
	}
	return steps, nil
}

// Fig4Expected lists the protocol the paper's scenario selects at each
// station, in order.
func Fig4Expected() []core.ProtoID {
	return []core.ProtoID{core.ProtoGlue, core.ProtoGlue, core.ProtoNexus, core.ProtoSHM}
}
