// Command ohpc-top is a polling terminal viewer for the introspection
// plane: point it at a runtime's -introspect address and it renders a
// live table of per-protocol call/byte rates, error ratios, latency
// percentile movement, endpoint breaker states, and runtime gauges —
// the flight recorder's /varz windows plus /statusz, refreshed in
// place like top(1).
//
//	ohpc-demo -introspect=127.0.0.1:8090 -linger=30s &
//	ohpc-top -addr=127.0.0.1:8090
//
// During the Figure R1 fault schedule (ohpc-bench -fig=r1
// -introspect=...), the rate table shows traffic shifting from the
// primary's protocol entry to the backup's as the breaker trips, and
// back after probe-driven re-promotion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/introspect"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "introspection-plane address (host:port)")
	interval := flag.Duration("interval", time.Second, "refresh period")
	frames := flag.Int("frames", 0, "exit after this many refreshes (0 = run until interrupted)")
	window := flag.String("window", "1s", "flight-recorder window to display: 1s, 10s, or 60s")
	once := flag.Bool("once", false, "render one frame and exit (same as -frames=1)")
	flag.Parse()
	if *once {
		*frames = 1
	}

	base := "http://" + *addr
	clk := clock.Real{}
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			// Pacing goes through the clock package (nosleep-clean).
			clock.Sleep(clk, *interval)
		}
		frame, err := render(base, *window)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ohpc-top: %v\n", err)
			os.Exit(1)
		}
		if *frames != 1 {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Print(frame)
	}
}

// fetchJSON GETs base+path and decodes the JSON body into v.
func fetchJSON(base, path string, v any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return errs.Newf(errs.Unavailable, "GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// render builds one full frame from /varz and /statusz.
func render(base, window string) (string, error) {
	var varz introspect.Varz
	if err := fetchJSON(base, "/varz", &varz); err != nil {
		return "", err
	}
	var status core.RuntimeStatus
	if err := fetchJSON(base, "/statusz", &status); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "ohpc-top  %s  process=%s  failover=%v  futures=%d  samples=%d\n",
		varz.Now.Format("15:04:05.000"), status.Process, status.Failover,
		status.OutstandingFutures, varz.Samples)

	w, ok := varz.Windows[window]
	if !ok {
		fmt.Fprintf(&b, "\n(window %q not available yet — %d samples recorded)\n", window, varz.Samples)
	} else {
		renderRates(&b, window, w)
		renderMeters(&b, w)
	}
	renderEndpoints(&b, status)
	renderContexts(&b, status)
	return b.String(), nil
}

// protoRow aggregates one rpc.<proto>.* family over a window.
type protoRow struct {
	proto     string
	calls     float64 // calls/s
	reqBps    float64 // request payload bytes/s
	respBps   float64
	errRate   float64 // (faults+transport errors)/s
	p50, p99  int64   // current latency quantiles (µs)
	p99Delta  int64   // movement over the window
	countRate float64 // latency observations/s
}

func renderRates(b *strings.Builder, window string, w introspect.Window) {
	rows := map[string]*protoRow{}
	row := func(proto string) *protoRow {
		r, ok := rows[proto]
		if !ok {
			r = &protoRow{proto: proto}
			rows[proto] = r
		}
		return r
	}
	for name, rate := range w.Rates {
		rest, ok := strings.CutPrefix(name, "rpc.")
		if !ok {
			continue
		}
		proto, field, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		switch field {
		case "calls":
			row(proto).calls = rate
		case "req_bytes":
			row(proto).reqBps = rate
		case "resp_bytes":
			row(proto).respBps = rate
		case "faults", "transport_errors":
			row(proto).errRate += rate
		}
	}
	for name, h := range w.Histograms {
		rest, ok := strings.CutPrefix(name, "rpc.")
		if !ok {
			continue
		}
		proto, field, ok := strings.Cut(rest, ".")
		if !ok || field != "latency_us" {
			continue
		}
		r := row(proto)
		r.p50, r.p99, r.p99Delta, r.countRate = h.P50, h.P99, h.P99Delta, h.CountRate
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(b, "\nper-protocol rates (last %s window, %.1fs actual, error ratio %.1f%%)\n",
		window, w.Seconds, w.ErrorRatio*100)
	fmt.Fprintf(b, "  %-12s %10s %12s %12s %8s %9s %9s %9s\n",
		"PROTO", "CALLS/s", "REQ B/s", "RESP B/s", "ERR/s", "P50 µs", "P99 µs", "ΔP99")
	for _, n := range names {
		r := rows[n]
		fmt.Fprintf(b, "  %-12s %10.1f %12.0f %12.0f %8.1f %9d %9d %+9d\n",
			r.proto, r.calls, r.reqBps, r.respBps, r.errRate, r.p50, r.p99, r.p99Delta)
	}
	if len(names) == 0 {
		fmt.Fprint(b, "  (no rpc traffic in window)\n")
	}

	// Runtime gauges, compact.
	gnames := make([]string, 0, len(w.Gauges))
	for n := range w.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	if len(gnames) > 0 {
		fmt.Fprint(b, "\ngauges: ")
		for i, n := range gnames {
			if i > 0 {
				fmt.Fprint(b, "  ")
			}
			fmt.Fprintf(b, "%s=%d", n, w.Gauges[n])
		}
		fmt.Fprint(b, "\n")
	}
}

// meterRow pairs the two per-endpoint meters — rpc.endpoint.latency_us
// (EWMA level, µs) and rpc.endpoint.bytes_ps (EWMA rate, bytes/s) —
// keyed by their shared proto/endpoint label set.
type meterRow struct {
	labels    string
	latencyUS float64
	calls     uint64
	bytesPS   float64
}

func renderMeters(b *strings.Builder, w introspect.Window) {
	if len(w.Meters) == 0 {
		return
	}
	rows := map[string]*meterRow{}
	for key, m := range w.Meters {
		name, labels, ok := strings.Cut(key, "{")
		if !ok {
			continue
		}
		labels = strings.TrimSuffix(labels, "}")
		r, seen := rows[labels]
		if !seen {
			r = &meterRow{labels: labels}
			rows[labels] = r
		}
		switch name {
		case "rpc.endpoint.latency_us":
			r.latencyUS, r.calls = m.Level, m.Count
		case "rpc.endpoint.bytes_ps":
			r.bytesPS = m.Rate
		}
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Fprint(b, "\nper-endpoint meters (EWMA — adaptivity scoring input)\n")
	fmt.Fprintf(b, "  %-44s %12s %10s %12s\n", "ENDPOINT", "LATENCY µs", "CALLS", "BYTES/s")
	for _, k := range keys {
		r := rows[k]
		fmt.Fprintf(b, "  %-44s %12.1f %10d %12.0f\n",
			printableKey(r.labels, 44), r.latencyUS, r.calls, r.bytesPS)
	}
}

func renderEndpoints(b *strings.Builder, status core.RuntimeStatus) {
	if len(status.Endpoints) == 0 {
		return
	}
	fmt.Fprint(b, "\nendpoints (circuit breakers)\n")
	fmt.Fprintf(b, "  %-36s %-10s %6s  %s\n", "ENDPOINT", "STATE", "FAILS", "SINCE")
	for _, ep := range status.Endpoints {
		fmt.Fprintf(b, "  %-36s %-10s %6d  %s\n",
			printableKey(ep.Key, 36), ep.State, ep.ConsecutiveFailures, ep.LastTransition.Format("15:04:05.000"))
	}
}

// printableKey makes an endpoint key terminal-safe: glue entries embed
// raw protocol data in their health key, so control bytes become '.'
// and overlong keys are elided in the middle.
func printableKey(key string, max int) string {
	clean := strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return '.'
		}
		return r
	}, key)
	if len(clean) <= max || max < 8 {
		return clean
	}
	half := (max - 1) / 2
	return clean[:half] + "…" + clean[len(clean)-(max-1-half):]
}

func renderContexts(b *strings.Builder, status core.RuntimeStatus) {
	for _, c := range status.Contexts {
		drain := ""
		if c.Draining {
			drain = "  DRAINING"
		}
		fmt.Fprintf(b, "\ncontext %s @ %s  muxes=%d  objects=%d%s\n",
			c.Name, c.Machine, c.Muxes, len(c.Objects), drain)
		for _, gp := range c.GPs {
			sel := "unbound"
			if gp.Bound {
				sel = fmt.Sprintf("table[%d] %s", gp.SelectedEntry, gp.SelectedProto)
			}
			fmt.Fprintf(b, "  gp %s -> %s\n", gp.Object, sel)
			for _, e := range gp.Entries {
				mark := " "
				if e.Selected {
					mark = "*"
				}
				fmt.Fprintf(b, "   %s [%d] %-28s %s\n", mark, e.Index, printableKey(e.Endpoint, 28), e.Health)
			}
			if gp.Batching != nil {
				fmt.Fprintf(b, "     batching: queued=%d (%dB) watermarks msgs=%d bytes=%d delay=%dµs\n",
					gp.Batching.Queued, gp.Batching.QueuedBytes,
					gp.Batching.MaxMessages, gp.Batching.MaxBytes, gp.Batching.MaxDelayUS)
			}
		}
	}
}
