package capability

import (
	"sync"
	"sync/atomic"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
)

// KindTrace names the metering capability: it observes every frame that
// flows through its glue object and accumulates counters, without
// touching the body. The experiments use it to verify request paths
// (Figures 1 and 2) and to account for capability overhead.
const KindTrace = "trace"

// Trace counts frames and bytes in each direction.
//
// Counters are per-instance: every frame that flows through the glue
// holding this value lands in this value's counters. Installing one
// Trace on two glue entries would therefore merge both entries' traffic
// into a single indistinguishable meter — and, because glue entries
// serialize their capabilities and rebuild independent copies on each
// side, the caller's original would meter nothing at all. Trace
// implements Exclusive so GlueEntry refuses the second installation
// with a defensive error; build one NewTrace per entry.
type Trace struct {
	requests  atomic.Uint64
	replies   atomic.Uint64
	reqBytes  atomic.Uint64
	repBytes  atomic.Uint64
	processed atomic.Uint64 // Process calls (sending side)
	reversed  atomic.Uint64 // Unprocess calls (receiving side)

	mu    sync.Mutex
	owner string // glue tag this value was granted to ("" = ungranted)
}

// NewTrace builds a metering capability.
func NewTrace() *Trace { return &Trace{} }

// Kind implements Capability.
func (*Trace) Kind() string { return KindTrace }

// Applicable implements Capability.
func (*Trace) Applicable(client, server netsim.Locality) bool { return true }

// Config implements Capability. Counters are per-instance state, not
// configuration, so the config is empty.
func (*Trace) Config() ([]byte, error) { return nil, nil }

// Grant implements Exclusive: the first installation claims the value,
// the second is refused so two glue entries can never share one meter.
func (t *Trace) Grant(owner string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.owner != "" {
		return errs.Newf(errs.Conflict,
			"capability: trace already granted to glue %q; counters are per-instance, build a fresh NewTrace for %q",
			t.owner, owner)
	}
	t.owner = owner
	return nil
}

// Process counts an outgoing frame.
func (t *Trace) Process(f *Frame, body []byte) ([]byte, []byte, error) {
	t.processed.Add(1)
	t.count(f, body)
	return body, nil, nil
}

// Unprocess counts an incoming frame.
func (t *Trace) Unprocess(f *Frame, envelope, body []byte) ([]byte, error) {
	t.reversed.Add(1)
	t.count(f, body)
	return body, nil
}

func (t *Trace) count(f *Frame, body []byte) {
	if f.Dir == Request {
		t.requests.Add(1)
		t.reqBytes.Add(uint64(len(body)))
	} else {
		t.replies.Add(1)
		t.repBytes.Add(uint64(len(body)))
	}
}

// TraceStats is a snapshot of a Trace's counters.
type TraceStats struct {
	Requests, Replies   uint64
	ReqBytes, RepBytes  uint64
	Processed, Reversed uint64
}

// Stats snapshots the counters.
func (t *Trace) Stats() TraceStats {
	return TraceStats{
		Requests:  t.requests.Load(),
		Replies:   t.replies.Load(),
		ReqBytes:  t.reqBytes.Load(),
		RepBytes:  t.repBytes.Load(),
		Processed: t.processed.Load(),
		Reversed:  t.reversed.Load(),
	}
}

func init() {
	RegisterKind(KindTrace, func([]byte) (Capability, error) { return NewTrace(), nil })
}
