// Asynchronous invocation: GlobalPtr.InvokeAsync returns a future while
// the request is pipelined on the wire. The first attempt is issued in
// the caller's goroutine through PipelinedProtocol.Begin when the bound
// protocol supports it, so a loop of InvokeAsync calls genuinely keeps
// many requests in flight per connection; the adaptation machinery
// (migration chase, protocol re-selection, retry backoff) runs on the
// completion goroutine and is shared verbatim with the synchronous path
// via prepare/settle.
package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/future"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/wire"
)

// InvokeAsync calls a method on the remote object without waiting for
// the reply. It returns a future that resolves with the reply body or
// error; the same transparent adaptation as Invoke (FaultMoved chase,
// FaultNotApplicable re-selection, transport-error invalidation with
// backoff) happens on the completion path before the future resolves.
//
// Admission is bounded by the per-GP in-flight limiter (default
// DefaultMaxInFlight, steerable with SetMaxInFlight): when the limit is
// reached, InvokeAsync blocks the caller until a slot frees — natural
// backpressure rather than unbounded queueing. Canceling the returned
// future releases its slot immediately; the request already on the wire
// runs to completion on the server and its reply is discarded.
func (g *GlobalPtr) InvokeAsync(method string, args []byte) *future.Future {
	return g.InvokeAsyncCtx(context.Background(), method, args)
}

// InvokeAsyncCtx is InvokeAsync bounded by a context: admission, the
// in-flight wait, and the retry chase all respect cancellation, and the
// deadline travels in the wire header so servers shed the request once
// it expires. When the deadline fires while a reply is overdue, the
// pending exchange is abandoned and the endpoint demoted, exactly as in
// InvokeCtx.
func (g *GlobalPtr) InvokeAsyncCtx(ctx context.Context, method string, args []byte) *future.Future {
	fut := future.New()
	root := g.host.rt.Tracer().StartRoot(obs.KindClient, "invoke")
	if root != nil {
		root.SetRPC(string(g.Object()), method)
		root.SetBytes(len(args))
	}
	fail := func(err error) *future.Future {
		fut.Fail(err)
		root.SetErr(err)
		root.End()
		return fut
	}

	g.mu.Lock()
	sem := g.inflight
	g.mu.Unlock()
	// Admission: backpressure at the in-flight bound, cancellable.
	if ctx.Done() != nil {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return fail(ctx.Err())
		}
	} else {
		sem <- struct{}{}
	}
	ifg := g.host.rt.inflightGauge
	ifg.Inc()
	var relOnce sync.Once
	release := func() {
		relOnce.Do(func() {
			<-sem
			ifg.Dec()
		})
	}
	fut.OnCancel(release)

	sel := root.Child("select")
	p, err := g.prepare(ctx, wire.TRequest, method, args)
	if err != nil {
		release()
		sel.SetErr(err)
		sel.End()
		return fail(err)
	}
	var send *obs.Active
	if root != nil {
		sel.SetProto(string(p.proto.ID()), p.key)
		sel.End()
		stampTrace(g.host.rt.Tracer(), p.req, root)
		// The send span covers issue plus the in-flight wait for the
		// pipelined reply.
		send = root.Child(string(p.proto.ID()))
		send.SetProto(string(p.proto.ID()), p.key)
		send.SetBytes(len(args))
	}
	p.pm.calls.Inc()
	p.pm.reqBytes.Add(uint64(len(args)))
	start := time.Now()

	if pp, ok := p.proto.(PipelinedProtocol); ok {
		pending, berr := pp.Begin(p.req)
		if berr == nil {
			go func() {
				defer release()
				reply, rerr := g.awaitPending(ctx, p, pending)
				elapsed := time.Since(start)
				p.pm.latency.ObserveDurationTraced(elapsed, uint64(root.TraceID()))
				p.em.observe(elapsed, len(args)+replyBytes(reply), g.host.rt.Clock().Now())
				send.SetErr(rerr)
				send.End()
				g.settleAsync(ctx, root, fut, p, reply, rerr, method, args)
			}()
			return fut
		}
		go func() {
			defer release()
			send.SetErr(berr)
			send.End()
			g.settleAsync(ctx, root, fut, p, nil, berr, method, args)
		}()
		return fut
	}

	// Protocol without Begin: run Call in the completion goroutine — the
	// futures surface is preserved, per-connection pipelining is not.
	go func() {
		defer release()
		reply, cerr := p.proto.Call(p.req)
		elapsed := time.Since(start)
		p.pm.latency.ObserveDurationTraced(elapsed, uint64(root.TraceID()))
		p.em.observe(elapsed, len(args)+replyBytes(reply), g.host.rt.Clock().Now())
		send.SetErr(cerr)
		send.End()
		g.settleAsync(ctx, root, fut, p, reply, cerr, method, args)
	}()
	return fut
}

// awaitPending waits for a pipelined reply or the context, whichever
// resolves first; on expiry the exchange is abandoned and the endpoint
// demoted (same policy as callWithCtx on the synchronous path).
func (g *GlobalPtr) awaitPending(ctx context.Context, p prepared, pending Pending) (*wire.Message, error) {
	if ctx.Done() == nil {
		return pending.Reply()
	}
	select {
	case <-pending.Done():
		return pending.Reply()
	case <-ctx.Done():
		if a, ok := pending.(interface{ Abandon() }); ok {
			a.Abandon()
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) && g.host.rt.FailoverEnabled() {
			if ht := g.host.rt.Health(); ht != nil {
				ht.ReportFailure(p.key)
			}
			g.Invalidate()
		}
		return nil, ctx.Err()
	}
}

// settleAsync classifies the first attempt's outcome and, when the
// adaptation machinery asks for a retry, runs the remaining attempts
// synchronously in the completion goroutine before resolving the
// future. A canceled future abandons the chase between attempts.
func (g *GlobalPtr) settleAsync(ctx context.Context, root *obs.Active, fut *future.Future, p prepared, reply *wire.Message, err error, method string, args []byte) {
	fail := func(ferr error) {
		fut.Fail(ferr)
		root.SetErr(ferr)
		root.End()
	}
	if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		fail(ctxAttemptErr(err, nil))
		return
	}
	body, done, backoff, serr := g.settle(p, reply, err)
	if done {
		finishFuture(fut, body, serr)
		root.SetErr(serr)
		root.End()
		return
	}
	// Budget gate, exactly as on the synchronous path: charged retries
	// draw a token, permanent classes and a dry bucket stop the chase.
	if stop, berr := g.retryAdmit(serr, backoff); stop {
		fail(berr)
		return
	}
	lastErr, needBackoff := serr, backoff
	for attempt := 1; attempt < maxInvokeAttempts; attempt++ {
		if _, _, resolved := fut.TryResult(); resolved {
			root.SetCause("canceled")
			root.End()
			return // canceled (or raced): nobody is waiting, stop retrying
		}
		if cerr := ctx.Err(); cerr != nil {
			fail(ctxAttemptErr(cerr, lastErr))
			return
		}
		rs := root.Child("retry")
		rs.SetCause(retryCause(lastErr))
		if needBackoff {
			if cerr := clock.SleepCtx(ctx, g.host.rt.Clock(), retryBackoff(attempt)); cerr != nil {
				rs.End()
				fail(ctxAttemptErr(cerr, lastErr))
				return
			}
		}
		rs.End()
		sel := root.Child("select")
		rp, perr := g.prepare(ctx, wire.TRequest, method, args)
		if perr != nil {
			sel.SetErr(perr)
			sel.End()
			fail(perr)
			return
		}
		var send *obs.Active
		if root != nil {
			sel.SetProto(string(rp.proto.ID()), rp.key)
			sel.End()
			stampTrace(g.host.rt.Tracer(), rp.req, root)
			send = root.Child(string(rp.proto.ID()))
			send.SetProto(string(rp.proto.ID()), rp.key)
			send.SetBytes(len(args))
		}
		rp.pm.calls.Inc()
		rp.pm.reqBytes.Add(uint64(len(args)))
		start := time.Now()
		r, cerr := g.callWithCtx(ctx, rp)
		elapsed := time.Since(start)
		rp.pm.latency.ObserveDurationTraced(elapsed, uint64(root.TraceID()))
		rp.em.observe(elapsed, len(args)+replyBytes(r), g.host.rt.Clock().Now())
		send.SetErr(cerr)
		send.End()
		if cerr != nil && ctx.Err() != nil && errors.Is(cerr, ctx.Err()) {
			fail(ctxAttemptErr(cerr, lastErr))
			return
		}
		body, done, backoff, serr := g.settle(rp, r, cerr)
		if done {
			finishFuture(fut, body, serr)
			root.SetErr(serr)
			root.End()
			return
		}
		if stop, berr := g.retryAdmit(serr, backoff); stop {
			fail(berr)
			return
		}
		lastErr, needBackoff = serr, backoff
	}
	fail(g.giveUp(method, lastErr))
}

func finishFuture(f *future.Future, body []byte, err error) {
	if err != nil {
		f.Fail(err)
		return
	}
	f.Complete(body)
}
