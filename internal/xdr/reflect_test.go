package xdr

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

type inner struct {
	Tag   string
	Count uint32
}

type outer struct {
	Name     string
	ID       int32
	Big      int64
	Ratio    float64
	OK       bool
	Blob     []byte
	Scores   []float64
	Fixed    [3]int32
	Nested   inner
	MaybeOne *inner
	MaybeNil *inner
	Labels   map[string]int32
	hidden   int    // unexported: skipped
	Skipped  string `xdr:"-"`
}

func sampleOuter() *outer {
	return &outer{
		Name:     "widget",
		ID:       -7,
		Big:      1 << 40,
		Ratio:    3.5,
		OK:       true,
		Blob:     []byte{1, 2, 3},
		Scores:   []float64{0.5, -1.25},
		Fixed:    [3]int32{9, 8, 7},
		Nested:   inner{Tag: "in", Count: 4},
		MaybeOne: &inner{Tag: "opt", Count: 1},
		Labels:   map[string]int32{"b": 2, "a": 1},
		hidden:   99,
		Skipped:  "never",
	}
}

func TestReflectRoundTrip(t *testing.T) {
	in := sampleOuter()
	b, err := MarshalAny(in)
	if err != nil {
		t.Fatal(err)
	}
	var out outer
	if err := UnmarshalAny(b, &out); err != nil {
		t.Fatal(err)
	}
	// hidden and Skipped must not travel.
	if out.hidden != 0 || out.Skipped != "" {
		t.Fatalf("excluded fields decoded: %+v", out)
	}
	out.hidden = in.hidden
	out.Skipped = in.Skipped
	if !reflect.DeepEqual(&out, in) {
		t.Fatalf("got %+v want %+v", out, *in)
	}
}

func TestReflectDeterministicMaps(t *testing.T) {
	v := map[string]int32{"z": 1, "a": 2, "m": 3}
	b1, err := MarshalAny(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b2, err := MarshalAny(map[string]int32{"m": 3, "z": 1, "a": 2})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("map encoding not deterministic")
		}
	}
}

func TestReflectNilPointerOptional(t *testing.T) {
	var p *inner
	b, err := MarshalAny(struct{ P *inner }{p})
	if err != nil {
		t.Fatal(err)
	}
	var out struct{ P *inner }
	if err := UnmarshalAny(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.P != nil {
		t.Fatal("nil pointer decoded as present")
	}
}

func TestReflectInteropWithHandwritten(t *testing.T) {
	// A type with MarshalXDR uses its own codec even via reflection.
	p := &pair{A: 5, B: "five"}
	viaReflect, err := MarshalAny(p)
	if err != nil {
		t.Fatal(err)
	}
	viaMethod, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaReflect, viaMethod) {
		t.Fatalf("reflect %x vs method %x", viaReflect, viaMethod)
	}
	var out pair
	if err := UnmarshalAny(viaReflect, &out); err != nil {
		t.Fatal(err)
	}
	if out != *p {
		t.Fatalf("%+v", out)
	}
}

func TestReflectUnsupported(t *testing.T) {
	if _, err := MarshalAny(make(chan int)); err == nil {
		t.Fatal("chan accepted")
	}
	if _, err := MarshalAny(map[int]string{1: "x"}); err == nil {
		t.Fatal("int-keyed map accepted")
	}
	var s string
	if err := UnmarshalAny(nil, s); err == nil {
		t.Fatal("non-pointer accepted")
	}
	var f func()
	if err := UnmarshalAny([]byte{0, 0, 0, 0}, &f); err == nil {
		t.Fatal("func accepted")
	}
}

func TestReflectTrailingRejected(t *testing.T) {
	b, _ := MarshalAny(int32(5))
	var v int32
	if err := UnmarshalAny(append(b, 0, 0, 0, 0), &v); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestReflectScalarWidths(t *testing.T) {
	// int32/uint32 use 4 bytes; other ints use 8.
	b, _ := MarshalAny(int32(1))
	if len(b) != 4 {
		t.Fatalf("int32 encoded in %d bytes", len(b))
	}
	b, _ = MarshalAny(int64(1))
	if len(b) != 8 {
		t.Fatalf("int64 encoded in %d bytes", len(b))
	}
	b, _ = MarshalAny(uint8(1))
	if len(b) != 8 {
		t.Fatalf("uint8 encoded in %d bytes (hyper rule)", len(b))
	}
	// Overflow detection on decode into narrow types.
	big, _ := MarshalAny(int64(1 << 40))
	var small int8
	if err := UnmarshalAny(big, &small); err == nil {
		t.Fatal("overflow accepted")
	}
}

// Property: generated structs round-trip through the reflective codec.
func TestQuickReflectRoundTrip(t *testing.T) {
	type generated struct {
		A int32
		B uint64
		C string
		D []byte
		E []int32
		F bool
		G float64
		H map[string]string
	}
	f := func(in generated) bool {
		b, err := MarshalAny(&in)
		if err != nil {
			return false
		}
		var out generated
		if err := UnmarshalAny(b, &out); err != nil {
			return false
		}
		// Empty slices/maps may decode as empty-but-non-nil; normalize.
		if len(in.D) == 0 {
			in.D = nil
		}
		if len(out.D) == 0 {
			out.D = nil
		}
		if len(in.E) == 0 {
			in.E = nil
		}
		if len(out.E) == 0 {
			out.E = nil
		}
		if len(in.H) == 0 {
			in.H = nil
		}
		if len(out.H) == 0 {
			out.H = nil
		}
		return reflect.DeepEqual(in, out) ||
			(in.G != in.G && out.G != out.G) // NaN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReflectMarshal(b *testing.B) {
	v := sampleOuter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalAny(v); err != nil {
			b.Fatal(err)
		}
	}
}
