package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CheckedErr is the project's errcheck: errors from the load-bearing
// codec and teardown paths may not be silently discarded. Scope is
// deliberately narrow — three families whose dropped errors have bitten
// before:
//
//   - internal/wire Encode*/Decode*/Read/Write: a dropped codec error
//     means a frame silently never went out (or a fault silently became
//     a success).
//   - transport/net.Conn send & close (Send*, Post, Close): teardown
//     paths that eat errors hide the leaks and double-closes the PR-2
//     pool fixes were about.
//   - capability Process/Unprocess: a capability chain that drops a
//     transform error breaks the "always un-process, always refund"
//     contract the audit trail depends on.
//
// An explicit `_ =` assignment is an acknowledged discard and passes;
// a bare call statement (incl. defer/go) does not. Deliberate bare
// discards take a //lint:ignore checkederr <reason>.
//
// The transport/net.Conn family is scoped to non-test files: `defer
// c.Close()` in a test's teardown is conventional and harmless, and
// flagging fifty of those would bury the real findings. The codec and
// capability families stay active in tests — a test that drops an
// Encode or Process error is asserting nothing.
var CheckedErr = &Analyzer{
	Name: "checkederr",
	Doc:  "wire encode/decode, transport send/close, capability process/unprocess errors must be handled",
	Run:  runCheckedErr,
}

func runCheckedErr(pass *Pass) {
	netConn := lookupNetConn(pass.Pkg())
	for _, file := range pass.Files() {
		testFile := strings.HasSuffix(pass.Fset().Position(file.Pos()).Filename, "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				c, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				call = c
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			default:
				return true
			}
			if why := watchedErrCall(pass.Info(), netConn, call, testFile); why != "" {
				pass.Reportf(call.Pos(), "%s: handle the error (or assign to _ / add a lint:ignore with the reason)", why)
			}
			return true
		})
	}
}

// lookupNetConn finds the net.Conn interface through the package's
// import graph (nil when the package never pulls in net).
func lookupNetConn(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "net" {
			if obj, ok := p.Scope().Lookup("Conn").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}

// watchedErrCall classifies a discarded call; non-empty means flag it.
// testFile disables the transport/net.Conn close family (teardown
// convention) while keeping codec and capability checks live.
func watchedErrCall(info *types.Info, netConn *types.Interface, call *ast.CallExpr, testFile bool) string {
	f := calleeFunc(info, call)
	if f == nil || !returnsError(f) {
		return ""
	}
	name := f.Name()
	pkgPath := funcPkgPath(f)
	sig, _ := f.Type().(*types.Signature)
	recv := sig.Recv()

	// Family 1: wire codec entry points.
	if recv == nil && pathHasSuffix(pkgPath, "internal/wire") &&
		(strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Decode") || name == "Read" || name == "Write") {
		return "unchecked error from wire." + name
	}

	if recv == nil {
		return ""
	}

	// Family 2: transport send/close — methods on transport/nexus types,
	// plus Close on anything satisfying net.Conn. Off in test files.
	if !testFile {
		if pathHasSuffix(pkgPath, "internal/transport") || pathHasSuffix(pkgPath, "transport/nexus") {
			if name == "Close" || name == "Post" || strings.HasPrefix(name, "Send") {
				return "unchecked error from transport " + recvString(recv) + "." + name
			}
		}
		if name == "Close" && netConn != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && types.Implements(tv.Type, netConn) {
					return "unchecked error from net.Conn Close on " + tv.Type.String()
				}
			}
		}
	}

	// Family 3: capability transforms.
	if pathHasSuffix(pkgPath, "internal/capability") && (name == "Process" || name == "Unprocess") {
		return "unchecked error from capability " + recvString(recv) + "." + name
	}
	return ""
}

// recvString renders a method's receiver type compactly (Mux, Conn, ...).
func recvString(recv *types.Var) string {
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
