// Package migrate implements Open HPC++ object migration: moving a
// server object's state from one context to another while every global
// pointer in the system keeps working and transparently re-runs protocol
// selection against the object's new locality (paper §4.3 and the
// Figure 4 experiment).
//
// A move freezes the servant, snapshots its state (core.Migratable),
// reactivates the implementation at the destination (the runtime's
// interface registry), re-anchors the reference's protocol table to the
// destination's bindings — including re-registering glue capability
// chains — and leaves a forwarding tombstone behind. Stale callers
// receive FaultMoved carrying the new reference and retry transparently.
package migrate

import (
	"sync"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/registry"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// Reanchorer rebuilds a custom protocol's table entry at a destination
// context after migration (returning ok=false when the destination does
// not serve that protocol). Custom protocol packages register one so
// their entries survive object moves; built-ins are handled natively.
type Reanchorer func(dst *core.Context, old core.ProtoEntry) (core.ProtoEntry, bool, error)

var (
	reanchorMu  sync.RWMutex
	reanchorers = make(map[core.ProtoID]Reanchorer)
)

// RegisterReanchor installs a Reanchorer for a custom protocol id.
func RegisterReanchor(id core.ProtoID, fn Reanchorer) {
	reanchorMu.Lock()
	reanchorers[id] = fn
	reanchorMu.Unlock()
}

// ReanchorEntry maps one protocol table entry from the source context's
// bindings to the destination's. The bool result reports whether the
// destination supports the protocol at all (e.g. a context without a
// Nexus binding drops nexus entries from migrated references).
func ReanchorEntry(dst *core.Context, e core.ProtoEntry) (core.ProtoEntry, bool, error) {
	switch e.ID {
	case core.ProtoSHM:
		ne, err := dst.EntrySHM()
		return ne, err == nil, nil
	case core.ProtoStream:
		ne, err := dst.EntryStream()
		return ne, err == nil, nil
	case core.ProtoNexus:
		ne, err := dst.EntryNexus()
		return ne, err == nil, nil
	case core.ProtoGlue:
		return capability.ReanchorGlueEntry(dst, e, func(base core.ProtoEntry) (core.ProtoEntry, bool) {
			ne, ok, err := ReanchorEntry(dst, base)
			return ne, ok && err == nil
		})
	default:
		reanchorMu.RLock()
		fn, ok := reanchorers[e.ID]
		reanchorMu.RUnlock()
		if ok {
			return fn(dst, e)
		}
		// Unknown protocols cannot be re-anchored; drop them.
		return core.ProtoEntry{}, false, nil
	}
}

// ReanchorTable rebuilds a whole protocol table at the destination,
// preserving the preference order and dropping entries the destination
// cannot serve.
func ReanchorTable(dst *core.Context, old []core.ProtoEntry) ([]core.ProtoEntry, error) {
	out := make([]core.ProtoEntry, 0, len(old))
	for _, e := range old {
		ne, ok, err := ReanchorEntry(dst, e)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ne)
		}
	}
	if len(out) == 0 {
		return nil, errs.Newf(errs.NotApplicable, "migrate: destination %s supports none of the reference's protocols", dst.Name())
	}
	return out, nil
}

// adopt reactivates an object at dst from its snapshot and exports it
// with a re-anchored protocol table, returning the new reference.
func adopt(dst *core.Context, id core.ObjectID, iface string, epoch uint64, state []byte, oldTable []core.ProtoEntry) (*core.ObjectRef, error) {
	impl, methods, err := dst.Runtime().Activate(iface)
	if err != nil {
		return nil, err
	}
	m, ok := impl.(core.Migratable)
	if !ok {
		return nil, errs.Newf(errs.Config, "migrate: activator for %q built a non-Migratable %T", iface, impl)
	}
	if err := m.Restore(state); err != nil {
		return nil, errs.Wrapf(errs.Internal, err, "migrate: restoring %s", id)
	}
	table, err := ReanchorTable(dst, oldTable)
	if err != nil {
		return nil, err
	}
	s, err := dst.ExportAs(id, iface, impl, methods, epoch)
	if err != nil {
		return nil, err
	}
	return dst.NewRef(s, table...), nil
}

// MoveLocal migrates an object between two contexts of the same runtime
// (one OS process — the common case in the simulated deployments). ref
// is the object's currently published reference, whose protocol table
// shape is preserved at the destination. It returns the new reference.
func MoveLocal(src *core.Context, ref *core.ObjectRef, dst *core.Context) (*core.ObjectRef, error) {
	if src.Runtime() != dst.Runtime() {
		return nil, errs.New(errs.Config, "migrate: MoveLocal across runtimes; use Move with a control reference")
	}
	s, state, err := src.BeginMove(ref.Object)
	if err != nil {
		return nil, err
	}
	newRef, err := adopt(dst, ref.Object, ref.Iface, ref.Epoch+1, state, ref.Protocols)
	if err != nil {
		src.AbortMove(s)
		return nil, err
	}
	src.CommitMove(s, newRef)
	return newRef, nil
}

// --- Remote migration (cross-process) ---------------------------------

// CtlIface is the migration control servant's interface name.
const CtlIface = "openhpcxx.MigrationTarget"

type adoptArgs struct {
	Object core.ObjectID
	Iface  string
	Epoch  uint64
	State  []byte
	Table  []core.ProtoEntry
}

func (a *adoptArgs) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(string(a.Object))
	e.PutString(a.Iface)
	e.PutUint64(a.Epoch)
	e.PutOpaque(a.State)
	e.PutUint32(uint32(len(a.Table)))
	for i := range a.Table {
		if err := a.Table[i].MarshalXDR(e); err != nil {
			return err
		}
	}
	return nil
}

func (a *adoptArgs) UnmarshalXDR(d *xdr.Decoder) error {
	obj, err := d.String()
	if err != nil {
		return err
	}
	a.Object = core.ObjectID(obj)
	if a.Iface, err = d.String(); err != nil {
		return err
	}
	if a.Epoch, err = d.Uint64(); err != nil {
		return err
	}
	if a.State, err = d.Opaque(); err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > 64 {
		return errs.Newf(errs.Codec, "migrate: table of %d entries exceeds limit", n)
	}
	a.Table = make([]core.ProtoEntry, n)
	for i := range a.Table {
		if err := a.Table[i].UnmarshalXDR(d); err != nil {
			return err
		}
	}
	return nil
}

type adoptReply struct{ Ref []byte }

func (r *adoptReply) MarshalXDR(e *xdr.Encoder) error {
	e.PutOpaque(r.Ref)
	return nil
}

func (r *adoptReply) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	r.Ref, err = d.Opaque()
	return err
}

// ctlObjectID returns the well-known control object id for a context.
func ctlObjectID(ctxName string) core.ObjectID {
	return core.ObjectID(ctxName + "/_migrctl")
}

// EnableTarget exports the migration control servant on ctx so remote
// runtimes can migrate objects into it, and returns a reference to hand
// to sources (typically published through the registry).
func EnableTarget(ctx *core.Context) (*core.ObjectRef, error) {
	methods := map[string]core.Method{
		"adopt": core.Handler(func(a *adoptArgs) (*adoptReply, error) {
			ref, err := adopt(ctx, a.Object, a.Iface, a.Epoch, a.State, a.Table)
			if err != nil {
				return nil, wire.Faultf(wire.FaultInternal, "adopt %s: %v", a.Object, err)
			}
			blob, err := core.EncodeRef(ref)
			if err != nil {
				return nil, err
			}
			return &adoptReply{Ref: blob}, nil
		}),
	}
	s, err := ctx.ExportAs(ctlObjectID(ctx.Name()), CtlIface, nil, methods, 0)
	if err != nil {
		return nil, err
	}
	var entries []core.ProtoEntry
	if e, err := ctx.EntryStream(); err == nil {
		entries = append(entries, e)
	}
	if e, err := ctx.EntrySHM(); err == nil {
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, errs.Newf(errs.Config, "migrate: context %s has no bindings for a control servant", ctx.Name())
	}
	return ctx.NewRef(s, entries...), nil
}

// Move migrates an object from src to the remote context behind ctlRef
// (obtained from EnableTarget, possibly via the registry). It returns
// the object's new reference.
func Move(src *core.Context, ref *core.ObjectRef, ctlRef *core.ObjectRef) (*core.ObjectRef, error) {
	s, state, err := src.BeginMove(ref.Object)
	if err != nil {
		return nil, err
	}
	gp := src.NewGlobalPtr(ctlRef)
	reply, err := core.Call[*adoptArgs, adoptReply](gp, "adopt", &adoptArgs{
		Object: ref.Object,
		Iface:  ref.Iface,
		Epoch:  ref.Epoch + 1,
		State:  state,
		Table:  ref.Protocols,
	})
	if err != nil {
		src.AbortMove(s)
		return nil, err
	}
	newRef, err := core.DecodeRef(reply.Ref)
	if err != nil {
		src.AbortMove(s)
		return nil, err
	}
	src.CommitMove(s, newRef)
	return newRef, nil
}

// Evacuate drains src and migrates the given objects to dst in one
// sweep — the planned-maintenance counterpart of MoveLocal. The drain
// happens first: src finishes its in-flight requests and rejects late
// arrivals with a retryable FaultUnavailable, so no request races the
// snapshots and none is silently lost; once each move commits, the
// tombstone left behind keeps answering through the drain, and stale
// callers chase FaultMoved to the destination. It returns the new
// references in argument order.
func Evacuate(src, dst *core.Context, refs ...*core.ObjectRef) ([]*core.ObjectRef, error) {
	src.Drain()
	out := make([]*core.ObjectRef, 0, len(refs))
	for _, ref := range refs {
		nr, err := MoveLocal(src, ref, dst)
		if err != nil {
			return out, errs.Wrapf(errs.CodeOf(err), err, "migrate: evacuating %s", ref.Object)
		}
		out = append(out, nr)
	}
	return out, nil
}

// MoveAndPublish migrates (locally) and updates the registry binding in
// one step, the sequence the load balancer runs.
func MoveAndPublish(src *core.Context, ref *core.ObjectRef, dst *core.Context, reg *registry.Client, name string) (*core.ObjectRef, error) {
	newRef, err := MoveLocal(src, ref, dst)
	if err != nil {
		return nil, err
	}
	if reg != nil && name != "" {
		if err := reg.Rebind(name, newRef); err != nil {
			return newRef, errs.Wrap(errs.Internal, err, "migrate: moved but registry update failed")
		}
	}
	return newRef, nil
}
