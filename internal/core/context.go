package core

import (
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/health"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/stats"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/transport/nexus"
	"openhpcxx/internal/wire"
)

// Method is one remotely invocable operation of a servant. Arguments and
// results are XDR-encoded bodies; typed stubs live in call.go.
type Method func(args []byte) ([]byte, error)

// Migratable is implemented by servant implementations whose state can
// move between contexts (paper §4.3: "Open HPC++ provides a facility for
// objects to migrate from one context to another").
type Migratable interface {
	Snapshot() ([]byte, error)
	Restore(state []byte) error
}

// Activator manufactures a fresh implementation of a named interface —
// the receiving side of a migration uses it to rebuild the servant
// before restoring the snapshot.
type Activator func() (impl any, methods map[string]Method)

// GlueServer is the server side of a glue protocol object: it unprocesses
// enveloped request bodies and processes reply bodies. The capability
// package provides the implementation; core only routes to it, keeping
// the ORB free of capability-specific knowledge (Open Implementation).
type GlueServer interface {
	UnwrapRequest(m *wire.Message) ([]byte, error)
	WrapReply(req *wire.Message, body []byte) (*wire.Message, error)
}

// GlueEnvelopeID is the envelope chain's leading entry, whose data names
// the server-side glue instance.
const GlueEnvelopeID = "glue"

// Runtime owns process-wide state: the network, the shared-memory
// fabric, the default protocol pool, and the interface registry used to
// reactivate migrated objects.
type Runtime struct {
	network *netsim.Network
	shm     *transport.SHM
	process string
	clock   clock.Clock
	metrics *stats.Registry
	tracer  *obs.Tracer
	events  *eventLog

	defaultPool *ProtoPool

	// Introspection gauges, cached at construction so hot paths touch
	// atomics, not the registry lock: rpc.inflight counts invocations
	// currently running (sync and async), core.contexts live contexts,
	// core.gps live global pointers.
	inflightGauge *stats.Gauge
	ctxGauge      *stats.Gauge
	gpGauge       *stats.Gauge

	// Per-code error accounting (the taxonomy's whole point for SLOs):
	// rpc.errors{code=...} handles pre-resolved for every known code so
	// the settle path increments an atomic, plus the retry-budget
	// counters. Unknown (forward-compat) codes fall through to the
	// registry on demand.
	errCounters   map[errs.Code]*stats.Counter
	retryAttempts *stats.Counter

	// Per-endpoint EWMA meter cache (see meters.go), keyed by the
	// health-tracker key "proto|addr" and guarded separately from the
	// main runtime lock so prepare() never contends with contexts/gps
	// bookkeeping.
	epMu     sync.RWMutex
	epMeters map[string]*endpointMeters

	mu       sync.RWMutex
	ifaces   map[string]Activator
	contexts map[string]*Context
	htracker *health.Tracker
	failover bool
	retryCfg RetryBudgetConfig
	// sections are subsystem status contributors (RegisterStatusSection).
	sections map[string]func() any
}

// NewRuntime creates a runtime for one OS process attached to a
// simulated network. The default pool is pre-loaded with the built-in
// protocols in the order shm, hpcx-tcp, nexus-tcp.
func NewRuntime(network *netsim.Network, process string) *Runtime {
	metrics := stats.New()
	rt := &Runtime{
		network:       network,
		shm:           transport.NewSHM(),
		process:       process,
		clock:         clock.Real{},
		metrics:       metrics,
		tracer:        obs.NewTracer(nil),
		events:        newEventLog(),
		defaultPool:   NewProtoPool(),
		inflightGauge: metrics.Gauge("rpc.inflight"),
		ctxGauge:      metrics.Gauge("core.contexts"),
		gpGauge:       metrics.Gauge("core.gps"),
		errCounters:   make(map[errs.Code]*stats.Counter),
		retryAttempts: metrics.Counter("rpc.retry.attempts"),
		epMeters:      make(map[string]*endpointMeters),
		ifaces:        make(map[string]Activator),
		contexts:      make(map[string]*Context),
		htracker:      health.NewTracker(health.Options{Metrics: metrics}),
		failover:      true,
		retryCfg:      DefaultRetryBudget,
	}
	for _, c := range errs.KnownCodes() {
		rt.errCounters[c] = metrics.CounterWith("rpc.errors", stats.Labels{"code": c.String()})
	}
	rt.defaultPool.Register(shmFactory{})
	rt.defaultPool.Register(streamFactory{})
	rt.defaultPool.Register(nexusFactory{})
	return rt
}

// SetClock installs a clock (tests use clock.Fake for determinism). The
// tracer follows the runtime clock, so spans recorded under a fake
// clock carry simulated durations.
func (rt *Runtime) SetClock(c clock.Clock) {
	rt.clock = c
	rt.tracer.SetClock(c)
}

// Tracer returns the runtime's invocation tracer. With no recorder
// installed (the default) tracing costs one atomic load per invocation;
// install an obs.Ring (or an obstest.Collector in tests) to capture
// end-to-end spans:
//
//	ring := obs.NewRing(0)
//	rt.Tracer().SetRecorder(ring)
//	... traffic ...
//	ring.WriteJSON(os.Stdout)
func (rt *Runtime) Tracer() *obs.Tracer { return rt.tracer }

// Health returns the runtime's endpoint-health tracker. Global pointers
// report per-endpoint successes and failures into it and consult it
// during protocol selection, so an endpoint that trips its circuit
// breaker is skipped until a background probe proves recovery.
func (rt *Runtime) Health() *health.Tracker {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.htracker
}

// SetHealthOptions replaces the health tracker with one using the given
// options (failure threshold, probe interval, clock). Existing breaker
// state is discarded; call before issuing traffic. The runtime's metrics
// registry is wired in unless the options carry their own.
func (rt *Runtime) SetHealthOptions(opts health.Options) {
	if opts.Metrics == nil {
		opts.Metrics = rt.metrics
	}
	t := health.NewTracker(opts)
	rt.mu.Lock()
	old := rt.htracker
	rt.htracker = t
	rt.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// SetFailover enables or disables endpoint-health failover (on by
// default). With failover off, protocol selection ignores breaker state
// and invocation failures are retried against the same ordered-table
// choice — the baseline mode of the Figure R1 availability experiment.
func (rt *Runtime) SetFailover(on bool) {
	rt.mu.Lock()
	rt.failover = on
	rt.mu.Unlock()
}

// FailoverEnabled reports whether endpoint-health failover is on.
func (rt *Runtime) FailoverEnabled() bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.failover
}

// SetRetryBudget sets the retry-budget configuration GPs are created
// with (DefaultRetryBudget unless changed; Disabled turns budgeting
// off runtime-wide for new GPs — Figure E1's storm baseline). Existing
// GPs keep their buckets; use GlobalPtr.SetRetryBudget to replace one.
func (rt *Runtime) SetRetryBudget(cfg RetryBudgetConfig) {
	rt.mu.Lock()
	rt.retryCfg = cfg
	rt.mu.Unlock()
}

// RetryBudget reports the runtime's GP-creation retry-budget config.
func (rt *Runtime) RetryBudget() RetryBudgetConfig {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.retryCfg
}

// errCounter returns the per-code error counter (rpc.errors{code=...}),
// pre-resolved for every code in the taxonomy; forward-compat codes
// from newer peers resolve through the registry on first use.
func (rt *Runtime) errCounter(c errs.Code) *stats.Counter {
	if ctr, ok := rt.errCounters[c]; ok {
		return ctr
	}
	return rt.metrics.CounterWith("rpc.errors", stats.Labels{"code": c.String()})
}

// exhaustedCounter returns the per-code retry-budget exhaustion counter
// (rpc.retry.budget_exhausted{code=...}): how often a dry bucket
// stopped a retry that a failure with this code asked for.
func (rt *Runtime) exhaustedCounter(c errs.Code) *stats.Counter {
	return rt.metrics.CounterWith("rpc.retry.budget_exhausted", stats.Labels{"code": c.String()})
}

// Clock returns the runtime clock.
func (rt *Runtime) Clock() clock.Clock { return rt.clock }

// Metrics returns the runtime's metrics registry. The ORB accounts for
// per-protocol calls, faults, payload bytes, and round-trip latencies
// under "rpc.<protocol>.*"; server-side dispatch under "srv.*".
func (rt *Runtime) Metrics() *stats.Registry { return rt.metrics }

// MetricsSnapshot exports every runtime metric at a point in time —
// the programmatic face of the registry, for experiment harnesses and
// the cmd front-ends' JSON dumps. Meter rates decay to the runtime
// clock's now, so a fake-clock harness reads deterministic rates.
func (rt *Runtime) MetricsSnapshot() stats.RegistrySnapshot {
	return rt.metrics.SnapshotAt(rt.clock.Now())
}

// WriteMetrics dumps the runtime's metrics as indented JSON.
func (rt *Runtime) WriteMetrics(w io.Writer) error {
	_, err := rt.metrics.WriteTo(w)
	return err
}

// Process returns the runtime's process tag.
func (rt *Runtime) Process() string { return rt.process }

// Network returns the simulated network, or nil.
func (rt *Runtime) Network() *netsim.Network { return rt.network }

// SHM returns the process-local shared-memory fabric.
func (rt *Runtime) SHM() *transport.SHM { return rt.shm }

// DefaultPool is the pool template cloned into new contexts. Register
// extra factories (e.g. the glue protocol) here before creating
// contexts.
func (rt *Runtime) DefaultPool() *ProtoPool { return rt.defaultPool }

// RegisterIface installs an activator for a named interface.
func (rt *Runtime) RegisterIface(name string, a Activator) {
	rt.mu.Lock()
	rt.ifaces[name] = a
	rt.mu.Unlock()
}

// Activate builds a fresh implementation of a registered interface.
func (rt *Runtime) Activate(name string) (any, map[string]Method, error) {
	rt.mu.RLock()
	a, ok := rt.ifaces[name]
	rt.mu.RUnlock()
	if !ok {
		return nil, nil, errs.Newf(errs.Config, "core: no activator for interface %q", name)
	}
	impl, methods := a()
	return impl, methods, nil
}

// NewContext creates a context (virtual address space) on a machine.
func (rt *Runtime) NewContext(name string, machine netsim.MachineID) (*Context, error) {
	loc, err := rt.network.LocalityOf(machine, rt.process)
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.contexts[name]; dup {
		return nil, errs.Newf(errs.Conflict, "core: context %q exists", name)
	}
	c := &Context{
		rt:          rt,
		name:        name,
		loc:         loc,
		pool:        rt.defaultPool.Clone(),
		servants:    make(map[ObjectID]*Servant),
		tombstones:  make(map[ObjectID]*ObjectRef),
		glues:       make(map[string]GlueServer),
		bindings:    make(map[ProtoID]string),
		gps:         make(map[*GlobalPtr]struct{}),
		srvConns:    rt.metrics.GaugeWith("srv.conns", stats.Labels{"context": name}),
		srvInflight: rt.metrics.GaugeWith("srv.inflight", stats.Labels{"context": name}),
	}
	c.muxes = transport.NewPool(c.dialAddr)
	c.muxes.SetSizeGauge(rt.metrics.GaugeWith("transport.muxes", stats.Labels{"context": name}))
	rt.contexts[name] = c
	rt.ctxGauge.Inc()
	return c, nil
}

// Context returns a context by name.
func (rt *Runtime) Context(name string) (*Context, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	c, ok := rt.contexts[name]
	return c, ok
}

// Close shuts down every context.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	ctxs := make([]*Context, 0, len(rt.contexts))
	for _, c := range rt.contexts {
		ctxs = append(ctxs, c)
	}
	rt.contexts = make(map[string]*Context)
	ht := rt.htracker
	rt.htracker = nil
	rt.mu.Unlock()
	for _, c := range ctxs {
		c.Close()
	}
	if ht != nil {
		ht.Close()
	}
}

// Context is a virtual address space hosting server objects. It owns a
// protocol pool (client side), serving bindings (server side), and the
// dispatcher shared by every protocol class.
type Context struct {
	rt   *Runtime
	name string
	loc  netsim.Locality

	pool  *ProtoPool
	muxes *transport.Pool

	nexusMu   sync.Mutex
	nexusNode *nexus.Node

	mu         sync.RWMutex
	servants   map[ObjectID]*Servant
	tombstones map[ObjectID]*ObjectRef
	glues      map[string]GlueServer
	bindings   map[ProtoID]string
	servers    []io.Closer
	gps        map[*GlobalPtr]struct{} // live GPs, for /statusz
	nextObj    uint64
	closed     bool
	draining   bool

	// srvConns / srvInflight are shared by every transport server this
	// context binds (additive: each server Inc/Decs deltas only).
	srvConns    *stats.Gauge
	srvInflight *stats.Gauge
}

// Name returns the context's name.
func (c *Context) Name() string { return c.name }

// Locality returns where this context runs.
func (c *Context) Locality() netsim.Locality { return c.loc }

// Runtime returns the owning runtime.
func (c *Context) Runtime() *Runtime { return c.rt }

// Pool returns the context's protocol pool; callers may reorder or
// extend it (user control over protocol selection).
func (c *Context) Pool() *ProtoPool { return c.pool }

// dialAddr connects to a fabric address: "shm:name", "sim://machine:port"
// or "tcp://host:port".
func (c *Context) dialAddr(addr string) (net.Conn, error) {
	switch {
	case strings.HasPrefix(addr, "shm:"):
		return c.rt.shm.Dial(strings.TrimPrefix(addr, "shm:"))
	case strings.HasPrefix(addr, "sim://"):
		target, err := parseSimAddr(addr)
		if err != nil {
			return nil, err
		}
		return c.rt.network.Dial(c.loc.Machine, target)
	case strings.HasPrefix(addr, "tcp://"):
		return net.Dial("tcp", strings.TrimPrefix(addr, "tcp://"))
	}
	return nil, errs.Newf(errs.Config, "core: unsupported address %q", addr)
}

func parseSimAddr(addr string) (netsim.Addr, error) {
	rest := strings.TrimPrefix(addr, "sim://")
	host, portStr, ok := strings.Cut(rest, ":")
	if !ok {
		return netsim.Addr{}, errs.Newf(errs.Config, "core: malformed sim address %q", addr)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return netsim.Addr{}, errs.Newf(errs.Config, "core: malformed sim port %q", portStr)
	}
	return netsim.Addr{Machine: netsim.MachineID(host), Port: port}, nil
}

// addServer records a serving binding.
func (c *Context) addServer(id ProtoID, addr string, closer io.Closer) {
	c.mu.Lock()
	c.bindings[id] = addr
	c.servers = append(c.servers, closer)
	c.mu.Unlock()
}

// RegisterBinding records a serving binding installed by a user-written
// protocol class (the paper's custom protocols, §3.2): the address is
// advertised through Binding and the closer is shut down with the
// context. Built-in Bind* methods use the same path internally.
func (c *Context) RegisterBinding(id ProtoID, addr string, closer io.Closer) {
	c.addServer(id, addr, closer)
}

// OnClose ties a resource's lifetime to the context: its Close runs when
// the context closes (after the transport servers). Services that start
// background work on behalf of a context — the registry's lease sweeper,
// the directory's watch fanout — register here so tearing down the
// context never leaks their goroutines. If the context is already
// closed, the closer runs immediately.
func (c *Context) OnClose(cl io.Closer) {
	if cl == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		// Best-effort: the context is gone; the resource just needs to
		// stop.
		_ = cl.Close()
		return
	}
	c.servers = append(c.servers, cl)
	c.mu.Unlock()
}

// Dispatch runs the context's server-side request path on one frame and
// returns the reply frame (nil for non-request frames). It is the hook
// custom protocol classes deliver inbound requests through — the same
// dispatcher behind every built-in protocol class.
func (c *Context) Dispatch(m *wire.Message) *wire.Message {
	return c.dispatch(m)
}

// Binding returns the serving address for a protocol, if bound.
func (c *Context) Binding(id ProtoID) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.bindings[id]
	return a, ok
}

// BindSHM makes the context reachable over the in-process shared-memory
// fabric (protocol "shm").
func (c *Context) BindSHM() error {
	name := "ctx-" + c.name
	l, err := c.rt.shm.Listen(name)
	if err != nil {
		return err
	}
	srv := transport.Serve(l, c.dispatch)
	srv.SetTracer(c.rt.Tracer())
	srv.SetGauges(c.srvConns, c.srvInflight)
	c.addServer(ProtoSHM, "shm:"+name, srv)
	return nil
}

// BindSim makes the context reachable over the simulated network on the
// given port (protocol "hpcx-tcp"). Port 0 allocates one.
func (c *Context) BindSim(port int) error {
	l, err := c.rt.network.Listen(c.loc.Machine, port)
	if err != nil {
		return err
	}
	a := l.Addr().(netsim.Addr)
	srv := transport.Serve(l, c.dispatch)
	srv.SetTracer(c.rt.Tracer())
	srv.SetGauges(c.srvConns, c.srvInflight)
	c.addServer(ProtoStream, fmt.Sprintf("sim://%s:%d", a.Machine, a.Port), srv)
	return nil
}

// BindTCP makes the context reachable over real TCP (protocol
// "hpcx-tcp"); hostport is e.g. "127.0.0.1:0".
func (c *Context) BindTCP(hostport string) error {
	l, err := net.Listen("tcp", hostport)
	if err != nil {
		return err
	}
	srv := transport.Serve(l, c.dispatch)
	srv.SetTracer(c.rt.Tracer())
	srv.SetGauges(c.srvConns, c.srvInflight)
	c.addServer(ProtoStream, "tcp://"+l.Addr().String(), srv)
	return nil
}

// BindNexusSim makes the context reachable through the Nexus messaging
// layer over the simulated network (protocol "nexus-tcp").
func (c *Context) BindNexusSim(port int) error {
	l, err := c.rt.network.Listen(c.loc.Machine, port)
	if err != nil {
		return err
	}
	a := l.Addr().(netsim.Addr)
	// The node's shared "orb" endpoint (bound in c.nexus) serves every
	// attached listener; the node owns the listener's lifetime.
	c.nexus().Attach(l)
	c.addServer(ProtoNexus, fmt.Sprintf("sim://%s:%d", a.Machine, a.Port), closerFunc(func() error { return nil }))
	return nil
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// nexus returns the context's Nexus node, creating it on first use and
// binding the ORB dispatch handler.
func (c *Context) nexus() *nexus.Node {
	c.nexusMu.Lock()
	defer c.nexusMu.Unlock()
	if c.nexusNode == nil {
		c.nexusNode = nexus.NewNode(c.dialAddr)
		ep, err := c.nexusNode.CreateEndpoint(orbEndpoint)
		if err == nil {
			ep.Bind(orbInvokeHandler, c.nexusInvoke)
		}
	}
	return c.nexusNode
}

// Drain puts the context into lame-duck mode ahead of a planned
// shutdown or migration wave: every transport server stops accepting
// connections and finishes its in-flight handlers, and new requests —
// on surviving connections or through any other protocol class — are
// rejected with a retryable FaultUnavailable so callers fail over to
// another endpoint instead of losing work. Drain returns when in-flight
// requests have completed; Close remains the hard stop.
func (c *Context) Drain() {
	c.mu.Lock()
	if c.draining || c.closed {
		c.mu.Unlock()
		return
	}
	c.draining = true
	servers := append([]io.Closer(nil), c.servers...)
	c.mu.Unlock()
	c.rt.recordEvent("drain", "", "context %s draining", c.name)
	for _, s := range servers {
		if d, ok := s.(interface{ Drain() }); ok {
			d.Drain()
		}
	}
}

// Draining reports whether the context is in lame-duck mode.
func (c *Context) Draining() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.draining
}

// Close tears down servers, connections and the Nexus node.
func (c *Context) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	servers := c.servers
	c.servers = nil
	c.mu.Unlock()
	c.rt.ctxGauge.Dec()
	for _, s := range servers {
		s.Close()
	}
	c.muxes.Close()
	c.nexusMu.Lock()
	if c.nexusNode != nil {
		// Best-effort teardown: the node's sockets are going away with
		// the context either way.
		_ = c.nexusNode.Close()
	}
	c.nexusMu.Unlock()
}

// RegisterGlue installs the server side of a glue protocol under a tag.
func (c *Context) RegisterGlue(tag string, g GlueServer) {
	c.mu.Lock()
	c.glues[tag] = g
	c.mu.Unlock()
}

// UnregisterGlue removes a glue registration.
func (c *Context) UnregisterGlue(tag string) {
	c.mu.Lock()
	delete(c.glues, tag)
	c.mu.Unlock()
}

// glue looks up a registered glue server.
func (c *Context) glue(tag string) (GlueServer, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, ok := c.glues[tag]
	return g, ok
}

// Objects lists the context's exported object ids, sorted — an
// operations/debugging view used by balancers and tooling.
func (c *Context) Objects() []ObjectID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ObjectID, 0, len(c.servants))
	for id := range c.servants {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Bindings lists the context's serving bindings as "proto addr" pairs,
// sorted by protocol id.
func (c *Context) Bindings() map[ProtoID]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[ProtoID]string, len(c.bindings))
	for id, addr := range c.bindings {
		out[id] = addr
	}
	return out
}
