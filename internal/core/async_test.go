package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/future"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/wire"
)

func TestInvokeAsyncBasic(t *testing.T) {
	_, rt := testWorld(t)
	server, _ := rt.NewContext("server", "mA")
	client, _ := rt.NewContext("client", "mB")
	_, ref := exportEcho(t, server)
	gp := client.NewGlobalPtr(ref)

	const n = 10
	fs := make([]*future.Future, n)
	for i := range fs {
		fs[i] = gp.InvokeAsync("upper", []byte(fmt.Sprintf("msg-%d", i)))
	}
	if err := future.WaitAll(fs...); err != nil {
		t.Fatal(err)
	}
	for i, f := range fs {
		body, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("MSG-%d", i); string(body) != want {
			t.Fatalf("future %d: got %q want %q", i, body, want)
		}
	}
}

func TestInvokeAsyncFaultResolvesFuture(t *testing.T) {
	_, rt := testWorld(t)
	server, _ := rt.NewContext("server", "mA")
	client, _ := rt.NewContext("client", "mB")
	_, ref := exportEcho(t, server)
	gp := client.NewGlobalPtr(ref)

	err := gp.InvokeAsync("fail", nil).Err()
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultBadRequest {
		t.Fatalf("got %v, want bad-request fault", err)
	}
}

// concurrencyTracker counts how many invocations of "gate" overlap.
type concurrencyTracker struct {
	mu      sync.Mutex
	cur     int
	maxSeen int
	hold    time.Duration
}

func (ct *concurrencyTracker) methods() map[string]Method {
	return map[string]Method{
		"gate": func(args []byte) ([]byte, error) {
			ct.mu.Lock()
			ct.cur++
			if ct.cur > ct.maxSeen {
				ct.maxSeen = ct.cur
			}
			ct.mu.Unlock()
			clock.Sleep(clock.Real{}, ct.hold)
			ct.mu.Lock()
			ct.cur--
			ct.mu.Unlock()
			return args, nil
		},
	}
}

func (ct *concurrencyTracker) max() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.maxSeen
}

// TestInvokeAsyncPipelines shows the point of the subsystem: many
// requests in flight on one connection at once.
func TestInvokeAsyncPipelines(t *testing.T) {
	_, rt := testWorld(t)
	server, _ := rt.NewContext("server", "mA")
	client, _ := rt.NewContext("client", "mB")
	if err := server.BindSim(0); err != nil {
		t.Fatal(err)
	}
	ct := &concurrencyTracker{hold: 20 * time.Millisecond}
	s, err := server.Export("Gate", nil, ct.methods())
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := server.EntryStream()
	gp := client.NewGlobalPtr(server.NewRef(s, entry))

	const n = 8
	fs := make([]*future.Future, n)
	for i := range fs {
		fs[i] = gp.InvokeAsync("gate", []byte{byte(i)})
	}
	if err := future.WaitAll(fs...); err != nil {
		t.Fatal(err)
	}
	if got := ct.max(); got < 2 {
		t.Fatalf("server saw max concurrency %d; requests were not pipelined", got)
	}
}

// TestInvokeAsyncInFlightLimiter pins the per-GP bound: the server may
// never observe more overlapping invocations than SetMaxInFlight allows.
func TestInvokeAsyncInFlightLimiter(t *testing.T) {
	_, rt := testWorld(t)
	server, _ := rt.NewContext("server", "mA")
	client, _ := rt.NewContext("client", "mB")
	if err := server.BindSim(0); err != nil {
		t.Fatal(err)
	}
	ct := &concurrencyTracker{hold: 5 * time.Millisecond}
	s, _ := server.Export("Gate", nil, ct.methods())
	entry, _ := server.EntryStream()
	gp := client.NewGlobalPtr(server.NewRef(s, entry))
	gp.SetMaxInFlight(2)

	const n = 12
	fs := make([]*future.Future, n)
	for i := range fs {
		fs[i] = gp.InvokeAsync("gate", nil) // blocks when 2 are outstanding
	}
	if err := future.WaitAll(fs...); err != nil {
		t.Fatal(err)
	}
	if got := ct.max(); got > 2 {
		t.Fatalf("server saw max concurrency %d, limit was 2", got)
	}
}

func TestInvokeAsyncCancel(t *testing.T) {
	_, rt := testWorld(t)
	server, _ := rt.NewContext("server", "mA")
	client, _ := rt.NewContext("client", "mB")
	if err := server.BindSim(0); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s, _ := server.Export("Slow", nil, map[string]Method{
		"slow": func(args []byte) ([]byte, error) { <-release; return args, nil },
	})
	entry, _ := server.EntryStream()
	gp := client.NewGlobalPtr(server.NewRef(s, entry))
	gp.SetMaxInFlight(1)

	f := gp.InvokeAsync("slow", []byte("x"))
	if !f.Cancel() {
		t.Fatal("Cancel did not resolve the future")
	}
	if _, err := f.Wait(); !errors.Is(err, future.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	// The canceled future released its limiter slot, so another async
	// invocation must be admitted immediately even at MaxInFlight=1.
	admitted := make(chan *future.Future, 1)
	go func() { admitted <- gp.InvokeAsync("echo2", nil) }()
	select {
	case <-admitted:
	case <-clock.After(clock.Real{}, 2*time.Second):
		t.Fatal("limiter slot was not released by Cancel")
	}
	close(release)
}

// TestInvokeAsyncMigrationChase drives the tombstone chase through the
// asynchronous completion path.
func TestInvokeAsyncMigrationChase(t *testing.T) {
	_, rt := testWorld(t)
	ctx1, _ := rt.NewContext("ctx1", "mA")
	ctx2, _ := rt.NewContext("ctx2", "mB")
	client, _ := rt.NewContext("client", "mC")

	s1, ref1 := exportEcho(t, ctx1)
	gp := client.NewGlobalPtr(ref1)
	if err := gp.InvokeAsync("echo", []byte("pre")).Err(); err != nil {
		t.Fatal(err)
	}

	if err := ctx2.BindSim(0); err != nil {
		t.Fatal(err)
	}
	s2, err := ctx2.ExportAs(s1.ID(), s1.Iface(), nil, echoMethods(), s1.Epoch()+1)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := ctx2.EntryStream()
	ctx1.Unexport(s1.ID(), ctx2.NewRef(s2, e2))

	body, err := gp.InvokeAsync("upper", []byte("moved")).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "MOVED" {
		t.Fatalf("got %q", body)
	}
	if got := gp.Ref().Server.Machine; got != "mB" {
		t.Fatalf("gp ref server %s, want mB", got)
	}
}

// TestInvokeAsyncOverNexus exercises the pipelined path of the Nexus
// protocol (BeginRSR + embedded reply decode).
func TestInvokeAsyncOverNexus(t *testing.T) {
	_, rt := testWorld(t)
	server, _ := rt.NewContext("server", "mA")
	client, _ := rt.NewContext("client", "mB")
	if err := server.BindNexusSim(0); err != nil {
		t.Fatal(err)
	}
	s, _ := server.Export("Echo", nil, echoMethods())
	entry, _ := server.EntryNexus()
	gp := client.NewGlobalPtr(server.NewRef(s, entry))

	fs := make([]*future.Future, 6)
	for i := range fs {
		fs[i] = gp.InvokeAsync("upper", []byte(fmt.Sprintf("nx-%d", i)))
	}
	for i, f := range fs {
		body, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("NX-%d", i); string(body) != want {
			t.Fatalf("future %d: got %q", i, body)
		}
	}
}

// TestBatchedInvoke turns on adaptive micro-batching and checks both
// correctness and that TBatch frames actually flowed.
func TestBatchedInvoke(t *testing.T) {
	_, rt := testWorld(t)
	server, _ := rt.NewContext("server", "mA")
	client, _ := rt.NewContext("client", "mB")
	_, ref := exportEcho(t, server)
	gp := client.NewGlobalPtr(ref)
	gp.SetBatchPolicy(&transport.BatchPolicy{MaxMessages: 8, MaxDelay: 2 * time.Millisecond})

	const n = 64
	fs := make([]*future.Future, n)
	for i := range fs {
		fs[i] = gp.InvokeAsync("upper", []byte(fmt.Sprintf("b-%d", i)))
	}
	for i, f := range fs {
		body, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("B-%d", i); string(body) != want {
			t.Fatalf("future %d: got %q want %q", i, body, want)
		}
	}
	if got := rt.Metrics().Counter("srv.batches").Value(); got == 0 {
		t.Fatal("no TBatch frame reached the server")
	}
	if got := rt.Metrics().Counter("srv.batch_msgs").Value(); got == 0 {
		t.Fatal("no batched sub-requests accounted")
	}

	// Turning the policy off must fall back to plain frames and keep
	// working.
	gp.SetBatchPolicy(nil)
	before := rt.Metrics().Counter("srv.batches").Value()
	if body, err := gp.Invoke("echo", []byte("plain")); err != nil || string(body) != "plain" {
		t.Fatalf("after disable: %q %v", body, err)
	}
	if after := rt.Metrics().Counter("srv.batches").Value(); after != before {
		t.Fatal("batching still on after SetBatchPolicy(nil)")
	}
}

// TestBatchedSyncInvoke checks that synchronous Invokes also coalesce
// when issued concurrently under a batching policy.
func TestBatchedSyncInvoke(t *testing.T) {
	_, rt := testWorld(t)
	server, _ := rt.NewContext("server", "mA")
	client, _ := rt.NewContext("client", "mB")
	_, ref := exportEcho(t, server)
	gp := client.NewGlobalPtr(ref)
	gp.SetBatchPolicy(&transport.BatchPolicy{MaxMessages: 4, MaxDelay: 2 * time.Millisecond})

	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := gp.Invoke("echo", []byte{byte(i)})
			if err == nil && (len(body) != 1 || body[0] != byte(i)) {
				err = fmt.Errorf("reply mismatch: %v", body)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestOneWayPostDuringAsync checks Post keeps working while futures are
// outstanding on the same GP.
func TestOneWayPostDuringAsync(t *testing.T) {
	_, rt := testWorld(t)
	server, _ := rt.NewContext("server", "mA")
	client, _ := rt.NewContext("client", "mB")
	if err := server.BindSim(0); err != nil {
		t.Fatal(err)
	}
	var oneways atomic.Int64
	done := make(chan struct{}, 64)
	s, _ := server.Export("Mix", nil, map[string]Method{
		"note": func(args []byte) ([]byte, error) {
			oneways.Add(1)
			done <- struct{}{}
			return nil, nil
		},
		"echo": func(args []byte) ([]byte, error) { return args, nil },
	})
	entry, _ := server.EntryStream()
	gp := client.NewGlobalPtr(server.NewRef(s, entry))

	fs := make([]*future.Future, 8)
	for i := range fs {
		fs[i] = gp.InvokeAsync("echo", []byte{byte(i)})
		if err := gp.Post("note", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := future.WaitAll(fs...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		select {
		case <-done:
		case <-clock.After(clock.Real{}, 2*time.Second):
			t.Fatalf("one-way %d never executed (saw %d)", i, oneways.Load())
		}
	}
}

// TestSharedGlobalPtrStress hammers one GlobalPtr from many goroutines
// while the object ping-pongs between two contexts and a spoiler
// invalidates the protocol binding — the -race regression the async
// completion path must survive.
func TestSharedGlobalPtrStress(t *testing.T) {
	_, rt := testWorld(t)
	ctx1, _ := rt.NewContext("ctx1", "mA")
	ctx2, _ := rt.NewContext("ctx2", "mB")
	client, _ := rt.NewContext("client", "mC")
	if err := ctx1.BindSim(0); err != nil {
		t.Fatal(err)
	}
	if err := ctx2.BindSim(0); err != nil {
		t.Fatal(err)
	}

	s1, err := ctx1.Export("Echo", nil, echoMethods())
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := ctx1.EntryStream()
	gp := client.NewGlobalPtr(ctx1.NewRef(s1, e1))

	const (
		workers  = 8
		perGoro  = 40
		migrates = 6
	)
	stop := make(chan struct{})

	// Migrator: ping-pong the object between ctx1 and ctx2, leaving
	// tombstones each hop.
	var migWG sync.WaitGroup
	migWG.Add(1)
	go func() {
		defer migWG.Done()
		cur, other := ctx1, ctx2
		s := s1
		for i := 0; i < migrates; i++ {
			clock.Sleep(clock.Real{}, 3*time.Millisecond)
			ns, err := other.ExportAs(s.ID(), s.Iface(), nil, echoMethods(), s.Epoch()+1)
			if err != nil {
				t.Errorf("migrate %d: %v", i, err)
				return
			}
			oe, _ := other.EntryStream()
			cur.Unexport(s.ID(), other.NewRef(ns, oe))
			cur, other, s = other, cur, ns
		}
	}()

	// Spoiler: keeps dropping the client binding mid-traffic.
	var spoilWG sync.WaitGroup
	spoilWG.Add(1)
	go func() {
		defer spoilWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				gp.Invalidate()
				clock.Sleep(clock.Real{}, time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, workers*perGoro)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				payload := []byte(fmt.Sprintf("w%d-i%d", w, i))
				var body []byte
				var err error
				if i%2 == 0 {
					body, err = gp.Invoke("echo", payload)
				} else {
					body, err = gp.InvokeAsync("echo", payload).Wait()
				}
				if err != nil {
					// Racing a migration can exhaust the attempt budget;
					// that is an acceptable outcome, corruption is not.
					continue
				}
				if string(body) != string(payload) {
					errCh <- fmt.Errorf("w%d call %d: got %q want %q", w, i, body, payload)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	migWG.Wait()
	close(stop)
	spoilWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The dust settles: the GP must still complete a call wherever the
	// object ended up.
	body, err := gp.Invoke("upper", []byte("final"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "FINAL" {
		t.Fatalf("got %q", body)
	}
}
