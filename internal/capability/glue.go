package capability

import (
	"fmt"
	"strings"
	"sync"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// glueData is the proto-data of a glue entry: a tag naming the
// server-side glue instance, the base protocol entry that does the
// actual communication, and the ordered capability specs.
type glueData struct {
	Tag  string
	Base core.ProtoEntry
	Caps []Spec
}

func (g *glueData) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(g.Tag)
	if err := g.Base.MarshalXDR(e); err != nil {
		return err
	}
	e.PutUint32(uint32(len(g.Caps)))
	for i := range g.Caps {
		if err := g.Caps[i].MarshalXDR(e); err != nil {
			return err
		}
	}
	return nil
}

func (g *glueData) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if g.Tag, err = d.String(); err != nil {
		return err
	}
	if err = g.Base.UnmarshalXDR(d); err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > 32 {
		return errs.Newf(errs.Codec, "capability: %d capabilities exceeds limit", n)
	}
	g.Caps = make([]Spec, n)
	for i := range g.Caps {
		if err := g.Caps[i].UnmarshalXDR(d); err != nil {
			return err
		}
	}
	return nil
}

// GlueEntry builds a glue protocol table entry for a servant hosted by
// ctx: it registers the server side of the glue (which holds its own
// copies of the capabilities, paper Figure 2) under tag and returns the
// entry to embed in object references. base is the real protocol entry
// the glue delegates transport to.
func GlueEntry(ctx *core.Context, tag string, base core.ProtoEntry, caps ...Capability) (core.ProtoEntry, error) {
	// Stateful capabilities (Exclusive) belong to exactly one entry:
	// refusing a double-grant here catches the shared-counter bug at
	// construction time instead of as silently merged statistics.
	if err := grantAll(tag, caps); err != nil {
		return core.ProtoEntry{}, err
	}
	specs, err := Specs(caps)
	if err != nil {
		return core.ProtoEntry{}, err
	}
	data, err := xdr.Marshal(&glueData{Tag: tag, Base: base, Caps: specs})
	if err != nil {
		return core.ProtoEntry{}, err
	}
	// The server's own copies: rebuild from specs so server-side state
	// (e.g. quota counters) is independent of the caller's instances.
	serverCaps, err := Rebuild(specs)
	if err != nil {
		return core.ProtoEntry{}, err
	}
	ctx.RegisterGlue(tag, NewGlueServer(tag, serverCaps, ctx.Runtime().Clock()))
	return core.ProtoEntry{ID: core.ProtoGlue, Data: data}, nil
}

// ReanchorGlueEntry rebuilds a glue entry at a destination context after
// object migration: rebase maps the old base entry to the destination's
// equivalent (reporting false if the destination lacks that protocol),
// and the capability chain is re-registered under its original tag at
// dst so the entry keeps working for every holder of the reference.
// Stateful capabilities (quota counters) restart from their configured
// budget at the destination; see DESIGN.md.
func ReanchorGlueEntry(dst *core.Context, entry core.ProtoEntry, rebase func(core.ProtoEntry) (core.ProtoEntry, bool)) (core.ProtoEntry, bool, error) {
	if entry.ID != core.ProtoGlue {
		return core.ProtoEntry{}, false, errs.Newf(errs.Config, "capability: %q is not a glue entry", entry.ID)
	}
	g := new(glueData)
	if err := xdr.Unmarshal(entry.Data, g); err != nil {
		return core.ProtoEntry{}, false, errs.Wrap(errs.Codec, err, "capability: bad glue proto-data")
	}
	newBase, ok := rebase(g.Base)
	if !ok {
		return core.ProtoEntry{}, false, nil
	}
	serverCaps, err := Rebuild(g.Caps)
	if err != nil {
		return core.ProtoEntry{}, false, err
	}
	dst.RegisterGlue(g.Tag, NewGlueServer(g.Tag, serverCaps, dst.Runtime().Clock()))
	data, err := xdr.Marshal(&glueData{Tag: g.Tag, Base: newBase, Caps: g.Caps})
	if err != nil {
		return core.ProtoEntry{}, false, err
	}
	return core.ProtoEntry{ID: core.ProtoGlue, Data: data}, true, nil
}

// Install registers the glue protocol factory in a pool. Call it on the
// runtime's default pool before creating contexts (every context clone
// then supports glue), or on individual context pools.
func Install(pool *core.ProtoPool) {
	pool.Register(&glueFactory{pool: pool})
}

// glueFactory builds client-side glue protocol objects.
type glueFactory struct {
	// pool resolves the base protocol's factory for applicability checks
	// and instantiation. The glue protocol depends on a real protocol
	// object to do the actual communication (§4.1).
	pool *core.ProtoPool
}

func (f *glueFactory) ID() core.ProtoID { return core.ProtoGlue }

// Applicable is the logical AND of the constituent capabilities'
// applicability and the base protocol's own applicability.
func (f *glueFactory) Applicable(entry core.ProtoEntry, client, server netsim.Locality) bool {
	g := new(glueData)
	if err := xdr.Unmarshal(entry.Data, g); err != nil {
		return false
	}
	base, ok := f.pool.Lookup(g.Base.ID)
	if !ok || !base.Applicable(g.Base, client, server) {
		return false
	}
	caps, err := Rebuild(g.Caps)
	if err != nil {
		return false
	}
	for _, c := range caps {
		if !c.Applicable(client, server) {
			return false
		}
	}
	return true
}

func (f *glueFactory) New(entry core.ProtoEntry, ref *core.ObjectRef, host *core.Context) (core.Protocol, error) {
	g := new(glueData)
	if err := xdr.Unmarshal(entry.Data, g); err != nil {
		return nil, errs.Wrap(errs.Codec, err, "capability: bad glue proto-data")
	}
	baseFactory, ok := f.pool.Lookup(g.Base.ID)
	if !ok {
		return nil, errs.Newf(errs.Config, "capability: glue base protocol %q not in pool", g.Base.ID)
	}
	base, err := baseFactory.New(g.Base, ref, host)
	if err != nil {
		return nil, err
	}
	caps, err := Rebuild(g.Caps)
	if err != nil {
		base.Close()
		return nil, err
	}
	return &Glue{tag: g.Tag, base: base, caps: caps, clock: host.Runtime().Clock(), tracer: host.Runtime().Tracer()}, nil
}

// Glue is the client-side glue protocol object: it lets each registered
// capability process a request before handing it to the base protocol,
// and un-processes replies in reverse order.
type Glue struct {
	tag    string
	base   core.Protocol
	caps   []Capability
	clock  clock.Clock
	tracer *obs.Tracer // nil (untraced) for hand-assembled glues
}

// NewGlue assembles a glue protocol object directly (tests and custom
// protocol stacks; normal clients get one from the factory).
func NewGlue(tag string, base core.Protocol, clk clock.Clock, caps ...Capability) *Glue {
	return &Glue{tag: tag, base: base, caps: caps, clock: clk}
}

// ID implements core.Protocol.
func (g *Glue) ID() core.ProtoID { return core.ProtoGlue }

// Capabilities returns the capability chain (shared, do not mutate).
func (g *Glue) Capabilities() []Capability { return g.caps }

// wrapRequest runs the request through the capability chain and returns
// the enveloped frame to hand to the base protocol. Shared by Call,
// Begin, and Post, so the pipelined and one-way paths are metered and
// protected identically to the synchronous one.
func (g *Glue) wrapRequest(m *wire.Message) (*wire.Message, error) {
	// Continue the invocation's trace (the GP stamped its IDs into the
	// header): one "glue.process" span covers the whole capability chain
	// and records which kinds processed the body.
	sp := g.tracer.StartChild(obs.TraceID(m.TraceID), obs.SpanID(m.SpanID), obs.KindClient, "glue.process")
	sp.SetHint(m.KeepHint())
	frame := &Frame{Object: m.Object, Method: m.Method, Dir: Request, Clock: g.clock}
	body := m.Body
	envs := make([]wire.Envelope, 0, len(g.caps)+1)
	envs = append(envs, wire.Envelope{ID: core.GlueEnvelopeID, Data: []byte(g.tag)})
	for i, c := range g.caps {
		nb, env, err := c.Process(frame, body)
		if err != nil {
			// Capability i rejected the request: the frame never leaves
			// the client, so hand back the charges capabilities 0..i-1
			// already took — the server-side authorities were never
			// touched and the mirrors must not drift.
			g.refundPrefix(i, m.Object, m.Method)
			err = errs.Wrapf(errs.Capability, err, "capability %s", c.Kind())
			sp.SetErr(err)
			sp.End()
			return nil, err
		}
		body = nb
		envs = append(envs, wire.Envelope{ID: c.Kind(), Data: env})
	}
	out := *m
	out.Body = body
	out.Envelopes = envs
	if sp != nil {
		sp.SetCaps(envCaps(envs))
		sp.SetBytes(len(body))
		sp.End()
	}
	return &out, nil
}

// envCaps joins the envelope chain's capability kinds (everything after
// the leading glue entry) for span records.
func envCaps(envs []wire.Envelope) string {
	kinds := make([]string, 0, len(envs))
	for _, e := range envs[1:] {
		kinds = append(kinds, e.ID)
	}
	return strings.Join(kinds, ",")
}

// baseSpan opens a client-side span named after the base protocol,
// covering the send (and, for pipelined glues, the in-flight wait) of
// one enveloped frame. Nil when untraced.
func (g *Glue) baseSpan(out *wire.Message) *obs.Active {
	sp := g.tracer.StartChild(obs.TraceID(out.TraceID), obs.SpanID(out.SpanID), obs.KindClient, string(g.base.ID()))
	sp.SetHint(out.KeepHint())
	sp.SetBytes(len(out.Body))
	return sp
}

// Call implements core.Protocol: process with each capability in order,
// delegate to the base protocol, then un-process the reply in reverse.
func (g *Glue) Call(m *wire.Message) (*wire.Message, error) {
	out, err := g.wrapRequest(m)
	if err != nil {
		return nil, err
	}
	bs := g.baseSpan(out)
	reply, err := g.base.Call(out)
	bs.SetErr(err)
	bs.End()
	if err != nil {
		// The attempt died in transport: the server never charged its
		// authoritative capabilities, so hand the client-mirror charges
		// back before the ORB retries elsewhere.
		g.refundRequest(m.Object, m.Method)
		return nil, err
	}
	if reply.Type != wire.TReply {
		// Faults travel outside the capability envelope; hand them up.
		return reply, nil
	}
	return g.unwrapReply(reply)
}

// gluePending is the completion handle of a pipelined glue invocation:
// the base protocol's pending, with the reply un-processed through the
// capability chain (once) on resolution.
type gluePending struct {
	g      *Glue
	p      core.Pending
	object string
	method string
	span   *obs.Active // base-protocol send span, ended on resolution
	once   sync.Once
	reply  *wire.Message
	err    error
}

func (gp *gluePending) Done() <-chan struct{} { return gp.p.Done() }

// Abandon forwards to the base pending when it supports abandonment, so
// a deadline firing mid-flight releases the underlying exchange.
func (gp *gluePending) Abandon() {
	if a, ok := gp.p.(interface{ Abandon() }); ok {
		a.Abandon()
	}
}

func (gp *gluePending) Reply() (*wire.Message, error) {
	gp.once.Do(func() {
		reply, err := gp.p.Reply()
		gp.span.SetErr(err)
		gp.span.End()
		if err != nil {
			gp.g.refundRequest(gp.object, gp.method)
			gp.err = err
			return
		}
		if reply.Type != wire.TReply {
			gp.reply = reply // faults travel outside the envelope
			return
		}
		gp.reply, gp.err = gp.g.unwrapReply(reply)
	})
	return gp.reply, gp.err
}

// callPending adapts a blocking base.Call to the Pending surface when
// the base protocol cannot pipeline: Begin still returns immediately,
// the call runs in its own goroutine.
type callPending struct {
	done  chan struct{}
	reply *wire.Message
	err   error
}

func (cp *callPending) Done() <-chan struct{} { return cp.done }

func (cp *callPending) Reply() (*wire.Message, error) {
	<-cp.done
	return cp.reply, cp.err
}

// Begin implements core.PipelinedProtocol: capability processing happens
// in the caller's goroutine (so quota/rate accounting observes the issue
// order), the request is pipelined through the base when it supports
// Begin, and the reply is un-processed on the completion path. Batched
// requests therefore traverse the capability chain individually — every
// sub-request in a TBatch carries its own envelope chain.
func (g *Glue) Begin(m *wire.Message) (core.Pending, error) {
	out, err := g.wrapRequest(m)
	if err != nil {
		return nil, err
	}
	if pp, ok := g.base.(core.PipelinedProtocol); ok {
		bs := g.baseSpan(out)
		p, err := pp.Begin(out)
		if err != nil {
			bs.SetErr(err)
			bs.End()
			g.refundRequest(m.Object, m.Method)
			return nil, err
		}
		return &gluePending{g: g, p: p, object: m.Object, method: m.Method, span: bs}, nil
	}
	cp := &callPending{done: make(chan struct{})}
	bs := g.baseSpan(out)
	go func() {
		reply, err := g.base.Call(out)
		bs.SetErr(err)
		bs.End()
		if err != nil {
			g.refundRequest(m.Object, m.Method)
		} else if reply.Type == wire.TReply {
			reply, err = g.unwrapReply(reply)
		}
		cp.reply, cp.err = reply, err
		close(cp.done)
	}()
	return cp, nil
}

// SetBatching implements core.BatchingProtocol by forwarding the policy
// to the base protocol when it listens: coalescing happens beneath the
// capability chain, so each batched sub-request keeps its own envelope
// chain and server-side un-processing is unchanged.
func (g *Glue) SetBatching(p transport.BatchPolicy) {
	if bp, ok := g.base.(core.BatchingProtocol); ok {
		bp.SetBatching(p)
	}
}

func (g *Glue) unwrapReply(reply *wire.Message) (*wire.Message, error) {
	if len(reply.Envelopes) != len(g.caps)+1 {
		return nil, wire.Faultf(wire.FaultCapability,
			"reply envelope chain has %d entries, want %d", len(reply.Envelopes), len(g.caps)+1)
	}
	if reply.Envelopes[0].ID != core.GlueEnvelopeID || string(reply.Envelopes[0].Data) != g.tag {
		return nil, wire.Faultf(wire.FaultCapability, "reply glue tag mismatch")
	}
	frame := &Frame{Object: reply.Object, Method: reply.Method, Dir: Reply, Clock: g.clock}
	body := reply.Body
	for i := len(g.caps) - 1; i >= 0; i-- {
		env := reply.Envelopes[i+1]
		if env.ID != g.caps[i].Kind() {
			return nil, wire.Faultf(wire.FaultCapability,
				"reply envelope %d is %q, want %q", i, env.ID, g.caps[i].Kind())
		}
		nb, err := g.caps[i].Unprocess(frame, env.Data, body)
		if err != nil {
			return nil, errs.Wrapf(errs.Capability, err, "capability %s (reply)", g.caps[i].Kind())
		}
		body = nb
	}
	out := *reply
	out.Body = body
	out.Envelopes = nil
	return &out, nil
}

// Post implements core.OneWayProtocol when the base protocol does: the
// request is processed by every capability (so one-way calls are
// metered, authenticated, and encrypted like two-way ones) and handed
// to the base with no reply expected.
func (g *Glue) Post(m *wire.Message) error {
	ow, ok := g.base.(core.OneWayProtocol)
	if !ok {
		return core.ErrOneWayUnsupported
	}
	out, err := g.wrapRequest(m)
	if err != nil {
		return err
	}
	bs := g.baseSpan(out)
	if err := ow.Post(out); err != nil {
		bs.SetErr(err)
		bs.End()
		g.refundRequest(m.Object, m.Method)
		return err
	}
	bs.End()
	return nil
}

// Close implements core.Protocol.
func (g *Glue) Close() error { return g.base.Close() }

// GlueServer is the server side of a glue protocol (the paper's GC): it
// holds the server's own copies of the capabilities and lets them
// un-process each request in the reverse order of the client-side
// processing, then processes replies on the way out.
type GlueServer struct {
	tag   string
	caps  []Capability
	clock clock.Clock
}

// NewGlueServer builds a server-side glue for a capability chain.
func NewGlueServer(tag string, caps []Capability, clk clock.Clock) *GlueServer {
	return &GlueServer{tag: tag, caps: caps, clock: clk}
}

var _ core.GlueServer = (*GlueServer)(nil)

// Capabilities returns the server-side capability chain.
func (s *GlueServer) Capabilities() []Capability { return s.caps }

// UnwrapRequest implements core.GlueServer.
func (s *GlueServer) UnwrapRequest(m *wire.Message) ([]byte, error) {
	if len(m.Envelopes) != len(s.caps)+1 {
		return nil, wire.Faultf(wire.FaultCapability,
			"request envelope chain has %d entries, want %d", len(m.Envelopes), len(s.caps)+1)
	}
	frame := &Frame{Object: m.Object, Method: m.Method, Dir: Request, Clock: s.clock}
	body := m.Body
	for i := len(s.caps) - 1; i >= 0; i-- {
		env := m.Envelopes[i+1]
		if env.ID != s.caps[i].Kind() {
			return nil, wire.Faultf(wire.FaultCapability,
				"request envelope %d is %q, want %q", i, env.ID, s.caps[i].Kind())
		}
		nb, err := s.caps[i].Unprocess(frame, env.Data, body)
		if err != nil {
			return nil, err
		}
		body = nb
	}
	return body, nil
}

// WrapReply implements core.GlueServer.
func (s *GlueServer) WrapReply(req *wire.Message, body []byte) (*wire.Message, error) {
	frame := &Frame{Object: req.Object, Method: req.Method, Dir: Reply, Clock: s.clock}
	envs := make([]wire.Envelope, 0, len(s.caps)+1)
	envs = append(envs, wire.Envelope{ID: core.GlueEnvelopeID, Data: []byte(s.tag)})
	for _, c := range s.caps {
		nb, env, err := c.Process(frame, body)
		if err != nil {
			// Reply-direction processing never charges: quota/ratelimit
			// meter the request direction only, and the server's
			// authoritative request charge (made in UnwrapRequest) stands
			// regardless of how the reply fares.
			//lint:ignore caprefund reply-direction Process charges nothing to refund
			return nil, errs.Wrapf(errs.Capability, err, "capability %s (reply)", c.Kind())
		}
		body = nb
		envs = append(envs, wire.Envelope{ID: c.Kind(), Data: env})
	}
	return &wire.Message{
		Type:      wire.TReply,
		Object:    req.Object,
		Method:    req.Method,
		Epoch:     req.Epoch,
		Envelopes: envs,
		Body:      body,
	}, nil
}

// DescribeEntry renders a glue protocol table entry for humans:
// "glue[quota, encrypt] over hpcx-tcp (tag \"sec\")". Non-glue entries
// render as their protocol id; undecodable data is reported as such.
func DescribeEntry(entry core.ProtoEntry) string {
	if entry.ID != core.ProtoGlue {
		return string(entry.ID)
	}
	g := new(glueData)
	if err := xdr.Unmarshal(entry.Data, g); err != nil {
		return "glue[undecodable]"
	}
	kinds := make([]string, len(g.Caps))
	for i, c := range g.Caps {
		kinds[i] = c.Kind
	}
	return fmt.Sprintf("glue[%s] over %s (tag %q)", strings.Join(kinds, ", "), g.Base.ID, g.Tag)
}
