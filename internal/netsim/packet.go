package netsim

import (
	"math/rand"
	"sync"
	"time"

	"openhpcxx/internal/errs"
)

// Datagram support: unreliable, unordered message sockets with loss and
// jitter, the substrate for user-written custom protocols (the paper's
// §3.2 lets applications supply their own proto-classes; the udprel
// package builds a reliable request/reply protocol on these sockets).

// Packet-loss and jitter knobs live on the link profile; they affect
// only datagram traffic (stream connections model TCP, which hides
// loss).
//
// Fields are on LinkProfile via composition here to avoid touching the
// stream path: a DatagramProfile wraps a LinkProfile.
type DatagramProfile struct {
	Link LinkProfile
	// LossRate is the probability in [0,1) that a datagram is dropped.
	LossRate float64
	// Jitter adds a uniform random delay in [0, Jitter) per datagram,
	// which also reorders traffic.
	Jitter time.Duration
	// MTU bounds datagram size; larger writes fail (callers fragment).
	MTU int
}

// DefaultMTU is used when a profile does not set one.
const DefaultMTU = 9000

// Datagram is one received message.
type Datagram struct {
	From Addr
	Data []byte
}

// PacketConn is a simulated unreliable datagram socket.
type PacketConn struct {
	net   *Network
	local Addr

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []Datagram
	closed bool
	rdDead time.Time
}

// maxInbox bounds receive buffering; overflow drops datagrams, like a
// full UDP socket buffer.
const maxInbox = 512

// ListenPacket opens a datagram socket on machine:port. Port 0
// allocates one.
func (n *Network) ListenPacket(m MachineID, port int) (*PacketConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.machines[m]; !ok {
		return nil, errs.Newf(errs.Config, "netsim: unknown machine %q", m)
	}
	if port == 0 {
		port = n.nextPort
		n.nextPort++
	}
	addr := Addr{Machine: m, Port: port}
	if _, busy := n.packetSocks[addr]; busy {
		return nil, errs.Newf(errs.Conflict, "netsim: packet address %v in use", addr)
	}
	pc := &PacketConn{net: n, local: addr}
	pc.cond = sync.NewCond(&pc.mu)
	n.packetSocks[addr] = pc
	return pc, nil
}

// DatagramShaping overrides the per-link datagram behaviour between two
// machines; without an override, datagrams use the stream profile with
// no loss and no jitter.
func (n *Network) SetDatagramShaping(a, b MachineID, p DatagramProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dgramShape[dgramKey{a, b}] = p
	n.dgramShape[dgramKey{b, a}] = p
}

func (n *Network) datagramProfile(a, b MachineID) (DatagramProfile, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.dgramShape[dgramKey{a, b}]; ok {
		return p, nil
	}
	link, err := n.linkBetweenLocked(a, b)
	if err != nil {
		return DatagramProfile{}, err
	}
	return DatagramProfile{Link: link}, nil
}

// LocalAddr returns the socket's address.
func (pc *PacketConn) LocalAddr() Addr { return pc.local }

// WriteTo sends one datagram. Loss and jitter are applied per the link's
// datagram profile; delivery is asynchronous.
func (pc *PacketConn) WriteTo(p []byte, to Addr) (int, error) {
	pc.mu.Lock()
	closed := pc.closed
	pc.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	prof, err := pc.net.datagramProfile(pc.local.Machine, to.Machine)
	if err != nil {
		return 0, err
	}
	mtu := prof.MTU
	if mtu == 0 {
		mtu = DefaultMTU
	}
	if len(p) > mtu {
		return 0, errs.Newf(errs.BadRequest, "netsim: datagram of %d bytes exceeds MTU %d", len(p), mtu)
	}

	pc.net.mu.Lock()
	dst, ok := pc.net.packetSocks[to]
	if pc.net.partitions[dgramKey{pc.local.Machine, to.Machine}] {
		ok = false // partitioned: datagrams vanish silently
	}
	drop := prof.LossRate > 0 && pc.net.rng.Float64() < prof.LossRate
	var jitter time.Duration
	if prof.Jitter > 0 {
		jitter = time.Duration(pc.net.rng.Int63n(int64(prof.Jitter)))
	}
	pc.net.mu.Unlock()

	if !ok || drop {
		// Unreliable: writes to nowhere and lost packets both succeed.
		return len(p), nil
	}
	data := make([]byte, len(p))
	copy(data, p)
	delay := prof.Link.Latency + prof.Link.TxTime(len(p)) + jitter
	from := pc.local
	deliver := func() { dst.deliver(Datagram{From: from, Data: data}) }
	if delay <= 0 {
		go deliver()
	} else {
		time.AfterFunc(delay, deliver)
	}
	return len(p), nil
}

func (pc *PacketConn) deliver(d Datagram) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed || len(pc.inbox) >= maxInbox {
		return // dropped, like a full socket buffer
	}
	pc.inbox = append(pc.inbox, d)
	pc.cond.Broadcast()
}

// ReadFrom blocks for the next datagram, honouring the read deadline.
func (pc *PacketConn) ReadFrom(p []byte) (int, Addr, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for {
		if len(pc.inbox) > 0 {
			d := pc.inbox[0]
			pc.inbox = pc.inbox[1:]
			n := copy(p, d.Data)
			return n, d.From, nil
		}
		if pc.closed {
			return 0, Addr{}, ErrClosed
		}
		if !pc.rdDead.IsZero() && !time.Now().Before(pc.rdDead) {
			return 0, Addr{}, ErrDeadline
		}
		pc.waitWithDeadline()
	}
}

func (pc *PacketConn) waitWithDeadline() {
	if pc.rdDead.IsZero() {
		pc.cond.Wait()
		return
	}
	t := time.AfterFunc(time.Until(pc.rdDead), func() {
		pc.mu.Lock()
		pc.cond.Broadcast()
		pc.mu.Unlock()
	})
	pc.cond.Wait()
	t.Stop()
}

// SetReadDeadline bounds ReadFrom.
func (pc *PacketConn) SetReadDeadline(t time.Time) {
	pc.mu.Lock()
	pc.rdDead = t
	pc.cond.Broadcast()
	pc.mu.Unlock()
}

// Close releases the socket; blocked readers fail with ErrClosed.
func (pc *PacketConn) Close() error {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return nil
	}
	pc.closed = true
	pc.cond.Broadcast()
	pc.mu.Unlock()
	pc.net.mu.Lock()
	delete(pc.net.packetSocks, pc.local)
	pc.net.mu.Unlock()
	return nil
}

// dgramKey indexes per-pair datagram shaping overrides.
type dgramKey struct{ a, b MachineID }

// Seed reseeds the network's randomness (loss, jitter) for reproducible
// experiments.
func (n *Network) Seed(seed int64) {
	n.mu.Lock()
	n.rng = rand.New(rand.NewSource(seed))
	n.mu.Unlock()
}
