package capability

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// KindAuth names the authentication capability of the paper's Figure 3
// scenario: servers require clients connecting from outside their LAN to
// authenticate each remote request, while local clients go unchecked —
// expressed here as a cross-LAN applicability scope.
const KindAuth = "auth"

// Auth authenticates every request (and reply) with an HMAC-SHA256
// signature over the frame identity, a fresh nonce, and the body. Both
// sides share the secret through the capability config.
type Auth struct {
	principal string
	secret    []byte
	scope     Scope
}

// NewAuth builds an authentication capability for a principal.
func NewAuth(principal string, secret []byte, scope Scope) (*Auth, error) {
	if principal == "" {
		return nil, errs.New(errs.Config, "capability: auth requires a principal")
	}
	if len(secret) == 0 {
		return nil, errs.New(errs.Config, "capability: auth requires a secret")
	}
	return &Auth{principal: principal, secret: append([]byte(nil), secret...), scope: scope}, nil
}

// MustNewAuth is NewAuth, panicking on error (fixture use).
func MustNewAuth(principal string, secret []byte, scope Scope) *Auth {
	a, err := NewAuth(principal, secret, scope)
	if err != nil {
		panic(err)
	}
	return a
}

// Principal returns the authenticated identity.
func (a *Auth) Principal() string { return a.principal }

// Kind implements Capability.
func (*Auth) Kind() string { return KindAuth }

// Applicable implements Capability.
func (a *Auth) Applicable(client, server netsim.Locality) bool {
	return a.scope.Applies(client, server)
}

type authConfig struct {
	Principal string
	Secret    []byte
	Scope     Scope
}

func (c *authConfig) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(c.Principal)
	e.PutOpaque(c.Secret)
	e.PutUint32(uint32(c.Scope))
	return nil
}

func (c *authConfig) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if c.Principal, err = d.String(); err != nil {
		return err
	}
	if c.Secret, err = d.Opaque(); err != nil {
		return err
	}
	s, err := d.Uint32()
	c.Scope = Scope(s)
	return err
}

// Config implements Capability.
func (a *Auth) Config() ([]byte, error) {
	return xdr.Marshal(&authConfig{Principal: a.principal, Secret: a.secret, Scope: a.scope})
}

const authNonceLen = 16

// authEnvelope is {principal, nonce, mac}.
type authEnvelope struct {
	Principal string
	Nonce     []byte
	MAC       []byte
}

func (v *authEnvelope) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(v.Principal)
	e.PutOpaque(v.Nonce)
	e.PutOpaque(v.MAC)
	return nil
}

func (v *authEnvelope) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if v.Principal, err = d.String(); err != nil {
		return err
	}
	if v.Nonce, err = d.Opaque(); err != nil {
		return err
	}
	v.MAC, err = d.Opaque()
	return err
}

// Process signs the body; the body itself is unchanged.
func (a *Auth) Process(f *Frame, body []byte) ([]byte, []byte, error) {
	nonce := make([]byte, authNonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, err
	}
	env, err := xdr.Marshal(&authEnvelope{
		Principal: a.principal,
		Nonce:     nonce,
		MAC:       a.mac(f, nonce, body),
	})
	if err != nil {
		return nil, nil, err
	}
	return body, env, nil
}

// Unprocess verifies the signature.
func (a *Auth) Unprocess(f *Frame, envelope, body []byte) ([]byte, error) {
	v := new(authEnvelope)
	if err := xdr.Unmarshal(envelope, v); err != nil {
		return nil, wire.Faultf(wire.FaultAuth, "auth envelope: %v", err)
	}
	if v.Principal != a.principal {
		return nil, wire.Faultf(wire.FaultAuth, "unknown principal %q", v.Principal)
	}
	if len(v.Nonce) != authNonceLen {
		return nil, wire.Faultf(wire.FaultAuth, "auth nonce has %d bytes", len(v.Nonce))
	}
	if !hmac.Equal(v.MAC, a.mac(f, v.Nonce, body)) {
		return nil, wire.Faultf(wire.FaultAuth, "signature verification failed for %q", v.Principal)
	}
	return body, nil
}

func (a *Auth) mac(f *Frame, nonce, body []byte) []byte {
	h := hmac.New(sha256.New, a.secret)
	h.Write(nonce)
	h.Write([]byte(a.principal))
	h.Write([]byte{0})
	h.Write([]byte(f.Object))
	h.Write([]byte{0})
	h.Write([]byte(f.Method))
	h.Write([]byte{byte(f.Dir)})
	h.Write(body)
	return h.Sum(nil)
}

func init() {
	RegisterKind(KindAuth, func(config []byte) (Capability, error) {
		c := new(authConfig)
		if err := xdr.Unmarshal(config, c); err != nil {
			return nil, errs.Wrap(errs.Codec, err, "capability: auth config")
		}
		return NewAuth(c.Principal, c.Secret, c.Scope)
	})
}
