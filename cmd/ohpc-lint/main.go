// ohpc-lint runs the project's invariant analyzers (internal/analysis)
// over the tree and fails on any finding.
//
// Usage:
//
//	ohpc-lint [-only a,b] [-skip a,b] [-list] [-json] [-ignores] [-v] [packages...]
//
// Packages default to ./internal/... ./cmd/... relative to the module
// root (found by walking up from the working directory). Diagnostics
// print as "file:line:col: [analyzer] message", or as a JSON array of
// {file,line,col,analyzer,message} objects with -json; the exit status
// is 1 when anything was reported, 2 on usage or load errors. -v prints
// per-analyzer wall time to stderr. Suppress a deliberate violation
// with
//
//	//lint:ignore <analyzer>[,<analyzer>|all] <reason>
//
// on, or directly above, the offending line. -ignores inventories every
// such directive (with its reason) instead of linting; a directive that
// no longer suppresses anything is reported as a staleignore finding by
// the full suite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"openhpcxx/internal/analysis"
	"openhpcxx/internal/errs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the machine-readable shape of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ohpc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings (or -ignores inventory) as JSON")
	ignores := fs.Bool("ignores", false, "list every //lint:ignore directive instead of linting")
	verbose := fs.Bool("v", false, "print per-analyzer timing to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(stderr, "ohpc-lint: no analyzers selected")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "ohpc-lint:", err)
		return 2
	}
	units, err := analysis.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "ohpc-lint:", err)
		return 2
	}
	if *ignores {
		return runIgnores(units, root, *asJSON, stdout, stderr)
	}
	diags, timings := analysis.RunTimed(units, analyzers)
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "ohpc-lint: %-12s %8.1fms\n", tm.Name, float64(tm.Duration.Microseconds())/1000)
		}
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     relTo(root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		if err := writeJSON(stdout, out); err != nil {
			fmt.Fprintln(stderr, "ohpc-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relTo(root, d.Pos.Filename)
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ohpc-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runIgnores implements -ignores: an inventory of every suppression in
// the loaded units, so reviewers can audit what the lint suite is being
// told to overlook and why. Exit status is 0 — having suppressions is
// not a finding; having stale ones is, and the lint pass reports those.
func runIgnores(units []*analysis.Unit, root string, asJSON bool, stdout, stderr *os.File) int {
	igs := analysis.Ignores(units)
	for i := range igs {
		igs[i].File = relTo(root, igs[i].File)
	}
	if asJSON {
		if err := writeJSON(stdout, igs); err != nil {
			fmt.Fprintln(stderr, "ohpc-lint:", err)
			return 2
		}
		return 0
	}
	for _, ig := range igs {
		names := ""
		for i, n := range ig.Names {
			if i > 0 {
				names += ","
			}
			names += n
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", ig.File, ig.Line, names, ig.Reason)
	}
	fmt.Fprintf(stderr, "ohpc-lint: %d suppression(s)\n", len(igs))
	return 0
}

func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil {
		return rel
	}
	return path
}

func writeJSON(w *os.File, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errs.Newf(errs.Config, "no go.mod above %s", dir)
		}
		dir = parent
	}
}
