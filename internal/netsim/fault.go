package netsim

import (
	"errors"
	"sort"
	"sync"
	"time"

	"openhpcxx/internal/clock"
)

// ErrConnReset is the error observed on connections torn down by a
// simulated machine crash — the analog of ECONNRESET on a real network.
var ErrConnReset = errors.New("netsim: connection reset by peer")

// DirFault is the live fault state of one direction of a link: extra
// injected latency and an optional blackhole that silently eats traffic.
// It is shared between the Network (which mutates it via SetLinkDelay /
// SetBlackhole) and the halfPipes of established connections (which
// consult it on every delivery), so injected faults apply to traffic
// already in flight, not just to future dials.
type DirFault struct {
	mu        sync.Mutex
	extraLat  time.Duration
	blackhole bool
}

func (d *DirFault) extra() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.extraLat
}

func (d *DirFault) blackholed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blackhole
}

func (d *DirFault) setExtra(e time.Duration) {
	d.mu.Lock()
	d.extraLat = e
	d.mu.Unlock()
}

func (d *DirFault) setBlackhole(on bool) {
	d.mu.Lock()
	d.blackhole = on
	d.mu.Unlock()
}

// dirFaultLocked returns the fault state for the from→to direction,
// creating it on first use. Caller holds n.mu.
func (n *Network) dirFaultLocked(from, to MachineID) *DirFault {
	k := dgramKey{from, to}
	d, ok := n.linkFaults[k]
	if !ok {
		d = new(DirFault)
		n.linkFaults[k] = d
	}
	return d
}

// SetLinkDelay injects extra one-way latency from `from` to `to` on top
// of the link profile. It applies to established connections as well as
// new ones; pass 0 to heal.
func (n *Network) SetLinkDelay(from, to MachineID, extra time.Duration) {
	n.mu.Lock()
	d := n.dirFaultLocked(from, to)
	n.mu.Unlock()
	d.setExtra(extra)
}

// SetBlackhole makes the from→to direction silently swallow traffic
// while on: data stays "in flight" and is delivered once the hole heals,
// modeling a router that queues or a path that drops without resetting.
func (n *Network) SetBlackhole(from, to MachineID, on bool) {
	n.mu.Lock()
	d := n.dirFaultLocked(from, to)
	n.mu.Unlock()
	d.setBlackhole(on)
}

// Crash kills a machine: every listener on it closes, every established
// connection touching it dies abnormally with ErrConnReset (both ends
// observe the reset, like a peer's kernel answering for a dead process),
// and new listens/dials involving it fail until Restart.
func (n *Network) Crash(m MachineID) {
	n.mu.Lock()
	n.down[m] = true
	var doomedL []*Listener
	for a, l := range n.listeners {
		if a.Machine == m {
			doomedL = append(doomedL, l)
		}
	}
	var doomedC []*Conn
	for c, ends := range n.conns {
		if ends.a == m || ends.b == m {
			doomedC = append(doomedC, c)
		}
	}
	n.mu.Unlock()
	// Close/Fail outside the lock: both paths re-enter the Network via
	// removeListener / onClose.
	for _, l := range doomedL {
		l.Close()
	}
	for _, c := range doomedC {
		c.Fail(ErrConnReset)
	}
}

// Restart brings a crashed machine back: listens and dials involving it
// succeed again. Listeners and connections killed by the crash stay
// dead — processes must re-bind and re-dial, as after a real reboot.
func (n *Network) Restart(m MachineID) {
	n.mu.Lock()
	delete(n.down, m)
	n.mu.Unlock()
}

// Down reports whether the machine is currently crashed.
func (n *Network) Down(m MachineID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[m]
}

// FaultEvent is one scheduled action in a FaultPlan: at offset At from
// the run's start, Do fires (crash, restart, partition, delay, ...).
type FaultEvent struct {
	At   time.Duration
	Name string
	Do   func(n *Network)
}

// FaultPlan is a scriptable schedule of fault events, so experiments can
// declare "crash B at 200ms, restart it at 600ms, partition A–C from
// 800ms to 1s" and replay the schedule deterministically.
type FaultPlan struct {
	events []FaultEvent
	// clk paces the schedule when Run executes it. Nil means the real
	// clock (the netsim shapes traffic in real time); SetClock injects a
	// fake for tests that drive the schedule manually.
	clk clock.Clock
}

// SetClock injects the clock that paces Run's event schedule; the
// default is the real clock.
func (p *FaultPlan) SetClock(clk clock.Clock) *FaultPlan {
	p.clk = clk
	return p
}

// Add appends an arbitrary event.
func (p *FaultPlan) Add(at time.Duration, name string, do func(n *Network)) *FaultPlan {
	p.events = append(p.events, FaultEvent{At: at, Name: name, Do: do})
	return p
}

// CrashAt schedules a machine crash.
func (p *FaultPlan) CrashAt(at time.Duration, m MachineID) *FaultPlan {
	return p.Add(at, "crash "+string(m), func(n *Network) { n.Crash(m) })
}

// RestartAt schedules a machine restart. The optional hook runs after
// the network marks the machine up — the place to re-bind listeners,
// modeling the process supervisor bringing services back.
func (p *FaultPlan) RestartAt(at time.Duration, m MachineID, hook func()) *FaultPlan {
	return p.Add(at, "restart "+string(m), func(n *Network) {
		n.Restart(m)
		if hook != nil {
			hook()
		}
	})
}

// PartitionAt schedules severing connectivity between two machines.
func (p *FaultPlan) PartitionAt(at time.Duration, a, b MachineID) *FaultPlan {
	return p.Add(at, "partition "+string(a)+"/"+string(b), func(n *Network) { n.SetPartition(a, b, true) })
}

// HealAt schedules healing a partition.
func (p *FaultPlan) HealAt(at time.Duration, a, b MachineID) *FaultPlan {
	return p.Add(at, "heal "+string(a)+"/"+string(b), func(n *Network) { n.SetPartition(a, b, false) })
}

// DelayAt schedules injecting extra one-way latency.
func (p *FaultPlan) DelayAt(at time.Duration, from, to MachineID, extra time.Duration) *FaultPlan {
	return p.Add(at, "delay "+string(from)+"->"+string(to), func(n *Network) { n.SetLinkDelay(from, to, extra) })
}

// BlackholeAt schedules turning a one-direction blackhole on or off.
func (p *FaultPlan) BlackholeAt(at time.Duration, from, to MachineID, on bool) *FaultPlan {
	return p.Add(at, "blackhole "+string(from)+"->"+string(to), func(n *Network) { n.SetBlackhole(from, to, on) })
}

// FlapAt schedules a link flap: partition at `at`, heal after `down`.
func (p *FaultPlan) FlapAt(at time.Duration, a, b MachineID, down time.Duration) *FaultPlan {
	p.PartitionAt(at, a, b)
	return p.HealAt(at+down, a, b)
}

// FaultRun is an executing FaultPlan.
type FaultRun struct {
	done chan struct{}
	stop chan struct{}
	once sync.Once
}

// Run starts executing the plan against n in a background goroutine,
// firing events in At order relative to now. The netsim shapes traffic
// in real time, so the schedule runs on the wall clock too.
func (p *FaultPlan) Run(n *Network) *FaultRun {
	evs := make([]FaultEvent, len(p.events))
	copy(evs, p.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	r := &FaultRun{done: make(chan struct{}), stop: make(chan struct{})}
	clk := p.clk
	if clk == nil {
		clk = clock.Real{}
	}
	start := clk.Now()
	go func() {
		defer close(r.done)
		for _, ev := range evs {
			wait := ev.At - clk.Now().Sub(start)
			if wait > 0 {
				select {
				case <-clock.After(clk, wait):
				case <-r.stop:
					return
				}
			} else {
				select {
				case <-r.stop:
					return
				default:
				}
			}
			ev.Do(n)
		}
	}()
	return r
}

// Wait blocks until every scheduled event has fired (or Stop was called).
func (r *FaultRun) Wait() { <-r.done }

// Stop cancels events that have not fired yet.
func (r *FaultRun) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}
