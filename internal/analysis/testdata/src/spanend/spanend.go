// Golden corpus for the spanend analyzer: every *obs.Active must reach
// End() on every path, unless ownership demonstrably leaves the
// function (return, argument, closure) or the path is vacuous under a
// nil guard (Active methods are nil-safe).
package spanend

import (
	"errors"

	"openhpcxx/internal/obs"
)

func discarded(tr *obs.Tracer) {
	tr.StartRoot(obs.KindClient, "op") // want "span started and discarded"
}

func leakyReturn(tr *obs.Tracer, fail bool) error {
	sp := tr.StartRoot(obs.KindClient, "op")
	if fail {
		return errors.New("boom") // want "span sp is still open on this return path"
	}
	sp.End()
	return nil
}

func fallsOff(tr *obs.Tracer, n int) {
	sp := tr.StartRoot(obs.KindClient, "op") // want "span sp is still open when fallsOff falls off the end"
	sp.SetBytes(n)
}

func loopLeak(tr *obs.Tracer, n int) {
	for i := 0; i < n; i++ {
		sp := tr.StartRoot(obs.KindClient, "op") // want "span sp started inside the loop body is still open"
		sp.SetBytes(i)
	}
}

func ended(tr *obs.Tracer, err error) {
	sp := tr.StartRoot(obs.KindClient, "op")
	sp.SetErr(err)
	sp.End()
}

func deferred(tr *obs.Tracer, work func()) {
	sp := tr.StartRoot(obs.KindServer, "op")
	defer sp.End()
	work()
}

func nilGuarded(tr *obs.Tracer, fail bool) error {
	sp := tr.StartRoot(obs.KindClient, "op")
	if sp == nil {
		// Vacuous: a nil span has nothing to End.
		return errors.New("tracing disabled")
	}
	if fail {
		sp.End()
		return errors.New("boom")
	}
	sp.End()
	return nil
}

func originGuarded(tr *obs.Tracer, root *obs.Active) {
	child := root.Child("sub")
	// Child is nil-safe off a nil root, so guarding on the origin
	// covers the span too.
	if root != nil {
		child.End()
	}
}

func handoff(tr *obs.Tracer) *obs.Active {
	sp := tr.StartRoot(obs.KindClient, "op")
	return sp // ownership moves to the caller
}

func escapesIntoClosure(tr *obs.Tracer, spawn func(func())) {
	sp := tr.StartRoot(obs.KindClient, "op")
	spawn(func() { sp.End() }) // ends later, on the closure's schedule
}

// samplerTicks is the background-sampler shape (a loop waiting on a
// stop channel and a tick source): a span opened and closed inside one
// select branch is clean.
func samplerTicks(tr *obs.Tracer, stop, ticks chan struct{}, sample func(*obs.Active)) {
	for {
		select {
		case <-stop:
			return
		case <-ticks:
			sp := tr.StartRoot(obs.KindClient, "sample")
			sample(sp)
			sp.End()
		}
	}
}

// samplerTicksLeak returns out of the loop with the tick's span open.
func samplerTicksLeak(tr *obs.Tracer, stop, ticks chan struct{}, bad func() bool) {
	for {
		select {
		case <-stop:
			return
		case <-ticks:
			sp := tr.StartRoot(obs.KindClient, "sample")
			if bad() {
				return // want "span sp is still open on this return path"
			}
			sp.End()
		}
	}
}

// heartbeatRound is the directory publisher's per-round shape: one span
// covering a fan-out over many names, the last error recorded, ended on
// every path — clean.
func heartbeatRound(tr *obs.Tracer, names []string, rebind func(string) error) {
	sp := tr.StartRoot(obs.KindClient, "dir.heartbeat")
	sp.SetBytes(len(names))
	var lastErr error
	for _, n := range names {
		if err := rebind(n); err != nil {
			lastErr = err
		}
	}
	sp.SetErr(lastErr)
	sp.End()
}

// watchSubscribeLeak is the watch-subscription shape gone wrong: the
// per-shard span skips End when every replica refuses.
func watchSubscribeLeak(tr *obs.Tracer, replicas []func() error) error {
	sp := tr.StartRoot(obs.KindClient, "dir.watch")
	ok := 0
	for _, sub := range replicas {
		if sub() == nil {
			ok++
		}
	}
	if ok == 0 {
		return errors.New("no replica reachable") // want "span sp is still open on this return path"
	}
	sp.End()
	return nil
}

// flushRound is the tail-keeper idle-flush shape: each wake opens one
// span covering the round, records how many pending traces it decided,
// and ends it on every arm — clean.
func flushRound(tr *obs.Tracer, stop, ticks chan struct{}, flushIdle func() int) {
	for {
		select {
		case <-stop:
			return
		case <-ticks:
			sp := tr.StartRoot(obs.KindServer, "obs.flush")
			sp.SetBytes(flushIdle())
			sp.End()
		}
	}
}

// flushRoundLeak bails out of the loop mid-round with the flush span
// still open — the keeper shuts down but its last span never ends.
func flushRoundLeak(tr *obs.Tracer, stop, ticks chan struct{}, flushIdle func() int, closing func() bool) {
	for {
		select {
		case <-stop:
			return
		case <-ticks:
			sp := tr.StartRoot(obs.KindServer, "obs.flush")
			if closing() {
				return // want "span sp is still open on this return path"
			}
			sp.SetBytes(flushIdle())
			sp.End()
		}
	}
}

func terminal(tr *obs.Tracer, bad bool) {
	sp := tr.StartRoot(obs.KindClient, "op")
	if bad {
		panic("boom") // terminal: the process is gone, not the span
	}
	sp.End()
}
