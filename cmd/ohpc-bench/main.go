// Command ohpc-bench regenerates every figure of the paper's evaluation
// section as text tables (and an ASCII rendering of the Figure 5 plot).
//
// Usage:
//
//	ohpc-bench -fig=all            # everything (Figure 5 takes ~2 min)
//	ohpc-bench -fig=5 -quick       # time-scaled links, fast
//	ohpc-bench -fig=5 -profile=atm -plot
//	ohpc-bench -fig=4
//	ohpc-bench -fig=a1 -json=async.json   # async throughput figure
//	ohpc-bench -fig=o1 -trace=spans.json  # tracing overhead + span dump
//	ohpc-bench -fig=o2 -quick -json=-     # tail-based retention vs FIFO
//	ohpc-bench -fig=d1 -json=dir.json     # directory plane: scale + crash
//	ohpc-bench -fig=s1 -quick -json=-     # saturation sweep (goodput vs offered load)
//
// Absolute numbers depend on the host and the simulated link rates; the
// shapes — which protocol wins, by roughly what factor, and where the
// selection changes — are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"openhpcxx/internal/bench"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/introspect"
	"openhpcxx/internal/netsim"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2, 3, 4, 5, a1 (async), l1 (loss sweep), e1 (retry budgets), r1 (robustness), o1 (tracing overhead), o2 (tail-based retention), d1 (directory), s1 (saturation sweep), or all")
	profile := flag.String("profile", "both", "network for figure 5: atm, ethernet, or both")
	quick := flag.Bool("quick", false, "time-scale the links 16x and shorten averaging")
	plot := flag.Bool("plot", true, "also render figure 5 as an ASCII log-log plot")
	reps := flag.Int("reps", 0, "minimum exchanges per measurement cell (0 = default)")
	csvPath := flag.String("csv", "", "also write figure 5 data as CSV to this file")
	jsonPath := flag.String("json", "", "write the a1/r1 figure data as JSON to this file ('-' for stdout)")
	calls := flag.Int("calls", 0, "calls per mode for the async figure (0 = default)")
	tracePath := flag.String("trace", "", "write the o1 figure's recorded spans as JSON to this file ('-' for stdout)")
	introspectAddr := flag.String("introspect", "", "serve the introspection plane on this address while the r1 figure runs (curl /statusz or run ohpc-top mid-failover)")
	flag.Parse()

	var csvOut *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ohpc-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
		fmt.Fprintln(csvOut, "profile,series,ints,bytes,reps,avg_rtt_us,bandwidth_mbps")
	}

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "ohpc-bench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("1", func() error {
		r, err := bench.RunFigure1()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatPathReport(r))
		return nil
	})
	run("2", func() error {
		r, err := bench.RunFigure2()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatPathReport(r))
		return nil
	})
	run("3", func() error {
		phases, err := bench.RunFigure3()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigure3(phases))
		return nil
	})
	run("4", func() error {
		cfg := bench.Fig4Config{}
		if *quick {
			cfg.Profile = netsim.ProfileATM155.Scaled(16)
			cfg.MinDuration = 30 * time.Millisecond
		}
		if *reps > 0 {
			cfg.MinReps = *reps
		}
		steps, err := bench.RunFigure4(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigure4(steps))
		expect := bench.Fig4Expected()
		ok := true
		for i, s := range steps {
			if s.Selected != expect[i] {
				ok = false
			}
		}
		fmt.Printf("selection sequence matches the paper: %v\n\n", ok)
		return nil
	})
	run("l1", func() error {
		cfg := bench.LossSweepConfig{}
		if *quick {
			cfg.MinDuration = 30 * time.Millisecond
		}
		points, err := bench.RunLossSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatLossSweep(points))
		return nil
	})
	run("e1", func() error {
		cfg := bench.E1Config{}
		if *quick {
			cfg.Duration = 600 * time.Millisecond
		}
		if *introspectAddr != "" {
			cfg.OnRuntime = func(mode string, rt *core.Runtime) func() {
				insp, err := introspect.Attach(rt, introspect.Options{Addr: *introspectAddr})
				if err != nil {
					fmt.Fprintf(os.Stderr, "ohpc-bench: introspect (%s): %v\n", mode, err)
					return nil
				}
				fmt.Printf("introspection plane for mode %s on http://%s\n", mode, insp.Addr())
				return func() { _ = insp.Close() }
			}
		}
		res, err := bench.RunFigureE1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigureE1(res))
		if *jsonPath != "" {
			out := os.Stdout
			if *jsonPath != "-" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
		}
		return nil
	})
	run("5", func() error {
		profiles := map[string]netsim.LinkProfile{
			"atm":      netsim.ProfileATM155,
			"ethernet": netsim.ProfileEthernet,
		}
		names := []string{"atm", "ethernet"}
		if *profile != "both" {
			if _, ok := profiles[*profile]; !ok {
				return errs.Newf(errs.Config, "unknown profile %q", *profile)
			}
			names = []string{*profile}
		}
		for _, pn := range names {
			p := profiles[pn]
			cfg := bench.Fig5Config{Profile: p}
			if *quick {
				cfg.Profile = p.Scaled(16)
				cfg.MinDuration = 50 * time.Millisecond
				cfg.MinReps = 2
			}
			if *reps > 0 {
				cfg.MinReps = *reps
			}
			series, err := bench.RunFigure5(cfg)
			if err != nil {
				return err
			}
			title := fmt.Sprintf("Figure 5: bandwidth vs. array size over %s", cfg.Profile)
			fmt.Println(bench.FormatFigure5(title, series))
			if *plot {
				fmt.Println(bench.FormatFigure5ASCII(title, series))
			}
			if csvOut != nil {
				for _, s := range series {
					for _, p := range s.Points {
						fmt.Fprintf(csvOut, "%s,%s,%d,%d,%d,%d,%.3f\n",
							pn, s.Name, p.Ints, p.Bytes, p.Reps, p.AvgRTT.Microseconds(), p.BandwidthBps/1e6)
					}
				}
			}
			summarizeFig5(series)
		}
		return nil
	})

	run("a1", func() error {
		profiles := []netsim.LinkProfile{netsim.ProfileWAN, netsim.ProfileEthernet}
		var results []*bench.AsyncResult
		for _, p := range profiles {
			cfg := bench.AsyncConfig{Profile: p, Calls: *calls}
			if *quick {
				cfg.Profile = p.Scaled(16)
				if cfg.Calls == 0 {
					cfg.Calls = 128
				}
			}
			res, err := bench.RunFigureAsync(cfg)
			if err != nil {
				return err
			}
			results = append(results, res)
			fmt.Println(bench.FormatFigureAsync(res))
		}
		if *jsonPath != "" {
			out := os.Stdout
			if *jsonPath != "-" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(results); err != nil {
				return err
			}
		}
		return nil
	})

	run("r1", func() error {
		cfg := bench.R1Config{}
		if *quick {
			cfg.Duration = 600 * time.Millisecond
		}
		if *introspectAddr != "" {
			// Each mode gets its own runtime; re-attach the plane to the
			// current one so /statusz and /varz track the live failover.
			cfg.OnRuntime = func(mode string, rt *core.Runtime) func() {
				insp, err := introspect.Attach(rt, introspect.Options{Addr: *introspectAddr})
				if err != nil {
					fmt.Fprintf(os.Stderr, "ohpc-bench: introspect (%s): %v\n", mode, err)
					return nil
				}
				fmt.Printf("introspection plane for mode %s on http://%s\n", mode, insp.Addr())
				return func() {
					// Teardown between modes; the next mode re-binds the addr.
					_ = insp.Close()
				}
			}
		}
		res, err := bench.RunFigureR1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigureR1(res))
		if *jsonPath != "" {
			out := os.Stdout
			if *jsonPath != "-" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
		}
		return nil
	})

	run("d1", func() error {
		cfg := bench.D1Config{}
		if *quick {
			cfg.Sizes = []int{1_000, 100_000}
			cfg.Ops = 400
			cfg.CrashDuration = 700 * time.Millisecond
		}
		if *reps > 0 {
			cfg.Ops = *reps
		}
		if *introspectAddr != "" {
			cfg.OnRuntime = func(mode string, rt *core.Runtime) func() {
				insp, err := introspect.Attach(rt, introspect.Options{Addr: *introspectAddr})
				if err != nil {
					fmt.Fprintf(os.Stderr, "ohpc-bench: introspect (%s): %v\n", mode, err)
					return nil
				}
				fmt.Printf("introspection plane for mode %s on http://%s\n", mode, insp.Addr())
				return func() { _ = insp.Close() }
			}
		}
		res, err := bench.RunFigureD1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigureD1(res))
		if *jsonPath != "" {
			out := os.Stdout
			if *jsonPath != "-" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
		}
		return nil
	})

	run("s1", func() error {
		cfg := bench.S1Config{}
		if *quick {
			cfg.Rates = []float64{1000, 2000, 4000, 8000}
			cfg.StepDuration = 150 * time.Millisecond
			cfg.Workers = 24
			cfg.Deadline = 50 * time.Millisecond
		}
		res, err := bench.RunFigureS1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigureS1(res))
		if *jsonPath != "" {
			out := os.Stdout
			if *jsonPath != "-" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
		}
		return nil
	})

	run("o1", func() error {
		cfg := bench.O1Config{}
		if *quick {
			cfg.MinReps = 200
			cfg.MinDuration = 30 * time.Millisecond
		}
		if *reps > 0 {
			cfg.MinReps = *reps
		}
		res, err := bench.RunFigureO1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigureO1(res))
		if *jsonPath != "" {
			out := os.Stdout
			if *jsonPath != "-" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
		}
		if *tracePath != "" {
			out := os.Stdout
			if *tracePath != "-" {
				f, err := os.Create(*tracePath)
				if err != nil {
					return err
				}
				defer f.Close()
				out = f
			}
			if err := res.Ring.WriteJSON(out); err != nil {
				return err
			}
			if *tracePath != "-" {
				fmt.Printf("wrote %d spans (of %d recorded) to %s\n", len(res.Ring.Spans()), res.Ring.Total(), *tracePath)
			}
		}
		return nil
	})

	run("o2", func() error {
		cfg := bench.O2Config{}
		if *quick {
			cfg.MinReps = 200
			cfg.MinDuration = 30 * time.Millisecond
		}
		if *reps > 0 {
			cfg.MinReps = *reps
		}
		res, err := bench.RunFigureO2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigureO2(res))
		if *jsonPath != "" {
			out := os.Stdout
			if *jsonPath != "-" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
		}
		return nil
	})

	if !strings.Contains("1 2 3 4 5 a1 l1 e1 r1 o1 o2 d1 s1 all", *fig) {
		fmt.Fprintf(os.Stderr, "ohpc-bench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

// summarizeFig5 prints the two claims the paper draws from the plot.
func summarizeFig5(series []bench.Series) {
	var shm, bestNet, worstNet float64
	for _, s := range series {
		last := s.Points[len(s.Points)-1].BandwidthBps
		if s.Name == bench.SeriesSharedMemory {
			shm = last
			continue
		}
		if bestNet == 0 || last > bestNet {
			bestNet = last
		}
		if worstNet == 0 || last < worstNet {
			worstNet = last
		}
	}
	fmt.Printf("at the largest size: network protocols within %.2fx of each other; shared memory %.1fx faster than the best network protocol\n\n",
		bestNet/worstNet, shm/bestNet)
}
