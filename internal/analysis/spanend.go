package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd enforces the span begin/end pairing that keeps traces
// connected: every obs span opened in a function (any call returning
// *obs.Active — StartRoot, StartChild, Child, helpers wrapping them)
// must be ended on every return path, either explicitly, or by a
// deferred End, or by handing ownership away (returning the span,
// passing it to a callee, capturing it in a closure).
//
// The check is a lightweight path walk, not a full CFG: it follows
// if/switch/select/for statements, understands early returns, and
// treats `if sp != nil { ... }` (and nil-guards on the span's origin —
// `if root != nil` for sp := root.Child(...)) as path-refining, because
// Active methods are nil-safe and a nil span needs no End. Spans whose
// ownership escapes are skipped: the pairing is then the new owner's
// obligation, checked where that owner lives.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans must be ended on all return paths (or deferred, or ownership handed off)",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	for _, file := range pass.Files() {
		for _, scope := range funcScopes(file) {
			checkSpanScope(pass, scope)
		}
	}
}

// isActivePtr reports whether t is *obs.Active.
func isActivePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Active" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/obs")
}

// spanVar is one tracked span binding within a function scope.
type spanVar struct {
	obj    types.Object    // the variable holding the span
	origin types.Object    // receiver the span was started from (root in root.Child), or nil
	start  *ast.AssignStmt // the statement that bound it
	pos    token.Pos
}

func checkSpanScope(pass *Pass, scope funcScope) {
	info := pass.Info()
	var vars []*spanVar

	// Pass 1: find span starts in this scope (nested function literals
	// are their own scopes; prune them).
	walkStack(scope.body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := info.Types[call]
		if !ok || tv.Type == nil || !isActivePtr(tv.Type) {
			return true
		}
		if len(stack) == 0 {
			return true
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "span started and discarded: bind it and End() it (Active methods are nil-safe)")
		case *ast.AssignStmt:
			// Only track the simple single-binding form; everything else
			// (multi-assign, field targets) counts as an ownership handoff.
			if len(parent.Rhs) == 1 && len(parent.Lhs) == 1 {
				if id, ok := parent.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil {
						vars = append(vars, &spanVar{
							obj:    obj,
							origin: receiverObj(info, call),
							start:  parent,
							pos:    call.Pos(),
						})
					}
				}
			}
		}
		return true
	})

	for _, v := range vars {
		checkSpanVar(pass, scope, v)
	}
}

// receiverObj resolves the identifier object a start call hangs off
// (root in root.Child(...)); nil when the receiver is not a plain
// identifier.
func receiverObj(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

func checkSpanVar(pass *Pass, scope funcScope, v *spanVar) {
	info := pass.Info()
	escaped := false
	deferred := false

	walkStack(scope.body, func(n ast.Node, stack []ast.Node) bool {
		if escaped {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if deferEndsSpan(info, d, v.obj) {
				deferred = true
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok || (info.Uses[id] != v.obj && info.Defs[id] != v.obj) {
			return true
		}
		if !spanUseIsLocal(id, stack) {
			escaped = true
		}
		return true
	})
	if escaped || deferred {
		return
	}

	f := &spanFlow{pass: pass, info: info, v: v}
	live, terminated := f.scan(scope.body.List, false)
	if !terminated && live {
		pass.Reportf(v.pos, "span %s is still open when %s falls off the end: call %s.End() on this path", v.obj.Name(), scope.name, v.obj.Name())
	}
}

// deferEndsSpan reports whether the defer ends v — directly
// (defer sp.End()) or inside a deferred closure.
func deferEndsSpan(info *types.Info, d *ast.DeferStmt, obj types.Object) bool {
	if isEndCallOn(info, d.Call, obj) {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEndCallOn(info, call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// isEndCallOn reports whether call is obj.End().
func isEndCallOn(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// spanUseIsLocal classifies one identifier occurrence of a span var:
// receiver of a method call, nil comparison, or assignment target keep
// the span local; anything else (argument, return value, closure
// capture, struct field, channel send) hands ownership away.
func spanUseIsLocal(id *ast.Ident, stack []ast.Node) bool {
	for _, anc := range stack {
		if _, ok := anc.(*ast.FuncLit); ok {
			return false // captured by a closure
		}
	}
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// sp.Method(...) — receiver position under a call.
		if parent.X == id && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == parent {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return isNilComparison(parent)
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == id {
				return true // binding target (the start assignment itself)
			}
		}
		return false
	default:
		return false
	}
}

func isNilComparison(b *ast.BinaryExpr) bool {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return isNil(b.X) || isNil(b.Y)
}

// spanFlow walks statement lists tracking whether the span is live
// (started, not yet ended) and whether control already left the
// function.
type spanFlow struct {
	pass *Pass
	info *types.Info
	v    *spanVar
}

// scan processes one statement list. It returns the liveness after the
// list and whether every path through it terminated (returned, exited).
func (f *spanFlow) scan(stmts []ast.Stmt, live bool) (bool, bool) {
	for _, s := range stmts {
		var terminated bool
		live, terminated = f.stmt(s, live)
		if terminated {
			return live, true
		}
	}
	return live, false
}

func (f *spanFlow) stmt(s ast.Stmt, live bool) (bool, bool) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		if st == f.v.start {
			return true, false
		}
		return live, false
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return live, false
		}
		if isEndCallOn(f.info, call, f.v.obj) {
			return false, false
		}
		if isTerminalCall(f.info, call) {
			return live, true
		}
		return live, false
	case *ast.ReturnStmt:
		if live {
			f.pass.Reportf(st.Pos(), "span %s is still open on this return path: End() it before returning (or defer it)", f.v.obj.Name())
		}
		return false, true
	case *ast.BranchStmt:
		// break/continue/goto leave this list; treat as terminating it.
		return live, true
	case *ast.BlockStmt:
		return f.scan(st.List, live)
	case *ast.LabeledStmt:
		return f.stmt(st.Stmt, live)
	case *ast.IfStmt:
		return f.ifStmt(st, live)
	case *ast.ForStmt:
		return f.loop(st.Body, st.Cond == nil, live)
	case *ast.RangeStmt:
		return f.loop(st.Body, false, live)
	case *ast.SwitchStmt:
		return f.clauses(caseBodies(st.Body), hasDefaultClause(st.Body), live)
	case *ast.TypeSwitchStmt:
		return f.clauses(caseBodies(st.Body), hasDefaultClause(st.Body), live)
	case *ast.SelectStmt:
		// A select always executes exactly one of its clauses.
		return f.clauses(commBodies(st.Body), true, live)
	default:
		return live, false
	}
}

// guardKind classifies an if condition relative to the span var: +1 for
// "x != nil", -1 for "x == nil", 0 for unrelated, where x is the span
// or its origin. On the nil side the span is nil and End is vacuous.
func (f *spanFlow) guardKind(cond ast.Expr) int {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || !isNilComparison(b) {
		return 0
	}
	other := b.X
	if id, ok := ast.Unparen(b.X).(*ast.Ident); ok && id.Name == "nil" {
		other = b.Y
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok {
		return 0
	}
	obj := f.info.Uses[id]
	if obj == nil || (obj != f.v.obj && (f.v.origin == nil || obj != f.v.origin)) {
		return 0
	}
	if b.Op == token.NEQ {
		return 1
	}
	return -1
}

func (f *spanFlow) ifStmt(st *ast.IfStmt, live bool) (bool, bool) {
	if st.Init != nil {
		live, _ = f.stmt(st.Init, live)
	}
	guard := f.guardKind(st.Cond)

	// Path refinement: inside "x == nil" (or the implicit else of
	// "x != nil") the span is statically nil — End is vacuous there, so
	// those paths enter with the span not-live.
	thenEntry, elseEntry := live, live
	if guard == -1 {
		thenEntry = false
	}
	if guard == 1 {
		elseEntry = false
	}

	thenLive, thenTerm := f.scan(st.Body.List, thenEntry)
	elseLive, elseTerm := elseEntry, false
	if st.Else != nil {
		elseLive, elseTerm = f.stmt(st.Else, elseEntry)
	}

	if thenTerm && elseTerm {
		return false, true
	}
	liveOut := false
	if !thenTerm {
		liveOut = liveOut || thenLive
	}
	if !elseTerm {
		liveOut = liveOut || elseLive
	}
	return liveOut, false
}

// loop scans a loop body. A span started inside the body must be closed
// by the end of the iteration (the next iteration rebinds it); a span
// already live from outside stays live, since the body may run zero
// times.
func (f *spanFlow) loop(body *ast.BlockStmt, infinite bool, live bool) (bool, bool) {
	bodyLive, _ := f.scan(body.List, live)
	if bodyLive && !live {
		f.pass.Reportf(f.v.pos, "span %s started inside the loop body is still open at the end of the iteration", f.v.obj.Name())
	}
	if infinite && !loopBreaks(body) {
		return false, true
	}
	return live, false
}

// loopBreaks reports whether the loop body contains a break that exits
// it (shallow: nested loops/switches own their breaks).
func loopBreaks(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch inner := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if inner.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}

func (f *spanFlow) clauses(bodies [][]ast.Stmt, exhaustive bool, live bool) (bool, bool) {
	liveOut, allTerminated := false, true
	for _, b := range bodies {
		l, t := f.scan(b, live)
		if !t {
			allTerminated = false
			liveOut = liveOut || l
		}
	}
	if !exhaustive {
		// No default: the no-match path continues with liveness unchanged.
		allTerminated = false
		liveOut = liveOut || live
	}
	if allTerminated {
		return false, true
	}
	return liveOut, false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func commBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		if cc, ok := s.(*ast.CommClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isTerminalCall recognizes calls that do not return: panic, os.Exit,
// runtime.Goexit, and testing's Fatal/FailNow/Skip family.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		f, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return false
		}
		switch funcPkgPath(f) {
		case "os":
			return f.Name() == "Exit"
		case "runtime":
			return f.Name() == "Goexit"
		case "testing":
			switch f.Name() {
			case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
				return true
			}
		}
	}
	return false
}
