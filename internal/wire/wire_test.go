package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"openhpcxx/internal/xdr"
)

func sample() *Message {
	return &Message{
		Type:      TRequest,
		RequestID: 42,
		Object:    "ctx-a/obj-7",
		Method:    "Exchange",
		Epoch:     3,
		Envelopes: []Envelope{
			{ID: "encrypt", Data: []byte{1, 2, 3}},
			{ID: "quota", Data: nil},
		},
		Body: []byte("payload"),
	}
}

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sample()
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.RequestID != in.RequestID || out.Object != in.Object ||
		out.Method != in.Method || out.Epoch != in.Epoch {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if len(out.Envelopes) != 2 || out.Envelopes[0].ID != "encrypt" ||
		!bytes.Equal(out.Envelopes[0].Data, []byte{1, 2, 3}) || out.Envelopes[1].ID != "quota" {
		t.Fatalf("envelopes: %+v", out.Envelopes)
	}
	if !bytes.Equal(out.Body, in.Body) {
		t.Fatalf("body %q", out.Body)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left in stream", buf.Len())
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		m := sample()
		m.RequestID = uint64(i)
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.RequestID != uint64(i) {
			t.Fatalf("frame %d has id %d", i, m.RequestID)
		}
	}
}

func TestBadMagic(t *testing.T) {
	e := xdr.NewEncoder(16)
	e.PutUint32(8)
	e.PutUint32(0xdeadbeef)
	e.PutUint32(Version)
	_, err := Read(bytes.NewReader(e.Bytes()))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[11] = 99 // version lives after the length (4) and magic (4)
	_, err := Read(bytes.NewReader(b))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var hdr [4]byte
	n := uint32(MaxFrame + 1)
	hdr[0], hdr[1], hdr[2], hdr[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	_, err := Read(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("want error on truncated frame")
	}
}

func TestEnvelopeLimit(t *testing.T) {
	m := sample()
	m.Envelopes = make([]Envelope, 65)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("want envelope-limit error")
	}
}

func TestMsgTypeString(t *testing.T) {
	cases := map[MsgType]string{TRequest: "request", TReply: "reply", TFault: "fault", TControl: "control", MsgType(9): "msgtype(9)"}
	for in, want := range cases {
		if in.String() != want {
			t.Errorf("%d.String() = %q want %q", uint32(in), in.String(), want)
		}
	}
}

func TestFaultRoundTrip(t *testing.T) {
	req := sample()
	in := &Fault{Code: FaultQuota, Message: "out of requests", Data: []byte{9}}
	reply, err := FaultMessage(req, in)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TFault || reply.RequestID != req.RequestID {
		t.Fatalf("reply header %+v", reply)
	}
	got := DecodeFault(reply.Body)
	var f *Fault
	if !errors.As(got, &f) {
		t.Fatalf("DecodeFault returned %T", got)
	}
	if f.Code != FaultQuota || f.Message != "out of requests" || !bytes.Equal(f.Data, []byte{9}) {
		t.Fatalf("fault %+v", f)
	}
}

func TestAsFaultWrapsPlainErrors(t *testing.T) {
	f := AsFault(errors.New("boom"))
	if f.Code != FaultInternal || f.Message != "boom" {
		t.Fatalf("%+v", f)
	}
	orig := Faultf(FaultAuth, "denied %s", "alice")
	if got := AsFault(fmt.Errorf("call failed: %w", orig)); got != orig {
		t.Fatal("AsFault must unwrap")
	}
	if orig.Message != "denied alice" {
		t.Fatalf("Faultf message %q", orig.Message)
	}
}

func TestFaultCodeStrings(t *testing.T) {
	for c := FaultInternal; c <= FaultBadRequest; c++ {
		if s := c.String(); s == "" || s[0] == 'f' && s != "fault(0)" && len(s) > 6 && s[:6] == "fault(" {
			t.Errorf("code %d has no name: %q", c, s)
		}
	}
	if FaultCode(99).String() != "fault(99)" {
		t.Fatal("unknown code formatting")
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Code: FaultMoved, Message: "gone"}
	want := "remote fault [moved]: gone"
	if f.Error() != want {
		t.Fatalf("Error() = %q want %q", f.Error(), want)
	}
}

// Property: arbitrary messages survive the frame round trip.
func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(reqID uint64, object, method string, epoch uint64, envIDs []string, body []byte) bool {
		in := &Message{Type: TReply, RequestID: reqID, Object: object, Method: method, Epoch: epoch, Body: body}
		for i, id := range envIDs {
			if i == 8 {
				break
			}
			in.Envelopes = append(in.Envelopes, Envelope{ID: id, Data: []byte(id)})
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(out.Envelopes) == 0 {
			out.Envelopes = nil
		}
		if len(in.Envelopes) == 0 {
			in.Envelopes = nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Read never panics on arbitrary bytes.
func TestQuickReadRobust(t *testing.T) {
	f := func(p []byte) bool {
		// The property under test is "no panic"; the decode error (or
		// message) itself is irrelevant here.
		_, _ = Read(bytes.NewReader(p))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// encodeVersion hand-rolls a frame in an older wire version so decoder
// back-compat can be checked against real layouts.
func encodeVersion(ver uint32, m *Message) []byte {
	e := xdr.NewEncoder(64 + len(m.Body))
	e.PutUint32(0) // length placeholder
	e.PutUint32(Magic)
	e.PutUint32(ver)
	e.PutUint32(uint32(m.Type))
	e.PutUint64(m.RequestID)
	e.PutString(m.Object)
	e.PutString(m.Method)
	e.PutUint64(m.Epoch)
	if ver >= 2 {
		e.PutInt64(m.Deadline)
	}
	if ver >= 3 {
		e.PutUint64(m.TraceID)
		e.PutUint64(m.SpanID)
	}
	if ver >= 4 {
		e.PutUint32(m.Flags)
	}
	e.PutUint32(uint32(len(m.Envelopes)))
	for _, env := range m.Envelopes {
		e.PutString(env.ID)
		e.PutOpaque(env.Data)
	}
	e.PutOpaque(m.Body)
	buf := e.Bytes()
	n := len(buf) - 4
	buf[0], buf[1], buf[2], buf[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	return buf
}

func TestOldVersionFramesDecode(t *testing.T) {
	for _, ver := range []uint32{1, 2} {
		in := sample()
		in.Deadline = 123456789
		in.TraceID, in.SpanID = 7, 8 // must NOT survive in old formats
		out, err := Read(bytes.NewReader(encodeVersion(ver, in)))
		if err != nil {
			t.Fatalf("v%d: %v", ver, err)
		}
		if out.Object != in.Object || out.Method != in.Method || !bytes.Equal(out.Body, in.Body) {
			t.Fatalf("v%d: header/body mismatch: %+v", ver, out)
		}
		if ver < 2 && out.Deadline != 0 {
			t.Fatalf("v%d frame decoded with deadline %d", ver, out.Deadline)
		}
		if ver >= 2 && out.Deadline != in.Deadline {
			t.Fatalf("v%d frame lost deadline: %d", ver, out.Deadline)
		}
		if out.TraceID != 0 || out.SpanID != 0 {
			t.Fatalf("v%d frame decoded with trace ids %d/%d, want 0/0", ver, out.TraceID, out.SpanID)
		}
		if out.Flags != 0 {
			t.Fatalf("v%d frame decoded with flags %#x, want 0", ver, out.Flags)
		}
	}
}

// Traced v3 frames predate the keep-hint bit; the decoder must mark
// them as retention candidates so tail keepers buffer conservatively.
// Untraced v3 frames must stay flagless.
func TestV3FramesDecodeConservativeKeepHint(t *testing.T) {
	traced := sample()
	traced.TraceID, traced.SpanID = 7, 8
	out, err := Read(bytes.NewReader(encodeVersion(3, traced)))
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != 7 || out.SpanID != 8 {
		t.Fatalf("v3 trace ids %d/%d, want 7/8", out.TraceID, out.SpanID)
	}
	if !out.KeepHint() {
		t.Fatal("traced v3 frame decoded without keep-hint")
	}
	untraced := sample()
	out, err = Read(bytes.NewReader(encodeVersion(3, untraced)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Flags != 0 {
		t.Fatalf("untraced v3 frame decoded with flags %#x", out.Flags)
	}
}

// framedVersion reads the version word out of an encoded frame
// (length prefix, magic, version).
func framedVersion(t *testing.T, m *Message) uint32 {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	return uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
}

// The encoder emits the lowest version that represents the message
// exactly, so mixed-version deployments keep decoding each other:
// only a flags word a v3 decoder would mis-infer needs v4 framing.
func TestEncoderEmitsMinimalVersion(t *testing.T) {
	untraced := sample()
	if v := framedVersion(t, untraced); v != 3 {
		t.Fatalf("untraced frame emitted v%d, want v3", v)
	}
	hinted := sample()
	hinted.TraceID, hinted.SpanID = 7, 8
	hinted.SetKeepHint(true) // matches the v3 traced-implies-hinted inference
	if v := framedVersion(t, hinted); v != 3 {
		t.Fatalf("traced+hinted frame emitted v%d, want v3", v)
	}
	unhinted := sample()
	unhinted.TraceID, unhinted.SpanID = 7, 8 // hint cleared: only v4 can say so
	if v := framedVersion(t, unhinted); v != 4 {
		t.Fatalf("traced+unhinted frame emitted v%d, want v4", v)
	}
	future := sample()
	future.Flags = 1 << 7 // unknown bit: v3 would drop it
	if v := framedVersion(t, future); v != 4 {
		t.Fatalf("future-flagged frame emitted v%d, want v4", v)
	}
	// The v3-framed hinted message still decodes with its hint.
	var buf bytes.Buffer
	if err := Write(&buf, hinted); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !out.KeepHint() {
		t.Fatal("v3-framed hinted message lost its keep-hint")
	}
}

func TestKeepHintRoundTrip(t *testing.T) {
	in := sample()
	in.TraceID, in.SpanID = 11, 12
	in.SetKeepHint(true)
	if !in.KeepHint() {
		t.Fatal("SetKeepHint(true) did not set the bit")
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !out.KeepHint() {
		t.Fatal("keep-hint lost in round trip")
	}
	out.SetKeepHint(false)
	if out.KeepHint() || out.Flags != 0 {
		t.Fatalf("SetKeepHint(false) left flags %#x", out.Flags)
	}
	// Unknown future bits must survive a round trip untouched.
	in.Flags = FlagKeepHint | 1<<7
	buf.Reset()
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	if out, err = Read(&buf); err != nil {
		t.Fatal(err)
	}
	if out.Flags != FlagKeepHint|1<<7 {
		t.Fatalf("flags %#x, want %#x", out.Flags, FlagKeepHint|1<<7)
	}
}

func TestTraceIDsRoundTrip(t *testing.T) {
	in := sample()
	in.TraceID, in.SpanID = 0xdeadbeefcafe, 0x1234
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != in.TraceID || out.SpanID != in.SpanID {
		t.Fatalf("trace ids %d/%d, want %d/%d", out.TraceID, out.SpanID, in.TraceID, in.SpanID)
	}
	if out.Deadline != in.Deadline {
		t.Fatalf("deadline %d want %d", out.Deadline, in.Deadline)
	}
}

func TestWriteOverPipe(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		// A write failure surfaces as a Read error on c2 below; this
		// goroutine may not call t.Fatal.
		_ = Write(c1, sample())
	}()
	m, err := Read(c2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Method != "Exchange" {
		t.Fatalf("method %q", m.Method)
	}
}

func TestReadEOF(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	m := sample()
	m.Body = make([]byte, 4096)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
