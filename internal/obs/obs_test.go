package obs

import (
	"testing"
	"time"

	"openhpcxx/internal/clock"
)

// capture is a minimal recorder for tracer-level tests.
type capture struct{ spans []Span }

func (c *capture) Record(s Span) { c.spans = append(c.spans, s) }

func TestDisabledTracerCostsNothingAndMintsNothing(t *testing.T) {
	tr := NewTracer(nil)
	if tr.Enabled() {
		t.Fatal("tracer with no recorder reports enabled")
	}
	if a := tr.StartRoot(KindClient, "invoke"); a != nil {
		t.Fatal("StartRoot must return nil when disabled")
	}
	if a := tr.StartChild(7, 8, KindServer, "dispatch"); a != nil {
		t.Fatal("StartChild must return nil when disabled")
	}
	// The whole Active surface is nil-safe.
	var a *Active
	a.SetRPC("o", "m")
	a.SetProto("p", "e")
	a.SetCaps("c")
	a.SetCause("x")
	a.SetBatch(3)
	a.SetBytes(9)
	a.SetErr(nil)
	if a.TraceID() != 0 || a.SpanID() != 0 {
		t.Fatal("nil span must have zero ids")
	}
	if a.Child("sub") != nil {
		t.Fatal("nil span's child must be nil")
	}
	a.End()
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Recorder() != nil {
		t.Fatal("nil tracer has a recorder")
	}
	if tr.StartChild(1, 2, KindClient, "x") != nil {
		t.Fatal("nil tracer minted a span")
	}
}

func TestRootAndChildSpansShareTrace(t *testing.T) {
	tr := NewTracer(nil)
	rec := &capture{}
	tr.SetRecorder(rec)

	root := tr.StartRoot(KindClient, "invoke")
	if root == nil {
		t.Fatal("enabled tracer returned nil root")
	}
	root.SetRPC("ctx/obj-1", "Echo")
	child := root.Child("select")
	child.SetProto("hpcx-tcp", "sim://mB:7000")
	child.End()
	// Server continues the trace from wire-carried IDs.
	srv := tr.StartChild(root.TraceID(), root.SpanID(), KindServer, "dispatch")
	srv.End()
	root.SetErr(nil)
	root.End()

	if len(rec.spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(rec.spans))
	}
	for _, s := range rec.spans {
		if s.Trace != TraceID(root.TraceID()) {
			t.Fatalf("span %q trace %d, want %d", s.Name, s.Trace, root.TraceID())
		}
	}
	sel, disp, inv := rec.spans[0], rec.spans[1], rec.spans[2]
	if sel.Name != "select" || sel.Parent != inv.ID || sel.Proto != "hpcx-tcp" {
		t.Fatalf("select span: %+v", sel)
	}
	if disp.Kind != KindServer || disp.Parent != inv.ID {
		t.Fatalf("dispatch span: %+v", disp)
	}
	if inv.Name != "invoke" || inv.Object != "ctx/obj-1" || inv.Method != "Echo" || inv.Parent != 0 {
		t.Fatalf("root span: %+v", inv)
	}
	if !(inv.Seq < sel.Seq && sel.Seq < disp.Seq) {
		t.Fatalf("seq not in start order: %d %d %d", inv.Seq, sel.Seq, disp.Seq)
	}
}

func TestStartChildZeroTraceIsUntraced(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetRecorder(&capture{})
	if tr.StartChild(0, 0, KindServer, "dispatch") != nil {
		t.Fatal("zero trace id (untraced peer) must not start a span")
	}
}

func TestSpanDurationsFollowInjectedClock(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	tr := NewTracer(fc)
	rec := &capture{}
	tr.SetRecorder(rec)

	a := tr.StartRoot(KindClient, "invoke")
	fc.Advance(250 * time.Millisecond)
	a.End()
	if d := rec.spans[0].Dur; d != 250*time.Millisecond {
		t.Fatalf("span duration %v, want 250ms (simulated)", d)
	}
	if got := rec.spans[0].Start; !got.Equal(time.Unix(100, 0)) {
		t.Fatalf("span start %v, want fake epoch", got)
	}
}

func TestRecorderSwapMidSpan(t *testing.T) {
	tr := NewTracer(nil)
	first, second := &capture{}, &capture{}
	tr.SetRecorder(first)
	a := tr.StartRoot(KindClient, "invoke")
	tr.SetRecorder(second)
	a.End()
	if len(first.spans) != 0 || len(second.spans) != 1 {
		t.Fatalf("span went to wrong recorder: first=%d second=%d", len(first.spans), len(second.spans))
	}
	tr.SetRecorder(nil)
	if tr.Enabled() {
		t.Fatal("tracer still enabled after recorder removal")
	}
	b := tr.StartRoot(KindClient, "invoke")
	if b != nil {
		t.Fatal("span started while disabled")
	}
}

func TestKindString(t *testing.T) {
	if KindClient.String() != "client" || KindServer.String() != "server" {
		t.Fatalf("kind strings: %q %q", KindClient, KindServer)
	}
}

func TestSetErrRecordsMessage(t *testing.T) {
	tr := NewTracer(nil)
	rec := &capture{}
	tr.SetRecorder(rec)
	a := tr.StartRoot(KindClient, "invoke")
	a.SetErr(errTest)
	a.End()
	if rec.spans[0].Err != "boom" {
		t.Fatalf("err %q", rec.spans[0].Err)
	}
}

var errTest = errSentinel("boom")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

// BenchmarkUntracedStartRoot measures the no-recorder fast path the
// invocation hot path pays per call: one nil check and one atomic load.
// The acceptance bar is "a few hundred ns" — this is a few ns.
func BenchmarkUntracedStartRoot(b *testing.B) {
	tr := NewTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := tr.StartRoot(KindClient, "invoke")
		a.SetRPC("o", "m")
		a.SetBytes(16)
		a.SetErr(nil)
		a.End()
	}
}

// BenchmarkTracedSpan measures the full record path with a ring
// recorder installed.
func BenchmarkTracedSpan(b *testing.B) {
	tr := NewTracer(nil)
	tr.SetRecorder(NewRing(1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := tr.StartRoot(KindClient, "invoke")
		a.SetRPC("o", "m")
		a.End()
	}
}
