// Figure R1: availability of a remote service through a scripted fault
// schedule — a machine crash and restart, then a one-way blackhole — with
// the ORB's failover machinery (deadlines, per-endpoint circuit breakers,
// fall-through down the reference's ordered protocol table, and probe-
// driven re-promotion) switched on versus off.
//
// The deployment is a client plus two replicas of a stateless servant:
// the preferred table entry points at the primary machine, the second at
// a backup. The paper's protocol table (§3.1) ranks how a server is
// willing to be accessed; this figure shows the same ordered table doing
// double duty as a failover chain: when the primary's breaker trips, the
// next entry serves, and when the background probe proves the primary
// recovered, traffic is promoted back.
package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/health"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
)

// R1 figure mode names.
const (
	ModeFailover   = "failover"
	ModeNoFailover = "no-failover"
	R1FigureTitle  = "Figure R1: availability under crash/restart and blackhole faults"
)

// r1SimPort is the primary's fixed stream port, so the restart hook can
// re-bind the same address the protocol table advertises.
const r1SimPort = 7101

// R1Config parameterizes the availability experiment.
type R1Config struct {
	// Profile shapes the LAN joining client, primary, and backup
	// (default ProfileEthernet). The netsim shapes traffic in real time,
	// so the fault schedule below runs on the wall clock.
	Profile netsim.LinkProfile
	// Duration is the total run length (default 1.2s). The schedule
	// scales with it: crash at 1/6, restart at 2/5, blackhole at 3/5,
	// heal at 3/4.
	Duration time.Duration
	// Deadline bounds each call (default 50ms); it travels in the wire
	// header and is enforced client-side through the call context.
	Deadline time.Duration
	// Pace is the gap between consecutive calls (default 1ms).
	Pace time.Duration
	// Ints is the array length exchanged per call (default 16).
	Ints int
	// Clock paces the call loop (default the real clock, matching the
	// real-time netsim shaping). Tests inject a fake to make pacing
	// cost simulated time only.
	Clock clock.Clock
	// OnRuntime, when set, is invoked with each mode's runtime right
	// after its deployment is built — the hook ohpc-bench uses to
	// attach the -introspect telemetry plane so /statusz and /varz can
	// be watched live through the fault schedule. The returned cleanup
	// (may be nil) runs before that mode's runtime shuts down.
	OnRuntime func(mode string, rt *core.Runtime) func()
}

func (c *R1Config) fill() {
	if c.Profile.Name == "" {
		c.Profile = netsim.ProfileEthernet
	}
	if c.Duration <= 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 50 * time.Millisecond
	}
	if c.Pace <= 0 {
		c.Pace = time.Millisecond
	}
	if c.Ints <= 0 {
		c.Ints = 16
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
}

// R1Point is one row of the figure: one failover mode through the same
// fault schedule.
type R1Point struct {
	Mode string `json:"mode"`
	// Total calls issued; OK completed; Expired hit their deadline;
	// Failed errored any other way.
	Total   int `json:"total"`
	OK      int `json:"ok"`
	Expired int `json:"expired"`
	Failed  int `json:"failed"`
	// Availability is OK/Total.
	Availability float64 `json:"availability"`
	// P50/P99 are latency percentiles over successful calls.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Promoted reports whether the GP ended the run bound to the
	// preferred (primary) table entry again — probe-driven re-promotion
	// after the faults healed.
	Promoted bool `json:"promoted"`
}

// R1Result is the whole figure.
type R1Result struct {
	Profile  string        `json:"profile"`
	Duration time.Duration `json:"duration_ns"`
	Deadline time.Duration `json:"deadline_ns"`
	// Schedule describes the fault events, in order.
	Schedule []string  `json:"schedule"`
	Points   []R1Point `json:"points"`
}

// r1Deployment is one mode's testbed: client, primary, backup.
type r1Deployment struct {
	Deployment
	primary *core.Context
	ref     *core.ObjectRef
}

const r1Object = core.ObjectID("r1/exchange")

func newR1Deployment(cfg R1Config, failover bool) (*r1Deployment, error) {
	n := netsim.New()
	n.AddLAN("lan", "campus", cfg.Profile)
	n.MustAddMachine("client-m", "lan")
	n.MustAddMachine("primary-m", "lan")
	n.MustAddMachine("backup-m", "lan")
	rt := newRuntime(n, "bench-r1")
	rt.SetFailover(failover)
	if failover {
		// Fast probes so re-promotion lands inside the run; bounded so a
		// probe into the blackhole cannot wedge the prober.
		rt.SetHealthOptions(health.Options{
			ProbeInterval: 20 * time.Millisecond,
			ProbeTimeout:  150 * time.Millisecond,
		})
	}
	fail := func(err error) (*r1Deployment, error) {
		rt.Close()
		return nil, err
	}
	clientCtx, err := rt.NewContext("client", "client-m")
	if err != nil {
		return fail(err)
	}
	primary, err := rt.NewContext("primary", "primary-m")
	if err != nil {
		return fail(err)
	}
	if err := primary.BindSim(r1SimPort); err != nil {
		return fail(err)
	}
	backup, err := rt.NewContext("backup", "backup-m")
	if err != nil {
		return fail(err)
	}
	if err := backup.BindSim(0); err != nil {
		return fail(err)
	}
	// The same stateless servant on both machines, under one object id:
	// the backup is a replica, and the reference's ordered table is the
	// failover chain.
	impl, methods := ExchangeActivator()
	s, err := primary.ExportAs(r1Object, ExchangeIface, impl, methods, 0)
	if err != nil {
		return fail(err)
	}
	bimpl, bmethods := ExchangeActivator()
	if _, err := backup.ExportAs(r1Object, ExchangeIface, bimpl, bmethods, 0); err != nil {
		return fail(err)
	}
	pe, err := primary.EntryStream()
	if err != nil {
		return fail(err)
	}
	be, err := backup.EntryStream()
	if err != nil {
		return fail(err)
	}
	return &r1Deployment{
		Deployment: Deployment{Net: n, Runtime: rt, Client: clientCtx},
		primary:    primary,
		ref:        primary.NewRef(s, pe, be),
	}, nil
}

// r1Plan builds the fault schedule for one run, scaled to its duration.
func r1Plan(cfg R1Config, d *r1Deployment) (*netsim.FaultPlan, []string) {
	crashAt := cfg.Duration / 6
	restartAt := cfg.Duration * 2 / 5
	holeAt := cfg.Duration * 3 / 5
	healAt := cfg.Duration * 3 / 4
	plan := new(netsim.FaultPlan)
	plan.CrashAt(crashAt, "primary-m")
	plan.RestartAt(restartAt, "primary-m", func() {
		// The supervisor brings the service back on the same port the
		// protocol table advertises.
		_ = d.primary.BindSim(r1SimPort)
	})
	plan.BlackholeAt(holeAt, "client-m", "primary-m", true)
	plan.BlackholeAt(healAt, "client-m", "primary-m", false)
	return plan, []string{
		fmt.Sprintf("%6v  crash primary-m", crashAt.Round(time.Millisecond)),
		fmt.Sprintf("%6v  restart primary-m (re-bind sim port %d)", restartAt.Round(time.Millisecond), r1SimPort),
		fmt.Sprintf("%6v  blackhole client-m -> primary-m", holeAt.Round(time.Millisecond)),
		fmt.Sprintf("%6v  heal blackhole", healAt.Round(time.Millisecond)),
	}
}

// runR1Mode drives the call stream through the fault schedule under one
// failover setting.
func runR1Mode(cfg R1Config, failover bool) (R1Point, []string, error) {
	d, err := newR1Deployment(cfg, failover)
	if err != nil {
		return R1Point{}, nil, err
	}
	defer d.Close()

	mode := ModeNoFailover
	if failover {
		mode = ModeFailover
	}
	if cfg.OnRuntime != nil {
		if done := cfg.OnRuntime(mode, d.Runtime); done != nil {
			defer done()
		}
	}
	gp := d.Client.NewGlobalPtr(d.ref)
	gp.SetDefaultDeadline(cfg.Deadline)
	arr := &core.Int32Slice{V: make([]int32, cfg.Ints)}
	for i := range arr.V {
		arr.V[i] = int32(i)
	}
	// Warm-up before the schedule starts: selection + connection setup.
	if _, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr); err != nil {
		return R1Point{}, nil, errs.Wrapf(errs.CodeOf(err), err, "bench: %s warm-up", mode)
	}

	plan, schedule := r1Plan(cfg, d)
	run := plan.Run(d.Net)
	defer run.Stop()

	pt := R1Point{Mode: mode}
	var latencies []time.Duration
	start := time.Now()
	for time.Since(start) < cfg.Duration {
		callCtx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
		t0 := time.Now()
		_, err := core.CallCtx[*core.Int32Slice, core.Int32Slice](callCtx, gp, "exchange", arr)
		lat := time.Since(t0)
		cancel()
		pt.Total++
		switch {
		case err == nil:
			pt.OK++
			latencies = append(latencies, lat)
		case errors.Is(err, context.DeadlineExceeded) || isFaultCode(err, wire.FaultExpired):
			pt.Expired++
		default:
			pt.Failed++
		}
		clock.Sleep(cfg.Clock, cfg.Pace)
	}
	run.Wait()

	if pt.Total > 0 {
		pt.Availability = float64(pt.OK) / float64(pt.Total)
	}
	pt.P50, pt.P99 = percentiles(latencies)
	if idx, _, err := gp.SelectedEntry(); err == nil {
		pt.Promoted = idx == 0
	}
	return pt, schedule, nil
}

// isFaultCode reports whether err carries the given wire fault code.
func isFaultCode(err error, code wire.FaultCode) bool {
	var f *wire.Fault
	return errors.As(err, &f) && f.Code == code
}

// percentiles returns the p50 and p99 of the sample (zero when empty).
func percentiles(ls []time.Duration) (p50, p99 time.Duration) {
	if len(ls) == 0 {
		return 0, 0
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	idx := func(q float64) time.Duration {
		i := int(q * float64(len(ls)-1))
		return ls[i]
	}
	return idx(0.50), idx(0.99)
}

// RunFigureR1 produces the availability figure: the same fault schedule
// with failover on and off.
func RunFigureR1(cfg R1Config) (*R1Result, error) {
	cfg.fill()
	res := &R1Result{
		Profile:  cfg.Profile.Name,
		Duration: cfg.Duration,
		Deadline: cfg.Deadline,
	}
	for _, failover := range []bool{true, false} {
		pt, schedule, err := runR1Mode(cfg, failover)
		if err != nil {
			return nil, err
		}
		if res.Schedule == nil {
			res.Schedule = schedule
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// FormatFigureR1 renders the figure as a text table.
func FormatFigureR1(r *R1Result) string {
	out := fmt.Sprintf("%s\n  profile %s, run %v, per-call deadline %v\n  fault schedule:\n",
		R1FigureTitle, r.Profile, r.Duration.Round(time.Millisecond), r.Deadline.Round(time.Millisecond))
	for _, ev := range r.Schedule {
		out += "    " + ev + "\n"
	}
	out += fmt.Sprintf("\n  %-12s %7s %6s %8s %7s %13s %10s %10s %9s\n",
		"mode", "total", "ok", "expired", "failed", "availability", "p50", "p99", "promoted")
	for _, p := range r.Points {
		out += fmt.Sprintf("  %-12s %7d %6d %8d %7d %12.2f%% %10v %10v %9v\n",
			p.Mode, p.Total, p.OK, p.Expired, p.Failed, 100*p.Availability,
			p.P50.Round(10*time.Microsecond), p.P99.Round(10*time.Microsecond), p.Promoted)
	}
	var on, off float64
	for _, p := range r.Points {
		if p.Mode == ModeFailover {
			on = p.Availability
		} else {
			off = p.Availability
		}
	}
	out += fmt.Sprintf("\n  failover keeps the service at %.1f%% availability through the schedule; without it the same faults leave %.1f%%\n",
		100*on, 100*off)
	return out
}
