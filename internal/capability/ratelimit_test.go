package capability

import (
	"errors"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/wire"
)

func TestRateLimitBurstAndRefill(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	f := &Frame{Dir: Request, Clock: fc}
	r := MustNewRateLimit(2, 3) // 2/s, burst 3

	for i := 0; i < 3; i++ {
		if _, _, err := r.Process(f, nil); err != nil {
			t.Fatalf("burst %d: %v", i, err)
		}
	}
	_, _, err := r.Process(f, nil)
	var fault *wire.Fault
	if !errors.As(err, &fault) || fault.Code != wire.FaultQuota {
		t.Fatalf("over burst: %v", err)
	}

	// Half a second refills one token (2/s).
	fc.Advance(500 * time.Millisecond)
	if _, _, err := r.Process(f, nil); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if _, _, err := r.Process(f, nil); err == nil {
		t.Fatal("second request after single refill admitted")
	}

	// A long idle period caps at burst.
	fc.Advance(time.Hour)
	if r.Tokens() > 3 {
		t.Fatalf("tokens %f exceed burst before refresh", r.Tokens())
	}
	for i := 0; i < 3; i++ {
		if _, _, err := r.Process(f, nil); err != nil {
			t.Fatalf("after idle %d: %v", i, err)
		}
	}
	if _, _, err := r.Process(f, nil); err == nil {
		t.Fatal("bucket not capped at burst")
	}
}

func TestRateLimitRepliesFree(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	r := MustNewRateLimit(1, 1)
	rf := &Frame{Dir: Reply, Clock: fc}
	for i := 0; i < 5; i++ {
		if _, _, err := r.Process(rf, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Unprocess(rf, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if r.Tokens() != 1 {
		t.Fatalf("replies charged the bucket: %f", r.Tokens())
	}
}

func TestRateLimitConfigRoundTrip(t *testing.T) {
	r := MustNewRateLimit(7.5, 4)
	cfg, err := r.Config()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(KindRateLimit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	twin := c.(*RateLimit)
	if twin.perSecond != 7.5 || twin.burst != 4 || twin.Tokens() != 4 {
		t.Fatalf("twin %+v", twin)
	}
}

func TestRateLimitValidation(t *testing.T) {
	if _, err := NewRateLimit(0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewRateLimit(1, 0); err == nil {
		t.Fatal("zero burst accepted")
	}
}

func TestRateLimitEndToEnd(t *testing.T) {
	rt := world(t)
	fc := clock.NewFake(time.Unix(500, 0))
	rt.SetClock(fc)
	server, s := echoServer(t, rt, "server", "m1")
	client, _ := rt.NewContext("client", "m2")
	base, _ := server.EntryStream()
	glueE, err := GlueEntry(server, "throttled", base, MustNewRateLimit(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	gp := client.NewGlobalPtr(server.NewRef(s, glueE))

	for i := 0; i < 2; i++ {
		if _, err := gp.Invoke("echo", []byte("x")); err != nil {
			t.Fatalf("burst call %d: %v", i, err)
		}
	}
	_, err = gp.Invoke("echo", []byte("x"))
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultQuota {
		t.Fatalf("over rate: %v", err)
	}
	fc.Advance(time.Second)
	if _, err := gp.Invoke("echo", []byte("x")); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}
