// Weathersim reproduces the paper's opening scenario (§1): a large
// environmental simulation running at a national lab, accessed by
// clients with very different requirements:
//
//   - a local analyst on the lab's LAN gets the full interface with no
//     authentication and no encryption;
//   - an internet collaborator gets a restricted interface (forecasts
//     only), authenticated and encrypted per request;
//   - a commercial client pays per access and is cut off by a quota
//     capability when the budget runs out.
//
// All three hold ordinary global pointers; the differences live entirely
// in the object references' protocol tables and capability sets.
//
//	go run ./examples/weathersim
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/registry"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// --- the simulation service -------------------------------------------

// weatherSim is a toy environmental model: a grid of temperatures that
// relaxes toward its neighbors each step; observations can be fed in.
type weatherSim struct {
	mu   sync.Mutex
	grid []float64
	step int
}

func newWeatherSim(n int) *weatherSim {
	g := make([]float64, n)
	for i := range g {
		g[i] = 15 + 10*math.Sin(float64(i)/float64(n)*2*math.Pi)
	}
	return &weatherSim{grid: g}
}

func (w *weatherSim) advance() {
	w.mu.Lock()
	defer w.mu.Unlock()
	next := make([]float64, len(w.grid))
	for i := range w.grid {
		l := w.grid[(i+len(w.grid)-1)%len(w.grid)]
		r := w.grid[(i+1)%len(w.grid)]
		next[i] = 0.5*w.grid[i] + 0.25*(l+r)
	}
	w.grid = next
	w.step++
}

type regionReq struct{ Lo, Hi int32 }

func (r *regionReq) MarshalXDR(e *xdr.Encoder) error {
	e.PutInt32(r.Lo)
	e.PutInt32(r.Hi)
	return nil
}

func (r *regionReq) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if r.Lo, err = d.Int32(); err != nil {
		return err
	}
	r.Hi, err = d.Int32()
	return err
}

type feedReq struct {
	At    int32
	Value float64
}

func (r *feedReq) MarshalXDR(e *xdr.Encoder) error {
	e.PutInt32(r.At)
	e.PutFloat64(r.Value)
	return nil
}

func (r *feedReq) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if r.At, err = d.Int32(); err != nil {
		return err
	}
	r.Value, err = d.Float64()
	return err
}

// forecast returns the temperature map for a region.
func (w *weatherSim) forecast(r *regionReq) (*core.Float64Slice, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if r.Lo < 0 || int(r.Hi) > len(w.grid) || r.Lo >= r.Hi {
		return nil, wire.Faultf(wire.FaultBadRequest, "bad region [%d,%d)", r.Lo, r.Hi)
	}
	out := make([]float64, r.Hi-r.Lo)
	copy(out, w.grid[r.Lo:r.Hi])
	return &core.Float64Slice{V: out}, nil
}

// feed injects an observation — a privileged operation.
func (w *weatherSim) feed(r *feedReq) (*core.Empty, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if r.At < 0 || int(r.At) >= len(w.grid) {
		return nil, wire.Faultf(wire.FaultBadRequest, "bad cell %d", r.At)
	}
	w.grid[r.At] = r.Value
	return &core.Empty{}, nil
}

func main() {
	// Topology: the lab's LAN, and the wider world.
	net := netsim.New()
	net.AddLAN("lab-lan", "lab-campus", netsim.ProfileATM155.Scaled(16))
	net.AddLAN("isp-lan", "internet", netsim.ProfileEthernet.Scaled(16))
	net.WANLink = netsim.ProfileWAN.Scaled(16)
	net.MustAddMachine("supercomputer", "lab-lan")
	net.MustAddMachine("analyst-ws", "lab-lan")
	net.MustAddMachine("collab-pc", "isp-lan")
	net.MustAddMachine("corp-box", "isp-lan")

	rt := core.NewRuntime(net, "weathersim")
	capability.Install(rt.DefaultPool())
	defer rt.Close()

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	lab, err := rt.NewContext("lab", "supercomputer")
	must(err)
	must(lab.BindSim(9000))

	sim := newWeatherSim(256)
	for i := 0; i < 10; i++ {
		sim.advance()
	}

	// Full interface for trusted users; restricted interface (forecasts
	// only) for everyone else — two servants over one simulation.
	full, err := lab.Export("weather.Full", sim, map[string]core.Method{
		"forecast": core.Handler(sim.forecast),
		"feed":     core.Handler(sim.feed),
	})
	must(err)
	restricted, err := lab.Export("weather.Forecasts", sim, map[string]core.Method{
		"forecast": core.Handler(sim.forecast),
	})
	must(err)

	streamE, err := lab.EntryStream()
	must(err)

	// Local analysts: plain protocol, full interface.
	analystRef := lab.NewRef(full, streamE)

	// Internet collaborators: restricted interface behind
	// authentication + encryption, both applicable only off-campus.
	secureGlue, err := capability.GlueEntry(lab, "weather-secure", streamE,
		capability.MustNewAuth("collaborator", []byte("lab-issued-secret"), capability.ScopeCrossCampus),
		capability.NewRandomEncrypt(capability.ScopeCrossCampus))
	must(err)
	collabRef := lab.NewRef(restricted, secureGlue, streamE)

	// Commercial clients: restricted interface behind a 3-request
	// pay-per-use quota (plus encryption).
	meteredGlue, err := capability.GlueEntry(lab, "weather-metered", streamE,
		capability.NewQuota(3, time.Time{}),
		capability.NewRandomEncrypt(capability.ScopeAlways))
	must(err)
	corpRef := lab.NewRef(restricted, meteredGlue)

	// Publish through the name service.
	regCtx, err := rt.NewContext("registry", "supercomputer")
	must(err)
	must(regCtx.BindSim(9001))
	_, _, err = registry.Serve(regCtx)
	must(err)
	reg := registry.NewClient(lab, registry.RefAt("sim://supercomputer:9001"))
	must(reg.Bind("weather/full", analystRef))
	must(reg.Bind("weather/collab", collabRef))
	must(reg.Bind("weather/paid", corpRef))

	// --- the analyst: full access, no capabilities ---------------------
	analyst, err := rt.NewContext("analyst", "analyst-ws")
	must(err)
	aReg := registry.NewClient(analyst, registry.RefAt("sim://supercomputer:9001"))
	aRef, err := aReg.Lookup("weather/full")
	must(err)
	aGP := analyst.NewGlobalPtr(aRef)

	_, err = core.Call[*feedReq, core.Empty](aGP, "feed", &feedReq{At: 42, Value: 31.5})
	must(err)
	f, err := core.Call[*regionReq, core.Float64Slice](aGP, "forecast", &regionReq{Lo: 40, Hi: 45})
	must(err)
	proto, _ := aGP.SelectedProtocol()
	fmt.Printf("analyst   (lab LAN)  over %-8s fed cell 42, forecast[42]=%.1f°C\n", proto, f.V[2])

	// --- the collaborator: authenticated + encrypted, no feed ----------
	collab, err := rt.NewContext("collab", "collab-pc")
	must(err)
	cReg := registry.NewClient(collab, registry.RefAt("sim://supercomputer:9001"))
	cRef, err := cReg.Lookup("weather/collab")
	must(err)
	cGP := collab.NewGlobalPtr(cRef)
	f, err = core.Call[*regionReq, core.Float64Slice](cGP, "forecast", &regionReq{Lo: 0, Hi: 8})
	must(err)
	proto, _ = cGP.SelectedProtocol()
	fmt.Printf("collab    (internet) over %-8s forecast[0..8) mean=%.1f°C (auth+encrypted)\n", proto, mean(f.V))

	// The restricted interface has no "feed".
	_, err = core.Call[*feedReq, core.Empty](cGP, "feed", &feedReq{At: 1, Value: 99})
	var fault *wire.Fault
	if errors.As(err, &fault) && fault.Code == wire.FaultNoMethod {
		fmt.Printf("collab    (internet) feed denied: %s\n", fault.Message)
	} else {
		log.Fatalf("expected no-method fault, got %v", err)
	}

	// --- the commercial client: pay-per-use ----------------------------
	corp, err := rt.NewContext("corp", "corp-box")
	must(err)
	kReg := registry.NewClient(corp, registry.RefAt("sim://supercomputer:9001"))
	kRef, err := kReg.Lookup("weather/paid")
	must(err)
	kGP := corp.NewGlobalPtr(kRef)
	for i := 1; ; i++ {
		_, err := core.Call[*regionReq, core.Float64Slice](kGP, "forecast", &regionReq{Lo: 0, Hi: 4})
		if err != nil {
			if errors.As(err, &fault) && fault.Code == wire.FaultQuota {
				fmt.Printf("corp      (paid)     request %d rejected: %s\n", i, fault.Message)
				break
			}
			log.Fatal(err)
		}
		fmt.Printf("corp      (paid)     request %d served (quota)\n", i)
	}
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
