// Package stats provides the lightweight metrics the runtime uses to
// account for protocol usage: counters and log-scale latency/size
// histograms, lock-free on the hot path. The ORB records per-protocol
// call counts, errors, payload bytes, and round-trip latencies, which
// the experiments and the ohpc-demo use to report what actually flowed
// where.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram accumulates int64 observations into power-of-two buckets:
// bucket i counts observations with bit length i (0 counts zero and
// negative values). Percentiles are therefore approximate within 2x,
// which is plenty for latency accounting.
type Histogram struct {
	buckets [65]atomic.Uint64
	sum     atomic.Int64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(int64(d / time.Microsecond))
}

// Snapshot is a consistent-enough view of a histogram.
type Snapshot struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"` // upper bound of the highest non-empty bucket
}

// Percentile returns an upper bound for the p-th percentile (p in
// (0,1]). Because observations land in power-of-two buckets, the bound
// is within 2x of the exact percentile value: for an exact percentile
// v > 0, v <= Percentile(p) < 2*v. p <= 0 returns 0; an empty
// histogram returns 0.
func (h *Histogram) Percentile(p float64) int64 {
	if p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	var counts [65]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(64)
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [65]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	quantile := func(q float64) int64 {
		target := uint64(math.Ceil(q * float64(total)))
		if target == 0 {
			target = 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= target {
				return bucketUpper(i)
			}
		}
		return bucketUpper(64)
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	for i := 64; i >= 0; i-- {
		if counts[i] > 0 {
			s.Max = bucketUpper(i)
			break
		}
	}
	return s
}

// bucketUpper is the largest value mapping to bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Registry holds named metrics. The zero value is not usable; call New.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// CounterNames lists registered counters, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegistrySnapshot is a point-in-time export of every registered
// metric — the JSON shape WriteTo emits and Runtime.MetricsSnapshot
// returns.
type RegistrySnapshot struct {
	Counters   map[string]uint64   `json:"counters"`
	Histograms map[string]Snapshot `json:"histograms"`
}

// Snapshot captures every counter value and histogram summary. Each
// metric is read atomically; the set as a whole is as consistent as a
// live system allows.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	cs := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		cs[n] = c
	}
	hs := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hs[n] = h
	}
	r.mu.Unlock()

	out := RegistrySnapshot{
		Counters:   make(map[string]uint64, len(cs)),
		Histograms: make(map[string]Snapshot, len(hs)),
	}
	for n, c := range cs {
		out.Counters[n] = c.Value()
	}
	for n, h := range hs {
		out.Histograms[n] = h.Snapshot()
	}
	return out
}

// WriteTo writes the registry snapshot as one indented JSON document —
// the export behind `ohpc-demo`'s metrics dump and Runtime metrics
// files.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	enc.SetIndent("", "  ")
	err := enc.Encode(r.Snapshot())
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Dump renders every metric as one line each, sorted by name.
func (r *Registry) Dump() string {
	r.mu.Lock()
	type namedC struct {
		name string
		c    *Counter
	}
	type namedH struct {
		name string
		h    *Histogram
	}
	cs := make([]namedC, 0, len(r.counters))
	for n, c := range r.counters {
		cs = append(cs, namedC{n, c})
	}
	hs := make([]namedH, 0, len(r.histograms))
	for n, h := range r.histograms {
		hs = append(hs, namedH{n, h})
	}
	r.mu.Unlock()

	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	var b strings.Builder
	for _, nc := range cs {
		fmt.Fprintf(&b, "%s %d\n", nc.name, nc.c.Value())
	}
	for _, nh := range hs {
		s := nh.h.Snapshot()
		fmt.Fprintf(&b, "%s count=%d mean=%.1f p50<=%d p90<=%d p99<=%d\n",
			nh.name, s.Count, s.Mean, s.P50, s.P90, s.P99)
	}
	return b.String()
}
