package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"openhpcxx/internal/stats"
)

// DefaultRingSize is the span capacity NewRing uses for n <= 0.
const DefaultRingSize = 4096

// Store is a span recorder that also retains spans for inspection —
// the read surface /tracez needs from a recorder. *Ring and
// *TailKeeper both implement it.
type Store interface {
	Recorder
	// Spans returns the retained spans, oldest first.
	Spans() []Span
	// SnapshotSince returns retained spans recorded after the cursor,
	// the count already evicted past it, and the next cursor.
	SnapshotSince(cursor uint64) (spans []Span, dropped uint64, next uint64)
	// Trace returns the retained spans of one trace in Seq order.
	Trace(TraceID) []Span
	// Total counts spans recorded over the store's lifetime.
	Total() uint64
	// WriteJSON dumps the retained spans as one JSON document.
	WriteJSON(io.Writer) error
}

// Ring is a fixed-capacity span recorder: the newest spans win, the
// oldest are overwritten. It is the per-runtime SpanRecorder behind
// `ohpc-bench -trace=` and `ohpc-demo -trace=`: cheap enough to leave
// on through a whole experiment, bounded so it cannot grow without
// limit.
type Ring struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	wrapped bool
	total   uint64

	// Optional live counters (SetMetrics): spans recorded and spans
	// evicted by the bounded buffer, so /varz rate windows show trace
	// loss as it happens instead of on /tracez polls.
	mSpans   *stats.Counter
	mDropped *stats.Counter
}

var _ Recorder = (*Ring)(nil)
var _ Store = (*Ring)(nil)

// NewRing returns a ring recorder holding up to n spans (n <= 0 uses
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{buf: make([]Span, n)}
}

// SetMetrics mirrors the ring's recorded/evicted span counts into live
// registry counters (`obs.spans_total`, `obs.dropped_spans`), making
// trace loss visible in /varz rate windows.
func (r *Ring) SetMetrics(reg *stats.Registry) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	r.mSpans = reg.Counter("obs.spans_total")
	r.mDropped = reg.Counter("obs.dropped_spans")
	r.mu.Unlock()
}

// Record implements Recorder.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	if r.wrapped && r.mDropped != nil {
		r.mDropped.Inc() // buf[next] holds a live span about to be evicted
	}
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.total++
	if r.mSpans != nil {
		r.mSpans.Inc()
	}
	r.mu.Unlock()
}

// Total reports how many spans were recorded over the ring's lifetime
// (including any that were since overwritten).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped reports how many spans the bounded buffer has evicted over
// the ring's lifetime (Total minus what is retained).
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(r.retainedLocked())
}

// retainedLocked is how many spans survive in the buffer. Caller holds mu.
func (r *Ring) retainedLocked() int {
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// spansLocked assembles the retained spans, oldest first. Caller holds mu.
func (r *Ring) spansLocked() []Span {
	if !r.wrapped {
		out := make([]Span, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Spans returns the retained spans, oldest first.
func (r *Ring) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spansLocked()
}

// SnapshotSince returns every span recorded after the given cursor that
// the bounded buffer still retains (oldest first), how many spans
// recorded after the cursor were already evicted before this call
// (dropped), and the cursor to pass next time. Cursors are lifetime
// record counts: pass 0 for "everything", then thread the returned next
// through subsequent polls. /tracez uses the dropped count to tell the
// operator how much of the trace stream the poll interval lost.
func (r *Ring) SnapshotSince(cursor uint64) (spans []Span, dropped uint64, next uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	next = r.total
	if cursor > r.total {
		// A cursor from a previous ring lifetime (Reset); start over.
		cursor = 0
	}
	oldest := r.total - uint64(r.retainedLocked()) // seq of the oldest retained span, minus one
	if cursor < oldest {
		dropped = oldest - cursor
		cursor = oldest
	}
	if want := r.total - cursor; want > 0 {
		all := r.spansLocked()
		spans = all[uint64(len(all))-want:]
	}
	return spans, dropped, next
}

// Trace returns the retained spans of one trace, in start (Seq) order.
func (r *Ring) Trace(id TraceID) []Span {
	var out []Span
	for _, s := range r.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset discards every retained span.
func (r *Ring) Reset() {
	r.mu.Lock()
	for i := range r.buf {
		r.buf[i] = Span{}
	}
	r.next, r.wrapped, r.total = 0, false, 0
	r.mu.Unlock()
}

// Export is the JSON shape WriteJSON emits.
type Export struct {
	// Total counts spans recorded over the ring's lifetime; Retained
	// is how many survive in the buffer (== len(Spans)); Dropped is
	// how many the bounded buffer evicted (Total - Retained).
	Total    uint64 `json:"total"`
	Retained int    `json:"retained"`
	Dropped  uint64 `json:"dropped"`
	Spans    []Span `json:"spans"`
}

// WriteJSON dumps the retained spans as one indented JSON document.
func (r *Ring) WriteJSON(w io.Writer) error {
	spans, dropped, total := r.SnapshotSince(0)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Export{Total: total, Retained: len(spans), Dropped: dropped, Spans: spans})
}
