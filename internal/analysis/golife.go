package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLife enforces that every goroutine spawned outside tests has a
// provable exit path. The determinism sweep and every clock.Fake test
// assume spawned goroutines are stoppable: a background loop with no
// way out survives Close(), pins its captures, and — when it waits on
// an injected clock — wedges the fake-clock advance that expects all
// waiters to drain.
//
// The check resolves each `go` statement's target (a function literal,
// or a same-package function/method declaration) and inspects its body:
// an infinite `for` loop (no condition) must contain an exit — a
// `return` on some path, a `break` out of the loop, or a terminal call
// (panic, os.Exit, runtime.Goexit) — and an empty `select{}` blocks
// forever outright. The usual correct shapes all pass: `select` on a
// stop channel or ctx.Done() with a `return` case, `for range ch`
// (exits when the channel closes), and condition-bounded loops.
// Goroutines whose target cannot be resolved statically (function
// values, cross-package calls) are the callee's obligation, checked
// where the callee lives.
var GoLife = &Analyzer{
	Name: "golife",
	Doc:  "every goroutine spawned outside tests must have a provable exit path",
	Run:  runGoLife,
}

func runGoLife(pass *Pass) {
	if pass.Unit.Test {
		return
	}
	decls := funcDeclIndex(pass)
	for _, file := range pass.Files() {
		if strings.HasSuffix(pass.Fset().Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, name := goTargetBody(pass, decls, g.Call)
			if body == nil {
				return true
			}
			if what, ok := noExitPath(pass.Info(), body); ok {
				pass.Reportf(g.Pos(), "goroutine %s has %s with no exit path (no return, break out of it, or terminal call): select on a stop channel or ctx.Done() and return", name, what)
			}
			return true
		})
	}
}

// funcDeclIndex maps each function/method object declared in the unit
// to its declaration, so `go t.loop()` resolves to loop's body.
func funcDeclIndex(pass *Pass) map[types.Object]*ast.FuncDecl {
	idx := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files() {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info().Defs[fd.Name]; obj != nil {
					idx[obj] = fd
				}
			}
		}
	}
	return idx
}

// goTargetBody resolves the body a `go` statement will run: a literal's
// body directly, or a same-unit declaration's. nil when the target is a
// function value or lives in another package.
func goTargetBody(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, "func literal"
	case *ast.Ident:
		if fd, ok := decls[pass.Info().Uses[fun]]; ok {
			return fd.Body, fun.Name
		}
	case *ast.SelectorExpr:
		if fd, ok := decls[pass.Info().Uses[fun.Sel]]; ok {
			return fd.Body, fun.Sel.Name
		}
	}
	return nil, ""
}

// noExitPath scans a goroutine body for a construct that provably never
// lets the goroutine exit: an infinite `for` with no way out, or an
// empty `select{}`. Nested function literals are their own goroutines'
// business and are pruned.
func noExitPath(info *types.Info, body *ast.BlockStmt) (string, bool) {
	var what string
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if what != "" {
			return false
		}
		switch stmt := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if len(stmt.Body.List) == 0 {
				what = "an empty select{} (blocks forever)"
				return false
			}
		case *ast.ForStmt:
			if stmt.Cond != nil {
				return true
			}
			label := ""
			if len(stack) > 0 {
				if ls, ok := stack[len(stack)-1].(*ast.LabeledStmt); ok {
					label = ls.Label.Name
				}
			}
			if !loopHasExit(info, stmt.Body, label) {
				what = "an infinite loop"
				return false
			}
		}
		return true
	})
	return what, what != ""
}

// loopHasExit reports whether an infinite loop's body contains a way
// out: a return (at any depth, not crossing a function literal), a
// break that targets this loop (unlabeled and not captured by a nested
// loop/switch/select, or labeled with the loop's own label), or a
// terminal call.
func loopHasExit(info *types.Info, body *ast.BlockStmt, label string) bool {
	found := false
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		switch stmt := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if stmt.Tok != token.BREAK {
				return true
			}
			if stmt.Label != nil {
				found = label != "" && stmt.Label.Name == label
				return true
			}
			// An unlabeled break exits the innermost for/switch/select;
			// it reaches this loop only if none intervene.
			for _, anc := range stack {
				switch anc.(type) {
				case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
					return true
				}
			}
			found = true
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && isTerminalCall(info, call) {
				found = true
			}
		}
		return true
	})
	return found
}
