package bench

import (
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/obs"
	"openhpcxx/internal/obs/obstest"
)

// TestFigureO1RecordsSpansOnlyWhenTraced pins the figure's mechanics:
// the untraced mode runs with no recorder (the default runtime state),
// the ring mode actually captures connected span trees, and the two
// points are measured on the same deployment.
func TestFigureO1RecordsSpansOnlyWhenTraced(t *testing.T) {
	res, err := RunFigureO1(O1Config{MinReps: 50, MinDuration: 10 * time.Millisecond, RingSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	base, traced := res.Points[0], res.Points[1]
	if base.Mode != ModeUntraced || traced.Mode != ModeRing {
		t.Fatalf("point order %q,%q", base.Mode, traced.Mode)
	}
	if base.SpansTotal != 0 {
		t.Fatalf("untraced mode recorded %d spans", base.SpansTotal)
	}
	if traced.SpansTotal == 0 || traced.SpansRetained == 0 {
		t.Fatalf("ring mode recorded nothing: %+v", traced)
	}
	if base.AvgRTT <= 0 || traced.AvgRTT <= 0 {
		t.Fatalf("degenerate RTTs: %v %v", base.AvgRTT, traced.AvgRTT)
	}
	// The captured spans form connected traces: take the NEWEST exchange
	// invocation (the oldest's siblings may have been evicted by ring
	// wrap-around) and check its client and server halves share a trace.
	spans := res.Ring.Spans()
	var root obs.Span
	for _, s := range spans {
		if s.Parent == 0 && s.Kind == obs.KindClient && s.Method == "exchange" {
			root = s
		}
	}
	if root.Trace == 0 {
		t.Fatalf("no exchange root span among %d retained spans", len(spans))
	}
	tr := obstest.Trace(spans, root.Trace)
	obstest.AssertConnected(t, tr)
	obstest.AssertPath(t, tr, "invoke→select→hpcx-tcp→decode→dispatch→servant")
}

func TestFigureO1Format(t *testing.T) {
	res := &O1Result{
		Ints: 16,
		Points: []O1Point{
			{Mode: ModeUntraced, Reps: 100, AvgRTT: 10 * time.Microsecond},
			{Mode: ModeRing, Reps: 100, AvgRTT: 11 * time.Microsecond, OverheadPct: 10, SpansTotal: 600, SpansRetained: 512},
		},
	}
	out := FormatFigureO1(res)
	for _, want := range []string{ModeUntraced, ModeRing, "overhead", "600"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted figure missing %q:\n%s", want, out)
		}
	}
}
