// Golden corpus for the golife analyzer: every goroutine spawned
// outside tests must have a provable exit path — a return reachable
// from its infinite loops, a break out of them, or a terminal call.
package golife

var stop = make(chan struct{})
var tick = make(chan int)

func spins() {
	go func() { // want "goroutine func literal has an infinite loop"
		for {
		}
	}()
}

func stoppable() {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-tick:
			}
		}
	}()
}

func loopForever() {
	for {
		work()
	}
}

func spawnsNamed() {
	go loopForever() // want "goroutine loopForever has an infinite loop"
}

type worker struct{ stop chan struct{} }

func (w *worker) run() {
	for {
		select {
		case <-w.stop:
			return
		case <-tick:
		}
	}
}

func (w *worker) start() {
	go w.run()
}

func labeledBreak() {
	go func() {
	drain:
		for {
			select {
			case <-stop:
				break drain
			case <-tick:
			}
		}
	}()
}

func breakInsideSelect() {
	go func() { // want "goroutine func literal has an infinite loop"
		for {
			select {
			case <-stop:
				break // exits the select, not the loop
			case <-tick:
			}
		}
	}()
}

func directBreak() {
	go func() {
		for {
			if cond() {
				break
			}
		}
	}()
}

func rangesOverChannel() {
	go func() {
		for v := range tick {
			use(v)
		}
	}()
}

func blocksForever() {
	go func() { // want "empty select"
		select {}
	}()
}

func terminal() {
	go func() {
		for {
			panic("unreachable by design")
		}
	}()
}

func boundedLoop(n int) {
	go func() {
		for i := 0; i < n; i++ {
			use(i)
		}
	}()
}

func functionValue(f func()) {
	go f() // unresolvable target: the callee's obligation
}

// keeper is the tail-keeper lifecycle shape (internal/obs.TailKeeper):
// Start spawns the idle-flush loop, Close signals stop — the loop's
// exit is provable through the select's stop arm.
type keeper struct {
	stop  chan struct{}
	ticks chan int
}

func (k *keeper) flushLoop() {
	for {
		select {
		case <-k.stop:
			return
		case <-k.ticks:
			work()
		}
	}
}

func (k *keeper) Start() {
	go k.flushLoop()
}

// leakyFlushLoop is the same loop with the stop arm forgotten: nothing
// can ever terminate the goroutine, so Close would hang forever on the
// done channel — the leak golife exists to catch.
func (k *keeper) leakyFlushLoop() {
	for {
		<-k.ticks
		work()
	}
}

func (k *keeper) startLeaky() {
	go k.leakyFlushLoop() // want "goroutine leakyFlushLoop has an infinite loop"
}

func deliberate() {
	//lint:ignore golife corpus exercises a suppressed infinite spinner
	go func() {
		for {
		}
	}()
}

func work()      {}
func cond() bool { return false }
func use(int)    {}
