package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// WireVer keeps wire-format version knowledge inside the codec. The
// header decoder accepts v1..v3 frames and fills missing fields with
// zeroes; that back-compat contract lives in internal/wire and nowhere
// else. The moment a protocol, transport, or capability branches on a
// wire version constant, v1/v2/v3 semantics leak out of the codec and
// every future version bump has to chase them down. Referencing a
// version constant (stamping it into a header, printing it) is fine;
// comparing or switching on one outside internal/wire is not.
var WireVer = &Analyzer{
	Name: "wirever",
	Doc:  "wire version constants compared/branched only inside internal/wire",
	Run:  runWireVer,
}

var wireVerName = regexp.MustCompile(`^(V[0-9]+|[Vv]ersion|[Mm]inVersion)$`)

func runWireVer(pass *Pass) {
	if pathHasSuffix(pass.Pkg().Path(), "internal/wire") {
		return
	}
	for _, file := range pass.Files() {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			c, ok := pass.Info().Uses[id].(*types.Const)
			if !ok || c.Pkg() == nil || !pathHasSuffix(c.Pkg().Path(), "internal/wire") || !wireVerName.MatchString(c.Name()) {
				return true
			}
			if ctx := versionBranchContext(n, stack); ctx != "" {
				pass.Reportf(id.Pos(), "wire version constant %s %s outside internal/wire: version back-compat logic belongs in the wire codec", c.Name(), ctx)
			}
			return true
		})
	}
}

// versionBranchContext reports how the identifier participates in a
// branch: as a comparison operand, a switch tag, or a case value.
// Returns "" when the use is a plain reference.
func versionBranchContext(n ast.Node, stack []ast.Node) string {
	// Climb through the selector/parens wrapping the identifier.
	node := n
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.SelectorExpr, *ast.ParenExpr:
			node = stack[i]
			continue
		case *ast.BinaryExpr:
			switch parent.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				return "compared"
			}
			return ""
		case *ast.SwitchStmt:
			if parent.Tag == node {
				return "switched on"
			}
			return ""
		case *ast.CaseClause:
			for _, v := range parent.List {
				if v == node {
					return "used as a case value"
				}
			}
			return ""
		default:
			return ""
		}
	}
	return ""
}
