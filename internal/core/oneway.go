package core

import (
	"context"
	"errors"

	"openhpcxx/internal/obs"
	"openhpcxx/internal/wire"
)

// OneWayProtocol is implemented by protocol objects that can deliver a
// request without waiting for a reply — the ORB surface of Nexus's
// one-way remote service requests. The built-in stream, shm, and nexus
// protocols implement it; protocols that cannot (or glue chains over
// such a base) report ErrOneWayUnsupported.
type OneWayProtocol interface {
	Protocol
	Post(m *wire.Message) error
}

// ErrOneWayUnsupported is returned by Post when the selected protocol
// cannot deliver one-way requests.
var ErrOneWayUnsupported = errors.New("core: selected protocol does not support one-way requests")

// Post invokes a method without waiting for any result. Delivery is
// at-most-once with no failure notification beyond transport errors;
// method errors on the server are discarded. The request still flows
// through the selected protocol — including a glue protocol's
// capability chain, so one-way calls are metered and protected exactly
// like two-way ones.
func (g *GlobalPtr) Post(method string, args []byte) error {
	root := g.host.rt.Tracer().StartRoot(obs.KindClient, "post")
	if root != nil {
		root.SetRPC(string(g.Object()), method)
		root.SetBytes(len(args))
	}
	err := g.post(root, method, args)
	root.SetErr(err)
	root.End()
	return err
}

func (g *GlobalPtr) post(root *obs.Active, method string, args []byte) error {
	sel := root.Child("select")
	p, err := g.prepare(context.Background(), wire.TControl, method, args)
	if err != nil {
		sel.SetErr(err)
		sel.End()
		return err
	}
	ow, ok := p.proto.(OneWayProtocol)
	if !ok {
		sel.End()
		return ErrOneWayUnsupported
	}
	var send *obs.Active
	if root != nil {
		sel.SetProto(string(p.proto.ID()), p.key)
		sel.End()
		stampTrace(g.host.rt.Tracer(), p.req, root)
		send = root.Child(string(p.proto.ID()))
		send.SetProto(string(p.proto.ID()), p.key)
		send.SetBytes(len(args))
	}
	p.pm.oneway.Inc()
	p.pm.reqBytes.Add(uint64(len(args)))
	p.em.addBytes(len(args), g.host.rt.Clock().Now())
	if err := ow.Post(p.req); err != nil {
		send.SetErr(err)
		send.End()
		p.pm.transportErrors.Inc()
		g.Invalidate()
		return err
	}
	send.End()
	return nil
}

// handleOneWay executes a one-way request: same path as handleRequest
// but all results and errors are discarded and no frame travels back.
func (c *Context) handleOneWay(m *wire.Message, ds *obs.Active) {
	c.rt.Metrics().Counter("srv.oneway").Inc()
	req := *m
	req.Type = wire.TRequest
	if _, err := c.handleRequest(&req, ds); err != nil {
		c.rt.Metrics().Counter("srv.oneway_faults").Inc()
	}
}
