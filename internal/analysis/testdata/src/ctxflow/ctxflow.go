// Golden corpus for the ctxflow analyzer: an exported *Ctx function
// exists to thread its caller's deadline. Minting context.Background()
// inside one, or calling the non-Ctx sibling of a callee that has one,
// silently severs the chain.
package ctxflow

import "context"

// Store offers both plain and context-threading accessors.
type Store struct{}

func (s *Store) Get(key string) error                         { return nil }
func (s *Store) GetCtx(ctx context.Context, key string) error { return nil }
func (s *Store) Drop(key string) error                        { return nil }

// FetchCtx is the shape under test: exported, Ctx-suffixed, takes a
// context.
func FetchCtx(ctx context.Context, s *Store, key string) error {
	bg := context.Background() // want "FetchCtx drops the caller's context"
	_ = bg
	if err := s.Get(key); err != nil { // want "FetchCtx calls Get without the context: use Store.GetCtx"
		return err
	}
	if err := s.Drop(key); err != nil { // no Ctx sibling exists: fine
		return err
	}
	return s.GetCtx(ctx, key)
}

// GoodCtx threads properly: derived contexts and Ctx siblings only.
func GoodCtx(ctx context.Context, s *Store, key string) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return s.GetCtx(ctx, key)
}

// Fetch is not Ctx-suffixed, so a root context inside it is its own
// business (it is the documented non-Ctx delegator shape).
func Fetch(s *Store, key string) error {
	return s.GetCtx(context.Background(), key)
}
