// Package xdr implements the subset of the XDR external data
// representation (RFC 4506) used by the Open HPC++ wire protocol.
//
// The original Open HPC++ system used Sun RPC's XDR for data encoding in
// its TCP protocol objects. This package reimplements that discipline
// from scratch: all items occupy a multiple of four bytes, multi-byte
// quantities are big-endian, and variable-length data is length-prefixed
// and zero-padded to a four-byte boundary.
//
// Encoder and Decoder operate over an internal byte buffer to avoid
// per-item interface calls; Bytes/Reset allow buffer reuse so steady-state
// encoding performs no allocation beyond buffer growth.
package xdr

import (
	"errors"
	"math"

	"openhpcxx/internal/errs"
)

// Maximum variable-length element count accepted by the decoder. Guards
// against corrupt or hostile length prefixes allocating unbounded memory.
const maxDecodeLen = 1 << 28

var (
	// ErrShortBuffer is returned when the decoder runs out of input.
	ErrShortBuffer = errors.New("xdr: short buffer")
	// ErrLength is returned when a length prefix is negative or exceeds
	// the decoder's sanity limit.
	ErrLength = errors.New("xdr: invalid length")
	// ErrPadding is returned when pad bytes are not zero.
	ErrPadding = errors.New("xdr: nonzero padding")
	// ErrBool is returned when a boolean is neither 0 nor 1.
	ErrBool = errors.New("xdr: invalid bool")
	// ErrTrailing is returned by DecodeFull when input remains after the
	// value has been decoded.
	ErrTrailing = errors.New("xdr: trailing bytes")
)

// Marshaler is implemented by types that can append themselves to an
// Encoder.
type Marshaler interface {
	MarshalXDR(e *Encoder) error
}

// Unmarshaler is implemented by types that can read themselves from a
// Decoder.
type Unmarshaler interface {
	UnmarshalXDR(d *Decoder) error
}

func pad(n int) int { return (4 - n&3) & 3 }

// Encoder appends XDR-encoded values to a growable buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice is valid until the next
// call to Reset or an encoding method.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) grow(n int) []byte {
	l := len(e.buf)
	if l+n <= cap(e.buf) {
		e.buf = e.buf[:l+n]
	} else {
		nb := make([]byte, l+n, (l+n)*2)
		copy(nb, e.buf)
		e.buf = nb
	}
	return e.buf[l : l+n]
}

// PutUint32 encodes a 32-bit unsigned integer.
func (e *Encoder) PutUint32(v uint32) {
	b := e.grow(4)
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// PutInt32 encodes a 32-bit signed integer.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 encodes an XDR unsigned hyper.
func (e *Encoder) PutUint64(v uint64) {
	b := e.grow(8)
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// PutInt64 encodes an XDR hyper.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutInt encodes a Go int as an XDR hyper.
func (e *Encoder) PutInt(v int) { e.PutInt64(int64(v)) }

// PutBool encodes a boolean as an XDR enum (0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFloat32 encodes an IEEE-754 single-precision float.
func (e *Encoder) PutFloat32(v float32) { e.PutUint32(math.Float32bits(v)) }

// PutFloat64 encodes an IEEE-754 double-precision float.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutFixedOpaque encodes opaque data of known length (no length prefix).
func (e *Encoder) PutFixedOpaque(p []byte) {
	b := e.grow(len(p) + pad(len(p)))
	n := copy(b, p)
	for i := n; i < len(b); i++ {
		b[i] = 0
	}
}

// PutOpaque encodes variable-length opaque data (length prefixed).
func (e *Encoder) PutOpaque(p []byte) {
	e.PutUint32(uint32(len(p)))
	e.PutFixedOpaque(p)
}

// PutString encodes a string.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	b := e.grow(len(s) + pad(len(s)))
	n := copy(b, s)
	for i := n; i < len(b); i++ {
		b[i] = 0
	}
}

// PutInt32s encodes a variable-length array of 32-bit integers. This is
// the fast path used by the paper's bandwidth experiment, which exchanges
// arrays of integers between client and server.
func (e *Encoder) PutInt32s(v []int32) {
	e.PutUint32(uint32(len(v)))
	b := e.grow(4 * len(v))
	for i, x := range v {
		u := uint32(x)
		b[4*i] = byte(u >> 24)
		b[4*i+1] = byte(u >> 16)
		b[4*i+2] = byte(u >> 8)
		b[4*i+3] = byte(u)
	}
}

// PutFloat64s encodes a variable-length array of doubles.
func (e *Encoder) PutFloat64s(v []float64) {
	e.PutUint32(uint32(len(v)))
	b := e.grow(8 * len(v))
	for i, x := range v {
		u := math.Float64bits(x)
		b[8*i] = byte(u >> 56)
		b[8*i+1] = byte(u >> 48)
		b[8*i+2] = byte(u >> 40)
		b[8*i+3] = byte(u >> 32)
		b[8*i+4] = byte(u >> 24)
		b[8*i+5] = byte(u >> 16)
		b[8*i+6] = byte(u >> 8)
		b[8*i+7] = byte(u)
	}
}

// PutStrings encodes a variable-length array of strings.
func (e *Encoder) PutStrings(v []string) {
	e.PutUint32(uint32(len(v)))
	for _, s := range v {
		e.PutString(s)
	}
}

// PutOptional encodes an XDR optional-data marker followed, if present is
// true, by the value via fn.
func (e *Encoder) PutOptional(present bool, fn func(*Encoder)) {
	e.PutBool(present)
	if present {
		fn(e)
	}
}

// Marshal encodes a Marshaler into a fresh byte slice.
func Marshal(m Marshaler) ([]byte, error) {
	e := NewEncoder(64)
	if err := m.MarshalXDR(e); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// Decoder reads XDR-encoded values from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a Decoder reading from p.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// take consumes n bytes from the input.
func (d *Decoder) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes an XDR unsigned hyper.
func (d *Decoder) Uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]), nil
}

// Int64 decodes an XDR hyper.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Int decodes an XDR hyper into a Go int.
func (d *Decoder) Int() (int, error) {
	v, err := d.Int64()
	return int(v), err
}

// Bool decodes a boolean, rejecting values other than 0 and 1.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, ErrBool
}

// Float32 decodes a single-precision float.
func (d *Decoder) Float32() (float32, error) {
	v, err := d.Uint32()
	return math.Float32frombits(v), err
}

// Float64 decodes a double-precision float.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

func (d *Decoder) checkPad(n int) error {
	p, err := d.take(pad(n))
	if err != nil {
		return err
	}
	for _, b := range p {
		if b != 0 {
			return ErrPadding
		}
	}
	return nil
}

// FixedOpaque decodes opaque data of known length into a fresh slice.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	b, err := d.take(n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, d.checkPad(n)
}

func (d *Decoder) length() (int, error) {
	v, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	if v > maxDecodeLen {
		return 0, ErrLength
	}
	return int(v), nil
}

// Opaque decodes variable-length opaque data.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.length()
	if err != nil {
		return nil, err
	}
	return d.FixedOpaque(n)
}

// OpaqueView decodes variable-length opaque data without copying; the
// returned slice aliases the decoder's input.
func (d *Decoder) OpaqueView() ([]byte, error) {
	n, err := d.length()
	if err != nil {
		return nil, err
	}
	b, err := d.take(n)
	if err != nil {
		return nil, err
	}
	return b, d.checkPad(n)
}

// String decodes a string.
func (d *Decoder) String() (string, error) {
	n, err := d.length()
	if err != nil {
		return "", err
	}
	b, err := d.take(n)
	if err != nil {
		return "", err
	}
	s := string(b)
	return s, d.checkPad(n)
}

// Int32s decodes a variable-length array of 32-bit integers.
func (d *Decoder) Int32s() ([]int32, error) {
	n, err := d.length()
	if err != nil {
		return nil, err
	}
	b, err := d.take(4 * n)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(uint32(b[4*i])<<24 | uint32(b[4*i+1])<<16 | uint32(b[4*i+2])<<8 | uint32(b[4*i+3]))
	}
	return out, nil
}

// Float64s decodes a variable-length array of doubles.
func (d *Decoder) Float64s() ([]float64, error) {
	n, err := d.length()
	if err != nil {
		return nil, err
	}
	b, err := d.take(8 * n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		u := uint64(b[8*i])<<56 | uint64(b[8*i+1])<<48 | uint64(b[8*i+2])<<40 | uint64(b[8*i+3])<<32 |
			uint64(b[8*i+4])<<24 | uint64(b[8*i+5])<<16 | uint64(b[8*i+6])<<8 | uint64(b[8*i+7])
		out[i] = math.Float64frombits(u)
	}
	return out, nil
}

// Strings decodes a variable-length array of strings.
func (d *Decoder) Strings() ([]string, error) {
	n, err := d.length()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		s, err := d.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Optional decodes an optional-data marker; if present it invokes fn.
func (d *Decoder) Optional(fn func(*Decoder) error) (present bool, err error) {
	present, err = d.Bool()
	if err != nil || !present {
		return present, err
	}
	return true, fn(d)
}

// Unmarshal decodes p into u, requiring that all input is consumed.
func Unmarshal(p []byte, u Unmarshaler) error {
	d := NewDecoder(p)
	if err := u.UnmarshalXDR(d); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return errs.Wrapf(errs.Codec, ErrTrailing, "%d bytes", d.Remaining())
	}
	return nil
}
