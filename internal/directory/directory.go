// Package directory is the sharded object directory plane: the
// namespace of the single-servant registry scaled out to N ordinary ORB
// shard servants (consistent-hash partitioned, each reusing the
// registry.Service semantics), replicated K ways for availability, with
// lease-based liveness and server-pushed watch/invalidation streams so
// resolvers cache aggressively without polling.
//
// The plane has three client-side roles:
//
//   - Publisher: binds names with a lease and heartbeats them (full
//     rebinds, so a replica that restarted empty converges within one
//     heartbeat period).
//   - Resolver: resolves names through a bounded cache invalidated by
//     tombstone events the shards push over the one-way plane; cache
//     misses fail over down the shard's replica protocol table exactly
//     the way ordinary invocation does.
//   - Plane: the server side — exports the shard servants across a set
//     of contexts, wires their metrics and /statusz section, and hands
//     out the Bootstrap clients start from.
//
// Everything on the wire is ordinary ORB machinery: shards are servants,
// watch events are one-way posts, failover is the reference's ordered
// protocol table plus health breakers — the paper's point that a
// directory needs no mechanism the ORB does not already have.
package directory

import (
	"fmt"

	"openhpcxx/internal/core"
	"openhpcxx/internal/xdr"
)

// Iface is the shard servants' interface name. A shard speaks the full
// registry method set plus watch/unwatch.
const Iface = "openhpcxx.Directory"

// SinkIface is the interface name of the resolver-side event sink that
// shards push tombstones to.
const SinkIface = "openhpcxx.DirectorySink"

// EventMethod is the one-way method shards post watch events through.
const EventMethod = "dirEvent"

// ShardObjectID names shard i. Every replica of a shard exports under
// the same id — the reference's protocol table *is* the replica set.
func ShardObjectID(i int) core.ObjectID {
	return core.ObjectID(fmt.Sprintf("dir/shard-%d", i))
}

// bindArgs mirrors the registry's bind wire format (the shard servants
// reuse registry.Methods, so the directory's writes speak it verbatim).
type bindArgs struct {
	Name      string
	Ref       []byte
	Overwrite bool
	TTLNanos  int64
}

func (a *bindArgs) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(a.Name)
	e.PutOpaque(a.Ref)
	e.PutBool(a.Overwrite)
	e.PutInt64(a.TTLNanos)
	return nil
}

func (a *bindArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if a.Name, err = d.String(); err != nil {
		return err
	}
	if a.Ref, err = d.Opaque(); err != nil {
		return err
	}
	if a.Overwrite, err = d.Bool(); err != nil {
		return err
	}
	a.TTLNanos, err = d.Int64()
	return err
}

// refReply mirrors the registry's lookup reply.
type refReply struct{ Ref []byte }

func (r *refReply) MarshalXDR(e *xdr.Encoder) error {
	e.PutOpaque(r.Ref)
	return nil
}

func (r *refReply) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	r.Ref, err = d.Opaque()
	return err
}

// watchArgs registers (or, for unwatch, removes) a watcher: the encoded
// reference of the caller's event sink servant.
type watchArgs struct{ Sink []byte }

func (a *watchArgs) MarshalXDR(e *xdr.Encoder) error {
	e.PutOpaque(a.Sink)
	return nil
}

func (a *watchArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	a.Sink, err = d.Opaque()
	return err
}

// eventMsg is one watch event on the wire: a bind (Ref carries the new
// reference) or an unbind/expire tombstone. Shard identifies the origin
// so a sink watching many shards can attribute it.
type eventMsg struct {
	Shard uint32
	Kind  uint32 // registry.EventKind
	Name  string
	Ref   []byte
}

func (m *eventMsg) MarshalXDR(e *xdr.Encoder) error {
	e.PutUint32(m.Shard)
	e.PutUint32(m.Kind)
	e.PutString(m.Name)
	e.PutOpaque(m.Ref)
	return nil
}

func (m *eventMsg) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if m.Shard, err = d.Uint32(); err != nil {
		return err
	}
	if m.Kind, err = d.Uint32(); err != nil {
		return err
	}
	if m.Name, err = d.String(); err != nil {
		return err
	}
	m.Ref, err = d.Opaque()
	return err
}

// contextEntries assembles the protocol entries a context can serve a
// servant over, in preference order — the same assembly registry.Serve
// performs.
func contextEntries(ctx *core.Context) []core.ProtoEntry {
	var entries []core.ProtoEntry
	if e, err := ctx.EntrySHM(); err == nil {
		entries = append(entries, e)
	}
	if e, err := ctx.EntryStream(); err == nil {
		entries = append(entries, e)
	}
	if e, err := ctx.EntryNexus(); err == nil {
		entries = append(entries, e)
	}
	return entries
}
