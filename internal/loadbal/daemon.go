package loadbal

import (
	"sync"
	"time"

	"openhpcxx/internal/clock"
)

// Daemon runs Rebalance on a fixed period until stopped, recording every
// move — the always-on form of the balancer that a deployed Open HPC++
// application would run next to its contexts.
type Daemon struct {
	b        *Balancer
	interval time.Duration
	clk      clock.Clock

	mu      sync.Mutex
	history []Move
	errs    []error
	passes  int
	stop    chan struct{}
	done    chan struct{}
}

// NewDaemon wraps a balancer with a sampling period.
func NewDaemon(b *Balancer, interval time.Duration) *Daemon {
	return &Daemon{b: b, interval: interval, clk: clock.Real{}}
}

// SetClock replaces the pacing clock (a clock.Fake makes the loop
// steppable in tests). Call before Start.
func (d *Daemon) SetClock(clk clock.Clock) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop == nil && clk != nil {
		d.clk = clk
	}
}

// Start launches the balancing loop. It is a no-op if already running.
func (d *Daemon) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.loop(d.stop, d.done)
}

func (d *Daemon) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-clock.After(d.clk, d.interval):
			moves, err := d.b.Rebalance()
			d.mu.Lock()
			d.passes++
			d.history = append(d.history, moves...)
			if err != nil {
				d.errs = append(d.errs, err)
			}
			d.mu.Unlock()
		}
	}
}

// Stop halts the loop and waits for the in-flight pass to finish.
func (d *Daemon) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// History returns all moves performed so far.
func (d *Daemon) History() []Move {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Move(nil), d.history...)
}

// Passes returns how many balancing passes have run.
func (d *Daemon) Passes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.passes
}

// Errs returns errors encountered by past passes.
func (d *Daemon) Errs() []error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]error(nil), d.errs...)
}
