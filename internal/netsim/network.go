package netsim

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"

	"openhpcxx/internal/errs"
)

// Machine is a simulated compute node (the paper's "node" abstraction).
type Machine struct {
	ID  MachineID
	LAN LANID
	// Loopback shapes intra-machine connections.
	Loopback LinkProfile
}

// LAN is a simulated network segment with an intra-LAN link profile.
type LAN struct {
	ID      LANID
	Campus  CampusID
	Profile LinkProfile
}

// Network is a topology of machines and LANs that manufactures shaped
// connections. It is safe for concurrent use.
type Network struct {
	mu          sync.Mutex
	machines    map[MachineID]*Machine
	lans        map[LANID]*LAN
	listeners   map[Addr]*Listener
	packetSocks map[Addr]*PacketConn
	dgramShape  map[dgramKey]DatagramProfile
	partitions  map[dgramKey]bool
	down        map[MachineID]bool
	conns       map[*Conn]connEnds
	linkFaults  map[dgramKey]*DirFault
	lanShapers  map[LANID]*lanShaper
	rng         *rand.Rand
	nextPort    int
	// shapeOps counts per-packet shaping decisions (see ShapingOps).
	shapeOps atomic.Uint64
	// CampusLink joins LANs on the same campus; WANLink joins campuses.
	CampusLink LinkProfile
	WANLink    LinkProfile
}

// New returns an empty Network with campus and WAN profiles defaulted.
// Datagram loss/jitter randomness is deterministically seeded; use Seed
// to vary it.
func New() *Network {
	return &Network{
		machines:    make(map[MachineID]*Machine),
		lans:        make(map[LANID]*LAN),
		listeners:   make(map[Addr]*Listener),
		packetSocks: make(map[Addr]*PacketConn),
		dgramShape:  make(map[dgramKey]DatagramProfile),
		partitions:  make(map[dgramKey]bool),
		down:        make(map[MachineID]bool),
		conns:       make(map[*Conn]connEnds),
		linkFaults:  make(map[dgramKey]*DirFault),
		lanShapers:  make(map[LANID]*lanShaper),
		rng:         rand.New(rand.NewSource(1)),
		nextPort:    40000,
		CampusLink:  ProfileCampus,
		WANLink:     ProfileWAN,
	}
}

// AddLAN registers a LAN segment.
func (n *Network) AddLAN(id LANID, campus CampusID, profile LinkProfile) *LAN {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := &LAN{ID: id, Campus: campus, Profile: profile}
	n.lans[id] = l
	return l
}

// AddMachine registers a machine on an existing LAN.
func (n *Network) AddMachine(id MachineID, lan LANID) (*Machine, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.lans[lan]; !ok {
		return nil, errs.Newf(errs.Config, "netsim: unknown LAN %q", lan)
	}
	m := &Machine{ID: id, LAN: lan, Loopback: ProfileLoopback}
	n.machines[id] = m
	return m, nil
}

// MustAddMachine is AddMachine, panicking on error; topology building in
// examples and tests is declarative and a bad LAN id is programmer error.
func (n *Network) MustAddMachine(id MachineID, lan LANID) *Machine {
	m, err := n.AddMachine(id, lan)
	if err != nil {
		panic(err)
	}
	return m
}

// LocalityOf returns the Locality of a process on the given machine.
func (n *Network) LocalityOf(m MachineID, process string) (Locality, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	mach, ok := n.machines[m]
	if !ok {
		return Locality{}, errs.Newf(errs.Config, "netsim: unknown machine %q", m)
	}
	lan := n.lans[mach.LAN]
	return Locality{Machine: m, LAN: mach.LAN, Campus: lan.Campus, Process: process}, nil
}

// LinkBetween returns the profile that shapes traffic between two
// machines: loopback on the same machine, the LAN profile within a LAN,
// the campus backbone across LANs of one campus, and the WAN otherwise.
func (n *Network) LinkBetween(a, b MachineID) (LinkProfile, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.linkBetweenLocked(a, b)
}

func (n *Network) linkBetweenLocked(a, b MachineID) (LinkProfile, error) {
	ma, ok := n.machines[a]
	if !ok {
		return LinkProfile{}, errs.Newf(errs.Config, "netsim: unknown machine %q", a)
	}
	mb, ok := n.machines[b]
	if !ok {
		return LinkProfile{}, errs.Newf(errs.Config, "netsim: unknown machine %q", b)
	}
	if a == b {
		return ma.Loopback, nil
	}
	la, lb := n.lans[ma.LAN], n.lans[mb.LAN]
	if la.ID == lb.ID {
		return la.Profile, nil
	}
	if la.Campus == lb.Campus {
		return n.CampusLink, nil
	}
	return n.WANLink, nil
}

// Listener accepts simulated connections on one address.
type Listener struct {
	addr    Addr
	net     *Network
	mu      sync.Mutex
	backlog chan *Conn
	closed  bool
}

var _ net.Listener = (*Listener)(nil)

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	close(l.backlog)
	l.net.removeListener(l.addr)
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

func (l *Listener) deliver(c *Conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	select {
	case l.backlog <- c:
		return nil
	default:
		return errors.New("netsim: listener backlog full")
	}
}

// Listen opens a listener on machine:port. Port 0 allocates a fresh port.
func (n *Network) Listen(m MachineID, port int) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.machines[m]; !ok {
		return nil, errs.Newf(errs.Config, "netsim: unknown machine %q", m)
	}
	if n.down[m] {
		return nil, errs.Newf(errs.Transport, "netsim: machine %s is down", m)
	}
	if port == 0 {
		port = n.nextPort
		n.nextPort++
	}
	addr := Addr{Machine: m, Port: port}
	if _, busy := n.listeners[addr]; busy {
		return nil, errs.Newf(errs.Conflict, "netsim: address %v in use", addr)
	}
	l := &Listener{addr: addr, net: n, backlog: make(chan *Conn, 64)}
	n.listeners[addr] = l
	return l, nil
}

func (n *Network) removeListener(a Addr) {
	n.mu.Lock()
	delete(n.listeners, a)
	n.mu.Unlock()
}

// SetPartition severs (or heals) connectivity between two machines:
// while partitioned, new stream dials and datagrams between them fail
// or vanish. Established stream connections are not torn down — like a
// real route withdrawal, traffic already in flight on an open TCP
// connection is modeled as surviving; close connections explicitly to
// simulate a harder failure.
func (n *Network) SetPartition(a, b MachineID, severed bool) {
	n.mu.Lock()
	if severed {
		n.partitions[dgramKey{a, b}] = true
		n.partitions[dgramKey{b, a}] = true
	} else {
		delete(n.partitions, dgramKey{a, b})
		delete(n.partitions, dgramKey{b, a})
	}
	n.mu.Unlock()
}

// Partitioned reports whether traffic between two machines is severed.
func (n *Network) Partitioned(a, b MachineID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitions[dgramKey{a, b}]
}

// Dial connects from machine `from` to the listener at `to`, returning
// the client end of a shaped connection.
func (n *Network) Dial(from MachineID, to Addr) (*Conn, error) {
	n.mu.Lock()
	if n.down[from] || n.down[to.Machine] {
		var m MachineID
		if n.down[from] {
			m = from
		} else {
			m = to.Machine
		}
		n.mu.Unlock()
		return nil, errs.Newf(errs.Transport, "netsim: no route to %v: machine %s is down", to, m)
	}
	if n.partitions[dgramKey{from, to.Machine}] {
		n.mu.Unlock()
		return nil, errs.Newf(errs.Transport, "netsim: no route from %s to %s (partitioned)", from, to.Machine)
	}
	profile, err := n.linkBetweenLocked(from, to.Machine)
	if err != nil {
		n.mu.Unlock()
		return nil, err
	}
	l, ok := n.listeners[to]
	port := n.nextPort
	n.nextPort++
	fwd := n.dirFaultLocked(from, to.Machine)
	rev := n.dirFaultLocked(to.Machine, from)
	fwdShaper := n.shaperForLocked(from)
	revShaper := n.shaperForLocked(to.Machine)
	n.mu.Unlock()
	if !ok {
		return nil, errs.Newf(errs.Transport, "netsim: connection refused: %v", to)
	}
	clientAddr := Addr{Machine: from, Port: port}
	client, server := Pipe(profile, clientAddr, to)
	// Wire the live per-direction fault state into the two half pipes so
	// injected delay/blackhole faults apply to this connection after the
	// fact, and register the pair for crash injection. Each direction also
	// gets its sender-side LAN's shared-capacity shaper (when one is set)
	// and the network's shaping-op meter — direct pointers, resolved once
	// per dial, so the per-packet path never consults the topology again.
	client.send.dir, server.send.dir = fwd, rev
	client.send.shaper, server.send.shaper = fwdShaper, revShaper
	client.send.ops, server.send.ops = &n.shapeOps, &n.shapeOps
	n.registerConn(client, from, to.Machine)
	if err := l.deliver(server); err != nil {
		// Failed handoff: tear both ends down; their Close never errors
		// and the deliver error is what the caller needs.
		_ = client.Close()
		_ = server.Close()
		return nil, err
	}
	return client, nil
}

// connEnds records which machines a live connection touches.
type connEnds struct{ a, b MachineID }

func (n *Network) registerConn(c *Conn, a, b MachineID) {
	n.mu.Lock()
	n.conns[c] = connEnds{a: a, b: b}
	n.mu.Unlock()
	c.onClose = func() {
		n.mu.Lock()
		delete(n.conns, c)
		n.mu.Unlock()
	}
}
