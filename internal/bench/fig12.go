package bench

import (
	"bytes"
	"fmt"
	"time"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// PathReport documents one observed request path, the repository's
// rendering of the paper's architecture figures.
type PathReport struct {
	Title string
	Lines []string
}

// capturingProto wraps a protocol object and records the frames that
// crossed it, letting the Figure 2 driver show what the wire actually
// carried between the glue object and the protocol object.
type capturingProto struct {
	base        core.Protocol
	lastRequest *wire.Message
	lastReply   *wire.Message
}

func (p *capturingProto) ID() core.ProtoID { return p.base.ID() }

func (p *capturingProto) Call(m *wire.Message) (*wire.Message, error) {
	cp := *m
	p.lastRequest = &cp
	reply, err := p.base.Call(m)
	if reply != nil {
		cp2 := *reply
		p.lastReply = &cp2
	}
	return reply, err
}

func (p *capturingProto) Close() error { return p.base.Close() }

// RunFigure1 demonstrates the plain ORB request path of Figure 1: a GP
// invocation travels through a protocol object P to the server-side
// protocol class C and into the server object, and the reply retraces
// the path.
func RunFigure1() (*PathReport, error) {
	n := netsim.New()
	n.AddLAN("lan", "campus", netsim.ProfileUnshaped)
	n.MustAddMachine("cm", "lan")
	n.MustAddMachine("sm", "lan")
	rt := newRuntime(n, "fig1")
	defer rt.Close()

	server, err := serverContext(rt, "server", "sm")
	if err != nil {
		return nil, err
	}
	client, err := rt.NewContext("client", "cm")
	if err != nil {
		return nil, err
	}
	servant, err := exportExchange(server)
	if err != nil {
		return nil, err
	}
	streamE, err := server.EntryStream()
	if err != nil {
		return nil, err
	}
	ref := server.NewRef(servant, streamE)
	gp := client.NewGlobalPtr(ref)

	before := servant.Calls()
	m, err := MeasureExchange(gp, 256, 1, 0)
	if err != nil {
		return nil, err
	}
	id, err := gp.SelectedProtocol()
	if err != nil {
		return nil, err
	}
	addr, _ := server.Binding(core.ProtoStream)

	r := &PathReport{Title: "Figure 1: ORB communication mechanism"}
	r.add("client GP for %s (context %q, machine %s)", ref.Object, client.Name(), client.Locality().Machine)
	r.add("  -> protocol object P: %s", id)
	r.add("  -> wire: %s", addr)
	r.add("  -> protocol class C at context %q (machine %s)", server.Name(), server.Locality().Machine)
	r.add("  -> server object %s :: exchange (servant calls: %d -> %d)", ref.Object, before, servant.Calls())
	r.add("  <- reply retraced the path; %d ints echoed in %v", m.Ints, m.AvgRTT)
	return r, nil
}

// RunFigure2 demonstrates the capability request path of Figure 2: a
// request through a glue object holding C1 (encryption) and C2 (a quota)
// is processed by each capability before hitting the wire, un-processed
// in reverse order by the glue class on the server, and the reply
// retraces the path. The report shows the envelope chain and proves the
// body was actually encrypted on the wire.
func RunFigure2() (*PathReport, error) {
	n := netsim.New()
	n.AddLAN("lan", "campus", netsim.ProfileUnshaped)
	n.MustAddMachine("cm", "lan")
	n.MustAddMachine("sm", "lan")
	rt := newRuntime(n, "fig2")
	defer rt.Close()

	server, err := serverContext(rt, "server", "sm")
	if err != nil {
		return nil, err
	}
	client, err := rt.NewContext("client", "cm")
	if err != nil {
		return nil, err
	}
	servant, err := exportExchange(server)
	if err != nil {
		return nil, err
	}
	streamE, err := server.EntryStream()
	if err != nil {
		return nil, err
	}

	// Shared secret for both sides; the glue server gets its own copies
	// of the capabilities (the paper's GC).
	key := bytes.Repeat([]byte{7}, 32)
	c1 := capability.MustNewEncrypt(key, capability.ScopeAlways)
	c2 := capability.NewQuota(1000, time.Time{})
	gc1 := capability.MustNewEncrypt(key, capability.ScopeAlways)
	gc2 := capability.NewQuota(1000, time.Time{})
	server.RegisterGlue("fig2", capability.NewGlueServer("fig2", []capability.Capability{gc1, gc2}, rt.Clock()))

	baseFactory, ok := client.Pool().Lookup(core.ProtoStream)
	if !ok {
		return nil, errs.New(errs.Config, "bench: stream factory missing")
	}
	ref := server.NewRef(servant, streamE)
	base, err := baseFactory.New(streamE, ref, client)
	if err != nil {
		return nil, err
	}
	capture := &capturingProto{base: base}
	glue := capability.NewGlue("fig2", capture, rt.Clock(), c1, c2)

	reply, err := glue.Call(&wire.Message{
		Type:   wire.TRequest,
		Object: string(ref.Object),
		Method: "exchange",
		Body:   encodeIntArray(11),
	})
	if err != nil {
		return nil, err
	}
	if reply.Type != wire.TReply {
		return nil, errs.Newf(errs.Internal, "bench: fig2 got %v", reply.Type)
	}

	r := &PathReport{Title: "Figure 2: a remote request using capabilities"}
	r.add("client glue object G (tag %q) holds C1=%s, C2=%s", "fig2", c1.Kind(), c2.Kind())
	req := capture.lastRequest
	r.add("request on the wire carried %d envelopes:", len(req.Envelopes))
	for i, e := range req.Envelopes {
		r.add("  envelope[%d] = %s (%d bytes)", i, e.ID, len(e.Data))
	}
	if bytes.Contains(req.Body, []byte{0, 0, 0, 11}) && bytes.Equal(req.Body, encodeIntArray(11)) {
		r.add("  !! body travelled in cleartext")
	} else {
		r.add("  body on the wire is ciphertext (C1 processed it before send)")
	}
	r.add("server glue class GC un-processed C2 then C1 (reverse order), request reached servant")
	r.add("server-side quota charged: used=%d", gc2.Used())
	rep := capture.lastReply
	r.add("reply carried %d envelopes back; client glue un-processed them in reverse", len(rep.Envelopes))
	r.add("final reply body decoded to %d ints", countInts(reply.Body))
	return r, nil
}

func (r *PathReport) add(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func encodeIntArray(n int) []byte {
	arr := &core.Int32Slice{V: make([]int32, n)}
	for i := range arr.V {
		arr.V[i] = int32(i)
	}
	b, _ := xdr.Marshal(arr)
	return b
}

func countInts(body []byte) int {
	var s core.Int32Slice
	if err := xdr.Unmarshal(body, &s); err != nil {
		return -1
	}
	return len(s.V)
}
