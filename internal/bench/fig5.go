package bench

import (
	"time"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
)

// Figure 5 series names, matching the paper's legend.
const (
	SeriesGlueTimeout  = "glue with timeout"
	SeriesGlueSecurity = "glue with timeout & security"
	SeriesSharedMemory = "shared memory"
	SeriesNexus        = "Nexus"
)

// Fig5Config parameterizes the bandwidth sweep.
type Fig5Config struct {
	// Profile shapes the network between client and server machines
	// (the paper ran the sweep over both Ethernet and 155 Mbps ATM).
	Profile netsim.LinkProfile
	// Sizes are the array lengths to sweep; nil means the paper's
	// 1..1M sweep.
	Sizes []int
	// MinReps and MinDuration control averaging per cell.
	MinReps     int
	MinDuration time.Duration
}

// Series is one curve of Figure 5.
type Series struct {
	Name   string
	Points []Measurement
}

// Fig5Deployment is the Figure 5 testbed: a client machine and a server
// machine joined by the configured link, a network server context on the
// server machine, and a local server context on the client's machine for
// the shared-memory curve.
type Fig5Deployment struct {
	Deployment
	// refs maps series name to the object reference exercising it.
	refs map[string]*core.ObjectRef
}

// NewFig5Deployment builds the testbed.
func NewFig5Deployment(profile netsim.LinkProfile) (*Fig5Deployment, error) {
	n := netsim.New()
	n.AddLAN("lan", "campus", profile)
	n.MustAddMachine("client-m", "lan")
	n.MustAddMachine("server-m", "lan")
	rt := newRuntime(n, "bench")

	clientCtx, err := rt.NewContext("client", "client-m")
	if err != nil {
		rt.Close()
		return nil, err
	}
	remote, err := serverContext(rt, "server", "server-m")
	if err != nil {
		rt.Close()
		return nil, err
	}
	local, err := serverContext(rt, "server-local", "client-m")
	if err != nil {
		rt.Close()
		return nil, err
	}

	d := &Fig5Deployment{
		Deployment: Deployment{Net: n, Runtime: rt, Client: clientCtx},
		refs:       make(map[string]*core.ObjectRef),
	}

	// Shared-memory curve: servant co-located with the client.
	sLocal, err := exportExchange(local)
	if err != nil {
		rt.Close()
		return nil, err
	}
	shmE, err := local.EntrySHM()
	if err != nil {
		rt.Close()
		return nil, err
	}
	d.refs[SeriesSharedMemory] = local.NewRef(sLocal, shmE)

	// Network curves: servant across the link.
	sRemote, err := exportExchange(remote)
	if err != nil {
		rt.Close()
		return nil, err
	}
	streamE, err := remote.EntryStream()
	if err != nil {
		rt.Close()
		return nil, err
	}
	nexusE, err := remote.EntryNexus()
	if err != nil {
		rt.Close()
		return nil, err
	}
	d.refs[SeriesNexus] = remote.NewRef(sRemote, nexusE)

	glueT, err := capability.GlueEntry(remote, "fig5-timeout", streamE,
		capability.NewQuota(0, time.Time{}))
	if err != nil {
		rt.Close()
		return nil, err
	}
	d.refs[SeriesGlueTimeout] = remote.NewRef(sRemote, glueT)

	glueTS, err := capability.GlueEntry(remote, "fig5-timeout-security", streamE,
		capability.NewQuota(0, time.Time{}),
		capability.NewRandomEncrypt(capability.ScopeAlways))
	if err != nil {
		rt.Close()
		return nil, err
	}
	d.refs[SeriesGlueSecurity] = remote.NewRef(sRemote, glueTS)

	return d, nil
}

// SeriesNames lists the Figure 5 curves in the paper's legend order.
func SeriesNames() []string {
	return []string{SeriesGlueTimeout, SeriesGlueSecurity, SeriesSharedMemory, SeriesNexus}
}

// GlobalPtr returns a fresh global pointer for a series.
func (d *Fig5Deployment) GlobalPtr(series string) (*core.GlobalPtr, error) {
	ref, ok := d.refs[series]
	if !ok {
		return nil, errs.Newf(errs.Config, "bench: unknown series %q", series)
	}
	return d.Client.NewGlobalPtr(ref), nil
}

// RunFigure5 produces the bandwidth-versus-size curves for every series.
func RunFigure5(cfg Fig5Config) ([]Series, error) {
	if cfg.Sizes == nil {
		cfg.Sizes = Sizes1ToM()
	}
	if cfg.MinReps == 0 {
		cfg.MinReps = 3
	}
	if cfg.MinDuration == 0 {
		cfg.MinDuration = 200 * time.Millisecond
	}
	d, err := NewFig5Deployment(cfg.Profile)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	var out []Series
	for _, name := range SeriesNames() {
		gp, err := d.GlobalPtr(name)
		if err != nil {
			return nil, err
		}
		// Confirm the series exercises the protocol it claims to.
		if id, err := gp.SelectedProtocol(); err != nil {
			return nil, errs.Wrapf(errs.CodeOf(err), err, "bench: %s", name)
		} else if wantProto(name) != id {
			return nil, errs.Newf(errs.Internal, "bench: %s selected %s, want %s", name, id, wantProto(name))
		}
		s := Series{Name: name}
		for _, n := range cfg.Sizes {
			m, err := MeasureExchange(gp, n, cfg.MinReps, cfg.MinDuration)
			if err != nil {
				return nil, errs.Wrapf(errs.CodeOf(err), err, "bench: %s size %d", name, n)
			}
			s.Points = append(s.Points, m)
		}
		out = append(out, s)
	}
	return out, nil
}

func wantProto(series string) core.ProtoID {
	switch series {
	case SeriesSharedMemory:
		return core.ProtoSHM
	case SeriesNexus:
		return core.ProtoNexus
	default:
		return core.ProtoGlue
	}
}
