package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestRegistrySnapshotAndWriteTo(t *testing.T) {
	r := New()
	r.Counter("rpc.shm.calls").Add(5)
	r.Counter("srv.requests").Add(7)
	r.Histogram("rpc.shm.latency_us").Observe(100)
	r.Histogram("rpc.shm.latency_us").Observe(900)

	snap := r.Snapshot()
	if snap.Counters["rpc.shm.calls"] != 5 || snap.Counters["srv.requests"] != 7 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	h := snap.Histograms["rpc.shm.latency_us"]
	if h.Count != 2 || h.Sum != 1000 {
		t.Fatalf("histogram: %+v", h)
	}

	var buf bytes.Buffer
	n, err := r.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	var round RegistrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if round.Counters["rpc.shm.calls"] != 5 || round.Histograms["rpc.shm.latency_us"].Count != 2 {
		t.Fatalf("JSON round trip lost data: %+v", round)
	}
}

// Property: for random observation sets, Percentile(p) is an upper
// bound on the exact percentile and within the documented 2x bound
// (exact <= Percentile(p) < 2*exact for exact > 0).
func TestHistogramPercentileWithinTwoX(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(400)
		obs := make([]int64, n)
		h := &Histogram{}
		for i := range obs {
			// Mix of magnitudes, including zero.
			v := int64(0)
			switch rng.Intn(4) {
			case 0:
				v = int64(rng.Intn(10))
			case 1:
				v = int64(rng.Intn(1000))
			case 2:
				v = int64(rng.Intn(1_000_000))
			default:
				v = rng.Int63n(int64(1) << 40)
			}
			obs[i] = v
			h.Observe(v)
		}
		sort.Slice(obs, func(i, j int) bool { return obs[i] < obs[j] })
		for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0} {
			// Same rank definition Percentile documents: the
			// ceil(p*n)-th smallest observation.
			idx := int(math.Ceil(float64(n)*p)) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			exact := obs[idx]
			got := h.Percentile(p)
			if got < exact {
				t.Fatalf("round %d p=%v: Percentile=%d below exact=%d", round, p, got, exact)
			}
			if exact > 0 && got >= 2*exact {
				t.Fatalf("round %d p=%v: Percentile=%d not within 2x of exact=%d", round, p, got, exact)
			}
			if exact == 0 && got != 0 {
				t.Fatalf("round %d p=%v: exact is 0 but Percentile=%d", round, p, got)
			}
		}
	}
}

func TestHistogramPercentileEdges(t *testing.T) {
	h := &Histogram{}
	if h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram percentile must be 0")
	}
	h.Observe(10)
	if h.Percentile(0) != 0 {
		t.Fatal("p<=0 must be 0")
	}
	if got := h.Percentile(2.0); got < 10 || got >= 20 {
		t.Fatalf("p>1 clamps to max: got %d", got)
	}
}

// Property: concurrent Observe never loses counts (run under -race in
// ci; the per-bucket atomics must neither tear nor drop).
func TestHistogramConcurrentObserveLosesNothing(t *testing.T) {
	h := &Histogram{}
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		seed := int64(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d, want %d", s.Count, goroutines*per)
	}
	var inBuckets uint64
	for i := range h.buckets {
		inBuckets += h.buckets[i].Load()
	}
	if inBuckets != goroutines*per {
		t.Fatalf("bucket sum %d, want %d", inBuckets, goroutines*per)
	}
}
