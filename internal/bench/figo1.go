// Figure O1: the cost of end-to-end invocation tracing. The same
// exchange workload runs over the stream protocol on an unshaped
// simulated LAN three ways:
//
//   - "untraced": the tracer is present but has no recorder installed —
//     the default state of every runtime. This is the per-call price the
//     instrumentation adds to the PR2 invocation path: one nil check and
//     one atomic load per would-be span.
//   - "ring": a Ring recorder collects every span, the state an operator
//     flips on to diagnose a live system (ohpc-bench -fig=o1 -trace=FILE
//     dumps the resulting spans as JSON).
//
// The acceptance bar is that "untraced" stays within a couple of percent
// of the pre-instrumentation baseline; since instrumentation cannot be
// compiled out per run, the figure reports both modes' absolute RTTs and
// the relative overhead of enabling the ring, and the untraced span path
// is pinned separately by BenchmarkUntracedStartRoot (single-digit ns).
package bench

import (
	"fmt"
	"time"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/obs"
)

// O1 figure mode names.
const (
	ModeUntraced  = "untraced"
	ModeRing      = "ring"
	O1FigureTitle = "Figure O1: invocation tracing overhead (stream protocol, unshaped LAN)"
)

// O1Config parameterizes the tracing-overhead experiment.
type O1Config struct {
	// Ints is the array length exchanged per call (default 16: small
	// payloads make per-call overhead visible).
	Ints int
	// MinReps / MinDuration bound each measurement cell (defaults
	// 2000 reps, 250ms).
	MinReps     int
	MinDuration time.Duration
	// RingSize is the span ring capacity for the traced mode (default
	// obs.DefaultRingSize).
	RingSize int
}

func (c *O1Config) fill() {
	if c.Ints <= 0 {
		c.Ints = 16
	}
	if c.MinReps <= 0 {
		c.MinReps = 2000
	}
	if c.MinDuration <= 0 {
		c.MinDuration = 250 * time.Millisecond
	}
	if c.RingSize <= 0 {
		c.RingSize = obs.DefaultRingSize
	}
}

// O1Point is one mode's measurement.
type O1Point struct {
	Mode   string        `json:"mode"`
	Reps   int           `json:"reps"`
	AvgRTT time.Duration `json:"avg_rtt_ns"`
	// OverheadPct is this mode's AvgRTT relative to the untraced mode
	// (0 for the untraced row itself).
	OverheadPct float64 `json:"overhead_pct"`
	// SpansTotal / SpansRetained report the ring recorder's view after
	// the run (zero for the untraced mode).
	SpansTotal    uint64 `json:"spans_total,omitempty"`
	SpansRetained int    `json:"spans_retained,omitempty"`
}

// O1Result is the whole figure. Ring holds the traced run's span buffer
// so callers can export it (ohpc-bench -trace=FILE).
type O1Result struct {
	Ints   int       `json:"ints"`
	Points []O1Point `json:"points"`
	Ring   *obs.Ring `json:"-"`
}

// RunFigureO1 measures the exchange workload with tracing disabled and
// with a ring recorder installed, on one deployment so connection state
// and protocol selection are shared.
func RunFigureO1(cfg O1Config) (*O1Result, error) {
	cfg.fill()
	n := netsim.New()
	n.AddLAN("lan", "campus", netsim.ProfileUnshaped)
	n.MustAddMachine("client-m", "lan")
	n.MustAddMachine("server-m", "lan")
	rt := newRuntime(n, "bench-o1")
	defer rt.Close()

	clientCtx, err := rt.NewContext("client", "client-m")
	if err != nil {
		return nil, err
	}
	srvCtx, err := rt.NewContext("server", "server-m")
	if err != nil {
		return nil, err
	}
	if err := srvCtx.BindSim(0); err != nil {
		return nil, err
	}
	s, err := exportExchange(srvCtx)
	if err != nil {
		return nil, err
	}
	entry, err := srvCtx.EntryStream()
	if err != nil {
		return nil, err
	}
	gp := clientCtx.NewGlobalPtr(srvCtx.NewRef(s, entry))

	res := &O1Result{Ints: cfg.Ints, Ring: obs.NewRing(cfg.RingSize)}
	measure := func(mode string) (O1Point, error) {
		m, err := MeasureExchange(gp, cfg.Ints, cfg.MinReps, cfg.MinDuration)
		if err != nil {
			return O1Point{}, errs.Wrapf(errs.CodeOf(err), err, "bench: o1 %s", mode)
		}
		return O1Point{Mode: mode, Reps: m.Reps, AvgRTT: m.AvgRTT}, nil
	}

	// Untraced first: the default runtime state.
	base, err := measure(ModeUntraced)
	if err != nil {
		return nil, err
	}
	res.Points = append(res.Points, base)

	// Ring recorder on: every invocation now records its span tree.
	rt.Tracer().SetRecorder(res.Ring)
	defer rt.Tracer().SetRecorder(nil)
	traced, err := measure(ModeRing)
	if err != nil {
		return nil, err
	}
	if base.AvgRTT > 0 {
		traced.OverheadPct = 100 * (float64(traced.AvgRTT)/float64(base.AvgRTT) - 1)
	}
	traced.SpansTotal = res.Ring.Total()
	traced.SpansRetained = len(res.Ring.Spans())
	res.Points = append(res.Points, traced)
	return res, nil
}

// FormatFigureO1 renders the figure as a text table.
func FormatFigureO1(r *O1Result) string {
	out := fmt.Sprintf("%s\n  %d-int exchange per call\n\n  %-10s %8s %12s %10s %12s\n",
		O1FigureTitle, r.Ints, "mode", "reps", "avg rtt", "overhead", "spans")
	for _, p := range r.Points {
		spans := "-"
		if p.SpansTotal > 0 {
			spans = fmt.Sprintf("%d", p.SpansTotal)
		}
		out += fmt.Sprintf("  %-10s %8d %12v %9.2f%% %12s\n",
			p.Mode, p.Reps, p.AvgRTT.Round(10*time.Nanosecond), p.OverheadPct, spans)
	}
	out += "\n  'untraced' is the default runtime state: the span path costs one atomic load per call.\n"
	return out
}
