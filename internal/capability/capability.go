// Package capability implements Open HPC++ remote access capabilities
// and the glue protocol that carries them (paper §4).
//
// A capability object encapsulates one remote-access attribute —
// encryption, authentication, a request quota, compression — as a pair
// of body transformations: Process on the sending side and Unprocess on
// the receiving side. Capabilities are held, in order, by a glue
// protocol object; a request is processed by each capability before it
// goes out on the wire and un-processed in reverse order on the server
// (Figure 2), and replies retrace the same path.
//
// Capability configurations ride inside the glue entry of an object
// reference's protocol table, so passing a reference to another process
// transfers the capability set with it — the paper's "capabilities can
// be exchanged between processes".
package capability

import (
	"fmt"
	"sort"
	"sync"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/xdr"
)

// Direction tells a capability whether it is handling a request
// (client→server) or a reply (server→client).
type Direction int

// Directions.
const (
	Request Direction = iota
	Reply
)

func (d Direction) String() string {
	if d == Request {
		return "request"
	}
	return "reply"
}

// Frame carries per-invocation context into capability transforms.
type Frame struct {
	Object string
	Method string
	Dir    Direction
	Clock  clock.Clock
}

// Capability is one remote access capability (the paper's capab-object).
// Implementations must be safe for concurrent use: one instance serves
// every request flowing through its glue object.
//
// Process must not mutate body in place (it may alias caller-owned
// memory); it returns the transformed body and an envelope blob that the
// peer needs to reverse the transformation. Unprocess reverses Process
// given that envelope.
type Capability interface {
	// Kind names the capability type; it keys the constructor registry
	// and appears in wire envelopes.
	Kind() string
	// Applicable participates in glue applicability: the glue protocol
	// is applicable iff every constituent capability is (§4.3, "the
	// applicability of a glue protocol is the logical AND of all its
	// constituent capabilities").
	Applicable(client, server netsim.Locality) bool
	// Config serializes the capability for embedding in proto-data.
	Config() ([]byte, error)
	Process(f *Frame, body []byte) (newBody, envelope []byte, err error)
	Unprocess(f *Frame, envelope, body []byte) ([]byte, error)
}

// Exclusive is optionally implemented by capabilities whose live value
// carries per-instance state — counters, budgets — that must belong to
// exactly one glue installation. GlueEntry grants each Exclusive
// capability to the entry's tag and refuses a value that was already
// granted elsewhere: installing one stateful instance on two entries
// would silently merge both entries' state into a single set of
// counters (and, because glue entries serialize capabilities and
// rebuild them on each side, the shared original would never see the
// traffic either — every reading from it would be wrong twice over).
// Build a fresh instance per installation instead.
type Exclusive interface {
	// Grant claims the instance for the named installation. A second
	// Grant must return an error identifying the first owner.
	Grant(owner string) error
}

// grantAll claims every Exclusive capability in the chain for owner,
// stopping at the first refusal.
func grantAll(owner string, caps []Capability) error {
	for _, c := range caps {
		if ex, ok := c.(Exclusive); ok {
			if err := ex.Grant(owner); err != nil {
				return err
			}
		}
	}
	return nil
}

// Scope is a locality predicate shared by several capabilities: it says
// between which localities the capability applies. The paper's
// authentication capability uses cross-LAN ("applicable only when the
// client and the server are on different LANs"); its security capability
// in the Figure 4 experiment is cross-campus.
type Scope uint32

// Scopes.
const (
	// ScopeAlways applies everywhere.
	ScopeAlways Scope = iota
	// ScopeCrossMachine applies unless client and server share a machine.
	ScopeCrossMachine
	// ScopeCrossLAN applies unless client and server share a LAN.
	ScopeCrossLAN
	// ScopeCrossCampus applies unless client and server share a campus.
	ScopeCrossCampus
)

// Applies evaluates the scope for a locality pair.
func (s Scope) Applies(client, server netsim.Locality) bool {
	switch s {
	case ScopeCrossMachine:
		return !client.SameMachine(server)
	case ScopeCrossLAN:
		return !client.SameLAN(server)
	case ScopeCrossCampus:
		return !client.SameCampus(server)
	default:
		return true
	}
}

func (s Scope) String() string {
	switch s {
	case ScopeAlways:
		return "always"
	case ScopeCrossMachine:
		return "cross-machine"
	case ScopeCrossLAN:
		return "cross-lan"
	case ScopeCrossCampus:
		return "cross-campus"
	}
	return fmt.Sprintf("scope(%d)", uint32(s))
}

// Constructor builds a capability instance from its serialized config.
type Constructor func(config []byte) (Capability, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Constructor)
)

// RegisterKind installs a constructor for a capability kind. Built-in
// kinds self-register; applications add custom kinds the same way.
func RegisterKind(kind string, ctor Constructor) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("capability: kind %q registered twice", kind))
	}
	registry[kind] = ctor
}

// New constructs a capability of the given kind from config.
func New(kind string, config []byte) (Capability, error) {
	regMu.RLock()
	ctor, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return nil, errs.Newf(errs.Config, "capability: unknown kind %q", kind)
	}
	return ctor(config)
}

// Kinds lists the registered capability kinds, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Rebuild reconstructs a capability chain from (kind, config) specs.
func Rebuild(specs []Spec) ([]Capability, error) {
	caps := make([]Capability, len(specs))
	for i, s := range specs {
		c, err := New(s.Kind, s.Config)
		if err != nil {
			return nil, err
		}
		caps[i] = c
	}
	return caps, nil
}

// Spec is the serialized form of one capability in a glue entry.
type Spec struct {
	Kind   string
	Config []byte
}

// MarshalXDR encodes the spec.
func (s *Spec) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(s.Kind)
	e.PutOpaque(s.Config)
	return nil
}

// UnmarshalXDR decodes the spec.
func (s *Spec) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if s.Kind, err = d.String(); err != nil {
		return err
	}
	s.Config, err = d.Opaque()
	return err
}

// Specs serializes live capabilities into specs.
func Specs(caps []Capability) ([]Spec, error) {
	out := make([]Spec, len(caps))
	for i, c := range caps {
		cfg, err := c.Config()
		if err != nil {
			return nil, errs.Wrapf(errs.Codec, err, "capability: serializing %s", c.Kind())
		}
		out[i] = Spec{Kind: c.Kind(), Config: cfg}
	}
	return out, nil
}
