package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// Servant is a server object exported by a context. Invocations take a
// read lock so migration (which takes the write lock) observes a
// quiescent object.
type Servant struct {
	id    ObjectID
	iface string
	ctx   *Context

	mu      sync.RWMutex
	epoch   uint64
	impl    any
	methods map[string]Method
	movedTo *ObjectRef
	calls   atomic.Uint64
}

// ID returns the servant's object id.
func (s *Servant) ID() ObjectID { return s.id }

// Iface returns the servant's interface name.
func (s *Servant) Iface() string { return s.iface }

// Epoch returns the servant's migration epoch.
func (s *Servant) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Impl returns the implementation object.
func (s *Servant) Impl() any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.impl
}

// Calls returns how many invocations the servant has served; the load
// balancer uses it as one of its load signals.
func (s *Servant) Calls() uint64 { return s.calls.Load() }

func (s *Servant) invoke(method string, args []byte) (out []byte, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.movedTo != nil {
		return nil, movedFault(s.movedTo)
	}
	m, ok := s.methods[method]
	if !ok {
		return nil, wire.Faultf(wire.FaultNoMethod, "%s has no method %q", s.id, method)
	}
	s.calls.Add(1)
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, wire.Faultf(wire.FaultInternal, "method %q panicked: %v", method, r)
		}
	}()
	return m(args)
}

func movedFault(ref *ObjectRef) error {
	data, err := EncodeRef(ref)
	if err != nil {
		return wire.Faultf(wire.FaultInternal, "encoding forwarding reference: %v", err)
	}
	return &wire.Fault{Code: wire.FaultMoved, Message: "object migrated to " + ref.Server.String(), Data: data}
}

// Export registers a servant under an automatically assigned object id.
func (c *Context) Export(iface string, impl any, methods map[string]Method) (*Servant, error) {
	c.mu.Lock()
	c.nextObj++
	id := ObjectID(fmt.Sprintf("%s/obj-%d", c.name, c.nextObj))
	c.mu.Unlock()
	return c.ExportAs(id, iface, impl, methods, 0)
}

// ExportAs registers a servant under an explicit id and epoch; migration
// uses it to preserve identity across contexts.
func (c *Context) ExportAs(id ObjectID, iface string, impl any, methods map[string]Method, epoch uint64) (*Servant, error) {
	s := &Servant{id: id, iface: iface, ctx: c, epoch: epoch, impl: impl, methods: methods}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.servants[id]; dup {
		return nil, errs.Newf(errs.Conflict, "core: object %s already exported", id)
	}
	delete(c.tombstones, id) // an object returning home clears its tombstone
	c.servants[id] = s
	if epoch > 0 {
		c.rt.recordEvent("move-in", id, "adopted by context %s (epoch %d)", c.name, epoch)
	}
	return s, nil
}

// Servant looks up an exported object.
func (c *Context) Servant(id ObjectID) (*Servant, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.servants[id]
	return s, ok
}

// Unexport removes a servant, optionally leaving a forwarding tombstone
// so stale callers receive FaultMoved with the new reference.
func (c *Context) Unexport(id ObjectID, forwardTo *ObjectRef) {
	c.mu.Lock()
	s, ok := c.servants[id]
	delete(c.servants, id)
	if forwardTo != nil {
		c.tombstones[id] = forwardTo
	}
	c.mu.Unlock()
	if ok && forwardTo != nil {
		s.mu.Lock()
		s.movedTo = forwardTo
		s.mu.Unlock()
	}
}

// Freeze blocks new invocations on the servant and waits for in-flight
// ones to drain; Unfreeze releases it. Migration brackets the snapshot
// with Freeze/Unfreeze.
func (s *Servant) Freeze() { s.mu.Lock() }

// Unfreeze releases a Freeze.
func (s *Servant) Unfreeze() { s.mu.Unlock() }

// SnapshotLocked snapshots the implementation's state. Caller must hold
// Freeze.
func (s *Servant) SnapshotLocked() ([]byte, error) {
	m, ok := s.impl.(Migratable)
	if !ok {
		return nil, errs.Newf(errs.Config, "core: %s (%T) is not Migratable", s.id, s.impl)
	}
	return m.Snapshot()
}

// dispatch is the shared server-side entry point for every protocol
// class bound to this context: it locates the servant, routes enveloped
// requests through the registered glue server, invokes the method, and
// frames the reply (Figure 1's path C -> server object, plus Figure 2's
// GC un-processing step).
func (c *Context) dispatch(m *wire.Message) *wire.Message {
	// Continue the caller's trace when its header carries one (wire v3)
	// and a recorder is installed. Untraced frames — old-format or from
	// a caller whose tracer is off — cost one nil-check here.
	ds := c.rt.Tracer().StartChild(obs.TraceID(m.TraceID), obs.SpanID(m.SpanID), obs.KindServer, "dispatch")
	if ds != nil {
		ds.SetHint(m.KeepHint())
		ds.SetRPC(m.Object, m.Method)
		ds.SetBytes(len(m.Body))
		defer ds.End()
	}
	if m.Type == wire.TControl {
		// One-way invocation: execute, never reply.
		if m.Object != "" && m.Method != "" {
			c.handleOneWay(m, ds)
		}
		return nil
	}
	if m.Type == wire.TBatch {
		return c.handleBatch(m)
	}
	if m.Type != wire.TRequest {
		return nil
	}
	c.mu.RLock()
	draining := c.draining
	c.mu.RUnlock()
	if draining {
		// Lame-duck: reject with a retryable fault so the caller re-issues
		// the request elsewhere. This covers every protocol class routed
		// through the shared dispatcher (stream, nexus, custom), not just
		// transport servers. Tombstones still answer — an evacuation
		// drains first and moves second, and stale callers must be able to
		// chase FaultMoved to the object's new home throughout.
		c.mu.RLock()
		_, live := c.servants[ObjectID(m.Object)]
		tomb := c.tombstones[ObjectID(m.Object)]
		c.mu.RUnlock()
		var rej error
		if !live && tomb != nil {
			ds.SetCause("moved")
			rej = movedFault(tomb)
		} else {
			ds.SetCause("draining")
			c.rt.Metrics().Counter("srv.drained").Inc()
			rej = wire.Faultf(wire.FaultUnavailable, "context %s draining", c.name)
		}
		ds.SetErr(rej)
		f, ferr := wire.FaultMessage(m, rej)
		if ferr != nil {
			return nil
		}
		return f
	}
	c.rt.Metrics().Counter("srv.requests").Inc()
	reply, err := c.handleRequest(m, ds)
	if err != nil {
		ds.SetErr(err)
		c.rt.Metrics().Counter("srv.faults").Inc()
		f, ferr := wire.FaultMessage(m, err)
		if ferr != nil {
			return nil
		}
		return f
	}
	return reply
}

func (c *Context) handleRequest(m *wire.Message, ds *obs.Active) (*wire.Message, error) {
	c.mu.RLock()
	s, ok := c.servants[ObjectID(m.Object)]
	var tomb *ObjectRef
	if !ok {
		tomb = c.tombstones[ObjectID(m.Object)]
	}
	c.mu.RUnlock()
	if !ok {
		if tomb != nil {
			return nil, movedFault(tomb)
		}
		return nil, wire.Faultf(wire.FaultNoObject, "no object %s in context %s", m.Object, c.name)
	}

	var gs GlueServer
	body := m.Body
	if len(m.Envelopes) > 0 {
		if m.Envelopes[0].ID != GlueEnvelopeID {
			return nil, wire.Faultf(wire.FaultCapability, "envelope chain must start with %q, got %q", GlueEnvelopeID, m.Envelopes[0].ID)
		}
		tag := string(m.Envelopes[0].Data)
		var found bool
		gs, found = c.glue(tag)
		if !found {
			return nil, wire.Faultf(wire.FaultCapability, "no glue %q registered in context %s", tag, c.name)
		}
		gu := ds.Child("glue.unprocess")
		var err error
		body, err = gs.UnwrapRequest(m)
		if gu != nil {
			gu.SetCaps(envCaps(m.Envelopes))
			gu.SetErr(err)
			gu.End()
		}
		if err != nil {
			return nil, err
		}
	}

	// Shed already-expired requests instead of doing dead work. The check
	// sits after glue un-processing — capability layers (audit, quota)
	// observe the request either way — but before the servant invoke, so
	// the expensive part is skipped. FaultExpired is terminal on the
	// client: the caller's deadline has passed, retrying cannot help.
	if m.Expired(c.rt.Clock().Now().UnixNano()) {
		ds.SetCause("expired")
		c.rt.Metrics().Counter("srv.expired").Inc()
		return nil, wire.Faultf(wire.FaultExpired, "deadline expired before %s.%s executed", m.Object, m.Method)
	}

	sv := ds.Child("servant")
	out, err := s.invoke(m.Method, body)
	sv.SetErr(err)
	sv.End()
	if err != nil {
		return nil, err
	}

	if gs != nil {
		return gs.WrapReply(m, out)
	}
	return &wire.Message{
		Type:   wire.TReply,
		Object: m.Object,
		Method: m.Method,
		Epoch:  s.Epoch(),
		Body:   out,
	}, nil
}

// handleBatch dispatches every sub-request of a wire.TBatch frame and
// returns a TBatch reply with the sub-replies in matching positions —
// the coalescer on the client demultiplexes by index. Each sub-request
// takes the full dispatch path independently (servant lookup, glue
// un-processing, tombstones), so a batch may mix objects and glue
// chains and individual faults stay individual.
func (c *Context) handleBatch(m *wire.Message) *wire.Message {
	whole := func(err error) *wire.Message {
		f, ferr := wire.FaultMessage(m, err)
		if ferr != nil {
			return nil
		}
		return f
	}
	subs, err := wire.DecodeBatch(m)
	if err != nil {
		return whole(wire.Faultf(wire.FaultBadRequest, "batch: %v", err))
	}
	c.rt.Metrics().Counter("srv.batches").Inc()
	c.rt.Metrics().Counter("srv.batch_msgs").Add(uint64(len(subs)))
	replies := make([]*wire.Message, len(subs))
	for i, sub := range subs {
		r := c.dispatch(sub)
		if r == nil {
			// One-way sub-requests (or malformed frames dispatch drops)
			// still need a placeholder so positions line up.
			r = &wire.Message{Type: wire.TReply, Object: sub.Object, Method: sub.Method}
		}
		r.RequestID = sub.RequestID
		replies[i] = r
	}
	out, err := wire.EncodeBatch(replies)
	if err != nil {
		return whole(wire.Faultf(wire.FaultBadRequest, "batch reply: %v", err))
	}
	out.RequestID = m.RequestID
	return out
}

// nexusInvoke is the handler behind the ORB's Nexus endpoint: the RSR
// buffer carries an XDR-embedded request message.
func (c *Context) nexusInvoke(buf []byte) ([]byte, error) {
	req := new(wire.Message)
	if err := xdr.Unmarshal(buf, req); err != nil {
		return nil, wire.Faultf(wire.FaultBadRequest, "embedded message: %v", err)
	}
	reply := c.dispatch(req)
	if reply == nil {
		reply = &wire.Message{Type: wire.TReply, Object: req.Object, Method: req.Method}
	}
	e := xdr.NewEncoder(64 + len(reply.Body))
	if err := reply.MarshalXDR(e); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}
