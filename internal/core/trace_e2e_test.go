package core

import (
	"testing"
	"time"

	"openhpcxx/internal/future"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/obs/obstest"
	"openhpcxx/internal/transport"
)

// These tests are the acceptance checks for end-to-end invocation
// tracing: every sync, async, one-way, batched, and failover-retried
// invocation yields ONE connected trace — client-side spans and
// server-side spans share the trace ID that traveled in the wire
// header.

func TestSyncInvokeYieldsConnectedTrace(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	_, ref := exportEcho(t, srv)
	gp := client.NewGlobalPtr(ref)
	col := obstest.Attach(t, rt.Tracer())

	if _, err := gp.Invoke("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A sync Invoke returns only after the reply round trip, so the
	// whole trace — including the server half — is already collected.
	tr := col.TraceOf(t, obstest.Root("echo"))
	obstest.AssertConnected(t, tr)
	obstest.AssertPath(t, tr, "invoke→select→hpcx-tcp→decode→dispatch→servant")
	obstest.AssertNotBatched(t, tr)

	root := tr[0]
	if root.Name != "invoke" || root.Method != "echo" || root.Object == "" {
		t.Fatalf("root span: %+v", root)
	}
	for _, s := range tr {
		if s.Name == "select" && s.Proto != string(ProtoStream) {
			t.Fatalf("select span chose proto %q, want %q", s.Proto, ProtoStream)
		}
	}
}

func TestAsyncInvokeYieldsConnectedTrace(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	_, ref := exportEcho(t, srv)
	gp := client.NewGlobalPtr(ref)
	col := obstest.Attach(t, rt.Tracer())

	f := gp.InvokeAsync("upper", []byte("x"))
	if body, err := f.Wait(); err != nil || string(body) != "X" {
		t.Fatalf("async echo: %q %v", body, err)
	}
	// The root span ends on the settle goroutine, which may run after
	// the future resolves — wait on the collector, never on the clock.
	col.WaitForSpans(t, "invoke", 1, 5*time.Second)
	tr := col.TraceOf(t, obstest.Root("upper"))
	obstest.AssertConnected(t, tr)
	obstest.AssertPath(t, tr, "invoke→select→hpcx-tcp→decode→dispatch→servant")
}

func TestPostYieldsConnectedTrace(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	_, ref := exportEcho(t, srv)
	gp := client.NewGlobalPtr(ref)
	col := obstest.Attach(t, rt.Tracer())

	if err := gp.Post("echo", []byte("fire-and-forget")); err != nil {
		t.Fatal(err)
	}
	// One-way: the server half lands whenever the frame is handled.
	col.WaitForSpans(t, "servant", 1, 5*time.Second)
	tr := col.TraceOf(t, func(s obs.Span) bool {
		return s.Name == "post" && s.Parent == 0
	})
	obstest.AssertConnected(t, tr)
	obstest.AssertPath(t, tr, "post→select→hpcx-tcp→servant")
}

func TestBatchedInvocationsEachCarryBatchSpan(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	_, ref := exportEcho(t, srv)
	gp := client.NewGlobalPtr(ref)
	gp.SetBatchPolicy(&transport.BatchPolicy{MaxMessages: 8, MaxDelay: 2 * time.Millisecond})
	col := obstest.Attach(t, rt.Tracer())

	const n = 32
	fs := make([]*future.Future, n)
	for i := range fs {
		fs[i] = gp.InvokeAsync("echo", []byte{byte(i)})
	}
	if err := future.WaitAll(fs...); err != nil {
		t.Fatal(err)
	}
	// All n roots ended means all n settles ran to completion.
	col.WaitForSpans(t, "invoke", n, 5*time.Second)
	spans := col.WaitFor(t, 5*time.Second, "a coalesced batch span", func(spans []obs.Span) bool {
		for _, s := range spans {
			if s.Name == "batch" && s.Batch >= 2 {
				return true
			}
		}
		return false
	})
	// Pick one rider that was coalesced and check its whole trace is
	// still a single connected invocation.
	var batched obs.Span
	for _, s := range spans {
		if s.Name == "batch" && s.Batch >= 2 {
			batched = s
			break
		}
	}
	tr := obstest.Trace(spans, batched.Trace)
	obstest.AssertBatched(t, tr, 2)
	obstest.AssertConnected(t, tr)
	obstest.AssertPath(t, tr, "invoke→batch→servant")
}

// TestFailoverRetryYieldsSingleTrace pins the retry span contract: a
// crashed primary produces retry spans with a transport cause inside
// the SAME trace that finally lands on the backup.
func TestFailoverRetryYieldsSingleTrace(t *testing.T) {
	n, rt, _, _, _, gp := failoverWorld(t)
	if _, err := gp.Invoke("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	col := obstest.Attach(t, rt.Tracer())
	n.Crash("mA")

	if _, err := gp.Invoke("echo", []byte("during")); err != nil {
		t.Fatalf("call during the outage was lost: %v", err)
	}
	tr := col.TraceOf(t, obstest.Root("echo"))
	obstest.AssertConnected(t, tr)
	retries := obstest.AssertRetried(t, tr, "")
	for _, r := range retries {
		if r.Cause == "" {
			t.Fatalf("retry span with no cause: %+v", r)
		}
	}
	// The eventual server half (the backup) shares the client's trace.
	obstest.AssertPath(t, tr, "invoke→select→retry→select→dispatch→servant")
}
