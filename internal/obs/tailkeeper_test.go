package obs

import (
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/stats"
)

// mkSpan builds a hinted span; id doubles as trace, span, and seq so
// tests read naturally.
func mkSpan(trace TraceID, id SpanID, parent SpanID, dur time.Duration) Span {
	return Span{Trace: trace, ID: id, Parent: parent, Seq: uint64(id), Hint: true, Dur: dur}
}

func TestTailKeeperKeepsErroredTrace(t *testing.T) {
	k := NewTailKeeper(TailKeeperOptions{Baseline: -1, MinSlow: time.Hour})
	child := mkSpan(1, 11, 10, time.Millisecond)
	child.Err = "boom"
	k.Record(child)
	k.Record(mkSpan(1, 10, 0, 2*time.Millisecond)) // root ends last
	if got := k.Spans(); len(got) != 2 {
		t.Fatalf("kept %d spans, want 2", len(got))
	}
	if k.Policy(1) != PolicyError {
		t.Fatalf("policy %q, want %q", k.Policy(1), PolicyError)
	}
	st := k.Stats()
	if st.KeptTraces[PolicyError] != 1 || st.KeptSpans != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTailKeeperDropsNormalKeepsSlow(t *testing.T) {
	k := NewTailKeeper(TailKeeperOptions{Baseline: -1, MinSlow: 10 * time.Millisecond})
	k.Record(mkSpan(1, 10, 0, time.Millisecond)) // fast: dropped
	k.Record(mkSpan(2, 20, 0, 50*time.Millisecond))
	if k.Policy(1) != "" || k.Policy(2) != PolicySlow {
		t.Fatalf("policies %q/%q", k.Policy(1), k.Policy(2))
	}
	st := k.Stats()
	if st.DroppedTraces[DropNormal] != 1 || st.KeptTraces[PolicySlow] != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := k.Trace(2); len(got) != 1 || got[0].Trace != 2 {
		t.Fatalf("Trace(2) = %+v", got)
	}
}

// The moving p99 adapts: after a window of 1ms roots, a 100ms root is
// slow with no explicit floor configured.
func TestTailKeeperMovingP99(t *testing.T) {
	k := NewTailKeeper(TailKeeperOptions{Baseline: -1})
	for i := TraceID(1); i <= 200; i++ {
		k.Record(mkSpan(i, SpanID(i*100), 0, time.Millisecond))
	}
	k.Record(mkSpan(999, 99900, 0, 100*time.Millisecond))
	if k.Policy(999) != PolicySlow {
		t.Fatalf("100ms root not kept as slow; policy %q", k.Policy(999))
	}
	// 1ms roots are within the window's p99 bucket: not slow. (The very
	// first roots may be kept while the window is cold; check the last.)
	if k.Policy(200) == PolicySlow {
		t.Fatal("1ms root kept as slow against a 1ms window")
	}
}

func TestTailKeeperBaselineReservoir(t *testing.T) {
	k := NewTailKeeper(TailKeeperOptions{Baseline: 4, MinSlow: time.Hour, Seed: 7})
	for i := TraceID(1); i <= 500; i++ {
		k.Record(mkSpan(i, SpanID(i*100), 0, time.Millisecond))
	}
	st := k.Stats()
	base := st.KeptTraces[PolicyBaseline]
	if base == 0 {
		t.Fatal("reservoir kept no baseline traces")
	}
	// Admission probability decays as slots/i: far fewer than all 500.
	if base > 100 {
		t.Fatalf("reservoir kept %d of 500 normal traces", base)
	}
	if base+st.DroppedTraces[DropNormal] != 500 {
		t.Fatalf("accounting leak: %+v", st)
	}
}

func TestTailKeeperDiscardsUnhinted(t *testing.T) {
	k := NewTailKeeper(TailKeeperOptions{})
	s := mkSpan(5, 51, 50, time.Millisecond)
	s.Hint = false
	k.Record(s)
	st := k.Stats()
	if st.PendingSpans != 0 || st.DroppedTraces[DropUnhinted] != 1 || st.DroppedSpans != 1 {
		t.Fatalf("unhinted span was buffered: %+v", st)
	}
	if k.Total() != 1 {
		t.Fatalf("total %d", k.Total())
	}
}

func TestTailKeeperOverflowEvictsOldest(t *testing.T) {
	// MaxSpans 8: pending budget 4, kept budget 4.
	k := NewTailKeeper(TailKeeperOptions{MaxSpans: 8, Baseline: -1, MinSlow: time.Hour})
	for i := TraceID(1); i <= 6; i++ {
		k.Record(mkSpan(i, SpanID(i*100+1), SpanID(i*100), time.Millisecond)) // rootless
	}
	st := k.Stats()
	if st.PendingSpans != 4 {
		t.Fatalf("pending %d, want 4", st.PendingSpans)
	}
	if st.DroppedTraces[DropOverflow] != 2 {
		t.Fatalf("overflow drops %d, want 2 (stats %+v)", st.DroppedTraces[DropOverflow], st)
	}
	// Saturated: new traces should not be hinted.
	if k.KeepHint(999) {
		t.Fatal("KeepHint said yes while the pending budget is full")
	}
	// A pending trace is still a candidate; an evicted one is not.
	if !k.KeepHint(6) {
		t.Fatal("KeepHint said no for a pending trace")
	}
	if k.KeepHint(1) {
		t.Fatal("KeepHint said yes for an evicted trace")
	}
}

// Regression: the creation-order queue must not accumulate the ids of
// decided traces. In normal operation every trace is decided at root
// end and the pending budget never overflows, so without compaction the
// queue grows by one id per trace forever — unbounded memory in a
// recorder documented as hard-bounded.
func TestTailKeeperQueueCompacts(t *testing.T) {
	k := NewTailKeeper(TailKeeperOptions{Baseline: -1, MinSlow: time.Hour})
	const traces = 10_000
	for i := TraceID(1); i <= traces; i++ {
		k.Record(mkSpan(i, SpanID(i*100), 0, time.Millisecond)) // root: decided immediately
	}
	k.mu.Lock()
	qlen, plen := len(k.queue), len(k.pending)
	k.mu.Unlock()
	if plen != 0 {
		t.Fatalf("pending %d, want 0", plen)
	}
	// Compaction triggers once stale ids dominate; anything near the
	// trace count means decided ids are leaking.
	if qlen >= 128 {
		t.Fatalf("queue holds %d ids after %d decided traces", qlen, traces)
	}
}

func TestTailKeeperStragglerFollowsDecision(t *testing.T) {
	k := NewTailKeeper(TailKeeperOptions{Baseline: -1, MinSlow: 10 * time.Millisecond})
	root := mkSpan(1, 10, 0, 50*time.Millisecond)
	root.Err = "late"
	k.Record(root) // decided: kept (error)
	k.Record(mkSpan(1, 12, 10, time.Millisecond))
	if got := k.Spans(); len(got) != 2 {
		t.Fatalf("straggler not appended: %d spans", len(got))
	}
	// Straggler of a dropped trace stays dropped.
	k.Record(mkSpan(2, 20, 0, time.Millisecond))
	k.Record(mkSpan(2, 22, 20, time.Millisecond))
	if got := k.Trace(2); len(got) != 0 {
		t.Fatalf("dropped trace retained %d spans", len(got))
	}
}

func TestTailKeeperIdleFlushDecidesRootless(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	k := NewTailKeeper(TailKeeperOptions{Clock: fc, IdleFlush: time.Second, Baseline: -1, MinSlow: time.Hour})
	errSpan := mkSpan(1, 11, 5, time.Millisecond) // parent is remote: no local root
	errSpan.Err = "server boom"
	k.Record(errSpan)
	k.Record(mkSpan(2, 21, 6, time.Millisecond)) // healthy rootless trace
	k.FlushIdle()                                // not idle yet: nothing decided
	if st := k.Stats(); st.PendingSpans != 2 {
		t.Fatalf("early flush decided traces: %+v", st)
	}
	fc.Advance(time.Second)
	k.FlushIdle()
	st := k.Stats()
	if st.PendingSpans != 0 {
		t.Fatalf("idle traces not flushed: %+v", st)
	}
	if st.KeptTraces[PolicyError] != 1 || st.DroppedTraces[DropNormal] != 1 {
		t.Fatalf("idle decisions wrong: %+v", st)
	}
}

// The background loop wakes on the injected clock and flushes idle
// traces without any real sleeping; Close provably stops it.
func TestTailKeeperFlushLoop(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	k := NewTailKeeper(TailKeeperOptions{Clock: fc, IdleFlush: time.Second, Baseline: -1, MinSlow: time.Hour})
	s := mkSpan(1, 11, 5, time.Millisecond)
	s.Err = "x"
	k.Record(s)
	k.Start()
	// Wait until the loop is parked on the fake clock, then advance
	// past the idle window twice (arm, then decide).
	for fc.Waiters() == 0 {
		clock.Sleep(clock.Real{}, 100*time.Microsecond)
	}
	fc.Advance(time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for k.Stats().PendingSpans != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("loop never flushed: %+v", k.Stats())
		}
		for fc.Waiters() == 0 {
			clock.Sleep(clock.Real{}, 100*time.Microsecond)
		}
		fc.Advance(time.Second)
	}
	k.Close() // must return: the loop exits
	if st := k.Stats(); st.KeptTraces[PolicyError] != 1 {
		t.Fatalf("loop flush decision wrong: %+v", st)
	}
}

func TestTailKeeperSetMetrics(t *testing.T) {
	reg := stats.New()
	k := NewTailKeeper(TailKeeperOptions{Baseline: -1, MinSlow: 10 * time.Millisecond})
	k.SetMetrics(reg)
	k.Record(mkSpan(1, 10, 0, 50*time.Millisecond)) // slow: kept
	k.Record(mkSpan(2, 20, 0, time.Millisecond))    // normal: dropped
	snap := reg.Snapshot()
	if snap.Counters["obs.spans_total"] != 2 {
		t.Fatalf("obs.spans_total = %d", snap.Counters["obs.spans_total"])
	}
	if snap.Counters[`obs.kept_traces{policy="slow"}`] != 1 {
		t.Fatalf("kept_traces: %+v", snap.Counters)
	}
	if snap.Counters[`obs.dropped_traces{policy="normal"}`] != 1 {
		t.Fatalf("dropped_traces: %+v", snap.Counters)
	}
}

func TestTailKeeperWriteJSON(t *testing.T) {
	k := NewTailKeeper(TailKeeperOptions{Baseline: -1, MinSlow: 10 * time.Millisecond})
	k.Record(mkSpan(1, 10, 0, 50*time.Millisecond))
	var sb strings.Builder
	if err := k.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"total": 1`, `"retained": 1`, `"kept_traces"`, `"spans"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %s:\n%s", want, out)
		}
	}
}

func TestTailKeeperSnapshotSinceCursor(t *testing.T) {
	k := NewTailKeeper(TailKeeperOptions{Baseline: -1, MinSlow: 10 * time.Millisecond})
	k.Record(mkSpan(1, 10, 0, 50*time.Millisecond))
	spans, dropped, next := k.SnapshotSince(0)
	if len(spans) != 1 || dropped != 0 {
		t.Fatalf("snapshot %d/%d", len(spans), dropped)
	}
	second := mkSpan(2, 20, 0, time.Millisecond)
	second.Err = "boom" // unambiguous keep
	k.Record(second)
	spans, _, _ = k.SnapshotSince(next)
	if len(spans) != 1 || spans[0].Trace != 2 {
		t.Fatalf("cursor poll %+v", spans)
	}
}

// The tracer consults an installed Hinter for the wire keep-hint bit.
func TestTracerKeepHintFor(t *testing.T) {
	tr := NewTracer(nil)
	if tr.KeepHintFor(1) {
		t.Fatal("disabled tracer hinted")
	}
	tr.SetRecorder(NewRing(8)) // not a Hinter: hint everything
	if !tr.KeepHintFor(1) {
		t.Fatal("ring-backed tracer must hint")
	}
	k := NewTailKeeper(TailKeeperOptions{MaxSpans: 8})
	tr.SetRecorder(k)
	if !tr.KeepHintFor(1) {
		t.Fatal("unsaturated keeper must hint")
	}
	if tr.KeepHintFor(0) {
		t.Fatal("zero trace hinted")
	}
}

// Hint inheritance: children of an unhinted continuation stay
// unhinted, so a whole non-candidate subtree is discardable.
func TestHintInheritance(t *testing.T) {
	tr := NewTracer(nil)
	k := NewTailKeeper(TailKeeperOptions{})
	tr.SetRecorder(k)
	cont := tr.StartChild(9, 1, KindServer, "dispatch")
	cont.SetHint(false)
	sub := cont.Child("servant")
	sub.End()
	cont.End()
	st := k.Stats()
	if st.DroppedTraces[DropUnhinted] != 2 || st.PendingSpans != 0 {
		t.Fatalf("unhinted subtree buffered: %+v", st)
	}
	// Hinted roots buffer normally.
	root := tr.StartRoot(KindClient, "invoke")
	c := root.Child("send")
	c.End()
	if st := k.Stats(); st.PendingSpans != 1 {
		t.Fatalf("hinted child not buffered: %+v", st)
	}
	root.End()
}

func TestRingSetMetrics(t *testing.T) {
	reg := stats.New()
	r := NewRing(2)
	r.SetMetrics(reg)
	for i := 0; i < 5; i++ {
		r.Record(Span{Trace: TraceID(i + 1)})
	}
	snap := reg.Snapshot()
	if snap.Counters["obs.spans_total"] != 5 {
		t.Fatalf("spans_total %d", snap.Counters["obs.spans_total"])
	}
	if snap.Counters["obs.dropped_spans"] != 3 {
		t.Fatalf("dropped_spans %d", snap.Counters["obs.dropped_spans"])
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped() %d", r.Dropped())
	}
}
