package wire

import (
	"openhpcxx/internal/errs"
	"openhpcxx/internal/xdr"
)

// TBatch is a micro-batch frame: its body is a count followed by
// concatenated sub-messages, each a complete (magic+version checked)
// message encoding. The client-side coalescer packs many small
// requests into one TBatch so per-frame latency and framing overhead
// are paid once per flush instead of once per call; the server
// dispatches every sub-request through the ordinary path (including
// glue capability un-processing — each sub-message carries its own
// envelope chain) and answers with a TBatch of the replies in request
// order.
const TBatch MsgType = 5

// MaxBatchMessages bounds the sub-message count a decoder accepts,
// protecting servers from hostile counts.
const MaxBatchMessages = 4096

// EncodeBatch packs msgs into one TBatch frame. The outer frame's
// RequestID is left zero — the transport assigns it like any other
// request — and sub-messages keep their own ids (reply matching inside
// a batch is positional).
func EncodeBatch(msgs []*Message) (*Message, error) {
	if len(msgs) == 0 {
		return nil, errs.New(errs.BadRequest, "wire: empty batch")
	}
	if len(msgs) > MaxBatchMessages {
		return nil, errs.Newf(errs.BadRequest, "wire: batch of %d exceeds %d", len(msgs), MaxBatchMessages)
	}
	size := 0
	for _, m := range msgs {
		size += 64 + len(m.Body)
	}
	e := xdr.NewEncoder(size)
	e.PutUint32(uint32(len(msgs)))
	sub := xdr.NewEncoder(0)
	for _, m := range msgs {
		if m.Type == TBatch {
			return nil, errs.New(errs.BadRequest, "wire: nested batch")
		}
		sub.Reset()
		if err := m.MarshalXDR(sub); err != nil {
			return nil, err
		}
		e.PutOpaque(sub.Bytes())
	}
	body := e.Bytes()
	if len(body) > MaxFrame {
		return nil, ErrTooLarge
	}
	return &Message{Type: TBatch, Body: body}, nil
}

// DecodeBatch unpacks a TBatch frame into its sub-messages. Nested
// batches are rejected, so dispatch recursion is bounded at one level.
func DecodeBatch(m *Message) ([]*Message, error) {
	if m.Type != TBatch {
		return nil, errs.Newf(errs.Codec, "wire: DecodeBatch on %v frame", m.Type)
	}
	d := xdr.NewDecoder(m.Body)
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, errs.New(errs.Codec, "wire: empty batch")
	}
	if n > MaxBatchMessages {
		return nil, errs.Newf(errs.Codec, "wire: batch of %d exceeds %d", n, MaxBatchMessages)
	}
	out := make([]*Message, 0, n)
	for i := uint32(0); i < n; i++ {
		raw, err := d.Opaque()
		if err != nil {
			return nil, errs.Wrapf(errs.Codec, err, "wire: batch entry %d", i)
		}
		sub := new(Message)
		if err := xdr.Unmarshal(raw, sub); err != nil {
			return nil, errs.Wrapf(errs.Codec, err, "wire: batch entry %d", i)
		}
		if sub.Type == TBatch {
			return nil, errs.Newf(errs.Codec, "wire: batch entry %d is a nested batch", i)
		}
		out = append(out, sub)
	}
	return out, nil
}
