// Package bench builds the deployments and measurements behind every
// figure in the paper's evaluation, shared by the repository's
// testing.B benchmarks and the ohpc-bench command.
//
// The workload is the paper's: a client makes a series of remote service
// requests that exchange an array of integers with the server, and the
// average bandwidth over a number of readings is computed for array
// sizes from 1 to 1 million (paper §5).
package bench

import (
	"time"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
)

// ExchangeIface is the bandwidth servant's interface name.
const ExchangeIface = "openhpcxx.bench.Exchange"

// ExchangeActivator builds the bandwidth servant: one method,
// "exchange", that decodes an integer array and echoes it back. The
// servant is stateless, hence trivially migratable.
func ExchangeActivator() (any, map[string]core.Method) {
	impl := &exchangeImpl{}
	return impl, map[string]core.Method{
		"exchange": core.Handler(func(in *core.Int32Slice) (*core.Int32Slice, error) {
			return in, nil
		}),
	}
}

type exchangeImpl struct{}

func (*exchangeImpl) Snapshot() ([]byte, error) { return nil, nil }
func (*exchangeImpl) Restore([]byte) error      { return nil }

// Sizes1ToM is the paper's sweep: array sizes from 1 to 1M integers in
// powers of four.
func Sizes1ToM() []int {
	var sizes []int
	for n := 1; n <= 1<<20; n *= 4 {
		sizes = append(sizes, n)
	}
	return sizes
}

// Measurement is one (protocol, size) cell of Figure 5.
type Measurement struct {
	Ints int // array length
	// Bytes is the XDR payload carried per request in each direction.
	Bytes int
	// Reps is how many exchanges were averaged.
	Reps int
	// AvgRTT is the mean round-trip time of one exchange.
	AvgRTT time.Duration
	// BandwidthBps is the payload throughput in bits per second,
	// counting both directions of the exchange.
	BandwidthBps float64
}

// MeasureExchange performs repeated exchanges of an n-int array through
// gp and reports the averaged bandwidth. It runs at least minReps
// exchanges and keeps going until minDuration has elapsed.
func MeasureExchange(gp *core.GlobalPtr, n int, minReps int, minDuration time.Duration) (Measurement, error) {
	if minReps < 1 {
		minReps = 1
	}
	arr := &core.Int32Slice{V: make([]int32, n)}
	for i := range arr.V {
		arr.V[i] = int32(i)
	}
	// Warm-up: protocol selection, connection setup, and one transfer.
	if _, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr); err != nil {
		return Measurement{}, err
	}

	payload := 4 + 4*n // XDR: length prefix + ints
	reps := 0
	start := time.Now()
	for {
		out, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr)
		if err != nil {
			return Measurement{}, err
		}
		if len(out.V) != n {
			return Measurement{}, errs.Newf(errs.Internal, "bench: exchange returned %d ints, want %d", len(out.V), n)
		}
		reps++
		if reps >= minReps && time.Since(start) >= minDuration {
			break
		}
	}
	elapsed := time.Since(start)
	totalBits := float64(2*payload*reps) * 8
	return Measurement{
		Ints:         n,
		Bytes:        payload,
		Reps:         reps,
		AvgRTT:       elapsed / time.Duration(reps),
		BandwidthBps: totalBits / elapsed.Seconds(),
	}, nil
}

// Deployment is a simulated testbed: a runtime plus named contexts, set
// up per figure.
type Deployment struct {
	Net     *netsim.Network
	Runtime *core.Runtime
	Client  *core.Context
}

// Close shuts the deployment down.
func (d *Deployment) Close() { d.Runtime.Close() }

// serverContext creates a fully bound server context (shm + stream +
// nexus) hosting nothing yet.
func serverContext(rt *core.Runtime, name string, machine netsim.MachineID) (*core.Context, error) {
	ctx, err := rt.NewContext(name, machine)
	if err != nil {
		return nil, err
	}
	if err := ctx.BindSHM(); err != nil {
		return nil, err
	}
	if err := ctx.BindSim(0); err != nil {
		return nil, err
	}
	if err := ctx.BindNexusSim(0); err != nil {
		return nil, err
	}
	return ctx, nil
}

// exportExchange exports the bandwidth servant on ctx.
func exportExchange(ctx *core.Context) (*core.Servant, error) {
	impl, methods := ExchangeActivator()
	return ctx.Export(ExchangeIface, impl, methods)
}

// newRuntime builds a runtime with glue support and the exchange
// activator registered.
func newRuntime(n *netsim.Network, process string) *core.Runtime {
	rt := core.NewRuntime(n, process)
	capability.Install(rt.DefaultPool())
	rt.RegisterIface(ExchangeIface, ExchangeActivator)
	return rt
}
