package bench

import (
	"testing"
	"time"

	"openhpcxx/internal/netsim"
)

// TestFigureD1Shapes runs a shrunken Figure D1 and checks the claims the
// figure exists to demonstrate: cached p99 flat within 2x across the
// size sweep, and resolution surviving the shard crash when replicated.
func TestFigureD1Shapes(t *testing.T) {
	cfg := D1Config{
		Profile:       netsim.ProfileUnshaped,
		Sizes:         []int{1_000, 50_000},
		Ops:           300,
		HotNames:      64,
		CrashDuration: 700 * time.Millisecond,
	}
	res, err := RunFigureD1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scale) != 4 {
		t.Fatalf("scale points = %d, want 4", len(res.Scale))
	}
	var cachedP99 []time.Duration
	for _, p := range res.Scale {
		if p.Failed > 0 {
			t.Fatalf("%s/%d: %d failed ops", p.Mode, p.Registered, p.Failed)
		}
		if p.Throughput <= 0 || p.P99 <= 0 {
			t.Fatalf("%s/%d: degenerate measurements %+v", p.Mode, p.Registered, p)
		}
		switch p.Mode {
		case D1ModeCached:
			cachedP99 = append(cachedP99, p.P99)
			if p.HitRate < 0.9 {
				t.Fatalf("cached/%d: hit rate %.2f, want >= 0.9", p.Registered, p.HitRate)
			}
		case D1ModeUncached:
			if p.HitRate != 0 {
				t.Fatalf("uncached/%d: hit rate %.2f, want 0", p.Registered, p.HitRate)
			}
		}
	}
	// The acceptance shape: growing the table must not grow cached p99
	// beyond 2x. A single shrunken run is noisy, so allow the full 2x.
	for _, p99 := range cachedP99[1:] {
		if ratio := float64(p99) / float64(cachedP99[0]); ratio > 2.0 {
			t.Fatalf("cached p99 grew %.2fx across the sweep: %v", ratio, cachedP99)
		}
	}

	if len(res.Crash) != 2 {
		t.Fatalf("crash points = %d, want 2", len(res.Crash))
	}
	var rep, single D1CrashPoint
	for _, p := range res.Crash {
		if p.Mode == D1ModeReplicated {
			rep = p
		} else {
			single = p
		}
	}
	// Replication must carry resolution through the outage; the single
	// replica must actually have suffered it (else the schedule tested
	// nothing).
	if rep.Availability < 0.95 {
		t.Fatalf("replicated availability %.3f, want >= 0.95", rep.Availability)
	}
	if single.Failed == 0 {
		t.Fatal("single-replica mode saw no failures — the crash never bit")
	}
	if rep.Availability <= single.Availability {
		t.Fatalf("replicated availability %.3f not above single %.3f",
			rep.Availability, single.Availability)
	}

	if FormatFigureD1(res) == "" {
		t.Fatal("empty rendering")
	}
}
