package core

import (
	"sync"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/transport/nexus"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// Built-in protocol identifiers.
const (
	// ProtoSHM is the in-process shared-memory protocol; applicable only
	// when client and server share a machine and process.
	ProtoSHM ProtoID = "shm"
	// ProtoStream is the plain framed stream protocol (the "TCP based
	// proto-object that uses XDR for data encoding" of §3.1); applicable
	// everywhere.
	ProtoStream ProtoID = "hpcx-tcp"
	// ProtoNexus is the Nexus-based TCP protocol of the experiments.
	ProtoNexus ProtoID = "nexus-tcp"
	// ProtoGlue is the glue protocol holding capability objects; its
	// factory lives in the capability package.
	ProtoGlue ProtoID = "glue"
)

const (
	orbEndpoint      = "orb"
	orbInvokeHandler = 1
)

// addrData is the proto-data payload for address-based protocols.
type addrData struct {
	Addr string
	// Endpoint is used by the Nexus protocol only.
	Endpoint string
}

func (a *addrData) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(a.Addr)
	e.PutString(a.Endpoint)
	return nil
}

func (a *addrData) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if a.Addr, err = d.String(); err != nil {
		return err
	}
	a.Endpoint, err = d.String()
	return err
}

func encodeAddrData(addr, endpoint string) []byte {
	b, _ := xdr.Marshal(&addrData{Addr: addr, Endpoint: endpoint})
	return b
}

func decodeAddrData(p []byte) (*addrData, error) {
	a := new(addrData)
	if err := xdr.Unmarshal(p, a); err != nil {
		return nil, errs.Wrap(errs.Codec, err, "core: bad address proto-data")
	}
	return a, nil
}

// EntrySHM builds a protocol table entry for this context's shared
// memory binding.
func (c *Context) EntrySHM() (ProtoEntry, error) {
	addr, ok := c.Binding(ProtoSHM)
	if !ok {
		return ProtoEntry{}, errs.Newf(errs.Config, "core: context %s has no shm binding", c.name)
	}
	return ProtoEntry{ID: ProtoSHM, Data: encodeAddrData(addr, "")}, nil
}

// EntryStream builds a protocol table entry for this context's stream
// binding (simulated or real TCP).
func (c *Context) EntryStream() (ProtoEntry, error) {
	addr, ok := c.Binding(ProtoStream)
	if !ok {
		return ProtoEntry{}, errs.Newf(errs.Config, "core: context %s has no stream binding", c.name)
	}
	return ProtoEntry{ID: ProtoStream, Data: encodeAddrData(addr, "")}, nil
}

// EntryNexus builds a protocol table entry for this context's Nexus
// binding.
func (c *Context) EntryNexus() (ProtoEntry, error) {
	addr, ok := c.Binding(ProtoNexus)
	if !ok {
		return ProtoEntry{}, errs.Newf(errs.Config, "core: context %s has no nexus binding", c.name)
	}
	return ProtoEntry{ID: ProtoNexus, Data: encodeAddrData(addr, orbEndpoint)}, nil
}

// StreamEntryAt builds a stream protocol entry for a known address
// without requiring a context — bootstrap use, e.g. reaching a name
// service whose address is configuration.
func StreamEntryAt(addr string) ProtoEntry {
	return ProtoEntry{ID: ProtoStream, Data: encodeAddrData(addr, "")}
}

// NewRef builds an object reference for a servant with the given
// protocol table (ordered by preference — the server's ranking of how it
// is willing to be accessed).
func (c *Context) NewRef(s *Servant, entries ...ProtoEntry) *ObjectRef {
	return &ObjectRef{
		Object:    s.ID(),
		Iface:     s.Iface(),
		Epoch:     s.Epoch(),
		Server:    c.loc,
		Protocols: entries,
	}
}

// streamProto carries frames over a pooled framed stream connection.
// It implements PipelinedProtocol (the mux matches replies by request
// id, so any number of Begins may be outstanding) and BatchingProtocol
// (an optional coalescer packs requests into TBatch frames).
type streamProto struct {
	id   ProtoID
	addr string
	host *Context

	mu   sync.Mutex
	coal *transport.Coalescer
}

func (p *streamProto) ID() ProtoID { return p.id }

// begin issues one frame on the pooled mux, dropping the connection on
// write failure so the next attempt redials.
func (p *streamProto) begin(m *wire.Message) (Pending, error) {
	mux, err := p.host.muxes.Get(p.addr)
	if err != nil {
		return nil, err
	}
	pc, err := mux.Begin(m)
	if err != nil {
		p.host.muxes.Drop(p.addr)
		return nil, err
	}
	return pc, nil
}

// Begin implements PipelinedProtocol. Requests route through the
// coalescer when batching is on; everything else goes straight out.
func (p *streamProto) Begin(m *wire.Message) (Pending, error) {
	p.mu.Lock()
	coal := p.coal
	p.mu.Unlock()
	if coal != nil && m.Type == wire.TRequest {
		return coal.Begin(m)
	}
	return p.begin(m)
}

// SetBatching implements BatchingProtocol: a zero policy disables
// coalescing, anything else (defaults filled in) enables it.
func (p *streamProto) SetBatching(policy transport.BatchPolicy) {
	p.mu.Lock()
	old := p.coal
	if policy == (transport.BatchPolicy{}) {
		p.coal = nil
	} else {
		p.coal = transport.NewCoalescer(func(m *wire.Message) (transport.Pending, error) {
			return p.begin(m)
		}, policy)
		p.coal.SetTracer(p.host.rt.Tracer())
	}
	p.mu.Unlock()
	if old != nil {
		old.Close() // flush stragglers
	}
}

// BatchStats reports the coalescer's current residency for the
// introspection plane: on is false when batching is disabled.
func (p *streamProto) BatchStats() (queued, queuedBytes int, on bool) {
	p.mu.Lock()
	coal := p.coal
	p.mu.Unlock()
	if coal == nil {
		return 0, 0, false
	}
	q, b := coal.Stats()
	return q, b, true
}

func (p *streamProto) Call(m *wire.Message) (*wire.Message, error) {
	pending, err := p.Begin(m)
	if err != nil {
		// The pooled connection may have died; begin already dropped it
		// so the next call redials instead of failing forever.
		return nil, err
	}
	reply, err := pending.Reply()
	if err != nil {
		p.host.muxes.Drop(p.addr)
		return nil, err
	}
	return reply, nil
}

// Post implements OneWayProtocol: the frame is written with no reply
// expected.
func (p *streamProto) Post(m *wire.Message) error {
	mux, err := p.host.muxes.Get(p.addr)
	if err != nil {
		return err
	}
	if err := mux.Post(m); err != nil {
		p.host.muxes.Drop(p.addr)
		return err
	}
	return nil
}

func (p *streamProto) Close() error { return nil } // pooled conns are shared

// streamFactory builds ProtoStream instances.
type streamFactory struct{}

func (streamFactory) ID() ProtoID { return ProtoStream }

func (streamFactory) Applicable(entry ProtoEntry, client, server netsim.Locality) bool {
	a, err := decodeAddrData(entry.Data)
	return err == nil && a.Addr != ""
}

func (streamFactory) New(entry ProtoEntry, ref *ObjectRef, host *Context) (Protocol, error) {
	a, err := decodeAddrData(entry.Data)
	if err != nil {
		return nil, err
	}
	return &streamProto{id: ProtoStream, addr: a.Addr, host: host}, nil
}

// shmFactory builds ProtoSHM instances. Same mechanism as the stream
// protocol — the difference is the unshaped in-process fabric behind the
// address and the applicability restriction.
type shmFactory struct{}

func (shmFactory) ID() ProtoID { return ProtoSHM }

func (shmFactory) Applicable(entry ProtoEntry, client, server netsim.Locality) bool {
	a, err := decodeAddrData(entry.Data)
	return err == nil && a.Addr != "" && client.SameProcess(server)
}

func (shmFactory) New(entry ProtoEntry, ref *ObjectRef, host *Context) (Protocol, error) {
	a, err := decodeAddrData(entry.Data)
	if err != nil {
		return nil, err
	}
	return &streamProto{id: ProtoSHM, addr: a.Addr, host: host}, nil
}

// nexusProto carries frames embedded in Nexus remote service requests.
type nexusProto struct {
	sp   nexus.Startpoint
	host *Context
}

func (p *nexusProto) ID() ProtoID { return ProtoNexus }

func (p *nexusProto) Call(m *wire.Message) (*wire.Message, error) {
	e := xdr.NewEncoder(64 + len(m.Body))
	if err := m.MarshalXDR(e); err != nil {
		return nil, err
	}
	out, err := p.host.nexus().RSR(p.sp, orbInvokeHandler, e.Bytes())
	if err != nil {
		return nil, err
	}
	reply := new(wire.Message)
	if err := xdr.Unmarshal(out, reply); err != nil {
		return nil, errs.Wrap(errs.Codec, err, "core: embedded reply")
	}
	return reply, nil
}

// nexusPending adapts a nexus.PendingRSR to core.Pending by decoding the
// embedded reply frame once, on first Reply.
type nexusPending struct {
	p     *nexus.PendingRSR
	once  sync.Once
	reply *wire.Message
	err   error
}

func (n *nexusPending) Done() <-chan struct{} { return n.p.Done() }

func (n *nexusPending) Reply() (*wire.Message, error) {
	n.once.Do(func() {
		out, err := n.p.Result()
		if err != nil {
			n.err = err
			return
		}
		reply := new(wire.Message)
		if err := xdr.Unmarshal(out, reply); err != nil {
			n.err = errs.Wrap(errs.Codec, err, "core: embedded reply")
			return
		}
		n.reply = reply
	})
	return n.reply, n.err
}

// Begin implements PipelinedProtocol: the RSR is issued without waiting,
// so many embedded invocations may be in flight on the Nexus connection.
func (p *nexusProto) Begin(m *wire.Message) (Pending, error) {
	e := xdr.NewEncoder(64 + len(m.Body))
	if err := m.MarshalXDR(e); err != nil {
		return nil, err
	}
	pr, err := p.host.nexus().BeginRSR(p.sp, orbInvokeHandler, e.Bytes())
	if err != nil {
		return nil, err
	}
	return &nexusPending{p: pr}, nil
}

// Post implements OneWayProtocol via a one-way Nexus RSR.
func (p *nexusProto) Post(m *wire.Message) error {
	e := xdr.NewEncoder(64 + len(m.Body))
	if err := m.MarshalXDR(e); err != nil {
		return err
	}
	return p.host.nexus().Post(p.sp, orbInvokeHandler, e.Bytes())
}

func (p *nexusProto) Close() error { return nil } // the node is shared

// nexusFactory builds ProtoNexus instances.
type nexusFactory struct{}

func (nexusFactory) ID() ProtoID { return ProtoNexus }

func (nexusFactory) Applicable(entry ProtoEntry, client, server netsim.Locality) bool {
	a, err := decodeAddrData(entry.Data)
	return err == nil && a.Addr != "" && a.Endpoint != ""
}

func (nexusFactory) New(entry ProtoEntry, ref *ObjectRef, host *Context) (Protocol, error) {
	a, err := decodeAddrData(entry.Data)
	if err != nil {
		return nil, err
	}
	return &nexusProto{sp: nexus.Startpoint{Addr: a.Addr, Endpoint: a.Endpoint}, host: host}, nil
}
