package bench

import (
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/core"
	"openhpcxx/internal/netsim"
)

func TestMeasureExchange(t *testing.T) {
	d, err := NewFig5Deployment(netsim.ProfileUnshaped)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	gp, err := d.GlobalPtr(SeriesSharedMemory)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureExchange(gp, 100, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ints != 100 || m.Bytes != 404 || m.Reps < 5 {
		t.Fatalf("measurement %+v", m)
	}
	if m.BandwidthBps <= 0 || m.AvgRTT <= 0 {
		t.Fatalf("degenerate measurement %+v", m)
	}
}

func TestFig5DeploymentSelections(t *testing.T) {
	d, err := NewFig5Deployment(netsim.ProfileUnshaped)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, name := range SeriesNames() {
		gp, err := d.GlobalPtr(name)
		if err != nil {
			t.Fatal(err)
		}
		id, err := gp.SelectedProtocol()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if id != wantProto(name) {
			t.Errorf("%s selected %s, want %s", name, id, wantProto(name))
		}
	}
	if _, err := d.GlobalPtr("nonsense"); err == nil {
		t.Fatal("unknown series accepted")
	}
}

// TestFigure5Shape checks the qualitative claims of the paper's Figure 5
// on a time-scaled ATM link: (a) every curve's bandwidth grows with
// message size, (b) the network protocols perform within a small factor
// of each other (capability overhead is dwarfed by network cost), and
// (c) shared memory is far faster than every network protocol.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shaped-network sweep")
	}
	// The unscaled ATM profile keeps the network (not the CPU) as the
	// bottleneck even under the race detector's slowdown, so the
	// shm-vs-network gap stays robustly wide.
	series, err := RunFigure5(Fig5Config{
		Profile:     netsim.ProfileATM155,
		Sizes:       []int{16, 4096, 65536},
		MinReps:     3,
		MinDuration: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
		last := len(s.Points) - 1
		if s.Points[last].BandwidthBps <= s.Points[0].BandwidthBps {
			t.Errorf("%s: bandwidth not increasing with size (%.0f -> %.0f)",
				s.Name, s.Points[0].BandwidthBps, s.Points[last].BandwidthBps)
		}
	}
	last := len(byName[SeriesNexus].Points) - 1
	netBW := []float64{
		byName[SeriesGlueTimeout].Points[last].BandwidthBps,
		byName[SeriesGlueSecurity].Points[last].BandwidthBps,
		byName[SeriesNexus].Points[last].BandwidthBps,
	}
	minNet, maxNet := netBW[0], netBW[0]
	for _, v := range netBW[1:] {
		if v < minNet {
			minNet = v
		}
		if v > maxNet {
			maxNet = v
		}
	}
	if maxNet/minNet > 4 {
		t.Errorf("network protocols diverge: %.1f..%.1f Mbps", minNet/1e6, maxNet/1e6)
	}
	shm := byName[SeriesSharedMemory].Points[last].BandwidthBps
	// The race detector slows the CPU-bound shared-memory path ~10x,
	// compressing its advantage; the network curves are link-bound and
	// unaffected. Demand a smaller (but still decisive) factor there.
	factor := 3.0
	if raceEnabled {
		factor = 1.5
	}
	if shm < factor*maxNet {
		t.Errorf("shared memory (%.1f Mbps) not clearly faster than network (%.1f Mbps)",
			shm/1e6, maxNet/1e6)
	}
}

func TestFigure4Selection(t *testing.T) {
	steps, err := RunFigure4(Fig4Config{
		SampleInts:  1024,
		MinReps:     2,
		MinDuration: 5 * time.Millisecond,
		Profile:     netsim.ProfileUnshaped,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Fig4Expected()
	if len(steps) != len(want) {
		t.Fatalf("%d steps", len(steps))
	}
	for i, s := range steps {
		if s.Selected != want[i] {
			t.Errorf("step %d (at %s): selected %s, want %s", s.Step, s.Machine, s.Selected, want[i])
		}
	}
	// The two glue stations must have used *different* glue entries.
	if steps[0].Detail != "quota+encrypt" || steps[1].Detail != "quota" {
		t.Errorf("glue details: %q, %q", steps[0].Detail, steps[1].Detail)
	}
	// Steps are numbered 1,3,5,7 like the paper's request phases.
	for i, s := range steps {
		if s.Step != 1+2*i {
			t.Errorf("step number %d", s.Step)
		}
	}
}

func TestFigure3Scenario(t *testing.T) {
	phases, err := RunFigure3()
	if err != nil {
		t.Fatal(err)
	}
	want := Fig3Expected()
	if len(phases) != len(want) {
		t.Fatalf("%d phases", len(phases))
	}
	for i, p := range phases {
		if len(p.Clients) != 2 {
			t.Fatalf("phase %d has %d clients", i, len(p.Clients))
		}
		for j, c := range p.Clients {
			if c.Authenticated != want[i][j] {
				t.Errorf("phase %d client %s: authenticated=%v, want %v", i+1, c.Name, c.Authenticated, want[i][j])
			}
			// Authentication == glue selected; otherwise Nexus.
			wantProto := core.ProtoNexus
			if want[i][j] {
				wantProto = core.ProtoGlue
			}
			if c.Selected != wantProto {
				t.Errorf("phase %d client %s: selected %s", i+1, c.Name, c.Selected)
			}
		}
	}
}

func TestRunFigure1Report(t *testing.T) {
	r, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	text := FormatPathReport(r)
	for _, want := range []string{"protocol object P", "protocol class C", "server object"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestRunFigure2Report(t *testing.T) {
	r, err := RunFigure2()
	if err != nil {
		t.Fatal(err)
	}
	text := FormatPathReport(r)
	for _, want := range []string{
		"envelope[0] = glue",
		"envelope[1] = encrypt",
		"envelope[2] = quota",
		"ciphertext",
		"quota charged: used=1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "cleartext") {
		t.Error("body leaked in cleartext")
	}
}

func TestFormatters(t *testing.T) {
	series := []Series{{
		Name: "x",
		Points: []Measurement{
			{Ints: 1, Bytes: 8, Reps: 3, AvgRTT: time.Millisecond, BandwidthBps: 1e6},
			{Ints: 1024, Bytes: 4100, Reps: 3, AvgRTT: time.Millisecond, BandwidthBps: 64e6},
		},
	}}
	tbl := FormatFigure5("t", series)
	if !strings.Contains(tbl, "1024") || !strings.Contains(tbl, "64.000 Mbps") {
		t.Errorf("table:\n%s", tbl)
	}
	plot := FormatFigure5ASCII("t", series)
	if !strings.Contains(plot, "t=x") {
		t.Errorf("plot legend:\n%s", plot)
	}
	if FormatFigure5ASCII("t", nil) == "" {
		t.Error("empty plot")
	}
	steps := []Fig4Step{{Step: 1, Context: "S1", Machine: "M1", Selected: core.ProtoGlue, Detail: "quota", Sample: Measurement{BandwidthBps: 2e6}}}
	if !strings.Contains(FormatFigure4(steps), "glue (quota)") {
		t.Error("fig4 table")
	}
	phases := []Fig3Phase{{ServerMachine: "srv1", Clients: []Fig3Client{{Name: "P1", Machine: "p1", Selected: core.ProtoNexus}}}}
	if !strings.Contains(FormatFigure3(phases), "no authentication") {
		t.Error("fig3 format")
	}
}

func TestSizes1ToM(t *testing.T) {
	s := Sizes1ToM()
	if s[0] != 1 || s[len(s)-1] != 1<<20 {
		t.Fatalf("sizes %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1]*4 {
			t.Fatalf("sizes %v", s)
		}
	}
}

func TestLossSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep")
	}
	points, err := RunLossSweep(LossSweepConfig{
		Rates:       []float64{0, 0.3},
		Ints:        2048,
		MinReps:     3,
		MinDuration: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	// Loss costs goodput (retransmissions), but the protocol survives.
	if points[0].Sample.BandwidthBps <= points[1].Sample.BandwidthBps {
		t.Errorf("goodput did not degrade with loss: %.1f vs %.1f Mbps",
			points[0].Sample.BandwidthBps/1e6, points[1].Sample.BandwidthBps/1e6)
	}
	if points[1].Sample.BandwidthBps <= 0 {
		t.Error("protocol died under loss")
	}
	text := FormatLossSweep(points)
	if !strings.Contains(text, "udprel") || !strings.Contains(text, "30%") {
		t.Errorf("format:\n%s", text)
	}
}
