// Package core implements the Open HPC++ ORB: contexts, object
// references with ordered protocol tables, global pointers, protocol
// object pools, and automatic run-time protocol selection.
//
// The design follows the paper's Open Implementation principle: the ORB
// hides the mechanics of each communication protocol behind the Protocol
// interface, but exposes the protocol *decision* — which protocol a
// global pointer uses for a given remote request — to the application
// through ordered protocol tables (in object references) and protocol
// pools (per context), both of which applications may inspect, reorder,
// and extend with custom protocols.
package core

import (
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/xdr"
)

// ObjectID names a server object uniquely within a deployment
// ("context-name/obj-N").
type ObjectID string

// ProtoID names a protocol kind ("shm", "hpcx-tcp", "nexus-tcp", "glue").
type ProtoID string

// ProtoEntry is one row of an object reference's protocol table: a
// protocol kind plus protocol-specific data (addresses, capability
// configurations) opaque to the ORB — the paper's "proto-data".
type ProtoEntry struct {
	ID   ProtoID
	Data []byte
}

// MarshalXDR encodes the entry.
func (p *ProtoEntry) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(string(p.ID))
	e.PutOpaque(p.Data)
	return nil
}

// UnmarshalXDR decodes the entry.
func (p *ProtoEntry) UnmarshalXDR(d *xdr.Decoder) error {
	s, err := d.String()
	if err != nil {
		return err
	}
	p.ID = ProtoID(s)
	p.Data, err = d.Opaque()
	return err
}

// ObjectRef (the paper's OR) uniquely identifies an Open HPC++ server
// object and carries the table of protocols, ordered by preference, that
// the server is willing to support for this reference. Different ORs for
// one object may carry different tables, which is how a server offers
// different kinds of access to different clients.
type ObjectRef struct {
	Object ObjectID
	Iface  string
	// Epoch counts migrations; stale references are detected and
	// refreshed through FaultMoved replies.
	Epoch uint64
	// Server is the locality of the context currently hosting the
	// object; applicability predicates compare it with the client's.
	Server netsim.Locality
	// Protocols is the preference-ordered protocol table.
	Protocols []ProtoEntry
}

// MarshalXDR encodes the reference.
func (r *ObjectRef) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(string(r.Object))
	e.PutString(r.Iface)
	e.PutUint64(r.Epoch)
	marshalLocality(e, r.Server)
	e.PutUint32(uint32(len(r.Protocols)))
	for i := range r.Protocols {
		if err := r.Protocols[i].MarshalXDR(e); err != nil {
			return err
		}
	}
	return nil
}

// UnmarshalXDR decodes the reference.
func (r *ObjectRef) UnmarshalXDR(d *xdr.Decoder) error {
	s, err := d.String()
	if err != nil {
		return err
	}
	r.Object = ObjectID(s)
	if r.Iface, err = d.String(); err != nil {
		return err
	}
	if r.Epoch, err = d.Uint64(); err != nil {
		return err
	}
	if r.Server, err = unmarshalLocality(d); err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > 64 {
		return errs.Newf(errs.Codec, "core: protocol table of %d entries exceeds limit", n)
	}
	r.Protocols = make([]ProtoEntry, n)
	for i := range r.Protocols {
		if err := r.Protocols[i].UnmarshalXDR(d); err != nil {
			return err
		}
	}
	return nil
}

// EncodeRef serializes a reference for transmission (registry entries,
// FaultMoved payloads, capability passing between processes).
func EncodeRef(r *ObjectRef) ([]byte, error) { return xdr.Marshal(r) }

// DecodeRef parses a serialized reference.
func DecodeRef(p []byte) (*ObjectRef, error) {
	r := new(ObjectRef)
	if err := xdr.Unmarshal(p, r); err != nil {
		return nil, err
	}
	return r, nil
}

// Clone returns a deep copy; callers may reorder the copy's protocol
// table without affecting the original (user control over selection).
func (r *ObjectRef) Clone() *ObjectRef {
	c := *r
	c.Protocols = make([]ProtoEntry, len(r.Protocols))
	for i, p := range r.Protocols {
		c.Protocols[i] = ProtoEntry{ID: p.ID, Data: append([]byte(nil), p.Data...)}
	}
	return &c
}

// ProtoIDs lists the table's protocol kinds in preference order.
func (r *ObjectRef) ProtoIDs() []ProtoID {
	ids := make([]ProtoID, len(r.Protocols))
	for i, p := range r.Protocols {
		ids[i] = p.ID
	}
	return ids
}

func marshalLocality(e *xdr.Encoder, l netsim.Locality) {
	e.PutString(string(l.Machine))
	e.PutString(string(l.LAN))
	e.PutString(string(l.Campus))
	e.PutString(l.Process)
}

func unmarshalLocality(d *xdr.Decoder) (netsim.Locality, error) {
	var l netsim.Locality
	m, err := d.String()
	if err != nil {
		return l, err
	}
	lan, err := d.String()
	if err != nil {
		return l, err
	}
	campus, err := d.String()
	if err != nil {
		return l, err
	}
	proc, err := d.String()
	if err != nil {
		return l, err
	}
	l.Machine = netsim.MachineID(m)
	l.LAN = netsim.LANID(lan)
	l.Campus = netsim.CampusID(campus)
	l.Process = proc
	return l, nil
}
