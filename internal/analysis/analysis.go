// Package analysis is the project's own static-analyzer suite: a small,
// dependency-free driver (go/parser + go/types with the source importer)
// plus the analyzers that machine-check the contracts the runtime's
// correctness arguments rest on.
//
// The paper's position is that opening the ORB's internals is safe only
// while the open parts obey strict contracts — ordered protocol tables,
// capability chains that always un-process, instrumentation that costs
// nothing when off. The codebase grew the same kind of contracts:
// injected clocks so fault suites are deterministic, span begin/end
// pairing so traces stay connected, quota refunds on failure, no
// blocking while a mutex is held on mux/pool paths. All of them regress
// silently in review; each analyzer here encodes one of them so `make
// lint` catches the regression instead.
//
// The analyzers:
//
//   - nosleep:     time.Sleep/time.After/time.NewTimer outside
//     internal/clock (tests included) — use the injected clock.
//   - lockedblock: no channel operation, Invoke*, net.Conn write/read,
//     or clock wait between an explicit mu.Lock() and its Unlock().
//   - spanend:     every obs span started in a function ends on all
//     return paths (or is deferred, or ownership escapes).
//   - checkederr:  wire encode/decode, transport send/close, and
//     capability process/unprocess errors may not be discarded.
//   - ctxflow:     exported *Ctx functions must thread their context
//     into callees — no context.Background(), no dropping into a
//     non-Ctx sibling.
//   - wirever:     wire-format version constants are compared/branched
//     only inside internal/wire.
//   - codederr:    errors are built with the errs constructors so they
//     carry a taxonomy code — no naked fmt.Errorf outside internal/errs
//     (test files exempt).
//   - golife:      every goroutine spawned outside tests has a provable
//     exit path — no infinite loop without a return/break/terminal, no
//     empty select{}.
//   - lockorder:   nested mutex acquisitions must follow the edges
//     declared in lockorder.manifest; inversions of declared edges are
//     deadlock-capable cycles.
//   - caprefund:   a capability quota/ratelimit charge (Process or
//     wrapRequest) is refunded on every error return.
//
// spanend, golife's sibling caprefund, and any future ownership check
// share the lifecycle engine in lifecycle.go: acquire-site detection,
// per-path release obligations, escape/hand-off and defer handling,
// and nil/error-guard path refinement, parameterized by matchers.
//
// Deliberate violations are suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>|all] <reason>
//
// on, or immediately above, the offending line. The reason is
// mandatory. When the full suite runs, a directive that suppresses
// nothing is itself reported (as staleignore): delete suppressions
// that have outlived their violation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"

	"openhpcxx/internal/errs"
)

// Diagnostic is one finding, formatted by the driver as
// "file:line:col: [analyzer] message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one project-invariant check.
type Analyzer struct {
	// Name keys -only/-skip selection and //lint:ignore suppression.
	Name string
	// Doc is a one-line description for the driver's -list output.
	Doc string
	// Run inspects one type-checked unit and reports through the pass.
	Run func(*Pass)
}

// Pass hands one analyzer one type-checked unit.
type Pass struct {
	Analyzer *Analyzer
	Unit     *Unit
	report   func(Diagnostic)
}

// Fset returns the unit's file set.
func (p *Pass) Fset() *token.FileSet { return p.Unit.Fset }

// Files returns the unit's syntax trees.
func (p *Pass) Files() []*ast.File { return p.Unit.Files }

// Pkg returns the unit's type-checked package.
func (p *Pass) Pkg() *types.Package { return p.Unit.Pkg }

// Info returns the unit's type information.
func (p *Pass) Info() *types.Info { return p.Unit.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Unit.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All lists every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{NoSleep, LockedBlock, SpanEnd, CheckedErr, CtxFlow, WireVer, CodedErr, GoLife, LockOrder, CapRefund}
}

// ByName resolves a comma-separated analyzer list ("nosleep,spanend").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, errs.Newf(errs.Config, "analysis: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Select filters All() down by -only / -skip expressions (either may be
// empty; -only wins over -skip).
func Select(only, skip string) ([]*Analyzer, error) {
	if only != "" {
		return ByName(only)
	}
	skipped, err := ByName(skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range All() {
		drop := false
		for _, s := range skipped {
			if s == a {
				drop = true
			}
		}
		if !drop {
			out = append(out, a)
		}
	}
	return out, nil
}

// Timing is one analyzer's cumulative wall time across all units.
type Timing struct {
	Name     string
	Duration time.Duration
}

// StaleIgnoreName is the pseudo-analyzer stale-suppression findings are
// reported under. It has no Run function and is not in All(): the
// driver itself emits these, and only when the full suite ran — a
// partial -only/-skip run cannot tell "the directive is stale" from
// "the analyzer it mutes didn't run".
const StaleIgnoreName = "staleignore"

// Run executes the analyzers over the units, applies //lint:ignore
// suppressions, and returns the surviving findings sorted by position.
// When the run includes every analyzer in All(), a //lint:ignore that
// suppressed nothing is itself reported (as staleignore): a suppression
// that has outlived its violation hides nothing today and a real
// finding tomorrow.
func Run(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(units, analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer cumulative wall time, for the
// driver's -v output.
func RunTimed(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	var diags []Diagnostic
	elapsed := map[string]time.Duration{}
	full := runsFullSuite(analyzers)
	for _, u := range units {
		sup := suppressions(u)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Unit: u}
			pass.report = func(d Diagnostic) {
				if !sup.covers(d) {
					diags = append(diags, d)
				}
			}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
		if full {
			for _, dir := range sup.list {
				if !dir.used {
					diags = append(diags, Diagnostic{
						Pos:      dir.pos,
						Analyzer: StaleIgnoreName,
						Message: fmt.Sprintf("stale suppression: no %s finding fires here anymore — delete this //lint:ignore (reason was: %s)",
							strings.Join(dir.names, ","), dir.reason),
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	var timings []Timing
	for _, a := range analyzers {
		timings = append(timings, Timing{Name: a.Name, Duration: elapsed[a.Name]})
	}
	return diags, timings
}

// runsFullSuite reports whether the analyzer set covers all of All(),
// which is what arms stale-suppression detection.
func runsFullSuite(analyzers []*Analyzer) bool {
	have := map[string]bool{}
	for _, a := range analyzers {
		have[a.Name] = true
	}
	for _, a := range All() {
		if !have[a.Name] {
			return false
		}
	}
	return true
}

// Ignore is one //lint:ignore directive, for the driver's -ignores
// inventory mode.
type Ignore struct {
	Pos    token.Position `json:"-"`
	File   string         `json:"file"`
	Line   int            `json:"line"`
	Names  []string       `json:"analyzers"`
	Reason string         `json:"reason"`
}

// Ignores lists every //lint:ignore directive in the units, in position
// order.
func Ignores(units []*Unit) []Ignore {
	var out []Ignore
	for _, u := range units {
		for _, dir := range suppressions(u).list {
			out = append(out, Ignore{
				Pos:    dir.pos,
				File:   dir.pos.Filename,
				Line:   dir.pos.Line,
				Names:  dir.names,
				Reason: dir.reason,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// ---- shared type/AST helpers ----

// pathHasSuffix reports whether an import path is, or ends with, the
// given slash-separated suffix ("internal/clock" matches both
// "openhpcxx/internal/clock" and a golden-corpus "x/internal/clock").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeFunc resolves the *types.Func a call statically invokes
// (package function, method, or interface method); nil for builtins,
// type conversions, and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr: // generic instantiation F[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f
			}
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f
			}
		}
	}
	return nil
}

// funcPkgPath returns the declaring package path of f ("" for builtins).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// returnsError reports whether any of f's results is the error type.
func returnsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// walkStack traverses root calling f with each node and the stack of
// its ancestors (outermost first, not including n itself). Returning
// false prunes the subtree.
func walkStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// funcScopes yields every function body in the file — declarations and
// literals — exactly once, with a printable name.
func funcScopes(file *ast.File) []funcScope {
	var out []funcScope
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcScope{name: fn.Name.Name, decl: fn, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcScope{name: "func literal", lit: fn, body: fn.Body})
		}
		return true
	})
	return out
}

type funcScope struct {
	name string
	decl *ast.FuncDecl
	lit  *ast.FuncLit
	body *ast.BlockStmt
}

// node returns the function node itself.
func (s funcScope) node() ast.Node {
	if s.decl != nil {
		return s.decl
	}
	return s.lit
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+(\S.*)$`)

// ignoreDirective is one parsed //lint:ignore comment. used flips when
// the directive actually suppresses a finding, which is what separates
// a live suppression from a stale one.
type ignoreDirective struct {
	pos    token.Position
	names  []string
	reason string
	used   bool
}

func (d *ignoreDirective) muting(analyzer string) bool {
	for _, n := range d.names {
		if n == "all" || n == analyzer {
			return true
		}
	}
	return false
}

// suppressionIndex holds a unit's directives, indexed by the file lines
// they mute (their own line and the line directly below).
type suppressionIndex struct {
	list   []*ignoreDirective
	byLine map[string]map[int][]*ignoreDirective
}

func (s *suppressionIndex) covers(d Diagnostic) bool {
	covered := false
	for _, dir := range s.byLine[d.Pos.Filename][d.Pos.Line] {
		if dir.muting(d.Analyzer) {
			dir.used = true
			covered = true
		}
	}
	return covered
}

// suppressions scans a unit's comments for //lint:ignore directives. A
// directive mutes the named analyzers on its own line and on the line
// directly below it (so it can trail the offending statement or sit
// above it). The reason is mandatory — a directive without one does not
// parse and suppresses nothing.
func suppressions(u *Unit) *suppressionIndex {
	idx := &suppressionIndex{byLine: map[string]map[int][]*ignoreDirective{}}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				dir := &ignoreDirective{
					pos:    u.Fset.Position(c.Pos()),
					reason: strings.TrimSpace(m[2]),
				}
				for _, n := range strings.Split(m[1], ",") {
					dir.names = append(dir.names, strings.TrimSpace(n))
				}
				idx.list = append(idx.list, dir)
				byLine := idx.byLine[dir.pos.Filename]
				if byLine == nil {
					byLine = map[int][]*ignoreDirective{}
					idx.byLine[dir.pos.Filename] = byLine
				}
				for _, line := range []int{dir.pos.Line, dir.pos.Line + 1} {
					byLine[line] = append(byLine[line], dir)
				}
			}
		}
	}
	return idx
}
