package core

import (
	"openhpcxx/internal/errs"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/wire"
)

// stampTrace copies an open root span's identity into a request header
// so server-side spans join the caller's trace (wire v3), plus the
// retention keep-hint bit (wire v4): when a tail-based keeper has
// already decided this trace is not worth keeping, the bit is clear and
// downstream servers skip buffering its spans. A nil span — the
// no-recorder fast path — leaves the header untraced (zero IDs), which
// old and new peers alike treat as "don't trace".
func stampTrace(t *obs.Tracer, m *wire.Message, root *obs.Active) {
	if root != nil {
		m.TraceID, m.SpanID = uint64(root.TraceID()), uint64(root.SpanID())
		m.SetKeepHint(t.KeepHintFor(root.TraceID()))
	}
}

// retryCause renders the error that triggered a retry for span records
// by its taxonomy code name ("moved", "unavailable", "transport", ...):
// wire faults and in-process coded errors classify identically.
func retryCause(err error) string {
	if err == nil {
		return ""
	}
	if c := errs.CodeOf(err); c != errs.Unknown {
		return c.String()
	}
	return "transport"
}

// envCaps joins an envelope chain's capability kinds (everything after
// the leading glue entry) in processing order, for Span.Caps.
func envCaps(envs []wire.Envelope) string {
	if len(envs) <= 1 {
		return ""
	}
	n := 0
	for _, e := range envs[1:] {
		n += len(e.ID) + 1
	}
	b := make([]byte, 0, n)
	for i, e := range envs[1:] {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, e.ID...)
	}
	return string(b)
}
