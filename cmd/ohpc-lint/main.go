// ohpc-lint runs the project's invariant analyzers (internal/analysis)
// over the tree and fails on any finding.
//
// Usage:
//
//	ohpc-lint [-only a,b] [-skip a,b] [-list] [packages...]
//
// Packages default to ./internal/... ./cmd/... relative to the module
// root (found by walking up from the working directory). Diagnostics
// print as "file:line:col: [analyzer] message"; the exit status is 1
// when anything was reported, 2 on usage or load errors. Suppress a
// deliberate violation with
//
//	//lint:ignore <analyzer>[,<analyzer>|all] <reason>
//
// on, or directly above, the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"openhpcxx/internal/analysis"
	"openhpcxx/internal/errs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ohpc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(stderr, "ohpc-lint: no analyzers selected")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "ohpc-lint:", err)
		return 2
	}
	units, err := analysis.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "ohpc-lint:", err)
		return 2
	}
	diags := analysis.Run(units, analyzers)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ohpc-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errs.Newf(errs.Config, "no go.mod above %s", dir)
		}
		dir = parent
	}
}
