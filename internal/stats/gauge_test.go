package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %d, want 8", got)
	}
	g.Add(-20)
	if got := g.Value(); got != -12 {
		t.Fatalf("gauge = %d, want -12 (gauges may go negative)", got)
	}
}

func TestNilGaugeIsNoOp(t *testing.T) {
	var g *Gauge
	g.Set(5)
	g.Add(3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %d, want 0", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := New()
	g := r.Gauge("g")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge after balanced inc/dec = %d, want 0", got)
	}
}

func TestRegistryGaugeIdentity(t *testing.T) {
	r := New()
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("same name must return the same gauge")
	}
	if r.Gauge("x") == r.Gauge("y") {
		t.Fatal("different names must return different gauges")
	}
}

func TestKeyWithLabels(t *testing.T) {
	got := KeyWithLabels("srv.conns", Labels{"b": "2", "a": "1"})
	want := `srv.conns{a="1",b="2"}`
	if got != want {
		t.Fatalf("KeyWithLabels = %q, want %q (sorted keys)", got, want)
	}
	if KeyWithLabels("n", nil) != "n" {
		t.Fatal("empty labels must leave the name bare")
	}
	esc := KeyWithLabels("n", Labels{"k": "a\"b\\c\nd"})
	if esc != `n{k="a\"b\\c\nd"}` {
		t.Fatalf("escaping = %q", esc)
	}
}

func TestLabeledMetricsSeparateSeries(t *testing.T) {
	r := New()
	r.GaugeWith("g", Labels{"ep": "a"}).Set(1)
	r.GaugeWith("g", Labels{"ep": "b"}).Set(2)
	r.CounterWith("c", Labels{"ep": "a"}).Inc()
	r.HistogramWith("h", Labels{"ep": "a"}).Observe(7)
	s := r.Snapshot()
	if s.Gauges[`g{ep="a"}`] != 1 || s.Gauges[`g{ep="b"}`] != 2 {
		t.Fatalf("labeled gauges wrong: %v", s.Gauges)
	}
	if s.Counters[`c{ep="a"}`] != 1 {
		t.Fatalf("labeled counter wrong: %v", s.Counters)
	}
	if s.Histograms[`h{ep="a"}`].Count != 1 {
		t.Fatalf("labeled histogram wrong: %v", s.Histograms)
	}
}

func TestWriteToDeterministicSorted(t *testing.T) {
	r := New()
	r.Counter("z.second").Add(2)
	r.Counter("a.first").Inc()
	r.Gauge("m.gauge").Set(-3)
	r.Histogram("h.lat").Observe(10)
	var a, b strings.Builder
	if _, err := r.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("consecutive WriteTo of an unchanged registry must be byte-identical")
	}
	out := a.String()
	if strings.Index(out, "a.first") > strings.Index(out, "z.second") {
		t.Fatalf("counters must render in sorted order:\n%s", out)
	}
	for _, want := range []string{`"a.first": 1`, `"m.gauge": -3`, `"gauges"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteTo output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("rpc.shm.calls").Add(3)
	r.GaugeWith("health.breaker_state", Labels{"endpoint": "hpcx-tcp|sim://m:1"}).Set(1)
	r.Histogram("rpc.shm.latency_us").Observe(100)
	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rpc_shm_calls counter\n",
		"rpc_shm_calls 3\n",
		"# TYPE health_breaker_state gauge\n",
		`health_breaker_state{endpoint="hpcx-tcp|sim://m:1"} 1` + "\n",
		"# TYPE rpc_shm_latency_us summary\n",
		`rpc_shm_latency_us{quantile="0.5"}`,
		"rpc_shm_latency_us_sum 100\n",
		"rpc_shm_latency_us_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, out)
		}
	}
	// Determinism: consecutive scrapes of an unchanged registry are
	// byte-identical.
	var c strings.Builder
	if err := r.Snapshot().WriteProm(&c); err != nil {
		t.Fatal(err)
	}
	if out != c.String() {
		t.Fatal("consecutive scrapes must be byte-identical")
	}
}

func TestSanitizePromName(t *testing.T) {
	for in, want := range map[string]string{
		"rpc.shm.calls": "rpc_shm_calls",
		"9lives":        "_lives",
		"ok_name:x":     "ok_name:x",
		"sp ace":        "sp_ace",
	} {
		if got := sanitizePromName(in); got != want {
			t.Fatalf("sanitizePromName(%q) = %q, want %q", in, got, want)
		}
	}
}
