package capability

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
)

// recordingCap logs Process/Unprocess invocations into a shared journal
// so tests can assert the Figure 2 ordering exactly.
type recordingCap struct {
	kind    string
	journal *journal
}

type journal struct {
	mu      sync.Mutex
	entries []string
}

func (j *journal) add(s string) {
	j.mu.Lock()
	j.entries = append(j.entries, s)
	j.mu.Unlock()
}

func (j *journal) list() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.entries...)
}

func (c *recordingCap) Kind() string                         { return c.kind }
func (c *recordingCap) Applicable(_, _ netsim.Locality) bool { return true }
func (c *recordingCap) Config() ([]byte, error)              { return []byte(c.kind), nil }
func (c *recordingCap) Process(f *Frame, body []byte) ([]byte, []byte, error) {
	c.journal.add(c.kind + ".process." + f.Dir.String())
	// Tag the body so mis-ordered unprocessing is visible in content.
	return append(append([]byte(nil), body...), []byte("+"+c.kind)...), nil, nil
}
func (c *recordingCap) Unprocess(f *Frame, env, body []byte) ([]byte, error) {
	c.journal.add(c.kind + ".unprocess." + f.Dir.String())
	suffix := []byte("+" + c.kind)
	if !bytes.HasSuffix(body, suffix) {
		return nil, wire.Faultf(wire.FaultCapability, "%s: out-of-order unprocess on %q", c.kind, body)
	}
	return body[:len(body)-len(suffix)], nil
}

// localProto loops a message straight into a dispatcher function —
// a base protocol with no transport, for glue unit tests.
type localProto struct {
	handle func(*wire.Message) *wire.Message
}

func (p *localProto) ID() core.ProtoID { return "local" }
func (p *localProto) Call(m *wire.Message) (*wire.Message, error) {
	if r := p.handle(m); r != nil {
		return r, nil
	}
	return nil, errors.New("no reply")
}
func (p *localProto) Close() error { return nil }

func TestGlueOrderingFigure2(t *testing.T) {
	// Figure 2: client processes C1 then C2; server un-processes in the
	// reverse order (C2 then C1); the reply retraces the path.
	j := &journal{}
	c1 := &recordingCap{kind: "c1", journal: j}
	c2 := &recordingCap{kind: "c2", journal: j}
	sc1 := &recordingCap{kind: "c1", journal: j}
	sc2 := &recordingCap{kind: "c2", journal: j}

	gs := NewGlueServer("t", []Capability{sc1, sc2}, clock.Real{})
	var gotBody []byte
	base := &localProto{handle: func(m *wire.Message) *wire.Message {
		body, err := gs.UnwrapRequest(m)
		if err != nil {
			t.Fatalf("unwrap: %v", err)
		}
		gotBody = body
		reply, err := gs.WrapReply(m, append([]byte("re:"), body...))
		if err != nil {
			t.Fatalf("wrap: %v", err)
		}
		return reply
	}}

	g := NewGlue("t", base, clock.Real{}, c1, c2)
	reply, err := g.Call(&wire.Message{Type: wire.TRequest, Object: "o", Method: "m", Body: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBody) != "x" {
		t.Fatalf("server saw %q", gotBody)
	}
	if string(reply.Body) != "re:x" {
		t.Fatalf("client saw %q", reply.Body)
	}
	want := []string{
		"c1.process.request", "c2.process.request", // client out
		"c2.unprocess.request", "c1.unprocess.request", // server in (reverse)
		"c1.process.reply", "c2.process.reply", // server out
		"c2.unprocess.reply", "c1.unprocess.reply", // client in (reverse)
	}
	got := j.list()
	if len(got) != len(want) {
		t.Fatalf("journal %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d = %s, want %s (journal %v)", i, got[i], want[i], got)
		}
	}
}

func TestGlueServerEnvelopeMismatch(t *testing.T) {
	j := &journal{}
	gs := NewGlueServer("t", []Capability{&recordingCap{kind: "c1", journal: j}}, clock.Real{})

	// Wrong count.
	_, err := gs.UnwrapRequest(&wire.Message{Envelopes: []wire.Envelope{{ID: core.GlueEnvelopeID, Data: []byte("t")}}})
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultCapability {
		t.Fatalf("count mismatch: %v", err)
	}
	// Wrong kind in slot.
	_, err = gs.UnwrapRequest(&wire.Message{Envelopes: []wire.Envelope{
		{ID: core.GlueEnvelopeID, Data: []byte("t")},
		{ID: "other"},
	}})
	if !errors.As(err, &f) || f.Code != wire.FaultCapability {
		t.Fatalf("kind mismatch: %v", err)
	}
}

func TestGlueClientReplyValidation(t *testing.T) {
	j := &journal{}
	c1 := &recordingCap{kind: "c1", journal: j}
	// Base returns a reply with no envelopes at all.
	base := &localProto{handle: func(m *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TReply, Body: []byte("bare")}
	}}
	g := NewGlue("t", base, clock.Real{}, c1)
	_, err := g.Call(&wire.Message{Type: wire.TRequest, Object: "o", Method: "m"})
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultCapability {
		t.Fatalf("bare reply accepted: %v", err)
	}

	// Wrong tag.
	base2 := &localProto{handle: func(m *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TReply, Envelopes: []wire.Envelope{
			{ID: core.GlueEnvelopeID, Data: []byte("other")},
			{ID: "c1"},
		}}
	}}
	g2 := NewGlue("t", base2, clock.Real{}, c1)
	_, err = g2.Call(&wire.Message{Type: wire.TRequest})
	if !errors.As(err, &f) || f.Code != wire.FaultCapability {
		t.Fatalf("wrong tag accepted: %v", err)
	}
}

func TestGlueFaultsPassThrough(t *testing.T) {
	// Faults from the server bypass capability unwrapping.
	j := &journal{}
	c1 := &recordingCap{kind: "c1", journal: j}
	base := &localProto{handle: func(m *wire.Message) *wire.Message {
		f, _ := wire.FaultMessage(m, wire.Faultf(wire.FaultNoObject, "gone"))
		return f
	}}
	g := NewGlue("t", base, clock.Real{}, c1)
	reply, err := g.Call(&wire.Message{Type: wire.TRequest})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TFault {
		t.Fatal("fault swallowed")
	}
}

// world builds a simulated deployment for end-to-end glue tests:
// two LANs on one campus, a third LAN on another campus.
func world(t *testing.T) *core.Runtime {
	t.Helper()
	n := netsim.New()
	n.AddLAN("lan1", "campus1", netsim.ProfileUnshaped)
	n.AddLAN("lan2", "campus1", netsim.ProfileUnshaped)
	n.AddLAN("lan3", "campus2", netsim.ProfileUnshaped)
	n.CampusLink = netsim.ProfileUnshaped
	n.WANLink = netsim.ProfileUnshaped
	n.MustAddMachine("m0", "lan1")
	n.MustAddMachine("m1", "lan1")
	n.MustAddMachine("m2", "lan2")
	n.MustAddMachine("m3", "lan3")
	rt := core.NewRuntime(n, "proc1")
	Install(rt.DefaultPool())
	t.Cleanup(rt.Close)
	return rt
}

func echoServer(t *testing.T, rt *core.Runtime, name, machine string) (*core.Context, *core.Servant) {
	t.Helper()
	ctx, err := rt.NewContext(name, netsim.MachineID(machine))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.BindSim(0); err != nil {
		t.Fatal(err)
	}
	s, err := ctx.Export("Echo", nil, map[string]core.Method{
		"echo":  func(args []byte) ([]byte, error) { return args, nil },
		"upper": func(args []byte) ([]byte, error) { return bytes.ToUpper(args), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx, s
}

func TestGlueEndToEnd(t *testing.T) {
	rt := world(t)
	server, s := echoServer(t, rt, "server", "m1")
	clientCtx, err := rt.NewContext("client", "m3")
	if err != nil {
		t.Fatal(err)
	}

	base, err := server.EntryStream()
	if err != nil {
		t.Fatal(err)
	}
	glueE, err := GlueEntry(server, "sec", base,
		MustNewEncrypt(key32(), ScopeAlways),
		NewQuota(100, time.Time{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ref := server.NewRef(s, glueE, base)

	gp := clientCtx.NewGlobalPtr(ref)
	if id, err := gp.SelectedProtocol(); err != nil || id != core.ProtoGlue {
		t.Fatalf("selected %s, %v", id, err)
	}
	out, err := gp.Invoke("upper", []byte("capabilities"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "CAPABILITIES" {
		t.Fatalf("got %q", out)
	}
}

func TestGlueQuotaEnforcedServerSide(t *testing.T) {
	rt := world(t)
	server, s := echoServer(t, rt, "server", "m1")
	clientCtx, _ := rt.NewContext("client", "m2")

	base, _ := server.EntryStream()
	glueE, err := GlueEntry(server, "metered", base, NewQuota(2, time.Time{}))
	if err != nil {
		t.Fatal(err)
	}
	ref := server.NewRef(s, glueE)
	gp := clientCtx.NewGlobalPtr(ref)

	for i := 0; i < 2; i++ {
		if _, err := gp.Invoke("echo", []byte("x")); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	_, err = gp.Invoke("echo", []byte("x"))
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultQuota {
		t.Fatalf("third call: %v", err)
	}
}

func TestGlueQuotaSurvivesClientRebuild(t *testing.T) {
	// A fresh client GP (new capability instances) must not reset the
	// server-side quota: the server's copies are authoritative.
	rt := world(t)
	server, s := echoServer(t, rt, "server", "m1")
	c1, _ := rt.NewContext("c1", "m2")
	c2, _ := rt.NewContext("c2", "m2")

	base, _ := server.EntryStream()
	glueE, _ := GlueEntry(server, "once", base, NewQuota(2, time.Time{}))
	ref := server.NewRef(s, glueE)

	if _, err := c1.NewGlobalPtr(ref).Invoke("echo", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.NewGlobalPtr(ref).Invoke("echo", nil); err != nil {
		t.Fatal(err)
	}
	_, err := c2.NewGlobalPtr(ref).Invoke("echo", nil)
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultQuota {
		t.Fatalf("server-side quota not authoritative: %v", err)
	}
}

func TestGlueApplicabilityAND(t *testing.T) {
	// §4.3: glue applicability is the AND of its capabilities. An auth
	// capability scoped cross-LAN makes the whole glue entry
	// non-applicable for a same-LAN client, which then falls through to
	// the next table entry.
	rt := world(t)
	server, s := echoServer(t, rt, "server", "m1")
	sameLAN, _ := rt.NewContext("near", "m0") // lan1, same as server
	otherLAN, _ := rt.NewContext("far", "m2") // lan2

	base, _ := server.EntryStream()
	glueE, err := GlueEntry(server, "authd", base,
		MustNewAuth("client", []byte("k"), ScopeCrossLAN))
	if err != nil {
		t.Fatal(err)
	}
	ref := server.NewRef(s, glueE, base) // glue preferred, plain fallback

	gpNear := sameLAN.NewGlobalPtr(ref)
	if id, err := gpNear.SelectedProtocol(); err != nil || id != core.ProtoStream {
		t.Fatalf("near client selected %s, %v", id, err)
	}
	gpFar := otherLAN.NewGlobalPtr(ref)
	if id, err := gpFar.SelectedProtocol(); err != nil || id != core.ProtoGlue {
		t.Fatalf("far client selected %s, %v", id, err)
	}
	if _, err := gpFar.Invoke("echo", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := gpNear.Invoke("echo", []byte("z")); err != nil {
		t.Fatal(err)
	}
}

func TestGluePassedBetweenProcesses(t *testing.T) {
	// Capabilities travel with the reference: serialize the OR (as the
	// registry would), hand it to a different runtime ("another
	// process"), and invoke — including the capability set.
	n := netsim.New()
	n.AddLAN("lan1", "campus1", netsim.ProfileUnshaped)
	n.AddLAN("lan2", "campus2", netsim.ProfileUnshaped)
	n.MustAddMachine("m1", "lan1")
	n.MustAddMachine("m2", "lan2")
	n.WANLink = netsim.ProfileUnshaped

	rtServer := core.NewRuntime(n, "procS")
	Install(rtServer.DefaultPool())
	defer rtServer.Close()
	rtClient := core.NewRuntime(n, "procC")
	Install(rtClient.DefaultPool())
	defer rtClient.Close()

	server, err := rtServer.NewContext("server", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if err := server.BindSim(0); err != nil {
		t.Fatal(err)
	}
	s, _ := server.Export("Echo", nil, map[string]core.Method{
		"echo": func(args []byte) ([]byte, error) { return args, nil },
	})
	base, _ := server.EntryStream()
	glueE, _ := GlueEntry(server, "roaming", base,
		MustNewEncrypt(key32(), ScopeAlways), NewQuota(5, time.Time{}))
	ref := server.NewRef(s, glueE)

	blob, err := core.EncodeRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.DecodeRef(blob)
	if err != nil {
		t.Fatal(err)
	}

	client, err := rtClient.NewContext("client", "m2")
	if err != nil {
		t.Fatal(err)
	}
	gp := client.NewGlobalPtr(got)
	out, err := gp.Invoke("echo", []byte("across processes"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "across processes" {
		t.Fatalf("got %q", out)
	}
}

func TestGlueFactoryBadData(t *testing.T) {
	pool := core.NewProtoPool()
	Install(pool)
	f, ok := pool.Lookup(core.ProtoGlue)
	if !ok {
		t.Fatal("glue not installed")
	}
	bad := core.ProtoEntry{ID: core.ProtoGlue, Data: []byte{1, 2}}
	if f.Applicable(bad, locA1, locB1) {
		t.Fatal("garbage proto-data applicable")
	}
	if _, err := f.New(bad, &core.ObjectRef{}, nil); err == nil {
		t.Fatal("garbage proto-data instantiated")
	}
}

func TestGlueDynamicCapabilityChange(t *testing.T) {
	// "Capabilities can be changed dynamically": the server re-issues
	// the glue entry under the same tag with a different capability set;
	// clients that refresh their reference see the new behaviour.
	rt := world(t)
	server, s := echoServer(t, rt, "server", "m1")
	client, _ := rt.NewContext("client", "m2")

	base, _ := server.EntryStream()
	glueA, _ := GlueEntry(server, "dyn", base, NewQuota(1, time.Time{}))
	refA := server.NewRef(s, glueA)
	gp := client.NewGlobalPtr(refA)
	if _, err := gp.Invoke("echo", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := gp.Invoke("echo", nil); err == nil {
		t.Fatal("quota should be spent")
	}

	// Server upgrades the client: new glue with a bigger quota.
	glueB, _ := GlueEntry(server, "dyn", base, NewQuota(100, time.Time{}))
	gp.SetRef(server.NewRef(s, glueB))
	for i := 0; i < 3; i++ {
		if _, err := gp.Invoke("echo", nil); err != nil {
			t.Fatalf("after upgrade, call %d: %v", i, err)
		}
	}
}

func TestGlueOneWayPost(t *testing.T) {
	// One-way calls flow through the capability chain too: the quota is
	// charged server-side even though no reply travels back.
	rt := world(t)
	server, err := rt.NewContext("server", "m1")
	if err != nil {
		t.Fatal(err)
	}
	if err := server.BindSim(0); err != nil {
		t.Fatal(err)
	}
	hits := make(chan struct{}, 8)
	s, err := server.Export("Sink", nil, map[string]core.Method{
		"notify": func(args []byte) ([]byte, error) { hits <- struct{}{}; return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := server.EntryStream()
	glueE, err := GlueEntry(server, "oneway-metered", base,
		NewQuota(2, time.Time{}), MustNewEncrypt(key32(), ScopeAlways))
	if err != nil {
		t.Fatal(err)
	}
	client, _ := rt.NewContext("client", "m2")
	gp := client.NewGlobalPtr(server.NewRef(s, glueE))

	for i := 0; i < 2; i++ {
		if err := gp.Post("notify", []byte("ping")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case <-hits:
		case <-clock.After(clock.Real{}, 2*time.Second):
			t.Fatalf("one-way %d never arrived", i)
		}
	}
	// Third post is rejected client-side by the quota (fail fast).
	err = gp.Post("notify", []byte("ping"))
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultQuota {
		t.Fatalf("third post: %v", err)
	}
}

// watermarkCap is an application-defined capability kind: it stamps a
// deployment watermark onto requests and verifies it server-side —
// the "users can write their own capabilities" counterpart of custom
// protocols.
type watermarkCap struct{ mark string }

func (w *watermarkCap) Kind() string                         { return "x-watermark" }
func (w *watermarkCap) Applicable(_, _ netsim.Locality) bool { return true }
func (w *watermarkCap) Config() ([]byte, error)              { return []byte(w.mark), nil }
func (w *watermarkCap) Process(f *Frame, body []byte) ([]byte, []byte, error) {
	return body, []byte(w.mark), nil
}
func (w *watermarkCap) Unprocess(f *Frame, env, body []byte) ([]byte, error) {
	if string(env) != w.mark {
		return nil, wire.Faultf(wire.FaultCapability, "watermark %q, want %q", env, w.mark)
	}
	return body, nil
}

func TestCustomCapabilityKind(t *testing.T) {
	RegisterKind("x-watermark", func(config []byte) (Capability, error) {
		return &watermarkCap{mark: string(config)}, nil
	})
	rt := world(t)
	server, s := echoServer(t, rt, "server", "m1")
	client, _ := rt.NewContext("client", "m2")
	base, _ := server.EntryStream()
	glueE, err := GlueEntry(server, "marked", base, &watermarkCap{mark: "deploy-7"})
	if err != nil {
		t.Fatal(err)
	}
	gp := client.NewGlobalPtr(server.NewRef(s, glueE))
	out, err := gp.Invoke("echo", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "payload" {
		t.Fatalf("got %q", out)
	}
}

// Property: any stack drawn from the built-in capabilities round-trips
// a request/reply pair through a Glue/GlueServer twin built from the
// serialized specs — the invariant behind "capabilities can be
// exchanged between processes".
func TestQuickRandomCapabilityStacks(t *testing.T) {
	key := key32()
	builders := []func() Capability{
		func() Capability { return MustNewEncrypt(key, ScopeAlways) },
		func() Capability { return MustNewAuth("p", []byte("s"), ScopeAlways) },
		func() Capability { return NewQuota(0, time.Time{}) },
		func() Capability { return MustNewCompress(6, 16, ScopeAlways) },
		func() Capability { return NewChecksum() },
		func() Capability { return NewTrace() },
		func() Capability { return MustNewRateLimit(1e9, 1e9) },
	}
	f := func(picks []byte, body []byte) bool {
		if len(picks) > 6 {
			picks = picks[:6]
		}
		caps := make([]Capability, len(picks))
		for i, p := range picks {
			caps[i] = builders[int(p)%len(builders)]()
		}
		specs, err := Specs(caps)
		if err != nil {
			return false
		}
		serverCaps, err := Rebuild(specs)
		if err != nil {
			return false
		}
		gs := NewGlueServer("q", serverCaps, clock.Real{})
		base := &localProto{handle: func(m *wire.Message) *wire.Message {
			got, err := gs.UnwrapRequest(m)
			if err != nil {
				return nil
			}
			if !bytes.Equal(got, body) {
				return nil
			}
			reply, err := gs.WrapReply(m, append([]byte("r:"), got...))
			if err != nil {
				return nil
			}
			return reply
		}}
		g := NewGlue("q", base, clock.Real{}, caps...)
		reply, err := g.Call(&wire.Message{Type: wire.TRequest, Object: "o", Method: "m", Body: body})
		if err != nil {
			return false
		}
		return bytes.Equal(reply.Body, append([]byte("r:"), body...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeEntry(t *testing.T) {
	rt := world(t)
	server, _ := echoServer(t, rt, "server", "m1")
	base, _ := server.EntryStream()
	glueE, err := GlueEntry(server, "sec", base,
		NewQuota(5, time.Time{}), MustNewEncrypt(key32(), ScopeAlways))
	if err != nil {
		t.Fatal(err)
	}
	got := DescribeEntry(glueE)
	want := `glue[quota, encrypt] over hpcx-tcp (tag "sec")`
	if got != want {
		t.Fatalf("%q want %q", got, want)
	}
	if DescribeEntry(base) != "hpcx-tcp" {
		t.Fatal("non-glue entry")
	}
	if DescribeEntry(core.ProtoEntry{ID: core.ProtoGlue, Data: []byte{9}}) != "glue[undecodable]" {
		t.Fatal("undecodable entry")
	}
}

// rejectingCap denies every request — a stand-in for an auth or
// rate-limit capability saying no after earlier chain members already
// charged.
type rejectingCap struct{}

func (rejectingCap) Kind() string                          { return "reject" }
func (rejectingCap) Applicable(_, _ netsim.Locality) bool  { return true }
func (rejectingCap) Config() ([]byte, error)               { return nil, nil }
func (rejectingCap) Process(*Frame, []byte) ([]byte, []byte, error) {
	return nil, nil, errors.New("denied")
}
func (rejectingCap) Unprocess(*Frame, []byte, []byte) ([]byte, error) { return nil, nil }

func TestWrapRequestRefundsProcessedPrefix(t *testing.T) {
	// A chain where the quota charges and a later capability then denies:
	// the frame never leaves the client, so the quota's mirror charge
	// must be handed back. Without the prefix refund, repeated denials
	// would eat the whole budget without the server ever seeing a
	// request — the caprefund analyzer's loop-carry case.
	q := NewQuota(4, time.Time{})
	base := &localProto{handle: func(m *wire.Message) *wire.Message {
		t.Error("request reached the base protocol despite chain denial")
		return nil
	}}
	g := NewGlue("t", base, clock.Real{}, q, rejectingCap{})
	for i := 0; i < 3; i++ {
		if _, err := g.Call(&wire.Message{Type: wire.TRequest, Object: "o", Method: "m"}); err == nil {
			t.Fatal("want denial from the chain")
		}
	}
	if used := q.Used(); used != 0 {
		t.Fatalf("quota shows %d used after denied-only requests; processed prefix was not refunded", used)
	}
	// The refund must be a prefix refund, not a blanket one: a charge
	// that succeeded end-to-end stays charged.
	ok := NewGlue("t2", &localProto{handle: func(m *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TFault, Object: m.Object, Method: m.Method}
	}}, clock.Real{}, q)
	if _, err := ok.Call(&wire.Message{Type: wire.TRequest, Object: "o", Method: "m"}); err != nil {
		t.Fatal(err)
	}
	if used := q.Used(); used != 1 {
		t.Fatalf("quota shows %d used after one served request, want 1", used)
	}
}
