package bench

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// FormatFigure5 renders the bandwidth curves as the table the paper's
// Figure 5 plots: one row per array size, one column per protocol, cells
// in Mbps.
func FormatFigure5(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s", "ints")
	for _, s := range series {
		fmt.Fprintf(&b, "  %28s", s.Name)
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%-12d", series[0].Points[i].Ints)
		for _, s := range series {
			fmt.Fprintf(&b, "  %22.3f Mbps", s.Points[i].BandwidthBps/1e6)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure5ASCII renders a log-log ASCII plot akin to the paper's
// Figure 5: bandwidth (Mbps) against array size.
func FormatFigure5ASCII(title string, series []Series) string {
	const width, height = 64, 18
	if len(series) == 0 || len(series[0].Points) == 0 {
		return title + "\n(no data)\n"
	}
	minBW, maxBW := math.Inf(1), math.Inf(-1)
	minN, maxN := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			bw := p.BandwidthBps / 1e6
			minBW = math.Min(minBW, bw)
			maxBW = math.Max(maxBW, bw)
			minN = math.Min(minN, float64(p.Ints))
			maxN = math.Max(maxN, float64(p.Ints))
		}
	}
	lx := func(v float64) int {
		if maxN == minN {
			return 0
		}
		return int((math.Log10(v) - math.Log10(minN)) / (math.Log10(maxN) - math.Log10(minN)) * (width - 1))
	}
	ly := func(v float64) int {
		if maxBW == minBW {
			return 0
		}
		return int((math.Log10(v) - math.Log10(minBW)) / (math.Log10(maxBW) - math.Log10(minBW)) * (height - 1))
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'t', 's', 'M', 'N'} // timeout, +security, shm (Memory), Nexus
	legend := make([]string, 0, len(series))
	for si, s := range series {
		mark := marks[si%len(marks)]
		legend = append(legend, fmt.Sprintf("%c=%s", mark, s.Name))
		for _, p := range s.Points {
			x := lx(float64(p.Ints))
			y := height - 1 - ly(p.BandwidthBps/1e6)
			if grid[y][x] == ' ' {
				grid[y][x] = mark
			} else if grid[y][x] != mark {
				grid[y][x] = '*' // overlapping curves
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (log-log; y: %.2f..%.0f Mbps, x: %.0f..%.0f ints; *=overlap)\n",
		title, minBW, maxBW, minN, maxN)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	b.WriteString("   " + strings.Join(legend, "   ") + "\n")
	return b.String()
}

// FormatFigureAsync renders the async throughput figure as a table: one
// row per invocation discipline.
func FormatFigureAsync(r *AsyncResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s over %s (%d ints = %d bytes per call)\n",
		AsyncFigureTitle, r.Profile, r.Ints, 4+4*r.Ints)
	fmt.Fprintf(&b, "%-14s %8s %12s %14s %14s %9s\n",
		"mode", "calls", "elapsed", "calls/sec", "avg latency", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-14s %8d %12v %14.1f %14v %8.2fx\n",
			p.Mode, p.Calls, p.Elapsed.Round(time.Millisecond), p.CallsPerSec,
			p.AvgLatency.Round(time.Microsecond), p.Speedup)
	}
	return b.String()
}

// FormatFigure4 renders the migration scenario's step table.
func FormatFigure4(steps []Fig4Step) string {
	var b strings.Builder
	b.WriteString("Figure 4: adaptive protocol selection under migration\n")
	fmt.Fprintf(&b, "%-6s %-8s %-9s %-26s %-14s %s\n",
		"step", "context", "machine", "selected protocol", "bandwidth", "avg rtt")
	for _, s := range steps {
		name := string(s.Selected)
		if s.Detail != "" {
			name += " (" + s.Detail + ")"
		}
		fmt.Fprintf(&b, "%-6d %-8s %-9s %-26s %9.3f Mbps %v\n",
			s.Step, s.Context, s.Machine, name, s.Sample.BandwidthBps/1e6, s.Sample.AvgRTT)
	}
	return b.String()
}

// FormatFigure3 renders the adaptive-authentication phases.
func FormatFigure3(phases []Fig3Phase) string {
	var b strings.Builder
	b.WriteString("Figure 3: adaptive use of the authentication capability\n")
	for i, p := range phases {
		fmt.Fprintf(&b, "phase %d: server object on machine %s\n", i+1, p.ServerMachine)
		for _, c := range p.Clients {
			auth := "no authentication (local client)"
			if c.Authenticated {
				auth = "authenticated per request"
			}
			fmt.Fprintf(&b, "  %-4s (machine %-5s) -> %-10s %s\n", c.Name, c.Machine, c.Selected, auth)
		}
	}
	return b.String()
}

// FormatPathReport renders a Figure 1/2 path trace.
func FormatPathReport(r *PathReport) string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	for _, l := range r.Lines {
		b.WriteString("  " + l + "\n")
	}
	return b.String()
}
