GO ?= go

.PHONY: ci vet lint build test race determinism cover faults fuzz load-smoke bench-json bench-async bench-faults bench-directory bench-errors bench-retention bench-saturation top registry

ci: vet lint build test race determinism cover load-smoke bench-json

vet:
	$(GO) vet ./...

# Project-invariant analyzers (internal/analysis, stdlib go/types only).
# The suite first proves itself against its golden corpora (-short skips
# the whole-module self-check, which the repo run below repeats anyway),
# then sweeps ./internal/... and ./cmd/... and fails on any finding.
# `make lint V=1` adds per-analyzer wall time on stderr.
lint:
	$(GO) test -short ./internal/analysis/
	$(GO) run ./cmd/ohpc-lint $(if $(V),-v) ./internal/... ./cmd/...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -shuffle=on -race ./internal/...

# Determinism sweep: the fault-injection and failover suites must pass
# repeatedly, in shuffled order, under the race detector — no run-order
# luck, no wall-clock luck.
determinism:
	$(GO) test -count=3 -shuffle=on -race \
		-run 'Fault|Failover|Drain|Crash|Blackhole|Expired|Deadline|Probe|Breaker|Health|Trace' \
		./internal/netsim/ ./internal/transport/ ./internal/health/ \
		./internal/core/ ./internal/capability/

# Coverage floor: the wire format, the metrics registry, the tracing
# subsystem, the analyzer suite, the introspection plane, the directory
# plane, the error taxonomy, and the load harness are load-bearing for
# every protocol (and for CI and operations) — hold them at >= 70%.
cover:
	@set -e; for pkg in ./internal/wire/ ./internal/stats/ ./internal/obs/ ./internal/analysis/ ./internal/introspect/ ./internal/directory/ ./internal/errs/ ./internal/load/; do \
		pct=$$($(GO) test -cover $$pkg | awk '{for (i=1;i<=NF;i++) if ($$i ~ /%/) {gsub("%","",$$i); print $$i}}'); \
		echo "coverage $$pkg: $$pct%"; \
		ok=$$(echo "$$pct" | awk '{print ($$1 >= 70.0) ? "yes" : "no"}'); \
		if [ "$$ok" != "yes" ]; then echo "coverage floor (70%) violated in $$pkg"; exit 1; fi; \
	done

# The fault-injection and failover suites: netsim crash/restart/blackhole,
# transport drain, endpoint health breakers, core failover/deadlines, and
# the glue capability chain under injected faults.
faults:
	$(GO) test -race -run 'Fault|Failover|Drain|Crash|Expired|Deadline|Refund|Probe|Breaker|Health' \
		./internal/netsim/ ./internal/transport/ ./internal/health/ \
		./internal/core/ ./internal/capability/ ./internal/bench/

# Frame-decoder fuzzing: the header decoder (with the v3 trace fields)
# and the TBatch body decoder must never panic and must round-trip every
# input they accept. Go runs one fuzz target per invocation.
fuzz:
	$(GO) test ./internal/wire/ -run='^$$' -fuzz=FuzzDecodeHeader -fuzztime=10s
	$(GO) test ./internal/wire/ -run='^$$' -fuzz=FuzzDecodeBatch -fuzztime=10s
	$(GO) test ./internal/wire/ -run='^$$' -fuzz=FuzzRead -fuzztime=10s

# Capacity-harness smoke: run the open-loop smoke scenario end to end on
# a fake clock — the whole stack (grid topology, servers, mixed workload,
# CO-safe recorder) in simulated time, so the run is fast and the op
# accounting is deterministic.
load-smoke:
	$(GO) run ./cmd/ohpc-load -scenario=internal/load/testdata/scenarios/valid/smoke.json -fake -json=-

# BENCH_*.json trajectory: every PR leaves a perf datapoint. The smoke
# scenario runs on a fake clock, so BENCH_S1.json is deterministic — a
# reviewable diff, not noise.
bench-json:
	$(GO) run ./cmd/ohpc-load -scenario=internal/load/testdata/scenarios/valid/smoke.json -fake -json=BENCH_S1.json
	@echo "wrote BENCH_S1.json"

# Regenerate the async throughput figure quickly and emit JSON.
bench-async:
	$(GO) run ./cmd/ohpc-bench -fig=a1 -quick -json=-

# Regenerate the availability-under-faults figure quickly and emit JSON.
bench-faults:
	$(GO) run ./cmd/ohpc-bench -fig=r1 -quick -json=-

# Regenerate the directory-plane figure (scale sweep + crash schedule)
# quickly and emit JSON.
bench-directory:
	$(GO) run ./cmd/ohpc-bench -fig=d1 -quick -json=-

# Regenerate the retry-budget figure (goodput + amplification through an
# overload + crash schedule, budgets on vs off) quickly and emit JSON.
bench-errors:
	$(GO) run ./cmd/ohpc-bench -fig=e1 -quick -json=-

# Regenerate the trace-retention figure (Figure O2: tail keeper vs FIFO
# ring at equal span memory) quickly and emit JSON.
bench-retention:
	$(GO) run ./cmd/ohpc-bench -fig=o2 -quick -json=-

# Regenerate the saturation sweep (Figure S1: goodput + latency tail vs
# offered load, batching on/off, with failover) quickly and emit JSON.
bench-saturation:
	$(GO) run ./cmd/ohpc-bench -fig=s1 -quick -json=-

# Directory demo: serve the sharded name service (3 shards x 2 replicas)
# on real TCP for a few seconds and print the client bootstrap blob.
registry:
	@mkdir -p bin
	$(GO) build -o bin/ohpc-registry ./cmd/ohpc-registry
	./bin/ohpc-registry -listen 127.0.0.1:7777 -shards 3 -replicas 2 & \
	reg=$$!; \
	sleep 3; \
	kill -INT $$reg; \
	wait $$reg || true

# Live-introspection demo: run the demo tour with the plane attached and
# watch it through four ohpc-top frames.
top:
	@mkdir -p bin
	$(GO) build -o bin/ohpc-demo ./cmd/ohpc-demo
	$(GO) build -o bin/ohpc-top ./cmd/ohpc-top
	./bin/ohpc-demo -introspect=127.0.0.1:8090 -linger=6s & \
	demo=$$!; \
	sleep 1; \
	./bin/ohpc-top -addr=127.0.0.1:8090 -interval=1s -frames=4; \
	wait $$demo
