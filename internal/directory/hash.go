package directory

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is the consistent-hash partitioner mapping object names onto
// directory shards. Each shard owns VNodes points on a 64-bit ring; a
// name belongs to the shard owning the first point at or after the
// name's hash. Virtual nodes smooth the partition (with enough of them
// every shard owns ~1/N of the namespace), and consistency keeps
// rebalancing local: growing N shards to N+1 moves only the names the
// new shard's points capture, leaving the rest where they were.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultVNodes is the virtual-node count per shard when a topology
// does not choose one.
const DefaultVNodes = 64

// NewRing builds a ring of `shards` shards with `vnodes` virtual nodes
// each (<= 0 uses DefaultVNodes). Shards < 1 is clamped to 1.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashString(fmt.Sprintf("shard-%d/vn-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Shard maps a name to its owning shard.
func (r *Ring) Shard(name string) int {
	h := hashString(name)
	// First point at or after h; wrap to the first point past the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hashString is FNV-1a 64 — stable across runs and processes, which a
// partitioner shared by publishers and resolvers requires.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
