package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/netsim"
)

// TestFigureR1FailoverWins pins the figure's headline claim: through an
// identical crash/restart + blackhole schedule, protocol-table failover
// yields strictly better availability than pinning the preferred entry,
// and never loses a non-expired request (the breaker trips inside the
// invoke retry budget, so the worst case during an outage is a
// deadline-bounded expiry, not a hard failure).
func TestFigureR1FailoverWins(t *testing.T) {
	cfg := R1Config{
		Profile:  netsim.ProfileEthernet,
		Duration: 800 * time.Millisecond,
	}
	res, err := RunFigureR1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	byMode := map[string]R1Point{}
	for _, p := range res.Points {
		if p.Total <= 0 || p.OK <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		byMode[p.Mode] = p
	}
	fo, nf := byMode[ModeFailover], byMode[ModeNoFailover]
	if fo.Availability <= nf.Availability {
		t.Errorf("failover availability %.2f%% not better than no-failover %.2f%%",
			100*fo.Availability, 100*nf.Availability)
	}
	if fo.Failed != 0 {
		t.Errorf("failover mode lost %d non-expired requests, want 0", fo.Failed)
	}
	if !fo.Promoted {
		t.Error("failover mode did not re-promote the primary entry after recovery")
	}
	if nf.Failed == 0 {
		t.Error("no-failover mode survived the crash unscathed — the schedule injected nothing")
	}
}

// TestFigureR1JSONRoundTrip keeps the ohpc-bench JSON emission stable:
// the result must marshal, unmarshal, and format with both modes and
// the fault schedule present.
func TestFigureR1JSONRoundTrip(t *testing.T) {
	res := &R1Result{
		Profile:  "ethernet",
		Duration: time.Second,
		Deadline: 50 * time.Millisecond,
		Schedule: []string{"200ms crash primary-m"},
		Points: []R1Point{
			{Mode: ModeFailover, Total: 10, OK: 10, Availability: 1, Promoted: true},
			{Mode: ModeNoFailover, Total: 10, OK: 8, Failed: 2, Availability: 0.8},
		},
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back R1Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Profile != res.Profile || len(back.Points) != 2 || back.Points[0].Mode != ModeFailover {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	out := FormatFigureR1(res)
	for _, want := range []string{ModeFailover, ModeNoFailover, "crash primary-m", "availability"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted figure missing %q:\n%s", want, out)
		}
	}
}
