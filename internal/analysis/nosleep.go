package analysis

import (
	"go/ast"
	"go/types"
)

// NoSleep flags direct waits on the wall clock — time.Sleep,
// time.After, time.NewTimer, time.NewTicker/time.Tick — everywhere
// outside internal/clock, test files included. The PR-3 determinism
// sweep (make determinism: -count=3 -shuffle=on -race over the fault
// suites) only holds because waits go through the injected
// clock.Clock/Afterer, where a clock.Fake turns them into simulated
// time; one raw time.Sleep reintroduces run-order and wall-clock luck.
var NoSleep = &Analyzer{
	Name: "nosleep",
	Doc:  "time.Sleep/time.After/time.NewTimer/time.NewTicker outside internal/clock; use the injected clock.Clock",
	Run:  runNoSleep,
}

// noSleepFuncs are the time package entry points that wait on (or arm
// waits on) the wall clock. Tickers are in scope since the load-harness
// pacing loops landed: a background loop on a raw ticker is the same
// nondeterminism as a raw After, just repeated. time.AfterFunc drives a
// callback rather than blocking the caller and stays out of scope.
var noSleepFuncs = map[string]string{
	"Sleep":     "clock.Sleep / clock.SleepCtx",
	"After":     "clock.After",
	"NewTimer":  "clock.After",
	"NewTicker": "a clock.After loop",
	"Tick":      "a clock.After loop",
}

func runNoSleep(pass *Pass) {
	if pathHasSuffix(pass.Pkg().Path(), "internal/clock") {
		// internal/clock is the one audited home for real waits: every
		// other package reaches them through its injectable interfaces.
		return
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f, ok := pass.Info().Uses[sel.Sel].(*types.Func)
			if !ok || funcPkgPath(f) != "time" {
				return true
			}
			// Package functions only: time.Now().After(t) is the
			// Time.After *method* — a pure comparison, not a wait.
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			repl, hit := noSleepFuncs[f.Name()]
			if !hit {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s outside internal/clock: use %s with an injected clock so tests stay deterministic", f.Name(), repl)
			return true
		})
	}
}
