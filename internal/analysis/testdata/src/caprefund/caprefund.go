// Golden corpus for the caprefund analyzer: a capability Process
// charge must be refunded on every error return, including charges
// carried from earlier iterations of a chain loop; success returns and
// tuple-forwards keep the charge, and a refund inside a completion
// goroutine counts as a hand-off.
package caprefund

import (
	"errors"

	"openhpcxx/internal/capability"
)

// leaky charges and then errors out without refunding.
func leaky(c capability.Capability, f *capability.Frame, body []byte) ([]byte, error) {
	nb, _, err := c.Process(f, body)
	if err != nil {
		return nil, err // the charge never happened: Process itself failed
	}
	if len(nb) == 0 {
		return nil, errors.New("empty body") // want "capability charge is not refunded"
	}
	return nb, nil
}

// refunded hands the charge back before the error return.
func refunded(c capability.Capability, r capability.Refunder, f *capability.Frame, body []byte) ([]byte, error) {
	nb, _, err := c.Process(f, body)
	if err != nil {
		return nil, err
	}
	if len(nb) == 0 {
		r.Refund(f)
		return nil, errors.New("empty body")
	}
	return nb, nil
}

// chainLeak is the prefix bug: iteration i fails, iterations 0..i-1
// keep their charges.
func chainLeak(caps []capability.Capability, f *capability.Frame, body []byte) ([]byte, error) {
	for _, c := range caps {
		nb, _, err := c.Process(f, body)
		if err != nil {
			return nil, err // want "charges from earlier loop iterations"
		}
		body = nb
	}
	return body, nil
}

// chainRefunded rolls the processed prefix back before returning.
func chainRefunded(caps []capability.Capability, f *capability.Frame, body []byte) ([]byte, error) {
	for i, c := range caps {
		nb, _, err := c.Process(f, body)
		if err != nil {
			refundPrefix(caps[:i], f)
			return nil, err
		}
		body = nb
	}
	return body, nil
}

func refundPrefix(caps []capability.Capability, f *capability.Frame) {
	for i := len(caps) - 1; i >= 0; i-- {
		if r, ok := caps[i].(capability.Refunder); ok {
			r.Refund(f)
		}
	}
}

// handsOff routes the refund decision into a completion goroutine: the
// closure owns the obligation from the point it appears.
func handsOff(c capability.Capability, r capability.Refunder, f *capability.Frame, body []byte, fail func() bool) error {
	_, _, err := c.Process(f, body)
	if err != nil {
		return err
	}
	go func() {
		if fail() {
			r.Refund(f)
		}
	}()
	if fail() {
		return errors.New("late failure") // completion goroutine owns the charge
	}
	return nil
}

// forward returns a callee's tuple: not a provable error return — the
// forwarded success path's consumer keeps the charge.
func forward(c capability.Capability, f *capability.Frame, body []byte) ([]byte, error) {
	nb, _, err := c.Process(f, body)
	if err != nil {
		return nil, err
	}
	return finish(nb)
}

func finish(b []byte) ([]byte, error) { return b, nil }

// reassigned invalidates the error guard: after err is rebound, a
// non-nil err no longer means the acquire failed.
func reassigned(c capability.Capability, f *capability.Frame, body []byte) error {
	_, _, err := c.Process(f, body)
	if err != nil {
		return err
	}
	err = validate(body)
	if err != nil {
		return err // want "capability charge is not refunded"
	}
	return nil
}

func validate([]byte) error { return nil }

// unbound charges without binding the results at all; the obligation
// still exists.
func unbound(c capability.Capability, f *capability.Frame, body []byte, fail bool) error {
	c.Process(f, body)
	if fail {
		return errors.New("rejected") // want "capability charge is not refunded"
	}
	return nil
}

// suppressed shows the escape hatch for a reply-direction chain.
func suppressed(c capability.Capability, f *capability.Frame, body []byte) error {
	_, _, err := c.Process(f, body)
	if err != nil {
		return err
	}
	//lint:ignore caprefund corpus: reply-direction processing charges nothing
	return errors.New("deliberate")
}
