package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/wire"
)

// ErrMuxClosed is returned by calls on a closed multiplexer.
var ErrMuxClosed = errors.New("transport: mux closed")

// DefaultCallTimeout bounds a single remote call when the Mux has no
// explicit timeout configured.
const DefaultCallTimeout = 30 * time.Second

// Pending is one in-flight request/reply exchange: a completion handle
// the caller waits on. The same shape is re-exported by the ORB as
// core.Pending, so protocol objects can hand mux pendings straight up
// the stack.
type Pending interface {
	// Done is closed when the exchange resolves (reply, transport
	// failure, or timeout).
	Done() <-chan struct{}
	// Reply returns the resolution. Calling it before Done is closed
	// blocks until resolution.
	Reply() (*wire.Message, error)
}

// Mux multiplexes concurrent request/reply exchanges over a single
// connection. It assigns request ids, serializes frame writes, and
// demultiplexes replies to the waiting callers. A Mux is safe for
// concurrent use; any number of exchanges may be in flight at once
// (request pipelining — the reply stream is matched by request id, not
// by order).
type Mux struct {
	conn    net.Conn
	timeout time.Duration

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*PendingCall
	err     error
	closed  bool
}

// NewMux wraps conn and starts its reply-reading loop.
func NewMux(conn net.Conn) *Mux {
	m := &Mux{
		conn:    conn,
		timeout: DefaultCallTimeout,
		nextID:  1,
		pending: make(map[uint64]*PendingCall),
	}
	go m.readLoop()
	return m
}

// SetTimeout changes the per-call timeout. Zero disables it.
func (m *Mux) SetTimeout(d time.Duration) {
	m.mu.Lock()
	m.timeout = d
	m.mu.Unlock()
}

// PendingCall is one in-flight exchange on a Mux. Resolution is
// single-assignment: the first of {matched reply, connection failure,
// timeout} wins and closes Done. There is no channel send anywhere on
// the resolution path — the read loop can never stall on a caller that
// abandoned its request (the failure mode a send on an unbuffered, or
// even buffered-but-reused, channel would invite; see
// TestMuxAbandonedCallDoesNotStallReader).
type PendingCall struct {
	m  *Mux
	id uint64
	// timer is the timeout watchdog; atomic because it is armed after
	// the pending is already visible to the read loop, which may be
	// resolving it concurrently. A timer that escapes the Stop fires
	// harmlessly: forget and resolve are both idempotent.
	timer atomic.Pointer[time.Timer]

	once  sync.Once
	done  chan struct{}
	reply *wire.Message
	err   error
}

// Done implements Pending.
func (p *PendingCall) Done() <-chan struct{} { return p.done }

// Reply implements Pending.
func (p *PendingCall) Reply() (*wire.Message, error) {
	<-p.done
	return p.reply, p.err
}

// resolve records the outcome exactly once. reply/err are published
// before done closes, so readers that wait on Done observe them safely.
func (p *PendingCall) resolve(reply *wire.Message, err error) {
	p.once.Do(func() {
		if t := p.timer.Load(); t != nil {
			t.Stop()
		}
		p.reply, p.err = reply, err
		close(p.done)
	})
}

// Abandon gives up on the exchange: the pending entry is removed so a
// late reply is dropped by the read loop, and Reply returns
// ErrMuxClosed-independent cancellation. Safe to call at any time.
func (p *PendingCall) Abandon() {
	p.m.forget(p.id)
	p.resolve(nil, errs.New(errs.Canceled, "transport: call abandoned"))
}

func (m *Mux) forget(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

func (m *Mux) readLoop() {
	for {
		msg, err := wire.Read(m.conn)
		if err != nil {
			m.fail(err)
			return
		}
		m.mu.Lock()
		p, ok := m.pending[msg.RequestID]
		if ok {
			delete(m.pending, msg.RequestID)
		}
		m.mu.Unlock()
		if ok {
			// resolve never blocks (single-assignment + close, no
			// channel send), so a caller that raced an abandon with
			// this delivery cannot stall the reader.
			p.resolve(msg, nil)
		}
		// Replies for abandoned requests are dropped.
	}
}

// recordErr notes the first underlying transport error so later
// Begin/Call/Post return the real cause (ECONNRESET, write failure)
// instead of a generic ErrMuxClosed, and so Healthy() turns false and
// pools re-dial. It does not resolve pendings — data already on the
// wire may still produce replies; the read loop settles those.
func (m *Mux) recordErr(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
}

func (m *Mux) fail(err error) {
	if err == io.EOF {
		err = ErrMuxClosed
	}
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	failed := make([]*PendingCall, 0, len(m.pending))
	for id, p := range m.pending {
		delete(m.pending, id)
		failed = append(failed, p)
	}
	err = m.err
	m.mu.Unlock()
	for _, p := range failed {
		p.resolve(nil, err)
	}
}

// Begin sends msg (assigning its RequestID) and returns a completion
// handle without waiting for the reply — the request pipelining
// primitive. Any number of Begins may be outstanding; replies are
// demultiplexed by id. The mux's timeout (if any) applies to each
// pending exchange individually.
func (m *Mux) Begin(msg *wire.Message) (*PendingCall, error) {
	m.mu.Lock()
	if m.closed || m.err != nil {
		err := m.err
		m.mu.Unlock()
		if err == nil {
			err = ErrMuxClosed
		}
		return nil, err
	}
	id := m.nextID
	m.nextID++
	msg.RequestID = id
	p := &PendingCall{m: m, id: id, done: make(chan struct{})}
	m.pending[id] = p
	timeout := m.timeout
	m.mu.Unlock()

	m.wmu.Lock()
	err := wire.Write(m.conn, msg)
	m.wmu.Unlock()
	if err != nil {
		m.recordErr(err)
		m.forget(id)
		werr := errs.Wrap(errs.Transport, err, "transport: write")
		p.resolve(nil, werr)
		return nil, werr
	}

	if timeout > 0 {
		method := msg.Method
		t := time.AfterFunc(timeout, func() {
			m.forget(id)
			p.resolve(nil, errs.Newf(errs.Expired, "transport: call %q timed out after %v", method, timeout))
		})
		p.timer.Store(t)
		// The pending may already have resolved (fast reply, abandon,
		// connection failure) between the map insert and the Store above;
		// resolve couldn't see the timer then, so stop it here. Both
		// checks together guarantee no timer outlives its exchange.
		select {
		case <-p.done:
			t.Stop()
		default:
		}
	}
	return p, nil
}

// Call sends msg (assigning its RequestID) and waits for the matching
// reply. The returned message may be a TFault frame; decoding the fault
// is the caller's concern so that capability layers can inspect replies.
func (m *Mux) Call(msg *wire.Message) (*wire.Message, error) {
	p, err := m.Begin(msg)
	if err != nil {
		return nil, err
	}
	return p.Reply()
}

// Post sends msg without awaiting any reply (one-way traffic). The
// message keeps whatever RequestID it carries; replies to that id, if a
// peer sends one anyway, are dropped by the read loop.
func (m *Mux) Post(msg *wire.Message) error {
	m.mu.Lock()
	if m.closed || m.err != nil {
		err := m.err
		m.mu.Unlock()
		if err == nil {
			err = ErrMuxClosed
		}
		return err
	}
	m.mu.Unlock()
	m.wmu.Lock()
	err := wire.Write(m.conn, msg)
	m.wmu.Unlock()
	if err != nil {
		m.recordErr(err)
	}
	return err
}

// InFlight reports how many exchanges are currently pending.
func (m *Mux) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Close tears down the connection; outstanding calls fail.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	err := m.conn.Close()
	m.fail(ErrMuxClosed)
	return err
}

// Healthy reports whether the mux can still issue calls.
func (m *Mux) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.closed && m.err == nil
}
