package directory

import (
	"time"

	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/xdr"
)

// Topology shapes a directory plane: how many shards partition the
// namespace, how many replicas each shard keeps, and the ring/lease
// parameters. The zero value is usable — fill() applies defaults.
type Topology struct {
	// Shards is the partition count (default 3).
	Shards int
	// Replicas is how many copies each shard keeps (default 1; clamped
	// to the number of hosting contexts — two replicas in one context
	// would be one copy wearing two hats).
	Replicas int
	// VNodes is the ring's virtual-node count per shard (default
	// DefaultVNodes).
	VNodes int
	// SweepInterval paces each replica's lease sweeper (default: the
	// registry's).
	SweepInterval time.Duration
}

func (t Topology) fill() Topology {
	if t.Shards < 1 {
		t.Shards = 3
	}
	if t.Replicas < 1 {
		t.Replicas = 1
	}
	if t.VNodes <= 0 {
		t.VNodes = DefaultVNodes
	}
	return t
}

// Plane is the server side of a directory deployment: the shard
// replicas exported across a set of contexts, plus the ring and the
// references clients bootstrap from.
type Plane struct {
	topo Topology
	ring *Ring
	// replicas[s][r] is replica r of shard s.
	replicas [][]*Shard
	// replicaRefs[s][r] is the reference reaching exactly that replica.
	replicaRefs [][]*core.ObjectRef
	// shardRefs[s] is the merged read reference: every replica's
	// entries in one ordered protocol table, primary first — the
	// failover chain.
	shardRefs []*core.ObjectRef
}

// ServePlane exports a directory plane across the given contexts:
// replica r of shard s lands on ctxs[(s+r) % len(ctxs)], so shards
// spread round-robin and a shard's replicas land on distinct contexts
// (machines, when the contexts are placed that way). Each hosting
// runtime gets the dir.shards gauge and a "directory" /statusz section.
func ServePlane(ctxs []*core.Context, topo Topology) (*Plane, error) {
	if len(ctxs) == 0 {
		return nil, errs.New(errs.Config, "directory: no hosting contexts")
	}
	topo = topo.fill()
	if topo.Replicas > len(ctxs) {
		topo.Replicas = len(ctxs)
	}
	p := &Plane{
		topo:        topo,
		ring:        NewRing(topo.Shards, topo.VNodes),
		replicas:    make([][]*Shard, topo.Shards),
		replicaRefs: make([][]*core.ObjectRef, topo.Shards),
		shardRefs:   make([]*core.ObjectRef, topo.Shards),
	}
	for s := 0; s < topo.Shards; s++ {
		for r := 0; r < topo.Replicas; r++ {
			host := ctxs[(s+r)%len(ctxs)]
			sh, sv, err := ServeShard(host, s, topo.SweepInterval)
			if err != nil {
				return nil, err
			}
			entries := contextEntries(host)
			if len(entries) == 0 {
				return nil, errs.Newf(errs.Config, "directory: context %s has no bindings", host.Name())
			}
			p.replicas[s] = append(p.replicas[s], sh)
			p.replicaRefs[s] = append(p.replicaRefs[s], host.NewRef(sv, entries...))
		}
		merged := p.replicaRefs[s][0].Clone()
		for _, rr := range p.replicaRefs[s][1:] {
			merged.Protocols = append(merged.Protocols, rr.Clone().Protocols...)
		}
		p.shardRefs[s] = merged
	}
	// Per-runtime wiring, once per distinct runtime among the hosts.
	seen := make(map[*core.Runtime]bool)
	for _, c := range ctxs {
		rt := c.Runtime()
		if seen[rt] {
			continue
		}
		seen[rt] = true
		rt.Metrics().Gauge("dir.shards").Set(int64(topo.Shards))
		rt.RegisterStatusSection("directory", p.statusSection)
	}
	return p, nil
}

// Ring returns the plane's partitioner.
func (p *Plane) Ring() *Ring { return p.ring }

// Topology returns the effective (default-filled, clamped) topology.
func (p *Plane) Topology() Topology { return p.topo }

// ShardRef returns shard s's merged read reference (all replicas in one
// failover table). The caller gets a clone.
func (p *Plane) ShardRef(s int) *core.ObjectRef { return p.shardRefs[s].Clone() }

// Replicas returns shard s's replica handles (primary first).
func (p *Plane) Replicas(s int) []*Shard { return p.replicas[s] }

// Preload seeds a name directly into every replica of its owning shard,
// bypassing the wire — experiments use it to build million-entry
// tables. ttl <= 0 binds without a lease.
func (p *Plane) Preload(name string, encodedRef []byte, ttl time.Duration) {
	s := p.ring.Shard(name)
	for _, sh := range p.replicas[s] {
		sh.Service().BindDirect(name, encodedRef, ttl)
	}
}

// Bootstrap packages what a client needs to join the plane: the ring
// parameters plus every replica's encoded reference. It crosses
// processes as XDR, the same way object references do.
func (p *Plane) Bootstrap() (*Bootstrap, error) {
	b := &Bootstrap{
		Shards:   p.topo.Shards,
		VNodes:   p.topo.VNodes,
		Replicas: make([][][]byte, p.topo.Shards),
	}
	for s := range p.replicaRefs {
		for _, rr := range p.replicaRefs[s] {
			blob, err := core.EncodeRef(rr)
			if err != nil {
				return nil, err
			}
			b.Replicas[s] = append(b.Replicas[s], blob)
		}
	}
	return b, nil
}

// shardStatus is one row of the /statusz directory table.
type shardStatus struct {
	Shard    int `json:"shard"`
	Replica  int `json:"replica"`
	Entries  int `json:"entries"`
	Leased   int `json:"leased"`
	Watchers int `json:"watchers"`
}

// planeStatus is the "directory" /statusz section.
type planeStatus struct {
	Shards   int           `json:"shards"`
	Replicas int           `json:"replicas"`
	VNodes   int           `json:"vnodes"`
	Table    []shardStatus `json:"table"`
}

func (p *Plane) statusSection() any {
	st := planeStatus{Shards: p.topo.Shards, Replicas: p.topo.Replicas, VNodes: p.topo.VNodes}
	for s := range p.replicas {
		for r, sh := range p.replicas[s] {
			total, leased := sh.Service().Counts()
			st.Table = append(st.Table, shardStatus{
				Shard:    s,
				Replica:  r,
				Entries:  total,
				Leased:   leased,
				Watchers: sh.Watchers(),
			})
		}
	}
	return st
}

// Bootstrap is the client-side view of a plane: ring parameters and
// per-shard replica references.
type Bootstrap struct {
	Shards int
	VNodes int
	// Replicas[s][r] is the encoded ObjectRef of replica r of shard s.
	Replicas [][][]byte
}

// MarshalXDR encodes the bootstrap for cross-process handoff.
func (b *Bootstrap) MarshalXDR(e *xdr.Encoder) error {
	e.PutUint32(uint32(b.Shards))
	e.PutUint32(uint32(b.VNodes))
	e.PutUint32(uint32(len(b.Replicas)))
	for _, reps := range b.Replicas {
		e.PutUint32(uint32(len(reps)))
		for _, blob := range reps {
			e.PutOpaque(blob)
		}
	}
	return nil
}

// UnmarshalXDR decodes a bootstrap.
func (b *Bootstrap) UnmarshalXDR(d *xdr.Decoder) error {
	sh, err := d.Uint32()
	if err != nil {
		return err
	}
	vn, err := d.Uint32()
	if err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > 1<<16 {
		return errs.Newf(errs.Codec, "directory: bootstrap of %d shards exceeds limit", n)
	}
	b.Shards, b.VNodes = int(sh), int(vn)
	b.Replicas = make([][][]byte, n)
	for s := range b.Replicas {
		k, err := d.Uint32()
		if err != nil {
			return err
		}
		if k > 64 {
			return errs.Newf(errs.Codec, "directory: %d replicas exceeds limit", k)
		}
		for r := uint32(0); r < k; r++ {
			blob, err := d.Opaque()
			if err != nil {
				return err
			}
			b.Replicas[s] = append(b.Replicas[s], blob)
		}
	}
	return nil
}

// Ring rebuilds the partitioner the plane was built with.
func (b *Bootstrap) Ring() *Ring { return NewRing(b.Shards, b.VNodes) }

// shardRefs decodes the bootstrap into per-shard merged read refs and
// per-replica refs — the resolver's and publisher's working sets.
func (b *Bootstrap) shardRefs() (merged []*core.ObjectRef, replicas [][]*core.ObjectRef, err error) {
	merged = make([]*core.ObjectRef, len(b.Replicas))
	replicas = make([][]*core.ObjectRef, len(b.Replicas))
	for s := range b.Replicas {
		if len(b.Replicas[s]) == 0 {
			return nil, nil, errs.Newf(errs.Config, "directory: shard %d has no replicas", s)
		}
		for _, blob := range b.Replicas[s] {
			ref, err := core.DecodeRef(blob)
			if err != nil {
				return nil, nil, err
			}
			replicas[s] = append(replicas[s], ref)
		}
		m := replicas[s][0].Clone()
		for _, rr := range replicas[s][1:] {
			m.Protocols = append(m.Protocols, rr.Clone().Protocols...)
		}
		merged[s] = m
	}
	return merged, replicas, nil
}
