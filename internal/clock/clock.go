// Package clock abstracts time so quota capabilities and load statistics
// are deterministic under test.
package clock

import (
	"context"
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Sleeper is optionally implemented by clocks that can also delay the
// caller (retry backoff). Real sleeps in real time; Fake merely
// advances itself, so tests with injected fake clocks pay no wall-clock
// cost for backoff. Callers that hold only a Clock should type-assert
// and fall back to time.Sleep.
type Sleeper interface {
	Sleep(d time.Duration)
}

// Sleep delays through c if it implements Sleeper, else in real time.
func Sleep(c Clock, d time.Duration) {
	if d <= 0 {
		return
	}
	if s, ok := c.(Sleeper); ok {
		s.Sleep(d)
		return
	}
	time.Sleep(d)
}

// SleepCtx delays through c like Sleep, but returns early with ctx.Err()
// when the context is canceled or its deadline expires first. Fake
// clocks advance instantly (the sleep costs simulated time only) and the
// context is consulted afterwards, so deadline-bounded retry loops stay
// deterministic under test.
func SleepCtx(ctx context.Context, c Clock, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	if s, ok := c.(Sleeper); ok {
		if _, real := c.(Real); !real {
			s.Sleep(d)
			return ctx.Err()
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Afterer is optionally implemented by clocks that can deliver a wakeup
// channel, the clock-injected analogue of time.After. Fake clocks fire
// the channel when Advance/Set moves past the deadline, so timeout
// paths are testable without wall-clock waits.
type Afterer interface {
	After(d time.Duration) <-chan time.Time
}

// After returns a channel that receives the clock's time once d has
// elapsed on c. Clocks that do not implement Afterer fall back to the
// real time.After.
func After(c Clock, d time.Duration) <-chan time.Time {
	if a, ok := c.(Afterer); ok {
		return a.After(d)
	}
	return time.After(d)
}

// Real reads the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Sleeper in real time.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// After implements Afterer in real time.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced clock for tests.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

// fakeWaiter is one pending After channel.
type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFake returns a Fake set to start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep implements Sleeper by advancing the fake clock instantly — a
// backoff under test costs simulated time, not wall-clock time.
func (f *Fake) Sleep(d time.Duration) {
	if d > 0 {
		f.Advance(d)
	}
}

// After implements Afterer: the returned channel fires (with the fake
// time) once Advance or Set moves the clock to or past now+d. d <= 0
// fires immediately.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	f.mu.Lock()
	if d <= 0 {
		//lint:ignore lockedblock ch is freshly made with capacity 1 and has no other sender; the send can never block
		ch <- f.now
	} else {
		f.waiters = append(f.waiters, fakeWaiter{at: f.now.Add(d), ch: ch})
	}
	f.mu.Unlock()
	return ch
}

// Waiters reports how many After channels are still pending. Tests use
// it to advance only once the code under test has armed its timer.
func (f *Fake) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// fire delivers and removes every waiter whose deadline has passed.
// Callers hold f.mu.
func (f *Fake) fire() {
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.at.After(f.now) {
			w.ch <- f.now
			continue
		}
		kept = append(kept, w)
	}
	f.waiters = kept
}

// Advance moves the clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.fire()
	f.mu.Unlock()
}

// Set jumps the clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	f.now = t
	f.fire()
	f.mu.Unlock()
}
