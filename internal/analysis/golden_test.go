package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// goldenCorpora maps each analyzer to its corpus under testdata/src.
// Every corpus is a real, type-checked package; `// want "regex"`
// trailing comments mark the lines that must produce findings, and
// every finding must be wanted — positives and negatives in one file.
var goldenCorpora = []string{
	"nosleep",
	"lockedblock",
	"spanend",
	"checkederr",
	"ctxflow",
	"wirever",
	"codederr",
	"golife",
	"lockorder",
	"caprefund",
}

// wantRe extracts the expectation regex from a trailing comment.
var wantRe = regexp.MustCompile(`//\s*want\s+"([^"]+)"`)

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

func TestGolden(t *testing.T) {
	for _, name := range goldenCorpora {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			units, err := LoadDir(dir, "golden/"+name)
			if err != nil {
				t.Fatalf("loading corpus: %v", err)
			}
			if len(units) == 0 {
				t.Fatalf("corpus %s loaded no units", dir)
			}
			az, err := Select(name, "")
			if err != nil {
				t.Fatal(err)
			}
			diags := Run(units, az)
			wants := collectWants(t, units)

			var problems []string
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				exps := wants[key]
				claimed := false
				for _, e := range exps {
					if !e.matched && e.rx.MatchString(d.Message) {
						e.matched = true
						claimed = true
						break
					}
				}
				if !claimed {
					problems = append(problems, fmt.Sprintf("unexpected finding: %s", d))
				}
			}
			var keys []string
			for k := range wants {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				for _, e := range wants[k] {
					if !e.matched {
						problems = append(problems, fmt.Sprintf("%s: wanted %q, got no matching finding", k, e.rx))
					}
				}
			}
			if len(problems) > 0 {
				t.Errorf("corpus %s:\n%s", name, strings.Join(problems, "\n"))
			}
		})
	}
}

// collectWants scans corpus comments for `// want "regex"` markers,
// keyed by file:line of the comment (wants trail the offending line).
func collectWants(t *testing.T, units []*Unit) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, u := range units {
		for _, file := range u.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regex %q: %v", m[1], err)
					}
					pos := u.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	return wants
}

// TestRepoClean is the self-check: the shipped tree must be free of
// findings from every analyzer — the cleanup the suite demanded stays
// done. (Golden corpora live under testdata and are excluded from the
// walk.)
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	units, err := Load(root, []string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(units, All())
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}
