package analysis

import (
	"go/ast"
	"go/types"
)

// LockedBlock forbids blocking while a mutex is explicitly held: between
// an `x.Lock()` (or RLock) statement and its matching `x.Unlock()` in
// the same statement list, there may be no channel send or receive, no
// Invoke* call, no net.Conn Read/Write, and no clock wait. The mux and
// pool deadlocks PR 2 fixed were exactly this shape — a send into a
// full channel, or a shaped netsim write, while holding the mutex the
// read loop needed to make progress.
//
// Scope is the analyzable case: an explicit Lock/Unlock pair as sibling
// statements. `defer x.Unlock()` regions span the whole function and
// routinely contain condition waits (which release the lock), so they
// are left to review. Function literals between the pair run later
// (goroutines, defers) and are skipped.
var LockedBlock = &Analyzer{
	Name: "lockedblock",
	Doc:  "no channel ops, Invoke*, net.Conn I/O, or clock waits between an explicit Lock() and its Unlock()",
	Run:  runLockedBlock,
}

func runLockedBlock(pass *Pass) {
	netConn := lookupNetConn(pass.Pkg())
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkLockRegions(pass, netConn, block.List)
			return true
		})
	}
}

// checkLockRegions finds Lock/Unlock sibling pairs in one statement
// list and inspects the statements between them.
func checkLockRegions(pass *Pass, netConn *types.Interface, stmts []ast.Stmt) {
	for i, s := range stmts {
		recv, locking := lockCall(s, "Lock", "RLock")
		if !locking {
			continue
		}
		for j := i + 1; j < len(stmts); j++ {
			unlockRecv, unlocking := lockCall(stmts[j], "Unlock", "RUnlock")
			if !unlocking || unlockRecv != recv {
				continue
			}
			region := stmts[i+1 : j]
			lockPos := pass.Fset().Position(s.Pos())
			for _, rs := range region {
				walkStack(rs, func(n ast.Node, stack []ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false // runs later, not under the lock
					}
					if what := blockingOp(pass, netConn, n, stack); what != "" {
						pass.Reportf(n.Pos(), "%s while %s is locked (Lock at line %d): move it outside the critical section", what, recv, lockPos.Line)
					}
					return true
				})
			}
			break
		}
	}
}

// lockCall matches an ExprStmt of the form X.Lock() / X.Unlock() and
// returns the printed receiver expression.
func lockCall(s ast.Stmt, names ...string) (string, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	for _, name := range names {
		if sel.Sel.Name == name {
			return types.ExprString(sel.X), true
		}
	}
	return "", false
}

// blockingOp classifies a node inside a critical region; non-empty
// means it can block the lock holder.
func blockingOp(pass *Pass, netConn *types.Interface, n ast.Node, stack []ast.Node) string {
	info := pass.Info()
	switch op := n.(type) {
	case *ast.SendStmt:
		if insideNonBlockingSelect(stack) {
			return ""
		}
		return "channel send"
	case *ast.UnaryExpr:
		if op.Op.String() != "<-" {
			return ""
		}
		if insideNonBlockingSelect(stack) {
			return ""
		}
		return "channel receive"
	case *ast.CallExpr:
		f := calleeFunc(info, op)
		if f == nil {
			return ""
		}
		name := f.Name()
		if len(name) >= len("Invoke") && name[:len("Invoke")] == "Invoke" {
			return name + " call"
		}
		// Clock waits: package-level clock.Sleep/SleepCtx/After or
		// Sleeper/Afterer methods on a clock type.
		if pathHasSuffix(funcPkgPath(f), "internal/clock") {
			switch name {
			case "Sleep", "SleepCtx", "After":
				return "clock wait (" + name + ")"
			}
		}
		// net.Conn I/O.
		if (name == "Read" || name == "Write") && netConn != nil {
			if sel, ok := ast.Unparen(op.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && types.Implements(tv.Type, netConn) {
					return "net.Conn " + name
				}
			}
		}
		return ""
	default:
		return ""
	}
}

// insideNonBlockingSelect reports whether the innermost enclosing
// select has a default clause (making its channel ops non-blocking).
func insideNonBlockingSelect(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			return hasDefaultComm(sel.Body)
		}
	}
	return false
}

func hasDefaultComm(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if cc, ok := s.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
