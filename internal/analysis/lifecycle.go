package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The lifecycle engine: a reusable per-path obligation checker extracted
// from spanend's original liveness walk. An *acquire* (a call the spec's
// matcher recognizes) creates an obligation on the enclosing function; a
// *release* (another matched call) discharges it; the engine walks the
// function's statement paths — if/switch/select/for, early returns,
// terminal calls — and reports every path on which the obligation is
// still open where the spec says it must not be.
//
// The engine is deliberately a lightweight path walk, not a full CFG:
// goto is not modeled, loops are scanned once (twice with loop-carry),
// and conditions are opaque except for the two refinements below. That
// is the same trade spanend always made, now shared:
//
//   - nil-guard refinement (spec.nilGuards): inside `v == nil` (or the
//     implicit else of `v != nil`) the resource is statically nil and
//     the obligation vacuous — Active methods and refunds are nil-safe.
//     Guards on the resource's origin (`if root != nil` for
//     sp := root.Child(...)) refine the same way.
//   - error-guard refinement (spec.errGuards): for acquires of the form
//     `v, err := acquire(...)`, inside `err != nil` the acquire itself
//     failed and created no obligation. The refinement dies the moment
//     err is reassigned (the guard then tests a later call's outcome).
//
// Two obligation disciplines are supported:
//
//   - all paths (spanend): the resource must be released on every path
//     out of the function — return, fall-off-the-end, or (without
//     loop-carry) the end of the loop iteration that acquired it.
//   - error returns only (caprefund): the obligation fires only on
//     returns whose error slot provably carries an error (an error-typed
//     identifier or an explicit error-constructor call — a tuple-forward
//     like `return g.unwrapReply(reply)` is treated as the success path,
//     whose consumer legitimately keeps the charge).
//
// Hand-off is the escape hatch in both disciplines: a deferred release,
// a release inside any function literal (the closure or goroutine that
// will complete the work owns the obligation from the point the literal
// appears), or — when the spec provides an escape classifier — any use
// of the bound variable that leaves the function (returned, passed,
// captured, stored). Escaped obligations are the new owner's problem,
// checked where that owner lives.

// lifeKind classifies how an obligation was left open.
type lifeKind int

const (
	// lifeDiscarded: the acquire's result was not bound at all.
	lifeDiscarded lifeKind = iota
	// lifeReturn: still open at a return statement.
	lifeReturn
	// lifeFallOff: still open when the function body runs out.
	lifeFallOff
	// lifeLoopEnd: acquired inside a loop body and still open at the end
	// of the iteration (only without loop-carry).
	lifeLoopEnd
	// lifeCarried: a loop-carried obligation from an earlier iteration is
	// open at an error return (only with loop-carry).
	lifeCarried
)

// lifeAcquire describes one recognized acquisition.
type lifeAcquire struct {
	// obj is the variable the resource was bound to; nil when the
	// binding is blank or the matcher tracks the obligation positionally.
	obj types.Object
	// origin is the receiver the resource was derived from (root in
	// root.Child(...)); nil-guard refinement applies to it too.
	origin types.Object
	// errObj is the error bound alongside the acquire, for error-guard
	// refinement; nil when the acquire returns no error.
	errObj types.Object
	// discard marks an acquire whose result was dropped on the floor.
	discard bool
}

// lifeVar is one tracked obligation within a function scope.
type lifeVar struct {
	lifeAcquire
	scope funcScope
	start *ast.AssignStmt // the binding statement, nil for unbound acquires
	stmt  ast.Stmt        // the statement containing the acquire
	pos   token.Pos       // the acquire call position
}

// lifeSpec parameterizes the engine for one analyzer.
type lifeSpec struct {
	// acquire classifies a call; parent is the innermost enclosing node
	// (ExprStmt, AssignStmt, ...). Return nil for "not an acquire".
	acquire func(p *Pass, call *ast.CallExpr, parent ast.Node) *lifeAcquire
	// isRelease reports whether a call discharges v's obligation.
	isRelease func(info *types.Info, call *ast.CallExpr, v *lifeVar) bool
	// useIsLocal classifies one identifier occurrence of v.obj: true
	// keeps the obligation local, false means ownership escapes and the
	// check is skipped. nil disables escape analysis.
	useIsLocal func(id *ast.Ident, stack []ast.Node) bool
	// closureRelease: a function literal containing a release acts as a
	// hand-off at the statement where the literal appears (the closure
	// or goroutine now owns the obligation).
	closureRelease bool
	// nilGuards enables nil-comparison path refinement on obj/origin.
	nilGuards bool
	// errGuards enables error-binding path refinement at the acquire.
	errGuards bool
	// errReturnsOnly restricts the obligation to error-carrying returns.
	errReturnsOnly bool
	// loopCarry accumulates obligations across loop iterations instead
	// of demanding per-iteration release.
	loopCarry bool
	// report renders one open obligation.
	report func(p *Pass, v *lifeVar, pos token.Pos, kind lifeKind)
}

// runLifecycle applies one spec to every function scope in the unit.
func runLifecycle(pass *Pass, spec *lifeSpec) {
	for _, file := range pass.Files() {
		for _, scope := range funcScopes(file) {
			lifecycleScope(pass, spec, scope)
		}
	}
}

// lifecycleScope finds this scope's acquires and checks each one.
func lifecycleScope(pass *Pass, spec *lifeSpec, scope funcScope) {
	var vars []*lifeVar
	walkStack(scope.body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are their own scopes
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var parent ast.Node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		acq := spec.acquire(pass, call, parent)
		if acq == nil {
			return true
		}
		v := &lifeVar{lifeAcquire: *acq, scope: scope, pos: call.Pos()}
		if as, ok := parent.(*ast.AssignStmt); ok {
			v.start = as
			v.stmt = as
		} else if es, ok := parent.(*ast.ExprStmt); ok {
			v.stmt = es
		}
		if acq.discard {
			spec.report(pass, v, call.Pos(), lifeDiscarded)
			return true
		}
		vars = append(vars, v)
		return true
	})
	for _, v := range vars {
		lifecycleVar(pass, spec, scope, v)
	}
}

// lifecycleVar runs escape/defer pre-analysis and then the path walk for
// one tracked obligation.
func lifecycleVar(pass *Pass, spec *lifeSpec, scope funcScope, v *lifeVar) {
	info := pass.Info()
	escaped := false
	deferred := false

	walkStack(scope.body, func(n ast.Node, stack []ast.Node) bool {
		if escaped {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if deferReleases(info, spec, d, v) {
				deferred = true
			}
		}
		if spec.useIsLocal == nil || v.obj == nil {
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok || (info.Uses[id] != v.obj && info.Defs[id] != v.obj) {
			return true
		}
		if !spec.useIsLocal(id, stack) {
			escaped = true
		}
		return true
	})
	if escaped || deferred {
		return
	}

	f := &lifeFlow{pass: pass, spec: spec, info: info, v: v, seen: map[reportKey]bool{}}
	st, terminated := f.scan(scope.body.List, lifeState{errValid: true})
	if !terminated && st.open() && !spec.errReturnsOnly {
		f.report(v.pos, lifeFallOff)
	}
}

// deferReleases reports whether the defer discharges v — directly
// (defer sp.End()) or inside a deferred closure.
func deferReleases(info *types.Info, spec *lifeSpec, d *ast.DeferStmt, v *lifeVar) bool {
	if spec.isRelease(info, d.Call, v) {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	return closureReleases(info, spec, lit, v)
}

// closureReleases reports whether a function literal contains a release
// of v anywhere in its body.
func closureReleases(info *types.Info, spec *lifeSpec, lit *ast.FuncLit, v *lifeVar) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && spec.isRelease(info, call, v) {
			found = true
		}
		return !found
	})
	return found
}

// lifeState is the per-path obligation state, passed by value through
// the walk so branches refine independently.
type lifeState struct {
	// fresh: the acquire on this path succeeded and is undischarged.
	fresh bool
	// carried: an obligation accumulated from an earlier loop iteration.
	carried bool
	// errValid: the acquire's error binding has not been reassigned, so
	// error guards still refine the acquire's own outcome.
	errValid bool
}

func (s lifeState) open() bool { return s.fresh || s.carried }

func (s lifeState) closed() lifeState {
	s.fresh, s.carried = false, false
	return s
}

type reportKey struct {
	pos  token.Pos
	kind lifeKind
}

// lifeFlow walks statement lists tracking the obligation state.
type lifeFlow struct {
	pass *Pass
	spec *lifeSpec
	info *types.Info
	v    *lifeVar
	seen map[reportKey]bool
}

func (f *lifeFlow) report(pos token.Pos, kind lifeKind) {
	key := reportKey{pos, kind}
	if f.seen[key] {
		return
	}
	f.seen[key] = true
	f.spec.report(f.pass, f.v, pos, kind)
}

// scan processes one statement list. It returns the state after the
// list and whether every path through it terminated (returned, exited).
func (f *lifeFlow) scan(stmts []ast.Stmt, st lifeState) (lifeState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = f.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (f *lifeFlow) stmt(s ast.Stmt, st lifeState) (lifeState, bool) {
	// A function literal that releases is a hand-off: from here on the
	// closure (a completion goroutine, a stored callback) owns the
	// obligation.
	if f.spec.closureRelease && f.handsOffToClosure(s) {
		return st.closed(), false
	}
	switch stmt := s.(type) {
	case *ast.AssignStmt:
		if stmt == f.v.start {
			st.fresh = true
			st.errValid = f.v.errObj != nil
			return st, false
		}
		if f.v.errObj != nil && assignsObj(f.info, stmt, f.v.errObj) {
			st.errValid = false
		}
		return st, false
	case *ast.ExprStmt:
		if stmt == f.v.stmt {
			// An unbound acquire tracked by statement identity (no
			// variable, no error binding to refine on).
			st.fresh, st.errValid = true, false
			return st, false
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return st, false
		}
		if f.spec.isRelease(f.info, call, f.v) {
			return st.closed(), false
		}
		if isTerminalCall(f.info, call) {
			return st, true
		}
		return st, false
	case *ast.ReturnStmt:
		if st.open() && (!f.spec.errReturnsOnly || isErrorReturn(f.info, stmt)) {
			kind := lifeReturn
			if !st.fresh && st.carried {
				kind = lifeCarried
			}
			f.report(stmt.Pos(), kind)
		}
		return st.closed(), true
	case *ast.BranchStmt:
		// break/continue/goto leave this list; treat as terminating it.
		return st, true
	case *ast.BlockStmt:
		return f.scan(stmt.List, st)
	case *ast.LabeledStmt:
		return f.stmt(stmt.Stmt, st)
	case *ast.IfStmt:
		return f.ifStmt(stmt, st)
	case *ast.ForStmt:
		return f.loop(stmt.Body, stmt.Cond == nil, st)
	case *ast.RangeStmt:
		return f.loop(stmt.Body, false, st)
	case *ast.SwitchStmt:
		return f.clauses(caseBodies(stmt.Body), hasDefaultClause(stmt.Body), st)
	case *ast.TypeSwitchStmt:
		return f.clauses(caseBodies(stmt.Body), hasDefaultClause(stmt.Body), st)
	case *ast.SelectStmt:
		// A select always executes exactly one of its clauses.
		return f.clauses(commBodies(stmt.Body), true, st)
	default:
		return st, false
	}
}

// handsOffToClosure reports whether the statement contains a function
// literal that releases v (the closure takes the obligation with it).
// Deferred closures are already handled by the pre-scan; goroutines,
// assignments, and arguments land here.
func (f *lifeFlow) handsOffToClosure(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if closureReleases(f.info, f.spec, lit, f.v) {
				found = true
			}
			return false
		}
		return !found
	})
	return found
}

// assignsObj reports whether the assignment rebinds obj.
func assignsObj(info *types.Info, as *ast.AssignStmt, obj types.Object) bool {
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if info.Defs[id] == obj || info.Uses[id] == obj {
				return true
			}
		}
	}
	return false
}

// guardKind classifies an if condition relative to the tracked resource:
// +1 for "x != nil", -1 for "x == nil", 0 for unrelated, where x is the
// resource or its origin. On the nil side the resource is nil and the
// obligation vacuous.
func (f *lifeFlow) guardKind(cond ast.Expr) int {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || !isNilComparison(b) {
		return 0
	}
	other := b.X
	if id, ok := ast.Unparen(b.X).(*ast.Ident); ok && id.Name == "nil" {
		other = b.Y
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok {
		return 0
	}
	obj := f.info.Uses[id]
	if obj == nil {
		return 0
	}
	if (f.v.obj == nil || obj != f.v.obj) && (f.v.origin == nil || obj != f.v.origin) {
		return 0
	}
	if b.Op == token.NEQ {
		return 1
	}
	return -1
}

// errGuardKind classifies an if condition against the acquire's error
// binding: +1 for "err != nil" (the acquire failed on the then side),
// -1 for "err == nil", 0 for unrelated.
func (f *lifeFlow) errGuardKind(cond ast.Expr, st lifeState) int {
	if f.v.errObj == nil || !st.errValid {
		return 0
	}
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || !isNilComparison(b) {
		return 0
	}
	other := b.X
	if id, ok := ast.Unparen(b.X).(*ast.Ident); ok && id.Name == "nil" {
		other = b.Y
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok || f.info.Uses[id] != f.v.errObj {
		return 0
	}
	if b.Op == token.NEQ {
		return 1
	}
	return -1
}

func (f *lifeFlow) ifStmt(stmt *ast.IfStmt, st lifeState) (lifeState, bool) {
	if stmt.Init != nil {
		st, _ = f.stmt(stmt.Init, st)
	}

	thenEntry, elseEntry := st, st
	if f.spec.nilGuards {
		// Path refinement: inside "x == nil" (or the implicit else of
		// "x != nil") the resource is statically nil — the obligation is
		// vacuous there.
		switch f.guardKind(stmt.Cond) {
		case -1:
			thenEntry = thenEntry.closed()
		case 1:
			elseEntry = elseEntry.closed()
		}
	}
	if f.spec.errGuards {
		// Inside "err != nil" the acquire itself failed: no fresh
		// obligation exists there (a carried one persists).
		switch f.errGuardKind(stmt.Cond, st) {
		case 1:
			thenEntry.fresh = false
		case -1:
			elseEntry.fresh = false
		}
	}

	thenOut, thenTerm := f.scan(stmt.Body.List, thenEntry)
	elseOut, elseTerm := elseEntry, false
	if stmt.Else != nil {
		elseOut, elseTerm = f.stmt(stmt.Else, elseEntry)
	}

	if thenTerm && elseTerm {
		return st.closed(), true
	}
	out := st.closed()
	out.errValid = false
	if !thenTerm {
		out.fresh = out.fresh || thenOut.fresh
		out.carried = out.carried || thenOut.carried
		out.errValid = out.errValid || thenOut.errValid
	}
	if !elseTerm {
		out.fresh = out.fresh || elseOut.fresh
		out.carried = out.carried || elseOut.carried
		out.errValid = out.errValid || elseOut.errValid
	}
	return out, false
}

// loop scans a loop body. Without loop-carry, a resource acquired inside
// the body must be discharged by the end of the iteration (the next
// iteration rebinds it); with loop-carry, undischarged acquisitions
// accumulate and the body is scanned once more with the obligation
// carried, so error returns in later iterations see the earlier
// iterations' charge. A resource already live from outside stays live,
// since the body may run zero times.
func (f *lifeFlow) loop(body *ast.BlockStmt, infinite bool, st lifeState) (lifeState, bool) {
	bodyOut, _ := f.scan(body.List, st)
	if bodyOut.open() && !st.open() {
		if f.spec.loopCarry {
			carry := st
			carry.carried = true
			f.scan(body.List, carry)
		} else {
			f.report(f.v.pos, lifeLoopEnd)
		}
	}
	if infinite && !loopBreaks(body) {
		return st.closed(), true
	}
	return st, false
}

func (f *lifeFlow) clauses(bodies [][]ast.Stmt, exhaustive bool, st lifeState) (lifeState, bool) {
	out := st.closed()
	out.errValid = false
	allTerminated := true
	for _, b := range bodies {
		clauseOut, t := f.scan(b, st)
		if !t {
			allTerminated = false
			out.fresh = out.fresh || clauseOut.fresh
			out.carried = out.carried || clauseOut.carried
			out.errValid = out.errValid || clauseOut.errValid
		}
	}
	if !exhaustive {
		// No default: the no-match path continues with state unchanged.
		allTerminated = false
		out.fresh = out.fresh || st.fresh
		out.carried = out.carried || st.carried
		out.errValid = out.errValid || st.errValid
	}
	if allTerminated {
		return st.closed(), true
	}
	return out, false
}

// isErrorReturn reports whether a return statement provably carries an
// error: some result expression of error type is an identifier,
// selector, or explicit error-constructing call — but not the nil
// literal, and not a multi-result tuple forward (`return f(x)` where f's
// error outcome is unknown; that is the consumer's success path).
func isErrorReturn(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		res = ast.Unparen(res)
		tv, ok := info.Types[res]
		if !ok || tv.Type == nil || !isErrorType(tv.Type) {
			continue
		}
		switch e := res.(type) {
		case *ast.Ident:
			if e.Name != "nil" {
				return true
			}
		case *ast.SelectorExpr:
			return true
		case *ast.CallExpr:
			// A call whose own type is `error` explicitly constructs the
			// error being returned (errs.Wrapf, wire.Faultf, ...).
			return true
		}
	}
	return false
}

// ---- shared control-flow helpers (used by the engine and golife) ----

// loopBreaks reports whether the loop body contains a break that exits
// it (shallow: nested loops/switches own their breaks).
func loopBreaks(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch inner := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if inner.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func commBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		if cc, ok := s.(*ast.CommClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isTerminalCall recognizes calls that do not return: panic, os.Exit,
// runtime.Goexit, and testing's Fatal/FailNow/Skip family.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		f, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return false
		}
		switch funcPkgPath(f) {
		case "os":
			return f.Name() == "Exit"
		case "runtime":
			return f.Name() == "Goexit"
		case "testing":
			switch f.Name() {
			case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
				return true
			}
		}
	}
	return false
}

func isNilComparison(b *ast.BinaryExpr) bool {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return isNil(b.X) || isNil(b.Y)
}
