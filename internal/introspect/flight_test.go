package introspect

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/stats"
)

// flightOver builds a flight recorder over reg driven by a fake clock,
// without starting the sampler goroutine — tests call SampleNow and
// advance the clock deterministically.
func flightOver(reg *stats.Registry, fc *clock.Fake) *Flight {
	return NewFlight(reg.Snapshot, fc, 0, 0)
}

func TestFlightRatesAreCounterDeltasOverElapsedTime(t *testing.T) {
	reg := stats.New()
	fc := clock.NewFake(time.Unix(100, 0))
	f := flightOver(reg, fc)

	reg.Counter("rpc.sim.calls").Add(5)
	f.SampleNow()
	fc.Advance(2 * time.Second)
	reg.Counter("rpc.sim.calls").Add(20) // 10 calls/s over the window
	reg.Counter("rpc.sim.faults").Add(4)
	reg.Counter("rpc.sim.transport_errors").Add(1)
	reg.Gauge("rpc.inflight").Set(3)
	f.SampleNow()

	w, ok := f.Rates(2 * time.Second)
	if !ok {
		t.Fatal("two samples recorded but Rates reported not-ok")
	}
	if w.Seconds != 2 {
		t.Fatalf("window seconds = %v, want 2", w.Seconds)
	}
	if got := w.Rates["rpc.sim.calls"]; got != 10 {
		t.Fatalf("calls rate = %v, want 10 (delta 20 over 2s)", got)
	}
	if got := w.Rates["rpc.sim.faults"]; got != 2 {
		t.Fatalf("faults rate = %v, want 2", got)
	}
	if got := w.Gauges["rpc.inflight"]; got != 3 {
		t.Fatalf("gauge = %d, want the newest sample's value 3", got)
	}
	// (4 faults + 1 transport error) / 20 calls over the window.
	if w.ErrorRatio != 0.25 {
		t.Fatalf("error ratio = %v, want 0.25", w.ErrorRatio)
	}
}

func TestFlightPerCodeErrorRatio(t *testing.T) {
	reg := stats.New()
	fc := clock.NewFake(time.Unix(100, 0))
	f := flightOver(reg, fc)

	unavailable := reg.CounterWith("rpc.errors", stats.Labels{"code": "unavailable"})
	quota := reg.CounterWith("rpc.errors", stats.Labels{"code": "quota"})
	stale := reg.CounterWith("rpc.errors", stats.Labels{"code": "auth"})
	stale.Add(7) // before the window: must not appear
	f.SampleNow()
	fc.Advance(2 * time.Second)
	reg.Counter("rpc.sim.calls").Add(20)
	unavailable.Add(4)
	quota.Add(1)
	f.SampleNow()

	w, ok := f.Rates(2 * time.Second)
	if !ok {
		t.Fatal("Rates not ok")
	}
	if got := w.ErrorRatioByCode["unavailable"]; got != 0.2 {
		t.Fatalf("unavailable ratio = %v, want 0.2 (4/20)", got)
	}
	if got := w.ErrorRatioByCode["quota"]; got != 0.05 {
		t.Fatalf("quota ratio = %v, want 0.05 (1/20)", got)
	}
	if _, present := w.ErrorRatioByCode["auth"]; present {
		t.Fatal("auth erred only before the window but appears in the per-code ratios")
	}
	// The labeled counters still get plain rates too.
	if got := w.Rates[`rpc.errors{code="unavailable"}`]; got != 2 {
		t.Fatalf("labeled counter rate = %v, want 2/s", got)
	}
	// And they must not double into the blanket ratio (no .faults/.calls
	// suffix match): 0 faults recorded, so the blanket ratio stays 0.
	if w.ErrorRatio != 0 {
		t.Fatalf("blanket error ratio = %v, want 0 (per-code counters are a split, not an addition)", w.ErrorRatio)
	}
}

func TestErrCodeLabelParsing(t *testing.T) {
	cases := []struct {
		key  string
		code string
		ok   bool
	}{
		{`rpc.errors{code="unavailable"}`, "unavailable", true},
		{`rpc.errors{code="code(999)"}`, "code(999)", true},
		{`rpc.errors{code="retry-budget-exhausted"}`, "retry-budget-exhausted", true},
		{`rpc.sim.calls`, "", false},
		{`rpc.errors{code="bad"`, "", false},
		{`rpc.retry.budget_exhausted{code="transport"}`, "", false},
	}
	for _, c := range cases {
		code, ok := errCodeLabel(c.key)
		if ok != c.ok || code != c.code {
			t.Errorf("errCodeLabel(%q) = (%q, %v), want (%q, %v)", c.key, code, ok, c.code, c.ok)
		}
	}
}

func TestFlightHistogramWindowTracksQuantileMovement(t *testing.T) {
	reg := stats.New()
	fc := clock.NewFake(time.Unix(100, 0))
	f := flightOver(reg, fc)

	h := reg.Histogram("rpc.sim.latency_us")
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	f.SampleNow()
	base := reg.Snapshot().Histograms["rpc.sim.latency_us"]

	fc.Advance(time.Second)
	for i := 0; i < 50; i++ {
		h.Observe(10000) // a slow endpoint appears: p99 jumps
	}
	f.SampleNow()
	cur := reg.Snapshot().Histograms["rpc.sim.latency_us"]

	w, ok := f.Rates(time.Second)
	if !ok {
		t.Fatal("Rates not ok")
	}
	hw, ok := w.Histograms["rpc.sim.latency_us"]
	if !ok {
		t.Fatalf("histogram missing from window: %v", w.Histograms)
	}
	if hw.CountRate != 50 {
		t.Fatalf("count rate = %v, want 50 obs/s", hw.CountRate)
	}
	if hw.P99 != cur.P99 || hw.P50 != cur.P50 {
		t.Fatalf("window quantiles %d/%d, want current %d/%d", hw.P50, hw.P99, cur.P50, cur.P99)
	}
	if want := cur.P99 - base.P99; hw.P99Delta != want || hw.P99Delta <= 0 {
		t.Fatalf("p99 delta = %d, want %d (>0: the slow tail moved p99)", hw.P99Delta, want)
	}
}

func TestFlightWindowSelectionPicksYoungestOldEnoughSample(t *testing.T) {
	reg := stats.New()
	fc := clock.NewFake(time.Unix(100, 0))
	f := flightOver(reg, fc)
	c := reg.Counter("rpc.sim.calls")

	// 13 samples, 1s apart, +1 call between each: rate is 1/s whatever
	// the base, but Seconds reveals which sample was chosen.
	f.SampleNow()
	for i := 0; i < 12; i++ {
		fc.Advance(time.Second)
		c.Inc()
		f.SampleNow()
	}
	w, ok := f.Rates(10 * time.Second)
	if !ok || w.Seconds != 10 {
		t.Fatalf("10s window spans %.1fs (ok=%v), want exactly 10 (youngest sample >= 10s old)", w.Seconds, ok)
	}
	if w.Rates["rpc.sim.calls"] != 1 {
		t.Fatalf("rate = %v, want 1/s", w.Rates["rpc.sim.calls"])
	}
	// Not enough history for 60s: fall back to the oldest sample and
	// report the actual span.
	w, ok = f.Rates(60 * time.Second)
	if !ok || w.Seconds != 12 {
		t.Fatalf("60s window spans %.1fs (ok=%v), want the full 12s of history", w.Seconds, ok)
	}
}

func TestFlightNeedsTwoSamples(t *testing.T) {
	reg := stats.New()
	fc := clock.NewFake(time.Unix(100, 0))
	f := flightOver(reg, fc)
	if _, ok := f.Rates(time.Second); ok {
		t.Fatal("Rates ok with zero samples")
	}
	f.SampleNow()
	if _, ok := f.Rates(time.Second); ok {
		t.Fatal("Rates ok with one sample")
	}
}

func TestFlightRingWrapKeepsNewest(t *testing.T) {
	reg := stats.New()
	fc := clock.NewFake(time.Unix(100, 0))
	f := NewFlight(reg.Snapshot, fc, 0, 4)
	c := reg.Counter("n")
	for i := 0; i < 6; i++ {
		c.Inc()
		f.SampleNow()
		fc.Advance(time.Second)
	}
	if got := f.Samples(); got != 4 {
		t.Fatalf("retained %d samples, want capacity 4", got)
	}
	// The oldest retained sample is the 3rd (counter=3): a full-history
	// window spans 3 seconds and rises 3 counts.
	w, ok := f.Rates(time.Hour)
	if !ok || w.Seconds != 3 || w.Rates["n"] != 1 {
		t.Fatalf("window after wrap: seconds=%v rate=%v ok=%v, want 3/1/true", w.Seconds, w.Rates["n"], ok)
	}
}

func TestFlightVarz(t *testing.T) {
	reg := stats.New()
	fc := clock.NewFake(time.Unix(100, 0))
	f := flightOver(reg, fc)
	c := reg.Counter("rpc.sim.calls")
	f.SampleNow()
	for i := 0; i < 15; i++ {
		fc.Advance(time.Second)
		c.Inc()
		f.SampleNow()
	}
	v := f.Varz()
	if v.Samples != 16 {
		t.Fatalf("varz samples = %d, want 16", v.Samples)
	}
	if !v.Now.Equal(fc.Now()) {
		t.Fatalf("varz now = %v, want the clock's %v", v.Now, fc.Now())
	}
	if _, ok := v.Windows["1s"]; !ok {
		t.Fatalf("varz missing 1s window: %v", v.Windows)
	}
	if w, ok := v.Windows["10s"]; !ok || w.Seconds != 10 {
		t.Fatalf("varz 10s window = %+v (ok=%v)", w, ok)
	}
	// Short history: the 60s window falls back to the oldest sample and
	// reports the actual span instead of disappearing.
	if w, ok := v.Windows["60s"]; !ok || w.Seconds != 15 {
		t.Fatalf("varz 60s window = %+v (ok=%v), want a 15s fallback span", w, ok)
	}
	// Current carries the newest raw snapshot.
	if v.Current.Counters["rpc.sim.calls"] != 15 {
		t.Fatalf("varz current counter = %d, want 15", v.Current.Counters["rpc.sim.calls"])
	}
}

func TestFlightSamplerLoopDrivenByFakeClock(t *testing.T) {
	reg := stats.New()
	fc := clock.NewFake(time.Unix(100, 0))
	f := NewFlight(reg.Snapshot, fc, 100*time.Millisecond, 16)
	f.Start()
	defer f.Close()
	if f.Samples() != 1 {
		t.Fatalf("Start must take one immediate sample, got %d", f.Samples())
	}
	// The loop waits on clock.After(fake): advancing the fake clock past
	// the interval wakes it. Advancing may race with the loop's timer
	// registration, so advance repeatedly until the sample lands.
	deadline := time.Now().Add(5 * time.Second)
	for f.Samples() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler never ticked: %d samples", f.Samples())
		}
		fc.Advance(100 * time.Millisecond)
	}
}

func TestFlightCloseBeforeStart(t *testing.T) {
	f := NewFlight(stats.New().Snapshot, clock.NewFake(time.Unix(0, 0)), 0, 0)
	f.Close() // must not hang waiting for a loop that never ran
	f.Close() // and must be idempotent
}

func TestFlightNilIsNoOp(t *testing.T) {
	var f *Flight
	f.Start()
	f.SampleNow()
	f.Close()
	if f.Samples() != 0 {
		t.Fatal("nil flight has samples?")
	}
	if _, ok := f.Rates(time.Second); ok {
		t.Fatal("nil flight produced a window")
	}
	v := f.Varz()
	if v.Windows == nil || len(v.Windows) != 0 {
		t.Fatalf("nil flight varz = %+v", v)
	}
	f.DumpOnCrash(&bytes.Buffer{}) // no panic in flight: no-op
}

func TestDumpOnCrashWritesRecordingAndRepanics(t *testing.T) {
	reg := stats.New()
	fc := clock.NewFake(time.Unix(100, 0))
	f := flightOver(reg, fc)
	reg.Counter("rpc.sim.calls").Add(7)
	f.SampleNow()

	var buf bytes.Buffer
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		defer f.DumpOnCrash(&buf)
		panic("boom")
	}()
	if recovered != "boom" {
		t.Fatalf("recovered %v, want the original panic value", recovered)
	}
	var v Varz
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("crash dump is not valid Varz JSON: %v\n%s", err, buf.String())
	}
	// DumpOnCrash takes one final sample before writing.
	if v.Samples != 2 {
		t.Fatalf("crash dump samples = %d, want 2 (one pre-crash + the final one)", v.Samples)
	}
	if !strings.Contains(buf.String(), "rpc.sim.calls") {
		t.Fatalf("crash dump missing counters:\n%s", buf.String())
	}

	// A normal return must not write or panic.
	buf.Reset()
	func() {
		defer f.DumpOnCrash(&buf)
	}()
	if buf.Len() != 0 {
		t.Fatal("DumpOnCrash wrote during a normal return")
	}
}
