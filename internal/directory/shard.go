package directory

import (
	"sync"
	"time"

	"openhpcxx/internal/core"
	"openhpcxx/internal/registry"
	"openhpcxx/internal/stats"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// watchEventBuffer bounds the shard's event queue between the registry
// notify hook (which must never block a bind) and the fanout goroutine.
// Overflow drops events — watchers are backstopped by lease expiry and
// the resolver's FaultNoObject refresh, so a dropped tombstone costs
// latency, not correctness — and is counted in dir.watch.dropped.
const watchEventBuffer = 1024

// watcherMaxFails is how many consecutive failed posts a watcher
// survives before the shard drops it (its machine crashed, or its sink
// is gone).
const watcherMaxFails = 3

// Shard is one replica of one directory shard: a registry.Service (the
// name table, with leases and the background sweeper) plus the watch
// fanout pushing the table's mutations to subscribed resolver sinks
// over the one-way plane.
type Shard struct {
	index int
	ctx   *core.Context
	svc   *registry.Service

	events chan registry.Event
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	mu       sync.Mutex
	watchers map[core.ObjectID]*watcher

	streams *stats.Gauge   // dir.watch.streams
	leases  *stats.Gauge   // dir.leases.active
	dropped *stats.Counter // dir.watch.dropped
	posted  *stats.Counter // dir.watch.events
}

// watcher is one subscribed sink: a GP to post events through and its
// consecutive-failure count.
type watcher struct {
	gp    *core.GlobalPtr
	fails int
}

// ServeShard exports shard `index`'s servant on ctx: the registry
// method set over a fresh Service, plus watch/unwatch. The lease
// sweeper and the event fanout start immediately and stop when the
// context closes (or on Close). sweep <= 0 uses the registry default.
func ServeShard(ctx *core.Context, index int, sweep time.Duration) (*Shard, *core.Servant, error) {
	rt := ctx.Runtime()
	s := &Shard{
		index:    index,
		ctx:      ctx,
		svc:      registry.NewServiceWithClock(rt.Clock()),
		events:   make(chan registry.Event, watchEventBuffer),
		stop:     make(chan struct{}),
		watchers: make(map[core.ObjectID]*watcher),
		streams:  rt.Metrics().Gauge("dir.watch.streams"),
		leases:   rt.Metrics().Gauge("dir.leases.active"),
		dropped:  rt.Metrics().Counter("dir.watch.dropped"),
		posted:   rt.Metrics().Counter("dir.watch.events"),
	}
	s.svc.SetNotify(s.enqueue)
	methods := registry.Methods(s.svc)
	methods["watch"] = core.Handler(s.handleWatch)
	methods["unwatch"] = core.Handler(s.handleUnwatch)
	sv, err := ctx.ExportAs(ShardObjectID(index), Iface, s.svc, methods, 0)
	if err != nil {
		return nil, nil, err
	}
	s.svc.StartSweeper(sweep)
	s.wg.Add(1)
	go s.fanout()
	ctx.OnClose(s)
	return s, sv, nil
}

// Index returns which shard of the ring this replica serves.
func (s *Shard) Index() int { return s.index }

// Service exposes the underlying name table (experiments preload it
// directly; the status section reads its counts).
func (s *Shard) Service() *registry.Service { return s.svc }

// Watchers reports how many sinks are currently subscribed.
func (s *Shard) Watchers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.watchers)
}

// enqueue is the registry notify hook: hand the event to the fanout
// without ever blocking the mutating request.
func (s *Shard) enqueue(ev registry.Event) {
	select {
	case s.events <- ev:
	default:
		s.dropped.Inc()
	}
}

// handleWatch subscribes a sink. The GP is created up front (no I/O —
// binding happens on first post) and replaces any previous subscription
// from the same sink object.
func (s *Shard) handleWatch(a *watchArgs) (*core.Empty, error) {
	ref, err := core.DecodeRef(a.Sink)
	if err != nil {
		return nil, wire.Faultf(wire.FaultBadRequest, "directory: bad sink reference: %v", err)
	}
	gp := s.ctx.NewGlobalPtr(ref)
	var old *core.GlobalPtr
	s.mu.Lock()
	if prev, ok := s.watchers[ref.Object]; ok {
		old = prev.gp
	}
	s.watchers[ref.Object] = &watcher{gp: gp}
	n := len(s.watchers)
	s.mu.Unlock()
	if old != nil {
		old.Release()
	}
	s.streams.Set(int64(n))
	return &core.Empty{}, nil
}

// handleUnwatch removes a sink's subscription.
func (s *Shard) handleUnwatch(a *watchArgs) (*core.Empty, error) {
	ref, err := core.DecodeRef(a.Sink)
	if err != nil {
		return nil, wire.Faultf(wire.FaultBadRequest, "directory: bad sink reference: %v", err)
	}
	var old *core.GlobalPtr
	s.mu.Lock()
	if prev, ok := s.watchers[ref.Object]; ok {
		old = prev.gp
		delete(s.watchers, ref.Object)
	}
	n := len(s.watchers)
	s.mu.Unlock()
	if old != nil {
		old.Release()
	}
	s.streams.Set(int64(n))
	return &core.Empty{}, nil
}

// fanout drains the event queue and posts each event to every watcher.
// Posts happen outside the shard lock; a watcher that fails
// watcherMaxFails posts in a row is dropped (best-effort delivery — the
// lease TTL and the resolvers' refresh hook backstop lost tombstones).
func (s *Shard) fanout() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case ev := <-s.events:
			s.deliver(ev)
			_, leased := s.svc.Counts()
			s.leases.Set(int64(leased))
		}
	}
}

// deliver posts one event to the current watcher set.
func (s *Shard) deliver(ev registry.Event) {
	msg := &eventMsg{Shard: uint32(s.index), Kind: uint32(ev.Kind), Name: ev.Name, Ref: ev.Ref}
	body, err := xdr.Marshal(msg)
	if err != nil {
		return
	}
	s.mu.Lock()
	ids := make([]core.ObjectID, 0, len(s.watchers))
	gps := make([]*core.GlobalPtr, 0, len(s.watchers))
	for id, w := range s.watchers {
		ids = append(ids, id)
		gps = append(gps, w.gp)
	}
	s.mu.Unlock()
	for i, gp := range gps {
		err := gp.Post(EventMethod, body)
		var doomed *core.GlobalPtr
		s.mu.Lock()
		w, ok := s.watchers[ids[i]]
		if ok && w.gp == gp { // not replaced concurrently
			if err != nil {
				w.fails++
				if w.fails >= watcherMaxFails {
					doomed = w.gp
					delete(s.watchers, ids[i])
				}
			} else {
				w.fails = 0
			}
		}
		n := len(s.watchers)
		s.mu.Unlock()
		if err == nil {
			s.posted.Inc()
		}
		if doomed != nil {
			doomed.Release()
			s.streams.Set(int64(n))
		}
	}
}

// Close stops the fanout and the lease sweeper and releases the watcher
// GPs. Idempotent; also run by the hosting context's Close.
func (s *Shard) Close() error {
	s.once.Do(func() {
		close(s.stop)
	})
	s.wg.Wait()
	_ = s.svc.Close()
	s.mu.Lock()
	gps := make([]*core.GlobalPtr, 0, len(s.watchers))
	for _, w := range s.watchers {
		gps = append(gps, w.gp)
	}
	s.watchers = make(map[core.ObjectID]*watcher)
	s.mu.Unlock()
	for _, gp := range gps {
		gp.Release()
	}
	return nil
}
