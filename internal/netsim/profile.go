package netsim

import (
	"fmt"
	"time"
)

// LinkProfile describes the performance characteristics of a link class.
// Shaping applies the one-way latency to every message and serializes
// bytes at the stated bandwidth, which is sufficient to reproduce the
// bandwidth-versus-message-size curves of the paper's Figure 5: small
// messages are latency-bound, large messages saturate toward BitsPerSec.
type LinkProfile struct {
	Name string
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BitsPerSec is the serialization rate. Zero means unlimited.
	BitsPerSec float64
	// FrameOverhead is added to every Write's byte count before
	// serialization, modeling per-frame header cost.
	FrameOverhead int
}

// TxTime returns the serialization time for a payload of n bytes.
func (p LinkProfile) TxTime(n int) time.Duration {
	if p.BitsPerSec <= 0 {
		return 0
	}
	bits := float64(n+p.FrameOverhead) * 8
	return time.Duration(bits / p.BitsPerSec * float64(time.Second))
}

func (p LinkProfile) String() string {
	return fmt.Sprintf("%s(%.0f Mbps, %v)", p.Name, p.BitsPerSec/1e6, p.Latency)
}

// Link profiles used throughout the experiments. The paper's testbed was
// Sun Ultra-10 workstations connected by Ethernet and 155 Mbps ATM; the
// absolute rates here follow that era but only the *ratios* matter for
// reproducing the shape of the results.
var (
	// ProfileLoopback models intra-machine streams (different processes
	// on one machine): high bandwidth, tiny latency.
	ProfileLoopback = LinkProfile{Name: "loopback", Latency: 20 * time.Microsecond, BitsPerSec: 4e9}
	// ProfileEthernet models the testbed's 100 Mbps switched Ethernet.
	ProfileEthernet = LinkProfile{Name: "ethernet", Latency: 300 * time.Microsecond, BitsPerSec: 100e6, FrameOverhead: 34}
	// ProfileATM155 models the testbed's 155 Mbps ATM network.
	ProfileATM155 = LinkProfile{Name: "atm155", Latency: 200 * time.Microsecond, BitsPerSec: 155e6, FrameOverhead: 28}
	// ProfileCampus models an inter-LAN campus backbone.
	ProfileCampus = LinkProfile{Name: "campus", Latency: 600 * time.Microsecond, BitsPerSec: 100e6, FrameOverhead: 34}
	// ProfileWAN models an Internet path between campuses.
	ProfileWAN = LinkProfile{Name: "wan", Latency: 15 * time.Millisecond, BitsPerSec: 10e6, FrameOverhead: 40}
	// ProfileUnshaped applies no delay at all; useful in unit tests.
	ProfileUnshaped = LinkProfile{Name: "unshaped"}
)

// Scaled returns a copy of the profile with latency divided and
// bandwidth multiplied by factor, preserving the latency/bandwidth shape
// while letting tests run quickly.
func (p LinkProfile) Scaled(factor float64) LinkProfile {
	q := p
	q.Name = fmt.Sprintf("%s/x%.0f", p.Name, factor)
	q.Latency = time.Duration(float64(p.Latency) / factor)
	if p.BitsPerSec > 0 {
		q.BitsPerSec = p.BitsPerSec * factor
	}
	return q
}
