package bench

import (
	"testing"
	"time"
)

// TestFigureS1Shapes runs a shrunken saturation sweep and checks the
// claims the figure exists to demonstrate: a knee exists (goodput
// plateaus while the latency tail diverges past it), and micro-batching
// moves the knee measurably up the offered-load ladder. Absolute rates
// are host-dependent; the asserted shapes are generous.
func TestFigureS1Shapes(t *testing.T) {
	cfg := S1Config{
		Rates:        []float64{1000, 2000, 4000, 8000},
		StepDuration: 150 * time.Millisecond,
		Workers:      24,
		Deadline:     50 * time.Millisecond,
	}
	res, err := RunFigureS1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFigureS1(res))
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d, want plain/batched/failover", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.Points) != len(cfg.Rates) {
			t.Fatalf("%s: %d points, want %d", c.Mode, len(c.Points), len(cfg.Rates))
		}
		for _, p := range c.Points {
			// Open-loop issue is schedule-driven: the generator must have
			// pushed the whole window's arrivals regardless of backlog.
			if p.Issued < int(0.9*p.OfferedPerSec*cfg.StepDuration.Seconds()) {
				t.Fatalf("%s@%.0f: only %d ops issued — the generator throttled (coordinated omission at the source)",
					c.Mode, p.OfferedPerSec, p.Issued)
			}
			if p.Completed+p.Failed != p.Issued {
				t.Fatalf("%s@%.0f: %d+%d != %d issued", c.Mode, p.OfferedPerSec, p.Completed, p.Failed, p.Issued)
			}
		}
	}

	plain := res.Curve(S1ModePlain)
	batched := res.Curve(S1ModeBatched)
	failover := res.Curve(S1ModeFailover)

	// The knee: the plain curve must hold the bottom rung and lose the
	// top one — goodput plateaus below the offered load.
	if !plain.Points[0].Saturated {
		t.Fatalf("plain collapsed at the lowest rung: %+v", plain.Points[0])
	}
	top := plain.Points[len(plain.Points)-1]
	if top.Saturated {
		t.Fatalf("plain never saturated — the ladder does not reach the knee: %+v", top)
	}
	// Past the knee the tail diverges: top-rung p999 dwarfs bottom-rung
	// p999 (intended-start measurement makes the backlog visible).
	if bottom := plain.Points[0]; top.P999 < 4*bottom.P999 {
		t.Fatalf("plain latency tail did not diverge past the knee: p999 %v -> %v", bottom.P999, top.P999)
	}
	if top.P999 < top.P99 {
		t.Fatalf("p999 %v below p99 %v", top.P999, top.P99)
	}

	// The headline: batching amortizes the frame overhead, so its knee
	// sits measurably higher. Demand at least 2x (the model predicts
	// more).
	if plain.SaturationRate <= 0 || batched.SaturationRate < 2*plain.SaturationRate {
		t.Fatalf("batching moved the knee %.0f -> %.0f req/s, want >= 2x",
			plain.SaturationRate, batched.SaturationRate)
	}

	// The failover curve pushes traffic through a crash/restart of one
	// of its servers: a third of the targets die for a third of every
	// step, so demand completion, not a clean rung.
	low := failover.Points[0]
	if low.Completed < low.Issued/3 {
		t.Fatalf("failover curve moved only %d of %d ops through the crash window", low.Completed, low.Issued)
	}
}
