package analysis

import (
	_ "embed"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"openhpcxx/internal/errs"
)

// LockOrder enforces a repo-wide mutex acquisition order. Deadlocks
// between the transport, health, and directory planes are the classic
// two-lock inversion: goroutine A holds mux.mu and wants fabric.mu,
// goroutine B holds fabric.mu and wants mux.mu. The fix is a total
// order, and this analyzer machine-checks it: every place one named
// mutex is acquired while another is held contributes an edge to the
// acquisition graph, and every edge must be declared in the checked-in
// manifest (lockorder.manifest, embedded below). An edge whose inverse
// is declared is reported as a deadlock-capable cycle; an edge declared
// nowhere must be added to the manifest — a deliberate, reviewed act
// that documents the ordering. The manifest itself is kept acyclic by
// a unit test, so declared orderings can never close a cycle.
//
// Locks are named structurally: `pkg.Type.field` for a mutex field
// (whatever the receiver chain — t.mu and other.mu are the same lock
// name, so shard-vs-shard self-nesting is out of scope), `pkg.var` for
// a package-level mutex. Function-local mutexes are unnamed and
// skipped. RLock counts as Lock (read locks invert just as well), and
// a `defer Unlock` holds to the end of the enclosing list.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "nested mutex acquisitions must follow the declared order in lockorder.manifest",
	Run:  runLockOrder,
}

//go:embed lockorder.manifest
var lockOrderManifest string

var (
	lockOrderOnce  sync.Once
	lockOrderEdges map[string]map[string]bool
	lockOrderErr   error
)

// lockOrderDecls parses the embedded manifest once: one `from -> to`
// edge per line, '#' comments, blank lines ignored.
func lockOrderDecls() (map[string]map[string]bool, error) {
	lockOrderOnce.Do(func() {
		lockOrderEdges, lockOrderErr = parseLockManifest(lockOrderManifest)
	})
	return lockOrderEdges, lockOrderErr
}

func parseLockManifest(text string) (map[string]map[string]bool, error) {
	edges := map[string]map[string]bool{}
	for i, line := range strings.Split(text, "\n") {
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		from, to, ok := strings.Cut(line, "->")
		from, to = strings.TrimSpace(from), strings.TrimSpace(to)
		if !ok || from == "" || to == "" || strings.ContainsAny(from+to, " \t") {
			return nil, errs.Newf(errs.Config, "lockorder.manifest:%d: malformed edge (want \"from -> to\")", i+1)
		}
		if edges[from] == nil {
			edges[from] = map[string]bool{}
		}
		edges[from][to] = true
	}
	return edges, nil
}

func runLockOrder(pass *Pass) {
	edges, err := lockOrderDecls()
	if err != nil {
		for _, f := range pass.Files() {
			pass.Reportf(f.Pos(), "%v", err)
			break
		}
		return
	}
	for _, file := range pass.Files() {
		for _, scope := range funcScopes(file) {
			checkLockOrderList(pass, edges, scope.body.List, nil)
		}
	}
}

// heldLock is one mutex currently held while scanning a statement list.
type heldLock struct {
	key  string // manifest name; "" for unnamed (local) mutexes
	recv string // printed receiver expression, for Unlock matching
}

// checkLockOrderList scans one statement list tracking held locks.
// Nested blocks see a copy of the held set; locks they acquire do not
// leak to their siblings (conservative: a lock provably held across a
// sibling boundary is already held at the nested acquisition, which is
// where the edge is observed).
func checkLockOrderList(pass *Pass, edges map[string]map[string]bool, stmts []ast.Stmt, held []heldLock) {
	held = held[:len(held):len(held)] // appends below must not alias the caller's tail
	for _, s := range stmts {
		if recv, ok := lockCall(s, "Lock", "RLock"); ok {
			key := lockOrderKey(pass, s.(*ast.ExprStmt).X.(*ast.CallExpr))
			if key != "" {
				for _, h := range held {
					if h.key != "" && h.key != key {
						checkLockEdge(pass, edges, h.key, key, s.Pos())
					}
				}
			}
			held = append(held, heldLock{key: key, recv: recv})
			continue
		}
		if recv, ok := lockCall(s, "Unlock", "RUnlock"); ok {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].recv == recv {
					held = append(held[:i:i], held[i+1:]...)
					break
				}
			}
			continue
		}
		// defer x.Unlock() holds to the end of the list: nothing to do.
		checkLockOrderNested(pass, edges, s, held)
	}
}

// checkLockOrderNested descends into a compound statement's bodies with
// the current held set. Function literals run later, off this
// goroutine's lock stack, and are scanned as their own empty-held
// scopes by funcScopes.
func checkLockOrderNested(pass *Pass, edges map[string]map[string]bool, s ast.Stmt, held []heldLock) {
	switch stmt := s.(type) {
	case *ast.BlockStmt:
		checkLockOrderList(pass, edges, stmt.List, held)
	case *ast.LabeledStmt:
		checkLockOrderNested(pass, edges, stmt.Stmt, held)
	case *ast.IfStmt:
		checkLockOrderList(pass, edges, stmt.Body.List, held)
		if stmt.Else != nil {
			checkLockOrderNested(pass, edges, stmt.Else, held)
		}
	case *ast.ForStmt:
		checkLockOrderList(pass, edges, stmt.Body.List, held)
	case *ast.RangeStmt:
		checkLockOrderList(pass, edges, stmt.Body.List, held)
	case *ast.SwitchStmt:
		for _, b := range caseBodies(stmt.Body) {
			checkLockOrderList(pass, edges, b, held)
		}
	case *ast.TypeSwitchStmt:
		for _, b := range caseBodies(stmt.Body) {
			checkLockOrderList(pass, edges, b, held)
		}
	case *ast.SelectStmt:
		for _, b := range commBodies(stmt.Body) {
			checkLockOrderList(pass, edges, b, held)
		}
	}
}

func checkLockEdge(pass *Pass, edges map[string]map[string]bool, from, to string, pos token.Pos) {
	if edges[from][to] {
		return
	}
	if edges[to][from] {
		pass.Reportf(pos, "lock %s acquired while holding %s inverts the declared order %s -> %s: deadlock-capable cycle", to, from, to, from)
		return
	}
	pass.Reportf(pos, "undeclared lock ordering: %s acquired while holding %s — declare \"%s -> %s\" in internal/analysis/lockorder.manifest (and keep it acyclic)", to, from, from, to)
}

// lockOrderKey names the mutex a Lock/Unlock call operates on:
// `pkg.Type.field` for a struct-field mutex, `pkg.var` for a
// package-level one, "" for locals and anything unresolvable.
func lockOrderKey(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	info := pass.Info()
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		s, ok := info.Selections[x]
		if !ok || s.Kind() != types.FieldVal {
			return ""
		}
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return ""
		}
		obj := named.Obj()
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		return obj.Pkg().Name() + "." + obj.Name() + "." + s.Obj().Name()
	case *ast.Ident:
		obj, ok := info.Uses[x].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() != obj.Pkg().Scope() {
			return "" // function-local mutex: unnamed
		}
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return ""
}
