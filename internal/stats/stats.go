// Package stats provides the lightweight metrics the runtime uses to
// account for protocol usage: counters and log-scale latency/size
// histograms, lock-free on the hot path. The ORB records per-protocol
// call counts, errors, payload bytes, and round-trip latencies, which
// the experiments and the ohpc-demo use to report what actually flowed
// where.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram accumulates int64 observations into power-of-two buckets:
// bucket i counts observations with bit length i (0 counts zero and
// negative values). Percentiles are therefore approximate within 2x,
// which is plenty for latency accounting.
type Histogram struct {
	buckets [65]atomic.Uint64
	sum     atomic.Int64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(int64(d / time.Microsecond))
}

// Snapshot is a consistent-enough view of a histogram.
type Snapshot struct {
	Count uint64
	Sum   int64
	Mean  float64
	P50   int64
	P90   int64
	P99   int64
	Max   int64 // upper bound of the highest non-empty bucket
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [65]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	quantile := func(q float64) int64 {
		target := uint64(math.Ceil(q * float64(total)))
		if target == 0 {
			target = 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= target {
				return bucketUpper(i)
			}
		}
		return bucketUpper(64)
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	for i := 64; i >= 0; i-- {
		if counts[i] > 0 {
			s.Max = bucketUpper(i)
			break
		}
	}
	return s
}

// bucketUpper is the largest value mapping to bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Registry holds named metrics. The zero value is not usable; call New.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// CounterNames lists registered counters, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Dump renders every metric as one line each, sorted by name.
func (r *Registry) Dump() string {
	r.mu.Lock()
	type namedC struct {
		name string
		c    *Counter
	}
	type namedH struct {
		name string
		h    *Histogram
	}
	cs := make([]namedC, 0, len(r.counters))
	for n, c := range r.counters {
		cs = append(cs, namedC{n, c})
	}
	hs := make([]namedH, 0, len(r.histograms))
	for n, h := range r.histograms {
		hs = append(hs, namedH{n, h})
	}
	r.mu.Unlock()

	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	var b strings.Builder
	for _, nc := range cs {
		fmt.Fprintf(&b, "%s %d\n", nc.name, nc.c.Value())
	}
	for _, nh := range hs {
		s := nh.h.Snapshot()
		fmt.Fprintf(&b, "%s count=%d mean=%.1f p50<=%d p90<=%d p99<=%d\n",
			nh.name, s.Count, s.Mean, s.P50, s.P90, s.P99)
	}
	return b.String()
}
