// Package registry provides the Open HPC++ name service: a server object
// that maps names to serialized object references. Processes exchange
// ORs — and therefore capabilities, which ride inside OR protocol
// tables — through the registry, and migration keeps registry bindings
// current.
//
// The registry is itself an ordinary ORB servant, so it is reachable
// through any protocol the hosting context binds, and a registry
// reference can be bootstrapped from a bare address with RefAt.
package registry

import (
	"bytes"
	"sort"
	"strings"
	"sync"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// Iface is the registry's interface name.
const Iface = "openhpcxx.Registry"

// WellKnownObject is the object id every registry servant exports under,
// so clients can address a registry knowing only the hosting context's
// address.
const WellKnownObject core.ObjectID = "registry/_registry"

// EventKind classifies one name-table mutation for observers.
type EventKind uint8

// Event kinds. A bind that merely refreshes an existing binding's lease
// without changing its reference fires nothing — heartbeats are not
// churn.
const (
	// EventBind is a new or changed binding (the ref differs).
	EventBind EventKind = iota
	// EventUnbind is an explicit removal.
	EventUnbind
	// EventExpire is a lease lapsing (lazy lookup eviction or the
	// background sweeper).
	EventExpire
)

func (k EventKind) String() string {
	switch k {
	case EventBind:
		return "bind"
	case EventUnbind:
		return "unbind"
	case EventExpire:
		return "expire"
	}
	return "unknown"
}

// Event is one observable name-table mutation: the directory plane's
// watch streams are fed from these.
type Event struct {
	Kind EventKind
	Name string
	// Ref is the encoded ObjectRef now bound (EventBind only).
	Ref []byte
}

// Service is the name server state. Bindings may carry a lease: an
// expired binding behaves as absent and is pruned — lazily on touch,
// and in the background by the clock-driven sweeper (StartSweeper) — so
// crashed services disappear from the namespace once they stop
// renewing, useful in the paper's dynamic deployments where objects
// migrate and hosts come and go.
type Service struct {
	clk     clock.Clock
	mu      sync.RWMutex
	entries map[string]binding
	leased  int // bindings with a non-zero lease
	notify  func(Event)

	sweepOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	closed    bool
}

// binding is one name-table row.
type binding struct {
	ref     []byte // encoded ObjectRef
	expires int64  // unix nanos; 0 = no lease
}

// NewService returns an empty name table on the system clock.
func NewService() *Service { return NewServiceWithClock(clock.Real{}) }

// NewServiceWithClock returns an empty name table on the given clock.
func NewServiceWithClock(c clock.Clock) *Service {
	return &Service{clk: c, entries: make(map[string]binding), stop: make(chan struct{})}
}

// SetNotify installs the mutation observer. It is invoked after the
// mutation, outside the service lock, from whichever goroutine mutated
// the table (including the sweeper) — observers must be concurrency-safe
// and must not block (the directory shard hands events to a buffered
// fanout channel). Pass nil to remove.
func (s *Service) SetNotify(fn func(Event)) {
	s.mu.Lock()
	s.notify = fn
	s.mu.Unlock()
}

// emit fires the observer for each event, outside the lock.
func (s *Service) emit(evs []Event) {
	if len(evs) == 0 {
		return
	}
	s.mu.RLock()
	fn := s.notify
	s.mu.RUnlock()
	if fn == nil {
		return
	}
	for _, ev := range evs {
		fn(ev)
	}
}

// expired reports whether b's lease has lapsed.
func (s *Service) expired(b binding) bool {
	return b.expires != 0 && s.clk.Now().UnixNano() > b.expires
}

// dropLocked removes name (caller holds s.mu and has checked presence).
func (s *Service) dropLocked(name string, b binding) {
	delete(s.entries, name)
	if b.expires != 0 {
		s.leased--
	}
}

// Prune removes every expired binding, fires an EventExpire per removal,
// and reports how many went. Only leased bindings can expire, so a
// table with none (the bulk-preloaded case — possibly millions of
// permanent entries) is skipped without the full scan.
func (s *Service) Prune() int {
	s.mu.RLock()
	idle := s.leased == 0
	s.mu.RUnlock()
	if idle {
		return 0
	}
	s.mu.Lock()
	var evs []Event
	for name, b := range s.entries {
		if s.expired(b) {
			s.dropLocked(name, b)
			evs = append(evs, Event{Kind: EventExpire, Name: name})
		}
	}
	s.mu.Unlock()
	s.emit(evs)
	return len(evs)
}

// DefaultSweepInterval paces the background sweeper when StartSweeper is
// given no interval.
const DefaultSweepInterval = 250 * time.Millisecond

// StartSweeper begins background lease pruning on the service's clock:
// every interval the sweeper prunes expired bindings, so a crashed
// publisher's names vanish (and expiry tombstones reach watchers) even
// when nobody touches them. Idempotent — only the first call starts the
// loop; Close stops it. interval <= 0 uses DefaultSweepInterval.
func (s *Service) StartSweeper(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultSweepInterval
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	s.sweepOnce.Do(func() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.stop:
					return
				case <-clock.After(s.clk, interval):
					s.Prune()
				}
			}
		}()
	})
}

// Close stops the background sweeper (if running) and waits for it to
// exit. The table remains readable; Close is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	s.wg.Wait()
	return nil
}

// Counts reports the table size and how many bindings carry a lease —
// the directory plane's dir.leases.active gauge reads the latter.
func (s *Service) Counts() (total, leased int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries), s.leased
}

// BindDirect installs a binding in-process, without wire marshaling,
// validation, or a notify event — the bulk-preload path experiments use
// to seed million-entry tables server-side. ttl <= 0 means no lease.
func (s *Service) BindDirect(name string, ref []byte, ttl time.Duration) {
	var expires int64
	if ttl > 0 {
		expires = s.clk.Now().UnixNano() + int64(ttl)
	}
	s.mu.Lock()
	if prev, ok := s.entries[name]; ok && prev.expires != 0 {
		s.leased--
	}
	s.entries[name] = binding{ref: ref, expires: expires}
	if expires != 0 {
		s.leased++
	}
	s.mu.Unlock()
}

// Snapshot implements core.Migratable so even the registry can move.
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.entries))
	for n := range s.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	e := xdr.NewEncoder(256)
	e.PutUint32(uint32(len(names)))
	for _, n := range names {
		e.PutString(n)
		e.PutOpaque(s.entries[n].ref)
		e.PutInt64(s.entries[n].expires)
	}
	return e.Bytes(), nil
}

// Restore implements core.Migratable.
func (s *Service) Restore(state []byte) error {
	d := xdr.NewDecoder(state)
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	entries := make(map[string]binding, n)
	for i := uint32(0); i < n; i++ {
		name, err := d.String()
		if err != nil {
			return err
		}
		blob, err := d.Opaque()
		if err != nil {
			return err
		}
		expires, err := d.Int64()
		if err != nil {
			return err
		}
		entries[name] = binding{ref: blob, expires: expires}
	}
	leased := 0
	for _, b := range entries {
		if b.expires != 0 {
			leased++
		}
	}
	s.mu.Lock()
	s.entries = entries
	s.leased = leased
	s.mu.Unlock()
	return nil
}

// bindArgs is the wire form of Bind/Rebind. TTLNanos of zero means the
// binding never expires.
type bindArgs struct {
	Name      string
	Ref       []byte
	Overwrite bool
	TTLNanos  int64
}

func (a *bindArgs) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(a.Name)
	e.PutOpaque(a.Ref)
	e.PutBool(a.Overwrite)
	e.PutInt64(a.TTLNanos)
	return nil
}

func (a *bindArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if a.Name, err = d.String(); err != nil {
		return err
	}
	if a.Ref, err = d.Opaque(); err != nil {
		return err
	}
	if a.Overwrite, err = d.Bool(); err != nil {
		return err
	}
	a.TTLNanos, err = d.Int64()
	return err
}

// renewArgs is the wire form of Renew.
type renewArgs struct {
	Name     string
	TTLNanos int64
}

func (a *renewArgs) MarshalXDR(e *xdr.Encoder) error {
	e.PutString(a.Name)
	e.PutInt64(a.TTLNanos)
	return nil
}

func (a *renewArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if a.Name, err = d.String(); err != nil {
		return err
	}
	a.TTLNanos, err = d.Int64()
	return err
}

type refReply struct{ Ref []byte }

func (r *refReply) MarshalXDR(e *xdr.Encoder) error {
	e.PutOpaque(r.Ref)
	return nil
}

func (r *refReply) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	r.Ref, err = d.Opaque()
	return err
}

type listReply struct{ Names []string }

func (r *listReply) MarshalXDR(e *xdr.Encoder) error {
	e.PutStrings(r.Names)
	return nil
}

func (r *listReply) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	r.Names, err = d.Strings()
	return err
}

// Methods returns the servant method table for a Service.
func Methods(s *Service) map[string]core.Method {
	return map[string]core.Method{
		"bind": core.Handler(func(a *bindArgs) (*core.Empty, error) {
			if a.Name == "" {
				return nil, wire.Faultf(wire.FaultBadRequest, "registry: empty name")
			}
			if _, err := core.DecodeRef(a.Ref); err != nil {
				return nil, wire.Faultf(wire.FaultBadRequest, "registry: bad reference for %q: %v", a.Name, err)
			}
			if a.TTLNanos < 0 {
				return nil, wire.Faultf(wire.FaultBadRequest, "registry: negative TTL")
			}
			var expires int64
			if a.TTLNanos > 0 {
				expires = s.clk.Now().UnixNano() + a.TTLNanos
			}
			var evs []Event
			s.mu.Lock()
			prev, exists := s.entries[a.Name]
			live := exists && !s.expired(prev)
			if live && !a.Overwrite {
				s.mu.Unlock()
				return nil, wire.Faultf(wire.FaultBadRequest, "registry: %q already bound", a.Name)
			}
			if exists && prev.expires != 0 {
				s.leased--
			}
			s.entries[a.Name] = binding{ref: a.Ref, expires: expires}
			if expires != 0 {
				s.leased++
			}
			// Heartbeat rebinds (same ref, still live) refresh the lease
			// silently; anything that changes what the name resolves to is
			// churn watchers must see.
			if !live || !bytes.Equal(prev.ref, a.Ref) {
				evs = append(evs, Event{Kind: EventBind, Name: a.Name, Ref: a.Ref})
			}
			s.mu.Unlock()
			s.emit(evs)
			return &core.Empty{}, nil
		}),
		"lookup": core.Handler(func(a *core.StringValue) (*refReply, error) {
			var evs []Event
			s.mu.Lock()
			b, ok := s.entries[a.V]
			if ok && s.expired(b) {
				s.dropLocked(a.V, b)
				evs = append(evs, Event{Kind: EventExpire, Name: a.V})
				ok = false
			}
			s.mu.Unlock()
			s.emit(evs)
			if !ok {
				return nil, wire.Faultf(wire.FaultNoObject, "registry: no binding %q", a.V)
			}
			return &refReply{Ref: b.ref}, nil
		}),
		"renew": core.Handler(func(a *renewArgs) (*core.Empty, error) {
			if a.TTLNanos <= 0 {
				return nil, wire.Faultf(wire.FaultBadRequest, "registry: renew needs a positive TTL")
			}
			var evs []Event
			s.mu.Lock()
			b, ok := s.entries[a.Name]
			if ok && s.expired(b) {
				s.dropLocked(a.Name, b)
				evs = append(evs, Event{Kind: EventExpire, Name: a.Name})
				ok = false
			}
			if ok {
				if b.expires == 0 {
					s.leased++
				}
				b.expires = s.clk.Now().UnixNano() + a.TTLNanos
				s.entries[a.Name] = b
			}
			s.mu.Unlock()
			s.emit(evs)
			if !ok {
				return nil, wire.Faultf(wire.FaultNoObject, "registry: no binding %q", a.Name)
			}
			return &core.Empty{}, nil
		}),
		"unbind": core.Handler(func(a *core.StringValue) (*core.Empty, error) {
			var evs []Event
			s.mu.Lock()
			b, ok := s.entries[a.V]
			if ok {
				wasLive := !s.expired(b)
				s.dropLocked(a.V, b)
				if wasLive {
					evs = append(evs, Event{Kind: EventUnbind, Name: a.V})
				} else {
					evs = append(evs, Event{Kind: EventExpire, Name: a.V})
					ok = false
				}
			}
			s.mu.Unlock()
			s.emit(evs)
			if !ok {
				return nil, wire.Faultf(wire.FaultNoObject, "registry: no binding %q", a.V)
			}
			return &core.Empty{}, nil
		}),
		"list": core.Handler(func(a *core.StringValue) (*listReply, error) {
			// Snapshot under the read lock, filter outside it: a List over
			// a large table must not stall binds for the whole scan.
			type row struct {
				name    string
				expires int64
			}
			s.mu.RLock()
			rows := make([]row, 0, len(s.entries))
			for n, b := range s.entries {
				if strings.HasPrefix(n, a.V) {
					rows = append(rows, row{name: n, expires: b.expires})
				}
			}
			s.mu.RUnlock()
			now := s.clk.Now().UnixNano()
			names := make([]string, 0, len(rows))
			for _, r := range rows {
				if r.expires != 0 && now > r.expires {
					continue
				}
				names = append(names, r.name)
			}
			sort.Strings(names)
			return &listReply{Names: names}, nil
		}),
	}
}

// Serve exports a registry servant on ctx under the well-known id and
// returns the servant plus a reference assembled from every binding the
// context currently has. Leases use the runtime's clock and are pruned
// by a background sweeper that stops when the context closes.
func Serve(ctx *core.Context) (*core.Servant, *core.ObjectRef, error) {
	return ServeService(ctx, NewServiceWithClock(ctx.Runtime().Clock()))
}

// ServeService exports a caller-built Service (the directory plane uses
// this to wire a notify hook before the servant goes live) under the
// well-known id, starting its lease sweeper.
func ServeService(ctx *core.Context, svc *Service) (*core.Servant, *core.ObjectRef, error) {
	s, err := ctx.ExportAs(WellKnownObject, Iface, svc, Methods(svc), 0)
	if err != nil {
		return nil, nil, err
	}
	svc.StartSweeper(0)
	ctx.OnClose(svc)
	var entries []core.ProtoEntry
	if e, err := ctx.EntrySHM(); err == nil {
		entries = append(entries, e)
	}
	if e, err := ctx.EntryStream(); err == nil {
		entries = append(entries, e)
	}
	if e, err := ctx.EntryNexus(); err == nil {
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, nil, errs.Newf(errs.Config, "registry: context %s has no bindings", ctx.Name())
	}
	return s, ctx.NewRef(s, entries...), nil
}

// RefAt bootstraps a registry reference from a bare stream address
// ("sim://machine:port" or "tcp://host:port") without any prior
// exchange.
func RefAt(addr string) *core.ObjectRef {
	return &core.ObjectRef{
		Object:    WellKnownObject,
		Iface:     Iface,
		Protocols: []core.ProtoEntry{core.StreamEntryAt(addr)},
	}
}

// Client is a typed handle on a registry.
type Client struct {
	gp *core.GlobalPtr
}

// NewClient binds a registry reference to a client context.
func NewClient(ctx *core.Context, ref *core.ObjectRef) *Client {
	return &Client{gp: ctx.NewGlobalPtr(ref)}
}

// Bind publishes ref under name; it fails if the name is taken.
func (c *Client) Bind(name string, ref *core.ObjectRef) error {
	return c.bind(name, ref, false, 0)
}

// BindWithTTL publishes ref under name with a lease: unless renewed, the
// binding vanishes after ttl.
func (c *Client) BindWithTTL(name string, ref *core.ObjectRef, ttl time.Duration) error {
	return c.bind(name, ref, false, ttl)
}

// Rebind publishes ref under name, replacing any existing binding
// (migration uses this to keep names current).
func (c *Client) Rebind(name string, ref *core.ObjectRef) error {
	return c.bind(name, ref, true, 0)
}

// RebindWithTTL publishes ref under name with a fresh lease, replacing
// any existing binding — the directory plane's heartbeat primitive: a
// publisher that re-issues the full binding converges even against a
// replica that restarted empty, which a bare Renew cannot.
func (c *Client) RebindWithTTL(name string, ref *core.ObjectRef, ttl time.Duration) error {
	return c.bind(name, ref, true, ttl)
}

// GP exposes the underlying global pointer so callers can tune policy
// (deadlines, failover tables) on the registry channel itself.
func (c *Client) GP() *core.GlobalPtr { return c.gp }

// Renew extends a leased binding by ttl from now.
func (c *Client) Renew(name string, ttl time.Duration) error {
	_, err := core.Call[*renewArgs, core.Empty](c.gp, "renew", &renewArgs{Name: name, TTLNanos: int64(ttl)})
	return err
}

func (c *Client) bind(name string, ref *core.ObjectRef, overwrite bool, ttl time.Duration) error {
	blob, err := core.EncodeRef(ref)
	if err != nil {
		return err
	}
	_, err = core.Call[*bindArgs, core.Empty](c.gp, "bind", &bindArgs{Name: name, Ref: blob, Overwrite: overwrite, TTLNanos: int64(ttl)})
	return err
}

// Lookup resolves a name to an object reference.
func (c *Client) Lookup(name string) (*core.ObjectRef, error) {
	r, err := core.Call[*core.StringValue, refReply](c.gp, "lookup", &core.StringValue{V: name})
	if err != nil {
		return nil, err
	}
	return core.DecodeRef(r.Ref)
}

// Unbind removes a binding.
func (c *Client) Unbind(name string) error {
	_, err := core.Call[*core.StringValue, core.Empty](c.gp, "unbind", &core.StringValue{V: name})
	return err
}

// List returns the bound names with the given prefix, sorted.
func (c *Client) List(prefix string) ([]string, error) {
	r, err := core.Call[*core.StringValue, listReply](c.gp, "list", &core.StringValue{V: prefix})
	if err != nil {
		return nil, err
	}
	return r.Names, nil
}
