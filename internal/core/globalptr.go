package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/health"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/stats"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/wire"
)

// GlobalPtr (the paper's GP) is a client-side handle on a remote server
// object. It holds an object reference and lazily binds a protocol
// object chosen by automatic run-time protocol selection; the binding is
// re-evaluated whenever the reference changes (migration) or the
// selected protocol fails.
type GlobalPtr struct {
	host *Context

	mu      sync.Mutex
	ref     *ObjectRef
	proto   Protocol
	entry   int           // index into ref.Protocols of the selected entry
	metrics *protoMetrics // cached handles for the bound protocol
	policy  *transport.BatchPolicy

	// healthGen is the health tracker generation observed when the
	// current binding was made; when the tracker moves (an endpoint
	// tripped or recovered), the next prepare re-runs selection and
	// re-promotes a recovered, more preferred entry.
	healthGen uint64
	// refresh, when set, re-resolves the reference after a FaultNoObject
	// (SetRefresh) — directory resolvers chase stale cached bindings with
	// it the way FaultMoved chases tombstones.
	refresh func() (*ObjectRef, error)
	// deadline, when non-zero, bounds every invocation that does not
	// carry a sooner context deadline.
	deadline time.Duration

	// budget is the retry token bucket (budget.go); nil when budgeting
	// is disabled for this GP.
	budget *retryBudget

	inflight chan struct{} // per-GP async in-flight limiter
}

// protoMetrics caches the metric handles for one bound protocol, so the
// invocation hot path increments atomics instead of rebuilding metric
// names and taking the registry lock on every call.
type protoMetrics struct {
	calls, oneway, reqBytes, respBytes *stats.Counter
	transportErrors, faults            *stats.Counter
	latency                            *stats.Histogram
}

func newProtoMetrics(r *stats.Registry, pid string) *protoMetrics {
	return &protoMetrics{
		calls:           r.Counter("rpc." + pid + ".calls"),
		oneway:          r.Counter("rpc." + pid + ".oneway"),
		reqBytes:        r.Counter("rpc." + pid + ".req_bytes"),
		respBytes:       r.Counter("rpc." + pid + ".resp_bytes"),
		transportErrors: r.Counter("rpc." + pid + ".transport_errors"),
		faults:          r.Counter("rpc." + pid + ".faults"),
		latency:         r.Histogram("rpc." + pid + ".latency_us"),
	}
}

// DefaultMaxInFlight is the default per-GP bound on outstanding
// asynchronous invocations.
const DefaultMaxInFlight = 32

// NewGlobalPtr binds a reference to a client context. The reference is
// cloned, so callers may keep mutating their copy. The GP is registered
// with the context for the introspection plane (/statusz lists every
// live GP with its protocol table and selection); call Release when
// done with a short-lived GP so the listing does not grow unboundedly.
func (c *Context) NewGlobalPtr(ref *ObjectRef) *GlobalPtr {
	g := &GlobalPtr{
		host:     c,
		ref:      ref.Clone(),
		entry:    -1,
		budget:   newRetryBudget(c.rt.RetryBudget()),
		inflight: make(chan struct{}, DefaultMaxInFlight),
	}
	c.mu.Lock()
	c.gps[g] = struct{}{}
	c.mu.Unlock()
	c.rt.gpGauge.Inc()
	return g
}

// Release drops the GP's protocol binding and unregisters it from its
// context's introspection listing. The GP remains usable — a later
// Invoke re-selects — but a released GP no longer appears in /statusz.
// Releasing twice is harmless.
func (g *GlobalPtr) Release() {
	g.Invalidate()
	c := g.host
	c.mu.Lock()
	_, live := c.gps[g]
	delete(c.gps, g)
	c.mu.Unlock()
	if live {
		c.rt.gpGauge.Dec()
	}
}

// Ref returns a copy of the current object reference.
func (g *GlobalPtr) Ref() *ObjectRef {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ref.Clone()
}

// SetRef replaces the reference (e.g. with a re-ordered protocol table)
// and invalidates the protocol binding.
func (g *GlobalPtr) SetRef(ref *ObjectRef) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ref = ref.Clone()
	g.invalidateLocked()
}

// Invalidate drops the protocol binding; the next call re-selects.
func (g *GlobalPtr) Invalidate() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.invalidateLocked()
}

func (g *GlobalPtr) invalidateLocked() {
	if g.proto != nil {
		g.proto.Close()
		g.proto = nil
	}
	g.entry = -1
	g.metrics = nil
}

// SetMaxInFlight resizes the per-GP bound on outstanding asynchronous
// invocations (n <= 0 restores the default). Resizing affects future
// InvokeAsync calls; invocations already in flight drain against the
// limiter they were admitted under.
func (g *GlobalPtr) SetMaxInFlight(n int) {
	if n <= 0 {
		n = DefaultMaxInFlight
	}
	g.mu.Lock()
	g.inflight = make(chan struct{}, n)
	g.mu.Unlock()
}

// SetBatchPolicy steers adaptive micro-batching for this GP: requests
// are coalesced into wire.TBatch frames under the given watermarks when
// the bound protocol supports it (the stream family and glue chains over
// it do; Nexus embeds frames per-RSR and ignores the knob). A nil policy
// disables batching. The policy survives rebinds — it is re-applied
// after every protocol selection.
func (g *GlobalPtr) SetBatchPolicy(p *transport.BatchPolicy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p == nil {
		g.policy = nil
	} else {
		cp := *p
		g.policy = &cp
	}
	if g.proto != nil {
		g.applyBatchingLocked()
	}
}

// BatchPolicy reports the configured batching policy (nil when off).
func (g *GlobalPtr) BatchPolicy() *transport.BatchPolicy {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.policy == nil {
		return nil
	}
	cp := *g.policy
	return &cp
}

// applyBatchingLocked pushes the GP's policy into the bound protocol, if
// it listens. Caller holds g.mu.
func (g *GlobalPtr) applyBatchingLocked() {
	bp, ok := g.proto.(BatchingProtocol)
	if !ok {
		return
	}
	if g.policy == nil {
		bp.SetBatching(transport.BatchPolicy{})
	} else {
		bp.SetBatching(*g.policy)
	}
}

// SelectedProtocol reports which protocol the GP is currently bound to,
// selecting one if necessary. The experiments use this to observe
// adaptation (Figure 4's step table).
func (g *GlobalPtr) SelectedProtocol() (ProtoID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.bindLocked(); err != nil {
		return "", err
	}
	return g.ref.Protocols[g.entry].ID, nil
}

// SelectedEntry reports the index into the reference's protocol table of
// the bound entry, plus its protocol id, selecting first if necessary.
// Experiments use it to tell apart multiple glue entries (Figure 4-B has
// two).
func (g *GlobalPtr) SelectedEntry() (int, ProtoID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.bindLocked(); err != nil {
		return -1, "", err
	}
	return g.entry, g.ref.Protocols[g.entry].ID, nil
}

// SetRefresh installs a reference-refresh hook consulted when an
// invocation faults with FaultNoObject: the hook re-resolves the name
// authoritatively (bypassing any cache), and if the resolved reference
// differs from the current one the GP adopts it and retries — the
// directory plane's answer to a cached binding going stale between a
// tombstone being lost and the lease backstop firing. A nil hook (the
// default) leaves FaultNoObject terminal.
func (g *GlobalPtr) SetRefresh(fn func() (*ObjectRef, error)) {
	g.mu.Lock()
	g.refresh = fn
	g.mu.Unlock()
}

// SetDefaultDeadline bounds every invocation on this GP that does not
// already carry a sooner context deadline: the absolute expiry travels
// in the wire header, so servers shed the request instead of executing
// it after the caller stopped caring. Zero disables the default.
func (g *GlobalPtr) SetDefaultDeadline(d time.Duration) {
	g.mu.Lock()
	g.deadline = d
	g.mu.Unlock()
}

// entryHealthKey identifies one protocol-table endpoint for the health
// tracker: the protocol id plus the entry's address, so the same server
// address reached through two protocols trips independently.
func entryHealthKey(e ProtoEntry) string {
	if a, err := decodeAddrData(e.Data); err == nil && a.Addr != "" {
		return string(e.ID) + "|" + a.Addr
	}
	return string(e.ID) + "|" + string(e.Data)
}

// bindLocked runs protocol selection if no protocol is bound, and —
// when the health landscape changed since the last bind — re-runs it to
// re-promote a recovered, more preferred table entry.
func (g *GlobalPtr) bindLocked() error {
	ht := g.host.rt.Health()
	failover := g.host.rt.FailoverEnabled()
	if g.proto != nil {
		if !failover || ht == nil || ht.Generation() == g.healthGen {
			return nil
		}
		// A breaker tripped or recovered somewhere. Re-run selection with
		// current health; rebind only when it picks a different entry
		// (re-promotion to a recovered preferred endpoint, or demotion
		// away from a newly tripped one). Same pick: keep the binding.
		g.healthGen = ht.Generation()
		f, idx, err := g.selectLocked(ht, failover)
		if err != nil || idx == g.entry {
			return nil
		}
		g.invalidateLocked()
		return g.bindToLocked(f, idx, "promote")
	}
	f, idx, err := g.selectLocked(ht, failover)
	if err != nil {
		return err
	}
	if failover && ht != nil {
		g.healthGen = ht.Generation()
	}
	return g.bindToLocked(f, idx, "select")
}

// selectLocked runs protocol selection, vetoing circuit-broken endpoints
// when failover is on. If every applicable endpoint is unhealthy it
// falls back to unfiltered selection — trying the preferred endpoint
// beats failing without trying.
func (g *GlobalPtr) selectLocked(ht *health.Tracker, failover bool) (ProtoFactory, int, error) {
	if failover && ht != nil {
		f, idx, err := g.host.pool.SelectWhere(g.ref, g.host.loc, func(_ int, e ProtoEntry) bool {
			return ht.Allow(entryHealthKey(e))
		})
		if err == nil {
			return f, idx, nil
		}
	}
	return g.host.pool.Select(g.ref, g.host.loc)
}

// bindToLocked instantiates the chosen entry and caches per-binding
// state (metric handles are resolved once per bind, not once per call).
func (g *GlobalPtr) bindToLocked(f ProtoFactory, idx int, event string) error {
	p, err := f.New(g.ref.Protocols[idx], g.ref, g.host)
	if err != nil {
		return errs.Wrapf(errs.Transport, err, "core: instantiating %s", f.ID())
	}
	g.proto = p
	g.entry = idx
	g.metrics = newProtoMetrics(g.host.rt.Metrics(), string(p.ID()))
	g.applyBatchingLocked()
	g.registerProbesLocked()
	g.host.rt.recordEvent(event, g.ref.Object,
		"context %s picked table[%d] %s (server at %s)", g.host.name, idx, p.ID(), g.ref.Server)
	return nil
}

// probeMethod is the method name health probes invoke; servers answer it
// with FaultNoMethod, which is all a probe needs — proof of life.
const probeMethod = "__health_probe__"

// registerProbesLocked installs an out-of-band liveness probe for every
// entry in the reference's table, so tripped breakers re-close when the
// endpoint recovers — without risking live requests on it.
func (g *GlobalPtr) registerProbesLocked() {
	ht := g.host.rt.Health()
	if ht == nil || !g.host.rt.FailoverEnabled() {
		return
	}
	host, ref := g.host, g.ref.Clone()
	for _, e := range ref.Protocols {
		entry := e
		ht.SetProbe(entryHealthKey(entry), func() error {
			return probeEntry(host, ref, entry)
		})
	}
}

// probeEntry tests one protocol-table endpoint: instantiate its protocol
// and issue a no-op call. Any decodable reply — even a fault — proves
// the path and the server process are alive; the one exception is
// FaultUnavailable, which means "up but refusing work" (draining) and
// keeps the breaker open.
func probeEntry(host *Context, ref *ObjectRef, entry ProtoEntry) error {
	f, ok := host.pool.Lookup(entry.ID)
	if !ok {
		return errs.Newf(errs.Config, "core: no factory for %s", entry.ID)
	}
	p, err := f.New(entry, ref, host)
	if err != nil {
		return err
	}
	defer p.Close()
	reply, err := p.Call(&wire.Message{Type: wire.TRequest, Object: string(ref.Object), Method: probeMethod})
	if err != nil {
		return err
	}
	if reply.Type == wire.TFault {
		if ferr := wire.DecodeFault(reply.Body); ferr != nil {
			var wf *wire.Fault
			if errors.As(ferr, &wf) && wf.Code == wire.FaultUnavailable {
				return wf
			}
		}
	}
	return nil
}

// maxInvokeAttempts bounds migration chases: an object hopping contexts
// mid-call yields FaultMoved chains; each hop refreshes the reference.
const maxInvokeAttempts = 4

// Retry backoff: attempts after a transport error or a stale protocol
// choice wait base<<n capped at retryBackoffCap, with ±50% jitter so a
// herd of GPs re-selecting against one recovering server de-correlates.
// Migration chases (FaultMoved) skip the backoff — the tombstone hands
// over a fresh, authoritative reference, so retrying immediately is
// right. Sleeps go through the runtime clock: tests with clock.Fake pay
// simulated time only.
const (
	retryBackoffBase = 2 * time.Millisecond
	retryBackoffCap  = 50 * time.Millisecond
)

// retryBackoff computes the jittered delay before retry attempt n (n>=1).
func retryBackoff(attempt int) time.Duration {
	d := retryBackoffBase << (attempt - 1)
	if d > retryBackoffCap || d <= 0 {
		d = retryBackoffCap
	}
	// Jitter in [0.5d, 1.5d).
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// prepared is one ready-to-send attempt: the bound protocol, the frame,
// the endpoint's health key, and the metric handles that account for it.
type prepared struct {
	proto Protocol
	req   *wire.Message
	pm    *protoMetrics
	em    *endpointMeters
	key   string // health-tracker key of the bound endpoint
}

// prepare binds (selecting a protocol if needed) and builds the request
// frame for one attempt. The effective deadline — the sooner of the
// context's and the GP default — travels in the wire header so servers
// can shed the request once it expires.
func (g *GlobalPtr) prepare(ctx context.Context, typ wire.MsgType, method string, args []byte) (prepared, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.bindLocked(); err != nil {
		return prepared{}, err
	}
	var deadline int64
	if t, ok := ctx.Deadline(); ok {
		deadline = t.UnixNano()
	}
	if g.deadline > 0 {
		d := g.host.rt.Clock().Now().Add(g.deadline).UnixNano()
		if deadline == 0 || d < deadline {
			deadline = d
		}
	}
	key := entryHealthKey(g.ref.Protocols[g.entry])
	return prepared{
		proto: g.proto,
		req: &wire.Message{
			Type:     typ,
			Object:   string(g.ref.Object),
			Method:   method,
			Epoch:    g.ref.Epoch,
			Deadline: deadline,
			Body:     args,
		},
		pm:  g.metrics,
		em:  g.host.rt.endpointMeter(key),
		key: key,
	}, nil
}

// settle classifies the outcome of one attempt and performs the
// adaptation side effects (invalidation, reference refresh, metrics).
// done=false means the caller should retry; backoff reports whether the
// retry deserves a delay (transport errors and stale selections do,
// migration chases do not).
func (g *GlobalPtr) settle(p prepared, reply *wire.Message, err error) (body []byte, done bool, backoff bool, outErr error) {
	ht := g.host.rt.Health()
	report := func(ok bool) {
		if ht == nil || !g.host.rt.FailoverEnabled() {
			return
		}
		if ok {
			ht.ReportSuccess(p.key)
		} else {
			ht.ReportFailure(p.key)
		}
	}
	if err != nil {
		p.pm.transportErrors.Inc()
		// Transport-level failure: demote the endpoint and drop the
		// binding, so the retry re-selects — past the tripped breaker to
		// the next entry in the reference's ordered protocol table. An
		// error with no taxonomy code yet (a raw dial/mux/conn failure)
		// is stamped Transport (class retryable) so the retry-budget
		// gate and the SLO counters see a kind, not a string; the
		// original stays reachable through errors.Is/As.
		serr := err
		if errs.CodeOf(err) == errs.Unknown {
			serr = errs.Wrap(errs.Transport, err, "core: transport failure")
		}
		g.host.rt.errCounter(errs.CodeOf(serr)).Inc()
		report(false)
		g.Invalidate()
		return nil, false, true, serr
	}
	switch reply.Type {
	case wire.TReply:
		p.pm.respBytes.Add(uint64(len(reply.Body)))
		report(true)
		g.budgetRef().success()
		return reply.Body, true, false, nil
	case wire.TFault:
		p.pm.faults.Inc()
		ferr := wire.DecodeFault(reply.Body)
		var f *wire.Fault
		if !errors.As(ferr, &f) {
			g.host.rt.errCounter(errs.Codec).Inc()
			return nil, true, false, ferr
		}
		g.host.rt.errCounter(errs.Code(f.Code)).Inc()
		switch f.Code {
		case wire.FaultMoved:
			// The endpoint answered authoritatively — it is healthy; the
			// object just lives elsewhere now.
			report(true)
			newRef, derr := DecodeRef(f.Data)
			if derr != nil {
				return nil, true, false, errs.Wrap(errs.Codec, derr, "core: moved but reference undecodable")
			}
			g.host.rt.recordEvent("refresh", newRef.Object,
				"context %s chased tombstone to %s (epoch %d)", g.host.name, newRef.Server, newRef.Epoch)
			g.SetRef(newRef)
			return nil, false, false, f
		case wire.FaultNoObject:
			// The endpoint answered authoritatively: no such object there.
			// With a refresh hook installed, re-resolve and — if the name
			// now points somewhere else — chase it like a migration; with
			// no hook, or when re-resolution agrees with what we tried,
			// the fault is terminal.
			report(true)
			g.mu.Lock()
			refresh := g.refresh
			cur := g.ref
			g.mu.Unlock()
			if refresh == nil {
				return nil, true, false, f
			}
			newRef, rerr := refresh()
			if rerr != nil || newRef == nil || sameRef(cur, newRef) {
				return nil, true, false, f
			}
			g.host.rt.recordEvent("refresh", newRef.Object,
				"context %s re-resolved after no-object (server now %s)", g.host.name, newRef.Server)
			g.SetRef(newRef)
			return nil, false, false, f
		case wire.FaultNotApplicable:
			report(true)
			g.Invalidate()
			return nil, false, true, f
		case wire.FaultUnavailable:
			// Deliberate refusal (draining/overloaded): trip the breaker
			// outright — a second request would only be refused too — and
			// retry through a fresh selection. The request never executed,
			// so re-issuing cannot double-execute anything.
			if ht != nil && g.host.rt.FailoverEnabled() {
				ht.Trip(p.key)
			}
			g.Invalidate()
			return nil, false, true, f
		default:
			// Application-level faults (including FaultExpired) come from a
			// live endpoint; they are terminal for this invocation.
			report(true)
			return nil, true, false, f
		}
	default:
		g.host.rt.errCounter(errs.Internal).Inc()
		return nil, true, false, errs.Newf(errs.Internal, "core: unexpected reply type %v", reply.Type)
	}
}

// sameRef reports whether two references are wire-identical (same
// object, epoch, server, and protocol table). Encoding failures count as
// "different" — the bounded retry loop makes an extra chase harmless.
func sameRef(a, b *ObjectRef) bool {
	ab, aerr := EncodeRef(a)
	bb, berr := EncodeRef(b)
	return aerr == nil && berr == nil && bytes.Equal(ab, bb)
}

// giveUp builds the terminal error after maxInvokeAttempts retries; it
// keeps the last failure's taxonomy code so callers classify the
// give-up the same way they would the failure itself.
func (g *GlobalPtr) giveUp(method string, lastErr error) error {
	return errs.Wrapf(errs.CodeOf(lastErr), lastErr, "core: invoke %s.%s gave up after %d attempts",
		g.Object(), method, maxInvokeAttempts)
}

// Invoke calls a method on the remote object: it selects a protocol,
// sends the request, and transparently adapts to migration (FaultMoved
// refreshes the reference and re-selects), to stale protocol choices
// (FaultNotApplicable re-selects), and to failing endpoints (transport
// errors and FaultUnavailable demote the endpoint's breaker and fail
// over down the reference's ordered protocol table).
func (g *GlobalPtr) Invoke(method string, args []byte) ([]byte, error) {
	return g.InvokeCtx(context.Background(), method, args)
}

// ctxAttemptErr wraps a context expiry with the last attempt's error so
// callers see both why the invocation stopped and what it last hit. The
// expiry stays the unwrap target (errors.Is(err, ctx.Err()) holds) and
// the taxonomy code follows it: Expired for deadlines, Canceled for
// cancellation.
func ctxAttemptErr(ctxErr, lastErr error) error {
	if lastErr == nil {
		return ctxErr
	}
	return errs.Wrapf(errs.CodeOf(ctxErr), ctxErr, "core: invocation stopped (last attempt: %v)", lastErr)
}

// InvokeCtx is Invoke bounded by a context: the deadline travels in the
// wire header (servers shed the request after expiry), retry backoffs
// respect cancellation, and an in-flight call is abandoned — and its
// endpoint demoted — when the deadline fires while the reply is
// overdue. The returned error wraps ctx.Err() when the context ended
// the invocation.
//
// With a span recorder installed (Runtime.Tracer) the invocation is
// traced end to end: a root "invoke" span, per-attempt "select", "retry"
// (carrying the failure cause) and per-protocol send spans, and — via
// the trace IDs stamped into the wire header — the server's dispatch
// spans, all under one trace ID.
func (g *GlobalPtr) InvokeCtx(ctx context.Context, method string, args []byte) ([]byte, error) {
	ifg := g.host.rt.inflightGauge
	ifg.Inc()
	defer ifg.Dec()
	root := g.host.rt.Tracer().StartRoot(obs.KindClient, "invoke")
	if root != nil {
		root.SetRPC(string(g.Object()), method)
		root.SetBytes(len(args))
	}
	body, err := g.invokeAttempts(ctx, root, method, args)
	root.SetErr(err)
	root.End()
	return body, err
}

// invokeAttempts runs the bounded retry loop under an (optional, nil
// when untraced) root span.
func (g *GlobalPtr) invokeAttempts(ctx context.Context, root *obs.Active, method string, args []byte) ([]byte, error) {
	var lastErr error
	needBackoff := false
	for attempt := 0; attempt < maxInvokeAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, ctxAttemptErr(err, lastErr)
		}
		if attempt > 0 {
			// The retry span covers the backoff wait and records why the
			// previous attempt failed.
			rs := root.Child("retry")
			rs.SetCause(retryCause(lastErr))
			if needBackoff {
				if err := clock.SleepCtx(ctx, g.host.rt.Clock(), retryBackoff(attempt)); err != nil {
					rs.End()
					return nil, ctxAttemptErr(err, lastErr)
				}
			}
			rs.End()
		}
		sel := root.Child("select")
		p, err := g.prepare(ctx, wire.TRequest, method, args)
		if err != nil {
			sel.SetErr(err)
			sel.End()
			return nil, err
		}
		var send *obs.Active
		if root != nil {
			sel.SetProto(string(p.proto.ID()), p.key)
			sel.End()
			stampTrace(g.host.rt.Tracer(), p.req, root)
			send = root.Child(string(p.proto.ID()))
			send.SetProto(string(p.proto.ID()), p.key)
			send.SetBytes(len(args))
		}
		p.pm.calls.Inc()
		p.pm.reqBytes.Add(uint64(len(args)))
		start := time.Now()
		reply, err := g.callWithCtx(ctx, p)
		elapsed := time.Since(start)
		p.pm.latency.ObserveDurationTraced(elapsed, uint64(root.TraceID()))
		p.em.observe(elapsed, len(args)+replyBytes(reply), g.host.rt.Clock().Now())
		send.SetErr(err)
		send.End()
		if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			// The context ended the attempt; callWithCtx already demoted
			// the endpoint if the deadline fired mid-flight.
			return nil, ctxAttemptErr(err, lastErr)
		}

		body, done, backoff, serr := g.settle(p, reply, err)
		if done {
			return body, serr
		}
		// The settle loop wants a retry: the budget gate decides. A
		// backoff-charged retry draws a token; permanent classes and a
		// dry bucket end the invocation here instead of amplifying.
		if stop, berr := g.retryAdmit(serr, backoff); stop {
			return nil, berr
		}
		lastErr, needBackoff = serr, backoff
	}
	return nil, g.giveUp(method, lastErr)
}

// callWithCtx issues one attempt, honoring cancellation mid-flight when
// the protocol supports pipelining: on expiry the pending exchange is
// abandoned (a late reply is dropped by the mux) and the endpoint is
// reported failing — an endpoint that cannot answer within the deadline
// is, for failover purposes, indistinguishable from a dead one.
func (g *GlobalPtr) callWithCtx(ctx context.Context, p prepared) (*wire.Message, error) {
	pp, ok := p.proto.(PipelinedProtocol)
	if !ok || ctx.Done() == nil {
		return p.proto.Call(p.req)
	}
	pending, err := pp.Begin(p.req)
	if err != nil {
		return nil, err
	}
	select {
	case <-pending.Done():
		return pending.Reply()
	case <-ctx.Done():
		if a, ok := pending.(interface{ Abandon() }); ok {
			a.Abandon()
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) && g.host.rt.FailoverEnabled() {
			if ht := g.host.rt.Health(); ht != nil {
				ht.ReportFailure(p.key)
			}
			g.Invalidate()
		}
		return nil, ctx.Err()
	}
}

// Object returns the target object id.
func (g *GlobalPtr) Object() ObjectID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ref.Object
}
