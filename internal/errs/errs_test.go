package errs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestNewWrapChain(t *testing.T) {
	base := io.ErrUnexpectedEOF
	e := Wrapf(Codec, base, "xdr: decoding field %s", "count")
	if e.Code != Codec {
		t.Fatalf("code = %v, want Codec", e.Code)
	}
	if !errors.Is(e, io.ErrUnexpectedEOF) {
		t.Fatal("wrapped cause lost from the errors.Is chain")
	}
	var out *E
	if !errors.As(e, &out) || out.Code != Codec {
		t.Fatal("errors.As(*E) failed")
	}
	if got := CodeOf(e); got != Codec {
		t.Fatalf("CodeOf = %v, want Codec", got)
	}
	if got := ClassOf(e); got != ClassPermanent {
		t.Fatalf("ClassOf(codec) = %v, want permanent", got)
	}
}

func TestOuterCodeWins(t *testing.T) {
	inner := New(Unavailable, "draining")
	outer := Wrap(Exhausted, inner, "gave up")
	if got := CodeOf(outer); got != Exhausted {
		t.Fatalf("CodeOf(outer) = %v, want Exhausted (outermost code wins)", got)
	}
	if !HasCode(outer, Exhausted) || HasCode(outer, Unavailable) {
		t.Fatal("HasCode should see the outermost code only")
	}
}

func TestErrorStringFormat(t *testing.T) {
	e := Newf(NoObject, "registry: no binding for %q", "svc").
		With("shard", 3).With("epoch", 7)
	s := e.Error()
	for _, want := range []string{`registry: no binding for "svc"`, "shard=3", "epoch=7", "[no-object]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Error() = %q, missing %q", s, want)
		}
	}
	if !strings.HasPrefix(s, "registry:") {
		t.Fatalf("Error() = %q: message prefix must survive (code rides at the end)", s)
	}
	// A wrap renders msg: cause.
	w := Wrap(Transport, errors.New("connection refused"), "core: dial primary")
	if got := w.Error(); !strings.Contains(got, "core: dial primary: connection refused") {
		t.Fatalf("wrap Error() = %q", got)
	}
}

func TestContextErrorMapping(t *testing.T) {
	if got := CodeOf(context.DeadlineExceeded); got != Expired {
		t.Fatalf("CodeOf(DeadlineExceeded) = %v, want Expired", got)
	}
	if got := CodeOf(context.Canceled); got != Canceled {
		t.Fatalf("CodeOf(Canceled) = %v, want Canceled", got)
	}
	wrapped := fmt.Errorf("attempt: %w", context.DeadlineExceeded)
	if got := CodeOf(wrapped); got != Expired {
		t.Fatalf("CodeOf(wrapped deadline) = %v, want Expired", got)
	}
}

func TestUnknownAndForeignErrors(t *testing.T) {
	if got := CodeOf(errors.New("plain")); got != Unknown {
		t.Fatalf("CodeOf(plain) = %v, want Unknown", got)
	}
	if got := ClassOf(errors.New("plain")); got != ClassPermanent {
		t.Fatalf("ClassOf(plain) = %v, want permanent (never amplify the unnameable)", got)
	}
	if got := CodeOf(nil); got != Unknown {
		t.Fatalf("CodeOf(nil) = %v, want Unknown", got)
	}
	// Forward compat: a code this build has no name for stays printable
	// and classifies permanent.
	fc := Code(999)
	if got := fc.String(); got != "code(999)" {
		t.Fatalf("Code(999).String() = %q", got)
	}
	if got := fc.Class(); got != ClassPermanent {
		t.Fatalf("Code(999).Class() = %v, want permanent", got)
	}
}

func TestClassTable(t *testing.T) {
	cases := map[Code]Class{
		Internal:      ClassPermanent,
		NoObject:      ClassPermanent,
		NoMethod:      ClassPermanent,
		Moved:         ClassRetryable,
		Auth:          ClassPermanent,
		Quota:         ClassResource,
		Capability:    ClassPermanent,
		NotApplicable: ClassRetryable,
		BadRequest:    ClassPermanent,
		Expired:       ClassHedgeable,
		Unavailable:   ClassRetryable,
		Transport:     ClassRetryable,
		Codec:         ClassPermanent,
		Config:        ClassPermanent,
		Canceled:      ClassPermanent,
		Exhausted:     ClassResource,
		Conflict:      ClassPermanent,
	}
	for code, want := range cases {
		if got := code.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", code, got, want)
		}
	}
	if len(cases) != len(KnownCodes()) {
		t.Fatalf("class table covers %d codes, taxonomy has %d — keep this test exhaustive", len(cases), len(KnownCodes()))
	}
}

func TestKnownCodesSortedUniqueNames(t *testing.T) {
	codes := KnownCodes()
	seen := map[string]Code{}
	for i, c := range codes {
		if i > 0 && codes[i-1] >= c {
			t.Fatalf("KnownCodes not strictly ascending at %d: %v >= %v", i, codes[i-1], c)
		}
		name := c.String()
		if strings.HasPrefix(name, "code(") || name == "unknown" {
			t.Fatalf("known code %d has default name %q", uint32(c), name)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("codes %v and %v share the name %q", prev, c, name)
		}
		seen[name] = c
	}
}

func TestBudgetExhausted(t *testing.T) {
	last := New(Unavailable, "primary draining")
	be := &BudgetExhausted{Code: Unavailable, Err: last}
	if got := CodeOf(be); got != Exhausted {
		t.Fatalf("CodeOf(BudgetExhausted) = %v, want Exhausted", got)
	}
	if got := ClassOf(be); got != ClassResource {
		t.Fatalf("ClassOf(BudgetExhausted) = %v, want resource", got)
	}
	var target *BudgetExhausted
	if !errors.As(be, &target) || target.Code != Unavailable {
		t.Fatal("errors.As(*BudgetExhausted) failed")
	}
	if !errors.Is(be, last) {
		t.Fatal("the last attempt's error must stay reachable via Unwrap")
	}
	if s := be.Error(); !strings.Contains(s, "unavailable") || !strings.Contains(s, "retry-budget-exhausted") {
		t.Fatalf("Error() = %q: should name both the denied code and the exhaustion", s)
	}
}

func TestClassStrings(t *testing.T) {
	for cl, want := range map[Class]string{
		ClassPermanent: "permanent",
		ClassRetryable: "retryable",
		ClassHedgeable: "hedgeable",
		ClassResource:  "resource",
		Class(9):       "class(9)",
	} {
		if got := cl.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", uint8(cl), got, want)
		}
	}
}
