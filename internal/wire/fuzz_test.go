package wire

import (
	"bytes"
	"testing"
)

// FuzzRead drives the frame decoder with arbitrary bytes; it must never
// panic, and any frame it accepts must re-encode and re-decode stably.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	Write(&seed, &Message{
		Type:      TRequest,
		Object:    "ctx/obj-1",
		Method:    "exchange",
		Epoch:     2,
		Envelopes: []Envelope{{ID: "glue", Data: []byte("tag")}, {ID: "encrypt", Data: []byte{1, 2}}},
		Body:      []byte("body"),
	})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})

	// TBatch seed: a micro-batch of two requests (one enveloped), so the
	// fuzzer explores the batch decoder's count/opaque/nested-frame paths.
	batch, err := EncodeBatch([]*Message{
		{Type: TRequest, Object: "ctx/obj-1", Method: "exchange", Body: []byte("a")},
		{Type: TRequest, Object: "ctx/obj-2", Method: "get", Epoch: 3,
			Envelopes: []Envelope{{ID: "glue", Data: []byte("sec")}}, Body: []byte("bb")},
	})
	if err != nil {
		f.Fatal(err)
	}
	var batchSeed bytes.Buffer
	Write(&batchSeed, batch)
	f.Add(batchSeed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.Type == TBatch {
			// Any accepted batch must decode without panicking, and an
			// accepted decode must re-encode and re-decode stably.
			subs, err := DecodeBatch(m)
			if err == nil {
				re, err := EncodeBatch(subs)
				if err != nil {
					t.Fatalf("accepted batch failed to re-encode: %v", err)
				}
				subs2, err := DecodeBatch(re)
				if err != nil || len(subs2) != len(subs) {
					t.Fatalf("unstable batch round trip: %v (%d vs %d)", err, len(subs2), len(subs))
				}
			}
		}
		var out bytes.Buffer
		if err := Write(&out, m); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		m2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if m.Type != m2.Type || m.Object != m2.Object || m.Method != m2.Method ||
			m.Epoch != m2.Epoch || !bytes.Equal(m.Body, m2.Body) || len(m.Envelopes) != len(m2.Envelopes) {
			t.Fatalf("unstable round trip: %+v vs %+v", m, m2)
		}
	})
}
