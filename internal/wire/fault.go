package wire

import (
	"errors"
	"fmt"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/xdr"
)

// FaultCode classifies remote errors so clients can react mechanically
// (retry after a move, re-select a protocol, surface a quota violation).
// The values are numerically identical to the wire-shared subset of the
// in-process taxonomy (internal/errs.Code): a fault decoded off the
// wire and an error minted locally carry the same code and class.
// TestFaultErrsBijective pins the two tables together.
type FaultCode uint32

// Fault codes.
const (
	FaultInternal      FaultCode = 1 // unclassified server-side failure
	FaultNoObject      FaultCode = 2 // unknown object id
	FaultNoMethod      FaultCode = 3 // object has no such method
	FaultMoved         FaultCode = 4 // object migrated; Data holds the new OR
	FaultAuth          FaultCode = 5 // authentication failed
	FaultQuota         FaultCode = 6 // quota capability exhausted
	FaultCapability    FaultCode = 7 // capability processing failed
	FaultNotApplicable FaultCode = 8  // protocol not applicable for this pair
	FaultBadRequest    FaultCode = 9  // malformed arguments
	FaultExpired       FaultCode = 10 // request deadline already passed; not retryable
	FaultUnavailable   FaultCode = 11 // endpoint draining/overloaded; retry elsewhere
)

func (c FaultCode) String() string {
	switch c {
	case FaultInternal:
		return "internal"
	case FaultNoObject:
		return "no-object"
	case FaultNoMethod:
		return "no-method"
	case FaultMoved:
		return "moved"
	case FaultAuth:
		return "auth"
	case FaultQuota:
		return "quota"
	case FaultCapability:
		return "capability"
	case FaultNotApplicable:
		return "not-applicable"
	case FaultBadRequest:
		return "bad-request"
	case FaultExpired:
		return "expired"
	case FaultUnavailable:
		return "unavailable"
	}
	return fmt.Sprintf("fault(%d)", uint32(c))
}

// Err returns the fault code's twin in the in-process taxonomy.
func (c FaultCode) Err() errs.Code { return errs.Code(c) }

// Class returns the reaction class of this fault code (the errs
// taxonomy's, since the code spaces are shared).
func (c FaultCode) Class() errs.Class { return errs.Code(c).Class() }

// Retryable reports whether a fault of this code is safe to re-issue:
// the request never executed (a draining server refused it, the
// protocol choice was stale, or the object moved and handed over a
// fresh reference), so retrying cannot double-execute anything.
func (c FaultCode) Retryable() bool {
	return errs.Code(c).Class() == errs.ClassRetryable
}

// Fault is a remote error. It travels as the body of a TFault message and
// implements error on the client side.
type Fault struct {
	Code    FaultCode
	Message string
	// Data carries code-specific payload; for FaultMoved it is the
	// XDR-encoded new ObjectRef.
	Data []byte
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("remote fault [%s]: %s", f.Code, f.Message)
}

// ErrCode implements errs.Coder: errs.CodeOf classifies a decoded fault
// directly, with the same code an in-process errs.E would carry.
func (f *Fault) ErrCode() uint32 { return uint32(f.Code) }

// MarshalXDR encodes the fault body.
func (f *Fault) MarshalXDR(e *xdr.Encoder) error {
	e.PutUint32(uint32(f.Code))
	e.PutString(f.Message)
	e.PutOpaque(f.Data)
	return nil
}

// UnmarshalXDR decodes the fault body.
func (f *Fault) UnmarshalXDR(d *xdr.Decoder) error {
	c, err := d.Uint32()
	if err != nil {
		return err
	}
	f.Code = FaultCode(c)
	if f.Message, err = d.String(); err != nil {
		return err
	}
	f.Data, err = d.Opaque()
	return err
}

// Faultf builds a Fault with a formatted message.
func Faultf(code FaultCode, format string, args ...any) *Fault {
	return &Fault{Code: code, Message: fmt.Sprintf(format, args...)}
}

// AsFault extracts a *Fault from an error chain, or builds one so
// servers always have something well-formed to send. A coded error
// (errs.E) whose code lies in the wire-shared range crosses with its
// code intact — a local quota denial faults as FaultQuota, not as an
// anonymous internal error; in-process-only codes (transport, codec,
// config ...) downgrade to FaultInternal since the peer could not
// react to them mechanically anyway.
func AsFault(err error) *Fault {
	var f *Fault
	if errors.As(err, &f) {
		return f
	}
	if c := errs.CodeOf(err); c > errs.Unknown && c < errs.CodeLocalBase {
		return &Fault{Code: FaultCode(c), Message: err.Error()}
	}
	return &Fault{Code: FaultInternal, Message: err.Error()}
}

// FaultMessage builds the TFault reply for a request.
func FaultMessage(req *Message, err error) (*Message, error) {
	f := AsFault(err)
	body, merr := xdr.Marshal(f)
	if merr != nil {
		return nil, merr
	}
	return &Message{
		Type:      TFault,
		RequestID: req.RequestID,
		Object:    req.Object,
		Method:    req.Method,
		Epoch:     req.Epoch,
		Body:      body,
	}, nil
}

// DecodeFault parses a TFault body into an error.
func DecodeFault(body []byte) error {
	f := new(Fault)
	if err := xdr.Unmarshal(body, f); err != nil {
		return errs.Wrap(errs.Codec, err, "wire: undecodable fault")
	}
	return f
}
