package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/errs"
)

// TestScenarioCorpusValid parses every file under testdata/scenarios/
// valid and spot-checks the filled defaults.
func TestScenarioCorpusValid(t *testing.T) {
	files, err := filepath.Glob("testdata/scenarios/valid/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no valid corpus files (%v)", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			sc, err := ParseFile(f)
			if err != nil {
				t.Fatalf("valid scenario rejected: %v", err)
			}
			if sc.Name == "" || sc.Machines() <= 0 {
				t.Fatalf("parsed scenario is hollow: %+v", sc)
			}
			if sc.DeadlineMS <= 0 {
				t.Fatal("deadline default not filled")
			}
			for i, w := range sc.Workload {
				if w.Ints <= 0 {
					t.Fatalf("workload[%d] ints default not filled", i)
				}
			}
		})
	}
}

// TestScenarioCorpusBad parses every file under testdata/scenarios/bad
// and asserts the rejection carries the error code the filename
// promises: codec-* files are malformed JSON (errs.Codec), config-*
// files are semantically invalid (errs.Config). One file per reject
// path in Parse/Validate.
func TestScenarioCorpusBad(t *testing.T) {
	files, err := filepath.Glob("testdata/scenarios/bad/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no bad corpus files (%v)", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			want := errs.Config
			if strings.HasPrefix(filepath.Base(f), "codec-") {
				want = errs.Codec
			}
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Parse(data)
			if err == nil {
				t.Fatalf("malformed scenario accepted: %+v", sc)
			}
			if got := errs.CodeOf(err); got != want {
				t.Fatalf("rejected with code %v, want %v (err: %v)", got, want, err)
			}
		})
	}
}

// TestParseFileMissing keeps the file-level error coded too.
func TestParseFileMissing(t *testing.T) {
	_, err := ParseFile("testdata/scenarios/definitely-not-there.json")
	if err == nil {
		t.Fatal("missing file accepted")
	}
	if got := errs.CodeOf(err); got != errs.Config {
		t.Fatalf("missing file rejected with %v, want config", got)
	}
}

// TestScenarioAccessors covers the convenience conversions.
func TestScenarioAccessors(t *testing.T) {
	sc, err := ParseFile("testdata/scenarios/valid/minimal.json")
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Duration(); got != 100*time.Millisecond {
		t.Fatalf("Duration() = %v", got)
	}
	if got := sc.Deadline(); got != time.Second {
		t.Fatalf("Deadline() = %v (default)", got)
	}
	if got := sc.Machines(); got != 4 {
		t.Fatalf("Machines() = %d", got)
	}
}

// TestValidateIsExhaustive walks the corpus names against the reject
// paths: every fault kind and arrival mode named in the package
// constants has at least one bad-corpus file exercising it.
func TestValidateIsExhaustive(t *testing.T) {
	files, _ := filepath.Glob("testdata/scenarios/bad/*.json")
	names := make([]string, len(files))
	for i, f := range files {
		names[i] = filepath.Base(f)
	}
	all := strings.Join(names, " ")
	for _, must := range []string{
		"codec-syntax", "codec-unknown-field", "codec-trailing",
		"config-no-name", "config-topology-zero", "config-bad-profile",
		"config-servers", "config-workers-zero", "config-empty-workload",
		"config-bad-kind", "config-zero-weight", "config-bad-arrival",
		"config-open-no-rate", "config-zero-duration", "config-fault-kind",
		"config-negative-churn",
	} {
		if !strings.Contains(all, must) {
			t.Errorf("bad corpus lost its %s case", must)
		}
	}
}
