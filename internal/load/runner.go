package load

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/migrate"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/stats"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/xdr"
)

// ExchangeIface is the harness servant's interface name: one method,
// "exchange", echoing an integer array — the paper's §5 workload.
const ExchangeIface = "openhpcxx.load.Exchange"

// loadBasePort anchors the per-server stream ports so restart hooks can
// re-bind the address a crashed server advertised.
const loadBasePort = 7600

// ExchangeActivator builds the echo servant. Stateless, so migration
// churn can move it freely.
func ExchangeActivator() (any, map[string]core.Method) {
	impl := &exchangeImpl{}
	return impl, map[string]core.Method{
		"exchange": core.Handler(func(in *core.Int32Slice) (*core.Int32Slice, error) {
			return in, nil
		}),
	}
}

type exchangeImpl struct{}

func (*exchangeImpl) Snapshot() ([]byte, error) { return nil, nil }
func (*exchangeImpl) Restore([]byte) error      { return nil }

// server is one exported servant: its context, machine, fixed port, and
// the plain + capability-glue references clients use.
type server struct {
	ctx      *core.Context
	machine  netsim.MachineID
	port     int
	plainRef *core.ObjectRef
	glueRef  *core.ObjectRef
}

// target is the per-server client-side state: shared GlobalPtrs, one per
// invocation flavor, used concurrently by every worker (the GP's
// in-flight limiter and batcher are made for that).
type target struct {
	sync    *core.GlobalPtr // unbatched: sync traffic must not eat batch delay
	async   *core.GlobalPtr // pipelined; micro-batched when the scenario says so
	batched *core.GlobalPtr // always micro-batched (degrades to plain async with batching off)
	glue    *core.GlobalPtr // through the encrypt+auth capability chain
}

// Runner is a built, ready-to-run scenario world.
type Runner struct {
	sc       *Scenario
	clk      clock.Clock
	net      *netsim.Network
	rt       *core.Runtime
	client   *core.Context
	servers  []*server
	targets  []*target
	pattern  []int // op index -> workload slice, weight-expanded
	args     [][]byte
	plan     *netsim.FaultPlan
	schedule []string
	// churn state: current home and ref of each server's object.
	churnMu   sync.Mutex
	churnHome []int
	churnRef  []*core.ObjectRef
	migrated  atomic.Uint64
}

// Result is one run's report, exported as JSON (the BENCH_*.json
// trajectory records these).
type Result struct {
	Scenario string `json:"scenario"`
	Mode     string `json:"arrival_mode"`
	Machines int    `json:"machines"`
	Servers  int    `json:"servers"`
	Workers  int    `json:"workers"`
	Batching bool   `json:"batching"`

	// OfferedPerSec is the arrival rate the generator held the system
	// to (open mode) or the completion-paced rate it achieved (closed).
	OfferedPerSec float64 `json:"offered_per_sec"`
	Issued        int     `json:"issued"`
	Completed     int     `json:"completed"`
	Failed        int     `json:"failed"`
	Migrations    uint64  `json:"migrations,omitempty"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	Elapsed       time.Duration `json:"elapsed_ns"`

	// Latency is the coordinated-omission-safe distribution: open mode
	// measures from intended start with expected-interval backfill;
	// closed mode from actual start (and says so in Mode).
	Latency stats.Snapshot `json:"latency_ns"`

	Schedule []string `json:"fault_schedule,omitempty"`
}

// NewRunner builds the scenario's world: topology, runtime, servers,
// references, shared GlobalPtrs, and the fault plan. clk may be nil for
// the real clock; a *clock.Fake makes short scenarios deterministic.
func NewRunner(sc *Scenario, clk clock.Clock) (*Runner, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if clk == nil {
		clk = clock.Real{}
	}
	profile, _ := profileByName(sc.Topology.Profile)
	if sc.Topology.Scale > 0 && sc.Topology.Scale != 1 {
		profile = profile.Scaled(sc.Topology.Scale)
	}
	n := netsim.New()
	if _, err := n.AddGrid(netsim.GridSpec{
		LANs:           sc.Topology.LANs,
		MachinesPerLAN: sc.Topology.MachinesPerLAN,
		Profile:        profile,
		CampusesEvery:  sc.Topology.CampusesEvery,
		SharedBps:      sc.Topology.LANCapacityBps,
	}); err != nil {
		return nil, err
	}
	rt := core.NewRuntime(n, "load-"+sc.Name)
	capability.Install(rt.DefaultPool())
	rt.RegisterIface(ExchangeIface, ExchangeActivator)
	rt.SetFailover(sc.Failover)
	rt.SetClock(clk)
	fail := func(err error) (*Runner, error) {
		rt.Close()
		return nil, err
	}
	client, err := rt.NewContext("client", netsim.GridMachine(0, 0))
	if err != nil {
		return fail(err)
	}
	r := &Runner{sc: sc, clk: clk, net: n, rt: rt, client: client}
	for i, m := range serverMachines(sc) {
		s, err := r.startServer(i, m)
		if err != nil {
			return fail(err)
		}
		r.servers = append(r.servers, s)
		r.churnHome = append(r.churnHome, i)
		r.churnRef = append(r.churnRef, s.plainRef)
	}
	r.buildTargets()
	r.buildPattern()
	if err := r.buildArgs(); err != nil {
		return fail(err)
	}
	if err := r.buildFaultPlan(); err != nil {
		return fail(err)
	}
	return r, nil
}

// Close tears the world down.
func (r *Runner) Close() { r.rt.Close() }

// Runtime exposes the run's runtime (introspection hooks attach here).
func (r *Runner) Runtime() *core.Runtime { return r.rt }

// serverMachines places servers round-robin across LANs — machine j of
// each LAN in turn — skipping lan0-m0, the client's machine, so every
// call crosses the network.
func serverMachines(sc *Scenario) []netsim.MachineID {
	out := make([]netsim.MachineID, 0, sc.Servers)
	for j := 0; len(out) < sc.Servers; j++ {
		for l := 0; l < sc.Topology.LANs && len(out) < sc.Servers; l++ {
			if l == 0 && j == 0 {
				continue
			}
			out = append(out, netsim.GridMachine(l, j))
		}
	}
	return out
}

// startServer builds one server context on m: stream binding at a fixed
// port, the echo servant, and plain + glue references.
func (r *Runner) startServer(i int, m netsim.MachineID) (*server, error) {
	ctx, err := r.rt.NewContext(fmt.Sprintf("server%d", i), m)
	if err != nil {
		return nil, err
	}
	port := loadBasePort + i
	if err := ctx.BindSim(port); err != nil {
		return nil, err
	}
	impl, methods := ExchangeActivator()
	sv, err := ctx.ExportAs(core.ObjectID(fmt.Sprintf("load/x%d", i)), ExchangeIface, impl, methods, 0)
	if err != nil {
		return nil, err
	}
	streamE, err := ctx.EntryStream()
	if err != nil {
		return nil, err
	}
	glueE, err := capability.GlueEntry(ctx, fmt.Sprintf("load-sec%d", i), streamE,
		capability.NewRandomEncrypt(capability.ScopeAlways),
		capability.MustNewAuth("load", []byte("load-key"), capability.ScopeAlways),
	)
	if err != nil {
		return nil, err
	}
	return &server{
		ctx:      ctx,
		machine:  m,
		port:     port,
		plainRef: ctx.NewRef(sv, streamE),
		glueRef:  ctx.NewRef(sv, glueE),
	}, nil
}

// buildTargets creates the shared per-server GlobalPtrs. The async GP's
// pipeline depth scales with the worker count so open-loop bursts are
// not throttled by the client's own limiter.
func (r *Runner) buildTargets() {
	depth := r.sc.Workers * 4
	if depth < core.DefaultMaxInFlight {
		depth = core.DefaultMaxInFlight
	}
	policy := &transport.BatchPolicy{MaxMessages: 16, MaxDelay: transport.DefaultBatchDelay}
	for _, s := range r.servers {
		t := &target{
			sync:    r.client.NewGlobalPtr(s.plainRef),
			async:   r.client.NewGlobalPtr(s.plainRef),
			batched: r.client.NewGlobalPtr(s.plainRef),
			glue:    r.client.NewGlobalPtr(s.glueRef),
		}
		for _, gp := range []*core.GlobalPtr{t.sync, t.async, t.batched, t.glue} {
			gp.SetMaxInFlight(depth)
			gp.SetDefaultDeadline(r.sc.Deadline())
		}
		if r.sc.Batching {
			t.batched.SetBatchPolicy(policy)
			t.async.SetBatchPolicy(policy)
		}
		r.targets = append(r.targets, t)
	}
}

// buildPattern expands the workload weights into a deterministic
// repeating schedule: op k runs workload slice pattern[k % len].
func (r *Runner) buildPattern() {
	for i, w := range r.sc.Workload {
		for k := 0; k < w.Weight; k++ {
			r.pattern = append(r.pattern, i)
		}
	}
}

// buildArgs pre-marshals each workload slice's payload once.
func (r *Runner) buildArgs() error {
	for _, w := range r.sc.Workload {
		arr := &core.Int32Slice{V: make([]int32, w.Ints)}
		for i := range arr.V {
			arr.V[i] = int32(i)
		}
		b, err := xdr.Marshal(arr)
		if err != nil {
			return err
		}
		r.args = append(r.args, b)
	}
	return nil
}

// buildFaultPlan translates the scenario's fault schedule.
func (r *Runner) buildFaultPlan() error {
	if len(r.sc.Faults) == 0 {
		return nil
	}
	plan := new(netsim.FaultPlan)
	plan.SetClock(r.clk)
	for _, f := range r.sc.Faults {
		at := time.Duration(f.AtMS) * time.Millisecond
		m := netsim.MachineID(f.Machine)
		switch f.Kind {
		case FaultCrash:
			plan.CrashAt(at, m)
			r.schedule = append(r.schedule, fmt.Sprintf("%6v  crash %s", at, m))
		case FaultRestart:
			s := r.serverOn(m)
			if s == nil {
				return errs.Newf(errs.Config, "load: %s: restart of %s, which hosts no server", r.sc.Name, m)
			}
			plan.RestartAt(at, m, func() { _ = s.ctx.BindSim(s.port) })
			r.schedule = append(r.schedule, fmt.Sprintf("%6v  restart %s (re-bind sim port %d)", at, m, s.port))
		case FaultPartition:
			plan.PartitionAt(at, m, netsim.MachineID(f.Peer))
			r.schedule = append(r.schedule, fmt.Sprintf("%6v  partition %s | %s", at, m, f.Peer))
		case FaultHeal:
			plan.HealAt(at, m, netsim.MachineID(f.Peer))
			r.schedule = append(r.schedule, fmt.Sprintf("%6v  heal %s | %s", at, m, f.Peer))
		}
	}
	r.plan = plan
	return nil
}

func (r *Runner) serverOn(m netsim.MachineID) *server {
	for _, s := range r.servers {
		if s.machine == m {
			return s
		}
	}
	return nil
}

// churnLoop migrates server objects round-robin across the server
// contexts every period until ctx is done. Global pointers chase the
// moves transparently (FaultMoved forwarding), so the workload keeps
// running through the churn — that is the point.
func (r *Runner) churnLoop(ctx context.Context, period time.Duration) {
	for next := 0; ; next++ {
		if clock.SleepCtx(ctx, r.clk, period) != nil {
			return
		}
		i := next % len(r.servers)
		r.churnMu.Lock()
		from := r.servers[r.churnHome[i]]
		to := r.servers[(r.churnHome[i]+1)%len(r.servers)]
		if r.net.Down(from.machine) || r.net.Down(to.machine) {
			r.churnMu.Unlock()
			continue
		}
		newRef, err := migrate.MoveLocal(from.ctx, r.churnRef[i], to.ctx)
		if err == nil {
			r.churnHome[i] = (r.churnHome[i] + 1) % len(r.servers)
			r.churnRef[i] = newRef
			r.migrated.Add(1)
		}
		r.churnMu.Unlock()
	}
}

// op is one scheduled request.
type op struct {
	k        int
	intended time.Time
}

// Run executes the scenario and reports the run. ctx bounds the whole
// run (the duration bound is the scenario's own).
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	sc := r.sc
	// Warm-up outside the measured window: protocol selection and
	// connection setup on every flavor the mix uses.
	for si := range r.targets {
		for _, w := range sc.Workload {
			if _, err := r.invoke(ctx, si, w.Kind, r.args[0]); err != nil {
				return nil, errs.Wrapf(errs.CodeOf(err), err, "load: %s: warm-up of server %d (%s)", sc.Name, si, w.Kind)
			}
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if r.plan != nil {
		run := r.plan.Run(r.net)
		defer func() { run.Stop(); run.Wait() }()
	}
	if p := sc.Churn.MigrateEveryMS; p > 0 {
		go r.churnLoop(runCtx, time.Duration(p)*time.Millisecond)
	}

	var res *Result
	var err error
	if sc.Arrival.Mode == ArrivalOpen {
		res, err = r.runOpen(runCtx)
	} else {
		res, err = r.runClosed(runCtx)
	}
	if err != nil {
		return nil, err
	}
	res.Scenario = sc.Name
	res.Mode = sc.Arrival.Mode
	res.Machines = sc.Machines()
	res.Servers = sc.Servers
	res.Workers = sc.Workers
	res.Batching = sc.Batching
	res.Migrations = r.migrated.Load()
	res.Schedule = r.schedule
	if res.Elapsed <= 0 {
		res.Elapsed = time.Nanosecond
	}
	res.GoodputPerSec = float64(res.Completed) / res.Elapsed.Seconds()
	if sc.Arrival.Mode == ArrivalOpen {
		res.OfferedPerSec = sc.Arrival.RatePerSec
	} else {
		res.OfferedPerSec = float64(res.Issued) / res.Elapsed.Seconds()
	}
	return res, nil
}

// invoke executes one request of the given kind against server si.
func (r *Runner) invoke(ctx context.Context, si int, kind string, args []byte) ([]byte, error) {
	t := r.targets[si]
	callCtx, cancel := context.WithTimeout(ctx, r.sc.Deadline())
	defer cancel()
	switch kind {
	case KindAsync:
		return t.async.InvokeAsyncCtx(callCtx, "exchange", args).Wait()
	case KindBatched:
		return t.batched.InvokeAsyncCtx(callCtx, "exchange", args).Wait()
	case KindCapability:
		return t.glue.InvokeCtx(callCtx, "exchange", args)
	default:
		return t.sync.InvokeCtx(callCtx, "exchange", args)
	}
}

// runClosed drives the classic completion-paced loop: each worker
// issues its next request when the previous returns. Latency is
// measured from the actual issue time — which is exactly the
// coordinated-omission trap, and why the recorder pairs this mode with
// the open one; Result.Mode says which discipline produced the numbers.
func (r *Runner) runClosed(ctx context.Context) (*Result, error) {
	sc := r.sc
	var issued atomic.Int64
	maxOps := int64(sc.MaxOps)
	recs := make([]*Recorder, sc.Workers)
	fails := make([]int, sc.Workers)
	dones := make([]int, sc.Workers)
	start := r.clk.Now()
	var wg sync.WaitGroup
	for w := 0; w < sc.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := NewRecorder(0)
			recs[w] = rec
			for ctx.Err() == nil {
				k := issued.Add(1) - 1
				if maxOps > 0 && k >= maxOps {
					issued.Add(-1)
					return
				}
				now := r.clk.Now()
				if now.Sub(start) >= sc.Duration() {
					issued.Add(-1)
					return
				}
				slice := r.pattern[int(k)%len(r.pattern)]
				_, err := r.invoke(ctx, int(k)%len(r.targets), sc.Workload[slice].Kind, r.args[slice])
				rec.RecordFrom(now, r.clk.Now())
				if err != nil {
					fails[w]++
				} else {
					dones[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	return r.collect(recs, fails, dones, int(issued.Load()), r.clk.Now().Sub(start)), nil
}

// runOpen drives the open-loop generator: requests are scheduled at a
// fixed rate, each stamped with its intended start time; a stall in the
// system backs requests up in the queue but never stops the schedule,
// and every queued request's wait is charged to its latency.
func (r *Runner) runOpen(ctx context.Context) (*Result, error) {
	sc := r.sc
	interval := time.Duration(float64(time.Second) / sc.Arrival.RatePerSec)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	total := int(sc.Duration() / interval)
	if maxOps := sc.MaxOps; maxOps > 0 && total > maxOps {
		total = maxOps
	}
	// The queue holds the entire schedule: the generator never blocks on
	// slow workers — blocking *would be* coordinated omission at the
	// issue side.
	queue := make(chan op, total)
	recs := make([]*Recorder, sc.Workers)
	fails := make([]int, sc.Workers)
	dones := make([]int, sc.Workers)
	start := r.clk.Now()
	var wg sync.WaitGroup
	for w := 0; w < sc.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Expected-interval backfill at the aggregate rate spread
			// across the pool: each worker drains roughly every
			// Workers-th slot of the schedule.
			rec := NewRecorder(interval * time.Duration(sc.Workers))
			recs[w] = rec
			for o := range queue {
				if ctx.Err() != nil {
					return
				}
				slice := r.pattern[o.k%len(r.pattern)]
				_, err := r.invoke(ctx, o.k%len(r.targets), sc.Workload[slice].Kind, r.args[slice])
				rec.RecordFrom(o.intended, r.clk.Now())
				if err != nil {
					fails[w]++
				} else {
					dones[w]++
				}
			}
		}(w)
	}
	issued := 0
	for k := 0; k < total && ctx.Err() == nil; k++ {
		intended := start.Add(time.Duration(k) * interval)
		if wait := intended.Sub(r.clk.Now()); wait > 0 {
			if clock.SleepCtx(ctx, r.clk, wait) != nil {
				break
			}
		}
		queue <- op{k: k, intended: intended}
		issued++
	}
	close(queue)
	wg.Wait()
	return r.collect(recs, fails, dones, issued, r.clk.Now().Sub(start)), nil
}

// collect merges the per-worker recorders into one result.
func (r *Runner) collect(recs []*Recorder, fails, dones []int, issued int, elapsed time.Duration) *Result {
	merged := NewRecorder(0)
	res := &Result{Issued: issued, Elapsed: elapsed}
	for w := range recs {
		if recs[w] == nil {
			continue
		}
		merged.Merge(recs[w])
		res.Failed += fails[w]
		res.Completed += dones[w]
	}
	res.Latency = merged.Snapshot()
	return res
}

// RunScenario is the one-call entry: build the world, run it, tear it
// down.
func RunScenario(ctx context.Context, sc *Scenario, clk clock.Clock) (*Result, error) {
	r, err := NewRunner(sc, clk)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.Run(ctx)
}
