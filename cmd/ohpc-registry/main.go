// Command ohpc-registry runs a standalone Open HPC++ name service over
// real TCP. Applications bootstrap with registry.RefAt("tcp://host:port")
// and exchange object references — including their capability sets —
// by name.
//
// With -shards > 1 (or -replicas > 1) it serves the sharded directory
// plane instead: shard i's context listens on port+i, names partition
// across shards by consistent hashing, and each shard keeps -replicas
// copies with the replicas' endpoints merged into one failover table.
// The printed base64 bootstrap blob is what clients feed to
// directory.NewResolver / directory.NewPublisher.
//
// Usage:
//
//	ohpc-registry -listen 127.0.0.1:7777
//	ohpc-registry -listen 127.0.0.1:7777 -shards 3 -replicas 2
package main

import (
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"

	"openhpcxx/internal/core"
	"openhpcxx/internal/directory"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/registry"
	"openhpcxx/internal/xdr"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "TCP host:port to serve on (shard i listens on port+i)")
	shards := flag.Int("shards", 1, "directory shard count; 1 with -replicas 1 serves the classic single registry")
	replicas := flag.Int("replicas", 1, "replicas per shard (directory mode)")
	flag.Parse()

	// A standalone registry still needs a locality; model the host as a
	// one-machine network.
	n := netsim.New()
	n.AddLAN("local", "local", netsim.ProfileLoopback)
	n.MustAddMachine("host", "local")

	rt := core.NewRuntime(n, "ohpc-registry")
	defer rt.Close()

	if *shards > 1 || *replicas > 1 {
		serveDirectory(rt, *listen, *shards, *replicas)
	} else {
		serveSingle(rt, *listen)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("ohpc-registry: shutting down")
}

// serveSingle is the classic mode: one registry servant, one listener.
func serveSingle(rt *core.Runtime, listen string) {
	ctx, err := rt.NewContext("registry", "host")
	if err != nil {
		log.Fatalf("ohpc-registry: %v", err)
	}
	if err := ctx.BindTCP(listen); err != nil {
		log.Fatalf("ohpc-registry: listen %s: %v", listen, err)
	}
	if _, _, err := registry.Serve(ctx); err != nil {
		log.Fatalf("ohpc-registry: %v", err)
	}
	addr, _ := ctx.Binding(core.ProtoStream)
	fmt.Printf("ohpc-registry serving on %s\n", addr)
	fmt.Printf("bootstrap clients with registry.RefAt(%q)\n", addr)
}

// serveDirectory is the sharded mode: one context (and listener) per
// shard, the plane spread across them.
func serveDirectory(rt *core.Runtime, listen string, shards, replicas int) {
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		log.Fatalf("ohpc-registry: -listen %s: %v", listen, err)
	}
	base, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("ohpc-registry: -listen port %q: %v", portStr, err)
	}
	var ctxs []*core.Context
	for i := 0; i < shards; i++ {
		ctx, err := rt.NewContext(fmt.Sprintf("dir%d", i), "host")
		if err != nil {
			log.Fatalf("ohpc-registry: %v", err)
		}
		addr := net.JoinHostPort(host, strconv.Itoa(base+i))
		if err := ctx.BindTCP(addr); err != nil {
			log.Fatalf("ohpc-registry: listen %s: %v", addr, err)
		}
		ctxs = append(ctxs, ctx)
	}
	plane, err := directory.ServePlane(ctxs, directory.Topology{Shards: shards, Replicas: replicas})
	if err != nil {
		log.Fatalf("ohpc-registry: %v", err)
	}
	topo := plane.Topology()
	fmt.Printf("ohpc-registry directory plane: %d shards x %d replicas\n", topo.Shards, topo.Replicas)
	for i, ctx := range ctxs {
		addr, _ := ctx.Binding(core.ProtoStream)
		fmt.Printf("  shard %d primary on %s\n", i, addr)
	}
	boot, err := plane.Bootstrap()
	if err != nil {
		log.Fatalf("ohpc-registry: %v", err)
	}
	blob, err := xdr.Marshal(boot)
	if err != nil {
		log.Fatalf("ohpc-registry: %v", err)
	}
	fmt.Printf("bootstrap (base64 XDR, feed to directory.NewResolver):\n%s\n",
		base64.StdEncoding.EncodeToString(blob))
}
