package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/health"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/obs/obstest"
	"openhpcxx/internal/wire"
)

// failoverWorld builds a primary/backup pair of server contexts hosting
// the same echo object under one id, plus a client whose reference's
// protocol table is the failover chain [primary, backup].
func failoverWorld(t *testing.T) (n *netsim.Network, rt *Runtime, primary, backup, client *Context, gp *GlobalPtr) {
	t.Helper()
	n, rt = testWorld(t)
	primary, _ = rt.NewContext("primary", "mA")
	backup, _ = rt.NewContext("backup", "mB")
	client, _ = rt.NewContext("client", "mC")
	const port = 7201
	if err := primary.BindSim(port); err != nil {
		t.Fatal(err)
	}
	if err := backup.BindSim(0); err != nil {
		t.Fatal(err)
	}
	s, err := primary.ExportAs("shared/echo", "Echo", nil, echoMethods(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backup.ExportAs("shared/echo", "Echo", nil, echoMethods(), 0); err != nil {
		t.Fatal(err)
	}
	pe, _ := primary.EntryStream()
	be, _ := backup.EntryStream()
	gp = client.NewGlobalPtr(primary.NewRef(s, pe, be))
	return n, rt, primary, backup, client, gp
}

// primaryPort extracts the fixed port the primary bound (for re-binding
// after a restart).
const failoverPrimaryPort = 7201

func TestServerShedsExpiredRequests(t *testing.T) {
	_, rt := testWorld(t)
	ctx, _ := rt.NewContext("srv", "mA")
	s, err := ctx.Export("Echo", nil, echoMethods())
	if err != nil {
		t.Fatal(err)
	}
	before := rt.Metrics().Counter("srv.expired").Value()
	reply := ctx.Dispatch(&wire.Message{
		Type:     wire.TRequest,
		Object:   string(s.ID()),
		Method:   "echo",
		Deadline: rt.Clock().Now().Add(-time.Second).UnixNano(),
		Body:     []byte("late"),
	})
	if reply == nil || reply.Type != wire.TFault {
		t.Fatalf("expired request got %+v, want a fault", reply)
	}
	var f *wire.Fault
	if err := wire.DecodeFault(reply.Body); !errors.As(err, &f) || f.Code != wire.FaultExpired {
		t.Fatalf("fault %v, want FaultExpired", err)
	}
	if rt.Metrics().Counter("srv.expired").Value() != before+1 {
		t.Fatal("srv.expired metric not incremented")
	}
	if s.Calls() != 0 {
		t.Fatal("servant executed an expired request")
	}
	// A request with a future deadline executes normally.
	reply = ctx.Dispatch(&wire.Message{
		Type:     wire.TRequest,
		Object:   string(s.ID()),
		Method:   "echo",
		Deadline: rt.Clock().Now().Add(time.Hour).UnixNano(),
		Body:     []byte("ok"),
	})
	if reply == nil || reply.Type != wire.TReply || string(reply.Body) != "ok" {
		t.Fatalf("in-deadline request got %+v", reply)
	}
}

func TestDefaultDeadlineTravelsAndExpires(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	_, ref := exportEcho(t, srv)
	gp := client.NewGlobalPtr(ref)
	// An already-expired default deadline: the server sheds the request
	// and the client sees the terminal FaultExpired (no futile retries).
	gp.SetDefaultDeadline(time.Nanosecond)
	_, err := gp.Invoke("echo", []byte("x"))
	var f *wire.Fault
	if !errors.As(err, &f) || f.Code != wire.FaultExpired {
		t.Fatalf("err = %v, want FaultExpired", err)
	}
	// Clearing the default restores normal service.
	gp.SetDefaultDeadline(0)
	if _, err := gp.Invoke("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeCtxCancelsMidFlight(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	if err := srv.BindSim(0); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release)
	methods := map[string]Method{
		"block": func(args []byte) ([]byte, error) { <-release; return args, nil },
	}
	s, err := srv.Export("Blocker", nil, methods)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := srv.EntryStream()
	gp := client.NewGlobalPtr(srv.NewRef(s, e))

	start := time.Now()
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		_, err = gp.InvokeCtx(ctx, "block", nil)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("call %d: err = %v, want DeadlineExceeded", i, err)
		}
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt the in-flight calls")
	}
	// Each deadline expiry mid-flight demoted the endpoint; two in a row
	// trip its breaker (default threshold).
	key := entryHealthKey(gp.Ref().Protocols[0])
	if rt.Health().State(key) != health.Open {
		t.Fatalf("overdue endpoint's breaker is %v, want Open after repeated expiries", rt.Health().State(key))
	}
}

func TestInvokeCtxPreCancelled(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	_, ref := exportEcho(t, srv)
	gp := client.NewGlobalPtr(ref)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := gp.InvokeCtx(ctx, "echo", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestFailoverCrashRestartNoLostRequests is the deterministic acceptance
// scenario: every non-expired request issued through a machine crash
// completes (the ordered protocol table serves as the failover chain),
// and after restart plus one probe pass the GP is promoted back to the
// preferred entry.
func TestFailoverCrashRestartNoLostRequests(t *testing.T) {
	n, rt, primary, backup, _, gp := failoverWorld(t)
	_ = backup

	for i := 0; i < 5; i++ {
		if _, err := gp.Invoke("echo", []byte("pre")); err != nil {
			t.Fatalf("pre-crash call %d: %v", i, err)
		}
	}
	if idx, _, err := gp.SelectedEntry(); err != nil || idx != 0 {
		t.Fatalf("bound to table[%d] (%v), want the primary", idx, err)
	}

	n.Crash("mA")
	// Every call through the outage still completes: transport errors
	// demote the primary's breaker and the retry falls through to the
	// backup entry — zero lost requests.
	for i := 0; i < 10; i++ {
		if _, err := gp.Invoke("echo", []byte("during")); err != nil {
			t.Fatalf("call %d during the outage was lost: %v", i, err)
		}
	}
	if idx, _, err := gp.SelectedEntry(); err != nil || idx != 1 {
		t.Fatalf("bound to table[%d] (%v) during the outage, want the backup", idx, err)
	}
	pKey := entryHealthKey(gp.Ref().Protocols[0])
	if rt.Health().State(pKey) != health.Open {
		t.Fatalf("primary breaker %v during the outage, want Open", rt.Health().State(pKey))
	}

	// Supervisor restarts the machine and re-binds the advertised port.
	n.Restart("mA")
	if err := primary.BindSim(failoverPrimaryPort); err != nil {
		t.Fatalf("re-bind after restart: %v", err)
	}
	// One deterministic probe pass re-closes the breaker...
	rt.Health().ProbeNow()
	if rt.Health().State(pKey) != health.Closed {
		t.Fatalf("primary breaker %v after probe, want Closed", rt.Health().State(pKey))
	}
	// ...and the next invocation is promoted back to the preferred entry.
	pCalls := mustServant(t, primary, "shared/echo").Calls()
	if _, err := gp.Invoke("echo", []byte("post")); err != nil {
		t.Fatalf("post-restart call: %v", err)
	}
	if idx, _, err := gp.SelectedEntry(); err != nil || idx != 0 {
		t.Fatalf("bound to table[%d] (%v) after recovery, want the primary", idx, err)
	}
	if got := mustServant(t, primary, "shared/echo").Calls(); got != pCalls+1 {
		t.Fatalf("primary served %d calls after recovery, want %d", got, pCalls+1)
	}
}

func mustServant(t *testing.T, ctx *Context, id ObjectID) *Servant {
	t.Helper()
	s, ok := ctx.Servant(id)
	if !ok {
		t.Fatalf("no servant %s in %s", id, ctx.Name())
	}
	return s
}

// TestDrainTripsBreakerAndFailsOver covers the deliberate-refusal path:
// a draining context answers FaultUnavailable, which trips the breaker
// outright, and the retry lands on the backup without losing the call.
// The failover itself is asserted on the invocation's trace: one trace,
// a retry span caused by "unavailable", and the backup's server spans
// joined to it.
func TestDrainTripsBreakerAndFailsOver(t *testing.T) {
	_, rt, primary, backup, _, gp := failoverWorld(t)
	if _, err := gp.Invoke("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	col := obstest.Attach(t, rt.Tracer())
	primary.Drain()
	if _, err := gp.Invoke("echo", []byte("lame-duck")); err != nil {
		t.Fatalf("call against a draining primary was lost: %v", err)
	}
	tr := col.TraceOf(t, obstest.Root("echo"))
	obstest.AssertRetried(t, tr, "unavailable")
	obstest.AssertConnected(t, tr)
	// The primary's refusal and the backup's service are the same trace.
	// The refusal shows as a transport-level decode with no dispatch (the
	// draining transport rejects before the handler), then retry,
	// re-select, and a served dispatch on the backup.
	obstest.AssertPath(t, tr, "invoke→select→decode→retry→select→decode→dispatch→servant")
	if got := mustServant(t, backup, "shared/echo").Calls(); got == 0 {
		t.Fatal("backup never served the failed-over call")
	}
	pKey := entryHealthKey(gp.Ref().Protocols[0])
	if rt.Health().State(pKey) != health.Open {
		t.Fatalf("draining primary's breaker %v, want Open (tripped, not counted)", rt.Health().State(pKey))
	}
}

// TestFailoverDisabledKeepsPreferredEntry pins the control mode the
// Figure R1 experiment compares against: with failover off, health state
// never vetoes selection and calls against a dead primary fail.
func TestFailoverDisabledKeepsPreferredEntry(t *testing.T) {
	n, rt, _, _, _, gp := failoverWorld(t)
	rt.SetFailover(false)
	if _, err := gp.Invoke("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	n.Crash("mA")
	if _, err := gp.Invoke("echo", []byte("doomed")); err == nil {
		t.Fatal("call against the crashed primary succeeded with failover off")
	}
	if idx, _, err := gp.SelectedEntry(); err != nil || idx != 0 {
		t.Fatalf("bound to table[%d] (%v), want the preferred entry pinned", idx, err)
	}
}

// TestSharedGlobalPtrCrashRestartStress hammers one shared GP from many
// goroutines while the primary machine crashes and restarts repeatedly —
// the -race regression for the failover machinery. With a healthy backup
// in the table no request may be lost.
func TestSharedGlobalPtrCrashRestartStress(t *testing.T) {
	n, rt, primary, _, _, gp := failoverWorld(t)
	// Fast, bounded probes so recovery happens inside the test.
	rt.SetHealthOptions(health.Options{ProbeInterval: 5 * time.Millisecond, ProbeTimeout: 200 * time.Millisecond})

	const (
		workers = 8
		perGoro = 30
		cycles  = 3
	)
	var failures atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, err := gp.InvokeCtx(ctx, "echo", []byte{byte(w), byte(i)})
				cancel()
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d call %d lost: %v", w, i, err)
					return
				}
				clock.Sleep(clock.Real{}, time.Millisecond)
			}
		}(w)
	}

	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for c := 0; c < cycles; c++ {
			clock.Sleep(clock.Real{}, 8*time.Millisecond)
			n.Crash("mA")
			clock.Sleep(clock.Real{}, 8*time.Millisecond)
			n.Restart("mA")
			_ = primary.BindSim(failoverPrimaryPort)
		}
	}()

	wg.Wait()
	chaosWG.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests lost through crash/restart cycles", failures.Load())
	}
}

// TestInvokeAsyncCtxCancellation: a cancelled context fails the future
// with the context's error instead of leaving it pending.
func TestInvokeAsyncCtxCancellation(t *testing.T) {
	_, rt := testWorld(t)
	srv, _ := rt.NewContext("srv", "mA")
	client, _ := rt.NewContext("client", "mC")
	if err := srv.BindSim(0); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release)
	methods := map[string]Method{
		"block": func(args []byte) ([]byte, error) { <-release; return args, nil },
		"echo":  func(args []byte) ([]byte, error) { return args, nil },
	}
	s, err := srv.Export("Blocker", nil, methods)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := srv.EntryStream()
	gp := client.NewGlobalPtr(srv.NewRef(s, e))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	f := gp.InvokeAsyncCtx(ctx, "block", nil)
	if _, err := f.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("future error = %v, want DeadlineExceeded", err)
	}
	// The GP still works for later calls.
	if _, err := gp.Invoke("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
}
