package directory

import (
	"reflect"
	"testing"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/xdr"
)

// TestBootstrapXDRRoundTrip is the cross-process handoff: a plane's
// bootstrap survives encode/decode byte-for-byte, and the rebuilt ring
// partitions identically.
func TestBootstrapXDRRoundTrip(t *testing.T) {
	f := newFixture(t, Topology{Shards: 3, Replicas: 2, VNodes: 16}, nil)
	blob, err := xdr.Marshal(f.bs)
	if err != nil {
		t.Fatal(err)
	}
	var got Bootstrap
	if err := xdr.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, f.bs) {
		t.Fatalf("bootstrap round trip diverged:\n got %+v\nwant %+v", &got, f.bs)
	}
	a, b := f.bs.Ring(), got.Ring()
	for _, name := range []string{"x", "svc/a", "svc/b", "d1/obj-42"} {
		if a.Shard(name) != b.Shard(name) {
			t.Fatalf("rebuilt ring disagrees on %q", name)
		}
	}
}

// TestPlaneAccessorsAndTopologyClamp exercises the plane's read surface:
// the clamped topology, merged shard refs (one protocol entry per
// replica), and the replica handles.
func TestPlaneAccessorsAndTopologyClamp(t *testing.T) {
	// Ask for more replicas than hosting contexts; the plane clamps to 3.
	f := newFixture(t, Topology{Shards: 2, Replicas: 5}, nil)
	topo := f.plane.Topology()
	if topo.Replicas != 3 {
		t.Fatalf("replicas = %d, want clamp to 3 hosts", topo.Replicas)
	}
	if f.plane.Ring().Shards() != 2 {
		t.Fatalf("ring shards = %d, want 2", f.plane.Ring().Shards())
	}
	for s := 0; s < topo.Shards; s++ {
		reps := f.plane.Replicas(s)
		if len(reps) != 3 {
			t.Fatalf("shard %d has %d replicas, want 3", s, len(reps))
		}
		for _, sh := range reps {
			if sh.Index() != s {
				t.Fatalf("replica reports shard %d, want %d", sh.Index(), s)
			}
		}
		ref := f.plane.ShardRef(s)
		if len(ref.Protocols) != 3 {
			t.Fatalf("shard %d merged ref has %d entries, want 3", s, len(ref.Protocols))
		}
		if ref.Object != ShardObjectID(s) {
			t.Fatalf("shard %d ref object = %s", s, ref.Object)
		}
	}
}

// TestHeartbeatKeepsLeaseAliveAndUnpublishTombstones drives the
// publisher's background loop on a fake clock: heartbeated names outlive
// many TTLs, Names reports them, and Unpublish drops the binding
// immediately rather than waiting for expiry.
func TestHeartbeatKeepsLeaseAliveAndUnpublishTombstones(t *testing.T) {
	fc := clock.NewFake(time.Unix(20_000, 0))
	f := newFixture(t, Topology{Shards: 1}, fc)
	_, ref := exportEcho(t, f.srvCtx, "srv")
	pub, err := NewPublisher(f.srvCtx, f.bs, PublisherOptions{
		TTL:               2 * time.Second,
		HeartbeatInterval: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("svc/hb", ref); err != nil {
		t.Fatal(err)
	}
	if names := pub.Names(); len(names) != 1 || names[0] != "svc/hb" {
		t.Fatalf("Names() = %v", names)
	}

	svc := f.plane.Replicas(0)[0].Service()
	// Walk simulated time far past the TTL in heartbeat-interval steps.
	// Each Advance releases one heartbeat (plus the sweeper); the real
	// sleep lets those goroutines run before the next step.
	for i := 0; i < 16; i++ {
		fc.Advance(500 * time.Millisecond)
		clock.Sleep(clock.Real{}, 2*time.Millisecond)
		svc.Prune()
	}
	if total, _ := svc.Counts(); total != 1 {
		t.Fatalf("heartbeated binding evicted: %d entries", total)
	}

	if err := pub.Unpublish("svc/hb"); err != nil {
		t.Fatal(err)
	}
	if names := pub.Names(); len(names) != 0 {
		t.Fatalf("Names() after unpublish = %v", names)
	}
	if total, _ := svc.Counts(); total != 0 {
		t.Fatalf("unpublished binding still present: %d entries", total)
	}
}

// TestResolverRingAndUncachedRefresh covers the resolver's remaining
// read surface: the ring accessor and Refresh against a live plane.
func TestResolverRingAndUncachedRefresh(t *testing.T) {
	f := newFixture(t, Topology{Shards: 2}, nil)
	_, ref := exportEcho(t, f.srvCtx, "srv")
	blob, err := core.EncodeRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	f.plane.Preload("svc/r", blob, 0)

	res, err := NewResolver(f.cliCtx, f.bs, ResolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Ring().Shards() != 2 {
		t.Fatalf("resolver ring shards = %d", res.Ring().Shards())
	}
	got, err := res.Refresh("svc/r")
	if err != nil {
		t.Fatal(err)
	}
	if got.Object != ref.Object {
		t.Fatalf("refreshed object = %s, want %s", got.Object, ref.Object)
	}
	// Refresh repaired the cache: the next Resolve is a hit.
	if _, err := res.Resolve("svc/r"); err != nil {
		t.Fatal(err)
	}
	if res.CacheLen() != 1 {
		t.Fatalf("cache len = %d, want 1", res.CacheLen())
	}
}
