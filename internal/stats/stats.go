// Package stats provides the lightweight metrics the runtime uses to
// account for protocol usage: counters and log-scale latency/size
// histograms, lock-free on the hot path. The ORB records per-protocol
// call counts, errors, payload bytes, and round-trip latencies, which
// the experiments and the ohpc-demo use to report what actually flowed
// where.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways — in-flight
// invocations, pool occupancy, breaker states. All methods are atomic
// and nil-safe: a nil *Gauge is a no-op, so optional instrumentation
// costs one nil check when unwired.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Labels decorate a metric name with dimensions (endpoint, protocol,
// state ...). They canonicalize into the metric key as
// name{k1="v1",k2="v2"} with keys sorted, so the same label set always
// names the same metric and text exposition diffs cleanly.
type Labels map[string]string

// KeyWithLabels renders the canonical registry key for a labeled
// metric: name{k="v",...} with label keys sorted. Empty labels return
// the bare name. Exporters split the key at the first '{' to recover
// name and label block.
func KeyWithLabels(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the text-exposition escapes (backslash,
// quote, newline) so label values survive round trips through scrapes.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Histogram accumulates int64 observations into power-of-two buckets:
// bucket i counts observations with bit length i (0 counts zero and
// negative values). Percentiles are therefore approximate within 2x,
// which is plenty for latency accounting.
//
// Each bucket also carries one exemplar slot: the last traced
// observation that landed in it (ObserveTraced), so a surprising
// quantile resolves to an actual retained trace instead of an
// anonymous count. Untraced observations never touch the slots, so
// the plain Observe path stays allocation-free.
type Histogram struct {
	buckets   [65]atomic.Uint64
	exemplars [65]atomic.Pointer[exemplar]
	sum       atomic.Int64
	count     atomic.Uint64
}

// exemplar pins one traced observation to its bucket.
type exemplar struct {
	trace uint64
	value int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveTraced records one value and, for a non-zero trace, stamps it
// as the bucket's exemplar. The trace/value pair is stored as one
// atomic pointer, so readers never see a value paired with another
// observation's trace.
func (h *Histogram) ObserveTraced(v int64, trace uint64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if trace != 0 {
		h.exemplars[idx].Store(&exemplar{trace: trace, value: v})
	}
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(int64(d / time.Microsecond))
}

// ObserveDurationTraced records a duration in microseconds with an
// exemplar trace.
func (h *Histogram) ObserveDurationTraced(d time.Duration, trace uint64) {
	h.ObserveTraced(int64(d/time.Microsecond), trace)
}

// Merge folds every observation of o into h, bucket by bucket. Workers
// that each record into a private histogram (no cross-CPU contention on
// the hot path) combine their results with Merge at the end of a run;
// because the buckets are position-aligned, merged percentiles keep the
// same documented 2x bound as if every value had been observed directly
// on h. Merging a histogram into itself doubles it; o is read
// atomically but not frozen, so merge quiescent histograms for exact
// totals.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.buckets {
		if c := o.buckets[i].Load(); c > 0 {
			h.buckets[i].Add(c)
		}
		if e := o.exemplars[i].Load(); e != nil {
			h.exemplars[i].Store(e)
		}
	}
	h.sum.Add(o.sum.Load())
	h.count.Add(o.count.Load())
}

// Snapshot is a consistent-enough view of a histogram.
type Snapshot struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"` // upper bound of the highest non-empty bucket
	// Exemplars lists, per bucket that has one, the last traced
	// observation (omitted entirely for histograms no one traced).
	Exemplars []BucketExemplar `json:"exemplars,omitempty"`
}

// BucketExemplar is one bucket's pinned traced observation.
type BucketExemplar struct {
	// Bucket is the bucket index (the value's bit length); Upper is
	// the bucket's inclusive upper bound.
	Bucket int   `json:"bucket"`
	Upper  int64 `json:"upper"`
	// Trace and Value are the pinned observation; Value always falls
	// inside the bucket's bounds.
	Trace uint64 `json:"trace"`
	Value int64  `json:"value"`
	// Cum is the cumulative observation count at or below Upper when
	// the snapshot was taken — the `le` count an exposition line needs.
	Cum uint64 `json:"cum"`
}

// Percentile returns an upper bound for the p-th percentile (p in
// (0,1]). Because observations land in power-of-two buckets, the bound
// is within 2x of the exact percentile value: for an exact percentile
// v > 0, v <= Percentile(p) < 2*v. p <= 0 returns 0; an empty
// histogram returns 0.
func (h *Histogram) Percentile(p float64) int64 {
	if p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	var counts [65]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(64)
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [65]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	quantile := func(q float64) int64 {
		target := uint64(math.Ceil(q * float64(total)))
		if target == 0 {
			target = 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= target {
				return bucketUpper(i)
			}
		}
		return bucketUpper(64)
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	s.P999 = quantile(0.999)
	for i := 64; i >= 0; i-- {
		if counts[i] > 0 {
			s.Max = bucketUpper(i)
			break
		}
	}
	var cum uint64
	for i := range h.exemplars {
		cum += counts[i]
		if e := h.exemplars[i].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, BucketExemplar{
				Bucket: i, Upper: bucketUpper(i), Trace: e.trace, Value: e.value, Cum: cum,
			})
		}
	}
	return s
}

// bucketUpper is the largest value mapping to bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Registry holds named metrics. The zero value is not usable; call New.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	meters     map[string]*EWMA
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		meters:     make(map[string]*EWMA),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterWith returns the counter for name decorated with labels: each
// distinct label set is its own counter under the canonical
// name{k="v",...} key.
func (r *Registry) CounterWith(name string, labels Labels) *Counter {
	return r.Counter(KeyWithLabels(name, labels))
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeWith returns the gauge for name decorated with labels.
func (r *Registry) GaugeWith(name string, labels Labels) *Gauge {
	return r.Gauge(KeyWithLabels(name, labels))
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramWith returns the histogram for name decorated with labels.
func (r *Registry) HistogramWith(name string, labels Labels) *Histogram {
	return r.Histogram(KeyWithLabels(name, labels))
}

// Meter returns (creating if needed) the named EWMA meter with the
// default gain and horizon.
func (r *Registry) Meter(name string) *EWMA {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = NewEWMA(0, 0)
		r.meters[name] = m
	}
	return m
}

// MeterWith returns the meter for name decorated with labels.
func (r *Registry) MeterWith(name string, labels Labels) *EWMA {
	return r.Meter(KeyWithLabels(name, labels))
}

// CounterNames lists registered counters, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GaugeNames lists registered gauges, sorted.
func (r *Registry) GaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegistrySnapshot is a point-in-time export of every registered
// metric — the JSON shape WriteTo emits and Runtime.MetricsSnapshot
// returns.
type RegistrySnapshot struct {
	Counters   map[string]uint64        `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]Snapshot      `json:"histograms"`
	Meters     map[string]MeterSnapshot `json:"meters"`
}

// Snapshot captures every counter and gauge value and histogram
// summary. Each metric is read atomically; the set as a whole is as
// consistent as a live system allows. Meter rates are read as of
// their last update; SnapshotAt decays them to a caller-supplied
// instant instead.
func (r *Registry) Snapshot() RegistrySnapshot {
	return r.SnapshotAt(time.Time{})
}

// SnapshotAt is Snapshot with meter rates decayed to `now`, so a
// quiet endpoint's bandwidth reads near zero instead of its last
// burst. A zero now skips the decay.
func (r *Registry) SnapshotAt(now time.Time) RegistrySnapshot {
	r.mu.Lock()
	cs := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		cs[n] = c
	}
	gs := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gs[n] = g
	}
	hs := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hs[n] = h
	}
	ms := make(map[string]*EWMA, len(r.meters))
	for n, m := range r.meters {
		ms[n] = m
	}
	r.mu.Unlock()

	out := RegistrySnapshot{
		Counters:   make(map[string]uint64, len(cs)),
		Gauges:     make(map[string]int64, len(gs)),
		Histograms: make(map[string]Snapshot, len(hs)),
		Meters:     make(map[string]MeterSnapshot, len(ms)),
	}
	for n, c := range cs {
		out.Counters[n] = c.Value()
	}
	for n, g := range gs {
		out.Gauges[n] = g.Value()
	}
	for n, h := range hs {
		out.Histograms[n] = h.Snapshot()
	}
	for n, m := range ms {
		out.Meters[n] = m.SnapshotAt(now)
	}
	return out
}

// CounterNames lists the snapshot's counter keys, sorted — the
// deterministic iteration order every exporter should use.
func (s RegistrySnapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames lists the snapshot's gauge keys, sorted.
func (s RegistrySnapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// HistogramNames lists the snapshot's histogram keys, sorted.
func (s RegistrySnapshot) HistogramNames() []string { return sortedKeys(s.Histograms) }

// MeterNames lists the snapshot's meter keys, sorted.
func (s RegistrySnapshot) MeterNames() []string { return sortedKeys(s.Meters) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteTo writes the registry snapshot as one indented JSON document —
// the export behind `ohpc-demo`'s metrics dump and Runtime metrics
// files. Metrics are emitted in sorted name order by construction (not
// by relying on the encoder), so two scrapes of an unchanged registry
// are byte-identical and diff cleanly.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	err := r.Snapshot().WriteJSON(cw)
	return cw.n, err
}

// WriteJSON emits the snapshot as one indented JSON document with every
// section in sorted name order.
func (s RegistrySnapshot) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n  \"counters\": {")
	writeSortedJSON(&b, s.CounterNames(), func(n string) string {
		return fmt.Sprintf("%d", s.Counters[n])
	})
	b.WriteString("},\n  \"gauges\": {")
	writeSortedJSON(&b, s.GaugeNames(), func(n string) string {
		return fmt.Sprintf("%d", s.Gauges[n])
	})
	b.WriteString("},\n  \"histograms\": {")
	writeSortedJSON(&b, s.HistogramNames(), func(n string) string {
		j, _ := json.Marshal(s.Histograms[n])
		return string(j)
	})
	b.WriteString("},\n  \"meters\": {")
	writeSortedJSON(&b, s.MeterNames(), func(n string) string {
		j, _ := json.Marshal(s.Meters[n])
		return string(j)
	})
	b.WriteString("}\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSortedJSON renders one `"name": value` object body, indented.
func writeSortedJSON(b *strings.Builder, names []string, value func(string) string) {
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    ")
		key, _ := json.Marshal(n)
		b.Write(key)
		b.WriteString(": ")
		b.WriteString(value(n))
	}
	if len(names) > 0 {
		b.WriteString("\n  ")
	}
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Dump renders every metric as one line each, sorted by name.
func (r *Registry) Dump() string {
	s := r.Snapshot()
	var b strings.Builder
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "%s %d\n", n, s.Counters[n])
	}
	for _, n := range s.GaugeNames() {
		fmt.Fprintf(&b, "%s %d\n", n, s.Gauges[n])
	}
	for _, n := range s.HistogramNames() {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%s count=%d mean=%.1f p50<=%d p90<=%d p99<=%d\n",
			n, h.Count, h.Mean, h.P50, h.P90, h.P99)
	}
	for _, n := range s.MeterNames() {
		m := s.Meters[n]
		fmt.Fprintf(&b, "%s level=%.1f rate=%.1f count=%d\n", n, m.Level, m.Rate, m.Count)
	}
	return b.String()
}
