// Command ohpc-load runs the capacity harness from a declarative
// scenario file: it stands up the scenario's netsim topology, drives
// the mixed workload in closed- or open-loop arrival mode through the
// scheduled faults and migration churn, and reports goodput plus
// coordinated-omission-safe latency percentiles.
//
// Usage:
//
//	ohpc-load -scenario=sweep.json                # run on the real clock
//	ohpc-load -scenario=smoke.json -fake -json=-  # deterministic, simulated time
//	ohpc-load -scenario=sweep.json -check         # parse + validate only
//	ohpc-load -scenario=sweep.json -introspect=127.0.0.1:8090
//
// Scenario files are JSON; see internal/load's package documentation
// and internal/load/testdata/scenarios/valid/ for working examples.
// Open-loop scenarios (arrival.mode = "open") measure latency from each
// request's intended start time, so saturation shows up as a diverging
// tail instead of silently throttled load — see EXPERIMENTS.md on
// coordinated omission.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/introspect"
	"openhpcxx/internal/load"
)

func main() {
	scenarioPath := flag.String("scenario", "", "scenario file to run (required)")
	fake := flag.Bool("fake", false, "run on a fake clock: waits cost simulated time only (deterministic smoke runs)")
	check := flag.Bool("check", false, "parse and validate the scenario, print a summary, and exit")
	jsonPath := flag.String("json", "", "write the run result as JSON to this file ('-' for stdout)")
	introspectAddr := flag.String("introspect", "", "serve the introspection plane on this address while the run is live")
	flag.Parse()

	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "ohpc-load: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}
	sc, err := load.ParseFile(*scenarioPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ohpc-load: %v\n", err)
		os.Exit(1)
	}
	if *check {
		fmt.Printf("scenario %q: %d machines (%dx%d %s), %d servers, %d workers, %s arrival, %v run\n",
			sc.Name, sc.Machines(), sc.Topology.LANs, sc.Topology.MachinesPerLAN, sc.Topology.Profile,
			sc.Servers, sc.Workers, sc.Arrival.Mode, sc.Duration())
		return
	}

	var clk clock.Clock
	if *fake {
		clk = clock.NewFake(time.Unix(1_000_000, 0))
	}
	runner, err := load.NewRunner(sc, clk)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ohpc-load: %v\n", err)
		os.Exit(1)
	}
	defer runner.Close()
	if *introspectAddr != "" {
		insp, err := introspect.Attach(runner.Runtime(), introspect.Options{Addr: *introspectAddr})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ohpc-load: introspect: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("introspection plane on http://%s\n", insp.Addr())
		defer insp.Close()
	}

	res, err := runner.Run(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ohpc-load: %v\n", err)
		os.Exit(1)
	}
	printResult(res)
	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ohpc-load: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "ohpc-load: %v\n", err)
			os.Exit(1)
		}
	}
}

func printResult(r *load.Result) {
	fmt.Printf("scenario %s: %s arrival over %d machines (%d servers, %d workers, batching %v)\n",
		r.Scenario, r.Mode, r.Machines, r.Servers, r.Workers, r.Batching)
	for _, ev := range r.Schedule {
		fmt.Printf("  fault: %s\n", ev)
	}
	if r.Migrations > 0 {
		fmt.Printf("  churn: %d migrations\n", r.Migrations)
	}
	fmt.Printf("  offered %.0f/s  issued %d  completed %d  failed %d  goodput %.0f/s  elapsed %v\n",
		r.OfferedPerSec, r.Issued, r.Completed, r.Failed, r.GoodputPerSec, r.Elapsed.Round(time.Millisecond))
	lat := r.Latency
	fmt.Printf("  latency (%s-loop, CO-safe): p50 %v  p90 %v  p99 %v  p999 %v  max %v  (%d samples)\n",
		r.Mode,
		time.Duration(lat.P50).Round(time.Microsecond),
		time.Duration(lat.P90).Round(time.Microsecond),
		time.Duration(lat.P99).Round(time.Microsecond),
		time.Duration(lat.P999).Round(time.Microsecond),
		time.Duration(lat.Max).Round(time.Microsecond),
		lat.Count)
}
