// Parsum is an SPMD example in the original HPC++ style the paper
// builds on: a large vector is partitioned across worker objects on
// four machines; the driver uses the hpcxx collectives to broadcast
// partitions, synchronize on a barrier, and reduce partial dot products
// — all over ordinary global pointers, so the same code would run over
// any protocol or capability configuration.
//
//	go run ./examples/parsum
package main

import (
	"fmt"
	"log"
	"sync"

	"openhpcxx/internal/core"
	"openhpcxx/internal/hpcxx"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/xdr"
)

// worker holds one partition of the two vectors.
type worker struct {
	mu   sync.Mutex
	x, y []float64
}

type loadArgs struct {
	X, Y []float64
}

func (a *loadArgs) MarshalXDR(e *xdr.Encoder) error {
	e.PutFloat64s(a.X)
	e.PutFloat64s(a.Y)
	return nil
}

func (a *loadArgs) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if a.X, err = d.Float64s(); err != nil {
		return err
	}
	a.Y, err = d.Float64s()
	return err
}

type partial struct{ Dot float64 }

func (p *partial) MarshalXDR(e *xdr.Encoder) error { e.PutFloat64(p.Dot); return nil }
func (p *partial) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	p.Dot, err = d.Float64()
	return err
}

func workerMethods(w *worker) map[string]core.Method {
	return map[string]core.Method{
		"load": core.Handler(func(a *loadArgs) (*core.Empty, error) {
			w.mu.Lock()
			w.x, w.y = a.X, a.Y
			w.mu.Unlock()
			return &core.Empty{}, nil
		}),
		"dot": core.Handler(func(*core.Empty) (*partial, error) {
			w.mu.Lock()
			defer w.mu.Unlock()
			var s float64
			for i := range w.x {
				s += w.x[i] * w.y[i]
			}
			return &partial{Dot: s}, nil
		}),
	}
}

func main() {
	const (
		workers = 4
		n       = 1 << 16
	)
	net := netsim.New()
	net.AddLAN("cluster", "campus", netsim.ProfileATM155.Scaled(16))
	net.MustAddMachine("driver", "cluster")
	for i := 0; i < workers; i++ {
		net.MustAddMachine(netsim.MachineID(fmt.Sprintf("node%d", i)), "cluster")
	}

	rt := core.NewRuntime(net, "parsum")
	defer rt.Close()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	driver, err := rt.NewContext("driver", "driver")
	must(err)

	// One worker object per node.
	var gps []*core.GlobalPtr
	for i := 0; i < workers; i++ {
		ctx, err := rt.NewContext(fmt.Sprintf("node%d", i), netsim.MachineID(fmt.Sprintf("node%d", i)))
		must(err)
		must(ctx.BindSim(0))
		w := &worker{}
		s, err := ctx.Export("parsum.Worker", w, workerMethods(w))
		must(err)
		entry, err := ctx.EntryStream()
		must(err)
		gps = append(gps, driver.NewGlobalPtr(ctx.NewRef(s, entry)))
	}
	group := hpcxx.NewGroup(gps...)

	// Scatter: each worker receives its slice of x and y.
	x := make([]float64, n)
	y := make([]float64, n)
	var want float64
	for i := range x {
		x[i] = float64(i%1000) / 1000
		y[i] = float64((i*7)%1000) / 1000
		want += x[i] * y[i]
	}
	args := make([][]byte, workers)
	chunk := n / workers
	for i := 0; i < workers; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		b, err := xdr.Marshal(&loadArgs{X: x[lo:hi], Y: y[lo:hi]})
		must(err)
		args[i] = b
	}
	if _, err := group.Invoke("load", args); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scattered %d elements across %d workers\n", n, workers)

	// Synchronize every worker context behind a barrier before compute
	// (illustrative: Invoke already gathered, but real SPMD phases do
	// this between communication and compute steps).
	barCtx, err := rt.NewContext("barrier-host", "driver")
	must(err)
	must(barCtx.BindSim(0))
	barRef, err := hpcxx.ServeBarrier(barCtx, workers)
	must(err)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		ctx, _ := rt.Context(fmt.Sprintf("node%d", i))
		b := hpcxx.NewBarrier(ctx, barRef)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Await(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	fmt.Println("all workers passed the barrier")

	// Reduce: gather partial dot products and fold.
	got, err := hpcxx.Reduce[*core.Empty, partial](group, "dot", &core.Empty{}, 0.0,
		func(acc float64, p *partial) float64 { return acc + p.Dot })
	must(err)

	fmt.Printf("distributed dot product = %.4f (sequential %.4f, delta %.2g)\n",
		got, want, got-want)
}
