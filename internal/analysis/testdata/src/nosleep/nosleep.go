// Golden corpus for the nosleep analyzer: raw waits on the wall clock
// are flagged everywhere outside internal/clock; waits routed through
// the injectable clock, and mere time *comparisons*, are not.
package nosleep

import (
	"context"
	"time"

	"openhpcxx/internal/clock"
)

func bad() {
	time.Sleep(time.Millisecond)    // want "time.Sleep outside internal/clock"
	<-time.After(time.Second)       // want "time.After outside internal/clock"
	t := time.NewTimer(time.Second) // want "time.NewTimer outside internal/clock"
	t.Stop()
}

func good(clk clock.Clock) {
	clock.Sleep(clk, time.Millisecond)
	<-clock.After(clk, time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for !time.Now().After(deadline) { // Time.After method: a comparison, not a wait
		break
	}
}

// samplerLoop is the flight-recorder shape (internal/introspect): a
// background loop pacing itself on the *injected* clock is clean —
// a fake clock drives it deterministically in tests.
func samplerLoop(clk clock.Clock, stop chan struct{}, sample func()) {
	for {
		select {
		case <-stop:
			return
		case <-clock.After(clk, time.Second):
			sample()
		}
	}
}

// samplerLoopRaw is the same loop pacing itself on the wall clock:
// the exact bug the analyzer exists to catch in background samplers.
func samplerLoopRaw(stop chan struct{}, sample func()) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(time.Second): // want "time.After outside internal/clock"
			sample()
		}
	}
}

// sweeperLoop is the directory-plane lease-sweeper shape
// (internal/registry.StartSweeper): a background pruner pacing itself on
// the injected clock, stoppable via Close, is clean.
func sweeperLoop(clk clock.Clock, stop chan struct{}, prune func()) {
	for {
		select {
		case <-stop:
			return
		case <-clock.After(clk, 250*time.Millisecond):
			prune()
		}
	}
}

// heartbeatLoopRaw is a publisher heartbeat pacing itself on the wall
// clock — under a fake test clock the leases would expire while the
// heartbeat never fires, exactly the nondeterminism the analyzer bans.
func heartbeatLoopRaw(stop chan struct{}, rebind func()) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(time.Second): // want "time.After outside internal/clock"
			rebind()
		}
	}
}

// pacerLoop is the open-loop arrival generator shape (internal/load):
// sleeping up to each op's intended start time on the *injected* clock,
// context-aware, is clean — a fake clock replays the whole arrival
// schedule in simulated time.
func pacerLoop(ctx context.Context, clk clock.Clock, intendeds []time.Time, fire func()) {
	for _, at := range intendeds {
		if err := clock.SleepCtx(ctx, clk, time.Until(at)); err != nil {
			return
		}
		fire()
	}
}

// pacerLoopRaw paces the arrival schedule on the wall clock: the fake
// clock can no longer drive the generator, every smoke run costs real
// time, and the pacing drifts under load — the load-harness bug the
// analyzer bans.
func pacerLoopRaw(intendeds []time.Time, fire func()) {
	for _, at := range intendeds {
		time.Sleep(time.Until(at)) // want "time.Sleep outside internal/clock"
		fire()
	}
}

// churnLoopRaw is the migration-churn shape on a raw ticker: a periodic
// background mutator that a fake clock cannot pause or step.
func churnLoopRaw(stop chan struct{}, migrate func()) {
	tick := time.NewTicker(time.Second) // want "time.NewTicker outside internal/clock"
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			migrate()
		}
	}
}

// flushLoop is the tail-keeper idle-flush shape (internal/obs): a
// background loop that wakes on the injected clock every interval to
// decide traces that stayed quiet — nosleep-clean, so a fake clock can
// drive idle flushing deterministically in tests.
func flushLoop(clk clock.Clock, stop chan struct{}, interval time.Duration, flushIdle func()) {
	for {
		select {
		case <-stop:
			return
		case <-clock.After(clk, interval):
			flushIdle()
		}
	}
}

// flushLoopRaw is the same loop on the wall clock: under a fake test
// clock the keeper's pending traces would never idle out, and every
// retention test would wait on real time — the bug nosleep bans.
func flushLoopRaw(stop chan struct{}, interval time.Duration, flushIdle func()) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(interval): // want "time.After outside internal/clock"
			flushIdle()
		}
	}
}

func suppressed() {
	//lint:ignore nosleep corpus example of a deliberate, annotated real sleep
	time.Sleep(time.Millisecond)
}
