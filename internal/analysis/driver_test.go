package analysis

import (
	"strings"
	"testing"
)

func TestLockOrderManifestParses(t *testing.T) {
	edges, err := lockOrderDecls()
	if err != nil {
		t.Fatalf("embedded manifest: %v", err)
	}
	if !edges["transport.shmListener.mu"]["transport.SHM.mu"] {
		t.Errorf("manifest lost the transport.shmListener.mu -> transport.SHM.mu edge")
	}
	if !edges["lockorder.A.mu"]["lockorder.B.mu"] {
		t.Errorf("manifest lost the golden-corpus lockorder.A.mu -> lockorder.B.mu edge")
	}
}

// TestLockOrderManifestAcyclic is the guarantee the manifest header
// promises: declared orderings must never close a cycle, otherwise two
// code sites could each follow a declared edge and still deadlock.
func TestLockOrderManifestAcyclic(t *testing.T) {
	edges, err := lockOrderDecls()
	if err != nil {
		t.Fatalf("embedded manifest: %v", err)
	}
	const (
		white = iota // unvisited
		grey         // on the current DFS path
		black        // finished
	)
	color := map[string]int{}
	var visit func(n string, path []string)
	visit = func(n string, path []string) {
		color[n] = grey
		path = append(path, n)
		for m := range edges[n] {
			switch color[m] {
			case grey:
				t.Fatalf("lockorder.manifest has a cycle: %s -> %s", strings.Join(path, " -> "), m)
			case white:
				visit(m, path)
			}
		}
		color[n] = black
	}
	for n := range edges {
		if color[n] == white {
			visit(n, nil)
		}
	}
}

func TestParseLockManifestMalformed(t *testing.T) {
	for _, bad := range []string{
		"not-an-edge",
		"a ->",
		"-> b",
		"a -> b c",
		"a b -> c",
	} {
		if _, err := parseLockManifest(bad); err == nil {
			t.Errorf("parseLockManifest(%q) accepted a malformed line", bad)
		}
	}
	edges, err := parseLockManifest("# comment\n\na.X.mu -> b.Y.mu # trailing note\n")
	if err != nil {
		t.Fatalf("well-formed manifest rejected: %v", err)
	}
	if !edges["a.X.mu"]["b.Y.mu"] {
		t.Errorf("comments/whitespace handling dropped the edge: %v", edges)
	}
}

// staleSrc has one live suppression (golife would fire on the spinner)
// and one stale suppression (nothing ever fires on a bare return).
const staleSrc = `package life

func used() {
	//lint:ignore golife deliberate spinner for the driver test
	go func() {
		for {
		}
	}()
}

func stale() int {
	//lint:ignore nosleep the sleep this muted was deleted long ago
	return 1
}
`

func TestStaleSuppressionDetection(t *testing.T) {
	u := lifeTestUnit(t, staleSrc)

	diags := Run([]*Unit{u}, All())
	if len(diags) != 1 {
		t.Fatalf("full suite: got %d findings %v, want exactly the stale directive", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != StaleIgnoreName {
		t.Errorf("finding analyzer = %q, want %q", d.Analyzer, StaleIgnoreName)
	}
	if !strings.Contains(d.Message, "nosleep") || !strings.Contains(d.Message, "deleted long ago") {
		t.Errorf("stale message should name the muted analyzer and quote the reason: %q", d.Message)
	}
	if d.Pos.Line != 12 {
		t.Errorf("stale finding at line %d, want 12 (the directive itself)", d.Pos.Line)
	}

	// A partial run cannot distinguish stale from not-run: no report.
	partial, err := Select("golife", "")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Unit{u}, partial); len(diags) != 0 {
		t.Errorf("partial run: got %v, want no findings (stale detection must stay disarmed)", diags)
	}
}

func TestIgnoresInventory(t *testing.T) {
	u := lifeTestUnit(t, staleSrc)
	igs := Ignores([]*Unit{u})
	if len(igs) != 2 {
		t.Fatalf("got %d directives, want 2: %v", len(igs), igs)
	}
	if igs[0].Line != 4 || igs[0].Names[0] != "golife" || igs[0].Reason != "deliberate spinner for the driver test" {
		t.Errorf("first directive parsed wrong: %+v", igs[0])
	}
	if igs[1].Line != 12 || igs[1].Names[0] != "nosleep" {
		t.Errorf("second directive parsed wrong: %+v", igs[1])
	}
}
