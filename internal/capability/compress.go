package capability

import (
	"bytes"
	"compress/flate"
	"io"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
	"openhpcxx/internal/xdr"
)

// KindCompress names the data-compression capability — one of the
// paper's motivating remote-access attributes ("the requirements or
// attributes of remote access, such as data compression ...").
const KindCompress = "compress"

// Compress deflates bodies larger than a threshold. If compression does
// not shrink the body (already-compressed or tiny payloads) it passes
// the original through and says so in the envelope, so the cost is
// bounded by one compression attempt.
type Compress struct {
	level   int
	minSize uint32
	scope   Scope
}

// NewCompress builds a compression capability. level is a flate level
// (1..9; 0 picks flate.DefaultCompression); bodies below minSize bytes
// pass through.
func NewCompress(level int, minSize uint32, scope Scope) (*Compress, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		return nil, errs.Newf(errs.Config, "capability: bad compression level %d", level)
	}
	return &Compress{level: level, minSize: minSize, scope: scope}, nil
}

// MustNewCompress is NewCompress, panicking on error (fixture use).
func MustNewCompress(level int, minSize uint32, scope Scope) *Compress {
	c, err := NewCompress(level, minSize, scope)
	if err != nil {
		panic(err)
	}
	return c
}

// Kind implements Capability.
func (*Compress) Kind() string { return KindCompress }

// Applicable implements Capability.
func (c *Compress) Applicable(client, server netsim.Locality) bool {
	return c.scope.Applies(client, server)
}

type compressConfig struct {
	Level   int32
	MinSize uint32
	Scope   Scope
}

func (c *compressConfig) MarshalXDR(e *xdr.Encoder) error {
	e.PutInt32(c.Level)
	e.PutUint32(c.MinSize)
	e.PutUint32(uint32(c.Scope))
	return nil
}

func (c *compressConfig) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	if c.Level, err = d.Int32(); err != nil {
		return err
	}
	if c.MinSize, err = d.Uint32(); err != nil {
		return err
	}
	s, err := d.Uint32()
	c.Scope = Scope(s)
	return err
}

// Config implements Capability.
func (c *Compress) Config() ([]byte, error) {
	return xdr.Marshal(&compressConfig{Level: int32(c.level), MinSize: c.minSize, Scope: c.scope})
}

// Envelope flags.
const (
	compressIdentity byte = 0
	compressDeflate  byte = 1
)

// Process deflates the body when worthwhile.
func (c *Compress) Process(f *Frame, body []byte) ([]byte, []byte, error) {
	if uint32(len(body)) < c.minSize {
		return body, []byte{compressIdentity}, nil
	}
	var buf bytes.Buffer
	buf.Grow(len(body) / 2)
	w, err := flate.NewWriter(&buf, c.level)
	if err != nil {
		return nil, nil, err
	}
	if _, err := w.Write(body); err != nil {
		return nil, nil, err
	}
	if err := w.Close(); err != nil {
		return nil, nil, err
	}
	if buf.Len() >= len(body) {
		return body, []byte{compressIdentity}, nil
	}
	env := make([]byte, 5)
	env[0] = compressDeflate
	n := uint32(len(body))
	env[1], env[2], env[3], env[4] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	return buf.Bytes(), env, nil
}

// Unprocess inflates when the envelope says the body was deflated.
func (c *Compress) Unprocess(f *Frame, envelope, body []byte) ([]byte, error) {
	if len(envelope) == 0 {
		return nil, wire.Faultf(wire.FaultCapability, "compress envelope empty")
	}
	switch envelope[0] {
	case compressIdentity:
		return body, nil
	case compressDeflate:
		if len(envelope) != 5 {
			return nil, wire.Faultf(wire.FaultCapability, "compress envelope has %d bytes", len(envelope))
		}
		origLen := uint32(envelope[1])<<24 | uint32(envelope[2])<<16 | uint32(envelope[3])<<8 | uint32(envelope[4])
		r := flate.NewReader(bytes.NewReader(body))
		defer r.Close()
		out := make([]byte, 0, origLen)
		buf := bytes.NewBuffer(out)
		if _, err := io.CopyN(buf, r, int64(origLen)); err != nil {
			return nil, wire.Faultf(wire.FaultCapability, "inflate: %v", err)
		}
		// The stream must end exactly at origLen.
		var extra [1]byte
		if n, _ := r.Read(extra[:]); n != 0 {
			return nil, wire.Faultf(wire.FaultCapability, "inflate: trailing data")
		}
		return buf.Bytes(), nil
	}
	return nil, wire.Faultf(wire.FaultCapability, "compress envelope flag %d", envelope[0])
}

func init() {
	RegisterKind(KindCompress, func(config []byte) (Capability, error) {
		c := new(compressConfig)
		if err := xdr.Unmarshal(config, c); err != nil {
			return nil, errs.Wrap(errs.Codec, err, "capability: compress config")
		}
		return NewCompress(int(c.Level), c.MinSize, c.Scope)
	})
}
