package core

import (
	"errors"
	"sync"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/transport"
	"openhpcxx/internal/wire"
)

// Protocol is the client side of a protocol object: it carries one
// framed request to the server object and returns the framed reply
// (possibly a TFault frame). Implementations encapsulate a specific
// communication mechanism — the paper's proto-object.
type Protocol interface {
	ID() ProtoID
	Call(m *wire.Message) (*wire.Message, error)
	Close() error
}

// Pending is one in-flight pipelined exchange — the completion handle a
// PipelinedProtocol returns from Begin. It matches transport.Pending
// structurally, so mux pendings flow straight through protocol objects
// without adapters.
type Pending interface {
	// Done is closed when the exchange resolves.
	Done() <-chan struct{}
	// Reply blocks until resolution and returns the reply frame
	// (possibly TFault) or the transport error.
	Reply() (*wire.Message, error)
}

// PipelinedProtocol is the optional interface of protocol objects that
// can keep many requests in flight per connection: Begin sends the
// request and returns immediately with a completion handle. The
// transport.Mux always supported this (replies are matched by request
// id); Protocol.Call used to hide it. The built-in stream (TCP, sim,
// shm), nexus, and glue protocols all implement it; protocols that do
// not are still usable asynchronously — the ORB falls back to running
// Call in the completion goroutine, losing pipelining but keeping the
// futures surface.
type PipelinedProtocol interface {
	Protocol
	Begin(m *wire.Message) (Pending, error)
}

// BatchingProtocol is the optional interface of protocol objects that
// can coalesce requests into wire.TBatch frames (adaptive
// micro-batching). SetBatching with an all-zero policy disables
// coalescing. The glue protocol forwards the knob to its base protocol,
// so batched calls still traverse the capability chain individually —
// every sub-request in a batch carries its own envelope chain.
type BatchingProtocol interface {
	SetBatching(p transport.BatchPolicy)
}

// ProtoFactory manufactures client protocol instances from protocol
// table entries — the paper's proto-class, as seen from the client. A
// factory also owns the protocol's applicability attribute.
type ProtoFactory interface {
	ID() ProtoID
	// Applicable reports whether this protocol can serve requests
	// between the two localities given the entry's proto-data. The
	// system consults it during run-time protocol selection.
	Applicable(entry ProtoEntry, client, server netsim.Locality) bool
	// New instantiates a protocol object for the entry on behalf of the
	// given client context.
	New(entry ProtoEntry, ref *ObjectRef, host *Context) (Protocol, error)
}

// SelectionOrder controls whose preference wins during protocol
// selection when both the OR table and the pool are ordered.
type SelectionOrder int

const (
	// RefOrder walks the object reference's protocol table in order and
	// picks the first entry with an applicable factory in the pool. This
	// is the paper's default: the server ranks the access paths it is
	// willing to support (Figure 4-B).
	RefOrder SelectionOrder = iota
	// PoolOrder walks the local pool in order and picks the first
	// factory with an applicable entry in the OR — a client-side
	// override, one of the "user control" knobs of §3.2.
	PoolOrder
)

// ProtoPool is a repository of protocol factories ordered by preference
// (the paper's proto-pool). An application component uses a pool to
// determine — and constrain — the protocols available to it.
type ProtoPool struct {
	mu        sync.RWMutex
	order     []ProtoID
	factories map[ProtoID]ProtoFactory
	selOrder  SelectionOrder
}

// NewProtoPool returns an empty pool using RefOrder selection.
func NewProtoPool() *ProtoPool {
	return &ProtoPool{factories: make(map[ProtoID]ProtoFactory)}
}

// Register appends a factory to the pool (lowest preference). Registering
// an already-present ID replaces the factory in place.
func (p *ProtoPool) Register(f ProtoFactory) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.factories[f.ID()]; !ok {
		p.order = append(p.order, f.ID())
	}
	p.factories[f.ID()] = f
}

// Remove deletes a factory; a GP whose selected protocol is removed will
// re-select on its next invalidation.
func (p *ProtoPool) Remove(id ProtoID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.factories[id]; !ok {
		return
	}
	delete(p.factories, id)
	for i, o := range p.order {
		if o == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

// Prefer moves the given ids (in the given order) to the front of the
// pool, leaving the rest in their relative order.
func (p *ProtoPool) Prefer(ids ...ProtoID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	head := make([]ProtoID, 0, len(p.order))
	seen := make(map[ProtoID]bool, len(ids))
	for _, id := range ids {
		if _, ok := p.factories[id]; ok && !seen[id] {
			head = append(head, id)
			seen[id] = true
		}
	}
	for _, id := range p.order {
		if !seen[id] {
			head = append(head, id)
		}
	}
	p.order = head
}

// SetSelectionOrder switches between RefOrder and PoolOrder.
func (p *ProtoPool) SetSelectionOrder(o SelectionOrder) {
	p.mu.Lock()
	p.selOrder = o
	p.mu.Unlock()
}

// Lookup finds a factory by id.
func (p *ProtoPool) Lookup(id ProtoID) (ProtoFactory, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	f, ok := p.factories[id]
	return f, ok
}

// IDs lists the pool's protocol kinds in preference order.
func (p *ProtoPool) IDs() []ProtoID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]ProtoID(nil), p.order...)
}

// Clone returns an independent pool with the same factories, order, and
// selection mode. Contexts clone the runtime's default pool so local
// adjustments stay local.
func (p *ProtoPool) Clone() *ProtoPool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	c := NewProtoPool()
	c.order = append([]ProtoID(nil), p.order...)
	for id, f := range p.factories {
		c.factories[id] = f
	}
	c.selOrder = p.selOrder
	return c
}

// ErrNoProtocol is returned when no (entry, factory) pair is applicable
// for a client/server locality pair.
var ErrNoProtocol = errors.New("core: no applicable protocol")

// Select runs the paper's automatic protocol selection: compare the
// protocols in the reference's table with those in the pool and return
// the first applicable match. The returned index identifies the chosen
// table entry.
func (p *ProtoPool) Select(ref *ObjectRef, client netsim.Locality) (ProtoFactory, int, error) {
	return p.SelectWhere(ref, client, nil)
}

// SelectWhere is Select with an extra veto: entries for which allow
// returns false are skipped even when applicable. The ORB passes an
// endpoint-health filter here so failover falls through the reference's
// ordered protocol table to the first entry that is both applicable and
// not circuit-broken. A nil allow accepts everything.
func (p *ProtoPool) SelectWhere(ref *ObjectRef, client netsim.Locality, allow func(i int, e ProtoEntry) bool) (ProtoFactory, int, error) {
	p.mu.RLock()
	selOrder := p.selOrder
	p.mu.RUnlock()

	ok := func(i int, e ProtoEntry) bool { return allow == nil || allow(i, e) }

	if selOrder == PoolOrder {
		for _, id := range p.IDs() {
			f, _ := p.Lookup(id)
			for i, entry := range ref.Protocols {
				if entry.ID != id {
					continue
				}
				if f.Applicable(entry, client, ref.Server) && ok(i, entry) {
					return f, i, nil
				}
			}
		}
		return nil, -1, selectionError(ref, p, client)
	}

	for i, entry := range ref.Protocols {
		f, okf := p.Lookup(entry.ID)
		if !okf {
			continue
		}
		if f.Applicable(entry, client, ref.Server) && ok(i, entry) {
			return f, i, nil
		}
	}
	return nil, -1, selectionError(ref, p, client)
}

func selectionError(ref *ObjectRef, p *ProtoPool, client netsim.Locality) error {
	return errs.Wrapf(errs.NotApplicable, ErrNoProtocol, "core: selecting for %s: table=%v pool=%v client=%s server=%s",
		ref.Object, ref.ProtoIDs(), p.IDs(), client, ref.Server)
}
