package directory

import (
	"sync"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/obs"
)

// DefaultLeaseTTL is the binding lease when PublisherOptions does not
// choose one.
const DefaultLeaseTTL = 3 * time.Second

// PublisherOptions tunes a Publisher.
type PublisherOptions struct {
	// TTL is the lease on every published binding (default
	// DefaultLeaseTTL).
	TTL time.Duration
	// HeartbeatInterval paces the re-binds keeping leases alive
	// (default TTL/3).
	HeartbeatInterval time.Duration
}

// Publisher is the liveness side of the directory plane: it binds names
// with a lease, fanned to every replica of the owning shard, and
// heartbeats them on the runtime clock. Heartbeats are full rebinds —
// not bare renews — so a replica that crashed and restarted with an
// empty table converges within one heartbeat period. A publisher that
// stops (crashes) stops heartbeating, and its names expire everywhere
// within one TTL: liveness by lease, no failure detector needed.
type Publisher struct {
	ctx      *core.Context
	ring     *Ring
	interval time.Duration
	ttl      time.Duration
	// replicaGPs[s][r]: writes go to every replica directly.
	replicaGPs [][]*core.GlobalPtr

	mu     sync.Mutex
	bound  map[string][]byte // name -> encoded ref being heartbeated
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewPublisher joins a publishing context to the plane described by bs
// and starts the heartbeat loop.
func NewPublisher(ctx *core.Context, bs *Bootstrap, opts PublisherOptions) (*Publisher, error) {
	_, replicas, err := bs.shardRefs()
	if err != nil {
		return nil, err
	}
	if opts.TTL <= 0 {
		opts.TTL = DefaultLeaseTTL
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = opts.TTL / 3
	}
	p := &Publisher{
		ctx:      ctx,
		ring:     bs.Ring(),
		interval: opts.HeartbeatInterval,
		ttl:      opts.TTL,
		bound:    make(map[string][]byte),
		stop:     make(chan struct{}),
	}
	for s := range replicas {
		var gps []*core.GlobalPtr
		for _, rr := range replicas[s] {
			gps = append(gps, ctx.NewGlobalPtr(rr))
		}
		p.replicaGPs = append(p.replicaGPs, gps)
	}
	p.wg.Add(1)
	go p.heartbeatLoop()
	return p, nil
}

// Publish binds name -> ref with the publisher's lease on every replica
// of the owning shard; at least one replica must accept. The binding is
// heartbeated until Unpublish or Close.
func (p *Publisher) Publish(name string, ref *core.ObjectRef) error {
	blob, err := core.EncodeRef(ref)
	if err != nil {
		return err
	}
	if err := p.fanBind(name, blob); err != nil {
		return err
	}
	p.mu.Lock()
	p.bound[name] = blob
	p.mu.Unlock()
	return nil
}

// Unpublish removes the binding from every replica (best-effort — a
// replica that misses the unbind expires the lease instead) and stops
// heartbeating it.
func (p *Publisher) Unpublish(name string) error {
	p.mu.Lock()
	delete(p.bound, name)
	p.mu.Unlock()
	shard := p.ring.Shard(name)
	var ok int
	var lastErr error
	for _, gp := range p.replicaGPs[shard] {
		if _, err := core.Call[*core.StringValue, core.Empty](gp, "unbind", &core.StringValue{V: name}); err != nil {
			lastErr = err
		} else {
			ok++
		}
	}
	if ok == 0 {
		return errs.Wrapf(errs.Unavailable, lastErr, "directory: unpublish %q", name)
	}
	return nil
}

// fanBind issues the leased overwrite-bind to every replica of the
// owning shard; one acceptance is success (the heartbeat repairs the
// rest).
func (p *Publisher) fanBind(name string, blob []byte) error {
	shard := p.ring.Shard(name)
	args := &bindArgs{Name: name, Ref: blob, Overwrite: true, TTLNanos: int64(p.ttl)}
	var ok int
	var lastErr error
	for _, gp := range p.replicaGPs[shard] {
		if _, err := core.Call[*bindArgs, core.Empty](gp, "bind", args); err != nil {
			lastErr = err
		} else {
			ok++
		}
	}
	if ok == 0 {
		return errs.Wrapf(errs.Unavailable, lastErr, "directory: publish %q", name)
	}
	return nil
}

// heartbeatLoop re-binds every published name each interval.
func (p *Publisher) heartbeatLoop() {
	defer p.wg.Done()
	clk := p.ctx.Runtime().Clock()
	for {
		select {
		case <-p.stop:
			return
		case <-clock.After(clk, p.interval):
			p.heartbeat()
		}
	}
}

// heartbeat is one round: re-issue every binding with a fresh lease.
func (p *Publisher) heartbeat() {
	p.mu.Lock()
	names := make([]string, 0, len(p.bound))
	blobs := make([][]byte, 0, len(p.bound))
	for n, b := range p.bound {
		names = append(names, n)
		blobs = append(blobs, b)
	}
	p.mu.Unlock()
	if len(names) == 0 {
		return
	}
	span := p.ctx.Runtime().Tracer().StartRoot(obs.KindClient, "dir.heartbeat")
	if span != nil {
		span.SetRPC("", "heartbeat")
		span.SetBytes(len(names))
	}
	var lastErr error
	for i, name := range names {
		// A replica being down is expected mid-fault; the round carries
		// on and the next one repairs it.
		if err := p.fanBind(name, blobs[i]); err != nil {
			lastErr = err
		}
	}
	if span != nil {
		span.SetErr(lastErr)
		span.End()
	}
}

// Names lists the bindings currently heartbeated.
func (p *Publisher) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.bound))
	for n := range p.bound {
		out = append(out, n)
	}
	return out
}

// Close stops the heartbeat loop and releases the GPs. Published names
// are left to expire with their leases (call Unpublish first for an
// immediate tombstone).
func (p *Publisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
	for _, gps := range p.replicaGPs {
		for _, gp := range gps {
			gp.Release()
		}
	}
	return nil
}
