// Package openhpcxx_test holds the repository-level benchmark harness:
// one benchmark per figure of the paper's evaluation, plus ablation
// benches for the design decisions called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem .
//
// Absolute numbers depend on the host; the shapes (who wins, by what
// factor) are what reproduce the paper.
package openhpcxx_test

import (
	"fmt"
	"testing"
	"time"

	"openhpcxx/internal/bench"
	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/hpcxx"
	"openhpcxx/internal/migrate"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/xdr"
)

// benchSizes is the subset of the paper's 1..1M sweep exercised under
// testing.B (the full sweep runs in cmd/ohpc-bench).
var benchSizes = []int{1, 1024, 65536, 1 << 20}

// figure5 drives one (series, size) cell through a deployment.
func figure5(b *testing.B, profile netsim.LinkProfile) {
	d, err := bench.NewFig5Deployment(profile)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	for _, name := range bench.SeriesNames() {
		gp, err := d.GlobalPtr(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range benchSizes {
			arr := &core.Int32Slice{V: make([]int32, n)}
			b.Run(fmt.Sprintf("%s/ints=%d", name, n), func(b *testing.B) {
				payload := int64(4 + 4*n)
				b.SetBytes(2 * payload) // request + reply
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure5ATM reproduces Figure 5's ATM sweep (time-scaled 8x so
// the benchmark completes quickly; shapes are preserved).
func BenchmarkFigure5ATM(b *testing.B) {
	figure5(b, netsim.ProfileATM155.Scaled(8))
}

// BenchmarkFigure5Ethernet reproduces the Ethernet run the paper reports
// as "virtually identical".
func BenchmarkFigure5Ethernet(b *testing.B) {
	figure5(b, netsim.ProfileEthernet.Scaled(8))
}

// BenchmarkFigure4Scenario measures a full migration tour (4 stations,
// one protocol re-selection each) — the end-to-end cost of the paper's
// Figure 4 experiment at a small payload.
func BenchmarkFigure4Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps, err := bench.RunFigure4(bench.Fig4Config{
			SampleInts:  256,
			MinReps:     1,
			MinDuration: time.Nanosecond,
			Profile:     netsim.ProfileUnshaped,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(steps) != 4 {
			b.Fatalf("%d steps", len(steps))
		}
	}
}

// BenchmarkFigure3Scenario measures the adaptive-authentication scenario
// (two clients, one migration, four observations).
func BenchmarkFigure3Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFigure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// capOverheadWorld builds a client/server pair over an unshaped link so
// per-request capability cost is not hidden behind network cost.
func capOverheadWorld(b *testing.B, caps ...capability.Capability) *core.GlobalPtr {
	b.Helper()
	n := netsim.New()
	n.AddLAN("lan", "c", netsim.ProfileUnshaped)
	n.MustAddMachine("cm", "lan")
	n.MustAddMachine("sm", "lan")
	rt := core.NewRuntime(n, "bench")
	capability.Install(rt.DefaultPool())
	rt.RegisterIface(bench.ExchangeIface, bench.ExchangeActivator)
	b.Cleanup(rt.Close)

	server, err := rt.NewContext("server", "sm")
	if err != nil {
		b.Fatal(err)
	}
	if err := server.BindSim(0); err != nil {
		b.Fatal(err)
	}
	impl, methods := bench.ExchangeActivator()
	s, err := server.Export(bench.ExchangeIface, impl, methods)
	if err != nil {
		b.Fatal(err)
	}
	streamE, err := server.EntryStream()
	if err != nil {
		b.Fatal(err)
	}
	entry := streamE
	if len(caps) > 0 {
		entry, err = capability.GlueEntry(server, fmt.Sprintf("bench-%s-%d", b.Name(), len(caps)), streamE, caps...)
		if err != nil {
			b.Fatal(err)
		}
	}
	client, err := rt.NewContext("client", "cm")
	if err != nil {
		b.Fatal(err)
	}
	return client.NewGlobalPtr(server.NewRef(s, entry))
}

// BenchmarkCapabilityOverhead decomposes the cost behind Figure 5's
// "capabilities add only a small amount of overhead" claim: each row is
// the per-exchange cost with one capability (or none) on an unshaped
// link — the worst case for relative overhead.
func BenchmarkCapabilityOverhead(b *testing.B) {
	const n = 4096
	mk := map[string]func() []capability.Capability{
		"bare":     func() []capability.Capability { return nil },
		"quota":    func() []capability.Capability { return []capability.Capability{capability.NewQuota(0, time.Time{})} },
		"trace":    func() []capability.Capability { return []capability.Capability{capability.NewTrace()} },
		"checksum": func() []capability.Capability { return []capability.Capability{capability.NewChecksum()} },
		"auth": func() []capability.Capability {
			return []capability.Capability{capability.MustNewAuth("p", []byte("k"), capability.ScopeAlways)}
		},
		"encrypt": func() []capability.Capability {
			return []capability.Capability{capability.NewRandomEncrypt(capability.ScopeAlways)}
		},
		"compress": func() []capability.Capability {
			return []capability.Capability{capability.MustNewCompress(6, 64, capability.ScopeAlways)}
		},
	}
	for _, name := range []string{"bare", "quota", "trace", "checksum", "auth", "encrypt", "compress"} {
		b.Run(name, func(b *testing.B) {
			gp := capOverheadWorld(b, mk[name]()...)
			arr := &core.Int32Slice{V: make([]int32, n)}
			b.SetBytes(2 * int64(4+4*n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGlueDepth measures per-exchange cost against the number of
// stacked capabilities (trace capabilities: pure pipeline overhead).
func BenchmarkGlueDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("caps=%d", depth), func(b *testing.B) {
			caps := make([]capability.Capability, depth)
			for i := range caps {
				caps[i] = capability.NewTrace()
			}
			gp := capOverheadWorld(b, caps...)
			arr := &core.Int32Slice{V: make([]int32, 1024)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Call[*core.Int32Slice, core.Int32Slice](gp, "exchange", arr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProtocolSelection measures the automatic run-time protocol
// selection path (invalidate + re-select against a 4-entry table) —
// the cost the ORB pays to be adaptive.
func BenchmarkProtocolSelection(b *testing.B) {
	d, err := bench.NewFig5Deployment(netsim.ProfileUnshaped)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	gp, err := d.GlobalPtr(bench.SeriesGlueSecurity)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp.Invalidate()
		if _, err := gp.SelectedProtocol(); err != nil {
			b.Fatal(err)
		}
	}
}

// migratableBlob is a servant with a state blob of configurable size.
type migratableBlob struct{ state []byte }

func (m *migratableBlob) Snapshot() ([]byte, error) { return m.state, nil }
func (m *migratableBlob) Restore(s []byte) error    { m.state = s; return nil }

const blobIface = "bench.Blob"

// BenchmarkMigration measures end-to-end object migration latency
// against snapshot size.
func BenchmarkMigration(b *testing.B) {
	for _, size := range []int{0, 1 << 10, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("state=%dB", size), func(b *testing.B) {
			n := netsim.New()
			n.AddLAN("lan", "c", netsim.ProfileUnshaped)
			n.MustAddMachine("m1", "lan")
			n.MustAddMachine("m2", "lan")
			rt := core.NewRuntime(n, "bench")
			rt.RegisterIface(blobIface, func() (any, map[string]core.Method) {
				return &migratableBlob{}, map[string]core.Method{}
			})
			b.Cleanup(rt.Close)
			a, err := rt.NewContext("a", "m1")
			if err != nil {
				b.Fatal(err)
			}
			if err := a.BindSim(0); err != nil {
				b.Fatal(err)
			}
			c, err := rt.NewContext("b", "m2")
			if err != nil {
				b.Fatal(err)
			}
			if err := c.BindSim(0); err != nil {
				b.Fatal(err)
			}
			impl := &migratableBlob{state: make([]byte, size)}
			s, err := a.Export(blobIface, impl, map[string]core.Method{})
			if err != nil {
				b.Fatal(err)
			}
			e, _ := a.EntryStream()
			ref := a.NewRef(s, e)
			src, dst := a, c
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				newRef, err := migrate.MoveLocal(src, ref, dst)
				if err != nil {
					b.Fatal(err)
				}
				ref = newRef
				src, dst = dst, src
			}
		})
	}
}

// BenchmarkRefCodec measures object-reference serialization, the cost of
// passing capabilities between processes.
func BenchmarkRefCodec(b *testing.B) {
	ref := &core.ObjectRef{
		Object: "ctx/obj-1",
		Iface:  bench.ExchangeIface,
		Epoch:  3,
		Server: netsim.Locality{Machine: "m1", LAN: "lan1", Campus: "c1", Process: "p"},
		Protocols: []core.ProtoEntry{
			{ID: core.ProtoGlue, Data: make([]byte, 200)},
			{ID: core.ProtoSHM, Data: make([]byte, 40)},
			{ID: core.ProtoStream, Data: make([]byte, 40)},
			{ID: core.ProtoNexus, Data: make([]byte, 48)},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := core.EncodeRef(ref)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.DecodeRef(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXDRIntArray isolates the marshaling substrate's share of the
// exchange cost.
func BenchmarkXDRIntArray(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("ints=%d", n), func(b *testing.B) {
			v := make([]int32, n)
			e := xdr.NewEncoder(4 + 4*n)
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Reset()
				e.PutInt32s(v)
				if _, err := xdr.NewDecoder(e.Bytes()).Int32s(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupGather measures hpcxx collective scaling: one typed
// gather across N member objects (concurrent member invocations).
func BenchmarkGroupGather(b *testing.B) {
	for _, members := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			n := netsim.New()
			n.AddLAN("lan", "c", netsim.ProfileUnshaped)
			n.MustAddMachine("m0", "lan")
			rt := core.NewRuntime(n, "p")
			b.Cleanup(rt.Close)
			client, err := rt.NewContext("client", "m0")
			if err != nil {
				b.Fatal(err)
			}
			var gps []*core.GlobalPtr
			for i := 0; i < members; i++ {
				ctx, err := rt.NewContext(fmt.Sprintf("w%d", i), "m0")
				if err != nil {
					b.Fatal(err)
				}
				if err := ctx.BindSim(0); err != nil {
					b.Fatal(err)
				}
				impl, methods := bench.ExchangeActivator()
				s, err := ctx.Export(bench.ExchangeIface, impl, methods)
				if err != nil {
					b.Fatal(err)
				}
				e, _ := ctx.EntryStream()
				gps = append(gps, client.NewGlobalPtr(ctx.NewRef(s, e)))
			}
			g := hpcxx.NewGroup(gps...)
			req := &core.Int32Slice{V: make([]int32, 256)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				replies, err := hpcxx.Gather[*core.Int32Slice, core.Int32Slice](g, "exchange", req)
				if err != nil {
					b.Fatal(err)
				}
				if len(replies) != members {
					b.Fatal("short gather")
				}
			}
		})
	}
}
