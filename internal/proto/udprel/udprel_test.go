package udprel

import (
	"bytes"
	"crypto/rand"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/xdr"
)

func lanWorld(t *testing.T) *netsim.Network {
	t.Helper()
	n := netsim.New()
	n.AddLAN("lan", "c", netsim.ProfileUnshaped)
	n.MustAddMachine("a", "lan")
	n.MustAddMachine("b", "lan")
	return n
}

func nodePair(t *testing.T, n *netsim.Network, cfg Config, h Handler) (client, server *Node) {
	t.Helper()
	pcA, err := n.ListenPacket("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	pcB, err := n.ListenPacket("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	client = NewNode(pcA, cfg, nil)
	server = NewNode(pcB, cfg, h)
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestRequestReply(t *testing.T) {
	n := lanWorld(t)
	client, server := nodePair(t, n, Config{}, func(from netsim.Addr, req []byte) []byte {
		return bytes.ToUpper(req)
	})
	out, err := client.Request(server.LocalAddr(), []byte("hello udprel"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "HELLO UDPREL" {
		t.Fatalf("got %q", out)
	}
}

func TestEmptyAndLargeMessages(t *testing.T) {
	n := lanWorld(t)
	client, server := nodePair(t, n, Config{FragSize: 1024}, func(from netsim.Addr, req []byte) []byte {
		return req
	})
	// Empty request round-trips.
	out, err := client.Request(server.LocalAddr(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty: %d bytes, %v", len(out), err)
	}
	// 100 KiB forces ~100 fragments each way.
	big := make([]byte, 100<<10)
	rand.Read(big)
	out, err = client.Request(server.LocalAddr(), big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, big) {
		t.Fatal("large message corrupted")
	}
}

func TestLossRecovery(t *testing.T) {
	n := lanWorld(t)
	n.Seed(123)
	n.SetDatagramShaping("a", "b", netsim.DatagramProfile{
		Link:     netsim.ProfileUnshaped,
		LossRate: 0.3,
		Jitter:   2 * time.Millisecond,
	})
	cfg := Config{RTO: 15 * time.Millisecond, MaxTries: 20, FragSize: 512}
	client, server := nodePair(t, n, cfg, func(from netsim.Addr, req []byte) []byte {
		return req
	})
	msg := make([]byte, 8<<10) // 16 fragments
	rand.Read(msg)
	for i := 0; i < 5; i++ {
		out, err := client.Request(server.LocalAddr(), msg)
		if err != nil {
			t.Fatalf("request %d under 30%% loss: %v", i, err)
		}
		if !bytes.Equal(out, msg) {
			t.Fatalf("request %d corrupted", i)
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Heavy loss forces retransmissions; the handler must still run
	// exactly once per request.
	n := lanWorld(t)
	n.Seed(99)
	n.SetDatagramShaping("a", "b", netsim.DatagramProfile{
		Link:     netsim.ProfileUnshaped,
		LossRate: 0.35,
	})
	var calls atomic.Int32
	cfg := Config{RTO: 10 * time.Millisecond, MaxTries: 30, FragSize: 256}
	client, server := nodePair(t, n, cfg, func(from netsim.Addr, req []byte) []byte {
		calls.Add(1)
		return req
	})
	const requests = 8
	msg := make([]byte, 2048)
	for i := 0; i < requests; i++ {
		if _, err := client.Request(server.LocalAddr(), msg); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != requests {
		t.Fatalf("handler ran %d times for %d requests", calls.Load(), requests)
	}
}

func TestRetransmissionExhaustion(t *testing.T) {
	n := lanWorld(t)
	n.SetDatagramShaping("a", "b", netsim.DatagramProfile{
		Link:     netsim.ProfileUnshaped,
		LossRate: 0.9999999, // effectively a black hole
	})
	cfg := Config{RTO: 5 * time.Millisecond, MaxTries: 3, FragSize: 256}
	client, server := nodePair(t, n, cfg, func(from netsim.Addr, req []byte) []byte { return req })
	_, err := client.Request(server.LocalAddr(), []byte("doomed"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestConcurrentRequests(t *testing.T) {
	n := lanWorld(t)
	client, server := nodePair(t, n, Config{}, func(from netsim.Addr, req []byte) []byte {
		return append([]byte("re:"), req...)
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte{byte(i), byte(i >> 8)}
			out, err := client.Request(server.LocalAddr(), body)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(out, append([]byte("re:"), body...)) {
				t.Errorf("cross-talk: %v", out)
			}
		}(i)
	}
	wg.Wait()
}

func TestClosedNode(t *testing.T) {
	n := lanWorld(t)
	client, server := nodePair(t, n, Config{}, func(from netsim.Addr, req []byte) []byte { return req })
	client.Close()
	if _, err := client.Request(server.LocalAddr(), []byte("x")); err != ErrClosed {
		t.Fatalf("after close: %v", err)
	}
}

func TestGarbageDatagramsIgnored(t *testing.T) {
	n := lanWorld(t)
	_, server := nodePair(t, n, Config{}, func(from netsim.Addr, req []byte) []byte { return req })
	raw, err := n.ListenPacket("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	for _, pkt := range [][]byte{
		nil,
		{1, 2, 3},
		{0x55, 0x52, 0x45, 0x4c}, // magic only
		encodeAck(99, 1),         // ack for nothing
		encodeData(1, 5, 2, []byte("frag beyond count")),
	} {
		raw.WriteTo(pkt, server.LocalAddr())
	}
	// The node must survive and still serve.
	pcC, _ := n.ListenPacket("a", 0)
	client := NewNode(pcC, Config{}, nil)
	defer client.Close()
	if _, err := client.Request(server.LocalAddr(), []byte("still alive")); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentHelper(t *testing.T) {
	if got := fragment(nil, 4); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty: %v", got)
	}
	got := fragment([]byte("abcdefghij"), 4)
	if len(got) != 3 || string(got[0]) != "abcd" || string(got[2]) != "ij" {
		t.Fatalf("frags: %q", got)
	}
}

// --- ORB integration: udprel as a custom proto-class --------------------

func orbWorld(t *testing.T) *core.Runtime {
	t.Helper()
	n := lanWorld(t)
	rt := core.NewRuntime(n, "p")
	capability.Install(rt.DefaultPool())
	rt.DefaultPool().Register(NewFactory(Config{}))
	t.Cleanup(rt.Close)
	return rt
}

func TestCustomProtocolEndToEnd(t *testing.T) {
	rt := orbWorld(t)
	server, err := rt.NewContext("server", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := Bind(server, 0, Config{}); err != nil {
		t.Fatal(err)
	}
	s, err := server.Export("Echo", nil, map[string]core.Method{
		"upper": func(args []byte) ([]byte, error) { return bytes.ToUpper(args), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	entry, err := Entry(server)
	if err != nil {
		t.Fatal(err)
	}
	ref := server.NewRef(s, entry)

	client, err := rt.NewContext("client", "a")
	if err != nil {
		t.Fatal(err)
	}
	gp := client.NewGlobalPtr(ref)
	if id, err := gp.SelectedProtocol(); err != nil || id != ID {
		t.Fatalf("selected %s, %v", id, err)
	}
	out, err := gp.Invoke("upper", []byte("custom protocol"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "CUSTOM PROTOCOL" {
		t.Fatalf("got %q", out)
	}
}

func TestCustomProtocolUnderGlue(t *testing.T) {
	// The glue protocol composes with ANY base protocol, including a
	// user-written one: quota + encryption over udprel.
	rt := orbWorld(t)
	server, _ := rt.NewContext("server", "b")
	if err := Bind(server, 0, Config{}); err != nil {
		t.Fatal(err)
	}
	s, _ := server.Export("Echo", nil, map[string]core.Method{
		"echo": func(args []byte) ([]byte, error) { return args, nil },
	})
	base, err := Entry(server)
	if err != nil {
		t.Fatal(err)
	}
	glueE, err := capability.GlueEntry(server, "udprel-glue", base,
		capability.NewQuota(3, time.Time{}),
		capability.NewRandomEncrypt(capability.ScopeAlways))
	if err != nil {
		t.Fatal(err)
	}
	ref := server.NewRef(s, glueE)

	client, _ := rt.NewContext("client", "a")
	gp := client.NewGlobalPtr(ref)
	for i := 0; i < 3; i++ {
		out, err := gp.Invoke("echo", []byte("sealed"))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(out) != "sealed" {
			t.Fatalf("got %q", out)
		}
	}
	if _, err := gp.Invoke("echo", []byte("x")); err == nil {
		t.Fatal("quota not enforced over custom protocol")
	}
}

func TestCustomProtocolWithLoss(t *testing.T) {
	// The ORB never notices datagram loss: udprel recovers underneath.
	n := lanWorld(t)
	n.Seed(7)
	n.SetDatagramShaping("a", "b", netsim.DatagramProfile{
		Link:     netsim.ProfileUnshaped,
		LossRate: 0.25,
	})
	rt := core.NewRuntime(n, "p")
	rt.DefaultPool().Register(NewFactory(Config{RTO: 10 * time.Millisecond, MaxTries: 30}))
	defer rt.Close()

	server, _ := rt.NewContext("server", "b")
	if err := Bind(server, 0, Config{RTO: 10 * time.Millisecond, MaxTries: 30}); err != nil {
		t.Fatal(err)
	}
	s, _ := server.Export("Echo", nil, map[string]core.Method{
		"echo": func(args []byte) ([]byte, error) { return args, nil },
	})
	entry, _ := Entry(server)
	ref := server.NewRef(s, entry)
	client, _ := rt.NewContext("client", "a")
	gp := client.NewGlobalPtr(ref)
	body := make([]byte, 4<<10)
	rand.Read(body)
	for i := 0; i < 4; i++ {
		out, err := gp.Invoke("echo", body)
		if err != nil {
			t.Fatalf("call %d over lossy link: %v", i, err)
		}
		if !bytes.Equal(out, body) {
			t.Fatalf("call %d corrupted", i)
		}
	}
}

func TestEntryWithoutBinding(t *testing.T) {
	rt := orbWorld(t)
	ctx, _ := rt.NewContext("nobind", "a")
	if _, err := Entry(ctx); err == nil {
		t.Fatal("Entry without binding accepted")
	}
}

func TestParseEntryErrors(t *testing.T) {
	for _, data := range [][]byte{nil, {1}, mustString("tcp://a:1"), mustString("udp://a"), mustString("udp://a:xx")} {
		if _, err := parseEntry(core.ProtoEntry{ID: ID, Data: data}); err == nil {
			t.Errorf("parseEntry accepted %v", data)
		}
	}
	good := mustString("udp://m:99")
	addr, err := parseEntry(core.ProtoEntry{ID: ID, Data: good})
	if err != nil || addr.Machine != "m" || addr.Port != 99 {
		t.Fatalf("%v %v", addr, err)
	}
}

// mustString encodes an XDR string for hand-built proto-data.
func mustString(s string) []byte {
	e := xdr.NewEncoder(4 + len(s))
	e.PutString(s)
	return e.Bytes()
}
