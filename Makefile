GO ?= go

.PHONY: ci vet build test race bench-async

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Regenerate the async throughput figure quickly and emit JSON.
bench-async:
	$(GO) run ./cmd/ohpc-bench -fig=a1 -quick -json=-
