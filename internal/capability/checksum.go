package capability

import (
	"hash/crc32"

	"openhpcxx/internal/netsim"
	"openhpcxx/internal/wire"
)

// KindChecksum names the integrity-check capability: a CRC32 over the
// body, verified on the receiving side. Cheaper than the encrypt
// capability's MAC when only accidental corruption matters.
const KindChecksum = "checksum"

// Checksum attaches and verifies a CRC32 (Castagnoli) of the body.
type Checksum struct{}

// NewChecksum builds a checksum capability.
func NewChecksum() *Checksum { return &Checksum{} }

// Kind implements Capability.
func (*Checksum) Kind() string { return KindChecksum }

// Applicable implements Capability.
func (*Checksum) Applicable(client, server netsim.Locality) bool { return true }

// Config implements Capability.
func (*Checksum) Config() ([]byte, error) { return nil, nil }

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Process attaches the CRC.
func (*Checksum) Process(f *Frame, body []byte) ([]byte, []byte, error) {
	sum := crc32.Checksum(body, crcTable)
	env := []byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)}
	return body, env, nil
}

// Unprocess verifies the CRC.
func (*Checksum) Unprocess(f *Frame, envelope, body []byte) ([]byte, error) {
	if len(envelope) != 4 {
		return nil, wire.Faultf(wire.FaultCapability, "checksum envelope has %d bytes", len(envelope))
	}
	want := uint32(envelope[0])<<24 | uint32(envelope[1])<<16 | uint32(envelope[2])<<8 | uint32(envelope[3])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, wire.Faultf(wire.FaultCapability, "checksum mismatch: %08x != %08x", got, want)
	}
	return body, nil
}

func init() {
	RegisterKind(KindChecksum, func([]byte) (Capability, error) { return NewChecksum(), nil })
}
