package bench

import (
	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/migrate"
	"openhpcxx/internal/netsim"
)

// Fig3Client is one client's observation at one phase of the Figure 3
// scenario: which protocol it selected and whether its requests were
// authenticated.
type Fig3Client struct {
	Name          string
	Machine       netsim.MachineID
	Selected      core.ProtoID
	Authenticated bool
}

// Fig3Phase captures both clients' observations while the server lives
// on a given machine.
type Fig3Phase struct {
	ServerMachine netsim.MachineID
	Clients       []Fig3Client
}

// RunFigure3 reproduces the paper's Figure 3 scenario: server object S0
// is accessed by clients P1 and P2 on different LANs. The server's OR
// offers a glue protocol with an authentication capability (preferred)
// and a plain Nexus protocol. The authentication capability applies only
// across LANs, so the local client skips authentication while the remote
// one authenticates every request. When load forces S0 to migrate onto
// P2's LAN the roles swap automatically.
func RunFigure3() ([]Fig3Phase, error) {
	n := netsim.New()
	n.AddLAN("lan1", "campus", netsim.ProfileUnshaped)
	n.AddLAN("lan2", "campus", netsim.ProfileUnshaped)
	n.CampusLink = netsim.ProfileUnshaped
	n.MustAddMachine("srv1", "lan1") // server's first home, P1's LAN
	n.MustAddMachine("p1", "lan1")
	n.MustAddMachine("srv2", "lan2") // server's second home, P2's LAN
	n.MustAddMachine("p2", "lan2")

	rt := newRuntime(n, "fig3")
	defer rt.Close()

	home1, err := serverContext(rt, "home1", "srv1")
	if err != nil {
		return nil, err
	}
	home2, err := serverContext(rt, "home2", "srv2")
	if err != nil {
		return nil, err
	}
	p1, err := rt.NewContext("P1", "p1")
	if err != nil {
		return nil, err
	}
	p2, err := rt.NewContext("P2", "p2")
	if err != nil {
		return nil, err
	}

	servant, err := exportExchange(home1)
	if err != nil {
		return nil, err
	}
	streamE, err := home1.EntryStream()
	if err != nil {
		return nil, err
	}
	nexusE, err := home1.EntryNexus()
	if err != nil {
		return nil, err
	}
	glueAuth, err := capability.GlueEntry(home1, "fig3-auth", streamE,
		capability.MustNewAuth("client", []byte("fig3-shared-secret"), capability.ScopeCrossLAN))
	if err != nil {
		return nil, err
	}
	// Preference: authenticated glue first, plain Nexus second — both
	// clients receive copies of the same GP (paper: "the server provides
	// both the clients with copies of a GP whose OR has two protocols").
	ref := home1.NewRef(servant, glueAuth, nexusE)

	gp1 := p1.NewGlobalPtr(ref)
	gp2 := p2.NewGlobalPtr(ref)

	observe := func(serverMachine netsim.MachineID) (Fig3Phase, error) {
		phase := Fig3Phase{ServerMachine: serverMachine}
		for _, c := range []struct {
			name string
			ctx  *core.Context
			gp   *core.GlobalPtr
		}{{"P1", p1, gp1}, {"P2", p2, gp2}} {
			// Exercise the path (and chase any tombstone).
			if _, err := MeasureExchange(c.gp, 64, 1, 0); err != nil {
				return phase, errs.Wrapf(errs.CodeOf(err), err, "bench: %s exchange", c.name)
			}
			id, err := c.gp.SelectedProtocol()
			if err != nil {
				return phase, err
			}
			phase.Clients = append(phase.Clients, Fig3Client{
				Name:          c.name,
				Machine:       c.ctx.Locality().Machine,
				Selected:      id,
				Authenticated: id == core.ProtoGlue,
			})
		}
		return phase, nil
	}

	before, err := observe("srv1")
	if err != nil {
		return nil, err
	}

	// "The load on the server's machine increases beyond a high-water
	// mark and the application decides to migrate S0 to a machine
	// residing on the LAN of client P2."
	if _, err := migrate.MoveLocal(home1, ref, home2); err != nil {
		return nil, err
	}

	after, err := observe("srv2")
	if err != nil {
		return nil, err
	}
	return []Fig3Phase{before, after}, nil
}

// Fig3Expected returns, per phase, the clients expected to authenticate.
func Fig3Expected() [][2]bool {
	// Phase 1 (server on lan1): P1 local (no auth), P2 remote (auth).
	// Phase 2 (server on lan2): roles swap.
	return [][2]bool{{false, true}, {true, false}}
}
