// Command ohpc-demo shows the paper's closing claim end to end:
// capabilities and protocol adaptivity working together with dynamic
// load balancing. It builds a two-LAN deployment, publishes a
// capability-protected service, drives client traffic, overloads the
// server's host, and lets the balancer migrate the object — after which
// every client's global pointer silently re-selects the protocol
// appropriate to the new locality.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"openhpcxx/internal/bench"
	"openhpcxx/internal/capability"
	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/introspect"
	"openhpcxx/internal/loadbal"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/obs"
	"openhpcxx/internal/registry"
)

func main() {
	passes := flag.Int("passes", 3, "load-balancing passes to run")
	tracePath := flag.String("trace", "", "record invocation spans and write them as JSON to this file ('-' for stdout)")
	metricsPath := flag.String("metrics", "", "write the runtime metrics snapshot as JSON to this file ('-' for stdout)")
	introspectAddr := flag.String("introspect", "", "serve the introspection plane (/metrics /statusz /tracez /varz) on this address, e.g. 127.0.0.1:8090")
	linger := flag.Duration("linger", 0, "after the demo completes, keep serving background traffic for this long (for ohpc-top / curl against -introspect)")
	flag.Parse()

	n := netsim.New()
	n.AddLAN("lab-lan", "campus", netsim.ProfileATM155.Scaled(16))
	n.AddLAN("office-lan", "campus", netsim.ProfileEthernet.Scaled(16))
	n.CampusLink = netsim.ProfileCampus.Scaled(16)
	n.MustAddMachine("lab-1", "lab-lan")
	n.MustAddMachine("lab-2", "lab-lan")
	n.MustAddMachine("desk", "office-lan")

	rt := core.NewRuntime(n, "demo")
	capability.Install(rt.DefaultPool())
	rt.RegisterIface(bench.ExchangeIface, bench.ExchangeActivator)
	defer rt.Close()

	// With -trace, every invocation in the demo records its span tree —
	// client and server halves joined by the wire-propagated trace id.
	var ring *obs.Ring
	if *tracePath != "" {
		ring = obs.NewRing(0)
		rt.Tracer().SetRecorder(ring)
	}

	must := func(err error) {
		if err != nil {
			log.Fatalf("ohpc-demo: %v", err)
		}
	}

	// -introspect attaches the live telemetry plane; it reuses the
	// -trace ring when one is installed, else installs its own.
	var insp *introspect.Server
	if *introspectAddr != "" {
		var err error
		insp, err = introspect.Attach(rt, introspect.Options{Addr: *introspectAddr})
		must(err)
		defer insp.Close()
		fmt.Printf("introspection plane on http://%s (try /metrics, /statusz, /tracez, /varz)\n", insp.Addr())
	}

	// Registry on lab-1.
	regCtx, err := rt.NewContext("registry", "lab-1")
	must(err)
	must(regCtx.BindSim(7000))
	_, _, err = registry.Serve(regCtx)
	must(err)

	// Two candidate hosts for the service.
	mkHost := func(name, machine string) *core.Context {
		ctx, err := rt.NewContext(name, netsim.MachineID(machine))
		must(err)
		must(ctx.BindSHM())
		must(ctx.BindSim(0))
		must(ctx.BindNexusSim(0))
		return ctx
	}
	host1 := mkHost("host1", "lab-1")
	host2 := mkHost("host2", "lab-2")

	// The service: exchange servant behind an authenticated glue for
	// off-LAN clients, plain nexus for local ones.
	impl, methods := bench.ExchangeActivator()
	servant, err := host1.Export(bench.ExchangeIface, impl, methods)
	must(err)
	streamE, err := host1.EntryStream()
	must(err)
	nexusE, err := host1.EntryNexus()
	must(err)
	glueE, err := capability.GlueEntry(host1, "demo-auth", streamE,
		capability.MustNewAuth("office", []byte("demo-secret"), capability.ScopeCrossLAN),
		capability.NewQuota(0, time.Time{}))
	must(err)
	ref := host1.NewRef(servant, glueE, nexusE)

	reg := registry.NewClient(host1, registry.RefAt("sim://lab-1:7000"))
	must(reg.Bind("demo/exchange", ref))
	fmt.Println("published demo/exchange with table [glue(auth,quota), nexus-tcp]")

	// Clients: one in the lab, one at a desk on the office LAN.
	labClient, err := rt.NewContext("lab-client", "lab-2")
	must(err)
	deskClient, err := rt.NewContext("desk-client", "desk")
	must(err)

	resolve := func(ctx *core.Context) *core.GlobalPtr {
		c := registry.NewClient(ctx, registry.RefAt("sim://lab-1:7000"))
		r, err := c.Lookup("demo/exchange")
		must(err)
		return ctx.NewGlobalPtr(r)
	}
	gpLab := resolve(labClient)
	gpDesk := resolve(deskClient)

	show := func(phase string) {
		for _, c := range []struct {
			name string
			gp   *core.GlobalPtr
		}{{"lab-client ", gpLab}, {"desk-client", gpDesk}} {
			m, err := bench.MeasureExchange(c.gp, 4096, 3, 20*time.Millisecond)
			must(err)
			id, err := c.gp.SelectedProtocol()
			must(err)
			fmt.Printf("  [%s] %s -> %-10s %8.2f Mbps (avg rtt %v)\n",
				phase, c.name, id, m.BandwidthBps/1e6, m.AvgRTT)
		}
	}
	fmt.Println("\nphase 1: service on lab-1 (lab client is LAN-local, desk client authenticates)")
	show("before")

	// Load balancing: overload host1.
	var load1, load2 loadbal.SyntheticLoad
	load1.Set(95) // beyond the high-water mark
	load2.Set(10)
	bal := loadbal.New(loadbal.Policy{HighWater: 80, Margin: 20}, reg)
	bal.AddHost(host1, load1.Source())
	bal.AddHost(host2, load2.Source())
	bal.Manage("demo/exchange", ref, host1)

	for i := 0; i < *passes; i++ {
		moves, err := bal.Rebalance()
		must(err)
		for _, mv := range moves {
			fmt.Printf("\nload balancer: %s exceeded high-water mark; migrated %s: %s -> %s\n",
				mv.From, mv.Object, mv.From, mv.To)
			load1.Set(30)
			load2.Set(40)
		}
		if len(moves) == 0 {
			fmt.Printf("\nload balancer pass %d: loads %v — nothing to do\n", i+1, bal.Loads())
		}
	}

	fmt.Println("\nphase 2: after migration both clients keep calling the same GP; selection adapts")
	show("after ")
	fmt.Println("\ndone: no client code changed across the migration.")

	if *linger > 0 {
		// Keep a light request load flowing so the introspection plane
		// has live rates to show (ohpc-top, curl /varz). The loop runs
		// in the foreground: the demo exits when the linger expires.
		fmt.Printf("\nlingering %v with background traffic (introspect: %s)\n", *linger, insp.Addr())
		clk := rt.Clock()
		deadline := clk.Now().Add(*linger)
		for clk.Now().Before(deadline) {
			for _, gp := range []*core.GlobalPtr{gpLab, gpDesk} {
				if _, err := bench.MeasureExchange(gp, 1024, 2, 5*time.Millisecond); err != nil {
					must(err)
				}
			}
			clock.Sleep(clk, 20*time.Millisecond)
		}
	}

	fmt.Println("\nadaptivity event log:")
	for _, ev := range rt.Events() {
		fmt.Println("  " + ev.String())
	}
	fmt.Printf("\nmetrics:\n%s", rt.Metrics().Dump())

	toFile := func(path string, write func(io.Writer) error) {
		out := os.Stdout
		if path != "-" {
			f, err := os.Create(path)
			must(err)
			defer f.Close()
			out = f
		}
		must(write(out))
	}
	if *metricsPath != "" {
		toFile(*metricsPath, rt.WriteMetrics)
		if *metricsPath != "-" {
			fmt.Printf("\nwrote metrics snapshot to %s\n", *metricsPath)
		}
	}
	if ring != nil {
		toFile(*tracePath, ring.WriteJSON)
		if *tracePath != "-" {
			fmt.Printf("wrote %d spans (of %d recorded) to %s\n", len(ring.Spans()), ring.Total(), *tracePath)
		}
	}
}
