// Customproto demonstrates the paper's open-architecture claim (§3.2):
// "custom protocols are supported by having users write their own
// proto-classes that satisfy a standard interface."
//
// The udprel package — written entirely outside the ORB — implements
// reliable request/reply messaging over lossy datagrams. This example
// registers it into the protocol pool next to the built-ins, serves an
// object over it across a link that drops 20% of all packets, stacks
// the glue protocol (quota + encryption) on top of it, and finally
// migrates the object while a client keeps calling.
//
//	go run ./examples/customproto
package main

import (
	"fmt"
	"log"
	"time"

	"openhpcxx/internal/bench"
	"openhpcxx/internal/capability"
	"openhpcxx/internal/core"
	"openhpcxx/internal/migrate"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/proto/udprel"
)

func main() {
	net := netsim.New()
	net.AddLAN("lan", "campus", netsim.ProfileEthernet.Scaled(16))
	net.MustAddMachine("alpha", "lan")
	net.MustAddMachine("beta", "lan")
	net.MustAddMachine("gamma", "lan")

	// The link between client and first server drops every fifth
	// datagram and jitters delivery; udprel recovers underneath the ORB.
	net.Seed(2026)
	net.SetDatagramShaping("alpha", "beta", netsim.DatagramProfile{
		Link:     netsim.ProfileEthernet.Scaled(16),
		LossRate: 0.20,
		Jitter:   time.Millisecond,
	})

	rt := core.NewRuntime(net, "customproto")
	capability.Install(rt.DefaultPool())
	arq := udprel.Config{RTO: 10 * time.Millisecond, MaxTries: 30}
	rt.DefaultPool().Register(udprel.NewFactory(arq)) // the custom proto-class
	rt.RegisterIface(bench.ExchangeIface, bench.ExchangeActivator)
	// Objects served over udprel survive migration once a reanchorer is
	// registered (the same hook the built-ins use internally).
	migrate.RegisterReanchor(udprel.ID, func(dst *core.Context, old core.ProtoEntry) (core.ProtoEntry, bool, error) {
		ne, err := udprel.Entry(dst)
		return ne, err == nil, nil
	})
	defer rt.Close()

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	server, err := rt.NewContext("server", "beta")
	must(err)
	must(udprel.Bind(server, 0, arq))
	impl, methods := bench.ExchangeActivator()
	servant, err := server.Export(bench.ExchangeIface, impl, methods)
	must(err)

	base, err := udprel.Entry(server)
	must(err)
	glueE, err := capability.GlueEntry(server, "udprel-sealed", base,
		capability.NewQuota(1000, time.Time{}),
		capability.NewRandomEncrypt(capability.ScopeAlways))
	must(err)
	ref := server.NewRef(servant, glueE, base)

	client, err := rt.NewContext("client", "alpha")
	must(err)
	gp := client.NewGlobalPtr(ref)

	m, err := bench.MeasureExchange(gp, 4096, 5, 100*time.Millisecond)
	must(err)
	id, _ := gp.SelectedProtocol()
	fmt.Printf("client -> beta over %s(base=udprel) across a 20%%-loss link: %.2f Mbps, avg rtt %v\n",
		id, m.BandwidthBps/1e6, m.AvgRTT)

	// Migrate the object to gamma; the same GP keeps working and the
	// custom protocol entry is re-anchored to the new home.
	target, err := rt.NewContext("server2", "gamma")
	must(err)
	must(udprel.Bind(target, 0, arq))
	_, err = migrate.MoveLocal(server, ref, target)
	must(err)

	m, err = bench.MeasureExchange(gp, 4096, 5, 100*time.Millisecond)
	must(err)
	fmt.Printf("after migration to gamma (lossless link):             %.2f Mbps, avg rtt %v\n",
		m.BandwidthBps/1e6, m.AvgRTT)

	fmt.Printf("\nmetrics:\n%s", rt.Metrics().Dump())
}
