package core

import (
	"fmt"
	"sync"
	"time"
)

// Event records one adaptivity decision the runtime made: a protocol
// selection, a reference refresh after migration, an object move. The
// ring-buffered event log makes the ORB's "critical internal decisions"
// observable — the introspection half of Open Implementation.
type Event struct {
	Time   time.Time
	Kind   string // "select", "refresh", "invalidate", "move-out", "move-in"
	Object ObjectID
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%s %-10s %-20s %s", e.Time.Format("15:04:05.000"), e.Kind, e.Object, e.Detail)
}

// eventLog is a fixed-capacity ring of events.
type eventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count int
}

const eventLogCapacity = 1024

func newEventLog() *eventLog {
	return &eventLog{buf: make([]Event, eventLogCapacity)}
}

func (l *eventLog) add(e Event) {
	l.mu.Lock()
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.count < len(l.buf) {
		l.count++
	}
	l.mu.Unlock()
}

func (l *eventLog) list() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.count)
	start := l.next - l.count
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.count; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// Events returns the runtime's recorded adaptivity events, oldest
// first, up to the log's capacity.
func (rt *Runtime) Events() []Event { return rt.events.list() }

// recordEvent appends to the runtime's event log.
func (rt *Runtime) recordEvent(kind string, object ObjectID, format string, args ...any) {
	rt.events.add(Event{
		Time:   rt.clock.Now(),
		Kind:   kind,
		Object: object,
		Detail: fmt.Sprintf(format, args...),
	})
}
