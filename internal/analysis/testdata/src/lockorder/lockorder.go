// Golden corpus for the lockorder analyzer: nested acquisitions of
// named mutexes must match edges declared in lockorder.manifest (the
// corpus edges are declared at the bottom of the shipped manifest).
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.RWMutex
	n  int
}

type C struct {
	mu sync.Mutex
	n  int
}

var glob sync.Mutex
var globN int

// declaredOrder follows the manifest edge lockorder.A.mu -> lockorder.B.mu.
func declaredOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.n++
	a.mu.Unlock()
}

// inverted acquires the declared pair in the opposite order.
func inverted(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "deadlock-capable cycle"
	a.n++
	a.mu.Unlock()
	b.mu.Unlock()
}

// undeclared nests a pair no manifest edge covers.
func undeclared(a *A, c *C) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c.mu.Lock() // want "undeclared lock ordering"
	c.n++
	c.mu.Unlock()
}

// releasedFirst drops the first lock before the second: no nesting.
func releasedFirst(a *A, c *C) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// deferHolds keeps the outer lock to the end of the function; the
// nested acquisition still needs (and has) a declared edge.
func deferHolds(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.n++
}

// readLocks count like writes: an inverted RLock is the same deadlock.
func readLocks(a *A, b *B) {
	b.mu.RLock()
	a.mu.Lock() // want "deadlock-capable cycle"
	a.n++
	a.mu.Unlock()
	b.mu.RUnlock()
}

// localMutex is unnamed: function-local locks are out of scope.
func localMutex(a *A) {
	var mu sync.Mutex
	mu.Lock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	mu.Unlock()
}

// sameKey locks two instances of one type: ordering within a key is by
// instance address, which is out of structural scope.
func sameKey(a1, a2 *A) {
	a1.mu.Lock()
	a2.mu.Lock()
	a2.n++
	a2.mu.Unlock()
	a1.mu.Unlock()
}

// packageLevel follows the manifest edge lockorder.glob -> lockorder.A.mu.
func packageLevel(a *A) {
	glob.Lock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	globN++
	glob.Unlock()
}

// nestedBlock observes the edge inside an if body while the outer lock
// is held by a sibling Lock above it.
func nestedBlock(a *A, c *C, hot bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if hot {
		c.mu.Lock() // want "undeclared lock ordering"
		c.n++
		c.mu.Unlock()
	}
}

// deliberateInversion shows the suppression escape hatch.
func deliberateInversion(a *A, b *B) {
	b.mu.Lock()
	//lint:ignore lockorder corpus exercises a suppressed inversion
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Unlock()
}
