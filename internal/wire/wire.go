// Package wire defines the Open HPC++ on-the-wire message format shared
// by every protocol object.
//
// A message is a length-delimited frame containing an XDR-encoded header
// (message type, request id, target object, method, migration epoch, and
// a chain of capability envelopes) followed by an opaque body. Capability
// objects transform only the body and record what they did in the
// envelope chain, so a glue protocol can un-process a request on the
// server side in exactly the reverse order it was processed on the client
// side (paper §4.2, Figure 2).
package wire

import (
	"errors"
	"fmt"
	"io"

	"openhpcxx/internal/errs"
	"openhpcxx/internal/xdr"
)

// Magic identifies Open HPC++ frames ("HPCX").
const Magic uint32 = 0x48504358

// Version is the newest wire protocol version this package speaks.
// Version 2 added the absolute invocation deadline to the header;
// version 3 added the optional trace and span IDs so a server can
// continue the caller's trace; version 4 added the flags word carrying
// the trace keep-hint bit. Frames from older versions are still
// accepted, decoding with the missing fields zero (no deadline,
// untraced) — except that traced v3 frames decode with the keep-hint
// flag set, because a v3 peer predates tail-based retention and must
// be buffered conservatively.
//
// The encoder emits the LOWEST version that represents a message
// exactly (see wireVersion): most frames still go out as v3, so a
// rolling mixed-version deployment keeps connectivity. Only frames
// whose flags a v3 decoder would mis-infer — in practice a traced
// frame whose tail keeper cleared the keep-hint — need v4 framing, and
// a v3 peer rejects those with ErrBadVersion; it would have buffered
// the trace conservatively anyway, so the loss is the optimization,
// not correctness.
const Version uint32 = 4

// minVersion is the oldest wire version the decoder accepts.
const minVersion uint32 = 1

// MaxFrame bounds a frame's total size (64 MiB), protecting servers from
// hostile length prefixes.
const MaxFrame = 64 << 20

// MsgType discriminates frame kinds.
type MsgType uint32

// Message kinds.
const (
	TRequest MsgType = 1 // method invocation
	TReply   MsgType = 2 // successful result
	TFault   MsgType = 3 // remote error
	TControl MsgType = 4 // runtime-internal traffic (migration, ping)
)

func (t MsgType) String() string {
	switch t {
	case TRequest:
		return "request"
	case TReply:
		return "reply"
	case TFault:
		return "fault"
	case TControl:
		return "control"
	case TBatch:
		return "batch"
	}
	return fmt.Sprintf("msgtype(%d)", uint32(t))
}

// Envelope records one capability's transformation of the body. ID names
// the capability kind; Data carries whatever the capability needs to undo
// the transformation (nonces, original lengths, MACs, ...).
type Envelope struct {
	ID   string
	Data []byte
}

// Message is one frame.
type Message struct {
	Type      MsgType
	RequestID uint64
	Object    string // target object id ("context-id/obj-N")
	Method    string
	Epoch     uint64 // migration epoch of the OR the caller used
	// Deadline is the absolute instant (Unix nanoseconds) after which
	// the caller no longer wants the result; 0 means no deadline.
	// Servers shed already-expired requests instead of doing dead work.
	Deadline int64
	// TraceID and SpanID (wire v3) carry the caller's end-to-end trace
	// identity so server-side spans join the client's trace. Both zero
	// means the caller was not tracing; servers must treat them as
	// opaque and never allocate based on their values.
	TraceID uint64
	SpanID  uint64
	// Flags (wire v4) carries per-message boolean hints. Unknown bits
	// are preserved verbatim through a decode/encode round trip so
	// future versions can add bits without breaking v4 relays.
	Flags     uint32
	Envelopes []Envelope
	Body      []byte
}

// Flag bits for Message.Flags.
const (
	// FlagKeepHint marks the trace this message belongs to as a
	// retention candidate: the caller's tail keeper is still buffering
	// it, so downstream keepers should buffer its server-side spans
	// too. Absent the bit, a tail keeper may discard the continued
	// trace's spans immediately instead of holding them to trace end.
	FlagKeepHint uint32 = 1 << 0
)

// KeepHint reports whether the frame marks its trace as a retention
// candidate (FlagKeepHint).
func (m *Message) KeepHint() bool {
	return m.Flags&FlagKeepHint != 0
}

// SetKeepHint sets or clears the retention-candidate bit.
func (m *Message) SetKeepHint(on bool) {
	if on {
		m.Flags |= FlagKeepHint
	} else {
		m.Flags &^= FlagKeepHint
	}
}

// Expired reports whether the message carries a deadline that has
// already passed at the given instant.
func (m *Message) Expired(now int64) bool {
	return m.Deadline != 0 && now > m.Deadline
}

// wireVersion is the lowest wire version that represents m exactly. A
// v3 decoder reconstructs the flags word as "keep-hint iff traced", so
// any message whose flags match that inference round-trips through v3
// framing losslessly; emitting v3 for those keeps pre-flags peers
// decoding upgraded senders through a rolling deploy. Only a flags
// word a v3 decoder would get wrong — a cleared keep-hint on a traced
// frame, a set hint on an untraced one, or any future bit — forces v4.
func (m *Message) wireVersion() uint32 {
	implicit := uint32(0)
	if m.TraceID != 0 {
		implicit = FlagKeepHint
	}
	if m.Flags != implicit {
		return Version
	}
	return 3
}

// MarshalXDR encodes everything after the frame length prefix.
func (m *Message) MarshalXDR(e *xdr.Encoder) error {
	ver := m.wireVersion()
	e.PutUint32(Magic)
	e.PutUint32(ver)
	e.PutUint32(uint32(m.Type))
	e.PutUint64(m.RequestID)
	e.PutString(m.Object)
	e.PutString(m.Method)
	e.PutUint64(m.Epoch)
	e.PutInt64(m.Deadline)
	e.PutUint64(m.TraceID)
	e.PutUint64(m.SpanID)
	if ver >= 4 {
		e.PutUint32(m.Flags)
	}
	e.PutUint32(uint32(len(m.Envelopes)))
	for _, env := range m.Envelopes {
		e.PutString(env.ID)
		e.PutOpaque(env.Data)
	}
	e.PutOpaque(m.Body)
	return nil
}

// Frame errors.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrTooLarge   = errors.New("wire: frame exceeds MaxFrame")
)

// UnmarshalXDR decodes everything after the frame length prefix.
func (m *Message) UnmarshalXDR(d *xdr.Decoder) error {
	magic, err := d.Uint32()
	if err != nil {
		return err
	}
	if magic != Magic {
		return ErrBadMagic
	}
	ver, err := d.Uint32()
	if err != nil {
		return err
	}
	if ver < minVersion || ver > Version {
		return ErrBadVersion
	}
	typ, err := d.Uint32()
	if err != nil {
		return err
	}
	m.Type = MsgType(typ)
	if m.RequestID, err = d.Uint64(); err != nil {
		return err
	}
	if m.Object, err = d.String(); err != nil {
		return err
	}
	if m.Method, err = d.String(); err != nil {
		return err
	}
	if m.Epoch, err = d.Uint64(); err != nil {
		return err
	}
	m.Deadline = 0
	if ver >= 2 {
		if m.Deadline, err = d.Int64(); err != nil {
			return err
		}
	}
	m.TraceID, m.SpanID = 0, 0
	if ver >= 3 {
		if m.TraceID, err = d.Uint64(); err != nil {
			return err
		}
		if m.SpanID, err = d.Uint64(); err != nil {
			return err
		}
	}
	m.Flags = 0
	if ver >= 4 {
		if m.Flags, err = d.Uint32(); err != nil {
			return err
		}
	} else if m.TraceID != 0 {
		// A traced frame from a pre-hint peer: buffer conservatively.
		m.Flags = FlagKeepHint
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if n > 64 {
		return errs.Newf(errs.Codec, "wire: %d envelopes exceeds limit", n)
	}
	m.Envelopes = make([]Envelope, n)
	for i := range m.Envelopes {
		if m.Envelopes[i].ID, err = d.String(); err != nil {
			return err
		}
		if m.Envelopes[i].Data, err = d.Opaque(); err != nil {
			return err
		}
	}
	m.Body, err = d.Opaque()
	return err
}

// Write frames and writes m to w. It is not safe for concurrent use on
// one writer; callers serialize per connection.
func Write(w io.Writer, m *Message) error {
	e := xdr.NewEncoder(64 + len(m.Body))
	e.PutUint32(0) // frame length placeholder
	if err := m.MarshalXDR(e); err != nil {
		return err
	}
	buf := e.Bytes()
	n := len(buf) - 4
	if n > MaxFrame {
		return ErrTooLarge
	}
	buf[0] = byte(n >> 24)
	buf[1] = byte(n >> 16)
	buf[2] = byte(n >> 8)
	buf[3] = byte(n)
	_, err := w.Write(buf)
	return err
}

// Read reads one frame from r.
func Read(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3]))
	if n > MaxFrame {
		return nil, ErrTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	m := new(Message)
	if err := xdr.Unmarshal(buf, m); err != nil {
		return nil, err
	}
	return m, nil
}
