package future

import (
	"openhpcxx/internal/xdr"
)

// Invoker is the slice of the ORB's GlobalPtr that the typed helpers
// need. Declaring it here (instead of importing core) keeps the
// dependency arrow pointing ORB → future, so protocol objects and
// capability chains can resolve futures without import cycles.
type Invoker interface {
	InvokeAsync(method string, args []byte) *Future
}

// Typed is a future carrying an XDR-decoded reply of type Resp. The
// decode happens once, on first Wait, in the waiter's goroutine.
type Typed[Resp any] struct {
	f      *Future
	decode func([]byte) (*Resp, error)
}

// Call starts a typed asynchronous invocation: the request is marshaled
// and issued immediately; the returned Typed future decodes the reply
// on Wait. Marshaling errors surface as an already-failed future so
// call sites keep a single error path.
func Call[Req xdr.Marshaler, Resp any, PResp interface {
	*Resp
	xdr.Unmarshaler
}](g Invoker, method string, req Req) *Typed[Resp] {
	decode := func(b []byte) (*Resp, error) {
		resp := PResp(new(Resp))
		if err := xdr.Unmarshal(b, resp); err != nil {
			return nil, err
		}
		return (*Resp)(resp), nil
	}
	args, err := xdr.Marshal(req)
	if err != nil {
		return &Typed[Resp]{f: Failed(err), decode: decode}
	}
	return &Typed[Resp]{f: g.InvokeAsync(method, args), decode: decode}
}

// Future returns the underlying untyped future (for WaitAll/WaitAny
// composition and cancellation).
func (t *Typed[Resp]) Future() *Future { return t.f }

// Done returns a channel closed when the invocation resolves.
func (t *Typed[Resp]) Done() <-chan struct{} { return t.f.Done() }

// Cancel abandons the invocation (see Future.Cancel).
func (t *Typed[Resp]) Cancel() bool { return t.f.Cancel() }

// Wait blocks until the invocation resolves and returns the decoded
// reply or the invocation/decoding error.
func (t *Typed[Resp]) Wait() (*Resp, error) {
	body, err := t.f.Wait()
	if err != nil {
		return nil, err
	}
	return t.decode(body)
}
