package bench

import (
	"fmt"
	"time"

	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/netsim"
	"openhpcxx/internal/proto/udprel"
)

// LossPoint is one cell of the extension experiment L1: goodput of the
// udprel custom protocol as a function of datagram loss.
type LossPoint struct {
	LossRate float64
	Sample   Measurement
}

// LossSweepConfig parameterizes L1.
type LossSweepConfig struct {
	// Rates are the loss probabilities to sweep (default 0..0.4).
	Rates []float64
	// Ints is the exchanged array size (default 4096).
	Ints        int
	MinReps     int
	MinDuration time.Duration
	// RTO tunes the ARQ (default 10ms — small, so retransmissions show
	// up as latency rather than stalls).
	RTO time.Duration
}

// RunLossSweep measures udprel end-to-end goodput across loss rates —
// an extension beyond the paper demonstrating a user-written protocol
// under conditions the built-ins cannot survive.
func RunLossSweep(cfg LossSweepConfig) ([]LossPoint, error) {
	if cfg.Rates == nil {
		cfg.Rates = []float64{0, 0.05, 0.1, 0.2, 0.4}
	}
	if cfg.Ints == 0 {
		cfg.Ints = 4096
	}
	if cfg.MinReps == 0 {
		cfg.MinReps = 3
	}
	if cfg.MinDuration == 0 {
		cfg.MinDuration = 100 * time.Millisecond
	}
	if cfg.RTO == 0 {
		cfg.RTO = 10 * time.Millisecond
	}
	arq := udprel.Config{RTO: cfg.RTO, MaxTries: 50, FragSize: 2048}

	var out []LossPoint
	for _, rate := range cfg.Rates {
		n := netsim.New()
		n.Seed(int64(1000 + 1000*rate))
		n.AddLAN("lan", "c", netsim.ProfileUnshaped)
		n.MustAddMachine("a", "lan")
		n.MustAddMachine("b", "lan")
		n.SetDatagramShaping("a", "b", netsim.DatagramProfile{
			Link:     netsim.ProfileUnshaped,
			LossRate: rate,
		})
		rt := core.NewRuntime(n, "losssweep")
		rt.DefaultPool().Register(udprel.NewFactory(arq))
		rt.RegisterIface(ExchangeIface, ExchangeActivator)

		server, err := rt.NewContext("server", "b")
		if err != nil {
			rt.Close()
			return nil, err
		}
		if err := udprel.Bind(server, 0, arq); err != nil {
			rt.Close()
			return nil, err
		}
		servant, err := exportExchange(server)
		if err != nil {
			rt.Close()
			return nil, err
		}
		entry, err := udprel.Entry(server)
		if err != nil {
			rt.Close()
			return nil, err
		}
		client, err := rt.NewContext("client", "a")
		if err != nil {
			rt.Close()
			return nil, err
		}
		gp := client.NewGlobalPtr(server.NewRef(servant, entry))
		m, err := MeasureExchange(gp, cfg.Ints, cfg.MinReps, cfg.MinDuration)
		rt.Close()
		if err != nil {
			return nil, errs.Wrapf(errs.CodeOf(err), err, "bench: loss %.0f%%", rate*100)
		}
		out = append(out, LossPoint{LossRate: rate, Sample: m})
	}
	return out, nil
}

// FormatLossSweep renders L1 as a table.
func FormatLossSweep(points []LossPoint) string {
	s := "L1 (extension): udprel custom protocol goodput vs. datagram loss\n"
	s += fmt.Sprintf("%-10s %-14s %-12s %s\n", "loss", "goodput", "avg rtt", "reps")
	for _, p := range points {
		s += fmt.Sprintf("%8.0f%%  %9.3f Mbps %-12v %d\n",
			p.LossRate*100, p.Sample.BandwidthBps/1e6, p.Sample.AvgRTT, p.Sample.Reps)
	}
	return s
}
