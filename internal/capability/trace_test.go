package capability

import (
	"strings"
	"testing"
)

// Regression: Trace counters are per-instance, so one Trace value
// installed on two glue entries would merge both entries' statistics
// into a single meter. GlueEntry must refuse the second grant with a
// defensive error naming the first owner, and fresh instances must
// keep working.
func TestGlueEntryRefusesDoubleGrantedTrace(t *testing.T) {
	rt := world(t)
	server, _ := echoServer(t, rt, "server", "m1")
	base, err := server.EntryStream()
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTrace()
	if _, err := GlueEntry(server, "metered-a", base, tr); err != nil {
		t.Fatalf("first grant refused: %v", err)
	}
	_, err = GlueEntry(server, "metered-b", base, tr)
	if err == nil {
		t.Fatal("double-granted trace accepted: two entries now share one meter")
	}
	if !strings.Contains(err.Error(), "metered-a") || !strings.Contains(err.Error(), "metered-b") {
		t.Fatalf("error does not identify both installations: %v", err)
	}

	// A fresh instance per entry is the documented fix.
	if _, err := GlueEntry(server, "metered-b", base, NewTrace()); err != nil {
		t.Fatalf("fresh trace refused: %v", err)
	}
}

// Grant is first-wins and sticky regardless of interface plumbing.
func TestTraceGrantExclusive(t *testing.T) {
	tr := NewTrace()
	var ex Exclusive = tr // Trace must satisfy Exclusive
	if err := ex.Grant("one"); err != nil {
		t.Fatalf("first Grant failed: %v", err)
	}
	if err := ex.Grant("two"); err == nil {
		t.Fatal("second Grant succeeded")
	} else if !strings.Contains(err.Error(), `"one"`) {
		t.Fatalf("second Grant does not name the first owner: %v", err)
	}
	// Still refused later — the claim does not expire.
	if err := ex.Grant("three"); err == nil {
		t.Fatal("third Grant succeeded")
	}
}

// Stateless capabilities are not Exclusive and may be serialized into
// any number of entries (their rebuilt copies are independent anyway).
func TestStatelessCapsNotExclusive(t *testing.T) {
	for _, c := range []Capability{NewChecksum(), MustNewEncrypt(key32(), ScopeAlways)} {
		if _, ok := c.(Exclusive); ok {
			t.Fatalf("%s unexpectedly implements Exclusive", c.Kind())
		}
	}
}
