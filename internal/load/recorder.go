package load

import (
	"time"

	"openhpcxx/internal/stats"
)

// Recorder accumulates request latencies into an HDR-style log-bucketed
// histogram (stats.Histogram: power-of-two buckets, percentiles within
// a 2x bound) with the two guards that make the numbers immune to
// coordinated omission:
//
//  1. Latency is recorded from the request's *intended* start time
//     (RecordFrom), not from whenever a stalled generator got around to
//     issuing it. Time spent queued behind a stall is the latency a
//     real client would have seen, so it is charged to the result.
//
//  2. Expected-interval backfill (the HdrHistogram correction): when a
//     recorded latency exceeds the expected inter-arrival interval i,
//     the requests that *should* have been issued during that window
//     were omitted by the stall, so the recorder synthesizes them as
//     lat-i, lat-2i, ... while the remainder stays >= i. Closed-loop
//     recordings pass interval 0 and get no backfill.
//
// One Recorder per worker, merged at the end of the run (Merge is
// exact): the hot path is a single atomic histogram observe.
type Recorder struct {
	hist stats.Histogram
	// interval is the expected inter-arrival gap for backfill; 0
	// disables the correction.
	interval time.Duration
}

// NewRecorder returns a recorder with the given expected inter-arrival
// interval (0 = closed loop, no backfill).
func NewRecorder(expectedInterval time.Duration) *Recorder {
	return &Recorder{interval: expectedInterval}
}

// RecordFrom records one request that was *intended* to start at
// intended and finished at end — the open-loop measurement. A request
// issued late (generator stall, full worker pool) is charged its full
// intended-to-finish time.
func (r *Recorder) RecordFrom(intended, end time.Time) {
	r.Record(end.Sub(intended))
}

// Record records one latency, backfilling expected-interval samples
// when the value spans multiple arrival slots (see type comment).
func (r *Recorder) Record(lat time.Duration) {
	if lat < 0 {
		lat = 0
	}
	r.hist.Observe(int64(lat))
	if r.interval <= 0 {
		return
	}
	for lat -= r.interval; lat >= r.interval; lat -= r.interval {
		r.hist.Observe(int64(lat))
	}
}

// Merge folds another recorder's samples into this one (exact: bucket
// counts add). Merge quiescent recorders — per-worker recorders after
// their worker has exited.
func (r *Recorder) Merge(o *Recorder) {
	if o == nil {
		return
	}
	r.hist.Merge(&o.hist)
}

// Count returns the number of recorded samples, backfill included.
func (r *Recorder) Count() uint64 { return r.hist.Snapshot().Count }

// Percentile returns the p-th latency percentile (upper bucket bound,
// within 2x of exact).
func (r *Recorder) Percentile(p float64) time.Duration {
	return time.Duration(r.hist.Percentile(p))
}

// Snapshot exports the full distribution.
func (r *Recorder) Snapshot() stats.Snapshot { return r.hist.Snapshot() }
