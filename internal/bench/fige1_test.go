package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"openhpcxx/internal/netsim"
)

// TestFigureE1BudgetsWin pins the figure's headline claim: through an
// identical overload + crash schedule, class-keyed retry budgets bound
// retry amplification and keep the steady dependency's goodput up —
// unbudgeted workers spend the outage waiting out retry backoffs
// against the dead endpoint, budgeted workers drain their buckets, fail
// fast with typed exhaustion, and keep serving the path that works.
func TestFigureE1BudgetsWin(t *testing.T) {
	cfg := E1Config{
		Profile:  netsim.ProfileEthernet,
		Duration: 900 * time.Millisecond,
	}
	res, err := RunFigureE1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	byMode := map[string]E1Point{}
	for _, p := range res.Points {
		if p.Total <= 0 || p.OK <= 0 || p.SteadyOK <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		if p.Attempts < uint64(p.Total) {
			t.Fatalf("%s: %d attempts for %d tasks — every task sends at least once", p.Mode, p.Attempts, p.Total)
		}
		byMode[p.Mode] = p
	}
	on, off := byMode[ModeBudgeted], byMode[ModeUnbudgeted]

	// The brake: budgets bound attempts-per-task well below the
	// unbudgeted storm.
	if on.Amplification+0.05 >= off.Amplification {
		t.Errorf("budgeted amplification %.3fx not measurably below unbudgeted %.3fx",
			on.Amplification, off.Amplification)
	}
	// The payoff: the steady dependency completes more work because the
	// workers are not stuck in backoffs against the dead one.
	if on.SteadyOK <= off.SteadyOK {
		t.Errorf("budgeted steady-path completions %d not above unbudgeted %d — the storm cost nothing",
			on.SteadyOK, off.SteadyOK)
	}
	// The mechanism is visible: budgeted mode surfaces typed exhaustion,
	// unbudgeted mode never can.
	if on.Exhausted == 0 {
		t.Error("budgeted mode surfaced no BudgetExhausted through a crash window — the bucket never drained")
	}
	if off.Exhausted != 0 {
		t.Errorf("unbudgeted mode surfaced %d BudgetExhausted errors, want 0", off.Exhausted)
	}
	// The outage is real in both modes: doomed flaky-path tasks failed.
	if off.Failed == 0 {
		t.Error("unbudgeted mode survived the crash unscathed — the schedule injected nothing")
	}
	if len(on.ErrorsByCode) == 0 {
		t.Error("budgeted mode recorded no per-code error counters through an outage")
	}
}

// TestFigureE1JSONRoundTrip keeps the ohpc-bench JSON emission stable:
// the result must marshal, unmarshal, and format with both modes and
// the fault schedule present.
func TestFigureE1JSONRoundTrip(t *testing.T) {
	res := &E1Result{
		Profile:  "ethernet",
		Duration: time.Second,
		Deadline: 50 * time.Millisecond,
		Workers:  4,
		Mix:      2,
		Cap:      2,
		Schedule: []string{"200ms crash flaky-m"},
		Points: []E1Point{
			{Mode: ModeBudgeted, Total: 10, OK: 9, SteadyOK: 6, FlakyOK: 3, Exhausted: 1, Attempts: 11, Amplification: 1.1, Goodput: 9},
			{Mode: ModeUnbudgeted, Total: 8, OK: 6, SteadyOK: 4, FlakyOK: 2, Failed: 2, Attempts: 14, Amplification: 1.75, Goodput: 6},
		},
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back E1Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Profile != res.Profile || len(back.Points) != 2 || back.Points[0].Mode != ModeBudgeted {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	out := FormatFigureE1(res)
	for _, want := range []string{ModeBudgeted, ModeUnbudgeted, "crash flaky-m", "amplification", "exhausted"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted figure missing %q:\n%s", want, out)
		}
	}
}
