package netsim

import (
	"fmt"
	"sync"
	"time"

	"openhpcxx/internal/errs"
)

// Per-LAN shared-capacity shaping. A LAN is a shared medium: the
// aggregate rate its member machines can push through it is bounded,
// not just each point-to-point flow. SetLANCapacity attaches a shared
// serializer to a LAN; every stream connection dialed between two
// machines of that LAN (and the LAN-side leg of cross-LAN dials)
// reserves serialization time on it in addition to its own link
// profile.
//
// The shaper is a single nextFree timestamp guarded by one mutex:
// reserving bytes is O(1) per packet no matter how many machines or
// idle links the topology holds. Connections hold a direct pointer to
// their LAN's shaper — the per-packet hot path never walks the
// topology, consults no per-machine state, and touches nothing sized
// by the machine count. Network.ShapingOps counts every per-packet
// shaping decision so tests can assert that bound: identical traffic
// must cost identical ops on a 20-machine and a 2,000-machine
// topology.

// lanShaper serializes bytes at a LAN's aggregate rate.
type lanShaper struct {
	mu       sync.Mutex
	nextFree time.Time
	bps      float64
	overhead int
}

// reserve books n bytes of shared-medium time starting no earlier than
// now and returns when the last byte clears the medium. O(1).
func (s *lanShaper) reserve(now time.Time, n int) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.nextFree
	if start.Before(now) {
		start = now
	}
	bits := float64(n+s.overhead) * 8
	s.nextFree = start.Add(time.Duration(bits / s.bps * float64(time.Second)))
	return s.nextFree
}

// SetLANCapacity bounds the aggregate serialization rate of a LAN's
// shared medium at bps (with overhead bytes charged per frame).
// Connections dialed after the call share the capacity; bps <= 0
// removes the bound for future dials. Capacity shaping composes with
// the per-link profile — a packet is delivered when both its own link
// and the shared medium have cleared it.
func (n *Network) SetLANCapacity(id LANID, bps float64, overhead int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.lans[id]; !ok {
		return errs.Newf(errs.Config, "netsim: unknown LAN %q", id)
	}
	if bps <= 0 {
		delete(n.lanShapers, id)
		return nil
	}
	n.lanShapers[id] = &lanShaper{bps: bps, overhead: overhead}
	return nil
}

// shaperFor returns the shared shaper covering traffic sent by machine
// m, or nil. Caller holds n.mu.
func (n *Network) shaperForLocked(m MachineID) *lanShaper {
	mach, ok := n.machines[m]
	if !ok {
		return nil
	}
	return n.lanShapers[mach.LAN]
}

// ShapingOps reports the total number of per-packet shaping decisions
// made on connections dialed through this network — one per shaped
// write, plus one per shared-capacity reservation. The scale
// regression test replays identical traffic on topologies three orders
// of magnitude apart and asserts the counts match: per-packet work is
// O(active links), never O(topology).
func (n *Network) ShapingOps() uint64 { return n.shapeOps.Load() }

// GridSpec sizes a regular multi-LAN topology.
type GridSpec struct {
	// LANs and MachinesPerLAN size the grid.
	LANs, MachinesPerLAN int
	// Profile shapes every intra-LAN link.
	Profile LinkProfile
	// CampusesEvery groups LANs into campuses of this many LANs each
	// (0 = all LANs on one campus); cross-campus traffic rides the
	// network's WANLink.
	CampusesEvery int
	// SharedBps, when > 0, attaches a shared-capacity shaper to every
	// LAN at that aggregate rate (overhead from Profile.FrameOverhead).
	SharedBps float64
}

// GridLAN names the i-th LAN of a grid.
func GridLAN(i int) LANID { return LANID(fmt.Sprintf("lan%d", i)) }

// GridMachine names machine j on the i-th LAN of a grid.
func GridMachine(lan, j int) MachineID {
	return MachineID(fmt.Sprintf("lan%d-m%d", lan, j))
}

// AddGrid registers a LANs x MachinesPerLAN topology in one call and
// returns every machine id, LAN-major. Building is O(machines): the
// load harness stands up thousand-node worlds with it, and nothing on
// the per-packet path afterwards depends on that count.
func (n *Network) AddGrid(spec GridSpec) ([]MachineID, error) {
	if spec.LANs <= 0 || spec.MachinesPerLAN <= 0 {
		return nil, errs.Newf(errs.Config, "netsim: grid %dx%d must be positive", spec.LANs, spec.MachinesPerLAN)
	}
	machines := make([]MachineID, 0, spec.LANs*spec.MachinesPerLAN)
	for l := 0; l < spec.LANs; l++ {
		campus := CampusID("campus0")
		if spec.CampusesEvery > 0 {
			campus = CampusID(fmt.Sprintf("campus%d", l/spec.CampusesEvery))
		}
		id := GridLAN(l)
		n.AddLAN(id, campus, spec.Profile)
		if spec.SharedBps > 0 {
			if err := n.SetLANCapacity(id, spec.SharedBps, spec.Profile.FrameOverhead); err != nil {
				return nil, err
			}
		}
		for j := 0; j < spec.MachinesPerLAN; j++ {
			m, err := n.AddMachine(GridMachine(l, j), id)
			if err != nil {
				return nil, err
			}
			machines = append(machines, m.ID)
		}
	}
	return machines, nil
}
