package clock

import (
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	a := c.Now()
	b := time.Now()
	if b.Sub(a) < 0 || b.Sub(a) > time.Minute {
		t.Fatalf("Real.Now() far from time.Now(): %v vs %v", a, b)
	}
}

func TestFakeClock(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatal("initial time")
	}
	f.Advance(90 * time.Second)
	if !f.Now().Equal(start.Add(90 * time.Second)) {
		t.Fatal("advance")
	}
	jump := time.Unix(5000, 42)
	f.Set(jump)
	if !f.Now().Equal(jump) {
		t.Fatal("set")
	}
}

func TestFakeClockConcurrent(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			f.Advance(time.Millisecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = f.Now()
	}
	<-done
	if f.Now().UnixNano() != int64(1000*time.Millisecond) {
		t.Fatalf("final %v", f.Now())
	}
}
