package hpcxx

import (
	"sync"

	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/xdr"
)

// BarrierIface is the barrier servant's interface name.
const BarrierIface = "openhpcxx.Barrier"

// barrierState is a reusable generation barrier: Await blocks until all
// parties of the current generation have arrived, then everyone is
// released and the next generation begins (HPC++Lib's barrier
// semantics, coordinated through one server object).
type barrierState struct {
	mu         sync.Mutex
	cond       *sync.Cond
	parties    int
	arrived    int
	generation uint64
}

func newBarrierState(parties int) *barrierState {
	b := &barrierState{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks the calling request until the generation completes and
// returns the completed generation number.
func (b *barrierState) await() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.generation
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.generation++
		b.cond.Broadcast()
		return gen
	}
	for b.generation == gen {
		b.cond.Wait()
	}
	return gen
}

// Snapshot implements core.Migratable; a barrier migrates only between
// generations (waiters do not survive a move — they time out and
// retry), so the state is just the generation counter.
func (b *barrierState) Snapshot() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := xdr.NewEncoder(16)
	e.PutUint64(b.generation)
	e.PutUint32(uint32(b.parties))
	return e.Bytes(), nil
}

// Restore implements core.Migratable.
func (b *barrierState) Restore(state []byte) error {
	d := xdr.NewDecoder(state)
	gen, err := d.Uint64()
	if err != nil {
		return err
	}
	parties, err := d.Uint32()
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.generation = gen
	b.parties = int(parties)
	b.arrived = 0
	b.mu.Unlock()
	return nil
}

type barrierReply struct{ Generation uint64 }

func (r *barrierReply) MarshalXDR(e *xdr.Encoder) error {
	e.PutUint64(r.Generation)
	return nil
}

func (r *barrierReply) UnmarshalXDR(d *xdr.Decoder) error {
	var err error
	r.Generation, err = d.Uint64()
	return err
}

// ServeBarrier exports an n-party barrier on ctx and returns its
// reference (with every binding the context has).
func ServeBarrier(ctx *core.Context, parties int) (*core.ObjectRef, error) {
	if parties < 1 {
		return nil, errs.New(errs.Config, "hpcxx: barrier needs >= 1 parties")
	}
	st := newBarrierState(parties)
	methods := map[string]core.Method{
		"arrive": core.Handler(func(*core.Empty) (*barrierReply, error) {
			return &barrierReply{Generation: st.await()}, nil
		}),
	}
	s, err := ctx.Export(BarrierIface, st, methods)
	if err != nil {
		return nil, err
	}
	var entries []core.ProtoEntry
	if e, err := ctx.EntrySHM(); err == nil {
		entries = append(entries, e)
	}
	if e, err := ctx.EntryStream(); err == nil {
		entries = append(entries, e)
	}
	if e, err := ctx.EntryNexus(); err == nil {
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, errs.Newf(errs.Config, "hpcxx: context %s has no bindings for a barrier", ctx.Name())
	}
	return ctx.NewRef(s, entries...), nil
}

// Barrier is a client handle on a barrier servant.
type Barrier struct {
	gp *core.GlobalPtr
}

// NewBarrier binds a barrier reference to a client context.
func NewBarrier(ctx *core.Context, ref *core.ObjectRef) *Barrier {
	return &Barrier{gp: ctx.NewGlobalPtr(ref)}
}

// Await blocks until all parties of the current generation have arrived
// and returns the completed generation number.
func (b *Barrier) Await() (uint64, error) {
	r, err := core.Call[*core.Empty, barrierReply](b.gp, "arrive", &core.Empty{})
	if err != nil {
		return 0, errs.Wrap(errs.CodeOf(err), err, "hpcxx: barrier await")
	}
	return r.Generation, nil
}
