// Package introspect is the runtime introspection plane: an embedded,
// stdlib-only debug HTTP server attachable to a core.Runtime. It is
// the operational face of the paper's Open Implementation principle —
// every critical internal decision the ORB makes (protocol selection,
// breaker state, drain, batching) is observable over plain HTTP while
// an experiment runs:
//
//	/metrics  Prometheus text exposition of the runtime registry
//	/statusz  JSON: contexts, GPs with health-annotated protocol
//	          tables, endpoint breakers, async depth, recent events
//	/tracez   recent spans from the trace ring, grouped into trace
//	          trees, filterable by kind / error / min-latency
//	/varz     flight-recorder rate windows (1s/10s/60s)
//	/healthz  liveness probe
//	/debug/pprof/…  the stdlib profiler
//
// Attachment is strictly additive: a runtime without an attached server
// pays nothing (the gauges it feeds are nil-safe atomics), and every
// method on a nil *Server is a no-op, so call sites need no guards.
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"openhpcxx/internal/clock"
	"openhpcxx/internal/core"
	"openhpcxx/internal/errs"
	"openhpcxx/internal/obs"
)

// Options configures Attach. The zero value works: loopback listener on
// an ephemeral port, default flight-recorder cadence, and a trace ring
// installed if the runtime has no recorder yet.
type Options struct {
	// Addr is the listen address (default "127.0.0.1:0"). The plane is
	// a debug surface: bind loopback unless you mean to expose it.
	Addr string
	// FlightInterval is the flight-recorder sampling period (default
	// DefaultFlightInterval).
	FlightInterval time.Duration
	// FlightDepth is how many snapshots the recorder retains (default
	// DefaultFlightDepth).
	FlightDepth int
	// RingSize sizes the trace store Attach installs when the runtime's
	// tracer has no recorder yet (default obs.DefaultRingSize). When a
	// span store is already installed — e.g. by a -trace flag — /tracez
	// reads that store and no new one is created.
	RingSize int
	// Tail selects tail-based trace retention for the installed store:
	// instead of a FIFO ring, Attach installs an obs.TailKeeper (same
	// span budget: RingSize) that keeps errored, slow, and baseline
	// traces and drops the healthy bulk. Ignored when a recorder is
	// already installed.
	Tail bool
	// TailOptions refines the installed keeper (MaxSpans defaults to
	// RingSize, Clock to the plane's clock). Only read when Tail is set.
	TailOptions obs.TailKeeperOptions
	// Clock drives the flight recorder (default: the runtime's clock).
	Clock clock.Clock
}

// Server is one attached introspection plane. All methods are safe on
// a nil receiver, so "introspection off" is a nil handle, not a branch
// at every call site.
type Server struct {
	rt     *core.Runtime
	flight *Flight
	store  obs.Store       // /tracez source (ring or tail keeper)
	ring   *obs.Ring       // store, when it is a FIFO ring
	keeper *obs.TailKeeper // store, when it is a tail keeper
	// ownKeeper records that Attach created (and Started) the keeper,
	// so Close must stop its flush loop; an externally installed keeper
	// belongs to whoever installed it.
	ownKeeper bool
	mux       *http.ServeMux
	l         net.Listener
	hs        *http.Server
}

// Attach builds the introspection plane for rt and starts serving it.
// It installs a trace ring on the runtime's tracer when none is
// present, starts the flight recorder, and listens on opts.Addr.
func Attach(rt *core.Runtime, opts Options) (*Server, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Clock == nil {
		opts.Clock = rt.Clock()
	}
	s := &Server{rt: rt}

	// /tracez source: reuse an installed store, else install one — a
	// FIFO ring by default, a tail keeper when opts.Tail asks for one.
	switch rec := rt.Tracer().Recorder().(type) {
	case *obs.Ring:
		s.ring, s.store = rec, rec
	case *obs.TailKeeper:
		s.keeper, s.store = rec, rec
	case nil:
		if opts.Tail {
			to := opts.TailOptions
			if to.MaxSpans <= 0 {
				to.MaxSpans = opts.RingSize
			}
			if to.Clock == nil {
				to.Clock = opts.Clock
			}
			tk := obs.NewTailKeeper(to)
			tk.SetMetrics(rt.Metrics())
			tk.Start()
			s.keeper, s.store, s.ownKeeper = tk, tk, true
			rt.Tracer().SetRecorder(tk)
		} else {
			ring := obs.NewRing(opts.RingSize)
			ring.SetMetrics(rt.Metrics())
			s.ring, s.store = ring, ring
			rt.Tracer().SetRecorder(ring)
		}
	default:
		// A foreign recorder (e.g. a test collector) stays installed;
		// /tracez serves it if it is a Store, else reports unavailable.
		if st, ok := rec.(obs.Store); ok {
			s.store = st
		}
	}

	s.flight = NewFlight(rt.MetricsSnapshot, opts.Clock, opts.FlightInterval, opts.FlightDepth)
	s.flight.Start()

	s.mux = http.NewServeMux()
	s.routes()

	l, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		s.flight.Close()
		return nil, errs.Wrapf(errs.CodeOf(err), err, "introspect: listen %s", opts.Addr)
	}
	s.l = l
	s.hs = &http.Server{Handler: s.mux}
	go func() {
		// ErrServerClosed (and listener teardown races) are the normal
		// end of life for a debug server; nothing to surface.
		_ = s.hs.Serve(l)
	}()
	return s, nil
}

// Addr returns the bound listen address ("" on a nil server).
func (s *Server) Addr() string {
	if s == nil || s.l == nil {
		return ""
	}
	return s.l.Addr().String()
}

// Flight returns the flight recorder (nil on a nil server; *Flight is
// itself nil-safe).
func (s *Server) Flight() *Flight {
	if s == nil {
		return nil
	}
	return s.flight
}

// Ring returns the trace ring /tracez reads (nil when the store is a
// tail keeper or a foreign recorder, or on a nil server).
func (s *Server) Ring() *obs.Ring {
	if s == nil {
		return nil
	}
	return s.ring
}

// Keeper returns the tail keeper /tracez reads (nil when the store is
// a FIFO ring or a foreign recorder, or on a nil server).
func (s *Server) Keeper() *obs.TailKeeper {
	if s == nil {
		return nil
	}
	return s.keeper
}

// Store returns the span store /tracez reads (nil when a foreign
// non-Store recorder was already installed, or on a nil server).
func (s *Server) Store() obs.Store {
	if s == nil {
		return nil
	}
	return s.store
}

// Handler exposes the plane's routes without the listener — tests mount
// it on httptest servers.
func (s *Server) Handler() http.Handler {
	if s == nil {
		return http.NotFoundHandler()
	}
	return s.mux
}

// Close stops the HTTP server and the flight recorder. Nil-safe and
// idempotent.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.flight.Close()
	if s.ownKeeper {
		s.keeper.Close()
	}
	if s.hs == nil {
		return nil
	}
	// Hard close: a debug plane has no in-flight work worth draining.
	return s.hs.Close()
}

func (s *Server) routes() {
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/varz", s.handleVarz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/tracez", s.handleTracez)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "openhpcxx introspection plane (process %s)\n\n", s.rt.Process())
	fmt.Fprint(w, "/metrics   Prometheus text exposition\n")
	fmt.Fprint(w, "/statusz   contexts, GPs, protocol tables, breakers (JSON)\n")
	fmt.Fprint(w, "/tracez    recent trace trees (JSON; ?kind= ?error=1 ?min_us= ?slow=1 ?trace=<hex> ?limit= ?cursor=)\n")
	fmt.Fprint(w, "/varz      flight-recorder rate windows (JSON)\n")
	fmt.Fprint(w, "/healthz   liveness\n")
	fmt.Fprint(w, "/debug/pprof/  profiler\n")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok %s\n", s.rt.Process())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.rt.MetricsSnapshot()
	// Scrapers that understand OpenMetrics negotiate it via Accept and
	// get histogram exemplars; everyone else gets the classic 0.0.4
	// exposition, whose grammar has no room for them. A failed write
	// either way means the header is already out; all we can do is let
	// the scraper see the truncated body.
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = snap.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WriteProm(w)
}

func (s *Server) handleVarz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.flight.Varz())
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.rt.Status())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed write means the client went away mid-response; there is
	// no one left to report it to.
	_ = enc.Encode(v)
}
